// Scenario: a long-lived graph analytics service.
//
// A social-network-shaped graph is loaded ONCE into a DistributedGraph and
// then answers a mixed concurrent workload — connectivity, MST, approximate
// min-cut, 2-edge-connectivity, the baselines, and all eight Theorem 4
// verification problems — through the resilient serving layer:
//
//   * every query carries a budget (wall deadline / superstep cap / ledger
//     bits) and unwinds cooperatively at a superstep boundary when it blows
//     one — a structured error, never an abort;
//   * clients can cancel an in-flight query from another thread;
//   * chaos mode arms seeded lethal crashes against live queries, and the
//     deterministic retry policy re-runs the kill on a fresh cluster — the
//     surviving attempt's answer and ledger are bit-identical to a run
//     nobody disturbed.
//
//   ./graph_query_server [n] [k] [--threads T] [--max-inflight W]
//                        [--deadline-ms MS]

#include <cstdio>

#include "example_args.hpp"
#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const auto args = kmmex::parse_example_args(argc, argv);
  const std::size_t n = args.pos_u64(0, 512);
  const MachineId k = static_cast<MachineId>(args.pos_u64(1, 8));
  kmmex::require_machines(k, n, "positional #2");

  Rng rng(7);
  const Graph g = gen::planted_communities(n, 8, 0.04, 3, rng);
  const DistributedGraph dg(g, VertexPartition::random(n, k, 11));
  std::printf("service graph: n=%zu m=%zu over k=%u machines\n\n", n, g.num_edges(), k);

  ServiceConfig cfg;
  cfg.k = k;
  cfg.workers = args.max_inflight != 0 ? args.max_inflight : 4;
  cfg.query_threads = args.threads;
  cfg.default_budget.deadline_ms = args.deadline_ms;

  // ---- 1. One of every query kind, in flight concurrently -----------------
  {
    ClusterService service(dg, cfg);
    const Vertex ex = g.edges().front().u, ey = g.edges().front().v;
    std::vector<std::pair<Vertex, Vertex>> sub;
    for (std::size_t i = 0; i < g.edges().size() && i < 6; ++i) {
      sub.emplace_back(g.edges()[i].u, g.edges()[i].v);
    }
    const QueryKind kinds[] = {
        QueryKind::kConnectivity,         QueryKind::kMst,
        QueryKind::kMinCut,               QueryKind::kTwoEdge,
        QueryKind::kFlooding,             QueryKind::kRefereeConnectivity,
        QueryKind::kLeaderElection,       QueryKind::kVerifySpanningSubgraph,
        QueryKind::kVerifyCut,            QueryKind::kVerifyStConnectivity,
        QueryKind::kVerifyEdgeOnAllPaths, QueryKind::kVerifyStCut,
        QueryKind::kVerifyCycle,          QueryKind::kVerifyECycle,
        QueryKind::kVerifyBipartite,
    };
    std::vector<std::shared_ptr<QueryTicket>> tickets;
    for (const QueryKind kind : kinds) {
      QueryRequest req;
      req.kind = kind;
      req.seed = split(3, static_cast<std::uint64_t>(kind));
      req.s = 0;
      req.t = static_cast<Vertex>(n - 1);
      req.x = ex;
      req.y = ey;
      if (kind == QueryKind::kVerifySpanningSubgraph || kind == QueryKind::kVerifyCut ||
          kind == QueryKind::kVerifyStCut) {
        req.edges = sub;
      }
      tickets.push_back(service.submit(std::move(req)));
    }
    std::printf("mixed workload (%zu kinds, %u in flight):\n", std::size(kinds),
                cfg.workers);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const QueryOutcome& outcome = tickets[i]->wait();
      if (outcome.ok()) {
        const QueryResult& r = outcome.value();
        std::printf("  %-26s value=%-8llu verdict=%-3s rounds=%llu\n",
                    query_kind_name(kinds[i]), static_cast<unsigned long long>(r.value),
                    r.verdict ? "yes" : "no",
                    static_cast<unsigned long long>(r.ledger.rounds));
      } else {
        std::printf("  %-26s error=%s\n", query_kind_name(kinds[i]),
                    query_error_name(outcome.error().code));
      }
    }
  }

  // ---- 2. Budgets and client-side cancellation ----------------------------
  {
    ClusterService service(dg, cfg);
    QueryRequest capped;
    capped.kind = QueryKind::kMinCut;
    capped.budget.max_supersteps = 3;  // far below what mincut needs
    const QueryOutcome budget_hit = service.run_query(capped);
    std::printf("\nbudgeted mincut (3 supersteps): %s\n",
                budget_hit.ok() ? "completed (graph tiny enough)"
                                : query_error_name(budget_hit.error().code));

    QueryRequest slow;
    slow.kind = QueryKind::kMinCut;
    const auto ticket = service.submit(std::move(slow));
    ticket->cancel();  // client walks away; query unwinds at next boundary
    const QueryOutcome& cancelled = ticket->wait();
    std::printf("cancelled mincut: %s\n",
                cancelled.ok() ? "completed before the cancel landed"
                               : query_error_name(cancelled.error().code));
  }

  // ---- 3. Chaos: lethal crashes + deterministic retry ---------------------
  {
    ServiceConfig chaos_cfg = cfg;
    chaos_cfg.chaos.kill_prob = 0.5;
    chaos_cfg.chaos.seed = 41;
    ClusterService chaos_service(dg, chaos_cfg);
    ClusterService calm_service(dg, cfg);

    std::printf("\nchaos (kill_prob=0.5): 6 connectivity queries\n");
    for (int q = 0; q < 6; ++q) {
      QueryRequest req;
      req.kind = QueryKind::kConnectivity;
      req.seed = split(101, static_cast<std::uint64_t>(q));
      const QueryOutcome noisy = chaos_service.run_query(req);
      const QueryOutcome calm = calm_service.run_query(req);
      if (noisy.ok()) {
        const bool identical = calm.ok() &&
                               calm.value().value == noisy.value().value &&
                               calm.value().ledger.total_bits == noisy.value().ledger.total_bits;
        std::printf("  query %d: components=%llu attempts=%u backoff=%lluus  "
                    "vs undisturbed: %s\n",
                    q, static_cast<unsigned long long>(noisy.value().value),
                    noisy.value().attempts,
                    static_cast<unsigned long long>(noisy.value().backoff_us),
                    identical ? "bit-identical ledger" : "MISMATCH");
      } else {
        std::printf("  query %d: %s after %u attempts (structured, no abort)\n", q,
                    query_error_name(noisy.error().code), noisy.error().attempts);
      }
    }
    const ServiceStats s = chaos_service.stats();
    std::printf("chaos service: attempts=%llu kills=%llu retries=%llu\n",
                static_cast<unsigned long long>(s.attempts),
                static_cast<unsigned long long>(s.kills),
                static_cast<unsigned long long>(s.retries));
  }

  std::printf("\nEvery outcome above — success, blown budget, client cancel, or a\n"
              "crash-riddled retry — came back as structured data from a service\n"
              "that never restarted and never aborted.\n");
  return 0;
}
