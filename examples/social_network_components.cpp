// Scenario: community detection prefilter on a social graph.
//
// A social network of dense friend-groups connected by a few bridges is
// sharded across k machines. We find connected components with the sketch
// algorithm, compare against the flooding baseline a Giraph-style system
// would run, and report how the two scale when machines are added — the
// question the k-machine model was built to answer.
//
//   ./social_network_components [n] [--threads T]
//                               [--metrics-out FILE] [--trace-out FILE]
//
// The obs flags record the sketch-connectivity run at the LARGEST k of the
// sweep (a metrics timeline binds to one cluster).

#include <cstdio>
#include <cstdlib>

#include "example_args.hpp"
#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const auto args = kmmex::parse_example_args(argc, argv);
  const unsigned threads = args.threads;
  const std::size_t n = args.pos_u64(0, 4000);

  Rng rng(1234);
  // 25 communities of ~n/25 users; a handful of bridge friendships join
  // some of them, leaving several isolated groups.
  const Graph g = gen::planted_communities(n, 25, 0.08, 18, rng);
  std::printf("social graph: %zu users, %zu friendships, %zu groups\n", g.num_vertices(),
              g.num_edges(), ref::component_count(g));

  std::printf("\nruntime threads requested: %u (effective value is clamped to each k)\n",
              threads);
  kmmex::ObsScope obs(args, "social_network_components");
  const MachineId k_sweep[] = {4, 8, 16, 32};
  const MachineId observed_k = k_sweep[std::size(k_sweep) - 1];
  std::printf("\n%6s %8s %16s %16s %14s %14s\n", "k", "threads", "sketch rounds",
              "flooding rounds", "sketch bits", "speedup vs k/2");
  std::uint64_t prev_rounds = 0;
  for (const MachineId k : k_sweep) {
    const VertexPartition part = VertexPartition::random(n, k, 99);

    Cluster sketch_cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, part);
    BoruvkaConfig config;
    config.seed = 555;
    config.threads = threads;
    if (k == observed_k) config.obs = obs.sink();
    const auto sketch = connected_components(sketch_cluster, dg, config);

    Cluster flood_cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg2(g, part);
    FloodingConfig flood_config;
    flood_config.threads = threads;
    const auto flood = flooding_connectivity(flood_cluster, dg2, flood_config);

    if (canonical_labels(sketch.labels) !=
        std::vector<Vertex>(flood.labels.begin(), flood.labels.end())) {
      std::printf("DISAGREEMENT between algorithms!\n");
      return 1;
    }
    std::printf("%6u %8u %16llu %16llu %14llu", k, resolve_threads(threads, k),
                static_cast<unsigned long long>(sketch.stats.rounds),
                static_cast<unsigned long long>(flood.stats.rounds),
                static_cast<unsigned long long>(sketch.stats.bits));
    if (prev_rounds != 0) {
      std::printf(" %13.1fx", static_cast<double>(prev_rounds) /
                                  static_cast<double>(sketch.stats.rounds));
    }
    std::printf("\n");
    prev_rounds = sketch.stats.rounds;
  }
  std::printf(
      "\nEach doubling of k cuts the sketch algorithm's rounds 2-4x —\n"
      "super-linear while n/k^2 dominates, tapering into the additive polylog\n"
      "floor at large k (Theorem 1's O~; see EXPERIMENTS.md). Flooding is cheap\n"
      "on these low-diameter graphs; its worst case (high diameter, hub\n"
      "degrees) is measured in bench_baselines.\n");
  return 0;
}
