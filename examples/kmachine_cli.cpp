// kmachine_cli — run any algorithm of the library on any generator from the
// command line and read the round/traffic ledger.
//
//   kmachine_cli --algo conn --graph gnm --n 4096 --m 12288 --k 16
//   kmachine_cli --algo mst --graph grid --rows 64 --cols 64 --k 8
//   kmachine_cli --algo mincut --graph dumbbell --n 256 --lambda 4 --k 8
//   kmachine_cli --algo 2ec --graph cycle --n 1024 --k 8 --coinflip
//   kmachine_cli --algo conn --input edges.txt --k 16
//
// Algorithms: conn | mst | flood | referee | mincut | 2ec | bipartite | leader
// Graphs:     gnm | rmat | connected | path | cycle | star | complete | grid |
//             communities | pa | dumbbell | cliquechain
//             or --input FILE with one "u v [w]" edge per line ('#' comments)
// Common flags: --n --m --k --seed --bandwidth --coordinator --coinflip
//               --threads T (parallel runtime; 0 = hardware concurrency)
//               --verify (compare against the sequential reference)
//               --metrics-out FILE (per-superstep metrics timeline JSON)
//               --trace-out FILE (Chrome trace JSON for chrome://tracing)
//               --stream-ingest (build per-machine shards straight from the
//                 chunked generator stream — gnm/rmat only; the global edge
//                 list and Graph are never materialized, so --verify and the
//                 global-recourse algorithms are unavailable)
//               --mem-budget BYTES (per-machine shard byte cap for
//                 --stream-ingest; ingest fails with a diagnostic exit when
//                 any machine would exceed it)
//               --fault-profile none|crashes|lossy|corrupt|chaos (seeded
//                 fault schedule for conn|mst|flood; crashes recover via the
//                 checkpoint/replay plane, lossy links are retransmitted,
//                 corruption is left for --verify to catch)
//               --fault-seed S (schedule PRF seed; default 0)
//               --checkpoint-every C (checkpoint cadence for crash recovery)
//               --durable-dir DIR (durable checkpoint & restart plane: every
//                 cadence checkpoint is also committed to DIR as a
//                 checksummed resume frame; --algo flood only — the
//                 checkpointable program. SIGKILL the process at any point
//                 and relaunch with --resume to continue bit-identically.
//                 With --serve, DIR/queries.log journals query lifecycles)
//               --resume (restore the newest intact generation in
//                 --durable-dir and continue; corrupt/torn/stale generations
//                 are skipped with a diagnostic, never silently restored)
// Every value flag accepts both `--key value` and `--key=value`.
// Flags are validated strictly: non-numeric or trailing-garbage values,
// duplicate flags, zero where it has no meaning, and k > n or k < 2 are all
// rejected with a clean one-line error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "example_args.hpp"
#include "kmm.hpp"

namespace {

using namespace kmm;

struct Options {
  std::string algo = "conn";
  std::string graph = "gnm";
  std::string input;  // edge-list file; overrides --graph
  std::size_t n = 1024;
  std::size_t m = 0;  // 0 => 3n
  std::size_t rows = 32, cols = 32;
  std::size_t lambda = 4;
  std::size_t blocks = 8;
  MachineId k = 8;
  std::uint64_t seed = 1;
  std::uint64_t bandwidth = 0;   // 0 => ceil(log2 n)^2
  unsigned threads = 1;          // runtime worker threads; 0 => hardware
  std::uint64_t mem_budget = 0;  // per-machine shard byte cap; 0 = unlimited
  std::string metrics_out;       // per-superstep timeline JSON ("" = off)
  std::string trace_out;         // Chrome trace-event JSON ("" = off)
  std::string fault_profile = "none";  // seeded fault schedule preset
  std::uint64_t fault_seed = 0;        // schedule PRF seed
  unsigned checkpoint_every = 8;       // crash-recovery checkpoint cadence
  std::string durable_dir;             // durable frame directory ("" = off)
  bool resume = false;                 // restore newest generation and continue
  bool stream_ingest = false;    // shard-direct ingest, no global graph
  bool coordinator = false;
  bool coinflip = false;
  bool verify = true;
  // --serve mode: load the graph once, run a mixed concurrent query
  // workload through ClusterService, print structured outcomes.
  bool serve = false;
  std::size_t queries = 24;       // workload size (cycles through all kinds)
  unsigned max_inflight = 4;      // executor threads = in-flight bound
  std::size_t max_queue = 64;     // admission queue bound
  std::uint64_t deadline_ms = 0;  // default per-query wall deadline (0 = off)
  std::string query_log;          // per-query outcome JSON ("" = off)
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --algo conn|mst|flood|referee|mincut|2ec|bipartite|leader\n"
               "          --graph gnm|rmat|connected|path|cycle|star|complete|grid|"
               "communities|pa|dumbbell|cliquechain\n"
               "          [--n N] [--m M] [--rows R --cols C] [--lambda L]\n"
               "          [--blocks B] [--k K] [--seed S] [--bandwidth BITS]\n"
               "          [--threads T] [--coordinator] [--coinflip] [--no-verify]\n"
               "          [--stream-ingest] [--mem-budget BYTES]\n"
               "          [--metrics-out FILE] [--trace-out FILE]\n"
               "          [--fault-profile none|crashes|lossy|corrupt|chaos]\n"
               "          [--fault-seed S] [--checkpoint-every C]\n"
               "          [--durable-dir DIR] [--resume]\n"
               "          [--serve] [--queries Q] [--max-inflight W] [--max-queue B]\n"
               "          [--deadline-ms MS] [--query-log FILE]\n"
               "\n"
               "  --serve loads the graph once and runs a mixed concurrent query\n"
               "  workload (all kinds, cycling) through the resilient serving layer:\n"
               "  per-query deadlines/budgets, cooperative cancellation, admission\n"
               "  shedding, and — with --fault-profile crashes|chaos — seeded lethal\n"
               "  chaos with deterministic retry/backoff. Query #1 is a guaranteed\n"
               "  over-budget probe demonstrating a structured timeout. Outcomes are\n"
               "  always structured (exit 0); --query-log writes them as JSON.\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  std::map<std::string, std::string> kv;
  // A repeated value flag is rejected rather than last-one-wins: a stale
  // shell history line should fail loudly, not silently override.
  const auto set_kv = [&](const std::string& key, std::string value) {
    if (!kv.emplace(key, std::move(value)).second) {
      std::fprintf(stderr, "error: duplicate flag --%s\n", key.c_str());
      std::exit(2);
    }
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Boolean flags go through set_kv too, so repeating one is rejected
    // exactly like a repeated value flag.
    if (arg == "--coordinator") {
      set_kv("coordinator", "");
      opt.coordinator = true;
    } else if (arg == "--coinflip") {
      set_kv("coinflip", "");
      opt.coinflip = true;
    } else if (arg == "--no-verify") {
      set_kv("no-verify", "");
      opt.verify = false;
    } else if (arg == "--stream-ingest") {
      set_kv("stream-ingest", "");
      opt.stream_ingest = true;
    } else if (arg == "--serve") {
      set_kv("serve", "");
      opt.serve = true;
    } else if (arg == "--resume") {
      set_kv("resume", "");
      opt.resume = true;
    } else if (arg.rfind("--", 0) == 0 && arg.find('=') != std::string::npos) {
      const std::size_t eq = arg.find('=');
      set_kv(arg.substr(2, eq - 2), arg.substr(eq + 1));
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      set_kv(arg.substr(2), argv[++i]);
    } else {
      usage(argv[0]);
    }
  }
  // Strict numeric parsing: a typo'd value exits with a clean one-line
  // error instead of strtoull's silent 0 (which would mean k=0 machines or
  // all hardware threads).
  const auto get_u64 = [&](const char* key, std::uint64_t dflt) {
    const auto it = kv.find(key);
    if (it == kv.end()) return dflt;
    char flag[64];
    std::snprintf(flag, sizeof flag, "--%s", key);
    return kmmex::require_u64(flag, it->second.c_str());
  };
  const auto get_positive_u64 = [&](const char* key, std::uint64_t dflt) {
    const auto it = kv.find(key);
    if (it == kv.end()) return dflt;
    char flag[64];
    std::snprintf(flag, sizeof flag, "--%s", key);
    return kmmex::require_positive_u64(flag, it->second.c_str());
  };
  if (kv.count("algo")) opt.algo = kv["algo"];
  if (kv.count("graph")) opt.graph = kv["graph"];
  if (kv.count("input")) opt.input = kv["input"];
  opt.n = get_positive_u64("n", opt.n);
  opt.m = get_u64("m", 0);
  opt.rows = get_positive_u64("rows", opt.rows);
  opt.cols = get_positive_u64("cols", opt.cols);
  opt.lambda = get_u64("lambda", opt.lambda);
  opt.blocks = get_positive_u64("blocks", opt.blocks);
  opt.k = static_cast<MachineId>(get_positive_u64("k", opt.k));
  opt.seed = get_u64("seed", opt.seed);
  opt.bandwidth = get_u64("bandwidth", 0);
  opt.threads = static_cast<unsigned>(get_u64("threads", opt.threads));
  opt.mem_budget = get_positive_u64("mem-budget", 0);
  if (kv.count("metrics-out")) opt.metrics_out = kv["metrics-out"];
  if (kv.count("trace-out")) opt.trace_out = kv["trace-out"];
  opt.fault_seed = get_u64("fault-seed", opt.fault_seed);
  opt.checkpoint_every =
      static_cast<unsigned>(get_positive_u64("checkpoint-every", opt.checkpoint_every));
  opt.queries = get_positive_u64("queries", opt.queries);
  opt.max_inflight = static_cast<unsigned>(get_positive_u64("max-inflight", opt.max_inflight));
  opt.max_queue = get_positive_u64("max-queue", opt.max_queue);
  opt.deadline_ms = get_u64("deadline-ms", opt.deadline_ms);
  if (kv.count("query-log")) opt.query_log = kv["query-log"];
  if (kv.count("fault-profile")) opt.fault_profile = kv["fault-profile"];
  if (FaultProfile::find(opt.fault_profile) == nullptr) {
    std::fprintf(stderr,
                 "error: unknown --fault-profile '%s' (expected "
                 "none|crashes|lossy|corrupt|chaos)\n",
                 opt.fault_profile.c_str());
    std::exit(2);
  }
  if (kv.count("durable-dir")) opt.durable_dir = kv["durable-dir"];
  if (opt.resume && opt.durable_dir.empty()) {
    std::fprintf(stderr, "error: --resume requires --durable-dir\n");
    std::exit(2);
  }
  if (!opt.durable_dir.empty() && !opt.serve) {
    if (opt.algo != "flood") {
      std::fprintf(stderr,
                   "error: --durable-dir supports --algo flood (the checkpointable "
                   "resumable program; rule 10 in runtime.hpp), got '%s'\n",
                   opt.algo.c_str());
      std::exit(2);
    }
    if (opt.fault_profile != "none") {
      std::fprintf(stderr,
                   "error: --durable-dir and --fault-profile are separate planes; "
                   "drop one (durable restart models process death, the profile "
                   "models in-process faults)\n");
      std::exit(2);
    }
  }
  return opt;
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::vector<WeightedEdge> edges;
  Vertex max_vertex = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0, w = 1;
    if (!(ls >> u >> v)) continue;
    ls >> w;  // optional weight
    edges.push_back(WeightedEdge{static_cast<Vertex>(u), static_cast<Vertex>(v),
                                 static_cast<Weight>(w)});
    max_vertex = std::max({max_vertex, static_cast<Vertex>(u), static_cast<Vertex>(v)});
  }
  // Strict: a malformed file (self-loop, duplicate undirected edge) exits
  // with the factory's diagnostic rather than being silently repaired.
  auto made = Graph::make(static_cast<std::size_t>(max_vertex) + 1, std::move(edges));
  if (!made.ok()) {
    std::fprintf(stderr, "error: '%s': %s\n", path.c_str(), made.error().message.c_str());
    std::exit(2);
  }
  return std::move(made).value();
}

Graph make_graph(const Options& opt) {
  if (!opt.input.empty()) return load_edge_list(opt.input);
  Rng rng(split(opt.seed, 0x9a4f));
  const std::size_t m = opt.m != 0 ? opt.m : 3 * opt.n;
  if (opt.graph == "gnm") return gen::gnm(opt.n, m, rng);
  if (opt.graph == "rmat") return gen::rmat(opt.n, m, rng);
  if (opt.graph == "connected") return gen::connected_gnm(opt.n, m, rng);
  if (opt.graph == "path") return gen::path(opt.n);
  if (opt.graph == "cycle") return gen::cycle(opt.n);
  if (opt.graph == "star") return gen::star(opt.n);
  if (opt.graph == "complete") return gen::complete(opt.n);
  if (opt.graph == "grid") return gen::grid(opt.rows, opt.cols);
  if (opt.graph == "communities") {
    return gen::planted_communities(opt.n, opt.blocks, 0.05, opt.blocks / 2, rng);
  }
  if (opt.graph == "pa") return gen::preferential_attachment(opt.n, 3, rng);
  if (opt.graph == "dumbbell") return gen::dumbbell(opt.n, opt.lambda, rng);
  if (opt.graph == "cliquechain") return gen::clique_chain(opt.n / 16, 16);
  std::fprintf(stderr, "unknown graph family '%s'\n", opt.graph.c_str());
  std::exit(2);
}

void print_stats(const char* what, const RunStats& stats) {
  std::printf("%-12s rounds=%-10llu messages=%-10llu bits=%llu\n", what,
              static_cast<unsigned long long>(stats.rounds),
              static_cast<unsigned long long>(stats.messages),
              static_cast<unsigned long long>(stats.bits));
}

void print_fault_stats(const FaultPlane* plane) {
  if (plane == nullptr) return;
  const FaultStats s = plane->stats();
  std::printf("faults: crashes=%llu restores=%llu restarts=%llu replayed=%llu "
              "checkpoints=%llu\n",
              static_cast<unsigned long long>(s.crashes),
              static_cast<unsigned long long>(s.restores),
              static_cast<unsigned long long>(s.restarts),
              static_cast<unsigned long long>(s.replayed_steps),
              static_cast<unsigned long long>(s.checkpoints));
  std::printf("faults: drops=%llu dups=%llu reorders=%llu corruptions=%llu "
              "stall_rounds=%llu overhead_rounds=%llu\n",
              static_cast<unsigned long long>(s.drops),
              static_cast<unsigned long long>(s.duplicates),
              static_cast<unsigned long long>(s.reorders),
              static_cast<unsigned long long>(s.corruptions),
              static_cast<unsigned long long>(s.stall_rounds),
              static_cast<unsigned long long>(s.overhead_rounds));
}

/// Identity of (graph, cluster shape, seed) stamped into every durable
/// frame: a --resume against a directory written under different flags is
/// rejected as kFingerprintMismatch instead of restoring alien state.
std::uint64_t durable_fingerprint(const Options& opt, std::size_t n, std::size_t m) {
  std::uint64_t fp = split(0x6475'7261'626cULL, n);
  fp = split(fp, m);
  fp = split(fp, opt.k);
  fp = split(fp, opt.seed);
  fp = split(fp, opt.bandwidth);
  fp = split(fp, opt.stream_ingest ? 1 : 0);
  for (const char c : opt.graph) fp = split(fp, static_cast<unsigned char>(c));
  return fp;
}

/// The --durable-dir flood path, shared by the materialized and
/// stream-ingest backends: an empty-schedule FaultPlane tees every cadence
/// checkpoint into a DurableStore; --resume restores the newest intact
/// generation first. Exits nonzero only on durable-plane errors (corrupt
/// directory with --resume, unwritable dir) — never on clean completion.
std::optional<ResumableFloodResult> run_durable_flood(const Options& opt, Cluster& cluster,
                                                      const DistributedGraph& dg,
                                                      const ObsSink* obs, std::size_t m) {
  const std::uint64_t fp = durable_fingerprint(opt, dg.num_vertices(), m);
  std::string dir_error;
  if (!ensure_directory(opt.durable_dir, &dir_error)) {
    std::fprintf(stderr, "error: --durable-dir: %s\n", dir_error.c_str());
    return std::nullopt;
  }
  DurableStore store({opt.durable_dir, /*fsync=*/true, /*keep_generations=*/3, fp});
  const FaultSchedule quiet(opt.fault_seed);
  FaultPlaneConfig pcfg;
  pcfg.checkpoint_every = opt.checkpoint_every;
  FaultPlane plane(quiet, pcfg);
  plane.set_durable_store(&store);

  std::optional<RecoveryManager::RecoveredState> recovered;
  if (opt.resume) {
    auto rec = RecoveryManager::recover(opt.durable_dir,
                                        {FloodProgram::kStateVersion, fp, opt.k});
    if (!rec.ok()) {
      std::fprintf(stderr, "error: --resume: %s: %s\n",
                   durable_error_name(rec.error().code), rec.error().message.c_str());
      return std::nullopt;
    }
    recovered = std::move(rec).value();
    for (const auto& rej : recovered->rejected) {
      std::fprintf(stderr, "resume: skipped generation %llu: %s (%s)\n",
                   static_cast<unsigned long long>(rej.ordinal),
                   durable_error_name(rej.error.code), rej.error.message.c_str());
    }
    std::printf("resume: superstep %llu from %s\n",
                static_cast<unsigned long long>(recovered->frame.ordinal),
                recovered->path.c_str());
    plane.arm_resume(&recovered->frame);
  }

  ResumableFloodConfig fcfg;
  fcfg.threads = opt.threads;
  fcfg.obs = obs;
  fcfg.fault = &plane;
  const ResumableFloodResult res = resumable_flood_connectivity(cluster, dg, fcfg);
  std::printf("components=%llu supersteps=%llu converged=%s\n",
              static_cast<unsigned long long>(res.num_components),
              static_cast<unsigned long long>(res.supersteps),
              res.converged ? "yes" : "no");
  print_stats("flood", res.stats);
  std::printf("durable: commits=%llu bytes=%llu resumes=%llu dir=%s\n",
              static_cast<unsigned long long>(store.stats().commits),
              static_cast<unsigned long long>(store.stats().bytes_written),
              static_cast<unsigned long long>(plane.stats().resumes),
              opt.durable_dir.c_str());
  return res;
}

/// The --stream-ingest path: per-machine shards are built straight from the
/// chunked generator stream; no global edge list or Graph ever exists, so
/// only the model-faithful algorithms (no global-recourse verifiers) run
/// and --verify is structurally unavailable.
int run_stream(const Options& opt) {
  const std::size_t n = opt.n;
  const std::size_t m = opt.m != 0 ? opt.m : 3 * opt.n;
  kmmex::require_machines(opt.k, n, "--k");
  if (opt.fault_profile != "none") {
    std::fprintf(stderr,
                 "error: --fault-profile is not supported with --stream-ingest "
                 "(the fault plane rides the superstep runtime; drop one flag)\n");
    return 2;
  }
  if (opt.graph != "gnm" && opt.graph != "rmat") {
    std::fprintf(stderr,
                 "error: --stream-ingest supports --graph gnm|rmat (the chunked "
                 "streaming generators), got '%s'\n",
                 opt.graph.c_str());
    return 2;
  }
  const bool streamable_algo = opt.algo == "conn" || opt.algo == "mst" ||
                               opt.algo == "flood" || opt.algo == "referee";
  if (!streamable_algo) {
    std::fprintf(stderr,
                 "error: --stream-ingest supports --algo conn|mst|flood|referee; "
                 "'%s' needs the global graph (drop --stream-ingest)\n",
                 opt.algo.c_str());
    return 2;
  }

  gen::ParGenConfig gcfg;
  gcfg.seed = split(opt.seed, 0x9a4f);
  gcfg.threads = opt.threads;
  // MST needs weighted edges; the PRF weight stream keys off the canonical
  // edge index, so streamed weights are chunk- and thread-invariant.
  if (opt.algo == "mst") gcfg.weight_limit = 1u << 30;
  const gen::EdgeStream stream = opt.graph == "gnm"
                                     ? gen::gnm_stream_source(n, m, gcfg)
                                     : gen::rmat_stream_source(n, m, gcfg);

  StreamIngestOptions iopts;
  iopts.budget.bytes_per_machine = opt.mem_budget;
  iopts.threads = opt.threads;
  auto ingest = stream_ingest(
      n, VertexPartition::random(n, opt.k, split(opt.seed, 0x9a97)), stream, iopts);
  if (!ingest.ok()) {
    std::fprintf(stderr, "error: %s\n", ingest.error().message.c_str());
    return 1;
  }
  const DistributedGraph dg = std::move(ingest).value();
  std::printf("graph=%s n=%zu m=%zu (stream-ingest) | k=%u seed=%llu\n",
              opt.graph.c_str(), n, dg.num_edges(), opt.k,
              static_cast<unsigned long long>(opt.seed));
  std::printf("max shard bytes=%zu budget=%llu/machine\n", dg.max_shard_bytes(),
              static_cast<unsigned long long>(opt.mem_budget));

  ClusterConfig ccfg = ClusterConfig::for_graph(n, opt.k);
  if (opt.bandwidth != 0) ccfg.bandwidth_bits = opt.bandwidth;
  Cluster cluster(ccfg);
  std::printf("bandwidth=%llu bits/link/round\n",
              static_cast<unsigned long long>(cluster.bandwidth_bits()));

  kmmex::ObsScope obs(opt.metrics_out.empty() ? nullptr : opt.metrics_out.c_str(),
                      opt.trace_out.empty() ? nullptr : opt.trace_out.c_str(),
                      opt.algo.c_str());

  BoruvkaConfig acfg;
  acfg.seed = split(opt.seed, 0xa190);
  acfg.single_coordinator = opt.coordinator;
  acfg.merge_rule = opt.coinflip ? MergeRule::kCoinFlip : MergeRule::kDrr;
  acfg.threads = opt.threads;
  acfg.obs = obs.sink();

  if (opt.algo == "conn") {
    const auto res = connected_components(cluster, dg, acfg);
    std::printf("components=%llu phases=%zu converged=%s\n",
                static_cast<unsigned long long>(res.num_components), res.phases.size(),
                res.converged ? "yes" : "no");
    print_stats("conn", res.stats);
  } else if (opt.algo == "mst") {
    const auto res = minimum_spanning_forest(cluster, dg, acfg);
    Weight total = 0;
    for (const auto& e : res.mst_edges()) total += e.w;
    std::printf("mst_edges=%zu total_weight=%llu phases=%zu\n", res.mst_edges().size(),
                static_cast<unsigned long long>(total), res.phases.size());
    print_stats("mst", res.stats);
  } else if (opt.algo == "flood") {
    if (!opt.durable_dir.empty()) {
      const auto res = run_durable_flood(opt, cluster, dg, obs.sink(), m);
      if (!res.has_value()) return 1;
    } else {
      FloodingConfig fcfg;
      fcfg.threads = opt.threads;
      fcfg.obs = obs.sink();
      const auto res = flooding_connectivity(cluster, dg, fcfg);
      std::printf("components=%llu supersteps=%llu\n",
                  static_cast<unsigned long long>(res.num_components),
                  static_cast<unsigned long long>(res.supersteps));
      print_stats("flood", res.stats);
    }
  } else {  // referee
    RefereeConfig rcfg;
    rcfg.threads = opt.threads;
    rcfg.obs = obs.sink();
    const auto res = referee_connectivity(cluster, dg, rcfg);
    std::printf("components=%llu\n", static_cast<unsigned long long>(res.num_components));
    print_stats("referee", res.stats);
  }
  if (opt.verify) {
    std::printf("verify: skipped (--stream-ingest never materializes the global graph)\n");
  }
  return 0;
}

/// The --serve path: one long-lived DistributedGraph, a mixed concurrent
/// query workload cycling through every QueryKind, structured outcomes only.
/// Query #1 is a deliberately over-budget probe (1 ms deadline, two-superstep
/// cap) demonstrating that a blown budget is a clean error, not an abort.
int run_serve(const Options& opt) {
  const Graph g = make_graph(opt);
  const std::size_t n = g.num_vertices();
  kmmex::require_machines(opt.k, n, "--k");
  const DistributedGraph dg(g, VertexPartition::random(n, opt.k, split(opt.seed, 0x9a97)));

  ServiceConfig scfg;
  scfg.k = opt.k;
  scfg.bandwidth_bits = opt.bandwidth;
  scfg.workers = opt.max_inflight;
  scfg.max_queue = opt.max_queue;
  scfg.query_threads = opt.threads;
  scfg.default_budget.deadline_ms = opt.deadline_ms;
  if (opt.fault_profile != "none") {
    // Chaos mode: the profile's link-fault rates ride along unchanged; its
    // crash stream is replaced by the service's one-kill-draw-per-attempt
    // model (kill_prob), which is what lets retries converge.
    const FaultProfile profile = *FaultProfile::find(opt.fault_profile);
    scfg.chaos.profile = profile;
    scfg.chaos.kill_prob = profile.crash_prob > 0.0 ? 0.3 : 0.0;
    scfg.chaos.seed = opt.fault_seed;
  }

  // Durable query journal: every admitted query is logged at submission and
  // completion so a killed serve process can be relaunched with --resume and
  // re-run ONLY the queries that were in flight, under their original ids.
  std::unique_ptr<QueryJournal> journal;
  QueryJournal::Replay replayed;
  if (!opt.durable_dir.empty()) {
    std::string dir_error;
    if (!ensure_directory(opt.durable_dir, &dir_error)) {
      std::fprintf(stderr, "error: --durable-dir: %s\n", dir_error.c_str());
      return 1;
    }
    const std::string journal_path = opt.durable_dir + "/queries.log";
    if (opt.resume) {
      auto rep = QueryJournal::replay(journal_path);
      if (!rep.ok()) {
        std::fprintf(stderr, "error: --resume: %s: %s\n",
                     durable_error_name(rep.error().code), rep.error().message.c_str());
        return 1;
      }
      replayed = std::move(rep).value();
      scfg.first_query_id = replayed.max_id + 1;
      std::printf("resume: journal %s: %llu submitted, %llu completed, %zu pending, "
                  "%llu torn\n",
                  journal_path.c_str(), static_cast<unsigned long long>(replayed.submitted),
                  static_cast<unsigned long long>(replayed.completed),
                  replayed.pending.size(),
                  static_cast<unsigned long long>(replayed.torn_records));
    }
    auto opened = QueryJournal::open(journal_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: --durable-dir: %s: %s\n",
                   durable_error_name(opened.error().code), opened.error().message.c_str());
      return 1;
    }
    journal = std::move(opened).value();
    scfg.journal = journal.get();
  }

  std::printf("serve: graph=%s n=%zu m=%zu | k=%u workers=%u queue<=%zu deadline=%llums\n",
              opt.graph.c_str(), n, g.num_edges(), opt.k, scfg.workers, scfg.max_queue,
              static_cast<unsigned long long>(opt.deadline_ms));
  if (opt.fault_profile != "none") {
    std::printf("serve: chaos profile=%s kill_prob=%.2f seed=%llu\n",
                opt.fault_profile.c_str(), scfg.chaos.kill_prob,
                static_cast<unsigned long long>(opt.fault_seed));
  }

  ClusterService service(dg, scfg);

  // Re-run the journal's pending set first, idempotent by original id.
  std::vector<std::shared_ptr<QueryTicket>> resumed;
  for (const auto& [id, request] : replayed.pending) {
    resumed.push_back(service.submit(request, id));
  }

  // Operands for the verifier kinds, drawn from the graph itself so they
  // validate (an edgeless graph degrades to structured kInvalidArgument).
  Vertex ex = 0, ey = 0;
  if (!g.edges().empty()) {
    ex = g.edges().front().u;
    ey = g.edges().front().v;
  }
  std::vector<std::pair<Vertex, Vertex>> edge_operand;
  for (std::size_t i = 0; i < g.edges().size() && i < 8; ++i) {
    edge_operand.emplace_back(g.edges()[i].u, g.edges()[i].v);
  }

  constexpr QueryKind kCycle[] = {
      QueryKind::kConnectivity,       QueryKind::kMst,
      QueryKind::kMinCut,             QueryKind::kTwoEdge,
      QueryKind::kFlooding,           QueryKind::kRefereeConnectivity,
      QueryKind::kLeaderElection,     QueryKind::kVerifySpanningSubgraph,
      QueryKind::kVerifyCut,          QueryKind::kVerifyStConnectivity,
      QueryKind::kVerifyEdgeOnAllPaths, QueryKind::kVerifyStCut,
      QueryKind::kVerifyCycle,        QueryKind::kVerifyECycle,
      QueryKind::kVerifyBipartite,
  };
  constexpr std::size_t kCycleLen = sizeof(kCycle) / sizeof(kCycle[0]);

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  tickets.reserve(opt.queries);
  for (std::size_t q = 0; q < opt.queries; ++q) {
    QueryRequest req;
    req.seed = split(opt.seed, 0xfeed + q);
    if (q == 0) {
      req.kind = QueryKind::kMinCut;
      req.budget.deadline_ms = 1;
      req.budget.max_supersteps = 2;
    } else {
      req.kind = kCycle[q % kCycleLen];
      req.s = 0;
      req.t = static_cast<Vertex>(n - 1);
      req.x = ex;
      req.y = ey;
      if (req.kind == QueryKind::kVerifySpanningSubgraph ||
          req.kind == QueryKind::kVerifyCut || req.kind == QueryKind::kVerifyStCut) {
        req.edges = edge_operand;
      }
    }
    tickets.push_back(service.submit(std::move(req)));
  }
  service.drain();

  for (const QueryLogEntry& e : service.log()) {
    if (e.ok) {
      std::printf("query %3llu %-26s ok    value=%-10llu verdict=%s attempts=%u "
                  "supersteps=%llu rounds=%llu bits=%llu wall=%lluus\n",
                  static_cast<unsigned long long>(e.id), query_kind_name(e.kind),
                  static_cast<unsigned long long>(e.value), e.verdict ? "yes" : "no",
                  e.attempts, static_cast<unsigned long long>(e.supersteps),
                  static_cast<unsigned long long>(e.rounds),
                  static_cast<unsigned long long>(e.bits),
                  static_cast<unsigned long long>(e.wall_us));
    } else {
      std::printf("query %3llu %-26s ERROR %s at superstep %llu after %u attempt(s)\n",
                  static_cast<unsigned long long>(e.id), query_kind_name(e.kind),
                  query_error_name(e.error), static_cast<unsigned long long>(e.supersteps),
                  e.attempts);
    }
  }
  const ServiceStats s = service.stats();
  std::printf("serve: submitted=%llu completed=%llu failed=%llu rejected=%llu "
              "attempts=%llu kills=%llu retries=%llu\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.failed),
              static_cast<unsigned long long>(s.rejected_overload),
              static_cast<unsigned long long>(s.attempts),
              static_cast<unsigned long long>(s.kills),
              static_cast<unsigned long long>(s.retries));
  if (!opt.query_log.empty()) {
    if (service.write_query_log_json(opt.query_log)) {
      std::fprintf(stderr, "query log -> %s\n", opt.query_log.c_str());
    } else {
      std::fprintf(stderr, "cannot write query log to '%s'\n", opt.query_log.c_str());
      return 1;
    }
  }
  // Every outcome above is structured — a crash/abort is the only failure
  // mode this mode can't report, and reaching here means there was none.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.serve) {
    if (opt.stream_ingest) {
      std::fprintf(stderr,
                   "error: --serve needs the materialized backend for its mixed "
                   "workload (mincut/2ec/verifier kinds); drop --stream-ingest\n");
      return 2;
    }
    return run_serve(opt);
  }
  if (opt.stream_ingest) {
    if (!opt.input.empty()) {
      std::fprintf(stderr,
                   "error: --stream-ingest generates the graph shard-direct; "
                   "--input is incompatible\n");
      return 2;
    }
    return run_stream(opt);
  }
  Graph g = make_graph(opt);
  const std::size_t n = g.num_vertices();
  kmmex::require_machines(opt.k, n, "--k");
  std::printf("graph=%s n=%zu m=%zu | k=%u seed=%llu\n", opt.graph.c_str(), n,
              g.num_edges(), opt.k, static_cast<unsigned long long>(opt.seed));

  ClusterConfig ccfg = ClusterConfig::for_graph(n, opt.k);
  if (opt.bandwidth != 0) ccfg.bandwidth_bits = opt.bandwidth;
  Cluster cluster(ccfg);
  std::printf("bandwidth=%llu bits/link/round\n",
              static_cast<unsigned long long>(cluster.bandwidth_bits()));

  // The sinks live in main's scope, outliving every Runtime of the run;
  // the files are written when obs goes out of scope (any return path).
  kmmex::ObsScope obs(opt.metrics_out.empty() ? nullptr : opt.metrics_out.c_str(),
                      opt.trace_out.empty() ? nullptr : opt.trace_out.c_str(),
                      opt.algo.c_str());

  BoruvkaConfig acfg;
  acfg.seed = split(opt.seed, 0xa190);
  acfg.single_coordinator = opt.coordinator;
  acfg.merge_rule = opt.coinflip ? MergeRule::kCoinFlip : MergeRule::kDrr;
  acfg.threads = opt.threads;
  acfg.obs = obs.sink();
  if (opt.threads != 1) {
    std::printf("runtime threads: %u requested -> %u effective\n", opt.threads,
                resolve_threads(opt.threads, opt.k));
  }

  // Fault plane: seeded schedule + recovery machinery for the algorithms
  // that register recovery hooks (conn/mst via the Borůvka engine, flood).
  // Corruption profiles are meant to be *caught*: run them with --verify.
  std::optional<FaultSchedule> fault_schedule;
  std::optional<FaultPlane> fault_plane;
  if (opt.fault_profile != "none") {
    if (opt.algo != "conn" && opt.algo != "mst" && opt.algo != "flood") {
      std::fprintf(stderr,
                   "error: --fault-profile supports --algo conn|mst|flood (the "
                   "recovery-hooked algorithms), got '%s'\n",
                   opt.algo.c_str());
      return 2;
    }
    fault_schedule.emplace(opt.fault_seed, *FaultProfile::find(opt.fault_profile));
    FaultPlaneConfig fpc;
    fpc.checkpoint_every = opt.checkpoint_every;
    fault_plane.emplace(*fault_schedule, fpc);
    acfg.fault = &*fault_plane;
    std::printf("fault profile=%s seed=%llu checkpoint-every=%u\n",
                opt.fault_profile.c_str(),
                static_cast<unsigned long long>(opt.fault_seed), opt.checkpoint_every);
  }

  if (opt.algo == "leader") {
    LeaderElectionConfig lcfg;
    lcfg.seed = acfg.seed;
    lcfg.threads = opt.threads;
    lcfg.obs = obs.sink();
    const auto res = elect_leader(cluster, lcfg);
    std::printf("leader: machine %u\n", res.leader);
    print_stats("leader", res.stats);
    return 0;
  }

  const DistributedGraph dg(g, VertexPartition::random(n, opt.k, split(opt.seed, 0x9a97)));

  if (opt.algo == "conn") {
    const auto res = connected_components(cluster, dg, acfg);
    std::printf("components=%llu phases=%zu forest_edges=%zu converged=%s\n",
                static_cast<unsigned long long>(res.num_components), res.phases.size(),
                res.forest_edges().size(), res.converged ? "yes" : "no");
    print_stats("conn", res.stats);
    print_fault_stats(fault_plane ? &*fault_plane : nullptr);
    if (opt.verify) {
      const bool ok = canonical_labels(res.labels) == ref::component_labels(g);
      std::printf("verify: %s\n", ok ? "ok" : "MISMATCH");
      return ok ? 0 : 1;
    }
  } else if (opt.algo == "mst") {
    Rng wrng(split(opt.seed, 0x3e16));
    g = with_unique_weights(with_random_weights(g, wrng, 1'000'000));
    const DistributedGraph wdg(g,
                               VertexPartition::random(n, opt.k, split(opt.seed, 0x9a97)));
    const auto res = minimum_spanning_forest(cluster, wdg, acfg);
    Weight total = 0;
    for (const auto& e : res.mst_edges()) total += e.w;
    std::printf("mst_edges=%zu total_weight=%llu phases=%zu\n", res.mst_edges().size(),
                static_cast<unsigned long long>(total), res.phases.size());
    print_stats("mst", res.stats);
    print_fault_stats(fault_plane ? &*fault_plane : nullptr);
    if (opt.verify) {
      const bool ok = total == ref::msf_weight(g);
      std::printf("verify: %s\n", ok ? "ok" : "MISMATCH");
      return ok ? 0 : 1;
    }
  } else if (opt.algo == "flood") {
    std::vector<Label> labels;
    if (!opt.durable_dir.empty()) {
      const std::size_t m = opt.m != 0 ? opt.m : 3 * opt.n;
      const auto res = run_durable_flood(opt, cluster, dg, obs.sink(), m);
      if (!res.has_value()) return 1;
      labels = res->labels;
    } else {
      FloodingConfig fcfg;
      fcfg.threads = opt.threads;
      fcfg.obs = obs.sink();
      fcfg.fault = fault_plane ? &*fault_plane : nullptr;
      const auto res = flooding_connectivity(cluster, dg, fcfg);
      std::printf("components=%llu supersteps=%llu\n",
                  static_cast<unsigned long long>(res.num_components),
                  static_cast<unsigned long long>(res.supersteps));
      print_stats("flood", res.stats);
      print_fault_stats(fault_plane ? &*fault_plane : nullptr);
      labels = res.labels;
    }
    if (opt.verify) {
      // Flooding's contract is exact: labels[v] == smallest vertex id in
      // v's component, so the referee compares raw labels (canonicalizing
      // would erase a uniformly-propagated tampered label). Out-of-range
      // labels are a mismatch by definition — range-check before use.
      const auto expect = ref::component_labels(g);
      bool ok = labels.size() == expect.size();
      for (std::size_t v = 0; ok && v < expect.size(); ++v) {
        ok = labels[v] < labels.size() && labels[v] == expect[v];
      }
      std::printf("verify: %s\n", ok ? "ok" : "MISMATCH");
      return ok ? 0 : 1;
    }
  } else if (opt.algo == "referee") {
    RefereeConfig rcfg;
    rcfg.threads = opt.threads;
    rcfg.obs = obs.sink();
    const auto res = referee_connectivity(cluster, dg, rcfg);
    std::printf("components=%llu\n", static_cast<unsigned long long>(res.num_components));
    print_stats("referee", res.stats);
  } else if (opt.algo == "mincut") {
    MinCutConfig mcfg;
    mcfg.seed = acfg.seed;
    mcfg.threads = opt.threads;
    mcfg.obs = obs.sink();
    const auto res = approximate_min_cut(cluster, dg, mcfg);
    std::printf("estimate=%llu disconnect_level=%d connected=%s\n",
                static_cast<unsigned long long>(res.estimate), res.disconnect_level,
                res.graph_connected ? "yes" : "no");
    print_stats("mincut", res.stats);
    if (opt.verify && n <= 512) {
      std::printf("exact (Stoer-Wagner): %llu\n",
                  static_cast<unsigned long long>(ref::stoer_wagner_min_cut(g)));
    }
  } else if (opt.algo == "2ec") {
    const auto res = two_edge_connectivity(cluster, dg, acfg);
    std::printf("two_edge_connected=%s certificate_edges=%zu\n",
                res.two_edge_connected ? "yes" : "no", res.certificate_edges);
    print_stats("2ec", res.stats);
    if (opt.verify) {
      const bool ok = res.two_edge_connected == ref::is_two_edge_connected(g);
      std::printf("verify: %s\n", ok ? "ok" : "MISMATCH");
      return ok ? 0 : 1;
    }
  } else if (opt.algo == "bipartite") {
    const auto res = verify_bipartiteness(cluster, dg, acfg);
    std::printf("bipartite=%s\n", res.ok ? "yes" : "no");
    print_stats("bipartite", res.stats);
    if (opt.verify) {
      const bool ok = res.ok == ref::is_bipartite(g);
      std::printf("verify: %s\n", ok ? "ok" : "MISMATCH");
      return ok ? 0 : 1;
    }
  } else {
    usage(argv[0]);
  }
  return 0;
}
