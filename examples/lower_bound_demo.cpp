// Scenario: watching a lower bound at work (Section 4, Figure 1).
//
// Builds spanning-connected-subgraph instances that encode set disjointness,
// splits the k machines between "Alice" and "Bob", runs the real SCS
// verifier, and meters the bits crossing the boundary — the quantity
// Lemma 8 proves must be Ω(b). Watch the crossing traffic scale linearly
// with b while the verdicts stay correct.
//
//   ./lower_bound_demo [k]

#include <cstdio>
#include <cstdlib>

#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const MachineId k =
      argc > 1 ? static_cast<MachineId>(std::strtoul(argv[1], nullptr, 10)) : 8;

  std::printf("Machines 0..%u are Alice, %u..%u are Bob.\n", k / 2 - 1, k / 2, k - 1);
  std::printf("Instance: Figure-1 graph over disjointness vectors X, Y of b bits;\n");
  std::printf("the candidate subgraph H is spanning-connected iff X and Y are "
              "disjoint.\n\n");

  std::printf("%6s %8s %14s %12s %10s %10s\n", "b", "class", "Alice<->Bob bits",
              "bits per b", "verdict", "truth");
  Rng rng(2016);
  for (const std::size_t b : {64u, 256u, 1024u}) {
    for (const bool disjoint : {true, false}) {
      const auto inst = disjoint ? DisjointnessInstance::random_disjoint(b, 0.3, rng)
                                 : DisjointnessInstance::random_intersecting(b, 0.3, rng);
      const auto res = simulate_scs_two_party(inst, k, split(7, b * 2 + disjoint));
      std::printf("%6zu %8s %14llu %12.0f %10s %10s%s\n", b,
                  disjoint ? "disjoint" : "overlap",
                  static_cast<unsigned long long>(res.cut_bits),
                  static_cast<double>(res.cut_bits) / static_cast<double>(b),
                  res.verdict ? "SCS" : "notSCS", res.expected ? "SCS" : "notSCS",
                  res.verdict == res.expected ? "" : "  <-- WRONG");
    }
  }
  std::printf(
      "\nLemma 8: any protocol needs Omega(b) crossing bits; ours uses Theta~(b).\n"
      "Dividing by the Theta(k^2) links between Alice and Bob gives the paper's\n"
      "Omega~(n/k^2) round lower bound — the algorithm of Theorem 1 is optimal.\n");
  return 0;
}
