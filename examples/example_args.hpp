#pragma once
// Shared argv handling for the small example CLIs: positional arguments
// plus a `--threads T` flag (the runtime's worker-thread count; 0 = use
// hardware concurrency) and the observability outputs `--metrics-out FILE`
// (per-superstep metrics timeline JSON, aggregate_bench.py-ingestible) and
// `--trace-out FILE` (Chrome trace-event JSON for chrome://tracing /
// Perfetto). Both flags accept `--flag FILE` and `--flag=FILE`.
// The serving-layer examples add `--serve` (boolean), `--deadline-ms MS`
// (per-query wall deadline; 0 = unlimited) and `--max-inflight N` (executor
// threads = in-flight query bound; must be positive).
// kmachine_cli has a richer flag set and keeps its own parser, but reuses
// ObsScope below.
//
// Parsing is strict: duplicate flags, non-numeric values, and trailing
// garbage after a number ("8x") exit(2) with a one-line error instead of
// silently running with a misread configuration.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "kmm.hpp"

namespace kmmex {

// ---- argument validation (shared by kmachine_cli and scenario examples) ----
//
// strtoull-style parsing silently turns garbage into 0 and a leading minus
// into a huge wraparound value; every machine/thread/budget count in the
// examples goes through these helpers instead so the failure is a clean
// one-line error, not a confusing run with k=0.

/// Parse a non-negative base-10 integer or exit(2) with a clean error.
inline std::uint64_t require_u64(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (text[0] == '\0' || text[0] == '-' || end == nullptr || *end != '\0' ||
      errno == ERANGE) {
    std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

/// Same, but zero is also rejected (for counts where 0 has no meaning).
inline std::uint64_t require_positive_u64(const char* flag, const char* text) {
  const std::uint64_t value = require_u64(flag, text);
  if (value == 0) {
    std::fprintf(stderr, "error: %s must be positive, got '%s'\n", flag, text);
    std::exit(2);
  }
  return value;
}

/// k-machine sanity: the model needs 2 <= k, and k <= n so every machine
/// can host at least one vertex. Exits(2) with a clean error otherwise.
inline void require_machines(std::uint64_t k, std::uint64_t n, const char* flag) {
  if (k < 2) {
    std::fprintf(stderr, "error: %s: the k-machine model needs at least 2 machines, got %llu\n",
                 flag, static_cast<unsigned long long>(k));
    std::exit(2);
  }
  if (k > n) {
    std::fprintf(stderr,
                 "error: %s: more machines (%llu) than vertices (%llu) — every machine "
                 "must host at least one vertex\n",
                 flag, static_cast<unsigned long long>(k),
                 static_cast<unsigned long long>(n));
    std::exit(2);
  }
}

struct ExampleArgs {
  unsigned threads = 1;
  const char* metrics_out = nullptr;  // per-superstep timeline JSON
  const char* trace_out = nullptr;    // Chrome trace-event JSON
  // Serving-layer flags (graph_query_server; kmachine_cli --serve has its
  // own parser with the same names/semantics).
  bool serve = false;            // run the query-serving demo loop
  std::uint64_t deadline_ms = 0;  // per-query wall deadline; 0 = unlimited
  unsigned max_inflight = 0;      // executor threads / in-flight bound; 0 = default
  std::vector<const char*> pos;

  /// pos[i] as an integer, or `fallback` when absent. Strict: trailing
  /// garbage ("4096x") or a negative sign exits(2) instead of parsing a
  /// prefix.
  [[nodiscard]] unsigned long long pos_u64(std::size_t i, unsigned long long fallback) const {
    if (i >= pos.size()) return fallback;
    char flag[32];
    std::snprintf(flag, sizeof flag, "positional #%zu", i + 1);
    return require_u64(flag, pos[i]);
  }
};

/// Scenario-side owner of the observability sinks: builds an ObsSink from
/// the requested output paths, hands `sink()` to every algorithm config of
/// the run (null when neither flag was given — the run records nothing),
/// and writes both files once at scope exit. Sequential algorithm calls
/// sharing one scope concatenate into one timeline/trace, which is the
/// point: the scenario IS one run.
class ObsScope {
 public:
  ObsScope(const char* metrics_path, const char* trace_path, const char* name)
      : name_(name), metrics_path_(metrics_path), trace_path_(trace_path) {
    if (metrics_path_ != nullptr) sink_.timeline = &timeline_;
    if (trace_path_ != nullptr) sink_.trace = &trace_;
  }
  ObsScope(const ExampleArgs& args, const char* name)
      : ObsScope(args.metrics_out, args.trace_out, name) {}

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  ~ObsScope() { flush(); }

  /// Pointer for the configs' `obs` field; null when nothing was requested.
  [[nodiscard]] const kmm::ObsSink* sink() const noexcept {
    return sink_.empty() ? nullptr : &sink_;
  }

  /// Write the requested files (idempotent; also run by the destructor).
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    if (metrics_path_ != nullptr) {
      if (timeline_.write_json_file(metrics_path_, name_)) {
        std::fprintf(stderr, "metrics timeline (%zu supersteps) -> %s\n",
                     timeline_.size(), metrics_path_);
      } else {
        std::fprintf(stderr, "cannot write metrics timeline to '%s'\n", metrics_path_);
      }
    }
    if (trace_path_ != nullptr) {
      if (trace_.write_chrome_json_file(trace_path_)) {
        std::fprintf(stderr, "chrome trace (%zu spans%s) -> %s\n", trace_.total_spans(),
                     trace_.dropped() != 0 ? ", ring wrapped" : "", trace_path_);
      } else {
        std::fprintf(stderr, "cannot write trace to '%s'\n", trace_path_);
      }
    }
  }

 private:
  const char* name_;
  const char* metrics_path_;
  const char* trace_path_;
  kmm::MetricsTimeline timeline_;
  kmm::TraceRecorder trace_;
  kmm::ObsSink sink_;
  bool flushed_ = false;
};

inline ExampleArgs parse_example_args(int argc, char** argv) {
  ExampleArgs args;
  // Flag-with-value helper accepting both `--flag VALUE` and `--flag=VALUE`;
  // returns the value (advancing i for the two-token form) or nullptr when
  // argv[i] is not `flag`. A trailing valueless flag is ignored rather than
  // misread as a positional argument.
  const auto flag_value = [&](int& i, const char* flag) -> const char* {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0) return nullptr;
    if (argv[i][len] == '\0') return i + 1 < argc ? argv[++i] : nullptr;
    if (argv[i][len] == '=') return argv[i] + len + 1;
    return nullptr;
  };
  // Repeating a flag is almost always a stale shell history line; reject it
  // instead of silently keeping whichever occurrence wins.
  const auto once = [](bool& seen, const char* flag) {
    if (seen) {
      std::fprintf(stderr, "error: duplicate flag %s\n", flag);
      std::exit(2);
    }
    seen = true;
  };
  bool seen_threads = false, seen_metrics = false, seen_trace = false;
  bool seen_serve = false, seen_deadline = false, seen_inflight = false;
  for (int i = 1; i < argc; ++i) {
    if (const char* value = flag_value(i, "--threads")) {
      once(seen_threads, "--threads");
      // Strict: a non-numeric or partially numeric value exits instead of
      // silently parsing to 0 (= all hardware threads).
      args.threads = static_cast<unsigned>(require_u64("--threads", value));
    } else if (const char* metrics = flag_value(i, "--metrics-out")) {
      once(seen_metrics, "--metrics-out");
      args.metrics_out = metrics;
    } else if (const char* trace = flag_value(i, "--trace-out")) {
      once(seen_trace, "--trace-out");
      args.trace_out = trace;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      once(seen_serve, "--serve");
      args.serve = true;
    } else if (const char* deadline = flag_value(i, "--deadline-ms")) {
      once(seen_deadline, "--deadline-ms");
      args.deadline_ms = require_u64("--deadline-ms", deadline);
    } else if (const char* inflight = flag_value(i, "--max-inflight")) {
      once(seen_inflight, "--max-inflight");
      args.max_inflight =
          static_cast<unsigned>(require_positive_u64("--max-inflight", inflight));
    } else if (std::strcmp(argv[i], "--threads") == 0 ||
               std::strcmp(argv[i], "--metrics-out") == 0 ||
               std::strcmp(argv[i], "--trace-out") == 0 ||
               std::strcmp(argv[i], "--deadline-ms") == 0 ||
               std::strcmp(argv[i], "--max-inflight") == 0) {
      // Valueless trailing flag: already reported by flag_value returning
      // null with i at argc - 1; skip it.
    } else {
      args.pos.push_back(argv[i]);
    }
  }
  return args;
}

}  // namespace kmmex
