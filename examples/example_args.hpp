#pragma once
// Shared argv handling for the small example CLIs: positional arguments
// plus a `--threads T` flag (the runtime's worker-thread count; 0 = use
// hardware concurrency). kmachine_cli has a richer flag set and keeps its
// own parser.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace kmmex {

struct ExampleArgs {
  unsigned threads = 1;
  std::vector<const char*> pos;

  /// pos[i] as an integer, or `fallback` when absent.
  [[nodiscard]] unsigned long long pos_u64(std::size_t i, unsigned long long fallback) const {
    return i < pos.size() ? std::strtoull(pos[i], nullptr, 10) : fallback;
  }
};

inline ExampleArgs parse_example_args(int argc, char** argv) {
  ExampleArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      // A trailing valueless --threads is ignored rather than misread as a
      // positional argument; a non-numeric value keeps the default instead
      // of silently parsing to 0 (= all hardware threads).
      if (i + 1 < argc) {
        const char* value = argv[++i];
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(value, &end, 10);
        if (end != value && *end == '\0') {
          args.threads = static_cast<unsigned>(parsed);
        } else {
          std::fprintf(stderr, "ignoring non-numeric --threads value '%s'\n", value);
        }
      }
    } else {
      args.pos.push_back(argv[i]);
    }
  }
  return args;
}

}  // namespace kmmex
