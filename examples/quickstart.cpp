// Quickstart: distribute a small graph over k simulated machines, find its
// connected components with the O~(n/k^2) sketch algorithm, and read the
// round/traffic ledger.
//
//   ./quickstart [n] [k]

#include <cstdio>
#include <cstdlib>

#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000;
  const MachineId k = argc > 2 ? static_cast<MachineId>(std::strtoul(argv[2], nullptr, 10)) : 8;

  // 1. A graph: three random communities with no bridges (3 components).
  Rng rng(42);
  const Graph g = gen::planted_communities(n, 3, 0.02, 0, rng);
  std::printf("graph: n=%zu, m=%zu\n", g.num_vertices(), g.num_edges());

  // 2. The k-machine cluster and the random vertex partition (RVP): each
  //    vertex is hashed to a home machine, exactly as Pregel-style systems
  //    shard their input.
  Cluster cluster(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg(g, VertexPartition::random(n, k, /*seed=*/7));
  std::printf("cluster: k=%u machines, %llu bits/link/round\n", cluster.k(),
              static_cast<unsigned long long>(cluster.bandwidth_bits()));

  // 3. Run the Section 2 connectivity algorithm.
  BoruvkaConfig config;
  config.seed = 2016;
  const BoruvkaResult result = connected_components(cluster, dg, config);

  std::printf("\ncomponents found: %llu (converged: %s)\n",
              static_cast<unsigned long long>(result.num_components),
              result.converged ? "yes" : "no");
  std::printf("Boruvka phases:   %zu\n", result.phases.size());
  std::printf("spanning forest:  %zu edges (each known to >= 1 machine)\n",
              result.forest_edges().size());

  // 4. The cost ledger — the quantity the paper's theorems bound.
  std::printf("\nrounds:   %llu   (paper: O~(n/k^2) = ~%.0f * polylog)\n",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<double>(n) / (static_cast<double>(k) * k));
  std::printf("messages: %llu\n", static_cast<unsigned long long>(result.stats.messages));
  std::printf("bits:     %llu\n", static_cast<unsigned long long>(result.stats.bits));

  // 5. Sanity: agree with a sequential BFS.
  const bool ok = canonical_labels(result.labels) == ref::component_labels(g);
  std::printf("\nmatches sequential reference: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
