// Scenario: how fragile is a datacenter interconnect?
//
// Two dense availability zones joined by a configurable number of
// cross-zone trunks. The approximate min-cut (Theorem 3) estimates the
// trunk count by sampling-and-testing connectivity — all in O~(n/k^2)
// rounds — and we compare against the exact Stoer–Wagner value.
//
//   ./network_reliability [n] [k]

#include <cstdio>
#include <cstdlib>

#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 128;
  const MachineId k =
      argc > 2 ? static_cast<MachineId>(std::strtoul(argv[2], nullptr, 10)) : 8;

  std::printf("%8s %10s %10s %8s %10s\n", "trunks", "estimate", "exact", "ratio",
              "rounds");
  for (const std::size_t trunks : {std::size_t{2}, std::size_t{6}, std::size_t{18}}) {
    Rng rng(split(17, trunks));
    const Graph g = gen::dumbbell(n, trunks, rng);
    const auto exact = ref::stoer_wagner_min_cut(g);

    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, split(19, trunks)));
    MinCutConfig config;
    config.seed = split(23, trunks);
    const auto result = approximate_min_cut(cluster, dg, config);

    std::printf("%8zu %10llu %10llu %8.2f %10llu\n", trunks,
                static_cast<unsigned long long>(result.estimate),
                static_cast<unsigned long long>(exact),
                static_cast<double>(result.estimate) / static_cast<double>(exact),
                static_cast<unsigned long long>(result.stats.rounds));
  }
  std::printf("\nEstimates are O(log n)-approximate (Theorem 3): they expose the\n"
              "difference between a 2-trunk and an 18-trunk interconnect without\n"
              "ever collecting the topology on one machine.\n");
  return 0;
}
