// Scenario: how fragile is a datacenter interconnect?
//
// Two dense availability zones joined by a configurable number of
// cross-zone trunks. The approximate min-cut (Theorem 3) estimates the
// trunk count by sampling-and-testing connectivity — all in O~(n/k^2)
// rounds — and we compare against the exact Stoer–Wagner value.
//
//   ./network_reliability [n] [k] [--threads T]
//                         [--metrics-out FILE] [--trace-out FILE]
//
// The obs flags record the LAST configuration's min-cut sweep (a metrics
// timeline binds to one cluster, and each trunk count builds a fresh one).

#include <cstdio>
#include <cstdlib>

#include "example_args.hpp"
#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const auto args = kmmex::parse_example_args(argc, argv);
  const unsigned threads = args.threads;
  const std::size_t n = args.pos_u64(0, 128);
  const MachineId k = static_cast<MachineId>(args.pos_u64(1, 8));

  std::printf("runtime threads: %u requested -> %u effective (k = %u)\n\n", threads,
              resolve_threads(threads, k), k);
  kmmex::ObsScope obs(args, "network_reliability");
  const std::size_t trunk_sweep[] = {2, 6, 18};
  const std::size_t observed_trunks = trunk_sweep[std::size(trunk_sweep) - 1];
  std::printf("%8s %10s %10s %8s %10s %12s\n", "trunks", "estimate", "exact", "ratio",
              "rounds", "bits");
  for (const std::size_t trunks : trunk_sweep) {
    Rng rng(split(17, trunks));
    const Graph g = gen::dumbbell(n, trunks, rng);
    const auto exact = ref::stoer_wagner_min_cut(g);

    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, split(19, trunks)));
    MinCutConfig config;
    config.seed = split(23, trunks);
    config.threads = threads;
    if (trunks == observed_trunks) config.obs = obs.sink();
    const auto result = approximate_min_cut(cluster, dg, config);

    std::printf("%8zu %10llu %10llu %8.2f %10llu %12llu\n", trunks,
                static_cast<unsigned long long>(result.estimate),
                static_cast<unsigned long long>(exact),
                static_cast<double>(result.estimate) / static_cast<double>(exact),
                static_cast<unsigned long long>(result.stats.rounds),
                static_cast<unsigned long long>(result.stats.bits));
  }
  std::printf("\nEstimates are O(log n)-approximate (Theorem 3): they expose the\n"
              "difference between a 2-trunk and an 18-trunk interconnect without\n"
              "ever collecting the topology on one machine.\n");
  return 0;
}
