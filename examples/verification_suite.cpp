// Scenario: auditing properties of a sharded graph without centralizing it.
//
// Runs all eight Theorem 4 verification problems on one distributed graph:
// a power grid (even-cycle ring of substations with tie-lines). Every
// verifier reduces to the O~(n/k^2) connectivity algorithm.
//
//   ./verification_suite [n] [k] [--threads T]
//                        [--metrics-out FILE] [--trace-out FILE]
//
// With the obs flags, all eight verifiers record into ONE timeline/trace
// (they share the cluster, so the rows concatenate into the audit's full
// superstep history).

#include <cstdio>
#include <cstdlib>

#include "example_args.hpp"
#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const auto args = kmmex::parse_example_args(argc, argv);
  const unsigned threads = args.threads;
  const std::size_t n = args.pos_u64(0, 1024);
  const MachineId k = static_cast<MachineId>(args.pos_u64(1, 8));

  // Power grid: a big ring (even cycle) plus tie-lines every 16 nodes.
  // Ties span 9 ring hops: odd span keeps the grid 2-colorable (a span-8
  // tie would close a 9-cycle and break bipartiteness).
  GraphBuilder builder(n);
  for (std::size_t v = 0; v < n; ++v) {
    builder.add_edge(static_cast<Vertex>(v), static_cast<Vertex>((v + 1) % n));
  }
  for (std::size_t v = 0; v < n; v += 16) {
    builder.add_edge(static_cast<Vertex>(v), static_cast<Vertex>((v + 9) % n));
  }
  const Graph g = builder.build();
  std::printf("power grid: %zu substations, %zu lines\n\n", g.num_vertices(),
              g.num_edges());

  Cluster cluster(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg(g, VertexPartition::random(n, k, 77));
  kmmex::ObsScope obs(args, "verification_suite");
  BoruvkaConfig cfg;
  cfg.seed = 88;
  cfg.threads = threads;
  cfg.obs = obs.sink();
  std::printf("runtime threads: %u requested -> %u effective (k = %u)\n\n", threads,
              resolve_threads(threads, k), k);

  const auto report = [](const char* what, const VerifyResult& r) {
    std::printf("%-44s %-5s (%llu rounds, %llu bits)\n", what, r.ok ? "yes" : "no",
                static_cast<unsigned long long>(r.stats.rounds),
                static_cast<unsigned long long>(r.stats.bits));
  };

  // A spanning tree of the grid is a spanning connected subgraph.
  std::vector<std::pair<Vertex, Vertex>> tree;
  for (const auto& e : ref::minimum_spanning_forest(g)) tree.emplace_back(e.u, e.v);
  report("spanning connected subgraph (its MST)?",
         verify_spanning_connected_subgraph(cluster, dg, tree, cfg));

  report("is {line 0-1} a cut?", verify_cut(cluster, dg, {{0, 1}}, cfg));
  report("substations 3 and n/2 connected?",
         verify_st_connectivity(cluster, dg, 3, static_cast<Vertex>(n / 2), cfg));
  report("line 10-11 on all 5 -> 20 paths?",
         verify_edge_on_all_paths(cluster, dg, 5, 20, 10, 11, cfg));
  report("does {0-1, 8-9} cut 4 from n/2?",
         verify_st_cut(cluster, dg, 4, static_cast<Vertex>(n / 2), {{0, 1}, {8, 9}}, cfg));
  report("grid contains a cycle?", verify_cycle_containment(cluster, dg, cfg));
  report("line 0-1 on some cycle?", verify_e_cycle_containment(cluster, dg, 0, 1, cfg));
  report("grid bipartite (even ring + odd-span ties)?",
         verify_bipartiteness(cluster, dg, cfg));

  std::printf("\ntotal ledger: %llu rounds, %llu messages, %llu bits\n",
              static_cast<unsigned long long>(cluster.stats().rounds),
              static_cast<unsigned long long>(cluster.stats().messages),
              static_cast<unsigned long long>(cluster.stats().total_bits));
  return 0;
}
