// Scenario: crawling a web-scale graph straight into the cluster.
//
// A power-law web graph (R-MAT) is too big to hold as one edge list on any
// single machine — which is exactly the regime the k-machine model assumes.
// This scenario builds the per-machine shards shard-direct from the chunked
// R-MAT stream (stream_ingest: the global Graph is never materialized),
// sweeps k, and reports the per-machine memory footprint next to the round
// complexity, showing both resources shrink as machines are added.
//
//   ./web_graph_stream [n] [budget_bytes_per_machine] [--threads T]
//                      [--metrics-out FILE] [--trace-out FILE]
//
// A non-zero budget arms the ingest-time memory cap: the run aborts with a
// diagnostic if any machine's shard would exceed it (try a small budget with
// a small k to see the failure mode). The obs flags record the run at the
// largest k of the sweep.

#include <cstdio>
#include <cstdlib>

#include "example_args.hpp"
#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const auto args = kmmex::parse_example_args(argc, argv);
  const unsigned threads = args.threads;
  const std::size_t n = args.pos_u64(0, 1u << 18);
  const std::size_t budget = args.pos_u64(1, 0);
  const std::size_t m = 4 * n;

  gen::ParGenConfig gcfg;
  gcfg.seed = 20160711;
  gcfg.threads = threads;
  std::printf("web graph: R-MAT, n=%zu, up to %zu links, streamed shard-direct\n", n, m);
  if (budget != 0) std::printf("per-machine shard budget: %zu bytes\n", budget);

  kmmex::ObsScope obs(args, "web_graph_stream");
  const MachineId k_sweep[] = {4, 8, 16, 32};
  const MachineId observed_k = k_sweep[std::size(k_sweep) - 1];
  std::printf("\n%6s %10s %16s %14s %16s\n", "k", "components", "rounds", "bits",
              "max shard bytes");
  for (const MachineId k : k_sweep) {
    kmmex::require_machines(k, n, "k (sweep)");
    // The stream source is re-runnable, but partition and shard layout are
    // per-k: ingest rebuilds the shards from the same deterministic stream.
    StreamIngestOptions iopts;
    iopts.budget.bytes_per_machine = budget;
    iopts.threads = threads;
    auto ingest = stream_ingest(n, VertexPartition::random(n, k, 99),
                                gen::rmat_stream_source(n, m, gcfg), iopts);
    if (!ingest.ok()) {
      std::fprintf(stderr, "error: %s\n", ingest.error().message.c_str());
      return 1;
    }
    const DistributedGraph dg = std::move(ingest).value();

    Cluster cluster(ClusterConfig::for_graph(n, k));
    BoruvkaConfig config;
    config.seed = 555;
    config.threads = threads;
    if (k == observed_k) config.obs = obs.sink();
    const auto res = connected_components(cluster, dg, config);
    std::printf("%6u %10llu %16llu %14llu %16zu\n", k,
                static_cast<unsigned long long>(res.num_components),
                static_cast<unsigned long long>(res.stats.rounds),
                static_cast<unsigned long long>(res.stats.bits), dg.max_shard_bytes());
  }
  std::printf(
      "\nThe shard bytes column is the whole per-machine memory story: no\n"
      "global edge list, no global CSR, just each machine's slice — so the\n"
      "footprint divides by k while the sketch algorithm's rounds also fall.\n"
      "bench_ingest measures the streamed-vs-materialized peak-memory gap.\n");
  return 0;
}
