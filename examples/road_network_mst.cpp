// Scenario: backbone planning on a road network.
//
// A city grid with construction-cost weights is sharded across k machines;
// we compute the minimum spanning tree with the Section 3.1 algorithm
// (relaxed output: each chosen road segment is known to at least one
// machine) and validate cost and structure against Kruskal.
//
//   ./road_network_mst [rows] [cols] [k] [--threads T]
//                      [--metrics-out FILE] [--trace-out FILE]

#include <cstdio>
#include <cstdlib>

#include "example_args.hpp"
#include "kmm.hpp"

int main(int argc, char** argv) {
  using namespace kmm;
  const auto args = kmmex::parse_example_args(argc, argv);
  const unsigned threads = args.threads;
  const std::size_t rows = args.pos_u64(0, 48);
  const std::size_t cols = args.pos_u64(1, 48);
  const MachineId k = static_cast<MachineId>(args.pos_u64(2, 8));
  const std::size_t n = rows * cols;

  // Grid road network with random construction costs; a few diagonal
  // "highway" shortcuts make the MST non-trivial.
  Rng rng(2718);
  GraphBuilder builder(n);
  const Graph base = gen::grid(rows, cols);
  for (const auto& e : base.edges()) builder.add_edge(e.u, e.v, 1 + rng.next_below(1000));
  for (int h = 0; h < 64; ++h) {
    const auto a = static_cast<Vertex>(rng.next_below(n));
    const auto b = static_cast<Vertex>(rng.next_below(n));
    builder.add_edge(a, b, 1 + rng.next_below(4000));
  }
  const Graph g = with_unique_weights(builder.build());
  std::printf("road network: %zu intersections, %zu candidate segments\n",
              g.num_vertices(), g.num_edges());

  Cluster cluster(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg(g, VertexPartition::random(n, k, 31));
  kmmex::ObsScope obs(args, "road_network_mst");
  BoruvkaConfig config;
  config.seed = 999;
  config.threads = threads;
  config.obs = obs.sink();
  std::printf("runtime threads: %u requested -> %u effective (k = %u)\n", threads,
              resolve_threads(threads, k), k);
  const auto result = minimum_spanning_forest(cluster, dg, config);

  Weight total = 0;
  for (const auto& e : result.mst_edges()) total += e.w;
  const Weight expected = ref::msf_weight(g);
  std::printf("\nbackbone: %zu segments, total cost %llu\n", result.mst_edges().size(),
              static_cast<unsigned long long>(total));
  std::printf("Kruskal reference cost:       %llu  -> %s\n",
              static_cast<unsigned long long>(expected),
              total == expected ? "exact match" : "MISMATCH");

  std::printf("\nk-machine cost: %llu rounds, %llu bits over %zu Boruvka phases "
              "(MWOE confirmed by empty restricted sketches)\n",
              static_cast<unsigned long long>(result.stats.rounds),
              static_cast<unsigned long long>(result.stats.bits), result.phases.size());

  // Which machines know which backbone segments (relaxed output criterion).
  std::printf("segments recorded per machine:");
  for (MachineId i = 0; i < cluster.k(); ++i) {
    std::printf(" %zu", result.mst_by_machine[i].size());
  }
  std::printf("\n");
  return total == expected ? 0 : 1;
}
