// Random vertex partition (RVP), explicit partitions, and the REP model.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "graph/partition.hpp"

namespace kmm {
namespace {

TEST(VertexPartitionTest, RandomIsBalancedAndDeterministic) {
  const std::size_t n = 8000;
  const MachineId k = 16;
  const auto p = VertexPartition::random(n, k, 42);
  const auto q = VertexPartition::random(n, k, 42);
  for (Vertex v = 0; v < 100; ++v) EXPECT_EQ(p.home(v), q.home(v));

  std::vector<std::size_t> loads;
  p.loads(loads);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::size_t{0}), n);
  const double expected = static_cast<double>(n) / k;
  for (const auto load : loads) {
    // Θ~(n/k) balance: within 30% of the mean at this n/k ratio.
    EXPECT_NEAR(static_cast<double>(load), expected, 0.3 * expected);
  }
}

TEST(VertexPartitionTest, DifferentSeedsDiffer) {
  const auto p = VertexPartition::random(1000, 8, 1);
  const auto q = VertexPartition::random(1000, 8, 2);
  int differing = 0;
  for (Vertex v = 0; v < 1000; ++v) differing += p.home(v) != q.home(v);
  EXPECT_GT(differing, 500);  // ~ (1 - 1/k) fraction
}

TEST(VertexPartitionTest, HostedByPartitionsVertices) {
  const auto p = VertexPartition::random(500, 7, 3);
  std::size_t total = 0;
  std::vector<Vertex> hosted;
  for (MachineId i = 0; i < 7; ++i) {
    p.hosted_by(i, hosted);
    for (const Vertex v : hosted) EXPECT_EQ(p.home(v), i);
    total += hosted.size();
  }
  EXPECT_EQ(total, 500u);
}

TEST(VertexPartitionTest, RoundRobinExact) {
  const auto p = VertexPartition::round_robin(10, 3);
  EXPECT_EQ(p.home(0), 0u);
  EXPECT_EQ(p.home(1), 1u);
  EXPECT_EQ(p.home(2), 2u);
  EXPECT_EQ(p.home(3), 0u);
  std::vector<std::size_t> loads;
  p.loads(loads);
  EXPECT_EQ(loads[0], 4u);
  EXPECT_EQ(loads[1], 3u);
  EXPECT_EQ(loads[2], 3u);
}

TEST(VertexPartitionTest, SkewedConcentratesOnMachineZero) {
  const auto p = VertexPartition::skewed(100, 4, 0.5);
  std::vector<std::size_t> loads;
  p.loads(loads);
  EXPECT_GE(loads[0], 50u);
}

TEST(VertexPartitionTest, FromTable) {
  const auto p = VertexPartition::from_table({2, 0, 1, 2}, 3);
  EXPECT_EQ(p.home(0), 2u);
  EXPECT_EQ(p.home(3), 2u);
  EXPECT_EQ(p.num_vertices(), 4u);
}

TEST(VertexPartition, MakeFromTableRejectsOutOfRangeEntry) {
  const auto bad = VertexPartition::make_from_table({0, 5}, 3);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("out of range"), std::string::npos);
  // The diagnostic names the offending vertex and machine.
  EXPECT_NE(bad.error().message.find("vertex 1"), std::string::npos);

  const auto no_machines = VertexPartition::make_from_table({}, 0);
  ASSERT_FALSE(no_machines.ok());
  EXPECT_NE(no_machines.error().message.find("k >= 1"), std::string::npos);

  auto good = VertexPartition::make_from_table({0, 2, 1}, 3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().home(1), 2u);
}

TEST(EdgePartitionTest, BalancedAndDeterministic) {
  const std::size_t m = 6000;
  const auto p = EdgePartition::random(m, 8, 5);
  const auto q = EdgePartition::random(m, 8, 5);
  for (std::size_t e = 0; e < 100; ++e) EXPECT_EQ(p.home(e), q.home(e));
  std::vector<std::size_t> loads;
  p.loads(m, loads);
  const double expected = static_cast<double>(m) / 8;
  for (const auto load : loads) {
    EXPECT_NEAR(static_cast<double>(load), expected, 0.3 * expected);
  }
}

}  // namespace
}  // namespace kmm
