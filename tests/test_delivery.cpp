// The direct shard->inbox delivery plane: determinism under scheduling
// skew, payload integrity through the per-inbox arenas, and the
// staged-send fallback.
//
// test_runtime.cpp proves every ported algorithm's ledger is
// thread-invariant; this suite attacks the delivery plane itself with
// graph-shaped traffic whose handler completion order is deliberately
// skewed by deterministic pseudo-random busy-waits, and checks the
// strongest observable contract: the full ClusterStats ledger AND the
// per-inbox message sequence (source, tag, every payload word, in
// delivered order) are bit-identical to the sequential threads=1 run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

constexpr MachineId kMachines = 8;

void expect_stats_identical(const ClusterStats& a, const ClusterStats& b, const char* what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.supersteps, b.supersteps) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.local_messages, b.local_messages) << what;
  EXPECT_EQ(a.total_bits, b.total_bits) << what;
  EXPECT_EQ(a.max_link_bits, b.max_link_bits) << what;
  EXPECT_EQ(a.cut_bits, b.cut_bits) << what;
  EXPECT_EQ(a.sent_bits_by_machine, b.sent_bits_by_machine) << what;
  EXPECT_EQ(a.received_bits_by_machine, b.received_bits_by_machine) << what;
  EXPECT_EQ(a.superstep_link_max.count(), b.superstep_link_max.count()) << what;
  EXPECT_DOUBLE_EQ(a.superstep_link_max.mean(), b.superstep_link_max.mean()) << what;
  EXPECT_DOUBLE_EQ(a.superstep_link_max.min(), b.superstep_link_max.min()) << what;
  EXPECT_DOUBLE_EQ(a.superstep_link_max.max(), b.superstep_link_max.max()) << what;
}

std::vector<std::pair<const char*, Graph>> stress_graphs() {
  std::vector<std::pair<const char*, Graph>> graphs;
  graphs.emplace_back("path", gen::path(600));
  Rng rng_gnm(7);
  graphs.emplace_back("gnm", gen::gnm(800, 2400, rng_gnm));
  Rng rng_rmat(11);
  graphs.emplace_back("rmat", gen::rmat(1024, 3000, rng_rmat));
  return graphs;
}

struct StressOutcome {
  ClusterStats stats;
  // Per machine: (src, tag, payload...) of every delivered message, in
  // delivered order — the strongest per-inbox observation available.
  std::vector<std::vector<std::uint64_t>> inbox_log;
};

/// Flooding-shaped stress traffic: every machine pushes each hosted
/// vertex's id toward its cross-machine neighbors' homes each step; every
/// 17th vertex sends a 9-word payload so delivery exercises the spilled
/// (arena) path, the rest send 3-word inline payloads. With `delays`, a
/// per-(step, machine) PRF-derived busy-wait skews which handlers finish
/// first — the message pattern is untouched, so any observable difference
/// is a delivery-plane ordering bug.
StressOutcome run_skewed_stress(const Graph& g, unsigned threads, bool delays) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), kMachines));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
  Runtime rt(cluster, RuntimeConfig{.threads = threads});
  std::vector<std::vector<std::uint64_t>> log(kMachines);
  const std::uint64_t label_bits = 2 * bits_for(g.num_vertices()) + 8;
  constexpr std::size_t kSteps = 6;
  for (std::uint64_t s = 0; s < kSteps; ++s) {
    rt.step([&](MachineId self, std::span<const Message> inbox, Outbox& out) {
      if (delays) {
        const std::uint64_t spins = split3(1717, s, self) % 40000;
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < spins; ++i) sink += i;
      }
      auto& mylog = log[self];
      for (const auto& msg : inbox) {
        mylog.push_back(msg.src);
        mylog.push_back(msg.tag);
        for (const std::uint64_t w : msg.payload()) mylog.push_back(w);
      }
      std::uint64_t big[9];
      for (const Vertex v : dg.vertices_of(self)) {
        for (const auto& he : dg.neighbors(v)) {
          const MachineId dst = dg.home(he.to);
          if (dst == self) continue;
          if (v % 17 == 0) {
            for (std::size_t w = 0; w < 9; ++w) {
              big[w] = static_cast<std::uint64_t>(v) * 100 + he.to + w + s;
            }
            out.send(dst, v, big, 0);
          } else {
            out.send(dst, v, {v, he.to, s}, label_bits);
          }
        }
      }
    });
  }
  // Drain step: the last superstep's deliveries must be logged too.
  rt.step([&](MachineId self, std::span<const Message> inbox, Outbox&) {
    for (const auto& msg : inbox) {
      log[self].push_back(msg.src);
      log[self].push_back(msg.tag);
      for (const std::uint64_t w : msg.payload()) log[self].push_back(w);
    }
  });
  return StressOutcome{cluster.stats(), std::move(log)};
}

TEST(DeliveryPlane, SkewedSchedulingKeepsLedgerAndInboxOrderIdentical) {
  for (const auto& [name, g] : stress_graphs()) {
    const auto baseline = run_skewed_stress(g, 1, /*delays=*/false);
    ASSERT_GT(baseline.stats.messages, 0u) << name;
    // Delays must be invisible even sequentially (they only burn cycles).
    const auto delayed_seq = run_skewed_stress(g, 1, /*delays=*/true);
    EXPECT_EQ(baseline.inbox_log, delayed_seq.inbox_log) << name;
    expect_stats_identical(delayed_seq.stats, baseline.stats, name);
    for (const unsigned threads : {2u, 8u}) {
      const auto run = run_skewed_stress(g, threads, /*delays=*/true);
      EXPECT_EQ(run.inbox_log, baseline.inbox_log) << name << " threads=" << threads;
      expect_stats_identical(run.stats, baseline.stats, name);
    }
  }
}

TEST(DeliveryPlane, StagedDirectSendsFallBackToMergePath) {
  // Messages staged via Cluster::send() between steps force the runtime
  // off the direct plane for that superstep; the observable contract —
  // staged messages first, then shard messages in ascending source order —
  // must match the sequential path exactly.
  const auto run = [](unsigned threads) {
    Cluster cluster(ClusterConfig{.k = 4, .bandwidth_bits = 64});
    Runtime rt(cluster, RuntimeConfig{.threads = threads});
    cluster.send(0, 2, /*tag=*/7, {111}, 8);
    cluster.send(1, 2, /*tag=*/7, {222}, 8);
    rt.step([](MachineId self, std::span<const Message>, Outbox& out) {
      out.send(2, /*tag=*/9, {static_cast<std::uint64_t>(self)}, 8);
    });
    std::vector<std::uint64_t> seen;
    for (const auto& msg : cluster.inbox(2)) {
      seen.push_back(msg.src);
      seen.push_back(msg.tag);
      seen.push_back(msg.payload()[0]);
    }
    return std::pair{std::move(seen), cluster.stats().total_bits};
  };
  const auto sequential = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(parallel.first, sequential.first);
  EXPECT_EQ(parallel.second, sequential.second);
  // Machine 2's own send is self-addressed (local, free) but still lands in
  // its inbox, between sources 1 and 3.
  EXPECT_EQ(sequential.first,
            (std::vector<std::uint64_t>{0, 7, 111, 1, 7, 222, 0, 9, 0, 1, 9, 1, 2, 9, 2, 3,
                                        9, 3}));
}

TEST(DeliveryPlane, SpilledPayloadsStayValidForTheWholeInboxGeneration) {
  // Spilled payloads live in the destination inbox's arena after direct
  // delivery; they must survive until the NEXT delivery recycles that
  // generation, including across a step where other machines' inboxes are
  // refilled (per-destination arenas are independent).
  Cluster cluster(ClusterConfig{.k = 4, .bandwidth_bits = 1 << 20});
  Runtime rt(cluster, RuntimeConfig{.threads = 4});
  std::vector<std::uint64_t> big(3 * kInlinePayloadWords);
  rt.step([&](MachineId self, std::span<const Message>, Outbox& out) {
    if (self == 0) {
      for (std::size_t w = 0; w < big.size(); ++w) big[w] = 1000 + w;
      out.send(3, /*tag=*/1, big, 0);
    }
  });
  // Machine 3's payload must be intact after an intervening superstep that
  // delivers only to other machines' inboxes... which is impossible by
  // design: every delivery recycles every inbox. What must hold instead is
  // that the span handed to the NEXT step's handler is the still-valid one.
  int checked = 0;
  rt.step([&](MachineId self, std::span<const Message> inbox, Outbox&) {
    if (self != 3) return;
    ASSERT_EQ(inbox.size(), 1u);
    ASSERT_EQ(inbox[0].payload().size(), 3 * kInlinePayloadWords);
    for (std::size_t w = 0; w < inbox[0].payload().size(); ++w) {
      EXPECT_EQ(inbox[0].payload()[w], 1000 + w);
    }
    ++checked;
  });
  EXPECT_EQ(checked, 1);
}

TEST(DeliveryPlane, MixedDirectAndInlineStepsShareOneLedger) {
  // Alternating StepMode::kInline (sequential staging + superstep()) and
  // parallel (direct plane) supersteps must accumulate one coherent ledger,
  // identical to the all-sequential run.
  const auto run = [](unsigned threads) {
    Cluster cluster(ClusterConfig{.k = 4, .bandwidth_bits = 64});
    Runtime rt(cluster, RuntimeConfig{.threads = threads});
    for (int s = 0; s < 6; ++s) {
      const StepMode mode = s % 2 == 0 ? StepMode::kParallel : StepMode::kInline;
      rt.step(
          [&](MachineId self, std::span<const Message>, Outbox& out) {
            out.send((self + 1) % 4, /*tag=*/1, {static_cast<std::uint64_t>(s)}, 24);
          },
          mode);
    }
    return cluster.stats();
  };
  const auto sequential = run(1);
  const auto parallel = run(4);
  expect_stats_identical(parallel, sequential, "mixed modes");
  EXPECT_EQ(sequential.supersteps, 6u);
}

TEST(InputPipeline, DistributedGraphParallelBuildMatchesSerial) {
  // Above the cutoff, the chunked hosted-list build (per-chunk histograms +
  // exclusive prefix + scatter) must produce the identical CSR-flattened
  // hosted lists as the serial fill, for hashed and tabled partitions.
  const Graph g = gen::path(50000);
  ThreadPool pool(4);
  for (const bool hashed : {true, false}) {
    const auto part = hashed ? VertexPartition::random(50000, 12, 31)
                             : VertexPartition::skewed(50000, 12, 0.3);
    const DistributedGraph serial(g, part);
    const DistributedGraph parallel(g, part, &pool);
    EXPECT_EQ(parallel.max_machine_load(), serial.max_machine_load());
    for (MachineId i = 0; i < 12; ++i) {
      const auto a = serial.vertices_of(i);
      const auto b = parallel.vertices_of(i);
      ASSERT_EQ(a.size(), b.size()) << "machine " << i;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "machine " << i;
      // Ascending ids — the iteration order the algorithms depend on.
      EXPECT_TRUE(std::is_sorted(b.begin(), b.end())) << "machine " << i;
    }
  }
}

}  // namespace
}  // namespace kmm
