// The k-machine simulator: delivery, round charging, ledger accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hpp"
#include "cluster/conversion.hpp"
#include "cluster/distributed_graph.hpp"
#include "cluster/proxy.hpp"
#include "graph/generators.hpp"
#include "util/hashing.hpp"
#include "util/stats.hpp"

namespace kmm {
namespace {

ClusterConfig small_config(MachineId k, std::uint64_t bandwidth) {
  ClusterConfig cfg;
  cfg.k = k;
  cfg.bandwidth_bits = bandwidth;
  return cfg;
}

TEST(ClusterTest, DeliversMessages) {
  Cluster c(small_config(3, 1000));
  c.send(0, 1, 7, {11, 22}, 10);
  c.send(2, 1, 8, {33}, 5);
  c.superstep();
  const auto inbox = c.inbox(1);
  ASSERT_EQ(inbox.size(), 2u);
  EXPECT_EQ(inbox[0].src, 0u);
  EXPECT_EQ(inbox[0].tag, 7u);
  EXPECT_EQ(inbox[0].payload()[1], 22u);
  EXPECT_EQ(inbox[1].src, 2u);
  EXPECT_TRUE(c.inbox(0).empty());
}

TEST(ClusterTest, LargePayloadSpillsToArenaIntact) {
  // > kInlinePayloadWords words forces the arena path; contents must be
  // byte-identical on the receive side and survive until the next superstep.
  Cluster c(small_config(2, 1 << 20));
  std::vector<std::uint64_t> big(3 * kInlinePayloadWords);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = 0x9E3779B97F4A7C15ull * (i + 1);
  c.send(0, 1, 9, big, 0);
  big.assign(big.size(), 0);  // sender buffer reusable immediately: send copied
  c.superstep();
  const auto inbox = c.inbox(1);
  ASSERT_EQ(inbox.size(), 1u);
  const auto payload = inbox[0].payload();
  ASSERT_EQ(payload.size(), 3 * kInlinePayloadWords);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(payload[i], 0x9E3779B97F4A7C15ull * (i + 1)) << i;
  }
  EXPECT_EQ(inbox[0].wire_bits(), 64 * payload.size() + kMessageHeaderBits);
}

TEST(ClusterTest, ArenaGenerationsRecycleWithoutCorruption) {
  // Many supersteps of mixed inline/spilled payloads through the same
  // cluster: each generation's payloads must read back correctly even as
  // the pending/live arenas swap and recycle their chunks.
  Cluster c(small_config(4, 1 << 20));
  for (std::uint64_t round = 0; round < 50; ++round) {
    for (MachineId src = 0; src < 4; ++src) {
      const MachineId dst = (src + 1) % 4;
      c.send(src, dst, 1, {round, src}, 0);  // inline
      std::vector<std::uint64_t> big(kInlinePayloadWords + 1 + (round % 7),
                                     round * 131 + src);
      c.send(src, dst, 2, big, 0);  // spilled
    }
    c.superstep();
    for (MachineId m = 0; m < 4; ++m) {
      const auto inbox = c.inbox(m);
      ASSERT_EQ(inbox.size(), 2u);
      const MachineId src = (m + 3) % 4;
      EXPECT_EQ(inbox[0].payload()[0], round);
      EXPECT_EQ(inbox[0].payload()[1], src);
      for (const std::uint64_t w : inbox[1].payload()) {
        EXPECT_EQ(w, round * 131 + src);
      }
    }
  }
}

TEST(PayloadArenaTest, StablePointersAcrossGrowthAndReuseAfterReset) {
  PayloadArena arena;
  std::vector<std::pair<const std::uint64_t*, std::uint64_t>> allocs;
  // Far more than one chunk's worth, including oversized requests.
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const std::size_t n = 1 + i % 97;
    std::uint64_t* p = arena.alloc(n);
    for (std::size_t w = 0; w < n; ++w) p[w] = i;
    allocs.emplace_back(p, i);
  }
  std::uint64_t* huge = arena.alloc(1 << 14);  // bigger than a chunk
  huge[0] = 42;
  for (const auto& [p, v] : allocs) EXPECT_EQ(*p, v);  // nothing moved
  const std::size_t cap = arena.capacity_words();
  arena.reset();
  // A smaller second generation reuses the first generation's chunks: no
  // growth at all.
  for (int i = 0; i < 1500; ++i) (void)arena.alloc(64);
  EXPECT_EQ(arena.capacity_words(), cap);
}

TEST(ClusterTest, InboxClearedNextSuperstep) {
  Cluster c(small_config(2, 100));
  c.send(0, 1, 1, {}, 1);
  c.superstep();
  EXPECT_EQ(c.inbox(1).size(), 1u);
  c.superstep();
  EXPECT_TRUE(c.inbox(1).empty());
}

TEST(ClusterTest, RoundChargingSingleLink) {
  Cluster c(small_config(2, 100));
  // 3 messages of (64+16) wire bits each on one link = 240 bits -> 3 rounds.
  for (int i = 0; i < 3; ++i) c.send(0, 1, 0, {1});
  EXPECT_EQ(c.superstep(), 3u);
  EXPECT_EQ(c.stats().rounds, 3u);
}

TEST(ClusterTest, RoundsAreMaxOverLinks) {
  Cluster c(small_config(4, 100));
  // Link (0,1) gets 300 bits; every other link 80 -> rounds = 3.
  c.send(0, 1, 0, {}, 284);  // +16 header = 300
  c.send(2, 3, 0, {}, 64);
  c.send(1, 2, 0, {}, 64);
  EXPECT_EQ(c.superstep(), 3u);
}

TEST(ClusterTest, OppositeDirectionsAreIndependent) {
  Cluster c(small_config(2, 100));
  c.send(0, 1, 0, {}, 84);  // 100 bits with header
  c.send(1, 0, 0, {}, 84);
  EXPECT_EQ(c.superstep(), 1u);  // full duplex: one round suffices
}

TEST(ClusterTest, SelfMessagesAreFree) {
  Cluster c(small_config(2, 8));
  c.send(1, 1, 3, {42}, 1 << 20);
  EXPECT_EQ(c.superstep(), 0u);
  EXPECT_EQ(c.inbox(1).size(), 1u);
  EXPECT_EQ(c.stats().local_messages, 1u);
  EXPECT_EQ(c.stats().messages, 0u);
  EXPECT_EQ(c.stats().total_bits, 0u);
}

TEST(ClusterTest, EmptySuperstepFree) {
  Cluster c(small_config(2, 8));
  EXPECT_EQ(c.superstep(), 0u);
  EXPECT_EQ(c.stats().rounds, 0u);
  EXPECT_EQ(c.stats().supersteps, 0u);
}

TEST(ClusterTest, LedgerAccounting) {
  Cluster c(small_config(3, 1000));
  c.send(0, 1, 0, {1, 2, 3});  // 3*64+16 = 208 wire bits
  c.send(1, 2, 0, {}, 34);     // 50 wire bits
  c.superstep();
  EXPECT_EQ(c.stats().messages, 2u);
  EXPECT_EQ(c.stats().total_bits, 208 + 50u);
  EXPECT_EQ(c.stats().sent_bits_by_machine[0], 208u);
  EXPECT_EQ(c.stats().received_bits_by_machine[2], 50u);
  EXPECT_EQ(c.stats().max_link_bits, 208u);
}

TEST(ClusterTest, ChargeRoundsAdds) {
  Cluster c(small_config(2, 8));
  c.charge_rounds(17);
  EXPECT_EQ(c.stats().rounds, 17u);
}

TEST(ClusterTest, CutTracking) {
  Cluster c(small_config(4, 1000));
  c.track_cut({0, 0, 1, 1});
  c.send(0, 1, 0, {}, 84);  // same side, not counted
  c.send(0, 2, 0, {}, 84);  // crossing: 100 wire bits
  c.send(3, 1, 0, {}, 34);  // crossing: 50
  c.send(3, 3, 0, {}, 84);  // self
  c.superstep();
  EXPECT_EQ(c.stats().cut_bits, 150u);
}

TEST(ClusterTest, DefaultConfigScalesWithN) {
  const auto small = ClusterConfig::for_graph(64, 4);
  const auto large = ClusterConfig::for_graph(1 << 20, 4);
  EXPECT_LT(small.bandwidth_bits, large.bandwidth_bits);
  EXPECT_GE(small.bandwidth_bits, 64u);
}

TEST(ClusterTest, MakeRejectsBadConfig) {
  ClusterConfig cfg;
  cfg.k = 1;
  const auto too_small = Cluster::make(cfg);
  ASSERT_FALSE(too_small.ok());
  EXPECT_NE(too_small.error().message.find("k >= 2"), std::string::npos);

  cfg.k = 4;
  cfg.bandwidth_bits = 0;
  const auto no_bandwidth = Cluster::make(cfg);
  ASSERT_FALSE(no_bandwidth.ok());
  EXPECT_NE(no_bandwidth.error().message.find("bandwidth"), std::string::npos);

  cfg.bandwidth_bits = 64;
  auto good = Cluster::make(cfg);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().k(), 4u);
}

TEST(DistributedGraphTest, MakeRejectsPartitionSizeMismatch) {
  const Graph g(4, {{0, 1, 1}, {2, 3, 2}});
  const auto bad = DistributedGraph::make(g, VertexPartition::round_robin(5, 2));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("partition size must match"), std::string::npos);

  auto good = DistributedGraph::make(g, VertexPartition::round_robin(4, 2));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().num_vertices(), 4u);
}

TEST(ClusterDeath, RejectsOutOfRangeMachine) {
  Cluster c(small_config(2, 8));
  EXPECT_DEATH(c.send(0, 5, 0, {}, 1), "");
}

TEST(DistributedGraphTest, HostsMatchPartition) {
  Rng rng(1);
  const Graph g = gen::gnm(200, 400, rng);
  const auto part = VertexPartition::random(200, 8, 9);
  const DistributedGraph dg(g, part);
  std::size_t total = 0;
  for (MachineId i = 0; i < 8; ++i) {
    for (const Vertex v : dg.vertices_of(i)) EXPECT_EQ(dg.home(v), i);
    total += dg.vertices_of(i).size();
  }
  EXPECT_EQ(total, 200u);
  EXPECT_GE(dg.max_machine_load(), 200u / 8);
}

TEST(ProxyMapTest, DeterministicAndSpread) {
  const ProxyMap p(123, 16);
  const ProxyMap q(123, 16);
  std::vector<int> counts(16, 0);
  for (std::uint64_t l = 0; l < 1600; ++l) {
    EXPECT_EQ(p.proxy_of(l), q.proxy_of(l));
    ++counts[p.proxy_of(l)];
  }
  for (const int cnt : counts) EXPECT_NEAR(cnt, 100, 40);
}

TEST(ProxyMapTest, FixedRoutesEverythingToCoordinator) {
  const auto p = ProxyMap::fixed(3, 8);
  EXPECT_TRUE(p.is_fixed());
  for (std::uint64_t l = 0; l < 100; ++l) EXPECT_EQ(p.proxy_of(l), 3u);
}

TEST(ProxyMapTest, PrfMatchesDWiseLoadBalance) {
  // DESIGN.md substitution check: the PRF-backed proxy map should balance
  // loads statistically like an honest d-wise independent polynomial hash.
  constexpr std::uint64_t kLabels = 4000;
  constexpr MachineId kMachines = 16;
  Rng rng(77);
  const PolynomialHash poly(8, rng);
  const ProxyMap prf(rng.next(), kMachines);
  std::vector<int> load_poly(kMachines, 0), load_prf(kMachines, 0);
  for (std::uint64_t l = 0; l < kLabels; ++l) {
    ++load_poly[poly.bucket(l, kMachines)];
    ++load_prf[prf.proxy_of(l)];
  }
  Accumulator a, b;
  for (MachineId i = 0; i < kMachines; ++i) {
    a.add(load_poly[i]);
    b.add(load_prf[i]);
  }
  // Same mean by construction; standard deviations in the same ballpark
  // (both ~ sqrt(mean) for balanced hashing).
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  const double binomial_sd = std::sqrt(a.mean());
  EXPECT_LT(a.stddev(), 3 * binomial_sd);
  EXPECT_LT(b.stddev(), 3 * binomial_sd);
}

TEST(ConversionTheorem, BoundShape) {
  CongestedCliqueProfile profile;
  profile.message_complexity = 1'000'000;
  profile.round_complexity = 10;
  profile.max_node_degree_msgs = 100;
  // M/k^2 dominates at small k; Δ'T/k dominates... both shrink with k.
  EXPECT_GT(conversion_rounds(profile, 2), conversion_rounds(profile, 8));
  EXPECT_EQ(conversion_rounds(profile, 10), 1'000'000 / 100 + 100 * 10 / 10u);
  EXPECT_EQ(conversion_rounds(profile, 10, 3), 3 * (10000 + 100u));
}

TEST(ConversionTheorem, FloodingProfile) {
  const auto p = flooding_profile(1000, 5000, 12, 40);
  EXPECT_EQ(p.round_complexity, 13u);
  EXPECT_EQ(p.message_complexity, 2 * 5000 * 13u);
  EXPECT_EQ(p.max_node_degree_msgs, 40u);
}

}  // namespace
}  // namespace kmm
