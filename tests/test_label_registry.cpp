// LabelRegistry + SketchPool integrity: slot recycling across occupants,
// sorted touched-list iteration, capacity retention, pool reuse, builder
// rebinding — and determinism of the registry-backed Borůvka engine across
// thread counts {1, 2, 8}.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

TEST(LabelRegistry, InsertFindErase) {
  LabelRegistry<int> reg;
  reg.reset_universe(100);
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.find(7), nullptr);

  bool created = false;
  reg.get_or_create(7, created) = 70;
  EXPECT_TRUE(created);
  reg.get_or_create(7, created) = 71;
  EXPECT_FALSE(created);
  ASSERT_NE(reg.find(7), nullptr);
  EXPECT_EQ(*reg.find(7), 71);
  EXPECT_EQ(reg.at(7), 71);
  EXPECT_TRUE(reg.contains(7));
  EXPECT_EQ(reg.size(), 1u);

  reg.erase(7);
  EXPECT_FALSE(reg.contains(7));
  EXPECT_EQ(reg.find(7), nullptr);
  EXPECT_TRUE(reg.empty());
}

TEST(LabelRegistry, SortedIterationIsAscending) {
  LabelRegistry<int> reg;
  reg.reset_universe(64);
  bool created = false;
  for (const Label label : {41ull, 3ull, 17ull, 0ull, 63ull, 9ull}) {
    reg.get_or_create(label, created) = static_cast<int>(label) * 2;
  }
  std::vector<Label> seen;
  reg.for_each_sorted([&](Label label, int value) {
    seen.push_back(label);
    EXPECT_EQ(value, static_cast<int>(label) * 2);
  });
  EXPECT_EQ(seen, (std::vector<Label>{0, 3, 9, 17, 41, 63}));

  // Erase in the middle, insert a new label: still sorted, still exact.
  reg.erase(17);
  reg.get_or_create(5, created) = 10;
  seen.clear();
  reg.for_each_sorted([&](Label label, int) { seen.push_back(label); });
  EXPECT_EQ(seen, (std::vector<Label>{0, 3, 5, 9, 41, 63}));
}

TEST(LabelRegistry, SlotRecyclingRetainsPayloadCapacity) {
  LabelRegistry<std::vector<int>> reg;
  reg.reset_universe(32);
  bool created = false;
  auto& v = reg.get_or_create(4, created);
  v.assign(100, 1);
  const auto cap = v.capacity();
  const int* data = v.data();
  reg.erase(4);

  // A different label must land in the recycled slot and see the old
  // payload's storage (stale contents, caller-reset contract).
  auto& w = reg.get_or_create(9, created);
  EXPECT_TRUE(created);
  EXPECT_EQ(w.data(), data);
  EXPECT_GE(w.capacity(), cap);
  w.clear();  // capacity-retaining reset, as the engine does
  EXPECT_GE(w.capacity(), cap);
}

TEST(LabelRegistry, ClearRecyclesAllSlotsInPlace) {
  LabelRegistry<std::vector<int>> reg;
  reg.reset_universe(16);
  bool created = false;
  std::vector<const void*> addresses;
  for (Label label = 0; label < 8; ++label) {
    auto& v = reg.get_or_create(label, created);
    v.assign(16, static_cast<int>(label));
    addresses.push_back(v.data());
  }
  reg.clear();
  EXPECT_TRUE(reg.empty());
  // Refill with different labels: every payload reuses recycled storage.
  std::vector<const void*> recycled;
  for (Label label = 8; label < 16; ++label) {
    auto& v = reg.get_or_create(label, created);
    EXPECT_TRUE(created);
    recycled.push_back(v.data());
  }
  std::sort(addresses.begin(), addresses.end());
  std::sort(recycled.begin(), recycled.end());
  EXPECT_EQ(addresses, recycled);
}

TEST(LabelRegistry, EraseBySwapKeepsRemainderConsistent) {
  LabelRegistry<int> reg;
  reg.reset_universe(1000);
  bool created = false;
  for (Label label = 0; label < 100; ++label) reg.get_or_create(label, created) = 1;
  // Erase every third label, including the touched-list tail.
  for (Label label = 0; label < 100; label += 3) reg.erase(label);
  std::size_t count = 0;
  Label prev = 0;
  reg.for_each_sorted([&](Label label, int) {
    if (count > 0) {
      EXPECT_GT(label, prev);
    }
    EXPECT_NE(label % 3, 0u);
    prev = label;
    ++count;
  });
  EXPECT_EQ(count, reg.size());
  EXPECT_EQ(count, 66u);
}

TEST(LabelRegistry, ResetUniverseEmptiesAndResizes) {
  LabelRegistry<int> reg;
  reg.reset_universe(8);
  bool created = false;
  reg.get_or_create(3, created) = 33;
  reg.reset_universe(16);
  EXPECT_TRUE(reg.empty());
  EXPECT_FALSE(reg.contains(3));
  reg.get_or_create(15, created) = 1;
  EXPECT_TRUE(created);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(SketchPool, RecyclesStorageAndZeroes) {
  const std::uint64_t universe = 1 << 16;
  const auto params = L0Params::for_universe(universe);
  SketchPool pool;

  L0Sampler& first = pool.acquire(universe, params, 11);
  first.update(42, 1);
  EXPECT_FALSE(first.is_zero());
  const L0Sampler* address = &first;
  EXPECT_EQ(pool.in_use(), 1u);

  pool.release_all();
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.capacity(), 1u);

  // Same shape, new seed: same object recycled, zeroed, rebound.
  L0Sampler& second = pool.acquire(universe, params, 13);
  EXPECT_EQ(&second, address);
  EXPECT_TRUE(second.is_zero());
  EXPECT_EQ(second.seed(), 13u);
}

TEST(SketchPool, StablePointersAcrossGrowth) {
  const std::uint64_t universe = 1 << 12;
  const auto params = L0Params::for_universe(universe);
  SketchPool pool;
  const std::uint32_t a = pool.acquire_index(universe, params, 1);
  L0Sampler* pa = &pool.at(a);
  for (int i = 0; i < 50; ++i) (void)pool.acquire_index(universe, params, 2);
  EXPECT_EQ(&pool.at(a), pa);  // growth must not move live accumulators
  EXPECT_EQ(pool.in_use(), 51u);
}

TEST(SketchPool, PooledAccumulatorMatchesFreshSketch) {
  // acquire -> accumulate must equal a from-scratch sketch, across recycling.
  const std::size_t n = 64;
  Rng rng(3);
  const Graph g = gen::gnm(n, 3 * n, rng);
  const DistributedGraph dg(g, VertexPartition::random(n, 4, 5));
  const GraphSketchBuilder builder(n, 7);
  std::vector<Vertex> part(n / 2);
  std::iota(part.begin(), part.end(), 0);

  SketchPool pool;
  std::vector<std::uint64_t> scratch;
  for (int round = 0; round < 3; ++round) {
    pool.release_all();
    L0Sampler& pooled = pool.acquire(builder.universe(), builder.params(), builder.seed());
    builder.accumulate_part(dg, part, kNoWeightLimit, pooled, scratch);
    const L0Sampler fresh = builder.sketch_part(dg, part);
    WordWriter wp, wf;
    pooled.serialize(wp);
    fresh.serialize(wf);
    EXPECT_EQ(std::move(wp).take(), std::move(wf).take());
  }
}

TEST(GraphSketchBuilder, RebindMatchesFreshBuilder) {
  const std::size_t n = 96;
  Rng rng(9);
  const Graph g = gen::gnm(n, 4 * n, rng);
  const DistributedGraph dg(g, VertexPartition::random(n, 4, 11));
  std::vector<Vertex> part;
  for (Vertex v = 0; v < n; v += 3) part.push_back(v);

  GraphSketchBuilder reused(n, /*seed=*/100);
  for (const std::uint64_t seed : {101ull, 102ull, 5555ull}) {
    reused.rebind(seed);
    const GraphSketchBuilder fresh(n, seed);
    EXPECT_EQ(reused.seed(), fresh.seed());
    WordWriter wr, wf;
    reused.sketch_part(dg, part).serialize(wr);
    fresh.sketch_part(dg, part).serialize(wf);
    EXPECT_EQ(std::move(wr).take(), std::move(wf).take());
  }
}

// -- engine determinism on the registry representation ----------------------
//
// The registries' touched-list iteration must reproduce the ordered-map
// wire order for every thread count: labels, edges, and the full ledger
// must be identical across threads {1, 2, 8}.

struct EngineRun {
  std::vector<Label> labels;
  std::uint64_t components = 0;
  std::vector<std::pair<Vertex, Vertex>> forest;
  std::vector<WeightedEdge> mst;
  RunStats stats;
};

EngineRun run_engine(const Graph& g, bool mst, unsigned threads) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 8, 21));
  BoruvkaConfig cfg;
  cfg.seed = 23;
  cfg.threads = threads;
  const BoruvkaResult res = mst ? minimum_spanning_forest(cluster, dg, cfg)
                                : connected_components(cluster, dg, cfg);
  return EngineRun{res.labels, res.num_components, res.forest_edges(), res.mst_edges(),
                   res.stats};
}

TEST(RegistryEngine, ThreadCountInvariance) {
  Rng rng(7);
  const Graph gnm = gen::gnm(400, 1200, rng);
  const Graph weighted = with_unique_weights(with_random_weights(gen::path(300), rng, 1000));
  for (const bool mst : {false, true}) {
    const Graph& g = mst ? weighted : gnm;
    const EngineRun base = run_engine(g, mst, 1);
    for (const unsigned threads : {2u, 8u}) {
      const EngineRun run = run_engine(g, mst, threads);
      EXPECT_EQ(run.labels, base.labels) << "mst=" << mst << " threads=" << threads;
      EXPECT_EQ(run.components, base.components);
      EXPECT_EQ(run.forest, base.forest);
      EXPECT_EQ(run.mst.size(), base.mst.size());
      EXPECT_EQ(run.stats.rounds, base.stats.rounds);
      EXPECT_EQ(run.stats.messages, base.stats.messages);
      EXPECT_EQ(run.stats.bits, base.stats.bits);
      EXPECT_EQ(run.stats.supersteps, base.stats.supersteps);
    }
  }
}

}  // namespace
}  // namespace kmm
