// The Section 3.1 MST algorithm: exact agreement with Kruskal under unique
// weights, output criterion, forests on disconnected inputs.

#include <gtest/gtest.h>

#include <algorithm>

#include "kmm.hpp"

namespace kmm {
namespace {

BoruvkaResult run_mst(const Graph& g, MachineId k, std::uint64_t seed) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  return minimum_spanning_forest(cluster, dg, cfg);
}

void expect_exact_mst(const Graph& g, const BoruvkaResult& result) {
  const auto expected = ref::minimum_spanning_forest(g);
  const auto got = result.mst_edges();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].u, expected[i].u);
    EXPECT_EQ(got[i].v, expected[i].v);
    EXPECT_EQ(got[i].w, expected[i].w);
  }
  // The MST is a spanning forest of g.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (const auto& e : got) pairs.emplace_back(e.u, e.v);
  EXPECT_TRUE(ref::is_spanning_forest(g, pairs));
}

Graph weighted(Graph g, std::uint64_t seed, Weight limit = 100000) {
  Rng rng(seed);
  return with_unique_weights(with_random_weights(g, rng, limit));
}

TEST(Mst, SingleEdge) {
  const Graph g(2, {{0, 1, 5}});
  const auto result = run_mst(g, 2, 1);
  ASSERT_EQ(result.mst_edges().size(), 1u);
  EXPECT_EQ(result.mst_edges()[0].w, 5u);
}

TEST(Mst, Triangle) {
  const Graph g(3, {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}});
  expect_exact_mst(g, run_mst(g, 2, 3));
}

TEST(Mst, PathAlreadyTree) {
  Rng rng(5);
  const Graph g = weighted(gen::path(60), 7);
  const auto result = run_mst(g, 4, 7);
  expect_exact_mst(g, result);
  EXPECT_EQ(result.mst_edges().size(), 59u);
}

TEST(Mst, RandomConnected) {
  for (const std::uint64_t seed : {11ULL, 13ULL, 17ULL}) {
    Rng rng(seed);
    const Graph g = weighted(gen::connected_gnm(120, 320, rng), seed);
    expect_exact_mst(g, run_mst(g, 8, seed));
  }
}

TEST(Mst, Grid) {
  const Graph g = weighted(gen::grid(10, 12), 19);
  expect_exact_mst(g, run_mst(g, 6, 19));
}

TEST(Mst, CompleteGraph) {
  const Graph g = weighted(gen::complete(40), 23);
  expect_exact_mst(g, run_mst(g, 4, 23));
}

TEST(Mst, DisconnectedYieldsForest) {
  Rng rng(29);
  const Graph g = weighted(gen::multi_component(150, 360, 5, rng), 29);
  const auto result = run_mst(g, 8, 29);
  expect_exact_mst(g, result);
  EXPECT_EQ(result.num_components, 5u);
  EXPECT_EQ(result.mst_edges().size(), g.num_vertices() - 5u);
}

TEST(Mst, HeavyTailWeights) {
  // Exponentially spread weights stress the elimination loop's threshold
  // descent (many distinct scales to cut through).
  Rng rng(31);
  Graph base = gen::connected_gnm(100, 260, rng);
  auto edges = base.edges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    edges[i].w = (1ULL << (i % 40)) + i;  // wildly spread, distinct
  }
  const Graph g(base.num_vertices(), std::move(edges));
  ASSERT_TRUE(g.has_unique_weights());
  expect_exact_mst(g, run_mst(g, 8, 31));
}

TEST(Mst, EqualStructureDifferentSeedsAgree) {
  Rng rng(37);
  const Graph g = weighted(gen::connected_gnm(90, 230, rng), 37);
  const auto a = run_mst(g, 4, 41);
  const auto b = run_mst(g, 4, 43);
  // MST is unique under distinct weights: any two runs agree exactly.
  const auto ea = a.mst_edges();
  const auto eb = b.mst_edges();
  EXPECT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].u, eb[i].u);
    EXPECT_EQ(ea[i].v, eb[i].v);
  }
}

TEST(Mst, OutputCriterionAtLeastOneMachine) {
  Rng rng(47);
  const Graph g = weighted(gen::connected_gnm(80, 200, rng), 47);
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 8, 1));
  const auto result = minimum_spanning_forest(cluster, dg);
  // Theorem 2(a): each MST edge is output by >= 1 machine; collect the
  // per-machine views and check the union covers Kruskal exactly.
  std::size_t machines_with_output = 0;
  for (const auto& per_machine : result.mst_by_machine) {
    if (!per_machine.empty()) ++machines_with_output;
  }
  EXPECT_GT(machines_with_output, 1u);  // outputs are spread across proxies
  expect_exact_mst(g, result);
}

TEST(Mst, PhaseCountLogarithmic) {
  Rng rng(53);
  const Graph g = weighted(gen::connected_gnm(256, 640, rng), 53);
  const auto result = run_mst(g, 8, 53);
  EXPECT_LE(result.phases.size(), 12 * bits_for(g.num_vertices()));
  EXPECT_TRUE(result.converged);
  // Elimination loops are the Section 3.1 log-factor: a handful of
  // iterations per phase, not hundreds.
  for (const auto& phase : result.phases) {
    EXPECT_LE(phase.elimination_iterations, 4 * bits_for(g.num_vertices()));
  }
}

TEST(MstDeath, RequiresUniqueWeights) {
  const Graph g(3, {{0, 1, 7}, {1, 2, 7}});
  Cluster cluster(ClusterConfig::for_graph(3, 2));
  const DistributedGraph dg(g, VertexPartition::random(3, 2, 1));
  EXPECT_DEATH((void)minimum_spanning_forest(cluster, dg), "distinct edge weights");
}

struct MstSweepCase {
  std::size_t n;
  MachineId k;
  std::uint64_t seed;
};

class MstSweep : public ::testing::TestWithParam<MstSweepCase> {};

TEST_P(MstSweep, MatchesKruskal) {
  const auto& c = GetParam();
  Rng rng(split(c.seed, c.n));
  const Graph g = weighted(gen::connected_gnm(c.n, 5 * c.n / 2, rng), split(c.seed, 3));
  expect_exact_mst(g, run_mst(g, c.k, c.seed));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MstSweep,
    ::testing::Values(MstSweepCase{16, 2, 1}, MstSweepCase{16, 4, 2},
                      MstSweepCase{48, 2, 3}, MstSweepCase{48, 8, 4},
                      MstSweepCase{96, 4, 5}, MstSweepCase{96, 8, 6},
                      MstSweepCase{160, 8, 7}, MstSweepCase{160, 16, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
             "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace kmm
