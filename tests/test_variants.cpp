// Algorithm variants and extensions: footnote-9 coin-flip merging, the
// Section 1.2 single-coordinator ablation, Theorem 2(b) strict MST output,
// and leader election.

#include <gtest/gtest.h>

#include <algorithm>

#include "kmm.hpp"

namespace kmm {
namespace {

TEST(CoinFlipMerge, MatchesReferenceAcrossFamilies) {
  Rng rng(1);
  const std::vector<Graph> graphs = {gen::path(120), gen::cycle(121),
                                     gen::gnm(150, 300, rng),
                                     gen::multi_component(160, 400, 4, rng)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
    const DistributedGraph dg(
        g, VertexPartition::random(g.num_vertices(), 8, split(3, i)));
    BoruvkaConfig cfg{.seed = split(5, i)};
    cfg.merge_rule = MergeRule::kCoinFlip;
    const auto res = connected_components(cluster, dg, cfg);
    EXPECT_EQ(canonical_labels(res.labels), ref::component_labels(g)) << "family " << i;
    EXPECT_TRUE(ref::is_spanning_forest(g, res.forest_edges()));
    EXPECT_TRUE(res.converged);
  }
}

TEST(CoinFlipMerge, TreesHaveDepthOne) {
  // The footnote-9 rule never builds chains: one merge iteration per
  // phase suffices (plus the empty closing check).
  Rng rng(7);
  const Graph g = gen::connected_gnm(300, 700, rng);
  Cluster cluster(ClusterConfig::for_graph(300, 8));
  const DistributedGraph dg(g, VertexPartition::random(300, 8, 9));
  BoruvkaConfig cfg{.seed = 11};
  cfg.merge_rule = MergeRule::kCoinFlip;
  const auto res = connected_components(cluster, dg, cfg);
  EXPECT_LE(res.max_merge_iterations, 1u);
  EXPECT_EQ(res.num_components, 1u);
}

TEST(CoinFlipMerge, UsesMorePhasesThanDrr) {
  // Merge probability per selection is 1/4 vs DRR's 1/2, so coin-flip
  // needs more phases on average (both O(log n)).
  Rng rng(13);
  const Graph g = gen::connected_gnm(512, 1200, rng);
  double drr_phases = 0, coin_phases = 0;
  for (int trial = 0; trial < 5; ++trial) {
    for (const MergeRule rule : {MergeRule::kDrr, MergeRule::kCoinFlip}) {
      Cluster cluster(ClusterConfig::for_graph(512, 8));
      const DistributedGraph dg(g, VertexPartition::random(512, 8, split(15, trial)));
      BoruvkaConfig cfg{.seed = split(17, trial)};
      cfg.merge_rule = rule;
      const auto res = connected_components(cluster, dg, cfg);
      (rule == MergeRule::kDrr ? drr_phases : coin_phases) +=
          static_cast<double>(res.phases.size());
    }
  }
  EXPECT_GT(coin_phases, drr_phases);
}

TEST(CoinFlipMerge, MstStillExact) {
  Rng rng(19);
  Graph g = with_unique_weights(
      with_random_weights(gen::connected_gnm(100, 260, rng), rng));
  Cluster cluster(ClusterConfig::for_graph(100, 4));
  const DistributedGraph dg(g, VertexPartition::random(100, 4, 21));
  BoruvkaConfig cfg{.seed = 23};
  cfg.merge_rule = MergeRule::kCoinFlip;
  const auto res = minimum_spanning_forest(cluster, dg, cfg);
  const auto expected = ref::minimum_spanning_forest(g);
  ASSERT_EQ(res.mst_edges().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(res.mst_edges()[i].u, expected[i].u);
    EXPECT_EQ(res.mst_edges()[i].v, expected[i].v);
  }
}

TEST(Coordinator, CorrectButCongested) {
  Rng rng(25);
  const Graph g = gen::gnm(512, 1500, rng);
  const VertexPartition part = VertexPartition::random(512, 16, 27);

  Cluster c1(ClusterConfig::for_graph(512, 16));
  const DistributedGraph d1(g, part);
  // Disable the (identical-in-both-modes) randomness-relay charge so the
  // comparison isolates the routing difference.
  BoruvkaConfig proxies{.seed = 29, .charge_randomness = false};
  const auto rp = connected_components(c1, d1, proxies);

  Cluster c2(ClusterConfig::for_graph(512, 16));
  const DistributedGraph d2(g, part);
  BoruvkaConfig coord = proxies;
  coord.single_coordinator = true;
  const auto rc = connected_components(c2, d2, coord);

  // Same answers...
  EXPECT_EQ(canonical_labels(rp.labels), canonical_labels(rc.labels));
  EXPECT_EQ(rp.num_components, rc.num_components);
  // ...but the coordinator pays for the congestion (Section 1.2).
  EXPECT_GT(rc.stats.rounds, 2 * rp.stats.rounds);
  // All sketch traffic landed on machine 0's links.
  EXPECT_GT(c2.stats().received_bits_by_machine[0],
            c1.stats().received_bits_by_machine[0]);
}

TEST(StrictOutput, BothHomesKnowEveryEdge) {
  Rng rng(31);
  Graph g = with_unique_weights(
      with_random_weights(gen::connected_gnm(120, 300, rng), rng));
  Cluster cluster(ClusterConfig::for_graph(120, 8));
  const DistributedGraph dg(g, VertexPartition::random(120, 8, 33));
  const auto mst = minimum_spanning_forest(cluster, dg);
  const auto strict = announce_mst_to_home_machines(cluster, dg, mst);

  // Theorem 2(b): each edge must be present at BOTH endpoints' homes.
  for (const auto& e : mst.mst_edges()) {
    for (const MachineId home : {dg.home(e.u), dg.home(e.v)}) {
      const auto& list = strict.edges_by_home[home];
      const bool found = std::any_of(list.begin(), list.end(), [&](const WeightedEdge& x) {
        return x.u == e.u && x.v == e.v;
      });
      EXPECT_TRUE(found) << "edge (" << e.u << "," << e.v << ") missing at machine "
                         << home;
    }
  }
  // And each home machine only holds edges incident to its vertices.
  for (MachineId i = 0; i < cluster.k(); ++i) {
    for (const auto& e : strict.edges_by_home[i]) {
      EXPECT_TRUE(dg.home(e.u) == i || dg.home(e.v) == i);
    }
  }
  EXPECT_GT(strict.stats.rounds, 0u);
}

TEST(StrictOutput, StarCentersHomePaysTheBill) {
  // The Ω~(n/k) criterion-(b) cost concentrates at the star center's home.
  const std::size_t n = 1024;
  const Graph g = with_unique_weights(gen::star(n));
  Cluster cluster(ClusterConfig::for_graph(n, 8));
  const DistributedGraph dg(g, VertexPartition::random(n, 8, 35));
  const auto mst = minimum_spanning_forest(cluster, dg);
  ASSERT_EQ(mst.mst_edges().size(), n - 1);  // the star IS its MST

  const auto before = cluster.stats().received_bits_by_machine;
  const auto strict = announce_mst_to_home_machines(cluster, dg, mst);
  const auto after = cluster.stats().received_bits_by_machine;

  const MachineId center_home = dg.home(0);
  std::uint64_t center_recv = after[center_home] - before[center_home];
  std::uint64_t max_other = 0;
  for (MachineId i = 0; i < cluster.k(); ++i) {
    if (i != center_home) max_other = std::max(max_other, after[i] - before[i]);
  }
  EXPECT_GT(center_recv, 3 * max_other);
  EXPECT_EQ(strict.edges_by_home[center_home].size(), n - 1);
}

TEST(LeaderElection, AllMachinesAgree) {
  for (const MachineId k : {MachineId{2}, MachineId{5}, MachineId{16}}) {
    Cluster cluster(ClusterConfig::for_graph(1024, k));
    const auto a = elect_leader(cluster, 42);
    EXPECT_LT(a.leader, k);
    // O(1) rounds, k(k-1) messages.
    EXPECT_LE(a.stats.rounds, 4u);
    EXPECT_EQ(a.stats.messages, static_cast<std::uint64_t>(k) * (k - 1));
    // Deterministic given the seed.
    Cluster cluster2(ClusterConfig::for_graph(1024, k));
    EXPECT_EQ(elect_leader(cluster2, 42).leader, a.leader);
  }
}

TEST(LeaderElection, DifferentSeedsMoveTheLeader) {
  std::set<MachineId> leaders;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Cluster cluster(ClusterConfig::for_graph(64, 8));
    leaders.insert(elect_leader(cluster, seed).leader);
  }
  EXPECT_GE(leaders.size(), 4u);  // the choice is genuinely random
}

}  // namespace
}  // namespace kmm
