// Serving-layer tests: cooperative cancellation (CancelPoint / CancelToken),
// deterministic retry/backoff, the lethal chaos plane, and the full
// ClusterService — admission, budgets, retries, and the determinism
// contracts (a cancelled-then-rerun query and a killed-then-retried query
// both land on ledgers bit-identical to an undisturbed run, for every
// worker-thread count).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "example_args.hpp"
#include "kmm.hpp"

namespace kmm {
namespace {

Graph test_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return gen::connected_gnm(n, m, rng);
}

void expect_same_ledger(const ClusterStats& a, const ClusterStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.supersteps, b.supersteps);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_link_bits, b.max_link_bits);
}

// ---------------------------------------------------------------------------
// ServePlane: CancelPoint / retry / lethal-plane units
// ---------------------------------------------------------------------------

TEST(ServePlane, SuperstepBudgetTripsDeterministically) {
  const Graph g = gen::path(64);
  const DistributedGraph dg(g, VertexPartition::random(64, 4, 3));
  for (int trial = 0; trial < 2; ++trial) {
    Cluster cluster(ClusterConfig::for_graph(64, 4));
    QueryBudget budget;
    budget.max_supersteps = 3;
    CancelPoint cancel(nullptr, budget);
    FloodingConfig config;
    config.cancel = &cancel;
    try {
      (void)flooding_connectivity(cluster, dg, config);
      FAIL() << "a 3-superstep budget cannot finish flooding a 64-path";
    } catch (const QueryCancelled& c) {
      EXPECT_EQ(c.code, QueryErrorCode::kSuperstepLimit);
      EXPECT_EQ(c.superstep, 3u);
    }
    EXPECT_EQ(cancel.supersteps(), 3u);
  }
}

TEST(ServePlane, PreCancelledTokenTripsBeforeAnySuperstep) {
  const Graph g = gen::path(16);
  const DistributedGraph dg(g, VertexPartition::random(16, 2, 3));
  Cluster cluster(ClusterConfig::for_graph(16, 2));
  CancelToken token;
  token.cancel();
  CancelPoint cancel(&token);
  FloodingConfig config;
  config.cancel = &cancel;
  try {
    (void)flooding_connectivity(cluster, dg, config);
    FAIL() << "a cancelled token must unwind at the first boundary";
  } catch (const QueryCancelled& c) {
    EXPECT_EQ(c.code, QueryErrorCode::kCancelled);
    EXPECT_EQ(c.superstep, 0u);
  }
}

TEST(ServePlane, CancelAtSuperstepIsClockFree) {
  const Graph g = gen::path(64);
  const DistributedGraph dg(g, VertexPartition::random(64, 4, 3));
  Cluster cluster(ClusterConfig::for_graph(64, 4));
  CancelPoint cancel;
  cancel.cancel_at_superstep(5);
  FloodingConfig config;
  config.cancel = &cancel;
  try {
    (void)flooding_connectivity(cluster, dg, config);
    FAIL() << "cancel_at_superstep(5) must fire";
  } catch (const QueryCancelled& c) {
    EXPECT_EQ(c.code, QueryErrorCode::kCancelled);
    EXPECT_EQ(c.superstep, 5u);
  }
}

TEST(ServePlane, ExpiredDeadlineTripsAsDeadlineExceeded) {
  Cluster cluster(ClusterConfig{2, 64});
  CancelPoint cancel;
  cancel.set_deadline_ns(1);  // long past for any steady clock
  try {
    cancel.check(cluster);
    FAIL() << "an expired deadline must trip the first check";
  } catch (const QueryCancelled& c) {
    EXPECT_EQ(c.code, QueryErrorCode::kDeadlineExceeded);
  }
}

TEST(ServePlane, LedgerBudgetCountsBitsSinceFirstCheck) {
  const Graph g = test_graph(128, 384, 9);
  const DistributedGraph dg(g, VertexPartition::random(128, 4, 3));
  Cluster cluster(ClusterConfig::for_graph(128, 4));
  QueryBudget budget;
  budget.max_ledger_bits = 1;  // any real superstep blows this immediately
  CancelPoint cancel(nullptr, budget);
  FloodingConfig config;
  config.cancel = &cancel;
  try {
    (void)flooding_connectivity(cluster, dg, config);
    FAIL() << "flooding a 128-vertex graph must exceed a 1-bit ledger budget";
  } catch (const QueryCancelled& c) {
    EXPECT_EQ(c.code, QueryErrorCode::kLedgerBudget);
    EXPECT_GE(c.superstep, 1u);
  }
}

TEST(ServePlane, RetryBackoffIsPureAndBounded) {
  RetryPolicy policy;
  policy.base_backoff_us = 100;
  policy.max_backoff_us = 1000;
  policy.seed = 42;
  for (std::uint64_t query = 1; query <= 4; ++query) {
    for (unsigned attempt = 1; attempt <= 5; ++attempt) {
      const std::uint64_t a = retry_backoff_us(policy, query, attempt);
      const std::uint64_t b = retry_backoff_us(policy, query, attempt);
      EXPECT_EQ(a, b) << "backoff must be a pure function of (seed, query, attempt)";
      EXPECT_GE(a, policy.base_backoff_us);
      EXPECT_LE(a, policy.max_backoff_us);
    }
  }
  // Different seeds decorrelate.
  RetryPolicy other = policy;
  other.seed = 43;
  bool any_diff = false;
  for (unsigned attempt = 1; attempt <= 5; ++attempt) {
    any_diff |= retry_backoff_us(policy, 1, attempt) != retry_backoff_us(other, 1, attempt);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServePlane, ServiceAttemptScheduleDrawsOneKillPerAttempt) {
  // kill_prob = 1 always kills; kill_prob = 0 is silent.
  EXPECT_TRUE(service_attempt_schedule(7, 1, 1, 1.0, 64, 8).has_crashes());
  EXPECT_FALSE(service_attempt_schedule(7, 1, 1, 0.0, 64, 8).has_crashes());
  // The profile's own crash stream is zeroed: a crash-heavy profile with
  // kill_prob = 0 yields a schedule with no crashes at all.
  FaultProfile crashy;
  crashy.crash_prob = 1.0;
  EXPECT_FALSE(service_attempt_schedule(7, 1, 1, 0.0, 64, 8, crashy).has_crashes());
  // With kill_prob = 0.5 the per-attempt draws are independent, so some
  // (query, attempt) pair in a small window must survive — the geometric
  // convergence retries rely on.
  bool some_silent = false, some_kill = false;
  for (std::uint64_t attempt = 1; attempt <= 16; ++attempt) {
    const bool kills = service_attempt_schedule(11, 1, attempt, 0.5, 64, 8).has_crashes();
    some_silent |= !kills;
    some_kill |= kills;
  }
  EXPECT_TRUE(some_silent);
  EXPECT_TRUE(some_kill);
}

TEST(ServePlane, LethalPlaneThrowsQueryKilled) {
  const Graph g = gen::path(32);
  const DistributedGraph dg(g, VertexPartition::random(32, 4, 3));
  Cluster cluster(ClusterConfig::for_graph(32, 4));
  FaultSchedule schedule(1);
  schedule.add_crash(2, 1);
  FaultPlaneConfig fpc;
  fpc.lethal_crashes = true;
  FaultPlane plane(schedule, fpc);
  FloodingConfig config;
  config.fault = &plane;
  try {
    (void)flooding_connectivity(cluster, dg, config);
    FAIL() << "a lethal crash at superstep 2 must kill the attempt";
  } catch (const QueryKilled& killed) {
    EXPECT_EQ(killed.superstep, 2u);
    EXPECT_EQ(killed.machine, 1u);
  }
  EXPECT_EQ(plane.stats().crashes, 1u);
  EXPECT_EQ(plane.stats().checkpoints, 0u) << "lethal mode must skip checkpoint machinery";
}

// ---------------------------------------------------------------------------
// ClusterService
// ---------------------------------------------------------------------------

ServiceConfig small_service_config(MachineId k = 8) {
  ServiceConfig cfg;
  cfg.k = k;
  cfg.workers = 2;
  return cfg;
}

TEST(ClusterService, AnswersAndLedgerMatchDirectCall) {
  const Graph g = test_graph(256, 768, 5);
  const DistributedGraph dg(g, VertexPartition::random(256, 8, 7));
  ClusterService service(dg, small_service_config());

  QueryRequest req;
  req.kind = QueryKind::kConnectivity;
  req.seed = 21;
  const QueryOutcome outcome = service.run_query(req);
  ASSERT_TRUE(outcome.ok());

  Cluster cluster(ClusterConfig::for_graph(256, 8));
  BoruvkaConfig direct;
  direct.seed = 21;
  const BoruvkaResult reference = connected_components(cluster, dg, direct);
  EXPECT_EQ(outcome.value().value, reference.num_components);
  expect_same_ledger(outcome.value().ledger, cluster.stats());
}

TEST(ClusterService, ConcurrentMixedWorkloadAllStructured) {
  const Graph g = test_graph(192, 576, 6);
  const DistributedGraph dg(g, VertexPartition::random(192, 8, 7));
  ServiceConfig cfg = small_service_config();
  cfg.workers = 4;
  ClusterService service(dg, cfg);

  const QueryKind kinds[] = {
      QueryKind::kConnectivity, QueryKind::kMst,      QueryKind::kFlooding,
      QueryKind::kTwoEdge,      QueryKind::kMinCut,   QueryKind::kVerifyBipartite,
      QueryKind::kVerifyCycle,  QueryKind::kLeaderElection,
  };
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int rep = 0; rep < 2; ++rep) {
    for (const QueryKind kind : kinds) {
      QueryRequest req;
      req.kind = kind;
      req.seed = split(31, static_cast<std::uint64_t>(kind) + rep);
      tickets.push_back(service.submit(std::move(req)));
    }
  }
  service.drain();
  for (const auto& ticket : tickets) {
    EXPECT_TRUE(ticket->done());
    EXPECT_TRUE(ticket->wait().ok());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, tickets.size());
  EXPECT_EQ(stats.completed, tickets.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(service.log().size(), tickets.size());
}

TEST(ClusterService, CancellationDeterminismAcrossThreadCounts) {
  const Graph g = test_graph(256, 768, 8);
  const DistributedGraph dg(g, VertexPartition::random(256, 8, 7));

  QueryRequest capped;
  capped.kind = QueryKind::kConnectivity;
  capped.seed = 33;
  capped.budget.max_supersteps = 4;
  QueryRequest full = capped;
  full.budget.max_supersteps = 0;

  std::vector<QueryError> errors;
  std::vector<QueryResult> reruns;
  for (const unsigned threads : {1u, 2u, 8u}) {
    ServiceConfig cfg = small_service_config();
    cfg.query_threads = threads;
    ClusterService service(dg, cfg);
    const QueryOutcome cancelled = service.run_query(capped);
    ASSERT_FALSE(cancelled.ok());
    errors.push_back(cancelled.error());
    // The cancelled run released everything; the rerun on the SAME service
    // must match a fresh undisturbed execution bit for bit.
    const QueryOutcome rerun = service.run_query(full);
    ASSERT_TRUE(rerun.ok());
    reruns.push_back(rerun.value());
  }
  for (const QueryError& e : errors) {
    EXPECT_EQ(e.code, QueryErrorCode::kSuperstepLimit);
    EXPECT_EQ(e.superstep, 4u);
  }
  for (std::size_t i = 1; i < reruns.size(); ++i) {
    EXPECT_EQ(reruns[i].value, reruns[0].value);
    expect_same_ledger(reruns[i].ledger, reruns[0].ledger);
  }
}

TEST(ClusterService, ClientCancelBeforeExecutionIsStructured) {
  const Graph g = test_graph(128, 384, 4);
  const DistributedGraph dg(g, VertexPartition::random(128, 8, 7));
  ClusterService service(dg, small_service_config());
  CancelToken token;
  token.cancel();
  QueryRequest req;
  req.kind = QueryKind::kMinCut;
  const QueryOutcome outcome = service.run_query(req, &token);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, QueryErrorCode::kCancelled);
  EXPECT_EQ(outcome.error().superstep, 0u);
}

TEST(ClusterService, DeadlineExceededIsStructured) {
  const Graph g = test_graph(4096, 12288, 12);
  const DistributedGraph dg(g, VertexPartition::random(4096, 8, 7));
  ClusterService service(dg, small_service_config());
  QueryRequest req;
  req.kind = QueryKind::kMinCut;  // dozens of supersteps at n = 4096
  req.budget.deadline_ms = 1;
  const QueryOutcome outcome = service.run_query(req);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, QueryErrorCode::kDeadlineExceeded);
}

TEST(ClusterService, AdmissionShedsOverMemoryBudget) {
  const Graph g = test_graph(128, 384, 4);
  const DistributedGraph dg(g, VertexPartition::random(128, 8, 7));
  ServiceConfig cfg = small_service_config();
  // A budget below even one query's per-machine estimate: every submission
  // is shed deterministically, before any executor touches it.
  cfg.budget.bytes_per_machine =
      estimate_query_bytes(dg.num_vertices(), cfg.k) / cfg.k - 1;
  ClusterService service(dg, cfg);
  for (int q = 0; q < 4; ++q) {
    QueryRequest req;
    req.kind = QueryKind::kConnectivity;
    const auto ticket = service.submit(std::move(req));
    EXPECT_TRUE(ticket->done()) << "a shed ticket resolves inside submit()";
    const QueryOutcome& outcome = ticket->wait();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, QueryErrorCode::kOverloaded);
  }
  EXPECT_EQ(service.stats().rejected_overload, 4u);
  EXPECT_EQ(service.stats().admitted, 0u);
}

TEST(ClusterService, ChaosRetryLandsOnUndisturbedLedger) {
  const Graph g = test_graph(192, 576, 10);
  const DistributedGraph dg(g, VertexPartition::random(192, 8, 7));

  // Scan for a chaos seed whose first query draws kill on attempt 1 and
  // survives attempt 2 — the canonical killed-then-retried trajectory.
  std::uint64_t chaos_seed = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    if (service_attempt_schedule(seed, 1, 1, 0.5, 64, 8).has_crashes() &&
        !service_attempt_schedule(seed, 1, 2, 0.5, 64, 8).has_crashes()) {
      chaos_seed = seed;
      break;
    }
  }
  ASSERT_NE(chaos_seed, 0u) << "no kill-then-survive seed in 200 draws";

  ServiceConfig chaos_cfg = small_service_config();
  chaos_cfg.chaos.kill_prob = 0.5;
  chaos_cfg.chaos.seed = chaos_seed;
  chaos_cfg.retry.base_backoff_us = 10;  // keep the test fast
  chaos_cfg.retry.max_backoff_us = 50;
  ClusterService chaos_service(dg, chaos_cfg);
  ClusterService calm_service(dg, small_service_config());

  QueryRequest req;
  req.kind = QueryKind::kConnectivity;
  req.seed = 77;
  const QueryOutcome noisy = chaos_service.run_query(req);
  const QueryOutcome calm = calm_service.run_query(req);
  ASSERT_TRUE(noisy.ok());
  ASSERT_TRUE(calm.ok());
  EXPECT_EQ(noisy.value().attempts, 2u);
  EXPECT_GT(noisy.value().backoff_us, 0u);
  EXPECT_EQ(noisy.value().value, calm.value().value);
  expect_same_ledger(noisy.value().ledger, calm.value().ledger);
  EXPECT_EQ(chaos_service.stats().kills, 1u);
  EXPECT_EQ(chaos_service.stats().retries, 1u);
}

TEST(ClusterService, CrashedWhenEveryAttemptKilled) {
  const Graph g = test_graph(96, 288, 10);
  const DistributedGraph dg(g, VertexPartition::random(96, 8, 7));
  ServiceConfig cfg = small_service_config();
  cfg.chaos.kill_prob = 1.0;  // every attempt dies
  cfg.chaos.seed = 5;
  cfg.retry.max_attempts = 3;
  cfg.retry.base_backoff_us = 10;
  cfg.retry.max_backoff_us = 50;
  ClusterService service(dg, cfg);
  QueryRequest req;
  req.kind = QueryKind::kConnectivity;
  const QueryOutcome outcome = service.run_query(req);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, QueryErrorCode::kCrashed);
  EXPECT_EQ(outcome.error().attempts, 3u);
  EXPECT_EQ(service.stats().kills, 3u);
}

TEST(ClusterService, InvalidArgumentsAreFrontLoaded) {
  const Graph g = test_graph(64, 192, 3);
  const DistributedGraph dg(g, VertexPartition::random(64, 4, 7));
  ServiceConfig cfg = small_service_config(4);
  ClusterService service(dg, cfg);

  QueryRequest bad_vertex;
  bad_vertex.kind = QueryKind::kVerifyStConnectivity;
  bad_vertex.s = 0;
  bad_vertex.t = 64;  // out of range
  const QueryOutcome v = service.run_query(bad_vertex);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.error().code, QueryErrorCode::kInvalidArgument);

  QueryRequest bad_edge;
  bad_edge.kind = QueryKind::kVerifyECycle;
  bad_edge.x = 0;
  bad_edge.y = 0;  // (0, 0) is never an edge
  const QueryOutcome e = service.run_query(bad_edge);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().code, QueryErrorCode::kInvalidArgument);

  // Shard-direct backend: global-recourse kinds are structurally
  // unanswerable and must say so instead of aborting in graph().
  ShardedAdjacency sharded;
  sharded.n = 64;
  sharded.vstart.assign(64, 0);
  sharded.vdeg.assign(64, 0);
  sharded.shards.resize(4);
  const DistributedGraph shard_dg(std::move(sharded), VertexPartition::round_robin(64, 4));
  ClusterService shard_service(shard_dg, cfg);
  QueryRequest mincut;
  mincut.kind = QueryKind::kMinCut;
  const QueryOutcome m = shard_service.run_query(mincut);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.error().code, QueryErrorCode::kInvalidArgument);
  // ...while the model-faithful kinds still run.
  QueryRequest conn;
  conn.kind = QueryKind::kConnectivity;
  const QueryOutcome c = shard_service.run_query(conn);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().value, 64u);  // edgeless: every vertex its own component
}

TEST(ClusterService, ShutdownResolvesQueuedTickets) {
  const Graph g = test_graph(192, 576, 6);
  const DistributedGraph dg(g, VertexPartition::random(192, 8, 7));
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  {
    ServiceConfig cfg = small_service_config();
    cfg.workers = 1;  // one executor, so most of these queue up
    ClusterService service(dg, cfg);
    for (int q = 0; q < 6; ++q) {
      QueryRequest req;
      req.kind = QueryKind::kMinCut;
      req.seed = static_cast<std::uint64_t>(q);
      tickets.push_back(service.submit(std::move(req)));
    }
  }  // dtor: queued work resolves kCancelled, in-flight work finishes
  for (const auto& ticket : tickets) {
    ASSERT_TRUE(ticket->done()) << "no ticket may be left unresolved at shutdown";
    const QueryOutcome& outcome = ticket->wait();
    if (!outcome.ok()) {
      EXPECT_EQ(outcome.error().code, QueryErrorCode::kCancelled);
    }
  }
}

TEST(ClusterService, RecordsPerQueryTimelines) {
  const Graph g = test_graph(128, 384, 4);
  const DistributedGraph dg(g, VertexPartition::random(128, 8, 7));
  ServiceConfig cfg = small_service_config();
  cfg.record_timelines = true;
  ClusterService service(dg, cfg);
  QueryRequest req;
  req.kind = QueryKind::kFlooding;
  const auto ticket = service.submit(std::move(req));
  const QueryOutcome& outcome = ticket->wait();
  ASSERT_TRUE(outcome.ok());
  const MetricsTimeline* timeline = service.timeline(ticket->id());
  ASSERT_NE(timeline, nullptr);
  EXPECT_GT(timeline->size(), 0u);
  EXPECT_LE(timeline->size(), outcome.value().supersteps);
  EXPECT_EQ(service.timeline(9999), nullptr);
}

TEST(ClusterService, WritesQueryLogJson) {
  const Graph g = test_graph(64, 192, 3);
  const DistributedGraph dg(g, VertexPartition::random(64, 4, 7));
  ClusterService service(dg, small_service_config(4));
  QueryRequest req;
  req.kind = QueryKind::kConnectivity;
  (void)service.submit(std::move(req))->wait();
  const std::string path = ::testing::TempDir() + "kmm_query_log.json";
  ASSERT_TRUE(service.write_query_log_json(path));
  std::FILE* in = std::fopen(path.c_str(), "r");
  ASSERT_NE(in, nullptr);
  char buffer[4096] = {};
  const std::size_t got = std::fread(buffer, 1, sizeof(buffer) - 1, in);
  std::fclose(in);
  const std::string body(buffer, got);
  EXPECT_NE(body.find("\"queries\""), std::string::npos);
  EXPECT_NE(body.find("\"connectivity\""), std::string::npos);
  EXPECT_NE(body.find("\"stats\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// ExampleArgs: strict validation of the serving flags (exit-2 death tests;
// excluded from the TSan suite like every EXPECT_EXIT test)
// ---------------------------------------------------------------------------

kmmex::ExampleArgs parse_args(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return kmmex::parse_example_args(static_cast<int>(argv.size()),
                                   const_cast<char**>(argv.data()));
}

TEST(ExampleArgsServe, ParsesServingFlags) {
  const kmmex::ExampleArgs args =
      parse_args({"--serve", "--deadline-ms", "250", "--max-inflight=8", "64", "4"});
  EXPECT_TRUE(args.serve);
  EXPECT_EQ(args.deadline_ms, 250u);
  EXPECT_EQ(args.max_inflight, 8u);
  ASSERT_EQ(args.pos.size(), 2u);
  EXPECT_EQ(args.pos_u64(0, 0), 64u);
}

TEST(ExampleArgsServe, RejectsDuplicateServe) {
  EXPECT_EXIT((void)parse_args({"--serve", "--serve"}), ::testing::ExitedWithCode(2),
              "duplicate flag --serve");
}

TEST(ExampleArgsServe, RejectsDuplicateDeadline) {
  EXPECT_EXIT((void)parse_args({"--deadline-ms", "10", "--deadline-ms=20"}),
              ::testing::ExitedWithCode(2), "duplicate flag --deadline-ms");
}

TEST(ExampleArgsServe, RejectsNonNumericDeadline) {
  EXPECT_EXIT((void)parse_args({"--deadline-ms", "soon"}), ::testing::ExitedWithCode(2),
              "--deadline-ms expects a non-negative integer");
}

TEST(ExampleArgsServe, RejectsTrailingGarbageDeadline) {
  EXPECT_EXIT((void)parse_args({"--deadline-ms=100ms"}), ::testing::ExitedWithCode(2),
              "--deadline-ms expects a non-negative integer");
}

TEST(ExampleArgsServe, RejectsZeroMaxInflight) {
  EXPECT_EXIT((void)parse_args({"--max-inflight", "0"}), ::testing::ExitedWithCode(2),
              "--max-inflight must be positive");
}

TEST(ExampleArgsServe, RejectsNegativeMaxInflight) {
  EXPECT_EXIT((void)parse_args({"--max-inflight", "-2"}), ::testing::ExitedWithCode(2),
              "--max-inflight expects a non-negative integer");
}

}  // namespace
}  // namespace kmm
