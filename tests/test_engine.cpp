// BoruvkaEngine internals: caps, output bookkeeping, configuration corners,
// and cluster-ledger conservation properties.

#include <gtest/gtest.h>

#include <map>

#include "kmm.hpp"

namespace kmm {
namespace {

TEST(Engine, PhaseCapStopsEarlyWithoutConvergence) {
  const Graph g = gen::path(256);  // needs ~log n phases
  Cluster cluster(ClusterConfig::for_graph(256, 4));
  const DistributedGraph dg(g, VertexPartition::random(256, 4, 1));
  BoruvkaConfig cfg{.seed = 3};
  cfg.max_phases = 1;
  const auto res = connected_components(cluster, dg, cfg);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.phases.size(), 1u);
  // One phase merges roughly half the components but not all.
  EXPECT_GT(res.num_components, 1u);
  EXPECT_LT(res.num_components, 256u);
  // The counting protocol still reports the (partial) label state exactly.
  std::set<Label> distinct(res.labels.begin(), res.labels.end());
  EXPECT_EQ(res.num_components, distinct.size());
}

TEST(Engine, FirstPhaseSeesEveryVertexAsComponent) {
  Rng rng(5);
  const Graph g = gen::gnm(100, 200, rng);
  Cluster cluster(ClusterConfig::for_graph(100, 4));
  const DistributedGraph dg(g, VertexPartition::random(100, 4, 7));
  const auto res = connected_components(cluster, dg, {});
  ASSERT_FALSE(res.phases.empty());
  EXPECT_EQ(res.phases.front().components_before, 100u);
  EXPECT_EQ(res.phases.front().phase, 0u);
}

TEST(Engine, ForestEdgesRecordedExactlyOnce) {
  Rng rng(9);
  const Graph g = gen::connected_gnm(150, 400, rng);
  Cluster cluster(ClusterConfig::for_graph(150, 8));
  const DistributedGraph dg(g, VertexPartition::random(150, 8, 11));
  const auto res = connected_components(cluster, dg, {});
  std::map<std::pair<Vertex, Vertex>, int> seen;
  for (const auto& per_machine : res.forest_by_machine) {
    for (const auto& e : per_machine) ++seen[e];
  }
  EXPECT_EQ(seen.size(), 149u);  // n - 1 merge edges
  for (const auto& [edge, count] : seen) {
    EXPECT_EQ(count, 1) << "edge recorded " << count << " times";
  }
}

TEST(Engine, MstEdgeCountMatchesComponents) {
  Rng rng(13);
  Graph g = with_unique_weights(
      with_random_weights(gen::multi_component(120, 300, 4, rng), rng));
  Cluster cluster(ClusterConfig::for_graph(120, 4));
  const DistributedGraph dg(g, VertexPartition::random(120, 4, 15));
  const auto res = minimum_spanning_forest(cluster, dg);
  EXPECT_EQ(res.mst_edges().size(), 120u - res.num_components);
}

TEST(Engine, SingleCopySketchStillCorrect) {
  // One l0 repetition fails ~28% of queries; retries with fresh seeds keep
  // the algorithm correct, just slower.
  Rng rng(17);
  const Graph g = gen::connected_gnm(120, 280, rng);
  Cluster cluster(ClusterConfig::for_graph(120, 4));
  const DistributedGraph dg(g, VertexPartition::random(120, 4, 19));
  BoruvkaConfig cfg{.seed = 21};
  cfg.sketch_copies = 1;
  const auto res = connected_components(cluster, dg, cfg);
  EXPECT_EQ(canonical_labels(res.labels), ref::component_labels(g));
  EXPECT_TRUE(res.converged);
}

TEST(Engine, CoordinatorPlusCoinFlipStillCorrect) {
  Rng rng(23);
  const Graph g = gen::gnm(100, 220, rng);
  Cluster cluster(ClusterConfig::for_graph(100, 4));
  const DistributedGraph dg(g, VertexPartition::random(100, 4, 25));
  BoruvkaConfig cfg{.seed = 27};
  cfg.single_coordinator = true;
  cfg.merge_rule = MergeRule::kCoinFlip;
  const auto res = connected_components(cluster, dg, cfg);
  EXPECT_EQ(canonical_labels(res.labels), ref::component_labels(g));
}

TEST(Engine, CountingToggleAgrees) {
  Rng rng(29);
  const Graph g = gen::multi_component(120, 260, 5, rng);
  auto run = [&](bool count) {
    Cluster cluster(ClusterConfig::for_graph(120, 4));
    const DistributedGraph dg(g, VertexPartition::random(120, 4, 31));
    BoruvkaConfig cfg{.seed = 33};
    cfg.count_components = count;
    return connected_components(cluster, dg, cfg).num_components;
  };
  EXPECT_EQ(run(true), run(false));
  EXPECT_EQ(run(true), 5u);
}

TEST(Engine, RoundsMonotoneInPhases) {
  Rng rng(35);
  const Graph g = gen::connected_gnm(200, 450, rng);
  Cluster cluster(ClusterConfig::for_graph(200, 8));
  const DistributedGraph dg(g, VertexPartition::random(200, 8, 37));
  const auto res = connected_components(cluster, dg, {});
  std::uint64_t sum = 0;
  for (const auto& ph : res.phases) {
    EXPECT_GT(ph.rounds, 0u);
    sum += ph.rounds;
  }
  // Phase rounds + the inter-phase control and counting traffic = total.
  EXPECT_LE(sum, res.stats.rounds);
  EXPECT_GE(sum + 50 + 10 * res.phases.size(), res.stats.rounds);
}

TEST(LedgerConservation, SentEqualsReceived) {
  Rng rng(39);
  const Graph g = gen::gnm(150, 350, rng);
  Cluster cluster(ClusterConfig::for_graph(150, 6));
  const DistributedGraph dg(g, VertexPartition::random(150, 6, 41));
  (void)connected_components(cluster, dg, {});
  std::uint64_t sent = 0, received = 0;
  for (MachineId i = 0; i < 6; ++i) {
    sent += cluster.stats().sent_bits_by_machine[i];
    received += cluster.stats().received_bits_by_machine[i];
  }
  EXPECT_EQ(sent, received);
  EXPECT_EQ(sent, cluster.stats().total_bits);
}

TEST(LedgerConservation, MaxLinkBoundsRoundsPerSuperstep) {
  Rng rng(43);
  const Graph g = gen::gnm(150, 350, rng);
  Cluster cluster(ClusterConfig::for_graph(150, 6));
  const DistributedGraph dg(g, VertexPartition::random(150, 6, 45));
  const auto res = connected_components(cluster, dg, {});
  // rounds >= supersteps (each costs >= 1) and
  // rounds <= supersteps * ceil(max_link/B) + analytic charges.
  EXPECT_GE(res.stats.rounds, res.stats.supersteps);
  const auto ceil_worst =
      (cluster.stats().max_link_bits + cluster.bandwidth_bits() - 1) /
      cluster.bandwidth_bits();
  EXPECT_LE(res.stats.rounds,
            res.stats.supersteps * ceil_worst + 100000 /* analytic relay */);
}

TEST(Engine, DifferentKSameAnswerSameGraph) {
  Rng rng(47);
  const Graph g = gen::multi_component(200, 500, 3, rng);
  const auto expected = ref::component_labels(g);
  for (const MachineId k : {MachineId{2}, MachineId{3}, MachineId{7}, MachineId{13},
                            MachineId{29}}) {
    Cluster cluster(ClusterConfig::for_graph(200, k));
    const DistributedGraph dg(g, VertexPartition::random(200, k, split(49, k)));
    BoruvkaConfig cfg{.seed = split(51, k)};
    const auto res = connected_components(cluster, dg, cfg);
    EXPECT_EQ(canonical_labels(res.labels), expected) << "k=" << k;
  }
}

TEST(Engine, WeightOneGraphMstEqualsSpanningTree) {
  // With unique weights derived from all-1 weights, the MST is *a* spanning
  // tree and the algorithm must still terminate with exactly n-1 edges.
  const Graph g = with_unique_weights(gen::grid(8, 8));
  Cluster cluster(ClusterConfig::for_graph(64, 4));
  const DistributedGraph dg(g, VertexPartition::random(64, 4, 53));
  const auto res = minimum_spanning_forest(cluster, dg);
  EXPECT_EQ(res.mst_edges().size(), 63u);
  std::vector<std::pair<Vertex, Vertex>> pairs;
  for (const auto& e : res.mst_edges()) pairs.emplace_back(e.u, e.v);
  EXPECT_TRUE(ref::is_spanning_forest(g, pairs));
}

}  // namespace
}  // namespace kmm
