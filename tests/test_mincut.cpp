// Theorem 3: the sampling-based min-cut approximation against Stoer–Wagner.

#include <gtest/gtest.h>

#include <cmath>

#include "kmm.hpp"

namespace kmm {
namespace {

MinCutResult run_mincut(const Graph& g, MachineId k, std::uint64_t seed) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  MinCutConfig cfg;
  cfg.seed = split(seed, 2);
  return approximate_min_cut(cluster, dg, cfg);
}

/// O(log n) approximation band, with generous constants: the estimate must
/// land within a [λ/c·log n, c·λ·log n] window.
void expect_within_band(const Graph& g, const MinCutResult& result, std::uint64_t lambda) {
  ASSERT_TRUE(result.graph_connected);
  ASSERT_GE(result.estimate, 1u);
  const double logn = std::log2(static_cast<double>(g.num_vertices()) + 2);
  const double ratio = static_cast<double>(result.estimate) / static_cast<double>(lambda);
  EXPECT_GE(ratio, 1.0 / (8.0 * logn)) << "estimate " << result.estimate << " vs " << lambda;
  EXPECT_LE(ratio, 8.0 * logn) << "estimate " << result.estimate << " vs " << lambda;
}

TEST(MinCut, DisconnectedIsZero) {
  Rng rng(1);
  const Graph g = gen::multi_component(60, 120, 3, rng);
  const auto result = run_mincut(g, 4, 3);
  EXPECT_FALSE(result.graph_connected);
  EXPECT_EQ(result.estimate, 0u);
}

TEST(MinCut, PathHasCutOne) {
  const Graph g = gen::path(64);
  const auto result = run_mincut(g, 4, 5);
  expect_within_band(g, result, 1);
}

TEST(MinCut, CycleHasCutTwo) {
  const Graph g = gen::cycle(64);
  const auto result = run_mincut(g, 4, 7);
  expect_within_band(g, result, 2);
}

TEST(MinCut, DumbbellPlantedCuts) {
  Rng rng(9);
  for (const std::size_t lambda : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    const Graph g = gen::dumbbell(48, lambda, rng);
    ASSERT_EQ(ref::stoer_wagner_min_cut(g), lambda);
    const auto result = run_mincut(g, 8, split(11, lambda));
    expect_within_band(g, result, lambda);
  }
}

TEST(MinCut, CompleteGraphLargeCut) {
  const Graph g = gen::complete(32);  // λ = 31
  const auto result = run_mincut(g, 4, 13);
  expect_within_band(g, result, 31);
}

TEST(MinCut, EstimateGrowsWithLambda) {
  Rng rng(15);
  const Graph thin = gen::dumbbell(64, 1, rng);
  const Graph thick = gen::dumbbell(64, 24, rng);
  const auto r_thin = run_mincut(thin, 8, 17);
  const auto r_thick = run_mincut(thick, 8, 17);
  EXPECT_LT(r_thin.estimate, r_thick.estimate);
  EXPECT_LT(r_thin.disconnect_level, r_thick.disconnect_level)
      << "thicker cuts must survive more aggressive sampling";
}

TEST(MinCut, LevelTraceWellFormed) {
  Rng rng(19);
  const Graph g = gen::dumbbell(40, 4, rng);
  const auto result = run_mincut(g, 4, 21);
  ASSERT_FALSE(result.levels.empty());
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    EXPECT_EQ(result.levels[i].level, static_cast<int>(i) + 1);
    EXPECT_LE(result.levels[i].disconnected_trials, result.levels[i].trials);
  }
  // The sweep stops at the first majority-disconnected level.
  EXPECT_EQ(result.levels.back().level, result.disconnect_level);
  EXPECT_GT(2 * result.levels.back().disconnected_trials, result.levels.back().trials);
}

TEST(MinCut, DeterministicGivenSeed) {
  Rng rng(23);
  const Graph g = gen::dumbbell(40, 4, rng);
  const auto a = run_mincut(g, 4, 25);
  const auto b = run_mincut(g, 4, 25);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.disconnect_level, b.disconnect_level);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
}

}  // namespace
}  // namespace kmm
