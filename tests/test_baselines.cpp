// Baselines: flooding, referee-collect, and the REP-model MST pipeline.

#include <gtest/gtest.h>

#include "kmm.hpp"

namespace kmm {
namespace {

TEST(Flooding, MatchesReferenceOnFamilies) {
  Rng rng(1);
  const std::vector<Graph> graphs = {
      gen::path(80),          gen::cycle(81),
      gen::star(60),          gen::grid(8, 9),
      gen::gnm(120, 240, rng), gen::multi_component(120, 260, 4, rng),
      gen::clique_chain(6, 6)};
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const Graph& g = graphs[i];
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 4));
    const DistributedGraph dg(
        g, VertexPartition::random(g.num_vertices(), 4, split(3, i)));
    const auto result = flooding_connectivity(cluster, dg);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.labels.size(), g.num_vertices());
    std::vector<Vertex> got(result.labels.begin(), result.labels.end());
    EXPECT_EQ(got, ref::component_labels(g)) << "family " << i;
    EXPECT_EQ(result.num_components, ref::component_count(g));
  }
}

TEST(Flooding, SuperstepsTrackDiameterNotN) {
  // On a path hosted by few machines, local propagation collapses whole
  // machine-segments per superstep, so supersteps ~ segments, not hops.
  const Graph g = gen::path(400);
  Cluster cluster(ClusterConfig::for_graph(400, 4));
  const DistributedGraph dg(g, VertexPartition::random(400, 4, 7));
  const auto result = flooding_connectivity(cluster, dg);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.supersteps, 2u);
  EXPECT_LE(result.supersteps, 402u);
}

TEST(Flooding, EmptyGraph) {
  const Graph g(50, {});
  Cluster cluster(ClusterConfig::for_graph(50, 4));
  const DistributedGraph dg(g, VertexPartition::random(50, 4, 9));
  const auto result = flooding_connectivity(cluster, dg);
  EXPECT_EQ(result.num_components, 50u);
  for (Vertex v = 0; v < 50; ++v) EXPECT_EQ(result.labels[v], v);
}

TEST(Referee, MatchesReference) {
  Rng rng(11);
  const Graph g = gen::multi_component(140, 320, 3, rng);
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 6));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 6, 13));
  const auto result = referee_connectivity(cluster, dg);
  std::vector<Vertex> got(result.labels.begin(), result.labels.end());
  EXPECT_EQ(got, ref::component_labels(g));
  EXPECT_EQ(result.num_components, 3u);
}

TEST(Referee, RoundsScaleWithEdges) {
  Rng rng(15);
  const Graph sparse = gen::gnm(200, 200, rng);
  const Graph dense = gen::gnm(200, 2000, rng);
  const auto run = [](const Graph& g) {
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 4));
    const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 4, 17));
    return referee_connectivity(cluster, dg, /*broadcast_labels=*/false).stats.rounds;
  };
  // Collecting 10x the edges costs ~10x the rounds (referee bottleneck).
  const double ratio =
      static_cast<double>(run(dense)) / static_cast<double>(run(sparse));
  EXPECT_GT(ratio, 5.0);
}

TEST(RepMst, MatchesKruskal) {
  for (const std::uint64_t seed : {21ULL, 23ULL}) {
    Rng rng(seed);
    Graph g = with_unique_weights(
        with_random_weights(gen::connected_gnm(100, 300, rng), rng));
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
    const auto ep = EdgePartition::random(g.num_edges(), 8, split(seed, 1));
    const auto result = rep_model_mst(cluster, g, ep, split(seed, 2));
    const auto expected = ref::minimum_spanning_forest(g);
    ASSERT_EQ(result.mst_edges.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.mst_edges[i].u, expected[i].u);
      EXPECT_EQ(result.mst_edges[i].v, expected[i].v);
    }
  }
}

TEST(RepMst, FilterKeepsForestPerMachine) {
  Rng rng(29);
  Graph g = with_unique_weights(
      with_random_weights(gen::connected_gnm(120, 600, rng), rng));
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 4));
  const auto ep = EdgePartition::random(g.num_edges(), 4, 31);
  const auto result = rep_model_mst(cluster, g, ep, 33);
  // Each machine keeps at most n-1 edges (a forest), so the union is at
  // most k(n-1) — and never more than m.
  EXPECT_LE(result.filtered_edges, 4 * (g.num_vertices() - 1));
  EXPECT_LE(result.filtered_edges, g.num_edges());
  EXPECT_GE(result.filtered_edges, g.num_vertices() - 1);  // MST survives
  EXPECT_GT(result.reroute_stats.rounds, 0u);
}

TEST(RepConnectivity, MatchesReference) {
  Rng rng(61);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = gen::multi_component(140, 400, 1 + trial, rng);
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 6));
    const auto ep = EdgePartition::random(g.num_edges(), 6, split(63, trial));
    const auto res = rep_model_connectivity(cluster, g, ep, split(65, trial));
    EXPECT_EQ(canonical_labels(res.labels), ref::component_labels(g)) << "trial " << trial;
    EXPECT_EQ(res.num_components, ref::component_count(g));
    // Each machine keeps at most a spanning forest.
    EXPECT_LE(res.filtered_edges, 6 * (g.num_vertices() - 1));
  }
}

TEST(RepMst, DisconnectedInput) {
  Rng rng(37);
  Graph g = with_unique_weights(
      with_random_weights(gen::multi_component(80, 200, 4, rng), rng));
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 4));
  const auto ep = EdgePartition::random(g.num_edges(), 4, 39);
  const auto result = rep_model_mst(cluster, g, ep, 41);
  EXPECT_EQ(result.mst_edges.size(), g.num_vertices() - 4);
}

}  // namespace
}  // namespace kmm
