// Tier-1 counting-allocator proof of the allocation-free sketch plane.
//
// A standalone binary (not part of kmm_tests): it replaces the global
// operator new/delete with the counting hook from bench/alloc_counter.hpp,
// which must not leak into the GoogleTest suite, so it registers with ctest
// as its own test with a plain main().
//
// What it asserts: one steady-state Borůvka elimination iteration — builder
// rebind, part sketching into a pooled accumulator with caller scratch,
// serialization into a reused WordWriter, proxy-side wire-level merging
// into pooled sums behind a LabelRegistry, and the sample/is_zero state
// transitions — performs ZERO heap allocations once the capacity-retaining
// structures are warm. This is the compute-plane analogue of the message
// plane's 0 allocs/superstep (PR 3); bench_boruvka_hotpath reports the same
// quantity with throughput numbers against the checked-in baseline.

#include <cstdio>
#include <vector>

#include "alloc_counter.hpp"
#include "kmm.hpp"

namespace {

using namespace kmm;
using kmmbench::alloc_count;

constexpr std::size_t kN = 512;      // vertices (universe kN^2)
constexpr std::size_t kLabels = 16;  // active components per iteration
constexpr std::size_t kParts = 4;    // part-sketches per label
constexpr int kWarmupIters = 3;
constexpr int kMeasureIters = 8;

int failures = 0;

#define EXPECT_ZERO(expr, what)                                                      \
  do {                                                                               \
    const auto v = (expr);                                                           \
    if (v != 0) {                                                                    \
      std::printf("FAIL: %s = %llu, expected 0\n", what,                             \
                  static_cast<unsigned long long>(v));                               \
      ++failures;                                                                    \
    }                                                                                \
  } while (0)

/// One elimination iteration over pre-partitioned component parts: the
/// home-side sketch+serialize half and the proxy-side merge+transition half,
/// exactly the containers and calls the engine's hot path uses.
void run_iteration(GraphSketchBuilder& builder, const DistributedGraph& dg,
                   std::uint64_t seed, const std::vector<std::vector<Vertex>>& parts,
                   SketchPool& home_pool, SketchPool& proxy_pool, WordWriter& writer,
                   std::vector<std::uint64_t>& power_scratch,
                   std::vector<std::vector<std::uint64_t>>& wire,
                   LabelRegistry<std::uint32_t>& sums, std::uint64_t* sink) {
  builder.rebind(seed);

  // Home side: sketch each part into a pooled accumulator, serialize into
  // the reused writer, "send" by copying into the wire buffers (stand-in
  // for the already allocation-free message plane; buffers are pre-sized).
  for (std::size_t label = 0; label < kLabels; ++label) {
    for (std::size_t p = 0; p < kParts; ++p) {
      home_pool.release_all();
      L0Sampler& sketch =
          home_pool.acquire(builder.universe(), builder.params(), builder.seed());
      builder.accumulate_part(dg, parts[label * kParts + p], kNoWeightLimit, sketch,
                              power_scratch);
      writer.clear();
      writer.u64(label);
      sketch.serialize(writer);
      auto& slot = wire[label * kParts + p];
      slot.assign(writer.words().begin(), writer.words().end());
    }
  }

  // Proxy side: wire-level merge into pooled sums, then transitions.
  sums.clear();
  proxy_pool.release_all();
  for (const auto& msg : wire) {
    WordReader r(msg);
    const Label label = r.u64();
    bool created = false;
    std::uint32_t& idx = sums.get_or_create(label, created);
    if (created) {
      idx = proxy_pool.acquire_index(builder.universe(), builder.params(), builder.seed());
    }
    proxy_pool.at(idx).add_serialized(r);
  }
  sums.for_each_sorted([&](Label label, std::uint32_t idx) {
    L0Sampler& sum = proxy_pool.at(idx);
    if (sum.is_zero()) return;
    if (const auto rec = sum.sample()) *sink += rec->index + label;
  });
}

}  // namespace

int main() {
  Rng rng(5);
  const Graph g = gen::gnm(kN, 3 * kN, rng);
  const DistributedGraph dg(g, VertexPartition::random(kN, 4, 7));

  // Disjoint vertex slices standing in for component parts.
  std::vector<std::vector<Vertex>> parts(kLabels * kParts);
  const std::size_t chunk = kN / parts.size();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    for (std::size_t j = 0; j < chunk; ++j) {
      parts[i].push_back(static_cast<Vertex>(i * chunk + j));
    }
  }

  GraphSketchBuilder builder(kN, /*seed=*/1);
  SketchPool home_pool, proxy_pool;
  WordWriter writer;
  std::vector<std::uint64_t> power_scratch;
  std::vector<std::vector<std::uint64_t>> wire(kLabels * kParts);
  LabelRegistry<std::uint32_t> sums;
  sums.reset_universe(kLabels);
  std::uint64_t sink = 0;

  for (int it = 0; it < kWarmupIters; ++it) {
    run_iteration(builder, dg, 100 + static_cast<std::uint64_t>(it), parts, home_pool,
                  proxy_pool, writer, power_scratch, wire, sums, &sink);
  }

  const auto a0 = alloc_count();
  for (int it = 0; it < kMeasureIters; ++it) {
    run_iteration(builder, dg, 200 + static_cast<std::uint64_t>(it), parts, home_pool,
                  proxy_pool, writer, power_scratch, wire, sums, &sink);
  }
  const auto steady_allocs = alloc_count() - a0;
  EXPECT_ZERO(steady_allocs, "steady-state sketch-plane allocations");
  std::printf("sketch plane: %d warm iterations, %llu allocations (sink=%llu)\n",
              kMeasureIters, static_cast<unsigned long long>(steady_allocs),
              static_cast<unsigned long long>(sink));

  // Full-engine regression guard: the registry/pool representation must
  // keep allocations-per-superstep far below the pre-registry ~290 (see
  // bench/baselines/BENCH_boruvka_hotpath.pre-registry.json). The bound is
  // loose — it catches representation regressions, not stdlib noise.
  {
    Rng grng(17);
    const Graph eg = gen::gnm(600, 1800, grng);
    Cluster cluster(ClusterConfig::for_graph(600, 8));
    const DistributedGraph edg(eg, VertexPartition::random(600, 8, 19));
    BoruvkaConfig cfg;
    cfg.seed = 29;
    const auto e0 = alloc_count();
    const auto res = connected_components(cluster, edg, cfg);
    const auto engine_allocs = alloc_count() - e0;
    const double per_superstep =
        static_cast<double>(engine_allocs) / static_cast<double>(res.stats.supersteps);
    std::printf("full engine: %llu allocations / %llu supersteps = %.1f per superstep\n",
                static_cast<unsigned long long>(engine_allocs),
                static_cast<unsigned long long>(res.stats.supersteps), per_superstep);
    if (per_superstep > 100.0) {
      std::printf("FAIL: allocations per superstep %.1f > 100 — registry/pool "
                  "representation regressed\n",
                  per_superstep);
      ++failures;
    }
  }

  // Observability-plane steady state. Three claims, measured on the same
  // warmed runtime loop (a charged all-to-successor ring superstep):
  //   1. sinks disabled: the obs seam adds ZERO allocations per superstep
  //      on top of the allocation-free message plane;
  //   2. sinks attached (summarized timeline, pre-reserved; warm trace
  //      rings): recording is also allocation-free per superstep;
  //   3. with the alloc-count source registered, the timeline's own allocs
  //      column agrees — every steady-state row records 0.
  {
    obs::set_alloc_count_source(&kmmbench::alloc_count);
    constexpr MachineId kMachines = 8;
    constexpr int kSteps = 64;
    const auto ring_step = [](Runtime& rt) {
      rt.step([](MachineId self, std::span<const Message>, Outbox& out) {
        out.send((self + 1) % kMachines, 1, {std::uint64_t{self}}, 64);
      });
    };

    for (const unsigned threads : {1u, 4u}) {
      // Sinks disabled.
      {
        Cluster cluster(ClusterConfig{kMachines, 64});
        Runtime rt(cluster, RuntimeConfig{threads});
        for (int i = 0; i < 4; ++i) ring_step(rt);  // warm pool + arenas
        const auto b0 = alloc_count();
        for (int i = 0; i < kSteps; ++i) ring_step(rt);
        char what[96];
        std::snprintf(what, sizeof what,
                      "sinks-off runtime allocations (threads=%u)", threads);
        EXPECT_ZERO(alloc_count() - b0, what);
      }

      // Sinks attached.
      {
        Cluster cluster(ClusterConfig{kMachines, 64});
        MetricsTimelineConfig tcfg;
        tcfg.full_traffic_steps = 0;  // summarized rows: O(top_traffic) each
        MetricsTimeline timeline(tcfg);
        timeline.reserve(1024, kMachines);
        TraceRecorder trace;  // rings pre-reserved at construction
        const ObsSink sink{&timeline, &trace};
        Runtime rt(cluster, RuntimeConfig{threads, &sink});
        for (int i = 0; i < 4; ++i) ring_step(rt);
        const std::size_t warm_rows = timeline.size();
        const auto b0 = alloc_count();
        for (int i = 0; i < kSteps; ++i) ring_step(rt);
        char what[96];
        std::snprintf(what, sizeof what,
                      "sinks-on runtime allocations (threads=%u)", threads);
        EXPECT_ZERO(alloc_count() - b0, what);
        for (std::size_t i = warm_rows; i < timeline.size(); ++i) {
          EXPECT_ZERO(timeline.row(i).allocs, "timeline row alloc column");
        }
      }
    }
    obs::set_alloc_count_source(nullptr);
    std::printf("obs plane: steady-state supersteps allocation-free with sinks "
                "off and on\n");
  }

  if (failures == 0) std::printf("PASS\n");
  return failures == 0 ? 0 : 1;
}
