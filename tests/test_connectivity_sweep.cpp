// Parameterized property sweep: the connectivity algorithm must agree with
// the sequential reference across a grid of (n, density, k, seed).

#include <gtest/gtest.h>

#include "kmm.hpp"

namespace kmm {
namespace {

struct SweepCase {
  std::size_t n;
  double density;  // m = density * n
  MachineId k;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const SweepCase& c) {
    return os << "n" << c.n << "_d" << static_cast<int>(c.density * 10) << "_k" << c.k
              << "_s" << c.seed;
  }
};

class ConnectivitySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConnectivitySweep, MatchesReference) {
  const auto& c = GetParam();
  Rng rng(split(c.seed, c.n));
  const auto m = static_cast<std::size_t>(c.density * static_cast<double>(c.n));
  const Graph g = gen::gnm(c.n, std::min(m, c.n * (c.n - 1) / 2), rng);

  Cluster cluster(ClusterConfig::for_graph(c.n, c.k));
  const DistributedGraph dg(g, VertexPartition::random(c.n, c.k, split(c.seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(c.seed, 2);
  const auto result = connected_components(cluster, dg, cfg);

  EXPECT_EQ(canonical_labels(result.labels), ref::component_labels(g));
  EXPECT_EQ(result.num_components, ref::component_count(g));
  EXPECT_TRUE(ref::is_spanning_forest(g, result.forest_edges()));
  EXPECT_TRUE(result.converged);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const std::size_t n : {8, 32, 96, 192}) {
    for (const double density : {0.6, 1.0, 2.5}) {
      for (const MachineId k : {MachineId{2}, MachineId{4}, MachineId{8}}) {
        for (const std::uint64_t seed : {11ULL, 22ULL}) {
          cases.push_back(SweepCase{n, density, k, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConnectivitySweep, ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

// A second sweep over structured families where sketch cancellation and the
// DRR merge see very different component-graph shapes.
class FamilySweep : public ::testing::TestWithParam<int> {};

TEST_P(FamilySweep, StructuredFamiliesMatchReference) {
  const int family = GetParam();
  Rng rng(split(7777, family));
  Graph g(0, {});
  switch (family) {
    case 0: g = gen::path(200); break;
    case 1: g = gen::cycle(201); break;
    case 2: g = gen::star(150); break;
    case 3: g = gen::grid(15, 13); break;
    case 4: g = gen::binary_tree(255); break;
    case 5: g = gen::complete(48); break;
    case 6: g = gen::clique_chain(10, 8); break;
    case 7: g = gen::dumbbell(60, 3, rng); break;
    case 8: g = gen::multi_component(200, 420, 5, rng); break;
    case 9: g = gen::bipartite(70, 90, 400, rng); break;
    default: FAIL();
  }
  for (const MachineId k : {MachineId{3}, MachineId{8}}) {
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
    const DistributedGraph dg(
        g, VertexPartition::random(g.num_vertices(), k, split(13, family)));
    BoruvkaConfig cfg;
    cfg.seed = split(17, family);
    const auto result = connected_components(cluster, dg, cfg);
    EXPECT_EQ(canonical_labels(result.labels), ref::component_labels(g));
    EXPECT_TRUE(ref::is_spanning_forest(g, result.forest_edges()));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilySweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace kmm
