// Distributed random ranking: rank rule, forest structure, and the Lemma 6
// O(log n) depth bound.

#include <gtest/gtest.h>

#include <cmath>

#include "core/drr.hpp"
#include "util/codec.hpp"
#include "util/stats.hpp"

namespace kmm {
namespace {

TEST(DrrRankTest, DeterministicTotalOrder) {
  const auto a = drr_rank(7, 100);
  const auto b = drr_rank(7, 100);
  EXPECT_EQ(a, b);
  const auto c = drr_rank(7, 101);
  EXPECT_TRUE(a < c || c < a);  // distinct labels always comparable
  EXPECT_FALSE(a < b);
}

TEST(DrrRankTest, AttachAntisymmetric) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    for (Label x = 0; x < 20; ++x) {
      for (Label y = x + 1; y < 20; ++y) {
        EXPECT_NE(drr_attaches(seed, x, y), drr_attaches(seed, y, x));
      }
    }
  }
}

TEST(DrrForestTest, SelfTargetsAreRoots) {
  std::vector<std::uint32_t> target{0, 1, 2, 3};
  const auto f = DrrForest::build(target, 5);
  EXPECT_EQ(f.roots, 4u);
  EXPECT_EQ(f.max_depth, 0u);
}

TEST(DrrForestTest, PairAttachesExactlyOnce) {
  // Two components pointing at each other: exactly one attaches.
  const std::vector<std::uint32_t> target{1, 0};
  const auto f = DrrForest::build(target, 99);
  EXPECT_EQ(f.roots, 1u);
  EXPECT_EQ(f.max_depth, 1u);
}

TEST(DrrForestTest, ChainDepthBounded) {
  // Functional graph: i -> i+1 (a path). Depth must be O(log n) whp,
  // exercised across seeds.
  constexpr std::uint32_t n = 1024;
  std::vector<std::uint32_t> target(n);
  for (std::uint32_t i = 0; i < n; ++i) target[i] = std::min(i + 1, n - 1);
  std::uint32_t worst = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto f = DrrForest::build(target, seed);
    worst = std::max(worst, f.max_depth);
  }
  // Lemma 6: depth <= 6 log2(n+1) whp; expectation <= log(n+1) ≈ 6.9.
  EXPECT_LE(worst, 6 * bits_for(n + 1));
}

TEST(DrrForestTest, RandomFunctionalGraphDepth) {
  constexpr std::uint32_t n = 4096;
  Rng rng(13);
  std::uint32_t worst = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint32_t> target(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto t = static_cast<std::uint32_t>(rng.next_below(n));
      target[i] = t == i ? (i + 1) % n : t;
    }
    const auto f = DrrForest::build(target, split(17, trial));
    worst = std::max(worst, f.max_depth);
    EXPECT_GE(f.roots, 1u);
  }
  EXPECT_LE(worst, 6 * bits_for(n + 1));
}

TEST(DrrForestTest, ParentsHaveHigherRank) {
  constexpr std::uint32_t n = 256;
  Rng rng(19);
  std::vector<std::uint32_t> target(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto t = static_cast<std::uint32_t>(rng.next_below(n));
    target[i] = t == i ? (i + 1) % n : t;
  }
  const std::uint64_t seed = 23;
  const auto f = DrrForest::build(target, seed);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (f.parent[i] != i) {
      EXPECT_TRUE(drr_rank(seed, i) < drr_rank(seed, f.parent[i]));
      EXPECT_EQ(f.parent[i], target[i]);  // attaches along the chosen edge
      EXPECT_EQ(f.depth[i], f.depth[f.parent[i]] + 1);
    } else {
      EXPECT_EQ(f.depth[i], 0u);
    }
  }
}

TEST(DrrForestTest, AverageDepthNearLogN) {
  // The appendix proof gives E[path length] <= log(n+1); check the
  // empirical mean of max depths stays in that ballpark (not a tight test,
  // a regression guard for the rank rule).
  constexpr std::uint32_t n = 2048;
  Rng rng(29);
  std::vector<std::uint32_t> target(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto t = static_cast<std::uint32_t>(rng.next_below(n));
    target[i] = t == i ? (i + 1) % n : t;
  }
  Accumulator depths;
  for (int trial = 0; trial < 30; ++trial) {
    depths.add(DrrForest::build(target, split(31, trial)).max_depth);
  }
  EXPECT_GE(depths.mean(), 2.0);   // not degenerate
  EXPECT_LE(depths.mean(), 3.0 * std::log2(n));
}

TEST(DrrForestTest, RootsAboutHalfForMutualSelection) {
  // When selections form a random functional graph, roughly half the
  // components do not attach (Lemma 7's "half become roots" intuition).
  constexpr std::uint32_t n = 8192;
  Rng rng(37);
  std::vector<std::uint32_t> target(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto t = static_cast<std::uint32_t>(rng.next_below(n));
    target[i] = t == i ? (i + 1) % n : t;
  }
  Accumulator roots;
  for (int trial = 0; trial < 20; ++trial) {
    roots.add(DrrForest::build(target, split(41, trial)).roots);
  }
  EXPECT_NEAR(roots.mean() / n, 0.5, 0.05);
}

TEST(DrrForestDeath, OutOfRangeTarget) {
  EXPECT_DEATH(DrrForest::build({5}, 1), "");
}

}  // namespace
}  // namespace kmm
