// Golden ledger regression: the ClusterStats ledger (rounds, supersteps,
// messages, bits, per-link maxima, cut bits) for every ported algorithm on
// path / gnm / rmat inputs, pinned to checked-in seed values.
//
// test_runtime.cpp proves the ledger is thread-invariant *within* one build;
// this suite proves it is invariant *across* representation changes: any
// payload-storage or delivery rework that silently shifts accounting fails
// here loudly. The seed values were captured from the pre-arena
// std::vector-payload representation, so they certify that inline/arena
// payload storage is accounting-neutral.
//
// To regenerate after an *intentional* accounting change, run
//   KMM_PRINT_GOLDEN=1 ./kmm_tests --gtest_filter='GoldenStats.*'
// and paste the printed table over kGolden below.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

struct GoldenRow {
  const char* name;  // "algo/graph"
  std::uint64_t rounds;
  std::uint64_t supersteps;
  std::uint64_t messages;
  std::uint64_t local_messages;
  std::uint64_t total_bits;
  std::uint64_t max_link_bits;
  std::uint64_t cut_bits;
};

/// One golden case: a name plus a runner that executes the algorithm on a
/// fresh cluster with the given thread count and returns the final ledger.
struct GoldenCase {
  std::string name;
  std::function<ClusterStats(unsigned threads)> run;
};

constexpr MachineId kMachines = 8;

Cluster fresh_cluster(std::size_t n) {
  return Cluster(ClusterConfig::for_graph(std::max<std::size_t>(n, 2), kMachines));
}

/// The same path/gnm/rmat trio test_runtime.cpp uses for its determinism
/// suite — the golden rows pin exactly those runs.
std::vector<std::pair<const char*, Graph>> standard_graphs() {
  std::vector<std::pair<const char*, Graph>> graphs;
  graphs.emplace_back("path", gen::path(600));
  Rng rng_gnm(7);
  graphs.emplace_back("gnm", gen::gnm(800, 2400, rng_gnm));
  Rng rng_rmat(11);
  graphs.emplace_back("rmat", gen::rmat(1024, 3000, rng_rmat));
  return graphs;
}

/// Smaller inputs for min-cut (one run is a whole sweep of inner
/// connectivity runs), mirroring test_runtime.cpp.
std::vector<std::pair<const char*, Graph>> mincut_graphs() {
  std::vector<std::pair<const char*, Graph>> graphs;
  graphs.emplace_back("path", gen::path(160));
  Rng rng_gnm(7);
  graphs.emplace_back("gnm", gen::gnm(192, 576, rng_gnm));
  Rng rng_rmat(11);
  graphs.emplace_back("rmat", gen::rmat(256, 700, rng_rmat));
  return graphs;
}

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  const auto add = [&](std::string name, std::function<ClusterStats(unsigned)> run) {
    cases.push_back(GoldenCase{std::move(name), std::move(run)});
  };

  for (auto& [gname, graph] : standard_graphs()) {
    const Graph g = graph;  // each lambda owns its input by value

    add(std::string("connectivity/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
      BoruvkaConfig cfg{.seed = 1234};
      cfg.threads = threads;
      (void)connected_components(c, dg, cfg);
      return c.stats();
    });

    add(std::string("connectivity_cut/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      std::vector<std::uint8_t> side(kMachines, 0);
      for (MachineId i = kMachines / 2; i < kMachines; ++i) side[i] = 1;
      c.track_cut(side);
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 5));
      BoruvkaConfig cfg{.seed = 77};
      cfg.threads = threads;
      (void)connected_components(c, dg, cfg);
      return c.stats();
    });

    add(std::string("mst/") + gname, [g, gname = std::string(gname)](unsigned threads) {
      Rng wrng(split(17, gname == "path" ? 0 : gname == "gnm" ? 1 : 2));
      const Graph wg = with_unique_weights(with_random_weights(g, wrng, 100000));
      Cluster c = fresh_cluster(wg.num_vertices());
      const DistributedGraph dg(wg, VertexPartition::random(wg.num_vertices(), kMachines, 99));
      BoruvkaConfig cfg{.seed = 4321};
      cfg.threads = threads;
      (void)minimum_spanning_forest(c, dg, cfg);
      return c.stats();
    });

    add(std::string("flooding/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
      (void)flooding_connectivity(c, dg, FloodingConfig{.threads = threads});
      return c.stats();
    });

    add(std::string("referee/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
      (void)referee_connectivity(c, dg, RefereeConfig{.threads = threads});
      return c.stats();
    });

    add(std::string("two_edge/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
      BoruvkaConfig cfg{.seed = 77};
      cfg.threads = threads;
      (void)two_edge_connectivity(c, dg, cfg);
      return c.stats();
    });

    add(std::string("verify_st+cycle/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
      BoruvkaConfig cfg{.seed = 31};
      cfg.threads = threads;
      const Vertex s = 1;
      const Vertex t = static_cast<Vertex>(g.num_vertices() - 2);
      (void)verify_st_connectivity(c, dg, s, t, cfg);
      (void)verify_cycle_containment(c, dg, cfg);
      return c.stats();
    });

    add(std::string("rep_mst/") + gname, [g, gname = std::string(gname)](unsigned threads) {
      const std::size_t gi = gname == "path" ? 0 : gname == "gnm" ? 1 : 2;
      Rng wrng(split(19, gi));
      const Graph wg = with_unique_weights(with_random_weights(g, wrng, 100000));
      const auto ep = EdgePartition::random(wg.num_edges(), kMachines, split(21, gi));
      Cluster c = fresh_cluster(wg.num_vertices());
      BoruvkaConfig cfg{.seed = 1717};
      cfg.threads = threads;
      (void)rep_model_mst(c, wg, ep, split(23, gi), cfg);
      return c.stats();
    });

    add(std::string("rep_connectivity/") + gname,
        [g, gname = std::string(gname)](unsigned threads) {
          const std::size_t gi = gname == "path" ? 0 : gname == "gnm" ? 1 : 2;
          const auto ep = EdgePartition::random(g.num_edges(), kMachines, split(25, gi));
          Cluster c = fresh_cluster(g.num_vertices());
          BoruvkaConfig cfg{.seed = 2929};
          cfg.threads = threads;
          (void)rep_model_connectivity(c, g, ep, split(27, gi), cfg);
          return c.stats();
        });
  }

  for (auto& [gname, graph] : mincut_graphs()) {
    const Graph g = graph;
    add(std::string("mincut/") + gname, [g](unsigned threads) {
      Cluster c = fresh_cluster(g.num_vertices());
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), kMachines, 99));
      MinCutConfig cfg;
      cfg.seed = 4242;
      cfg.threads = threads;
      (void)approximate_min_cut(c, dg, cfg);
      return c.stats();
    });
  }

  add("leader_election", [](unsigned threads) {
    Cluster c = fresh_cluster(4);
    (void)elect_leader(c, LeaderElectionConfig{.seed = 42, .threads = threads});
    return c.stats();
  });

  return cases;
}

// Seed values captured from the pre-change (heap-vector payload)
// representation; the current representation must reproduce them exactly.
// clang-format off
constexpr GoldenRow kGolden[] = {
    {"connectivity/path", 8881u, 201u, 11135u, 1585u, 22677935u, 144560u, 0u},
    {"connectivity_cut/path", 8114u, 179u, 10289u, 1365u, 21299690u, 171665u, 12210460u},
    {"mst/path", 18641u, 296u, 22100u, 3136u, 50506116u, 146804u, 0u},
    {"flooding/path", 4447u, 1576u, 266144u, 519u, 9442256u, 1008u, 0u},
    {"referee/path", 60u, 2u, 1047u, 76u, 37692u, 2952u, 0u},
    {"two_edge/path", 10068u, 223u, 15130u, 2110u, 27145516u, 153595u, 0u},
    {"verify_st+cycle/path", 17804u, 404u, 21362u, 2824u, 43816383u, 162630u, 0u},
    {"rep_mst/path", 17969u, 257u, 23096u, 3222u, 49729034u, 155839u, 0u},
    {"rep_connectivity/path", 8212u, 186u, 11483u, 1600u, 21549752u, 144560u, 0u},
    {"connectivity/gnm", 9662u, 208u, 13365u, 1839u, 25643489u, 209660u, 0u},
    {"connectivity_cut/gnm", 9265u, 199u, 13820u, 1875u, 25522236u, 190600u, 14498967u},
    {"mst/gnm", 49548u, 668u, 53305u, 7579u, 126051054u, 240698u, 0u},
    {"flooding/gnm", 100u, 16u, 10507u, 5u, 376789u, 2268u, 0u},
    {"referee/gnm", 159u, 2u, 2783u, 317u, 100188u, 11736u, 0u},
    {"two_edge/gnm", 10651u, 217u, 14524u, 1933u, 27146736u, 209660u, 0u},
    {"verify_st+cycle/gnm", 21882u, 464u, 29728u, 4026u, 54941159u, 209660u, 0u},
    {"rep_mst/gnm", 42618u, 539u, 52627u, 7358u, 115820401u, 219190u, 0u},
    {"rep_connectivity/gnm", 9829u, 207u, 18830u, 2598u, 27083336u, 181070u, 0u},
    {"connectivity/rmat", 8647u, 189u, 12342u, 1714u, 21598249u, 239900u, 0u},
    {"connectivity_cut/rmat", 9095u, 218u, 14311u, 2013u, 22710787u, 239900u, 13046309u},
    {"mst/rmat", 35856u, 580u, 42570u, 6155u, 80550875u, 239900u, 0u},
    {"flooding/rmat", 51u, 13u, 4433u, 4u, 158467u, 1800u, 0u},
    {"referee/rmat", 229u, 2u, 3449u, 441u, 124164u, 17640u, 0u},
    {"two_edge/rmat", 8105u, 164u, 12704u, 1747u, 21060667u, 220708u, 0u},
    {"verify_st+cycle/rmat", 17978u, 356u, 26874u, 3662u, 43809173u, 259092u, 0u},
    {"rep_mst/rmat", 32825u, 521u, 44209u, 6209u, 78664661u, 259092u, 0u},
    {"rep_connectivity/rmat", 8839u, 222u, 17794u, 2446u, 22102144u, 230304u, 0u},
    {"mincut/path", 10998u, 315u, 7916u, 999u, 11142345u, 64017u, 0u},
    {"mincut/gnm", 4743u, 138u, 3285u, 430u, 5171453u, 53088u, 0u},
    {"mincut/rmat", 3845u, 129u, 3344u, 407u, 4305242u, 61104u, 0u},
    {"leader_election", 2u, 1u, 56u, 0u, 4480u, 80u, 0u},
};
// clang-format on

TEST(GoldenStats, LedgerMatchesCheckedInSeedValues) {
  const auto cases = golden_cases();

  if (std::getenv("KMM_PRINT_GOLDEN") != nullptr) {
    for (const auto& gc : cases) {
      const auto s = gc.run(1);
      std::printf("    {\"%s\", %lluu, %lluu, %lluu, %lluu, %lluu, %lluu, %lluu},\n",
                  gc.name.c_str(), static_cast<unsigned long long>(s.rounds),
                  static_cast<unsigned long long>(s.supersteps),
                  static_cast<unsigned long long>(s.messages),
                  static_cast<unsigned long long>(s.local_messages),
                  static_cast<unsigned long long>(s.total_bits),
                  static_cast<unsigned long long>(s.max_link_bits),
                  static_cast<unsigned long long>(s.cut_bits));
    }
    GTEST_SKIP() << "printed " << cases.size() << " golden rows (capture mode)";
  }

  ASSERT_EQ(std::size(kGolden), cases.size())
      << "golden table out of sync with the case list — regenerate with "
         "KMM_PRINT_GOLDEN=1";

  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto& expect = kGolden[ci];
    ASSERT_STREQ(expect.name, cases[ci].name.c_str()) << "case order drifted";
    for (const unsigned threads : {1u, 8u}) {
      const auto s = cases[ci].run(threads);
      const auto what = cases[ci].name + " threads=" + std::to_string(threads);
      EXPECT_EQ(s.rounds, expect.rounds) << what;
      EXPECT_EQ(s.supersteps, expect.supersteps) << what;
      EXPECT_EQ(s.messages, expect.messages) << what;
      EXPECT_EQ(s.local_messages, expect.local_messages) << what;
      EXPECT_EQ(s.total_bits, expect.total_bits) << what;
      EXPECT_EQ(s.max_link_bits, expect.max_link_bits) << what;
      EXPECT_EQ(s.cut_bits, expect.cut_bits) << what;
    }
  }
}

}  // namespace
}  // namespace kmm
