// One-sparse recovery cells and the l0-sampler: recovery, linearity,
// cancellation, serialization, failure rates.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sketch/l0_sampler.hpp"
#include "util/prime_field.hpp"
#include "util/random.hpp"

namespace kmm {
namespace {

constexpr std::uint64_t kUniverse = 1 << 20;

std::uint64_t rpow(std::uint64_t r, std::uint64_t i) { return fp::pow(r, i); }

TEST(OneSparse, RecoversSingleEntry) {
  const std::uint64_t r = 987654321;
  for (const int value : {1, -1}) {
    OneSparseCell cell;
    cell.update(777, value, rpow(r, 777));
    const auto rec = cell.recover(r, kUniverse);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->index, 777u);
    EXPECT_EQ(rec->value, value);
  }
}

TEST(OneSparse, RejectsTwoEntries) {
  const std::uint64_t r = 13371337;
  OneSparseCell cell;
  cell.update(10, 1, rpow(r, 10));
  cell.update(20, 1, rpow(r, 20));
  EXPECT_FALSE(cell.recover(r, kUniverse).has_value());
}

TEST(OneSparse, RejectsCancelingPairPlusOne) {
  // s0 == 1 but the vector has three nonzero contributions: the
  // fingerprint must reject.
  const std::uint64_t r = 555666777;
  OneSparseCell cell;
  cell.update(10, 1, rpow(r, 10));
  cell.update(20, 1, rpow(r, 20));
  cell.update(30, -1, rpow(r, 30));
  EXPECT_EQ(cell.s0(), 1);
  EXPECT_FALSE(cell.recover(r, kUniverse).has_value());
}

TEST(OneSparse, CancellationGivesZero) {
  const std::uint64_t r = 42424242;
  OneSparseCell cell;
  cell.update(99, 1, rpow(r, 99));
  cell.update(99, -1, rpow(r, 99));
  EXPECT_TRUE(cell.all_zero());
  EXPECT_FALSE(cell.recover(r, kUniverse).has_value());
}

TEST(OneSparse, AddIsLinear) {
  const std::uint64_t r = 31415926;
  OneSparseCell a, b, direct;
  a.update(5, 1, rpow(r, 5));
  b.update(9, -1, rpow(r, 9));
  direct.update(5, 1, rpow(r, 5));
  direct.update(9, -1, rpow(r, 9));
  a.add(b);
  EXPECT_EQ(a.s0(), direct.s0());
  EXPECT_EQ(a.s1(), direct.s1());
  EXPECT_EQ(a.s2(), direct.s2());
}

TEST(OneSparse, RawRoundtrip) {
  const std::uint64_t r = 2718281828;
  OneSparseCell cell;
  cell.update(123, -1, rpow(r, 123));
  const auto copy = OneSparseCell::from_raw(cell.s0(), cell.s1(), cell.s2());
  const auto rec = copy.recover(r, kUniverse);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->index, 123u);
}

TEST(OneSparse, WireBitsGrowWithUniverse) {
  EXPECT_GT(OneSparseCell::wire_bits(1 << 30), OneSparseCell::wire_bits(1 << 10));
  EXPECT_GE(OneSparseCell::wire_bits(16), 2 * 61u);
}

L0Sampler make_sampler(std::uint64_t seed) {
  return L0Sampler(kUniverse, L0Params::for_universe(kUniverse), seed);
}

TEST(L0, EmptyIsZero) {
  const auto s = make_sampler(1);
  EXPECT_TRUE(s.is_zero());
  EXPECT_FALSE(s.sample().has_value());
}

TEST(L0, SingleItemRecoveredExactly) {
  auto s = make_sampler(2);
  s.update(4242, 1);
  EXPECT_FALSE(s.is_zero());
  const auto rec = s.sample();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->index, 4242u);
  EXPECT_EQ(rec->value, 1);
}

TEST(L0, SampleReturnsSupportMember) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = make_sampler(split(991, trial));
    std::set<std::uint64_t> support;
    const int size = 1 + static_cast<int>(rng.next_below(200));
    while (static_cast<int>(support.size()) < size) {
      support.insert(rng.next_below(kUniverse));
    }
    for (const auto idx : support) s.update(idx, 1);
    const auto rec = s.sample();
    ASSERT_TRUE(rec.has_value()) << "sampler failed on support size " << size;
    EXPECT_TRUE(support.count(rec->index)) << "sampled a non-support index";
    EXPECT_EQ(rec->value, 1);
  }
}

TEST(L0, MixedSignsStillValid) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    auto s = make_sampler(split(772, trial));
    std::map<std::uint64_t, int> entries;
    for (int i = 0; i < 100; ++i) {
      entries.emplace(rng.next_below(kUniverse), rng.next_bool(0.5) ? 1 : -1);
    }
    for (const auto& [idx, val] : entries) s.update(idx, val);
    const auto rec = s.sample();
    ASSERT_TRUE(rec.has_value());
    const auto it = entries.find(rec->index);
    ASSERT_NE(it, entries.end());
    EXPECT_EQ(rec->value, it->second);
  }
}

TEST(L0, LinearityExact) {
  Rng rng(7);
  const std::uint64_t seed = 404;
  auto a = make_sampler(seed);
  auto b = make_sampler(seed);
  auto direct = make_sampler(seed);
  for (int i = 0; i < 300; ++i) {
    const auto idx = rng.next_below(kUniverse);
    const int val = rng.next_bool(0.5) ? 1 : -1;
    if (i % 2 == 0) {
      a.update(idx, val);
    } else {
      b.update(idx, val);
    }
    direct.update(idx, val);
  }
  a.add(b);
  WordWriter wa, wd;
  a.serialize(wa);
  direct.serialize(wd);
  EXPECT_EQ(std::move(wa).take(), std::move(wd).take());
}

TEST(L0, CancellationToZero) {
  Rng rng(9);
  const std::uint64_t seed = 505;
  auto a = make_sampler(seed);
  auto b = make_sampler(seed);
  std::vector<std::uint64_t> idxs;
  for (int i = 0; i < 100; ++i) idxs.push_back(rng.next_below(kUniverse));
  for (const auto idx : idxs) a.update(idx, 1);
  for (const auto idx : idxs) b.update(idx, -1);
  a.add(b);
  EXPECT_TRUE(a.is_zero());
  EXPECT_FALSE(a.sample().has_value());
}

TEST(L0, PartialCancellationLeavesRest) {
  const std::uint64_t seed = 606;
  auto a = make_sampler(seed);
  a.update(100, 1);
  a.update(200, 1);
  auto b = make_sampler(seed);
  b.update(100, -1);
  a.add(b);
  const auto rec = a.sample();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->index, 200u);
}

TEST(L0, SerializeDeserializeRoundtrip) {
  Rng rng(11);
  auto s = make_sampler(707);
  for (int i = 0; i < 50; ++i) s.update(rng.next_below(kUniverse), 1);
  WordWriter w;
  s.serialize(w);
  const auto words = std::move(w).take();
  WordReader r(words);
  const auto copy =
      L0Sampler::deserialize(kUniverse, L0Params::for_universe(kUniverse), 707, r);
  EXPECT_TRUE(r.done());
  const auto s1 = s.sample();
  const auto s2 = copy.sample();
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(s1->index, s2->index);
}

// Serialize both sides and compare every word — wire-bit equality, the
// property the golden ledger relies on.
std::vector<std::uint64_t> wire_words(const L0Sampler& s) {
  WordWriter w;
  s.serialize(w);
  return std::move(w).take();
}

TEST(L0, AddSerializedMatchesDeserializeAdd) {
  // Randomized sketches: merging the wire form directly must be bit-exact
  // with materializing the sketch and adding it.
  Rng rng(29);
  const auto params = L0Params::for_universe(kUniverse);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t seed = split(71, trial);
    L0Sampler incoming(kUniverse, params, seed);
    const int support = 1 + static_cast<int>(rng.next_below(200));
    for (int i = 0; i < support; ++i) {
      incoming.update(rng.next_below(kUniverse), (i & 3) == 0 ? -1 : 1);
    }
    WordWriter w;
    w.u64(0x10be1);  // leading non-cell word, as on the engine's wire
    incoming.serialize(w);
    const auto words = std::move(w).take();

    // Identical nonzero accumulators; only the merge path differs.
    L0Sampler acc_a(kUniverse, params, seed);
    L0Sampler acc_b(kUniverse, params, seed);
    const std::uint64_t shared_index = rng.next_below(kUniverse);
    acc_a.update(shared_index, 1);
    acc_b.update(shared_index, 1);

    WordReader ra(words);
    (void)ra.u64();
    acc_a.add(L0Sampler::deserialize(kUniverse, params, seed, ra));
    EXPECT_TRUE(ra.done());

    WordReader rb(words);
    (void)rb.u64();
    acc_b.add_serialized(rb);
    EXPECT_TRUE(rb.done());

    EXPECT_EQ(wire_words(acc_a), wire_words(acc_b));
    const auto sa = acc_a.sample();
    const auto sb = acc_b.sample();
    ASSERT_EQ(sa.has_value(), sb.has_value());
    if (sa.has_value()) EXPECT_EQ(sa->index, sb->index);
  }
}

TEST(L0, AddSerializedCancelsLikeAdd) {
  // Two parts of one component cancel their shared edge when merged on the
  // wire, exactly as with add().
  const auto params = L0Params::for_universe(kUniverse);
  L0Sampler a(kUniverse, params, 31), b(kUniverse, params, 31);
  a.update(1234, 1);
  a.update(999, 1);
  b.update(1234, -1);
  L0Sampler acc(kUniverse, params, 31);
  const auto words_a = wire_words(a);
  const auto words_b = wire_words(b);
  WordReader ra(words_a);
  acc.add_serialized(ra);
  WordReader rb(words_b);
  acc.add_serialized(rb);
  const auto rec = acc.sample();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->index, 999u);
}

TEST(L0, ResetZeroesAndRebinds) {
  const auto params = L0Params::for_universe(kUniverse);
  L0Sampler s(kUniverse, params, 41);
  s.update(777, 1);
  EXPECT_FALSE(s.is_zero());
  s.reset(43);
  EXPECT_TRUE(s.is_zero());
  EXPECT_EQ(s.seed(), 43u);
  // After reset the sampler behaves like a fresh seed-43 sketch.
  L0Sampler fresh(kUniverse, params, 43);
  s.update(555, 1);
  fresh.update(555, 1);
  EXPECT_EQ(wire_words(s), wire_words(fresh));
}

TEST(L0, FingerprintBaseForMatchesInstance) {
  const L0Sampler s(kUniverse, L0Params::for_universe(kUniverse), 97);
  for (int c = 0; c < s.params().copies; ++c) {
    EXPECT_EQ(L0Sampler::fingerprint_base_for(97, c), s.fingerprint_base(c));
  }
}

TEST(L0, SuccessRateHigh) {
  Rng rng(13);
  int failures = 0;
  constexpr int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto s = make_sampler(split(808, trial));
    const int size = 1 + static_cast<int>(rng.next_below(1000));
    for (int i = 0; i < size; ++i) s.update(rng.next_below(kUniverse), 1);
    if (!s.sample().has_value()) ++failures;
  }
  // Three independent copies: empirical failure rate stays in low percent.
  EXPECT_LE(failures, kTrials / 20);
}

TEST(L0, SampleSpreadsOverSupport) {
  // Across independent seeds, every element of a small support should be
  // sampled at least once — a coarse uniformity check.
  constexpr int kSupport = 8;
  std::set<std::uint64_t> hit;
  for (int seed = 0; seed < 200 && hit.size() < kSupport; ++seed) {
    auto s = make_sampler(split(909, seed));
    for (std::uint64_t i = 0; i < kSupport; ++i) s.update(1000 + i, 1);
    if (const auto rec = s.sample()) hit.insert(rec->index);
  }
  EXPECT_EQ(hit.size(), kSupport);
}

TEST(L0, WireBitsMatchParams) {
  const auto s = make_sampler(1);
  const auto& params = s.params();
  EXPECT_EQ(s.wire_bits(),
            static_cast<std::uint64_t>(params.cells()) * OneSparseCell::wire_bits(kUniverse));
  // O(polylog): a few hundred field elements at most for this universe.
  EXPECT_LT(s.wire_bits(), 50'000u);
}

TEST(L0Death, MismatchedCombineRejected) {
  auto a = make_sampler(1);
  auto b = make_sampler(2);  // different seed
  EXPECT_DEATH(a.add(b), "different construction");
}

TEST(L0Death, UpdateOutsideUniverse) {
  auto a = make_sampler(1);
  EXPECT_DEATH(a.update(kUniverse + 5, 1), "outside universe");
}

TEST(L0Params, LevelsCoverUniverse) {
  const auto p = L0Params::for_universe(1ULL << 32);
  EXPECT_GE(p.levels, 32);
  const auto small = L0Params::for_universe(16);
  EXPECT_GE(small.levels, 4);
  EXPECT_EQ(small.cells(), small.levels * small.copies);
}

}  // namespace
}  // namespace kmm
