// Theorem 4: the eight verification problems, positive and negative
// instances, plus randomized cross-validation against sequential references.

#include <gtest/gtest.h>

#include "kmm.hpp"

namespace kmm {
namespace {

struct Fixture {
  Graph g;
  Cluster cluster;
  DistributedGraph dg;

  Fixture(Graph graph, MachineId k, std::uint64_t seed)
      : g(std::move(graph)),
        cluster(ClusterConfig::for_graph(g.num_vertices(), k)),
        dg(g, VertexPartition::random(g.num_vertices(), k, seed)) {}
};

std::vector<std::pair<Vertex, Vertex>> spanning_tree_edges(const Graph& g) {
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (const auto& e : ref::minimum_spanning_forest(g)) edges.emplace_back(e.u, e.v);
  return edges;
}

TEST(VerifySCS, SpanningTreeAccepted) {
  Rng rng(1);
  Fixture f(gen::connected_gnm(80, 200, rng), 4, 3);
  const auto result =
      verify_spanning_connected_subgraph(f.cluster, f.dg, spanning_tree_edges(f.g));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.components, 1u);
}

TEST(VerifySCS, MissingBridgeRejected) {
  Rng rng(2);
  Fixture f(gen::connected_gnm(80, 200, rng), 4, 5);
  auto edges = spanning_tree_edges(f.g);
  edges.pop_back();  // drop one tree edge: no longer spanning-connected
  const auto result = verify_spanning_connected_subgraph(f.cluster, f.dg, edges);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.components, 2u);
}

TEST(VerifySCS, FullGraphAccepted) {
  Rng rng(3);
  Fixture f(gen::connected_gnm(60, 150, rng), 4, 7);
  std::vector<std::pair<Vertex, Vertex>> all;
  for (const auto& e : f.g.edges()) all.emplace_back(e.u, e.v);
  EXPECT_TRUE(verify_spanning_connected_subgraph(f.cluster, f.dg, all).ok);
}

TEST(VerifyCut, BridgeEdgesAreACut) {
  Rng rng(4);
  Fixture f(gen::dumbbell(24, 3, rng), 4, 9);
  // The three bridge edges (those crossing the halves) form a cut.
  std::vector<std::pair<Vertex, Vertex>> bridges;
  for (const auto& e : f.g.edges()) {
    if (e.u < 12 && e.v >= 12) bridges.emplace_back(e.u, e.v);
  }
  ASSERT_EQ(bridges.size(), 3u);
  EXPECT_TRUE(verify_cut(f.cluster, f.dg, bridges, {}).ok);
}

TEST(VerifyCut, NonCutRejected) {
  Fixture f(gen::complete(16), 4, 11);
  // Removing two edges of K_16 never disconnects it.
  const auto result = verify_cut(f.cluster, f.dg, {{0, 1}, {2, 3}}, {});
  EXPECT_FALSE(result.ok);
}

TEST(VerifyStConn, ConnectedPair) {
  Rng rng(5);
  Fixture f(gen::connected_gnm(70, 180, rng), 4, 13);
  EXPECT_TRUE(verify_st_connectivity(f.cluster, f.dg, 3, 55, {}).ok);
}

TEST(VerifyStConn, DisconnectedPair) {
  Rng rng(6);
  Fixture f(gen::multi_component(80, 160, 2, rng), 4, 15);
  // multi_component splits [0,40) and [40,80).
  EXPECT_FALSE(verify_st_connectivity(f.cluster, f.dg, 0, 79, {}).ok);
  EXPECT_TRUE(verify_st_connectivity(f.cluster, f.dg, 0, 39, {}).ok);
}

TEST(VerifyEdgeOnAllPaths, BridgeInPath) {
  Fixture f(gen::path(30), 4, 17);
  // Every edge of a path lies on all paths between its sides.
  EXPECT_TRUE(verify_edge_on_all_paths(f.cluster, f.dg, 2, 27, 10, 11, {}).ok);
  // ...but not between vertices on the same side of it.
  EXPECT_FALSE(verify_edge_on_all_paths(f.cluster, f.dg, 2, 5, 10, 11, {}).ok);
}

TEST(VerifyEdgeOnAllPaths, CycleEdgeNever) {
  Fixture f(gen::cycle(20), 4, 19);
  EXPECT_FALSE(verify_edge_on_all_paths(f.cluster, f.dg, 0, 10, 5, 6, {}).ok);
}

TEST(VerifyStCut, SeparatingSetAccepted) {
  Fixture f(gen::path(20), 4, 21);
  EXPECT_TRUE(verify_st_cut(f.cluster, f.dg, 0, 19, {{9, 10}}, {}).ok);
}

TEST(VerifyStCut, InsufficientSetRejected) {
  Fixture f(gen::cycle(20), 4, 23);
  // One edge of a cycle cannot separate anything.
  EXPECT_FALSE(verify_st_cut(f.cluster, f.dg, 0, 10, {{0, 1}}, {}).ok);
  // Two opposite edges do.
  EXPECT_TRUE(verify_st_cut(f.cluster, f.dg, 0, 10, {{0, 1}, {10, 11}}, {}).ok);
}

TEST(VerifyCycle, TreeHasNone) {
  Rng rng(7);
  Fixture f(gen::random_tree(100, rng), 4, 25);
  EXPECT_FALSE(verify_cycle_containment(f.cluster, f.dg, {}).ok);
}

TEST(VerifyCycle, TreePlusEdgeHasOne) {
  Rng rng(8);
  Graph tree = gen::random_tree(100, rng);
  auto edges = tree.edges();
  edges.push_back(WeightedEdge{0, 99, 1});
  Fixture f(Graph(100, std::move(edges)), 4, 27);
  EXPECT_TRUE(verify_cycle_containment(f.cluster, f.dg, {}).ok);
}

TEST(VerifyCycle, DisconnectedForestVsExtraEdge) {
  Rng rng(9);
  // Forest with two trees: no cycle even though disconnected.
  const Graph forest = gen::disjoint_union({gen::random_tree(40, rng),
                                            gen::random_tree(40, rng)});
  Fixture f(forest, 4, 29);
  EXPECT_FALSE(verify_cycle_containment(f.cluster, f.dg, {}).ok);
}

TEST(VerifyECycle, CycleEdgeAccepted) {
  Fixture f(gen::cycle(24), 4, 31);
  EXPECT_TRUE(verify_e_cycle_containment(f.cluster, f.dg, 5, 6, {}).ok);
}

TEST(VerifyECycle, BridgeRejected) {
  Fixture f(gen::path(24), 4, 33);
  EXPECT_FALSE(verify_e_cycle_containment(f.cluster, f.dg, 5, 6, {}).ok);
}

TEST(VerifyBipartite, BipartiteFamiliesAccepted) {
  Rng rng(10);
  for (const std::uint64_t seed : {35ULL, 37ULL}) {
    Fixture f(gen::bipartite(40, 50, 220, rng), 4, seed);
    EXPECT_TRUE(verify_bipartiteness(f.cluster, f.dg, {}).ok);
  }
  Fixture grid(gen::grid(9, 11), 4, 39);
  EXPECT_TRUE(verify_bipartiteness(grid.cluster, grid.dg, {}).ok);
  Fixture even(gen::cycle(30), 4, 41);
  EXPECT_TRUE(verify_bipartiteness(even.cluster, even.dg, {}).ok);
}

TEST(VerifyBipartite, OddStructuresRejected) {
  Rng rng(11);
  Fixture odd(gen::cycle(31), 4, 43);
  EXPECT_FALSE(verify_bipartiteness(odd.cluster, odd.dg, {}).ok);
  Fixture spoiled(gen::odd_cycle_spoiler(40, 50, 220, rng), 4, 45);
  EXPECT_FALSE(verify_bipartiteness(spoiled.cluster, spoiled.dg, {}).ok);
  Fixture clique(gen::complete(9), 4, 47);
  EXPECT_FALSE(verify_bipartiteness(clique.cluster, clique.dg, {}).ok);
}

TEST(VerifyBipartite, DisconnectedMixed) {
  Rng rng(12);
  // One bipartite part + one odd cycle: the whole graph is not bipartite.
  const Graph mixed = gen::disjoint_union({gen::cycle(10), gen::cycle(11)});
  Fixture f(mixed, 4, 49);
  EXPECT_FALSE(verify_bipartiteness(f.cluster, f.dg, {}).ok);
  const Graph both = gen::disjoint_union({gen::cycle(10), gen::cycle(12)});
  Fixture f2(both, 4, 51);
  EXPECT_TRUE(verify_bipartiteness(f2.cluster, f2.dg, {}).ok);
}

// Randomized cross-validation of the three label-comparison verifiers
// against sequential references.
class VerifyCross : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifyCross, AgreesWithReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const Graph g = gen::gnm(90, 140, rng);  // sparse: both classes appear
  Fixture f(g, 4, split(seed, 1));
  for (int probe = 0; probe < 4; ++probe) {
    const auto s = static_cast<Vertex>(rng.next_below(90));
    const auto t = static_cast<Vertex>(rng.next_below(90));
    if (s == t) continue;
    EXPECT_EQ(verify_st_connectivity(f.cluster, f.dg, s, t, {}).ok,
              ref::same_component(g, s, t));
  }
  EXPECT_EQ(verify_cycle_containment(f.cluster, f.dg, {}).ok, ref::has_cycle(g));
  EXPECT_EQ(verify_bipartiteness(f.cluster, f.dg, {}).ok, ref::is_bipartite(g));
  if (g.num_edges() > 0) {
    const auto& e = g.edges()[rng.next_below(g.num_edges())];
    EXPECT_EQ(verify_e_cycle_containment(f.cluster, f.dg, e.u, e.v, {}).ok,
              ref::edge_on_cycle(g, e.u, e.v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifyCross, ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace kmm
