// Section 4 artifacts: disjointness instances, the Figure 1 family, and the
// two-party simulation harness.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "kmm.hpp"

namespace kmm {
namespace {

TEST(Disjointness, RandomClassesBehave) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto dis = DisjointnessInstance::random_disjoint(64, 0.3, rng);
    EXPECT_TRUE(dis.disjoint());
    const auto hit = DisjointnessInstance::random_intersecting(64, 0.3, rng);
    EXPECT_FALSE(hit.disjoint());
    EXPECT_EQ(dis.b(), 64u);
  }
}

TEST(Disjointness, RevealVectorsSized) {
  Rng rng(2);
  const auto inst = DisjointnessInstance::random(128, 0.5, rng);
  EXPECT_EQ(inst.x_seen_by_bob.size(), 128u);
  EXPECT_EQ(inst.y_seen_by_alice.size(), 128u);
  // Roughly half the bits are revealed.
  int revealed = 0;
  for (const auto bit : inst.x_seen_by_bob) revealed += bit;
  EXPECT_NEAR(revealed, 64, 25);
}

TEST(ScsInstanceTest, StructureMatchesFigure1) {
  Rng rng(3);
  const auto inst = DisjointnessInstance::random(16, 0.4, rng);
  const auto scs = ScsInstance::build(inst);
  EXPECT_EQ(scs.g.num_vertices(), 2 * 16 + 2u);
  EXPECT_EQ(scs.g.num_edges(), 3 * 16 + 1u);
  EXPECT_TRUE(scs.g.has_edge(scs.s, scs.t));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(scs.g.has_edge(scs.u(i), scs.v(i)));
    EXPECT_TRUE(scs.g.has_edge(scs.s, scs.u(i)));
    EXPECT_TRUE(scs.g.has_edge(scs.v(i), scs.t));
  }
  // The paper's remark: G has diameter 2.
  EXPECT_LE(ref::diameter_lower_bound(scs.g, 20), 3u);
  const auto dist = ref::bfs_distances(scs.g, scs.s);
  for (std::size_t v = 0; v < scs.g.num_vertices(); ++v) EXPECT_LE(dist[v], 2u);
}

TEST(ScsInstanceTest, HIsScsIffDisjoint) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const auto inst = trial % 2 == 0 ? DisjointnessInstance::random_disjoint(40, 0.3, rng)
                                     : DisjointnessInstance::random_intersecting(40, 0.3, rng);
    const auto scs = ScsInstance::build(inst);
    // Reference check: the H-subgraph is connected+spanning iff disjoint.
    std::vector<WeightedEdge> h_edges;
    for (auto [u, v] : scs.h_edges) {
      h_edges.push_back(WeightedEdge{std::min(u, v), std::max(u, v), 1});
    }
    const Graph h(scs.g.num_vertices(), std::move(h_edges));
    EXPECT_EQ(ref::is_connected(h), inst.disjoint()) << "trial " << trial;
  }
}

TEST(TwoParty, VerdictMatchesGroundTruth) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    const auto inst = trial % 2 == 0
                          ? DisjointnessInstance::random_disjoint(24, 0.3, rng)
                          : DisjointnessInstance::random_intersecting(24, 0.3, rng);
    const auto result = simulate_scs_two_party(inst, 8, split(7, trial));
    EXPECT_EQ(result.verdict, result.expected) << "trial " << trial;
    EXPECT_EQ(result.b, 24u);
  }
}

TEST(TwoParty, CutBitsArePositiveAndBounded) {
  Rng rng(6);
  const auto inst = DisjointnessInstance::random_disjoint(64, 0.3, rng);
  const auto result = simulate_scs_two_party(inst, 8, 9);
  EXPECT_GT(result.cut_bits, 0u);
  EXPECT_LE(result.cut_bits, result.total_bits);
  // Lemma 8 says Ω(b) bits must cross; our protocol's crossing traffic
  // should comfortably exceed b (it ships Θ~(b) sketch bits).
  EXPECT_GE(result.cut_bits, result.b);
}

TEST(TwoParty, CommunicationGrowsWithB) {
  Rng rng(7);
  std::uint64_t prev = 0;
  for (const std::size_t b : {32u, 128u, 512u}) {
    const auto inst = DisjointnessInstance::random_disjoint(b, 0.3, rng);
    const auto result = simulate_scs_two_party(inst, 8, split(11, b));
    EXPECT_GT(result.cut_bits, prev);
    prev = result.cut_bits;
  }
}

TEST(TwoPartyDeath, RequiresEvenK) {
  Rng rng(8);
  const auto inst = DisjointnessInstance::random(8, 0.3, rng);
  EXPECT_DEATH((void)simulate_scs_two_party(inst, 5, 1), "even k");
}

}  // namespace
}  // namespace kmm
