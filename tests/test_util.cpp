// Unit tests for the util layer: RNG, prime field, hashing, stats, DSU,
// payload codec.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/codec.hpp"
#include "util/hashing.hpp"
#include "util/prime_field.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/union_find.hpp"

namespace kmm {
namespace {

TEST(SplitMix, Deterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(SplitMix, SplitSeparatesKeys) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t key = 0; key < 1000; ++key) seen.insert(split(7, key));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SplitMix, Split3DependsOnAllArgs) {
  EXPECT_NE(split3(1, 2, 3), split3(1, 3, 2));
  EXPECT_NE(split3(1, 2, 3), split3(2, 2, 3));
}

TEST(Rng, DeterministicStreams) {
  Rng a(5), b(5), c(6);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // astronomically unlikely to collide
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, NextInInclusive) {
  Rng rng(13);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_hit |= v == -3;
    hi_hit |= v == 3;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(15);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    acc.add(d);
  }
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(PrimeField, ReduceIdempotent) {
  EXPECT_EQ(fp::reduce(kMersenne61), 0u);
  EXPECT_EQ(fp::reduce(kMersenne61 + 5), 5u);
  EXPECT_EQ(fp::reduce(~0ULL), fp::reduce(fp::reduce(~0ULL)));
}

TEST(PrimeField, AddSubInverse) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto a = rng.next_below(kMersenne61);
    const auto b = rng.next_below(kMersenne61);
    EXPECT_EQ(fp::sub(fp::add(a, b), b), a);
    EXPECT_EQ(fp::add(a, fp::neg(a)), 0u);
  }
}

TEST(PrimeField, MulAssociativeDistributive) {
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    const auto a = rng.next_below(kMersenne61);
    const auto b = rng.next_below(kMersenne61);
    const auto c = rng.next_below(kMersenne61);
    EXPECT_EQ(fp::mul(fp::mul(a, b), c), fp::mul(a, fp::mul(b, c)));
    EXPECT_EQ(fp::mul(a, fp::add(b, c)), fp::add(fp::mul(a, b), fp::mul(a, c)));
  }
}

TEST(PrimeField, PowMatchesRepeatedMul) {
  const std::uint64_t base = 123456789;
  std::uint64_t acc = 1;
  for (std::uint64_t e = 0; e < 32; ++e) {
    EXPECT_EQ(fp::pow(base, e), acc);
    acc = fp::mul(acc, base);
  }
}

TEST(PrimeField, FermatInverse) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    const auto a = 1 + rng.next_below(kMersenne61 - 1);
    EXPECT_EQ(fp::mul(a, fp::inv(a)), 1u);
  }
}

TEST(PolynomialHash, DeterministicAndSeeded) {
  Rng rng1(31), rng2(31);
  const PolynomialHash h1(4, rng1), h2(4, rng2);
  for (std::uint64_t x = 0; x < 100; ++x) EXPECT_EQ(h1(x), h2(x));
  EXPECT_EQ(h1.random_bits(), 4 * 61u);
}

TEST(PolynomialHash, PairwiseIndependenceStatistical) {
  // For a 2-wise independent family, P[h(x) bucket == h(y) bucket] ≈ 1/B.
  constexpr int kTrials = 4000;
  constexpr std::uint64_t kBuckets = 16;
  Rng rng(33);
  int collisions = 0;
  for (int t = 0; t < kTrials; ++t) {
    const PolynomialHash h(2, rng);
    if (h.bucket(12345, kBuckets) == h.bucket(67890, kBuckets)) ++collisions;
  }
  const double rate = static_cast<double>(collisions) / kTrials;
  EXPECT_NEAR(rate, 1.0 / kBuckets, 0.03);
}

TEST(PolynomialHash, BucketBalance) {
  Rng rng(35);
  const PolynomialHash h(3, rng);
  constexpr std::uint64_t kBuckets = 8;
  std::vector<int> counts(kBuckets, 0);
  for (std::uint64_t x = 0; x < 16000; ++x) ++counts[h.bucket(x, kBuckets)];
  for (const int c : counts) EXPECT_NEAR(c, 2000, 250);
}

TEST(GeometricLevel, Distribution) {
  Rng rng(37);
  constexpr int kSamples = 100000;
  int at_least_one = 0, at_least_three = 0;
  for (int i = 0; i < kSamples; ++i) {
    const int lvl = geometric_level(rng.next(), 30);
    if (lvl >= 1) ++at_least_one;
    if (lvl >= 3) ++at_least_three;
  }
  EXPECT_NEAR(at_least_one / double(kSamples), 0.5, 0.01);
  EXPECT_NEAR(at_least_three / double(kSamples), 0.125, 0.01);
}

TEST(GeometricLevel, ClampsAtMax) {
  EXPECT_EQ(geometric_level(0, 7), 7);
  EXPECT_EQ(geometric_level(1ULL << 20, 7), 7);
  EXPECT_EQ(geometric_level(1, 7), 0);
}

TEST(Accumulator, Moments) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 4.0, 1e-9);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(HistogramTest, CountsAndOverflow) {
  Histogram h(10.0, 5);
  for (double x = 0.5; x < 10; x += 1.0) h.add(x);
  h.add(50.0);  // overflow
  EXPECT_EQ(h.total(), 11u);
  EXPECT_EQ(h.bucket_count(h.buckets() - 1), 1u);
  EXPECT_FALSE(h.render().empty());
}

TEST(Stats, LogLogSlopeRecoversPowerLaws) {
  std::vector<double> x, y2, ym1;
  for (double v = 2; v <= 64; v *= 2) {
    x.push_back(v);
    y2.push_back(v * v * 3.0);
    ym1.push_back(100.0 / v);
  }
  EXPECT_NEAR(loglog_slope(x, y2), 2.0, 1e-9);
  EXPECT_NEAR(loglog_slope(x, ym1), -1.0, 1e-9);
}

TEST(Stats, Correlation) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2, 4, 6, 8, 10};
  const std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-9);
  EXPECT_NEAR(correlation(x, z), -1.0, 1e-9);
}

TEST(Stats, Quantile) {
  std::vector<double> v{9, 1, 5, 3, 7};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(6);
  EXPECT_EQ(uf.component_count(), 6u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.component_count(), 3u);
  EXPECT_TRUE(uf.same(1, 2));
  EXPECT_FALSE(uf.same(1, 4));
  EXPECT_EQ(uf.set_size(0), 4u);
  EXPECT_EQ(uf.set_size(5), 1u);
}

TEST(Codec, WriterReaderRoundtrip) {
  WordWriter w;
  w.u64(~0ULL).u32(7).u64(42);
  const auto words = std::move(w).take();
  WordReader r(words);
  EXPECT_EQ(r.u64(), ~0ULL);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_TRUE(r.done());
}

TEST(Codec, BitsFor) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
}

TEST(CodecDeath, Underrun) {
  const std::vector<std::uint64_t> words{1};
  EXPECT_DEATH(
      {
        WordReader r(words);
        (void)r.u64();
        (void)r.u64();  // underrun aborts
      },
      "payload underrun");
}

}  // namespace
}  // namespace kmm
