// Graph container + sequential reference algorithm tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace kmm {
namespace {

TEST(GraphContainer, CsrInvariants) {
  const Graph g(5, {{0, 1, 3}, {1, 2, 1}, {3, 1, 7}, {4, 0, 2}});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  std::size_t degree_sum = 0;
  for (Vertex v = 0; v < 5; ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.max_weight(), 7u);
}

TEST(GraphContainer, NeighborsSymmetric) {
  Rng rng(1);
  const Graph g = gen::gnm(40, 100, rng);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const auto& he : g.neighbors(v)) {
      bool back = false;
      for (const auto& rev : g.neighbors(he.to)) back |= rev.to == v;
      EXPECT_TRUE(back);
    }
  }
}

TEST(GraphContainer, HasEdge) {
  const Graph g(4, {{0, 1, 1}, {2, 3, 1}});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(GraphContainer, EdgesCanonicalSorted) {
  const Graph g(4, {{3, 2, 1}, {1, 0, 1}, {2, 0, 1}});
  const auto& edges = g.edges();
  for (const auto& e : edges) EXPECT_LT(e.u, e.v);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end(),
                             [](const WeightedEdge& a, const WeightedEdge& b) {
                               return std::pair{a.u, a.v} < std::pair{b.u, b.v};
                             }));
}

TEST(GraphContainer, WithoutEdges) {
  const Graph g = gen::cycle(6);
  const Graph cut = g.without_edges({{0, 1}, {3, 4}});
  EXPECT_EQ(cut.num_edges(), 4u);
  EXPECT_FALSE(cut.has_edge(0, 1));
  EXPECT_TRUE(cut.has_edge(1, 2));
}

TEST(GraphContainer, Filtered) {
  const Graph g(4, {{0, 1, 5}, {1, 2, 10}, {2, 3, 15}});
  const Graph light = g.filtered([](Vertex, Vertex, Weight w) { return w <= 10; });
  EXPECT_EQ(light.num_edges(), 2u);
  EXPECT_FALSE(light.has_edge(2, 3));
}

TEST(GraphContainer, EdgeIndexRoundtrip) {
  const std::uint64_t n = 100;
  for (Vertex x = 0; x < 10; ++x) {
    for (Vertex y = x + 1; y < 12; ++y) {
      const auto [a, b] = edge_endpoints(edge_index(x, y, n), n);
      EXPECT_EQ(a, x);
      EXPECT_EQ(b, y);
      EXPECT_EQ(edge_index(y, x, n), edge_index(x, y, n));  // symmetric
    }
  }
}

TEST(GraphContainer, MakeRejectsSelfLoopsAndParallel) {
  const auto self_loop = Graph::make(3, {{1, 1, 1}});
  ASSERT_FALSE(self_loop.ok());
  EXPECT_NE(self_loop.error().message.find("self-loops"), std::string::npos);

  // {1, 0} is the same undirected edge as {0, 1} — canonicalization must
  // catch the duplicate whichever orientation each copy arrived in.
  const auto parallel = Graph::make(3, {{0, 1, 1}, {1, 0, 2}});
  ASSERT_FALSE(parallel.ok());
  EXPECT_NE(parallel.error().message.find("parallel"), std::string::npos);

  const auto range = Graph::make(3, {{0, 7, 1}});
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.error().message.find("out of range"), std::string::npos);
}

TEST(GraphContainer, MakeAcceptsValidEdgeList) {
  auto made = Graph::make(4, {{2, 0, 5}, {0, 1, 3}, {1, 2, 4}});
  ASSERT_TRUE(made.ok());
  const Graph g = std::move(made).value();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 2));
  // Identical to the ctor path: same canonical edge order, same CSR.
  const Graph direct(4, {{2, 0, 5}, {0, 1, 3}, {1, 2, 4}});
  EXPECT_EQ(g.edges(), direct.edges());
}

TEST(Builder, Deduplicates) {
  GraphBuilder b(4);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(1, 0));  // same undirected edge
  EXPECT_FALSE(b.add_edge(2, 2));  // self loop ignored
  EXPECT_TRUE(b.add_edge(2, 3));
  EXPECT_TRUE(b.has_edge(0, 1));
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, UniqueWeightsPreserveOrder) {
  const Graph g(4, {{0, 1, 5}, {1, 2, 5}, {2, 3, 1}});
  EXPECT_FALSE(g.has_unique_weights());
  const Graph u = with_unique_weights(g);
  EXPECT_TRUE(u.has_unique_weights());
  // Strictly lighter edges stay strictly lighter.
  Weight w23 = 0, w01 = 0;
  for (const auto& e : u.edges()) {
    if (e.u == 2 && e.v == 3) w23 = e.w;
    if (e.u == 0 && e.v == 1) w01 = e.w;
  }
  EXPECT_LT(w23, w01);
}

TEST(Builder, RandomWeightsInRange) {
  Rng rng(3);
  const Graph g = with_random_weights(gen::cycle(20), rng, 50);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, 50u);
  }
}

TEST(RefAlgos, ComponentLabelsKnownGraphs) {
  const Graph two(5, {{0, 1, 1}, {3, 4, 1}});
  const auto labels = ref::component_labels(two);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[0], 0u);  // smallest member labels the component
  EXPECT_EQ(ref::component_count(two), 3u);
  EXPECT_FALSE(ref::is_connected(two));
  EXPECT_TRUE(ref::same_component(two, 0, 1));
  EXPECT_FALSE(ref::same_component(two, 0, 3));
}

TEST(RefAlgos, KruskalMatchesPrim) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = with_random_weights(gen::connected_gnm(60, 140, rng), rng);
    g = with_unique_weights(g);
    EXPECT_EQ(ref::msf_weight(g), ref::prim_mst_weight(g));
    const auto forest = ref::minimum_spanning_forest(g);
    EXPECT_EQ(forest.size(), g.num_vertices() - 1);
  }
}

TEST(RefAlgos, MsfOnDisconnected) {
  Rng rng(7);
  const Graph g = gen::multi_component(60, 120, 3, rng);
  const auto forest = ref::minimum_spanning_forest(g);
  EXPECT_EQ(forest.size(), g.num_vertices() - ref::component_count(g));
}

TEST(RefAlgos, Bipartiteness) {
  Rng rng(9);
  EXPECT_TRUE(ref::is_bipartite(gen::bipartite(20, 25, 80, rng)));
  EXPECT_TRUE(ref::is_bipartite(gen::path(30)));
  EXPECT_TRUE(ref::is_bipartite(gen::cycle(30)));   // even cycle
  EXPECT_FALSE(ref::is_bipartite(gen::cycle(31)));  // odd cycle
  EXPECT_FALSE(ref::is_bipartite(gen::complete(4)));
  EXPECT_FALSE(ref::is_bipartite(gen::odd_cycle_spoiler(20, 25, 80, rng)));
}

TEST(RefAlgos, CycleQueries) {
  EXPECT_FALSE(ref::has_cycle(gen::path(10)));
  EXPECT_FALSE(ref::has_cycle(gen::binary_tree(15)));
  EXPECT_TRUE(ref::has_cycle(gen::cycle(5)));
  const Graph lolly(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {1, 3, 1}});
  EXPECT_TRUE(ref::edge_on_cycle(lolly, 1, 2));
  EXPECT_FALSE(ref::edge_on_cycle(lolly, 0, 1));
}

TEST(RefAlgos, StoerWagnerKnownCuts) {
  Rng rng(11);
  EXPECT_EQ(ref::stoer_wagner_min_cut(gen::cycle(8)), 2u);
  EXPECT_EQ(ref::stoer_wagner_min_cut(gen::complete(6)), 5u);
  EXPECT_EQ(ref::stoer_wagner_min_cut(gen::path(6)), 1u);
  for (const std::size_t lambda : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const Graph g = gen::dumbbell(16, lambda, rng);
    EXPECT_EQ(ref::stoer_wagner_min_cut(g), lambda);
  }
  EXPECT_EQ(ref::stoer_wagner_min_cut(Graph(4, {{0, 1, 1}})), 0u);  // disconnected
}

TEST(RefAlgos, BfsDistancesAndDiameter) {
  const Graph p = gen::path(10);
  const auto dist = ref::bfs_distances(p, 0);
  for (std::size_t v = 0; v < 10; ++v) EXPECT_EQ(dist[v], v);
  EXPECT_EQ(ref::diameter_lower_bound(p), 9u);
  const Graph disc(4, {{0, 1, 1}});
  EXPECT_EQ(ref::bfs_distances(disc, 0)[3], std::numeric_limits<std::size_t>::max());
}

TEST(RefAlgos, SpanningForestChecker) {
  const Graph g = gen::cycle(5);
  EXPECT_TRUE(ref::is_spanning_forest(g, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  EXPECT_FALSE(ref::is_spanning_forest(g, {{0, 1}, {1, 2}}));  // not spanning
  EXPECT_FALSE(
      ref::is_spanning_forest(g, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}));  // cycle
  EXPECT_FALSE(
      ref::is_spanning_forest(g, {{0, 2}, {1, 2}, {2, 3}, {3, 4}}));  // non-edge
}

}  // namespace
}  // namespace kmm
