// The parallel superstep runtime: thread pool, MachineProgram execution,
// and the central invariant that results AND the full cluster ledger are
// bit-identical for every thread count (threads ∈ {1, 2, 8}) and equal to
// the sequential path, on path / gnm / rmat inputs.
//
// The RuntimeDeterminism suite covers every ported algorithm — Borůvka
// connectivity/MST, flooding, referee, leader election, min-cut, two-edge
// connectivity, the verification reductions, and the REP-model baselines —
// and CI runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(16, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50u * (15 * 16 / 2));
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(32,
                                 [&](std::size_t i) {
                                   if (i == 17) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable after an exceptional generation.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not be called"; });
}

// ------------------------------------------------------------ MachineProgram

// Every machine forwards an accumulating value one position around the ring
// each superstep; the trajectory is fully deterministic, so any scheduling
// nondeterminism in the runtime would show up as a wrong final state.
class ShiftSumProgram final : public MachineProgram {
 public:
  ShiftSumProgram(MachineId k, int total_supersteps)
      : k_(k), total_(total_supersteps), value_(k), calls_(k, 0) {
    std::iota(value_.begin(), value_.end(), 0);
  }

  void on_superstep(MachineId self, std::span<const Message> inbox, Outbox& out) override {
    for (const auto& msg : inbox) value_[self] = msg.payload()[0] + self;
    if (calls_[self] < total_) {
      out.send((self + 1) % k_, /*tag=*/1, {value_[self]}, 8);
    }
    ++calls_[self];
  }

  // Done once the superstep after the last send has consumed the final
  // deliveries (that trailing superstep carries no messages, so it's free).
  [[nodiscard]] bool done() const override { return calls_[0] > total_; }

  [[nodiscard]] const std::vector<std::uint64_t>& values() const { return value_; }

 private:
  MachineId k_;
  int total_;
  std::vector<std::uint64_t> value_;
  std::vector<int> calls_;
};

std::vector<std::uint64_t> reference_shift_sum(MachineId k, int total) {
  std::vector<std::uint64_t> value(k);
  std::iota(value.begin(), value.end(), 0);
  for (int s = 0; s < total; ++s) {
    std::vector<std::uint64_t> next(k);
    for (MachineId i = 0; i < k; ++i) next[(i + 1) % k] = value[i] + (i + 1) % k;
    value = next;
  }
  return value;
}

TEST(Runtime, MachineProgramMatchesReferenceSequential) {
  Cluster cluster(ClusterConfig{.k = 6, .bandwidth_bits = 64});
  Runtime rt(cluster, RuntimeConfig{.threads = 1});
  EXPECT_EQ(rt.threads(), 1u);
  ShiftSumProgram prog(6, 10);
  rt.run(prog, 64);
  EXPECT_EQ(prog.values(), reference_shift_sum(6, 10));
  // Exactly the 10 shifting supersteps deliver; the drain step is free.
  EXPECT_EQ(cluster.stats().supersteps, 10u);
}

TEST(Runtime, MachineProgramMatchesReferenceParallel) {
  Cluster cluster(ClusterConfig{.k = 6, .bandwidth_bits = 64});
  Runtime rt(cluster, RuntimeConfig{.threads = 4});
  EXPECT_EQ(rt.threads(), 4u);
  ShiftSumProgram prog(6, 10);
  rt.run(prog, 64);
  EXPECT_EQ(prog.values(), reference_shift_sum(6, 10));
}

TEST(Runtime, ThreadsZeroResolvesToHardwareClampedToK) {
  Cluster cluster(ClusterConfig{.k = 2, .bandwidth_bits = 64});
  Runtime rt(cluster, RuntimeConfig{.threads = 0});
  EXPECT_GE(rt.threads(), 1u);
  EXPECT_LE(rt.threads(), 2u);
}

TEST(Runtime, InlineStepModeMatchesParallel) {
  // The per-step execution mode is observationally invisible: same inbox
  // contents, same ledger.
  auto run = [](StepMode mode) {
    Cluster cluster(ClusterConfig{.k = 5, .bandwidth_bits = 64});
    Runtime rt(cluster, RuntimeConfig{.threads = 4});
    ShiftSumProgram prog(5, 7);
    while (!prog.done()) rt.step(prog, mode);
    return std::pair{prog.values(), cluster.stats().rounds};
  };
  const auto parallel = run(StepMode::kParallel);
  const auto inline_ = run(StepMode::kInline);
  EXPECT_EQ(parallel.first, inline_.first);
  EXPECT_EQ(parallel.second, inline_.second);
  EXPECT_EQ(parallel.first, reference_shift_sum(5, 7));
}

TEST(Runtime, SpilledPayloadsSurviveShardMerge) {
  // Payloads longer than kInlinePayloadWords go through a shard arena in
  // parallel mode and are re-homed into the cluster's pending arena at the
  // batch merge; they must arrive intact and stay readable for the whole
  // following superstep.
  Cluster cluster(ClusterConfig{.k = 4, .bandwidth_bits = 1 << 20});
  Runtime rt(cluster, RuntimeConfig{.threads = 4});
  rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    std::array<std::uint64_t, 2 * kInlinePayloadWords> buf;
    for (MachineId j = 0; j < 4; ++j) {
      for (auto& w : buf) w = static_cast<std::uint64_t>(i) * 100 + j;
      out.send(j, /*tag=*/5, buf, 0);
      buf.fill(0);  // send copied; the scratch buffer is reusable at once
    }
  });
  std::atomic<int> checked{0};
  std::atomic<int> bad{0};
  rt.step([&](MachineId i, std::span<const Message> inbox, Outbox&) {
    if (inbox.size() != 4) ++bad;
    for (const auto& msg : inbox) {
      if (msg.payload().size() != 2 * kInlinePayloadWords) ++bad;
      for (const std::uint64_t w : msg.payload()) {
        if (w != static_cast<std::uint64_t>(msg.src) * 100 + i) ++bad;
      }
      ++checked;
    }
  });
  EXPECT_EQ(checked.load(), 16);
  EXPECT_EQ(bad.load(), 0);
}

TEST(Runtime, SilentSuperstepIsFree) {
  Cluster cluster(ClusterConfig{.k = 4, .bandwidth_bits = 64});
  Runtime rt(cluster, RuntimeConfig{.threads = 2});
  const auto rounds = rt.step([](MachineId, std::span<const Message>, Outbox&) {});
  EXPECT_EQ(rounds, 0u);
  EXPECT_EQ(cluster.stats().supersteps, 0u);
  EXPECT_EQ(cluster.stats().rounds, 0u);
}

// ------------------------------------------------- ledger thread-invariance

void expect_stats_identical(const ClusterStats& a, const ClusterStats& b,
                            const char* what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.supersteps, b.supersteps) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.local_messages, b.local_messages) << what;
  EXPECT_EQ(a.total_bits, b.total_bits) << what;
  EXPECT_EQ(a.max_link_bits, b.max_link_bits) << what;
  EXPECT_EQ(a.cut_bits, b.cut_bits) << what;
  EXPECT_EQ(a.sent_bits_by_machine, b.sent_bits_by_machine) << what;
  EXPECT_EQ(a.received_bits_by_machine, b.received_bits_by_machine) << what;
  EXPECT_EQ(a.superstep_link_max.count(), b.superstep_link_max.count()) << what;
  EXPECT_DOUBLE_EQ(a.superstep_link_max.mean(), b.superstep_link_max.mean()) << what;
  EXPECT_DOUBLE_EQ(a.superstep_link_max.min(), b.superstep_link_max.min()) << what;
  EXPECT_DOUBLE_EQ(a.superstep_link_max.max(), b.superstep_link_max.max()) << what;
}

struct LedgeredRun {
  BoruvkaResult result;
  ClusterStats cluster_stats;
};

LedgeredRun run_connectivity_with_threads(const Graph& g, MachineId k, unsigned threads) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, 99));
  BoruvkaConfig cfg{.seed = 1234};
  cfg.threads = threads;
  auto result = connected_components(cluster, dg, cfg);
  return LedgeredRun{std::move(result), cluster.stats()};
}

LedgeredRun run_mst_with_threads(const Graph& g, MachineId k, unsigned threads) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, 99));
  BoruvkaConfig cfg{.seed = 4321};
  cfg.threads = threads;
  auto result = minimum_spanning_forest(cluster, dg, cfg);
  return LedgeredRun{std::move(result), cluster.stats()};
}

std::vector<Graph> determinism_inputs() {
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(600));
  Rng rng_gnm(7);
  graphs.push_back(gen::gnm(800, 2400, rng_gnm));
  Rng rng_rmat(11);
  graphs.push_back(gen::rmat(1024, 3000, rng_rmat));
  return graphs;
}

constexpr const char* kInputNames[] = {"path", "gnm", "rmat"};

TEST(RuntimeDeterminism, ConnectivityLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const auto baseline = run_connectivity_with_threads(graphs[gi], 8, 1);
    // Sequential run must also be correct, not merely self-consistent.
    EXPECT_EQ(canonical_labels(baseline.result.labels),
              ref::component_labels(graphs[gi]))
        << kInputNames[gi];
    for (const unsigned threads : {2u, 8u}) {
      const auto run = run_connectivity_with_threads(graphs[gi], 8, threads);
      EXPECT_EQ(run.result.labels, baseline.result.labels)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.result.num_components, baseline.result.num_components)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.result.forest_edges(), baseline.result.forest_edges())
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.result.phases.size(), baseline.result.phases.size())
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.result.sampler_retries, baseline.result.sampler_retries)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(run.cluster_stats, baseline.cluster_stats, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, MstLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    Rng wrng(split(17, gi));
    const Graph g = with_unique_weights(with_random_weights(graphs[gi], wrng, 100000));
    const auto baseline = run_mst_with_threads(g, 8, 1);
    Weight total = 0;
    for (const auto& e : baseline.result.mst_edges()) total += e.w;
    EXPECT_EQ(total, ref::msf_weight(g)) << kInputNames[gi];
    for (const unsigned threads : {2u, 8u}) {
      const auto run = run_mst_with_threads(g, 8, threads);
      EXPECT_EQ(run.result.mst_edges(), baseline.result.mst_edges())
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.result.labels, baseline.result.labels)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(run.cluster_stats, baseline.cluster_stats, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, AnnounceMstLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    Rng wrng(split(19, gi));
    const Graph g = with_unique_weights(with_random_weights(graphs[gi], wrng, 100000));
    // One MST per thread count, then the strict announce pass on top; both
    // the announced edge partition and the announce-pass ledger must be
    // thread-invariant.
    const auto run_announce = [&](unsigned threads) {
      Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
      const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 8, 99));
      BoruvkaConfig cfg{.seed = 4321};
      cfg.threads = threads;
      const auto mst = minimum_spanning_forest(cluster, dg, cfg);
      auto strict = announce_mst_to_home_machines(cluster, dg, mst, threads);
      return std::pair{std::move(strict), cluster.stats()};
    };
    const auto baseline = run_announce(1);
    for (const unsigned threads : {2u, 8u}) {
      const auto run = run_announce(threads);
      EXPECT_EQ(run.first.edges_by_home, baseline.first.edges_by_home)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.first.stats.rounds, baseline.first.stats.rounds)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(run.first.stats.bits, baseline.first.stats.bits)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(run.second, baseline.second, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, CutBitsTrackedIdenticallyAcrossThreadCounts) {
  Rng rng(23);
  const Graph g = gen::gnm(400, 1200, rng);
  auto run_with_cut = [&](unsigned threads) {
    Cluster cluster(ClusterConfig::for_graph(400, 8));
    std::vector<std::uint8_t> side(8, 0);
    for (MachineId i = 4; i < 8; ++i) side[i] = 1;
    cluster.track_cut(side);
    const DistributedGraph dg(g, VertexPartition::random(400, 8, 5));
    BoruvkaConfig cfg{.seed = 77};
    cfg.threads = threads;
    (void)connected_components(cluster, dg, cfg);
    return cluster.stats();
  };
  const auto seq = run_with_cut(1);
  EXPECT_GT(seq.cut_bits, 0u);
  expect_stats_identical(run_with_cut(2), seq, "cut threads=2");
  expect_stats_identical(run_with_cut(8), seq, "cut threads=8");
}

// ------------------------------------------- ported-algorithm determinism
//
// Same contract, one test per ported algorithm: run with threads ∈ {1,2,8}
// on path/gnm/rmat and demand identical results AND an identical ledger.

/// Fresh cluster + partition for one determinism run; returns the stats
/// after `body` ran the algorithm on it.
template <typename Body>
ClusterStats run_on_fresh_cluster(const Graph& g, MachineId k, const Body& body) {
  Cluster cluster(ClusterConfig::for_graph(std::max<std::size_t>(g.num_vertices(), 2), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, 99));
  body(cluster, dg);
  return cluster.stats();
}

TEST(RuntimeDeterminism, FloodingLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    FloodingResult baseline_res;
    const auto baseline = run_on_fresh_cluster(
        graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
          baseline_res = flooding_connectivity(c, dg, FloodingConfig{.threads = 1});
        });
    EXPECT_TRUE(baseline_res.converged) << kInputNames[gi];
    EXPECT_EQ(std::vector<Vertex>(baseline_res.labels.begin(), baseline_res.labels.end()),
              ref::component_labels(graphs[gi]))
        << kInputNames[gi];
    for (const unsigned threads : {2u, 8u}) {
      FloodingResult res;
      const auto stats = run_on_fresh_cluster(
          graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
            res = flooding_connectivity(c, dg, FloodingConfig{.threads = threads});
          });
      EXPECT_EQ(res.labels, baseline_res.labels) << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.num_components, baseline_res.num_components)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.supersteps, baseline_res.supersteps)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, RefereeLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    RefereeResult baseline_res;
    const auto baseline = run_on_fresh_cluster(
        graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
          baseline_res = referee_connectivity(c, dg, RefereeConfig{.threads = 1});
        });
    EXPECT_EQ(std::vector<Vertex>(baseline_res.labels.begin(), baseline_res.labels.end()),
              ref::component_labels(graphs[gi]))
        << kInputNames[gi];
    for (const unsigned threads : {2u, 8u}) {
      RefereeResult res;
      const auto stats = run_on_fresh_cluster(
          graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
            res = referee_connectivity(c, dg, RefereeConfig{.threads = threads});
          });
      EXPECT_EQ(res.labels, baseline_res.labels) << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.num_components, baseline_res.num_components)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, LeaderElectionLedgerIdenticalAcrossThreadCounts) {
  LeaderResult baseline_res;
  const auto baseline =
      run_on_fresh_cluster(Graph(4, {}), 8, [&](Cluster& c, const DistributedGraph&) {
        baseline_res = elect_leader(c, LeaderElectionConfig{.seed = 42, .threads = 1});
      });
  for (const unsigned threads : {2u, 8u}) {
    LeaderResult res;
    const auto stats =
        run_on_fresh_cluster(Graph(4, {}), 8, [&](Cluster& c, const DistributedGraph&) {
          res = elect_leader(c, LeaderElectionConfig{.seed = 42, .threads = threads});
        });
    EXPECT_EQ(res.leader, baseline_res.leader) << "threads=" << threads;
    expect_stats_identical(stats, baseline, "leader");
  }
}

TEST(RuntimeDeterminism, MinCutLedgerIdenticalAcrossThreadCounts) {
  // Smaller inputs than the connectivity suite: one min-cut run is a whole
  // sweep of inner connectivity runs.
  std::vector<Graph> graphs;
  graphs.push_back(gen::path(160));
  Rng rng_gnm(7);
  graphs.push_back(gen::gnm(192, 576, rng_gnm));
  Rng rng_rmat(11);
  graphs.push_back(gen::rmat(256, 700, rng_rmat));
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const auto run = [&](unsigned threads, MinCutResult& res) {
      return run_on_fresh_cluster(graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
        MinCutConfig cfg;
        cfg.seed = 4242;
        cfg.threads = threads;
        res = approximate_min_cut(c, dg, cfg);
      });
    };
    MinCutResult baseline_res;
    const auto baseline = run(1, baseline_res);
    for (const unsigned threads : {2u, 8u}) {
      MinCutResult res;
      const auto stats = run(threads, res);
      EXPECT_EQ(res.estimate, baseline_res.estimate)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.disconnect_level, baseline_res.disconnect_level)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.graph_connected, baseline_res.graph_connected)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, TwoEdgeLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const auto run = [&](unsigned threads, TwoEdgeResult& res) {
      return run_on_fresh_cluster(graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
        BoruvkaConfig cfg{.seed = 77};
        cfg.threads = threads;
        res = two_edge_connectivity(c, dg, cfg);
      });
    };
    TwoEdgeResult baseline_res;
    const auto baseline = run(1, baseline_res);
    for (const unsigned threads : {2u, 8u}) {
      TwoEdgeResult res;
      const auto stats = run(threads, res);
      EXPECT_EQ(res.two_edge_connected, baseline_res.two_edge_connected)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.certificate_edges, baseline_res.certificate_edges)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.connected, baseline_res.connected)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, VerificationLedgerIdenticalAcrossThreadCounts) {
  // st-connectivity exercises the ported label-equality exchange;
  // cycle containment exercises the ported count/sum-reduce path.
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const Vertex s = 1;
    const Vertex t = static_cast<Vertex>(graphs[gi].num_vertices() - 2);
    const auto run = [&](unsigned threads, VerifyResult& st, VerifyResult& cyc) {
      return run_on_fresh_cluster(graphs[gi], 8, [&](Cluster& c, const DistributedGraph& dg) {
        BoruvkaConfig cfg{.seed = 31};
        cfg.threads = threads;
        st = verify_st_connectivity(c, dg, s, t, cfg);
        cyc = verify_cycle_containment(c, dg, cfg);
      });
    };
    VerifyResult baseline_st, baseline_cyc;
    const auto baseline = run(1, baseline_st, baseline_cyc);
    for (const unsigned threads : {2u, 8u}) {
      VerifyResult st, cyc;
      const auto stats = run(threads, st, cyc);
      EXPECT_EQ(st.ok, baseline_st.ok) << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(st.components, baseline_st.components)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(cyc.ok, baseline_cyc.ok) << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, RepMstLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    Rng wrng(split(19, gi));
    const Graph g = with_unique_weights(with_random_weights(graphs[gi], wrng, 100000));
    const auto ep = EdgePartition::random(g.num_edges(), 8, split(21, gi));
    const auto run = [&](unsigned threads, RepMstResult& res) {
      return run_on_fresh_cluster(g, 8, [&](Cluster& c, const DistributedGraph&) {
        BoruvkaConfig cfg{.seed = 1717};
        cfg.threads = threads;
        res = rep_model_mst(c, g, ep, split(23, gi), cfg);
      });
    };
    RepMstResult baseline_res;
    const auto baseline = run(1, baseline_res);
    Weight total = 0;
    for (const auto& e : baseline_res.mst_edges) total += e.w;
    EXPECT_EQ(total, ref::msf_weight(g)) << kInputNames[gi];
    for (const unsigned threads : {2u, 8u}) {
      RepMstResult res;
      const auto stats = run(threads, res);
      EXPECT_EQ(res.mst_edges, baseline_res.mst_edges)
          << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.filtered_edges, baseline_res.filtered_edges)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

TEST(RuntimeDeterminism, RepConnectivityLedgerIdenticalAcrossThreadCounts) {
  const auto graphs = determinism_inputs();
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const auto ep = EdgePartition::random(g.num_edges(), 8, split(25, gi));
    const auto run = [&](unsigned threads, RepConnectivityResult& res) {
      return run_on_fresh_cluster(g, 8, [&](Cluster& c, const DistributedGraph&) {
        BoruvkaConfig cfg{.seed = 2929};
        cfg.threads = threads;
        res = rep_model_connectivity(c, g, ep, split(27, gi), cfg);
      });
    };
    RepConnectivityResult baseline_res;
    const auto baseline = run(1, baseline_res);
    EXPECT_EQ(canonical_labels(baseline_res.labels), ref::component_labels(g))
        << kInputNames[gi];
    for (const unsigned threads : {2u, 8u}) {
      RepConnectivityResult res;
      const auto stats = run(threads, res);
      EXPECT_EQ(res.labels, baseline_res.labels) << kInputNames[gi] << " threads=" << threads;
      EXPECT_EQ(res.num_components, baseline_res.num_components)
          << kInputNames[gi] << " threads=" << threads;
      expect_stats_identical(stats, baseline, kInputNames[gi]);
    }
  }
}

// gen::rmat sanity so the determinism inputs mean what they claim.
TEST(RmatGenerator, DeterministicSkewedAndInRange) {
  Rng a(3), b(3);
  const Graph g1 = gen::rmat(512, 1500, a);
  const Graph g2 = gen::rmat(512, 1500, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_GT(g1.num_edges(), 1000u);  // most attempts land (sparse regime)
  EXPECT_EQ(g1.num_vertices(), 512u);
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < 512; ++v) max_deg = std::max(max_deg, g1.neighbors(v).size());
  // Skew: the hottest vertex far exceeds the average degree.
  EXPECT_GE(max_deg, 4 * (2 * g1.num_edges() / 512));
}

}  // namespace
}  // namespace kmm
