// Bridges / 2-edge-connectivity: the sequential reference and the
// sparse-certificate k-machine algorithm (Section 5 extension).

#include <gtest/gtest.h>

#include "kmm.hpp"

namespace kmm {
namespace {

TEST(Bridges, KnownGraphs) {
  // Path: every edge is a bridge.
  EXPECT_EQ(ref::bridges(gen::path(6)).size(), 5u);
  // Cycle: none.
  EXPECT_TRUE(ref::bridges(gen::cycle(6)).empty());
  // Two triangles joined by one edge: exactly that edge.
  const Graph barbell(6, {{0, 1, 1},
                          {1, 2, 1},
                          {0, 2, 1},
                          {3, 4, 1},
                          {4, 5, 1},
                          {3, 5, 1},
                          {2, 3, 1}});
  const auto b = ref::bridges(barbell);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], (std::pair<Vertex, Vertex>{2, 3}));
  // Star: all edges.
  EXPECT_EQ(ref::bridges(gen::star(8)).size(), 7u);
  // Complete graph: none.
  EXPECT_TRUE(ref::bridges(gen::complete(5)).empty());
}

TEST(Bridges, MatchesBruteForceOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = gen::gnm(24, 30 + rng.next_below(20), rng);
    const auto fast = ref::bridges(g);
    // Brute force: an edge is a bridge iff removing it raises cc.
    std::vector<std::pair<Vertex, Vertex>> slow;
    const auto base = ref::component_count(g);
    for (const auto& e : g.edges()) {
      if (ref::component_count(g.without_edges({{e.u, e.v}})) > base) {
        slow.emplace_back(e.u, e.v);
      }
    }
    EXPECT_EQ(fast, slow) << "trial " << trial;
  }
}

TEST(Bridges, TwoEdgeConnectedReference) {
  EXPECT_TRUE(ref::is_two_edge_connected(gen::cycle(8)));
  EXPECT_TRUE(ref::is_two_edge_connected(gen::complete(5)));
  EXPECT_FALSE(ref::is_two_edge_connected(gen::path(8)));
  EXPECT_FALSE(ref::is_two_edge_connected(gen::star(8)));
  EXPECT_FALSE(ref::is_two_edge_connected(Graph(4, {{0, 1, 1}, {2, 3, 1}})));  // disconnected
  EXPECT_FALSE(ref::is_two_edge_connected(Graph(1, {})));
  Rng rng(2);
  EXPECT_TRUE(ref::is_two_edge_connected(gen::dumbbell(16, 2, rng)));
  EXPECT_FALSE(ref::is_two_edge_connected(gen::dumbbell(16, 1, rng)));
}

TwoEdgeResult run_2ec(const Graph& g, MachineId k, std::uint64_t seed) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  return two_edge_connectivity(cluster, dg, cfg);
}

TEST(TwoEdgeConnectivity, PositiveInstances) {
  Rng rng(3);
  EXPECT_TRUE(run_2ec(gen::cycle(64), 4, 5).two_edge_connected);
  EXPECT_TRUE(run_2ec(gen::complete(24), 4, 7).two_edge_connected);
  EXPECT_TRUE(run_2ec(gen::dumbbell(32, 2, rng), 8, 9).two_edge_connected);
  // Dense random graphs are 2EC w.h.p.
  const Graph dense = gen::connected_gnm(100, 500, rng);
  ASSERT_TRUE(ref::is_two_edge_connected(dense));
  EXPECT_TRUE(run_2ec(dense, 8, 11).two_edge_connected);
}

TEST(TwoEdgeConnectivity, NegativeInstances) {
  Rng rng(4);
  EXPECT_FALSE(run_2ec(gen::path(64), 4, 13).two_edge_connected);
  EXPECT_FALSE(run_2ec(gen::star(64), 4, 15).two_edge_connected);
  EXPECT_FALSE(run_2ec(gen::dumbbell(32, 1, rng), 8, 17).two_edge_connected);
  const auto disconnected = run_2ec(gen::multi_component(80, 200, 2, rng), 4, 19);
  EXPECT_FALSE(disconnected.two_edge_connected);
  EXPECT_FALSE(disconnected.connected);
  // A 2EC core with one pendant vertex.
  Graph core = gen::cycle(30);
  auto edges = core.edges();
  edges.push_back(WeightedEdge{0, 30, 1});
  EXPECT_FALSE(run_2ec(Graph(31, std::move(edges)), 4, 21).two_edge_connected);
}

TEST(TwoEdgeConnectivity, CertificateIsSparse) {
  Rng rng(5);
  const Graph g = gen::connected_gnm(200, 1200, rng);
  const auto res = run_2ec(g, 8, 23);
  EXPECT_LE(res.certificate_edges, 2 * (g.num_vertices() - 1));
  EXPECT_GE(res.certificate_edges, g.num_vertices() - 1);  // F1 alone spans
  EXPECT_GT(res.forest_stats.rounds, 0u);
  EXPECT_GT(res.collect_stats.rounds, 0u);
}

class TwoEdgeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoEdgeSweep, AgreesWithReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // Densities straddling the 2EC threshold so both classes appear.
  const std::size_t n = 60;
  const std::size_t m = n + rng.next_below(2 * n);
  const Graph g = gen::connected_gnm(n, m, rng);
  const auto res = run_2ec(g, 4, split(seed, 3));
  EXPECT_EQ(res.two_edge_connected, ref::is_two_edge_connected(g)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoEdgeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

}  // namespace
}  // namespace kmm
