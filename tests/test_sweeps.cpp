// Broad parameterized sweeps for the remaining algorithms: min-cut bands,
// flooding across partitions and machine counts, REP-model MST, and
// verification problems on random instances.

#include <gtest/gtest.h>

#include <cmath>

#include "kmm.hpp"

namespace kmm {
namespace {

// ---------------------------------------------------------------- min-cut
struct MinCutCase {
  std::size_t n;
  std::size_t lambda;
  MachineId k;
  std::uint64_t seed;
};

class MinCutSweep : public ::testing::TestWithParam<MinCutCase> {};

TEST_P(MinCutSweep, EstimateInLogBand) {
  const auto& c = GetParam();
  Rng rng(split(c.seed, c.lambda));
  const Graph g = gen::dumbbell(c.n, c.lambda, rng);
  Cluster cluster(ClusterConfig::for_graph(c.n, c.k));
  const DistributedGraph dg(g, VertexPartition::random(c.n, c.k, split(c.seed, 1)));
  MinCutConfig cfg;
  cfg.seed = split(c.seed, 2);
  const auto res = approximate_min_cut(cluster, dg, cfg);
  ASSERT_TRUE(res.graph_connected);
  const double logn = std::log2(static_cast<double>(c.n) + 2);
  const double ratio =
      static_cast<double>(res.estimate) / static_cast<double>(c.lambda);
  EXPECT_GE(ratio, 1.0 / (8.0 * logn));
  EXPECT_LE(ratio, 8.0 * logn);
}

INSTANTIATE_TEST_SUITE_P(
    Band, MinCutSweep,
    ::testing::Values(MinCutCase{32, 1, 4, 1}, MinCutCase{32, 4, 4, 2},
                      MinCutCase{64, 2, 8, 3}, MinCutCase{64, 8, 8, 4},
                      MinCutCase{96, 3, 4, 5}, MinCutCase{96, 12, 8, 6},
                      MinCutCase{128, 6, 16, 7}, MinCutCase{128, 24, 16, 8}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_l" + std::to_string(info.param.lambda) +
             "_k" + std::to_string(info.param.k);
    });

// --------------------------------------------------------------- flooding
struct FloodCase {
  int family;
  MachineId k;
};

class FloodingSweep : public ::testing::TestWithParam<FloodCase> {};

TEST_P(FloodingSweep, MatchesReference) {
  const auto& c = GetParam();
  Rng rng(split(99, c.family));
  Graph g(0, {});
  switch (c.family) {
    case 0: g = gen::path(150); break;
    case 1: g = gen::star(150); break;
    case 2: g = gen::grid(12, 12); break;
    case 3: g = gen::gnm(150, 200, rng); break;
    case 4: g = gen::multi_component(150, 300, 3, rng); break;
    case 5: g = gen::clique_chain(12, 8); break;
    default: FAIL();
  }
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), c.k));
  const DistributedGraph dg(
      g, VertexPartition::random(g.num_vertices(), c.k, split(7, c.family)));
  const auto res = flooding_connectivity(cluster, dg);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(std::vector<Vertex>(res.labels.begin(), res.labels.end()),
            ref::component_labels(g));
}

std::vector<FloodCase> flood_cases() {
  std::vector<FloodCase> cases;
  for (int family = 0; family < 6; ++family) {
    for (const MachineId k : {MachineId{2}, MachineId{6}, MachineId{12}}) {
      cases.push_back({family, k});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Families, FloodingSweep, ::testing::ValuesIn(flood_cases()),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param.family) + "_k" +
                                  std::to_string(info.param.k);
                         });

// ---------------------------------------------------------------- REP MST
class RepMstSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepMstSweep, ExactAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 60 + rng.next_below(60);
  const std::size_t m = 2 * n + rng.next_below(3 * n);
  Graph g = with_unique_weights(with_random_weights(gen::connected_gnm(n, m, rng), rng));
  const MachineId k = 2 + static_cast<MachineId>(rng.next_below(7));
  Cluster cluster(ClusterConfig::for_graph(n, k));
  const auto ep = EdgePartition::random(g.num_edges(), k, split(seed, 1));
  const auto res = rep_model_mst(cluster, g, ep, split(seed, 2));
  const auto expected = ref::minimum_spanning_forest(g);
  ASSERT_EQ(res.mst_edges.size(), expected.size());
  Weight got = 0, want = 0;
  for (const auto& e : res.mst_edges) got += e.w;
  for (const auto& e : expected) want += e.w;
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepMstSweep, ::testing::Range<std::uint64_t>(1, 11));

// ----------------------------------------------------- verification random
class VerifySweepWide : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VerifySweepWide, CutAndScsAgainstReference) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 80;
  const Graph g = gen::connected_gnm(n, 2 * n, rng);
  Cluster cluster(ClusterConfig::for_graph(n, 4));
  const DistributedGraph dg(g, VertexPartition::random(n, 4, split(seed, 1)));
  const BoruvkaConfig cfg{.seed = split(seed, 2)};

  // Random edge subset as a cut candidate; reference decides.
  std::vector<std::pair<Vertex, Vertex>> subset;
  for (const auto& e : g.edges()) {
    if (rng.next_bool(0.4)) subset.emplace_back(e.u, e.v);
  }
  const bool is_cut =
      ref::component_count(g.without_edges(subset)) > ref::component_count(g);
  EXPECT_EQ(verify_cut(cluster, dg, subset, cfg).ok, is_cut);

  // The complement subgraph as an SCS candidate.
  std::vector<std::pair<Vertex, Vertex>> complement;
  for (const auto& e : g.edges()) {
    const bool removed = std::find(subset.begin(), subset.end(),
                                   std::make_pair(e.u, e.v)) != subset.end();
    if (!removed) complement.emplace_back(e.u, e.v);
  }
  const bool scs = !is_cut;  // complement spans & connects iff subset wasn't a cut
  EXPECT_EQ(verify_spanning_connected_subgraph(cluster, dg, complement, cfg).ok, scs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifySweepWide, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace kmm
