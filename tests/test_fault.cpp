// The fault-injection & recovery plane (src/fault/): a seeded FaultSchedule
// is a pure function of structural keys, so every injected fault — and the
// whole recovered run — replays bit-identically across runs and thread
// counts. The invariants pinned here (CI also runs this suite under TSan):
//   * an attached plane with an empty schedule is ledger-bit-identical to
//     no plane at all (the seam costs nothing when silent);
//   * crash recovery (checkpoint/replay, state hooks, restart fallback)
//     produces answers equal to the fault-free run, with the recovered
//     ledger identical for every thread count;
//   * lossy links (drops, duplicates, reorders) never change answers —
//     their entire effect is deterministic extra rounds;
//   * corruption is NOT recovered: it must be *caught* downstream by the
//     raw-label referee (canonicalization would mask a uniformly
//     propagated tampered label — see kmachine_cli's --verify).

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

Graph test_graph(std::size_t n = 256, std::uint64_t seed = 4242) {
  Rng rng(seed);
  return gen::gnm(n, 3 * n, rng);
}

struct LedgerKey {
  std::uint64_t rounds, supersteps, messages, bits, link_max;
  bool operator==(const LedgerKey&) const = default;
};

LedgerKey ledger_key(const ClusterStats& s) {
  return LedgerKey{s.rounds, s.supersteps, s.messages, s.total_bits, s.max_link_bits};
}

// ------------------------------------------------------ schedule determinism

TEST(FaultPlane, ScheduleIsAPureFunctionOfSeedAndKeys) {
  const FaultProfile* chaos = FaultProfile::find("chaos");
  ASSERT_NE(chaos, nullptr);
  EXPECT_EQ(FaultProfile::find("no-such-profile"), nullptr);

  const FaultSchedule a(77, *chaos);
  const FaultSchedule b(77, *chaos);
  const FaultSchedule other(78, *chaos);

  std::vector<FaultSchedule::Crash> ca, cb;
  bool any_difference = false;
  for (std::uint64_t step = 0; step < 64; ++step) {
    a.crashes_at(step, 8, ca);
    b.crashes_at(step, 8, cb);
    ASSERT_EQ(ca.size(), cb.size()) << "step " << step;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].machine, cb[i].machine);
      EXPECT_EQ(ca[i].stall, cb[i].stall);
    }
    for (MachineId s = 0; s < 4; ++s) {
      for (MachineId d = 0; d < 4; ++d) {
        if (s == d) continue;
        for (std::uint64_t idx = 0; idx < 4; ++idx) {
          EXPECT_EQ(a.drop_attempts(step, s, d, idx), b.drop_attempts(step, s, d, idx));
          EXPECT_EQ(a.duplicated(step, s, d, idx), b.duplicated(step, s, d, idx));
          if (a.drop_attempts(step, s, d, idx) != other.drop_attempts(step, s, d, idx) ||
              a.duplicated(step, s, d, idx) != other.duplicated(step, s, d, idx)) {
            any_difference = true;
          }
        }
        EXPECT_EQ(a.reordered(step, s, d), b.reordered(step, s, d));
      }
    }
  }
  // A different seed is a different schedule (somewhere in the sample).
  EXPECT_TRUE(any_difference);
}

// ------------------------------------------- silent plane changes nothing

TEST(FaultPlane, EmptySchedulePlaneIsLedgerBitIdentical) {
  const Graph g = test_graph();
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;
  const auto run = [&](FaultPlane* plane) {
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
    BoruvkaConfig cfg;
    cfg.seed = 99;
    cfg.threads = 2;
    cfg.fault = plane;
    const auto res = connected_components(cluster, dg, cfg);
    return std::pair{res.labels, cluster.stats()};
  };

  const auto [labels_off, stats_off] = run(nullptr);
  const FaultSchedule empty(123);  // no profile, no explicit events
  FaultPlane plane(empty);
  const auto [labels_on, stats_on] = run(&plane);

  EXPECT_EQ(labels_on, labels_off);
  EXPECT_EQ(ledger_key(stats_on), ledger_key(stats_off));
  EXPECT_EQ(stats_on.local_messages, stats_off.local_messages);
  EXPECT_EQ(stats_on.cut_bits, stats_off.cut_bits);
  EXPECT_EQ(stats_on.sent_bits_by_machine, stats_off.sent_bits_by_machine);
  EXPECT_EQ(stats_on.received_bits_by_machine, stats_off.received_bits_by_machine);
  const FaultStats fs = plane.stats();
  EXPECT_EQ(fs.crashes, 0u);
  EXPECT_EQ(fs.checkpoints, 0u);
  EXPECT_EQ(fs.drops + fs.duplicates + fs.reorders + fs.corruptions, 0u);
}

// ---------------------------------------------- crash recovery (state hooks)

TEST(FaultPlane, FloodingRecoversFromCrashesThreadInvariantly) {
  const Graph g = test_graph(192, 99);
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;
  const auto ref_labels = ref::component_labels(g);

  Cluster fault_free(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg0(g, VertexPartition::random(n, k, 7));
  const FloodingResult clean = flooding_connectivity(fault_free, dg0, FloodingConfig{});
  ASSERT_TRUE(clean.converged);

  FaultSchedule sched(11);
  sched.add_crash(1, 3);
  sched.add_crash(2, 5);
  sched.add_hang(4, 1);  // watchdog converts the hang into a crash

  std::vector<LedgerKey> per_thread;
  for (const unsigned threads : {1u, 2u, 8u}) {
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
    FaultPlane plane(sched);  // fresh plane per run: the ordinal is global
    FloodingConfig cfg;
    cfg.threads = threads;
    cfg.fault = &plane;
    const FloodingResult res = flooding_connectivity(cluster, dg, cfg);
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.labels, clean.labels);
    ASSERT_EQ(res.labels.size(), ref_labels.size());
    for (std::size_t v = 0; v < res.labels.size(); ++v) {
      // flooding's exact-contract labels, element-wise (Label vs Vertex width)
      EXPECT_EQ(res.labels[v], ref_labels[v]) << "v=" << v;
    }
    const FaultStats fs = plane.stats();
    EXPECT_EQ(fs.crashes, 3u) << "threads=" << threads;
    EXPECT_EQ(fs.watchdog_trips, 1u);
    EXPECT_EQ(fs.restores, 3u);
    EXPECT_GT(fs.stall_rounds, 0u);
    // The stall charge is real: recovery is visible in the ledger.
    EXPECT_GT(cluster.stats().rounds, clean.stats.rounds);
    per_thread.push_back(ledger_key(cluster.stats()));
  }
  ASSERT_EQ(per_thread.size(), 3u);
  EXPECT_EQ(per_thread[0], per_thread[1]);
  EXPECT_EQ(per_thread[0], per_thread[2]);
}

TEST(FaultPlane, ConnectivityAndMstRecoverFromCrashesThreadInvariantly) {
  Rng wrng(5);
  const Graph g = with_unique_weights(with_random_weights(test_graph(192, 17), wrng, 100000));
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;

  BoruvkaConfig base;
  base.seed = 99;
  Cluster c0(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg0(g, VertexPartition::random(n, k, 13));
  const BoruvkaResult conn_clean = connected_components(c0, dg0, base);
  Cluster c1(ClusterConfig::for_graph(n, k));
  const BoruvkaResult mst_clean = minimum_spanning_forest(c1, dg0, base);
  ASSERT_TRUE(conn_clean.converged);
  ASSERT_TRUE(mst_clean.converged);

  FaultSchedule sched(31);
  sched.add_crash(2, 1);
  sched.add_crash(7, 4);
  sched.add_crash(11, 6);

  std::vector<LedgerKey> conn_ledgers, mst_ledgers;
  for (const unsigned threads : {1u, 2u, 8u}) {
    const DistributedGraph dg(g, VertexPartition::random(n, k, 13));

    Cluster cc(ClusterConfig::for_graph(n, k));
    FaultPlane conn_plane(sched);
    BoruvkaConfig cfg = base;
    cfg.threads = threads;
    cfg.fault = &conn_plane;
    const BoruvkaResult conn = connected_components(cc, dg, cfg);
    EXPECT_EQ(conn.labels, conn_clean.labels) << "threads=" << threads;
    EXPECT_EQ(conn.num_components, conn_clean.num_components);
    EXPECT_EQ(conn_plane.stats().crashes, 3u);
    EXPECT_EQ(conn_plane.stats().restores, 3u);
    conn_ledgers.push_back(ledger_key(cc.stats()));

    Cluster cm(ClusterConfig::for_graph(n, k));
    FaultPlane mst_plane(sched);
    cfg.fault = &mst_plane;
    const BoruvkaResult mst = minimum_spanning_forest(cm, dg, cfg);
    EXPECT_EQ(mst.labels, mst_clean.labels) << "threads=" << threads;
    EXPECT_EQ(mst.mst_edges(), mst_clean.mst_edges());
    EXPECT_EQ(mst_plane.stats().crashes, 3u);
    mst_ledgers.push_back(ledger_key(cm.stats()));
  }
  for (std::size_t i = 1; i < conn_ledgers.size(); ++i) {
    EXPECT_EQ(conn_ledgers[0], conn_ledgers[i]);
    EXPECT_EQ(mst_ledgers[0], mst_ledgers[i]);
  }
}

// ------------------------------------------------------------- lossy links

TEST(FaultPlane, LossyLinksNeverChangeAnswersOnlyRounds) {
  const Graph g = test_graph(224, 3);
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;

  BoruvkaConfig base;
  base.seed = 42;
  Cluster c0(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg0(g, VertexPartition::random(n, k, 9));
  const BoruvkaResult clean = connected_components(c0, dg0, base);

  const FaultSchedule sched(5, FaultProfile::named("lossy"));
  std::vector<LedgerKey> per_thread;
  for (const unsigned threads : {1u, 2u, 8u}) {
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 9));
    FaultPlane plane(sched);
    BoruvkaConfig cfg = base;
    cfg.threads = threads;
    cfg.fault = &plane;
    const BoruvkaResult res = connected_components(cluster, dg, cfg);
    EXPECT_EQ(res.labels, clean.labels) << "threads=" << threads;
    EXPECT_EQ(res.num_components, clean.num_components);
    const FaultStats fs = plane.stats();
    EXPECT_GT(fs.drops + fs.duplicates + fs.reorders, 0u) << "threads=" << threads;
    EXPECT_EQ(fs.corruptions, 0u);  // lossy preset never tampers
    // Drops and duplicates burn wire bits: the overhead is charged rounds.
    EXPECT_GE(cluster.stats().rounds, clean.stats.rounds);
    if (fs.overhead_rounds > 0) {
      EXPECT_GT(cluster.stats().rounds, clean.stats.rounds);
    }
    per_thread.push_back(ledger_key(cluster.stats()));
  }
  ASSERT_EQ(per_thread.size(), 3u);
  EXPECT_EQ(per_thread[0], per_thread[1]);
  EXPECT_EQ(per_thread[0], per_thread[2]);
}

// -------------------------------------------------------------- corruption

TEST(FaultPlane, CorruptionIsCaughtByTheRawLabelReferee) {
  // Flooding's contract is exact smallest-member labels, so the referee is
  // an element-wise raw comparison against ref::component_labels — the
  // check canonical_labels() would defeat (a tampered label that floods a
  // whole component uniformly survives canonicalization).
  const Graph g = test_graph(160, 77);
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;
  const auto expect = ref::component_labels(g);

  FaultProfile tamper;
  tamper.corrupt_prob = 1.0;  // every cross-machine payload's last word
  const FaultSchedule sched(3, tamper);
  FaultPlane plane(sched);

  Cluster cluster(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
  FloodingConfig cfg;
  cfg.fault = &plane;
  // Corrupted labels can creep toward fixpoint in smaller decrements than
  // honest flooding; give the loop room beyond the n+1 default.
  cfg.max_supersteps = 1u << 20;
  const FloodingResult res = flooding_connectivity(cluster, dg, cfg);

  EXPECT_GT(plane.stats().corruptions, 0u);
  ASSERT_EQ(res.labels.size(), expect.size());
  std::size_t mismatches = 0;
  for (std::size_t v = 0; v < n; ++v) {
    // The in-range invariant holds even under tampering: a corrupted label
    // is only ever adopted when smaller than a current in-range label.
    ASSERT_LT(res.labels[v], n);
    if (res.labels[v] != expect[v]) ++mismatches;
  }
  EXPECT_GT(mismatches, 0u) << "corruption went undetected by the referee";
}

// -------------------------------------------- checkpoint/replay (rule 8a)

/// Minimal checkpointable program: a k-machine ring where every machine
/// folds each received word into a running value and forwards a token for
/// `target` supersteps. Cross-step state is exactly (value, steps) per
/// machine — what snapshot/restore serialize.
class RingCounter final : public MachineProgram {
 public:
  RingCounter(MachineId k, std::uint64_t target) : k_(k), target_(target),
                                                   value_(k, 0), steps_(k, 0) {}

  void on_superstep(MachineId self, std::span<const Message> inbox, Outbox& out) override {
    for (const Message& m : inbox) value_[self] = split(value_[self], m.payload()[0]);
    if (steps_[self] < target_) {
      out.send((self + 1) % k_, 1, {split(value_[self] + steps_[self], self)}, 64);
      ++steps_[self];
    }
  }
  [[nodiscard]] bool done() const override {
    for (MachineId m = 0; m < k_; ++m) {
      if (steps_[m] < target_) return false;
    }
    return true;
  }
  [[nodiscard]] bool checkpointable() const override { return true; }
  void snapshot(MachineId m, WordWriter& w) override { w.u64(value_[m]).u64(steps_[m]); }
  void restore(MachineId m, WordReader& r) override {
    value_[m] = r.u64();
    steps_[m] = r.u64();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept { return value_; }

 private:
  MachineId k_;
  std::uint64_t target_;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> steps_;
};

TEST(FaultPlane, CheckpointReplayRebuildsCrashedMachines) {
  const MachineId k = 6;
  const std::uint64_t target = 20;

  Cluster clean_cluster(ClusterConfig{k, 64});
  RingCounter clean(k, target);
  Runtime clean_rt(clean_cluster);
  (void)clean_rt.run(clean);
  ASSERT_TRUE(clean.done());

  for (const unsigned cadence : {1u, 4u}) {
    FaultSchedule sched(17);
    sched.add_crash(5, 2);
    sched.add_crash(13, 4);
    FaultPlaneConfig pcfg;
    pcfg.checkpoint_every = cadence;
    FaultPlane plane(sched, pcfg);

    Cluster cluster(ClusterConfig{k, 64});
    RingCounter program(k, target);
    Runtime rt(cluster, RuntimeConfig{1, nullptr, &plane});
    (void)rt.run(program);

    EXPECT_TRUE(program.done()) << "cadence=" << cadence;
    EXPECT_EQ(program.values(), clean.values()) << "cadence=" << cadence;
    const FaultStats fs = plane.stats();
    EXPECT_EQ(fs.crashes, 2u);
    EXPECT_EQ(fs.restores, 2u);
    EXPECT_GT(fs.checkpoints, 0u);
    // cadence 1 checkpoints at the crash ordinal itself (nothing to
    // replay); cadence 4 rolls back to ordinals 4 and 12 (one logged
    // superstep each).
    EXPECT_EQ(fs.replayed_steps, cadence == 1 ? 0u : 2u);
    EXPECT_GT(fs.checkpoint_words, 0u);
    EXPECT_GT(cluster.stats().rounds, clean_cluster.stats().rounds);
  }
}

// ----------------------------------------------- restart fallback (rule 8c)

/// Same ring protocol, but recoverable only by restarting the whole phase.
class RestartableRing final : public MachineProgram {
 public:
  RestartableRing(MachineId k, std::uint64_t target) : k_(k), target_(target),
                                                       value_(k, 0), steps_(k, 0) {}

  void on_superstep(MachineId self, std::span<const Message> inbox, Outbox& out) override {
    for (const Message& m : inbox) value_[self] = split(value_[self], m.payload()[0]);
    if (steps_[self] < target_) {
      out.send((self + 1) % k_, 1, {split(value_[self] + steps_[self], self)}, 64);
      ++steps_[self];
    }
  }
  [[nodiscard]] bool done() const override {
    for (MachineId m = 0; m < k_; ++m) {
      if (steps_[m] < target_) return false;
    }
    return true;
  }
  [[nodiscard]] bool reset() override {
    std::fill(value_.begin(), value_.end(), 0);
    std::fill(steps_.begin(), steps_.end(), 0);
    return true;
  }

  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept { return value_; }

 private:
  MachineId k_;
  std::uint64_t target_;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> steps_;
};

TEST(FaultPlane, RestartFallbackReplaysThePhaseFromScratch) {
  const MachineId k = 4;
  const std::uint64_t target = 10;

  Cluster clean_cluster(ClusterConfig{k, 64});
  RestartableRing clean(k, target);
  Runtime clean_rt(clean_cluster);
  (void)clean_rt.run(clean);
  ASSERT_TRUE(clean.done());

  FaultSchedule sched(23);
  sched.add_crash(4, 1);
  FaultPlane plane(sched);
  Cluster cluster(ClusterConfig{k, 64});
  RestartableRing program(k, target);
  Runtime rt(cluster, RuntimeConfig{1, nullptr, &plane});
  (void)rt.run(program);

  EXPECT_TRUE(program.done());
  EXPECT_EQ(program.values(), clean.values());
  const FaultStats fs = plane.stats();
  EXPECT_EQ(fs.restarts, 1u);
  EXPECT_EQ(fs.crashes, 1u);
  EXPECT_EQ(fs.restores, 0u);
  // The phase ran 1 + target supersteps of real work (4 before the restart
  // were wasted): more delivery rounds than the clean run.
  EXPECT_GT(cluster.stats().rounds, clean_cluster.stats().rounds);
}

// --------------------------------------------------- rule 8 is enforced

TEST(FaultPlaneDeathTest, UnrecoverableProgramAbortsWithRule8) {
  const MachineId k = 4;
  FaultSchedule sched(1);
  sched.add_crash(0, 2);
  FaultPlane plane(sched);
  Cluster cluster(ClusterConfig{k, 64});
  Runtime rt(cluster, RuntimeConfig{1, nullptr, &plane});
  // An ad-hoc lambda step with no hooks registered: not checkpointable, no
  // restore hook, no reset() — nothing the plane can recover with.
  EXPECT_DEATH((void)rt.step([](MachineId self, std::span<const Message>, Outbox& out) {
                 out.send((self + 1) % 4, 1, {std::uint64_t{1}}, 64);
               }),
               "rule 8");
}

}  // namespace
}  // namespace kmm
