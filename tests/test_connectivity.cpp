// Correctness of the Section 2 connectivity algorithm against sequential
// references, across graph families, partitions and machine counts.

#include <gtest/gtest.h>

#include "kmm.hpp"

namespace kmm {
namespace {

BoruvkaResult run_conn(const Graph& g, MachineId k, std::uint64_t seed,
                       const VertexPartition* partition = nullptr) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const VertexPartition part =
      partition ? *partition : VertexPartition::random(g.num_vertices(), k, split(seed, 1));
  const DistributedGraph dg(g, part);
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  return connected_components(cluster, dg, cfg);
}

void expect_matches_reference(const Graph& g, const BoruvkaResult& result) {
  ASSERT_EQ(result.labels.size(), g.num_vertices());
  const auto expected = ref::component_labels(g);
  const auto got = canonical_labels(result.labels);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(result.num_components, ref::component_count(g));
  EXPECT_TRUE(result.converged);
  // The recorded merge edges must form a spanning forest of g.
  EXPECT_TRUE(ref::is_spanning_forest(g, result.forest_edges()));
  EXPECT_EQ(result.forest_edges().size(), g.num_vertices() - result.num_components);
}

TEST(Connectivity, SingleEdge) {
  const Graph g(2, {{0, 1, 1}});
  expect_matches_reference(g, run_conn(g, 2, 42));
}

TEST(Connectivity, TwoIsolatedVertices) {
  const Graph g(2, {});
  const auto result = run_conn(g, 2, 42);
  expect_matches_reference(g, result);
  EXPECT_EQ(result.num_components, 2u);
}

TEST(Connectivity, Path) {
  const Graph g = gen::path(64);
  expect_matches_reference(g, run_conn(g, 4, 7));
}

TEST(Connectivity, Cycle) {
  const Graph g = gen::cycle(65);
  expect_matches_reference(g, run_conn(g, 4, 7));
}

TEST(Connectivity, Star) {
  const Graph g = gen::star(80);
  expect_matches_reference(g, run_conn(g, 8, 9));
}

TEST(Connectivity, Complete) {
  const Graph g = gen::complete(32);
  expect_matches_reference(g, run_conn(g, 4, 11));
}

TEST(Connectivity, Grid) {
  const Graph g = gen::grid(12, 9);
  expect_matches_reference(g, run_conn(g, 6, 13));
}

TEST(Connectivity, BinaryTree) {
  const Graph g = gen::binary_tree(100);
  expect_matches_reference(g, run_conn(g, 4, 17));
}

TEST(Connectivity, RandomGnm) {
  Rng rng(123);
  const Graph g = gen::gnm(200, 380, rng);
  expect_matches_reference(g, run_conn(g, 8, 19));
}

TEST(Connectivity, MultiComponent) {
  Rng rng(77);
  const Graph g = gen::multi_component(180, 400, 6, rng);
  const auto result = run_conn(g, 8, 23);
  expect_matches_reference(g, result);
  EXPECT_EQ(result.num_components, 6u);
}

TEST(Connectivity, ManyIsolatedVertices) {
  // 30 isolated vertices plus a small clique.
  std::vector<WeightedEdge> edges;
  for (Vertex u = 30; u < 36; ++u) {
    for (Vertex v = u + 1; v < 36; ++v) edges.push_back({u, v, 1});
  }
  const Graph g(36, std::move(edges));
  const auto result = run_conn(g, 4, 29);
  expect_matches_reference(g, result);
  EXPECT_EQ(result.num_components, 31u);
}

TEST(Connectivity, PlantedCommunitiesBridged) {
  Rng rng(5);
  const Graph g = gen::planted_communities(240, 6, 0.08, 12, rng);
  expect_matches_reference(g, run_conn(g, 8, 31));
}

TEST(Connectivity, PlantedCommunitiesDisconnected) {
  Rng rng(6);
  const Graph g = gen::planted_communities(240, 6, 0.08, 0, rng);
  const auto result = run_conn(g, 8, 37);
  expect_matches_reference(g, result);
  EXPECT_EQ(result.num_components, 6u);
}

TEST(Connectivity, RoundRobinPartition) {
  Rng rng(40);
  const Graph g = gen::connected_gnm(150, 300, rng);
  const auto part = VertexPartition::round_robin(g.num_vertices(), 5);
  expect_matches_reference(g, run_conn(g, 5, 41, &part));
}

TEST(Connectivity, SkewedPartitionStillCorrect) {
  Rng rng(43);
  const Graph g = gen::connected_gnm(150, 300, rng);
  const auto part = VertexPartition::skewed(g.num_vertices(), 5, 0.6);
  expect_matches_reference(g, run_conn(g, 5, 47, &part));
}

TEST(Connectivity, DeterministicGivenSeed) {
  Rng rng(50);
  const Graph g = gen::gnm(120, 240, rng);
  const auto a = run_conn(g, 8, 53);
  const auto b = run_conn(g, 8, 53);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
  EXPECT_EQ(a.forest_edges(), b.forest_edges());
}

TEST(Connectivity, DifferentSeedsSameComponents) {
  Rng rng(60);
  const Graph g = gen::gnm(120, 240, rng);
  const auto a = run_conn(g, 8, 61);
  const auto b = run_conn(g, 8, 67);
  EXPECT_EQ(canonical_labels(a.labels), canonical_labels(b.labels));
}

TEST(Connectivity, LargeK) {
  Rng rng(70);
  const Graph g = gen::connected_gnm(300, 700, rng);
  expect_matches_reference(g, run_conn(g, 32, 71));
}

TEST(Connectivity, KEqualsTwo) {
  Rng rng(80);
  const Graph g = gen::connected_gnm(100, 220, rng);
  expect_matches_reference(g, run_conn(g, 2, 83));
}

TEST(Connectivity, TrivialSizes) {
  Cluster cluster(ClusterConfig::for_graph(1, 2));
  const Graph g1(1, {});
  const DistributedGraph dg(g1, VertexPartition::random(1, 2, 9));
  const auto res = connected_components(cluster, dg);
  EXPECT_EQ(res.num_components, 1u);
  EXPECT_TRUE(res.converged);

  const Graph g0(0, {});
  const DistributedGraph dg0(g0, VertexPartition::random(0, 2, 9));
  const auto res0 = connected_components(cluster, dg0);
  EXPECT_EQ(res0.num_components, 0u);
}

TEST(Connectivity, PhaseTraceMonotone) {
  Rng rng(90);
  const Graph g = gen::connected_gnm(256, 512, rng);
  const auto result = run_conn(g, 8, 97);
  ASSERT_FALSE(result.phases.empty());
  for (std::size_t i = 0; i < result.phases.size(); ++i) {
    EXPECT_LE(result.phases[i].components_after, result.phases[i].components_before);
    if (i > 0) {
      EXPECT_EQ(result.phases[i].components_before, result.phases[i - 1].components_after);
    }
  }
  // Lemma 7: the phase budget is 12 log n; runs should finish well within.
  EXPECT_LE(result.phases.size(), 12 * bits_for(g.num_vertices()));
}

TEST(Connectivity, RoundsArePositiveAndCharged) {
  Rng rng(100);
  const Graph g = gen::connected_gnm(128, 256, rng);
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 8, 3));
  const auto res = connected_components(cluster, dg);
  EXPECT_GT(res.stats.rounds, 0u);
  EXPECT_EQ(res.stats.rounds, cluster.stats().rounds);
  EXPECT_GT(res.stats.messages, 0u);
  EXPECT_GT(res.stats.bits, 0u);
}

}  // namespace
}  // namespace kmm
