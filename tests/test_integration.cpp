// Cross-module integration: end-to-end pipelines, determinism, failure
// injection (starved bandwidth, adversarial partitions), ledger coherence.

#include <gtest/gtest.h>

#include "kmm.hpp"

namespace kmm {
namespace {

TEST(Integration, PipelineOnSocialGraph) {
  // Communities -> connectivity -> per-component MST, all on one cluster,
  // validated against sequential references at each stage.
  Rng rng(1);
  Graph g = gen::planted_communities(300, 5, 0.05, 0, rng);
  g = with_unique_weights(with_random_weights(g, rng, 1000));

  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 8, 3));

  const auto conn = connected_components(cluster, dg);
  EXPECT_EQ(conn.num_components, 5u);
  EXPECT_EQ(canonical_labels(conn.labels), ref::component_labels(g));

  const auto mst = minimum_spanning_forest(cluster, dg);
  const auto expected = ref::minimum_spanning_forest(g);
  EXPECT_EQ(mst.mst_edges().size(), expected.size());
  Weight got_w = 0, exp_w = 0;
  for (const auto& e : mst.mst_edges()) got_w += e.w;
  for (const auto& e : expected) exp_w += e.w;
  EXPECT_EQ(got_w, exp_w);

  // The ledger accumulated both runs coherently.
  EXPECT_EQ(cluster.stats().rounds, conn.stats.rounds + mst.stats.rounds);
}

TEST(Integration, FullResultDeterminism) {
  Rng rng(2);
  const Graph g = gen::connected_gnm(150, 400, rng);
  auto run = [&](std::uint64_t seed) {
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
    const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 8, 5));
    BoruvkaConfig cfg;
    cfg.seed = seed;
    return connected_components(cluster, dg, cfg);
  };
  const auto a = run(99), b = run(99);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.bits, b.stats.bits);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].rounds, b.phases[i].rounds);
  }
}

TEST(Integration, StarvedBandwidthStillCorrect) {
  // Failure injection: a 1-bit-per-round network explodes the round count
  // but must not change any answer.
  Rng rng(3);
  const Graph g = gen::gnm(24, 40, rng);
  ClusterConfig cfg;
  cfg.k = 3;
  cfg.bandwidth_bits = 1;
  Cluster cluster(cfg);
  const DistributedGraph dg(g, VertexPartition::random(24, 3, 7));
  const auto result = connected_components(cluster, dg);
  EXPECT_EQ(canonical_labels(result.labels), ref::component_labels(g));
  EXPECT_GT(result.stats.rounds, 10000u);  // the starvation is real
}

TEST(Integration, AdversarialPartitionAllOnOneMachine) {
  Rng rng(4);
  const Graph g = gen::connected_gnm(60, 140, rng);
  // Everything on machine 0 except one stray vertex.
  std::vector<MachineId> table(60, 0);
  table[59] = 1;
  Cluster cluster(ClusterConfig::for_graph(60, 4));
  const DistributedGraph dg(g, VertexPartition::from_table(std::move(table), 4));
  const auto result = connected_components(cluster, dg);
  EXPECT_EQ(canonical_labels(result.labels), ref::component_labels(g));
}

TEST(Integration, AllAlgorithmsShareOneCluster) {
  Rng rng(5);
  Graph g = with_unique_weights(
      with_random_weights(gen::connected_gnm(100, 260, rng), rng));
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 6));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 6, 9));

  std::uint64_t last = 0;
  const auto step = [&](std::uint64_t rounds) {
    EXPECT_GT(rounds, 0u);
    EXPECT_GT(cluster.stats().rounds, last);
    last = cluster.stats().rounds;
  };
  step(connected_components(cluster, dg).stats.rounds);
  step(minimum_spanning_forest(cluster, dg).stats.rounds);
  step(flooding_connectivity(cluster, dg).stats.rounds);
  step(referee_connectivity(cluster, dg).stats.rounds);
  MinCutConfig mc;
  step(approximate_min_cut(cluster, dg, mc).stats.rounds);
  step(verify_bipartiteness(cluster, dg, {}).stats.rounds);
}

TEST(Integration, SuperlinearSpeedupInK) {
  // The paper's headline claim in miniature: at fixed n, quadrupling k
  // should cut the connectivity round count by roughly k^2 = 16x
  // (superlinear), while the referee baseline only gains the linear ~4x.
  // Absolute crossovers between algorithms live in the benches at larger
  // n; constants make small-n absolute comparisons meaningless (the
  // sketch is ~500x larger than a raw edge record).
  Rng rng(6);
  const std::size_t n = 4096;  // large enough that n/k^2 dominates the
                               // O(1)-per-superstep control floor at k=16
  const Graph g = gen::connected_gnm(n, 3 * n, rng);
  const auto run_conn = [&](MachineId k) {
    Cluster c(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 11));
    BoruvkaConfig cfg;
    cfg.seed = 13;
    return static_cast<double>(connected_components(c, dg, cfg).stats.rounds);
  };
  const auto run_referee = [&](MachineId k) {
    Cluster c(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 11));
    return static_cast<double>(
        referee_connectivity(c, dg, /*broadcast_labels=*/false).stats.rounds);
  };
  const double conn_ratio = run_conn(4) / run_conn(16);
  const double referee_ratio = run_referee(4) / run_referee(16);
  // The ideal 16x is damped by the model's additive polylog term (tail
  // phases with few components cost ~1 round/superstep at any k); at
  // n=4096 the measured ratio is ~5.9 vs the referee's ~4.0 and grows
  // with n (see bench_connectivity_scaling).
  EXPECT_GT(conn_ratio, 4.5) << "expected superlinear speedup";
  EXPECT_LT(referee_ratio, 8.0) << "referee should gain only ~linear";
  EXPECT_GT(conn_ratio, 1.1 * referee_ratio);
}

TEST(Integration, SamplerRetriesAreRare) {
  Rng rng(7);
  std::uint64_t total_retries = 0, total_phases = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::connected_gnm(120, 300, rng);
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 8));
    const DistributedGraph dg(
        g, VertexPartition::random(g.num_vertices(), 8, split(13, trial)));
    BoruvkaConfig cfg;
    cfg.seed = split(17, trial);
    const auto result = connected_components(cluster, dg, cfg);
    total_retries += result.sampler_retries;
    total_phases += result.phases.size();
  }
  // Recovery failures should be a small fraction of sampling attempts.
  EXPECT_LT(total_retries, 10 * total_phases);
}

TEST(Integration, CountingProtocolOptional) {
  Rng rng(8);
  const Graph g = gen::multi_component(90, 200, 3, rng);
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 4));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 4, 15));
  BoruvkaConfig cfg;
  cfg.count_components = false;
  const auto result = connected_components(cluster, dg, cfg);
  EXPECT_EQ(result.num_components, 3u);  // instrumented count still filled
}

TEST(Integration, ChargeRandomnessToggle) {
  Rng rng(9);
  const Graph g = gen::connected_gnm(100, 240, rng);
  auto run = [&](bool charge) {
    Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), 4));
    const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), 4, 17));
    BoruvkaConfig cfg;
    cfg.seed = 19;
    cfg.charge_randomness = charge;
    return connected_components(cluster, dg, cfg).stats.rounds;
  };
  // The Section 2.2 relay is a real cost: charging it must increase rounds
  // without changing anything else.
  EXPECT_GT(run(true), run(false));
}

}  // namespace
}  // namespace kmm
