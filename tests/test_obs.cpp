// The observability plane (src/obs/): per-superstep MetricsTimeline rows,
// TraceRecorder spans, and the guarantee that attaching either sink never
// perturbs the cluster ledger.
//
// Core invariants pinned here (CI also runs this suite under TSan):
//   * timeline row count == ClusterStats::supersteps, for every thread
//     count, with free supersteps and analytic charge_rounds folded in;
//   * summing the rows reproduces the final ClusterStats exactly — the
//     timeline is a lossless decomposition of the ledger;
//   * the ledger with sinks attached is bit-identical to the ledger
//     without (observation must not change the experiment);
//   * trace span counts are a function of steps and phases.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

Graph test_graph(std::size_t n = 256) {
  Rng rng(4242);
  return gen::gnm(n, 3 * n, rng);
}

/// Full-resolution timeline config (every row keeps per-machine vectors).
MetricsTimelineConfig full_res() {
  MetricsTimelineConfig cfg;
  cfg.full_traffic_steps = 1u << 20;
  return cfg;
}

struct LedgerRow {
  std::uint64_t superstep, rounds, messages, local_messages, bits, link_max;
  bool operator==(const LedgerRow&) const = default;
};

// ------------------------------------------------- timeline vs. the ledger

TEST(ObsPlane, TimelineRowsSumToFinalLedgerAcrossThreads) {
  const Graph g = test_graph();
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;

  std::vector<std::vector<LedgerRow>> per_thread_rows;
  for (const unsigned threads : {1u, 2u, 8u}) {
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
    MetricsTimeline timeline(full_res());
    TraceRecorder trace;
    const ObsSink sink{&timeline, &trace};

    BoruvkaConfig cfg;
    cfg.seed = 99;
    cfg.threads = threads;
    cfg.obs = &sink;
    const auto res = connected_components(cluster, dg, cfg);
    EXPECT_TRUE(res.converged);

    const ClusterStats& s = cluster.stats();
    // One row per *ledger* superstep, free steps notwithstanding.
    ASSERT_EQ(timeline.size(), s.supersteps) << "threads=" << threads;

    // The rows decompose the final ledger exactly (charge_rounds included).
    const auto total = timeline.totals();
    EXPECT_EQ(total.rounds, s.rounds) << "threads=" << threads;
    EXPECT_EQ(total.messages, s.messages) << "threads=" << threads;
    EXPECT_EQ(total.local_messages, s.local_messages) << "threads=" << threads;
    EXPECT_EQ(total.bits, s.total_bits) << "threads=" << threads;
    EXPECT_EQ(total.cut_bits, s.cut_bits) << "threads=" << threads;
    EXPECT_EQ(total.link_max_bits, s.max_link_bits) << "threads=" << threads;

    // Per-machine traffic columns decompose the per-machine ledger arrays.
    std::vector<std::uint64_t> sent(k, 0), received(k, 0);
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const auto row_sent = timeline.sent_bits(i);
      const auto row_recv = timeline.received_bits(i);
      ASSERT_EQ(row_sent.size(), k);
      ASSERT_EQ(row_recv.size(), k);
      for (MachineId m = 0; m < k; ++m) {
        sent[m] += row_sent[m];
        received[m] += row_recv[m];
      }
    }
    EXPECT_EQ(sent, s.sent_bits_by_machine) << "threads=" << threads;
    EXPECT_EQ(received, s.received_bits_by_machine) << "threads=" << threads;

    // Ledger columns of every row are thread-invariant (phase ns are not).
    std::vector<LedgerRow> rows;
    rows.reserve(timeline.size());
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      const auto& r = timeline.row(i);
      rows.push_back(LedgerRow{r.superstep, r.rounds, r.messages, r.local_messages,
                               r.bits, r.link_max_bits});
    }
    per_thread_rows.push_back(std::move(rows));
  }
  ASSERT_EQ(per_thread_rows.size(), 3u);
  EXPECT_EQ(per_thread_rows[0], per_thread_rows[1]);
  EXPECT_EQ(per_thread_rows[0], per_thread_rows[2]);
}

TEST(ObsPlane, SequentialRuntimesConcatenateOnOneTimeline) {
  Rng wrng(7);
  const Graph g = with_unique_weights(with_random_weights(test_graph(128), wrng, 10000));
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;
  Cluster cluster(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg(g, VertexPartition::random(n, k, 5));

  MetricsTimeline timeline(full_res());
  const ObsSink sink{&timeline, nullptr};
  BoruvkaConfig cfg;
  cfg.threads = 2;
  cfg.obs = &sink;
  const auto mst = minimum_spanning_forest(cluster, dg, cfg);
  const std::size_t rows_after_mst = timeline.size();
  const auto strict = announce_mst_to_home_machines(cluster, dg, mst, 2, &sink);
  EXPECT_FALSE(strict.edges_by_home.empty());

  // The announce pass appended its charged supersteps to the same timeline
  // and the sum still reproduces the cluster-lifetime ledger.
  const ClusterStats& s = cluster.stats();
  EXPECT_GT(timeline.size(), rows_after_mst);
  EXPECT_EQ(timeline.size(), s.supersteps);
  const auto total = timeline.totals();
  EXPECT_EQ(total.rounds, s.rounds);
  EXPECT_EQ(total.bits, s.total_bits);
  EXPECT_EQ(total.messages, s.messages);
}

TEST(ObsPlane, TimelineDecomposesLedgerWithFaultScheduleActive) {
  // With the fault plane injecting crashes and lossy links, the timeline
  // must still be a lossless decomposition of the final ledger: recovery
  // stalls and retransmit overhead (charge_rounds between steps) fold into
  // charged rows, replayed supersteps never produce extra rows, and the
  // fault_events column accounts for every injected fault.
  const Graph g = test_graph();
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;

  FaultSchedule sched(11, FaultProfile::named("lossy"));
  sched.add_crash(2, 3);
  sched.add_crash(6, 5);

  for (const unsigned threads : {1u, 2u, 8u}) {
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
    MetricsTimeline timeline(full_res());
    const ObsSink sink{&timeline, nullptr};
    FaultPlane plane(sched);

    BoruvkaConfig cfg;
    cfg.seed = 99;
    cfg.threads = threads;
    cfg.obs = &sink;
    cfg.fault = &plane;
    const auto res = connected_components(cluster, dg, cfg);
    EXPECT_TRUE(res.converged);
    const FaultStats fs = plane.stats();
    ASSERT_EQ(fs.crashes, 2u) << "threads=" << threads;
    ASSERT_GT(fs.drops + fs.duplicates + fs.reorders, 0u);

    const ClusterStats& s = cluster.stats();
    ASSERT_EQ(timeline.size(), s.supersteps) << "threads=" << threads;
    const auto total = timeline.totals();
    EXPECT_EQ(total.rounds, s.rounds) << "threads=" << threads;
    EXPECT_EQ(total.messages, s.messages) << "threads=" << threads;
    EXPECT_EQ(total.bits, s.total_bits) << "threads=" << threads;

    // Every injected fault lands in exactly one row's fault_events column.
    std::uint64_t row_events = 0;
    for (std::size_t i = 0; i < timeline.size(); ++i) {
      row_events += timeline.row(i).fault_events;
    }
    EXPECT_EQ(row_events, total.fault_events);
    EXPECT_EQ(total.fault_events, fs.crashes + fs.drops + fs.duplicates + fs.reorders +
                                      fs.corruptions);
    EXPECT_GT(total.fault_events, 0u);
  }
}

// ---------------------------------------------- observation changes nothing

TEST(ObsPlane, LedgerIsBitIdenticalWithAndWithoutSinks) {
  const Graph g = test_graph();
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;
  const auto run = [&](const ObsSink* obs) {
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
    BoruvkaConfig cfg;
    cfg.seed = 99;
    cfg.threads = 2;
    cfg.obs = obs;
    (void)connected_components(cluster, dg, cfg);
    return cluster.stats();
  };

  const ClusterStats off = run(nullptr);
  MetricsTimeline timeline;
  TraceRecorder trace;
  const ObsSink sink{&timeline, &trace};
  const ClusterStats on = run(&sink);

  EXPECT_EQ(on.rounds, off.rounds);
  EXPECT_EQ(on.supersteps, off.supersteps);
  EXPECT_EQ(on.messages, off.messages);
  EXPECT_EQ(on.local_messages, off.local_messages);
  EXPECT_EQ(on.total_bits, off.total_bits);
  EXPECT_EQ(on.max_link_bits, off.max_link_bits);
  EXPECT_EQ(on.cut_bits, off.cut_bits);
  EXPECT_EQ(on.last_superstep_link_bits, off.last_superstep_link_bits);
  EXPECT_EQ(on.sent_bits_by_machine, off.sent_bits_by_machine);
  EXPECT_EQ(on.received_bits_by_machine, off.received_bits_by_machine);
  EXPECT_EQ(on.superstep_link_max.count(), off.superstep_link_max.count());
  EXPECT_EQ(on.superstep_link_max.sum(), off.superstep_link_max.sum());
}

// ------------------------------------------------------------- trace spans

// One charged ring superstep: machine i sends one word to (i + 1) % k.
void ring_step(Runtime& rt, StepMode mode = StepMode::kParallel) {
  const MachineId k = rt.k();
  rt.step(
      [k](MachineId self, std::span<const Message>, Outbox& out) {
        out.send((self + 1) % k, 1, {std::uint64_t{self}}, 64);
      },
      mode);
}

TEST(ObsPlane, TraceSpanCountsMatchStepsTimesPhasesParallel) {
  const MachineId k = 8;
  const std::size_t steps = 10;
  Cluster cluster(ClusterConfig{k, 64});
  TraceRecorder trace;
  const ObsSink sink{nullptr, &trace};
  Runtime rt(cluster, RuntimeConfig{8, &sink});
  ASSERT_EQ(rt.threads(), 8u);
  for (std::size_t s = 0; s < steps; ++s) ring_step(rt);

  // Parallel direct path: 1 superstep span, k handler spans, k delivery
  // task spans, 1 reduce span — per step.
  EXPECT_EQ(trace.spans(SpanKind::kSuperstep), steps);
  EXPECT_EQ(trace.spans(SpanKind::kInline), 0u);
  EXPECT_EQ(trace.spans(SpanKind::kHandler), steps * k);
  EXPECT_EQ(trace.spans(SpanKind::kDeliver), steps * k);
  EXPECT_EQ(trace.spans(SpanKind::kReduce), steps);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(ObsPlane, TraceSpanCountsSequentialAndInline) {
  const MachineId k = 4;
  Cluster cluster(ClusterConfig{k, 64});
  TraceRecorder trace;
  const ObsSink sink{nullptr, &trace};
  Runtime rt(cluster, RuntimeConfig{1, &sink});
  const std::size_t parallel_steps = 3, inline_steps = 2;
  for (std::size_t s = 0; s < parallel_steps; ++s) ring_step(rt);
  for (std::size_t s = 0; s < inline_steps; ++s) ring_step(rt, StepMode::kInline);

  // Sequential/inline path: 1 top-level span, k handler spans, 1 delivery
  // span (the whole Cluster::superstep()), no reduce — per step.
  EXPECT_EQ(trace.spans(SpanKind::kSuperstep), parallel_steps);
  EXPECT_EQ(trace.spans(SpanKind::kInline), inline_steps);
  EXPECT_EQ(trace.spans(SpanKind::kHandler), (parallel_steps + inline_steps) * k);
  EXPECT_EQ(trace.spans(SpanKind::kDeliver), parallel_steps + inline_steps);
  EXPECT_EQ(trace.spans(SpanKind::kReduce), 0u);
}

TEST(ObsPlane, TraceRingDropsOldestBeyondCapacity) {
  TraceRecorderConfig cfg;
  cfg.lanes = 1;
  cfg.events_per_lane = 4;
  TraceRecorder trace(cfg);
  for (std::uint32_t i = 0; i < 10; ++i) {
    trace.record(0, SpanKind::kHandler, i, i, i * 10, i * 10 + 5);
  }
  EXPECT_EQ(trace.total_spans(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  trace.clear();
  EXPECT_EQ(trace.total_spans(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

// -------------------------------------------------- free steps and charges

TEST(ObsPlane, FreeSuperstepsFoldIntoNextChargedRow) {
  const MachineId k = 4;
  Cluster cluster(ClusterConfig{k, 64});
  MetricsTimeline timeline(full_res());
  const ObsSink sink{&timeline, nullptr};
  Runtime rt(cluster, RuntimeConfig{1, &sink});

  const auto free_step = [&] {
    rt.step([](MachineId, std::span<const Message>, Outbox&) {});
  };
  free_step();          // free: no row
  ring_step(rt);        // charged: row 0 (carries the free step's time)
  free_step();
  free_step();
  cluster.charge_rounds(17);  // analytic charge between steps
  ring_step(rt);        // charged: row 1 (carries the 17 rounds)
  free_step();          // trailing free step: banked, never emitted

  EXPECT_EQ(cluster.stats().supersteps, 2u);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.row(0).superstep, 1u);
  EXPECT_EQ(timeline.row(1).superstep, 2u);
  // Row 1 includes the analytic charge: its rounds delta is the delivery's
  // rounds plus 17.
  EXPECT_EQ(timeline.row(0).rounds + 17, timeline.row(1).rounds);
  EXPECT_EQ(timeline.totals().rounds, cluster.stats().rounds);
}

// --------------------------------------------------------- top-k skew rows

TEST(ObsPlane, TopTrafficSummaryRanksHeaviestMachines) {
  const MachineId k = 6;
  Cluster cluster(ClusterConfig{k, 64});
  MetricsTimelineConfig tcfg;
  tcfg.full_traffic_steps = 0;  // summarize from row 0
  tcfg.top_traffic = 2;
  MetricsTimeline timeline(tcfg);
  const ObsSink sink{&timeline, nullptr};
  Runtime rt(cluster, RuntimeConfig{1, &sink});

  // Machine 3 sends by far the most bits, machine 1 second; everyone else
  // one small message. All traffic lands on machine 0.
  rt.step([](MachineId self, std::span<const Message>, Outbox& out) {
    if (self == 0) return;
    const std::uint64_t bits = self == 3 ? 50000 : (self == 1 ? 9000 : 100);
    out.send(0, 1, {std::uint64_t{self}}, bits);
  });

  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_TRUE(timeline.sent_bits(0).empty());  // summarized, not full-res
  const auto top_sent = timeline.top_sent(0);
  ASSERT_EQ(top_sent.size(), 2u);
  EXPECT_EQ(top_sent[0].machine, 3u);
  EXPECT_EQ(top_sent[1].machine, 1u);
  EXPECT_GT(top_sent[0].bits, top_sent[1].bits);
  const auto top_recv = timeline.top_received(0);
  ASSERT_EQ(top_recv.size(), 2u);
  EXPECT_EQ(top_recv[0].machine, 0u);
  // Only one machine received anything; the summary pads with zero rows.
  EXPECT_EQ(top_recv[1].bits, 0u);
}

// ------------------------------------------------------ phase-totals shim

TEST(ObsPlane, PhaseTotalsSubtractionSaturates) {
  const RuntimePhaseTotals before{100, 200, 300};
  const RuntimePhaseTotals after{150, 260, 300};
  const RuntimePhaseTotals d = after - before;
  EXPECT_EQ(d.handler_ns, 50u);
  EXPECT_EQ(d.deliver_ns, 60u);
  EXPECT_EQ(d.reduce_ns, 0u);
  EXPECT_EQ(d.total_ns(), 110u);

  // Swapped operands saturate to zero instead of wrapping to ~2^64.
  const RuntimePhaseTotals swapped = before - after;
  EXPECT_EQ(swapped.handler_ns, 0u);
  EXPECT_EQ(swapped.deliver_ns, 0u);
  EXPECT_EQ(swapped.reduce_ns, 0u);
  EXPECT_EQ(elapsed_ns(10, 4), 0u);
  EXPECT_EQ(elapsed_ns(4, 10), 6u);
}

TEST(ObsPlane, PhaseTotalsShimStillAccumulates) {
  const MachineId k = 4;
  Cluster cluster(ClusterConfig{k, 64});
  MetricsTimeline timeline(full_res());
  const ObsSink sink{&timeline, nullptr};
  Runtime rt(cluster, RuntimeConfig{2, &sink});
  const RuntimePhaseTotals before = runtime_phase_totals();
  for (int s = 0; s < 5; ++s) ring_step(rt);
  const RuntimePhaseTotals delta = runtime_phase_totals() - before;
  // The shim and the timeline observe the same five steps: the timeline's
  // summed phase columns equal the global-counter delta.
  ASSERT_EQ(timeline.size(), 5u);
  const auto total = timeline.totals();
  EXPECT_EQ(total.handler_ns, delta.handler_ns);
  EXPECT_EQ(total.deliver_ns, delta.deliver_ns);
  EXPECT_EQ(total.reduce_ns, delta.reduce_ns);
}

}  // namespace
}  // namespace kmm
