// Structural properties of every synthetic graph family.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace kmm {
namespace {

TEST(Generators, GnmExactCounts) {
  Rng rng(1);
  const Graph g = gen::gnm(50, 120, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_EQ(g.num_edges(), 120u);
}

TEST(Generators, GnmEdgeCaseFullAndEmpty) {
  Rng rng(2);
  EXPECT_EQ(gen::gnm(6, 15, rng).num_edges(), 15u);  // complete
  EXPECT_EQ(gen::gnm(6, 0, rng).num_edges(), 0u);
}

TEST(Generators, GnpDensityNearExpectation) {
  Rng rng(3);
  const std::size_t n = 200;
  const double p = 0.05;
  const Graph g = gen::gnp(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 4 * std::sqrt(expected));
}

TEST(Generators, GnpExtremes) {
  Rng rng(4);
  EXPECT_EQ(gen::gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(gen::gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(Generators, ConnectedGnmIsConnected) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gen::connected_gnm(80, 100, rng);
    EXPECT_TRUE(ref::is_connected(g));
    EXPECT_EQ(g.num_edges(), 100u);
  }
}

TEST(Generators, PathCycleStarShapes) {
  const Graph p = gen::path(10);
  EXPECT_EQ(p.num_edges(), 9u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(5), 2u);
  EXPECT_FALSE(ref::has_cycle(p));

  const Graph c = gen::cycle(10);
  EXPECT_EQ(c.num_edges(), 10u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(c.degree(v), 2u);
  EXPECT_TRUE(ref::has_cycle(c));

  const Graph s = gen::star(10);
  EXPECT_EQ(s.num_edges(), 9u);
  EXPECT_EQ(s.degree(0), 9u);
  EXPECT_EQ(s.degree(3), 1u);
}

TEST(Generators, CompleteAndGrid) {
  const Graph kn = gen::complete(7);
  EXPECT_EQ(kn.num_edges(), 21u);
  const Graph gr = gen::grid(4, 6);
  EXPECT_EQ(gr.num_vertices(), 24u);
  EXPECT_EQ(gr.num_edges(), 4 * 5 + 6 * 3u);
  EXPECT_TRUE(ref::is_connected(gr));
  EXPECT_TRUE(ref::is_bipartite(gr));
}

TEST(Generators, Trees) {
  Rng rng(6);
  const Graph bt = gen::binary_tree(31);
  EXPECT_EQ(bt.num_edges(), 30u);
  EXPECT_FALSE(ref::has_cycle(bt));
  EXPECT_TRUE(ref::is_connected(bt));
  const Graph rt = gen::random_tree(64, rng);
  EXPECT_EQ(rt.num_edges(), 63u);
  EXPECT_FALSE(ref::has_cycle(rt));
  EXPECT_TRUE(ref::is_connected(rt));
}

TEST(Generators, DisjointUnionOffsets) {
  const Graph a = gen::path(3);
  const Graph b = gen::cycle(4);
  const Graph u = gen::disjoint_union({a, b});
  EXPECT_EQ(u.num_vertices(), 7u);
  EXPECT_EQ(u.num_edges(), 2 + 4u);
  EXPECT_EQ(ref::component_count(u), 2u);
  EXPECT_TRUE(u.has_edge(3, 4));  // cycle edges shifted by 3
}

TEST(Generators, MultiComponentCount) {
  Rng rng(7);
  for (const std::size_t c : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    const Graph g = gen::multi_component(140, 350, c, rng);
    EXPECT_EQ(ref::component_count(g), c);
    EXPECT_EQ(g.num_vertices(), 140u);
  }
}

TEST(Generators, PlantedCommunities) {
  Rng rng(8);
  const Graph disconnected = gen::planted_communities(120, 4, 0.1, 0, rng);
  EXPECT_EQ(ref::component_count(disconnected), 4u);
  const Graph bridged = gen::planted_communities(120, 4, 0.1, 8, rng);
  EXPECT_LE(ref::component_count(bridged), 4u);
  EXPECT_EQ(bridged.num_edges(), disconnected.num_edges() + 8 -
                                     (disconnected.num_edges() + 8 - bridged.num_edges()));
}

TEST(Generators, BipartiteFamilies) {
  Rng rng(9);
  const Graph b = gen::bipartite(30, 40, 200, rng);
  EXPECT_TRUE(ref::is_bipartite(b));
  EXPECT_TRUE(ref::is_connected(b));
  const Graph spoiled = gen::odd_cycle_spoiler(30, 40, 200, rng);
  EXPECT_FALSE(ref::is_bipartite(spoiled));
  EXPECT_TRUE(ref::is_connected(spoiled));
}

TEST(Generators, DumbbellMinCut) {
  Rng rng(10);
  for (const std::size_t lambda : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    const Graph g = gen::dumbbell(20, lambda, rng);
    EXPECT_TRUE(ref::is_connected(g));
    EXPECT_EQ(ref::stoer_wagner_min_cut(g), lambda);
  }
}

TEST(Generators, CliqueChainShape) {
  const Graph g = gen::clique_chain(6, 5);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_TRUE(ref::is_connected(g));
  // Diameter grows linearly with the number of cliques.
  EXPECT_GE(ref::diameter_lower_bound(g), 2 * 6 - 1u);
  EXPECT_EQ(g.num_edges(), 6 * 10 + 5u);
}

TEST(Generators, PreferentialAttachment) {
  Rng rng(12);
  const Graph g = gen::preferential_attachment(600, 3, rng);
  EXPECT_EQ(g.num_vertices(), 600u);
  EXPECT_TRUE(ref::is_connected(g));
  // m = seed clique + 3 per subsequent vertex.
  EXPECT_EQ(g.num_edges(), 6 + (600 - 4) * 3u);
  // Heavy tail: the max degree dwarfs the mean (~6).
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < 600; ++v) max_deg = std::max(max_deg, g.degree(v));
  EXPECT_GE(max_deg, 25u);
  // Early vertices accumulate high degree (rich get richer).
  EXPECT_GT(g.degree(0) + g.degree(1) + g.degree(2), 40u);
}

TEST(GeneratorsDeath, InvalidParameters) {
  Rng rng(11);
  EXPECT_DEATH(gen::gnm(4, 100, rng), "too many edges");
  EXPECT_DEATH(gen::connected_gnm(10, 3, rng), "at least n-1");
  EXPECT_DEATH(gen::dumbbell(10, 5, rng), "lambda");
}

// ------------------------------------------------ chunked parallel pipeline

gen::ParGenConfig pinned_config(unsigned threads) {
  gen::ParGenConfig cfg;
  cfg.seed = 7;
  cfg.threads = threads;
  cfg.edges_per_chunk = 1 << 10;  // many chunks, so chunking is exercised
  cfg.weight_limit = 1000;
  return cfg;
}

TEST(ParallelGenerators, GnmParIdenticalAcrossThreadCounts) {
  const Graph base = gen::gnm_par(5000, 20000, pinned_config(1));
  EXPECT_EQ(base.num_vertices(), 5000u);
  EXPECT_EQ(base.num_edges(), 20000u);  // exactly m distinct edges
  for (const unsigned threads : {2u, 8u}) {
    const Graph g = gen::gnm_par(5000, 20000, pinned_config(threads));
    EXPECT_EQ(g.edges(), base.edges()) << "threads=" << threads;
  }
}

TEST(ParallelGenerators, RmatParIdenticalAcrossThreadCounts) {
  const Graph base = gen::rmat_par(4096, 16000, pinned_config(1));
  EXPECT_LE(base.num_edges(), 16000u);
  EXPECT_GT(base.num_edges(), 12000u);  // most attempts land in the sparse regime
  for (const unsigned threads : {2u, 8u}) {
    const Graph g = gen::rmat_par(4096, 16000, pinned_config(threads));
    EXPECT_EQ(g.edges(), base.edges()) << "threads=" << threads;
  }
}

// The golden pins freeze the generated graphs for one seed per generator:
// any change to the stream layout (chunk tags, PRNG, decode, weight PRF,
// stratification plan) fails here loudly and must be treated as a breaking
// change to every recorded benchmark input.
TEST(ParallelGenerators, GnmParGoldenPin) {
  const Graph g = gen::gnm_par(5000, 20000, pinned_config(8));
  ASSERT_EQ(g.num_edges(), 20000u);
  EXPECT_EQ(edge_list_fingerprint(g.edges()), 0x0b672eb6a2f6a8ddULL);
  EXPECT_EQ(g.edges().front(), (WeightedEdge{0, 422, 52}));
  EXPECT_EQ(g.edges().back(), (WeightedEdge{4970, 4991, 680}));
}

TEST(ParallelGenerators, RmatParGoldenPin) {
  const Graph g = gen::rmat_par(4096, 16000, pinned_config(8));
  ASSERT_EQ(g.num_edges(), 14046u);
  EXPECT_EQ(edge_list_fingerprint(g.edges()), 0x6623480e8c5a2cb5ULL);
  EXPECT_EQ(g.edges().front(), (WeightedEdge{0, 1, 103}));
  EXPECT_EQ(g.edges().back(), (WeightedEdge{3634, 4066, 292}));
}

TEST(ParallelGenerators, GnmParStructureAndWeights) {
  const auto cfg = pinned_config(4);
  const Graph g = gen::gnm_par(3000, 12000, cfg);
  // Canonical order, distinct edges, weights within [1, limit].
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    const auto& e = g.edges()[i];
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 3000u);
    EXPECT_GE(e.w, 1u);
    EXPECT_LE(e.w, cfg.weight_limit);
    if (i > 0) {
      const bool ascending =
          std::pair{g.edges()[i - 1].u, g.edges()[i - 1].v} < std::pair{e.u, e.v};
      EXPECT_TRUE(ascending);
    }
  }
  // Unweighted flavor: every weight is 1.
  auto unweighted = cfg;
  unweighted.weight_limit = 0;
  const Graph g0 = gen::gnm_par(3000, 12000, unweighted);
  for (const auto& e : g0.edges()) EXPECT_EQ(e.w, 1u);
}

TEST(ParallelGenerators, GnmParRmatParSkewSanity) {
  // rmat_par keeps the serial generator's degree skew; gnm_par does not.
  const Graph r = gen::rmat_par(2048, 8000, pinned_config(4));
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < 2048; ++v) max_deg = std::max(max_deg, r.degree(v));
  EXPECT_GE(max_deg, 4 * (2 * r.num_edges() / 2048));
}

TEST(ParallelBuild, GraphCtorMatchesSerialOnShuffledEdges) {
  // Above the parallel cutoff, with a deliberately unsorted and
  // un-canonicalized edge list, the pool ctor must produce the identical
  // Graph (edge list AND adjacency) as the serial ctor.
  Rng rng(21);
  const Graph source = gen::gnm(2000, 40000, rng);
  std::vector<WeightedEdge> edges = source.edges();
  for (auto& e : edges) {
    e.w = 1 + rng.next_below(1 << 20);
    if (rng.next_bool(0.5)) std::swap(e.u, e.v);  // un-canonicalize
  }
  for (std::size_t i = edges.size(); i > 1; --i) {
    std::swap(edges[i - 1], edges[rng.next_below(i)]);  // shuffle
  }
  const Graph serial(2000, edges);
  ThreadPool pool(4);
  const Graph parallel(2000, edges, &pool);
  ASSERT_EQ(parallel.num_edges(), serial.num_edges());
  EXPECT_EQ(parallel.edges(), serial.edges());
  EXPECT_EQ(parallel.max_weight(), serial.max_weight());
  for (Vertex v = 0; v < 2000; ++v) {
    const auto a = serial.neighbors(v);
    const auto b = parallel.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "v=" << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to) << "v=" << v;
      EXPECT_EQ(a[i].weight, b[i].weight) << "v=" << v;
    }
  }
}

TEST(ParallelBuild, PreSortedInputSkipsNothingObservable) {
  // gnm_par emits canonical order; force both ctor paths over the same
  // pre-sorted list and demand identity.
  const Graph g = gen::gnm_par(4000, 40000, pinned_config(2));
  const Graph serial(4000, g.edges());
  ThreadPool pool(4);
  const Graph parallel(4000, g.edges(), &pool);
  EXPECT_EQ(parallel.edges(), serial.edges());
  EXPECT_EQ(parallel.degree(17), serial.degree(17));
}

}  // namespace
}  // namespace kmm
