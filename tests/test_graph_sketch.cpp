// Graph sketches over incidence vectors: the Section 2.3 cancellation
// property, outgoing-edge sampling, weight-threshold restriction.

#include <gtest/gtest.h>

#include <set>

#include "cluster/distributed_graph.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "sketch/graph_sketch.hpp"

namespace kmm {
namespace {

DistributedGraph distribute(const Graph& g, MachineId k = 4, std::uint64_t seed = 1) {
  return DistributedGraph(g, VertexPartition::random(g.num_vertices(), k, seed));
}

TEST(GraphSketch, DecodeRoundtrip) {
  Rng rng(1);
  const Graph g = gen::gnm(50, 100, rng);
  const DistributedGraph dg = distribute(g);
  const GraphSketchBuilder b(g.num_vertices(), 99);
  for (const auto& e : g.edges()) {
    const auto idx = edge_index(e.u, e.v, g.num_vertices());
    const auto [x, y] = b.decode(idx);
    EXPECT_EQ(x, e.u);
    EXPECT_EQ(y, e.v);
  }
}

TEST(GraphSketch, VertexSketchSamplesIncidentEdge) {
  Rng rng(2);
  const Graph g = gen::gnm(60, 150, rng);
  const DistributedGraph dg = distribute(g);
  const GraphSketchBuilder b(g.num_vertices(), 7);
  for (Vertex v = 0; v < 20; ++v) {
    const auto sketch = b.sketch_vertex(dg, v);
    if (g.degree(v) == 0) {
      EXPECT_TRUE(sketch.is_zero());
      continue;
    }
    const auto rec = sketch.sample();
    ASSERT_TRUE(rec.has_value());
    const auto [x, y] = b.decode(rec->index);
    EXPECT_TRUE(x == v || y == v);  // incident to v
    EXPECT_TRUE(g.has_edge(x, y));
    // Sign convention: +1 iff v is the lower endpoint.
    EXPECT_EQ(rec->value, v == x ? 1 : -1);
  }
}

TEST(GraphSketch, WholeComponentCancelsToZero) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen::connected_gnm(80, 160, rng);
    const DistributedGraph dg = distribute(g, 4, split(11, trial));
    const GraphSketchBuilder b(g.num_vertices(), split(13, trial));
    std::vector<Vertex> all(g.num_vertices());
    for (Vertex v = 0; v < g.num_vertices(); ++v) all[v] = v;
    const auto sketch = b.sketch_part(dg, all);
    EXPECT_TRUE(sketch.is_zero());  // no outgoing edges from V
  }
}

TEST(GraphSketch, PartSketchSamplesOutgoingEdge) {
  // THE invariant the connectivity algorithm rides: summing a vertex set's
  // sketches cancels internal edges, leaving only boundary edges.
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = gen::connected_gnm(100, 250, rng);
    const DistributedGraph dg = distribute(g, 4, split(17, trial));
    const GraphSketchBuilder b(g.num_vertices(), split(19, trial));
    // Part = vertices 0..49 (random graph => boundary is nonempty).
    std::vector<Vertex> part;
    for (Vertex v = 0; v < 50; ++v) part.push_back(v);
    const auto sketch = b.sketch_part(dg, part);
    const auto rec = sketch.sample();
    ASSERT_TRUE(rec.has_value());
    const auto [x, y] = b.decode(rec->index);
    EXPECT_TRUE(g.has_edge(x, y));
    const bool x_in = x < 50, y_in = y < 50;
    EXPECT_NE(x_in, y_in) << "sampled edge must cross the part boundary";
    // Sign identifies the inside endpoint: +1 => lower endpoint inside.
    EXPECT_EQ(rec->value > 0, x_in);
  }
}

TEST(GraphSketch, PartEqualsSumOfVertexSketches) {
  Rng rng(5);
  const Graph g = gen::gnm(40, 90, rng);
  const DistributedGraph dg = distribute(g);
  const GraphSketchBuilder b(g.num_vertices(), 23);
  std::vector<Vertex> part{3, 7, 11, 19, 23};
  auto summed = b.empty_sketch();
  for (const Vertex v : part) summed.add(b.sketch_vertex(dg, v));
  const auto direct = b.sketch_part(dg, part);
  WordWriter w1, w2;
  summed.serialize(w1);
  direct.serialize(w2);
  EXPECT_EQ(std::move(w1).take(), std::move(w2).take());
}

TEST(GraphSketch, WeightThresholdRestricts) {
  Rng rng(6);
  Graph g = with_random_weights(gen::connected_gnm(60, 200, rng), rng, 1000);
  g = with_unique_weights(g);
  const DistributedGraph dg = distribute(g);
  const GraphSketchBuilder b(g.num_vertices(), 29);
  // Median weight as threshold; all sampled edges must respect it.
  std::vector<Weight> ws;
  for (const auto& e : g.edges()) ws.push_back(e.w);
  std::nth_element(ws.begin(), ws.begin() + ws.size() / 2, ws.end());
  const Weight thr = ws[ws.size() / 2];
  for (Vertex v = 0; v < 30; ++v) {
    const auto sketch = b.sketch_vertex(dg, v, thr);
    if (const auto rec = sketch.sample()) {
      const auto [x, y] = b.decode(rec->index);
      Weight w = 0;
      for (const auto& he : g.neighbors(x)) {
        if (he.to == y) w = he.weight;
      }
      EXPECT_LE(w, thr);
    }
  }
}

TEST(GraphSketch, ThresholdBelowMinGivesZero) {
  Rng rng(7);
  Graph g = with_random_weights(gen::cycle(20), rng, 100);
  for (auto& e : const_cast<std::vector<WeightedEdge>&>(g.edges())) (void)e;
  const DistributedGraph dg = distribute(g);
  const GraphSketchBuilder b(g.num_vertices(), 31);
  const auto sketch = b.sketch_vertex(dg, 5, 0);  // nothing has weight 0
  EXPECT_TRUE(sketch.is_zero());
}

TEST(GraphSketch, DifferentSeedsDifferentSamples) {
  Rng rng(8);
  const Graph g = gen::complete(40);
  const DistributedGraph dg = distribute(g);
  std::set<std::uint64_t> sampled;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const GraphSketchBuilder b(g.num_vertices(), split(37, seed));
    if (const auto rec = b.sketch_vertex(dg, 0).sample()) sampled.insert(rec->index);
  }
  // Vertex 0 of K_40 has 39 incident edges; fresh seeds must explore many.
  EXPECT_GE(sampled.size(), 10u);
}

TEST(GraphSketch, SketchSizeIsPolylog) {
  const GraphSketchBuilder small(1 << 6, 1);
  const GraphSketchBuilder large(1 << 12, 1);
  const auto sb = small.empty_sketch().wire_bits();
  const auto lb = large.empty_sketch().wire_bits();
  // Universe grew by 2^12 yet the sketch grew by ~2x (levels double).
  EXPECT_LT(lb, 3 * sb);
}

}  // namespace
}  // namespace kmm
