// The durable checkpoint & restart plane (src/durable/ + the FaultPlane tee
// and the serving layer's query journal). Invariants pinned here:
//   * a frame round-trips bit-for-bit through encode/decode, including the
//     ledger's accumulator floating-point internals;
//   * a run killed between two supersteps and resumed from its newest
//     durable generation produces the SAME answer and a ledger bit-identical
//     to an uninterrupted run, for every thread count — the repo's headline
//     thread-invariance invariant extended across process lifetimes;
//   * corruption at rest (a byte flipped in any frame region, a torn tail)
//     is detected by the CRC/codec taxonomy, surfaced as a structured
//     DurableError, and NEVER silently restored — recovery falls back to the
//     previous intact generation;
//   * stale generations (serialized-state version, fingerprint, cluster
//     width) are rejected by the RecoveryManager, not restored;
//   * the query journal's replay returns exactly the submitted-but-never-
//     completed set, idempotent by id, skipping torn tail records.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

Graph test_graph(std::size_t n = 256, std::uint64_t seed = 4242) {
  Rng rng(seed);
  return gen::gnm(n, 3 * n, rng);
}

/// Fresh unique directory under the test's scratch space.
std::string temp_dir(const char* tag) {
  std::string tmpl = ::testing::TempDir() + "kmm_durable_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* made = ::mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return std::string(buf.data());
}

/// Full-ledger bit image (scalars + accumulator internals + per-machine
/// vectors) — the strongest equality two ClusterStats can satisfy.
std::vector<std::uint64_t> ledger_words(const ClusterStats& stats) {
  WordWriter w;
  encode_ledger(stats, w);
  return std::move(w).take();
}

std::vector<std::uint64_t> read_words_or_die(const std::string& path) {
  std::vector<std::uint64_t> words;
  std::string error;
  bool truncated = false;
  EXPECT_TRUE(read_file_words(path, words, &error, &truncated)) << error;
  EXPECT_FALSE(truncated);
  return words;
}

void write_bytes_or_die(const std::string& path, const void* data, std::size_t bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data, 1, bytes, f), bytes);
  ASSERT_EQ(std::fclose(f), 0);
}

// ------------------------------------------------------------------- crc64

TEST(Crc64, KnownAnswerAndSensitivity) {
  // CRC-64/XZ check value for the standard "123456789" vector.
  EXPECT_EQ(crc64("123456789", 9), 0x995DC9BBDF1939FAULL);
  EXPECT_EQ(crc64(nullptr, 0), 0u);
  const std::uint64_t words[3] = {1, 2, 3};
  const std::uint64_t base = crc64_words({words, 3});
  std::uint64_t flipped[3] = {1, 2, 3};
  flipped[1] ^= 1ULL << 17;
  EXPECT_NE(crc64_words({flipped, 3}), base);
}

// ------------------------------------------------------- frame round-trip

TEST(DurablePlane, FrameRoundTripsBitForBit) {
  DurableFrame frame;
  frame.clear(3);
  frame.state_version = 7;
  frame.fingerprint = 0xFEEDFACECAFEBEEFULL;
  frame.ordinal = 42;
  frame.machine_words[0] = {1, 2, 3};
  frame.machine_words[1] = {};
  frame.machine_words[2] = {0xFFFFFFFFFFFFFFFFULL};
  frame.ledger.rounds = 11;
  frame.ledger.supersteps = 12;
  frame.ledger.messages = 13;
  frame.ledger.local_messages = 14;
  frame.ledger.total_bits = 15;
  frame.ledger.max_link_bits = 16;
  frame.ledger.cut_bits = 17;
  frame.ledger.last_superstep_link_bits = 18;
  frame.ledger.superstep_link_max.add(3.5);
  frame.ledger.superstep_link_max.add(8.25);
  frame.ledger.sent_bits_by_machine = {100, 200, 300};
  frame.ledger.received_bits_by_machine = {300, 200, 100};
  frame.inbox[1].push_back({0, 1, 9, 128, {5, 6}});
  frame.inbox[2].push_back({1, 2, 2, 1, {0}});

  WordWriter w;
  encode_frame(frame, w);
  const auto encoded = std::move(w).take();

  const auto sections = frame_sections(encoded);
  ASSERT_TRUE(sections.ok()) << sections.error().message;
  EXPECT_EQ(sections.value().total_words, encoded.size());
  EXPECT_EQ(sections.value().crc_word, encoded.size() - 1);
  EXPECT_LT(sections.value().ledger_begin, sections.value().state_begin);
  EXPECT_LT(sections.value().state_begin, sections.value().inbox_begin);

  const auto decoded = decode_frame(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  const DurableFrame& d = decoded.value();
  EXPECT_EQ(d.state_version, frame.state_version);
  EXPECT_EQ(d.fingerprint, frame.fingerprint);
  EXPECT_EQ(d.ordinal, frame.ordinal);
  EXPECT_EQ(d.k, frame.k);
  EXPECT_EQ(d.machine_words, frame.machine_words);
  EXPECT_EQ(ledger_words(d.ledger), ledger_words(frame.ledger));
  ASSERT_EQ(d.inbox[1].size(), 1u);
  EXPECT_EQ(d.inbox[1][0].src, 0u);
  EXPECT_EQ(d.inbox[1][0].tag, 9u);
  EXPECT_EQ(d.inbox[1][0].bits, 128u);
  EXPECT_EQ(d.inbox[1][0].payload, (std::vector<std::uint64_t>{5, 6}));
  ASSERT_EQ(d.inbox[2].size(), 1u);
  EXPECT_EQ(d.inbox[0].size(), 0u);
}

// --------------------------------------- durable resume of a MachineProgram

/// Minimal checkpointable program (the rule-8a ring from test_fault, with a
/// serialized-state version): every machine folds received words into a
/// running value and forwards a token for `target` supersteps.
class DurableRing final : public MachineProgram {
 public:
  static constexpr std::uint64_t kStateVersion = 3;

  DurableRing(MachineId k, std::uint64_t target)
      : k_(k), target_(target), value_(k, 0), steps_(k, 0) {}

  void on_superstep(MachineId self, std::span<const Message> inbox, Outbox& out) override {
    for (const Message& m : inbox) value_[self] = split(value_[self], m.payload()[0]);
    if (steps_[self] < target_) {
      out.send((self + 1) % k_, 1, {split(value_[self] + steps_[self], self)}, 64);
      ++steps_[self];
    }
  }
  [[nodiscard]] bool done() const override {
    for (MachineId m = 0; m < k_; ++m) {
      if (steps_[m] < target_) return false;
    }
    return true;
  }
  [[nodiscard]] bool checkpointable() const override { return true; }
  void snapshot(MachineId m, WordWriter& w) override { w.u64(value_[m]).u64(steps_[m]); }
  void restore(MachineId m, WordReader& r) override {
    value_[m] = r.u64();
    steps_[m] = r.u64();
  }
  [[nodiscard]] std::uint64_t state_version() const override { return kStateVersion; }

  [[nodiscard]] const std::vector<std::uint64_t>& values() const noexcept { return value_; }

 private:
  MachineId k_;
  std::uint64_t target_;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> steps_;
};

TEST(DurablePlane, KilledRunResumesBitIdentically) {
  const MachineId k = 6;
  const std::uint64_t target = 24;
  const std::uint64_t kill_after = 11;  // "process death" between supersteps

  // Uninterrupted reference run (no plane at all).
  Cluster clean_cluster(ClusterConfig{k, 64});
  DurableRing clean(k, target);
  Runtime clean_rt(clean_cluster);
  (void)clean_rt.run(clean);
  ASSERT_TRUE(clean.done());
  const auto clean_ledger = ledger_words(clean_cluster.stats());

  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const unsigned cadence : {1u, 4u}) {
      const std::string dir = temp_dir("ring");

      // First lifetime: crash-free schedule, durable tee, killed by the
      // superstep cap — state at death lives only in the generation files.
      {
        DurableStore store({dir, /*fsync=*/false, /*keep_generations=*/3, 0});
        const FaultSchedule quiet(1);
        FaultPlaneConfig pcfg;
        pcfg.checkpoint_every = cadence;
        FaultPlane plane(quiet, pcfg);
        plane.set_durable_store(&store);
        Cluster cluster(ClusterConfig{k, 64});
        DurableRing program(k, target);
        Runtime rt(cluster, RuntimeConfig{threads, nullptr, &plane});
        for (std::uint64_t s = 0; s < kill_after; ++s) (void)rt.step(program);
        ASSERT_FALSE(program.done());
        EXPECT_GT(plane.stats().durable_commits, 0u);
        EXPECT_GT(store.stats().bytes_written, 0u);
      }

      // Second lifetime: recover the newest generation, arm it, run to
      // completion on a FRESH cluster + program.
      const auto rec = RecoveryManager::recover(
          dir, RecoveryManager::Expectation{DurableRing::kStateVersion, 0, k});
      ASSERT_TRUE(rec.ok()) << rec.error().message;
      EXPECT_TRUE(rec.value().rejected.empty());
      EXPECT_LE(rec.value().frame.ordinal, kill_after);

      DurableStore store({dir, false, 3, 0});
      const FaultSchedule quiet(1);
      FaultPlaneConfig pcfg;
      pcfg.checkpoint_every = cadence;
      FaultPlane plane(quiet, pcfg);
      plane.set_durable_store(&store);
      plane.arm_resume(&rec.value().frame);
      Cluster cluster(ClusterConfig{k, 64});
      DurableRing program(k, target);
      Runtime rt(cluster, RuntimeConfig{threads, nullptr, &plane});
      (void)rt.run(program);

      EXPECT_TRUE(program.done()) << "threads=" << threads << " cadence=" << cadence;
      EXPECT_EQ(plane.stats().resumes, 1u);
      // Same answer AND the full ledger bit-identical to never having died.
      EXPECT_EQ(program.values(), clean.values());
      EXPECT_EQ(ledger_words(cluster.stats()), clean_ledger)
          << "threads=" << threads << " cadence=" << cadence;
    }
  }
}

// ------------------------------------- durable resume of flood connectivity

TEST(DurablePlane, FloodConnectivityResumesBitIdentically) {
  const Graph g = test_graph(192, 99);
  const std::size_t n = g.num_vertices();
  const MachineId k = 8;
  const auto ref_labels = ref::component_labels(g);

  // Uninterrupted reference run.
  Cluster clean_cluster(ClusterConfig::for_graph(n, k));
  const DistributedGraph dg0(g, VertexPartition::random(n, k, 7));
  const ResumableFloodResult clean = resumable_flood_connectivity(clean_cluster, dg0, {});
  ASSERT_TRUE(clean.converged);
  ASSERT_EQ(clean.labels.size(), ref_labels.size());
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(clean.labels[v], ref_labels[v]) << "v=" << v;
  }
  const auto clean_ledger = ledger_words(clean_cluster.stats());

  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::string dir = temp_dir("flood");
    const DistributedGraph dg(g, VertexPartition::random(n, k, 7));

    {
      DurableStore store({dir, false, 3, 0});
      const FaultSchedule quiet(1);
      FaultPlaneConfig pcfg;
      pcfg.checkpoint_every = 2;
      FaultPlane plane(quiet, pcfg);
      plane.set_durable_store(&store);
      Cluster cluster(ClusterConfig::for_graph(n, k));
      ResumableFloodConfig cfg;
      cfg.max_supersteps = 5;  // killed mid-computation
      cfg.threads = threads;
      cfg.fault = &plane;
      const ResumableFloodResult dead = resumable_flood_connectivity(cluster, dg, cfg);
      ASSERT_FALSE(dead.converged);
      EXPECT_GT(plane.stats().durable_commits, 0u);
    }

    const auto rec = RecoveryManager::recover(
        dir, RecoveryManager::Expectation{FloodProgram::kStateVersion, 0, k});
    ASSERT_TRUE(rec.ok()) << rec.error().message;

    DurableStore store({dir, false, 3, 0});
    const FaultSchedule quiet(1);
    FaultPlaneConfig pcfg;
    pcfg.checkpoint_every = 2;
    FaultPlane plane(quiet, pcfg);
    plane.set_durable_store(&store);
    plane.arm_resume(&rec.value().frame);
    Cluster cluster(ClusterConfig::for_graph(n, k));
    ResumableFloodConfig cfg;
    cfg.threads = threads;
    cfg.fault = &plane;
    const ResumableFloodResult res = resumable_flood_connectivity(cluster, dg, cfg);

    EXPECT_TRUE(res.converged) << "threads=" << threads;
    EXPECT_EQ(res.labels, clean.labels);
    EXPECT_EQ(res.num_components, clean.num_components);
    EXPECT_EQ(res.supersteps, clean.supersteps);  // counted across lifetimes
    EXPECT_EQ(ledger_words(cluster.stats()), clean_ledger) << "threads=" << threads;
  }
}

// --------------------------------------------- corruption at rest (CRC)

/// Commit two distinguishable generations of a tiny run into `dir`; returns
/// the paths, oldest first.
std::vector<std::string> commit_two_generations(const std::string& dir) {
  DurableStore store({dir, false, 3, 0});
  const FaultSchedule quiet(1);
  FaultPlaneConfig pcfg;
  pcfg.checkpoint_every = 4;
  FaultPlane plane(quiet, pcfg);
  plane.set_durable_store(&store);
  Cluster cluster(ClusterConfig{4, 64});
  DurableRing program(4, 12);
  Runtime rt(cluster, RuntimeConfig{1, nullptr, &plane});
  for (int s = 0; s < 7; ++s) (void)rt.step(program);  // commits at ordinals 0 and 4
  const auto gens = DurableStore::list_generations(dir);
  EXPECT_TRUE(gens.ok());
  std::vector<std::string> paths;
  for (const auto& [ordinal, path] : gens.value()) paths.push_back(path);
  EXPECT_EQ(paths.size(), 2u);
  return paths;
}

TEST(DurablePlane, CorruptRegionsAreDetectedAndNeverRestored) {
  const std::string dir = temp_dir("corrupt");
  const auto paths = commit_two_generations(dir);
  ASSERT_EQ(paths.size(), 2u);
  const std::string& newest = paths.back();
  const std::vector<std::uint64_t> pristine = read_words_or_die(newest);
  const auto sections = frame_sections(pristine);
  ASSERT_TRUE(sections.ok());
  const FrameSections& sec = sections.value();
  const RecoveryManager::Expectation expect{DurableRing::kStateVersion, 0, 4};

  struct Case {
    const char* name;
    std::size_t word;  // byte 3 of this word gets flipped
    DurableErrorCode want;
  };
  const Case cases[] = {
      {"header magic", 0, DurableErrorCode::kBadMagic},
      {"header format version", 1, DurableErrorCode::kBadVersion},
      {"ledger", sec.ledger_begin, DurableErrorCode::kCrcMismatch},
      {"state words", sec.state_begin, DurableErrorCode::kCrcMismatch},
      {"inbox", sec.inbox_begin, DurableErrorCode::kCrcMismatch},
      {"crc word", sec.crc_word, DurableErrorCode::kCrcMismatch},
  };
  for (const Case& c : cases) {
    ASSERT_LT(c.word, pristine.size()) << c.name;
    std::vector<std::uint64_t> mutated = pristine;
    mutated[c.word] ^= 0xFFULL << 24;
    write_bytes_or_die(newest, mutated.data(), mutated.size() * sizeof(std::uint64_t));

    // The single-file loader names the exact failure...
    const auto direct = RecoveryManager::load_frame(newest, expect);
    ASSERT_FALSE(direct.ok()) << c.name;
    EXPECT_EQ(direct.error().code, c.want) << c.name;
    EXPECT_EQ(direct.error().path, newest) << c.name;

    // ...and the directory scan falls back to the older intact generation,
    // reporting the rejection rather than silently restoring anything.
    const auto rec = RecoveryManager::recover(dir, expect);
    ASSERT_TRUE(rec.ok()) << c.name << ": " << rec.error().message;
    EXPECT_EQ(rec.value().path, paths.front()) << c.name;
    ASSERT_EQ(rec.value().rejected.size(), 1u) << c.name;
    EXPECT_EQ(rec.value().rejected[0].error.code, c.want) << c.name;
  }

  // A torn write (non-word-aligned tail) is kTruncated, same fallback.
  write_bytes_or_die(newest, pristine.data(), pristine.size() * sizeof(std::uint64_t) - 3);
  const auto torn = RecoveryManager::load_frame(newest, expect);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.error().code, DurableErrorCode::kTruncated);
  const auto rec = RecoveryManager::recover(dir, expect);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().path, paths.front());

  // Both generations corrupt: structured kNoGeneration, never an abort.
  write_bytes_or_die(paths.front(), pristine.data(), 5);
  const auto none = RecoveryManager::recover(dir, expect);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.error().code, DurableErrorCode::kNoGeneration);
}

TEST(DurablePlane, StaleGenerationsAreRejected) {
  const std::string dir = temp_dir("stale");
  const auto paths = commit_two_generations(dir);
  const std::string& newest = paths.back();

  const auto wrong_state = RecoveryManager::load_frame(
      newest, {DurableRing::kStateVersion + 1, 0, 4});
  ASSERT_FALSE(wrong_state.ok());
  EXPECT_EQ(wrong_state.error().code, DurableErrorCode::kStateVersionMismatch);

  const auto wrong_print = RecoveryManager::load_frame(
      newest, {DurableRing::kStateVersion, 0xDEAD, 4});
  ASSERT_FALSE(wrong_print.ok());
  EXPECT_EQ(wrong_print.error().code, DurableErrorCode::kFingerprintMismatch);

  const auto wrong_k = RecoveryManager::load_frame(
      newest, {DurableRing::kStateVersion, 0, 8});
  ASSERT_FALSE(wrong_k.ok());
  EXPECT_EQ(wrong_k.error().code, DurableErrorCode::kClusterWidthMismatch);

  // Every generation stale -> kNoGeneration with the rejections summarized.
  const auto rec = RecoveryManager::recover(dir, {DurableRing::kStateVersion + 1, 0, 4});
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.error().code, DurableErrorCode::kNoGeneration);
  EXPECT_NE(rec.error().message.find("state"), std::string::npos);

  const auto empty = RecoveryManager::recover(temp_dir("empty"), {1, 0, 0});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, DurableErrorCode::kNoGeneration);
}

TEST(DurablePlane, StorePrunesOldGenerations) {
  const std::string dir = temp_dir("prune");
  DurableStore store({dir, false, /*keep_generations=*/2, 0});
  DurableFrame frame;
  for (std::uint64_t ordinal : {0u, 3u, 6u, 9u}) {
    frame.clear(1);
    frame.ordinal = ordinal;
    frame.machine_words[0] = {ordinal};
    frame.ledger.sent_bits_by_machine = {0};
    frame.ledger.received_bits_by_machine = {0};
    const auto committed = store.commit(frame);
    ASSERT_TRUE(committed.ok()) << committed.error().message;
  }
  const auto gens = DurableStore::list_generations(dir);
  ASSERT_TRUE(gens.ok());
  ASSERT_EQ(gens.value().size(), 2u);
  EXPECT_EQ(gens.value()[0].first, 6u);
  EXPECT_EQ(gens.value()[1].first, 9u);
  EXPECT_EQ(store.stats().pruned, 2u);
}

// ----------------------------------------------------------- query journal

TEST(QueryJournal, ReplayReturnsExactlyThePendingSet) {
  const std::string path = temp_dir("journal") + "/queries.log";
  {
    auto journal = QueryJournal::open(path, /*fsync=*/false);
    ASSERT_TRUE(journal.ok()) << journal.error().message;
    QueryJournal& j = *journal.value();

    QueryRequest a;
    a.kind = QueryKind::kConnectivity;
    a.seed = 7;
    QueryRequest b;
    b.kind = QueryKind::kVerifyStCut;
    b.seed = 9;
    b.budget = QueryBudget{1000, 64, 1 << 20};
    b.s = 3;
    b.t = 5;
    b.edges = {{1, 2}, {3, 4}};
    QueryRequest c;
    c.kind = QueryKind::kMst;

    j.record_submitted(1, a);
    j.record_submitted(2, b);
    j.record_submitted(3, c);
    j.record_completed(1, true);
    j.record_completed(3, false);
    j.record_completed(1, true);  // duplicate completion collapses
    EXPECT_EQ(j.stats().appended, 6u);
    EXPECT_EQ(j.stats().append_failures, 0u);
  }

  const auto replay = QueryJournal::replay(path);
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  const QueryJournal::Replay& r = replay.value();
  EXPECT_EQ(r.submitted, 3u);
  EXPECT_EQ(r.completed, 2u);
  EXPECT_EQ(r.torn_records, 0u);
  EXPECT_EQ(r.max_id, 3u);
  ASSERT_EQ(r.pending.size(), 1u);
  EXPECT_EQ(r.pending[0].first, 2u);
  const QueryRequest& req = r.pending[0].second;
  EXPECT_EQ(req.kind, QueryKind::kVerifyStCut);
  EXPECT_EQ(req.seed, 9u);
  EXPECT_EQ(req.budget.deadline_ms, 1000u);
  EXPECT_EQ(req.budget.max_supersteps, 64u);
  EXPECT_EQ(req.s, 3u);
  EXPECT_EQ(req.t, 5u);
  EXPECT_EQ(req.edges, (std::vector<std::pair<Vertex, Vertex>>{{1, 2}, {3, 4}}));
}

TEST(QueryJournal, TornTailAndGarbageAreSkippedNotMisparsed) {
  const std::string path = temp_dir("torn") + "/queries.log";
  {
    auto journal = QueryJournal::open(path, false);
    ASSERT_TRUE(journal.ok());
    QueryRequest a;
    journal.value()->record_submitted(1, a);
    journal.value()->record_completed(1, true);
    journal.value()->record_submitted(2, a);
  }
  // Simulate the process dying mid-append: a half-written record with no
  // CRC, no newline; plus an alien line that checksums nothing.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("not a journal line\nC 2 1 crc=feedfeedfe", f);
    std::fclose(f);
  }
  const auto replay = QueryJournal::replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().torn_records, 2u);
  ASSERT_EQ(replay.value().pending.size(), 1u);
  // The torn completion for id 2 must NOT count: 2 stays pending.
  EXPECT_EQ(replay.value().pending[0].first, 2u);

  // Reopening for append must SEAL the torn tail: the next record lands on
  // its own line instead of welding onto the half-written one (which would
  // corrupt both). After the restarted lifetime completes id 2, replay sees
  // it — and still exactly the two torn lines, no more.
  {
    auto journal = QueryJournal::open(path, false);
    ASSERT_TRUE(journal.ok());
    journal.value()->record_completed(2, true);
  }
  const auto sealed = QueryJournal::replay(path);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed.value().torn_records, 2u);
  EXPECT_EQ(sealed.value().completed, 2u);
  EXPECT_TRUE(sealed.value().pending.empty());
}

TEST(QueryJournal, ServiceJournalsSubmissionsAndCompletions) {
  const Graph g = test_graph(96, 5);
  const std::size_t n = g.num_vertices();
  const MachineId k = 4;
  const DistributedGraph dg(g, VertexPartition::random(n, k, 3));
  const std::string path = temp_dir("service") + "/queries.log";

  std::uint64_t clean_components = 0;
  {
    auto journal = QueryJournal::open(path, false);
    ASSERT_TRUE(journal.ok());
    ServiceConfig cfg;
    cfg.k = k;
    cfg.workers = 2;
    cfg.journal = journal.value().get();
    ClusterService service(dg, cfg);
    QueryRequest conn;
    conn.kind = QueryKind::kConnectivity;
    auto t1 = service.submit(conn);
    QueryRequest mst;
    mst.kind = QueryKind::kMst;
    auto t2 = service.submit(mst);
    ASSERT_TRUE(t1->wait().ok());
    ASSERT_TRUE(t2->wait().ok());
    clean_components = t1->wait().value().value;
    service.drain();
    // Simulate a query that was in flight at process death: submitted in
    // the journal, never completed.
    journal.value()->record_submitted(77, conn);
  }

  const auto replay = QueryJournal::replay(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().submitted, 3u);
  EXPECT_EQ(replay.value().completed, 2u);
  ASSERT_EQ(replay.value().pending.size(), 1u);
  EXPECT_EQ(replay.value().pending[0].first, 77u);
  EXPECT_EQ(replay.value().max_id, 77u);

  // Restarted service: re-run ONLY the pending query under its original id,
  // fresh ids start past everything the journal ever issued.
  {
    auto journal = QueryJournal::open(path, false);
    ASSERT_TRUE(journal.ok());
    ServiceConfig cfg;
    cfg.k = k;
    cfg.workers = 1;
    cfg.journal = journal.value().get();
    cfg.first_query_id = replay.value().max_id + 1;
    ClusterService service(dg, cfg);
    for (const auto& [id, request] : replay.value().pending) {
      auto ticket = service.submit(request, id);
      EXPECT_EQ(ticket->id(), id);
      const QueryOutcome& outcome = ticket->wait();
      ASSERT_TRUE(outcome.ok());
      EXPECT_EQ(outcome.value().value, clean_components);
    }
    QueryRequest fresh;
    fresh.kind = QueryKind::kFlooding;
    auto ticket = service.submit(fresh);
    EXPECT_EQ(ticket->id(), 78u);
    ASSERT_TRUE(ticket->wait().ok());
    service.drain();
  }

  const auto after = QueryJournal::replay(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().pending.size(), 0u);  // idempotent restart: all done
  EXPECT_EQ(after.value().submitted, 4u);
}

}  // namespace
}  // namespace kmm
