// Shard-direct streaming ingest (cluster/stream_ingest.hpp): the built
// shards must be bit-identical to the materialized Graph -> partition path
// for every thread count and ingest chunk size, the unweighted tier must
// elide the weight arrays, and resource exhaustion (budget overflow or a
// scheduled fault-plane allocation failure) must surface as a structured
// Expected error carrying its diagnostic.

#include <gtest/gtest.h>

#include <vector>

#include "kmm.hpp"

namespace kmm {
namespace {

/// Byte-for-byte equivalence of the two backends as seen through the public
/// adjacency interface: hosted lists, degrees, and neighbor (to, weight)
/// sequences. This is the bit-identity the ledger invariant rides on.
void expect_bit_identical(const DistributedGraph& a, const DistributedGraph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.machines(), b.machines());
  for (MachineId i = 0; i < a.machines(); ++i) {
    const auto va = a.vertices_of(i);
    const auto vb = b.vertices_of(i);
    ASSERT_EQ(va.size(), vb.size()) << "machine " << i;
    for (std::size_t j = 0; j < va.size(); ++j) ASSERT_EQ(va[j], vb[j]);
  }
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "vertex " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    auto ia = na.begin();
    auto ib = nb.begin();
    for (; ia != na.end(); ++ia, ++ib) {
      const HalfEdge ha = *ia;
      const HalfEdge hb = *ib;
      ASSERT_EQ(ha.to, hb.to) << "vertex " << v;
      ASSERT_EQ(ha.weight, hb.weight) << "vertex " << v << " -> " << ha.to;
    }
  }
}

std::vector<WeightedEdge> path_edges(std::size_t n) {
  std::vector<WeightedEdge> edges;
  for (Vertex v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1});
  return edges;
}

TEST(StreamIngest, PathMatchesMaterializedAcrossChunkSizesAndThreads) {
  const std::size_t n = 1500;
  const auto edges = path_edges(n);
  const Graph g(n, edges);
  const VertexPartition part = VertexPartition::random(n, 8, 77);
  const DistributedGraph reference(g, part);
  // edge_list_stream's chunk size is pure ingest batching: every value must
  // produce the same shards (streaming contract, generators.hpp).
  for (const std::size_t chunk : {std::size_t{256}, std::size_t{1} << 16}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      StreamIngestOptions opts;
      opts.threads = threads;
      const DistributedGraph dg =
          stream_ingest(n, part, gen::edge_list_stream(edges, chunk), opts).value();
      EXPECT_FALSE(dg.materialized());
      expect_bit_identical(reference, dg);
    }
  }
}

TEST(StreamIngest, GnmMatchesMaterializedAcrossChunkSizesAndThreads) {
  const std::size_t n = 3000, m = 9000;
  // cfg.edges_per_chunk is part of the generated graph's identity, so both
  // sides of the comparison share the cfg; the streamed side must then be
  // invariant in the ingest thread count.
  for (const std::size_t chunk : {std::size_t{256}, std::size_t{1} << 16}) {
    gen::ParGenConfig cfg;
    cfg.seed = 99;
    cfg.edges_per_chunk = chunk;
    const Graph g = gen::gnm_par(n, m, cfg);
    const VertexPartition part = VertexPartition::random(n, 8, 5);
    const DistributedGraph reference(g, part);
    for (const unsigned threads : {1u, 2u, 8u}) {
      StreamIngestOptions opts;
      opts.threads = threads;
      const DistributedGraph dg =
          stream_ingest(n, part, gen::gnm_stream_source(n, m, cfg), opts).value();
      expect_bit_identical(reference, dg);
    }
  }
}

TEST(StreamIngest, RmatMatchesMaterializedAcrossChunkSizesAndThreads) {
  const std::size_t n = 2048, m = 6000;
  // R-MAT streams raw candidates (duplicates included, identical weights per
  // edge index); ingest's sort+dedup must land on exactly the edge set the
  // materialized generator dedups in chunk order.
  for (const std::size_t chunk : {std::size_t{256}, std::size_t{1} << 16}) {
    gen::ParGenConfig cfg;
    cfg.seed = 1234;
    cfg.edges_per_chunk = chunk;
    const Graph g = gen::rmat_par(n, m, cfg);
    const VertexPartition part = VertexPartition::random(n, 8, 11);
    const DistributedGraph reference(g, part);
    for (const unsigned threads : {1u, 2u, 8u}) {
      StreamIngestOptions opts;
      opts.threads = threads;
      const DistributedGraph dg =
          stream_ingest(n, part, gen::rmat_stream_source(n, m, cfg), opts).value();
      expect_bit_identical(reference, dg);
    }
  }
}

TEST(StreamIngest, WeightedGnmCarriesPrfWeights) {
  const std::size_t n = 2000, m = 6000;
  gen::ParGenConfig cfg;
  cfg.seed = 7;
  cfg.weight_limit = 1u << 20;
  const Graph g = gen::gnm_par(n, m, cfg);
  const VertexPartition part = VertexPartition::random(n, 6, 3);
  const DistributedGraph reference(g, part);
  StreamIngestOptions opts;
  opts.threads = 2;
  const DistributedGraph dg =
      stream_ingest(n, part, gen::gnm_stream_source(n, m, cfg), opts).value();
  expect_bit_identical(reference, dg);
}

TEST(StreamIngest, UnweightedShardsElideWeightArrays) {
  const std::size_t n = 4000, m = 12000;
  gen::ParGenConfig cfg;
  cfg.seed = 21;
  const VertexPartition part = VertexPartition::random(n, 8, 9);
  const DistributedGraph dg =
      stream_ingest(n, part, gen::gnm_stream_source(n, m, cfg), StreamIngestOptions{})
          .value();
  // 4 bytes per half-edge: the SoA win that makes the n >= 10^8 tier fit.
  std::size_t total = 0;
  for (MachineId i = 0; i < dg.machines(); ++i) total += dg.shard_bytes(i);
  EXPECT_EQ(total, 2 * dg.num_edges() * sizeof(Vertex));
  EXPECT_LE(dg.max_shard_bytes(), total);
}

TEST(StreamIngest, LedgerAndLabelsMatchMaterializedBackend) {
  // The whole point of the backend abstraction: identical adjacency means
  // identical algorithm traffic, so the ClusterStats ledger is bit-identical
  // whichever backend hosts the graph (and for every ingest thread count).
  const std::size_t n = 2500, m = 7500;
  gen::ParGenConfig cfg;
  cfg.seed = 4321;
  const Graph g = gen::gnm_par(n, m, cfg);
  const VertexPartition part = VertexPartition::random(n, 8, 13);

  Cluster c1(ClusterConfig::for_graph(n, 8));
  const DistributedGraph materialized(g, part);
  BoruvkaConfig bcfg;
  bcfg.seed = 5;
  const auto ref_run = connected_components(c1, materialized, bcfg);

  for (const unsigned threads : {1u, 2u, 8u}) {
    StreamIngestOptions opts;
    opts.threads = threads;
    const DistributedGraph dg =
        stream_ingest(n, part, gen::gnm_stream_source(n, m, cfg), opts).value();
    Cluster c2(ClusterConfig::for_graph(n, 8));
    const auto run = connected_components(c2, dg, bcfg);
    EXPECT_EQ(run.num_components, ref_run.num_components);
    EXPECT_EQ(run.stats.rounds, ref_run.stats.rounds);
    EXPECT_EQ(run.stats.messages, ref_run.stats.messages);
    EXPECT_EQ(run.stats.bits, ref_run.stats.bits);
    EXPECT_EQ(run.labels, ref_run.labels);
  }
}

TEST(StreamIngest, BudgetOverflowReturnsStructuredError) {
  // Resource exhaustion is an Expected error (callers can retry with a bigger
  // budget or more machines), not an abort — only contract violations die.
  const std::size_t n = 1000;
  const auto edges = path_edges(n);
  StreamIngestOptions opts;
  opts.budget.bytes_per_machine = 64;  // a 4-machine path shard needs ~KBs
  const auto r = stream_ingest(n, VertexPartition::random(n, 4, 7),
                               gen::edge_list_stream(edges), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("per-machine memory budget"), std::string::npos)
      << r.error().message;
}

TEST(StreamIngest, ScheduledAllocFailureReturnsStructuredError) {
  // The fault plane's ingest hook: a scheduled allocation failure at one
  // machine surfaces as the same structured error channel as the budget.
  const std::size_t n = 600;
  const auto edges = path_edges(n);
  FaultSchedule sched(7, FaultProfile{});
  sched.add_ingest_alloc_failure(2);
  StreamIngestOptions opts;
  opts.fault = &sched;
  const auto r = stream_ingest(n, VertexPartition::random(n, 4, 7),
                               gen::edge_list_stream(edges), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("simulated allocation failure"), std::string::npos)
      << r.error().message;
  EXPECT_NE(r.error().message.find("machine 2"), std::string::npos) << r.error().message;
}

TEST(StreamIngestDeathTest, ShardBackendHasNoGlobalGraph) {
  const std::size_t n = 600;
  const auto edges = path_edges(n);
  const DistributedGraph dg = stream_ingest(n, VertexPartition::random(n, 4, 7),
                                            gen::edge_list_stream(edges), {})
                                  .value();
  EXPECT_FALSE(dg.materialized());
  EXPECT_DEATH((void)dg.graph(), "never materializes the global graph");
}

}  // namespace
}  // namespace kmm
