// The Section 2.2 shared-randomness relay cost model and seed derivation.

#include <gtest/gtest.h>

#include <set>

#include "cluster/shared_randomness.hpp"

namespace kmm {
namespace {

TEST(SharedRandomnessTest, DistributionRoundsFormula) {
  // (k-1)*B bits become common knowledge per 2 rounds.
  EXPECT_EQ(SharedRandomness::distribution_rounds(1, 2, 1), 2u);
  EXPECT_EQ(SharedRandomness::distribution_rounds(10, 2, 1), 20u);
  EXPECT_EQ(SharedRandomness::distribution_rounds(10, 11, 1), 2u);
  EXPECT_EQ(SharedRandomness::distribution_rounds(11, 11, 1), 4u);
  EXPECT_EQ(SharedRandomness::distribution_rounds(100, 5, 1), 2 * 25u);
  // Bandwidth pipelines: B bits per link per round.
  EXPECT_EQ(SharedRandomness::distribution_rounds(100, 5, 25), 2u);
  EXPECT_EQ(SharedRandomness::distribution_rounds(101, 5, 25), 4u);
}

TEST(SharedRandomnessTest, ScalesInverselyWithKAndB) {
  const std::uint64_t bits = 10'000'000;
  EXPECT_GT(SharedRandomness::distribution_rounds(bits, 4, 64),
            SharedRandomness::distribution_rounds(bits, 16, 64));
  // Doubling k roughly halves the rounds; so does doubling B.
  const auto r8 = SharedRandomness::distribution_rounds(bits, 8, 64);
  const auto r16 = SharedRandomness::distribution_rounds(bits, 16, 64);
  EXPECT_NEAR(static_cast<double>(r8) / static_cast<double>(r16), 2.0, 0.25);
  const auto b2 = SharedRandomness::distribution_rounds(bits, 8, 128);
  EXPECT_NEAR(static_cast<double>(r8) / static_cast<double>(b2), 2.0, 0.25);
}

TEST(SharedRandomnessTest, ChargeUpdatesLedger) {
  Cluster cluster(ClusterConfig{.k = 5, .bandwidth_bits = 64});
  SharedRandomness sr(77);
  const auto rounds = sr.charge_distribution(cluster, 40 * 64);
  EXPECT_EQ(rounds, 2 * 10u);
  EXPECT_EQ(cluster.stats().rounds, rounds);
  EXPECT_EQ(sr.bits_distributed(), 40u * 64);
  sr.charge_distribution(cluster, 4);
  EXPECT_EQ(sr.bits_distributed(), 40u * 64 + 4);
}

TEST(SharedRandomnessTest, SeedsDeterministicAndDistinct) {
  const SharedRandomness a(1), b(1), c(2);
  EXPECT_EQ(a.seed(3, 4, seed_purpose::kProxy), b.seed(3, 4, seed_purpose::kProxy));
  EXPECT_NE(a.seed(3, 4, seed_purpose::kProxy), c.seed(3, 4, seed_purpose::kProxy));

  std::set<std::uint64_t> seen;
  for (std::uint64_t phase = 0; phase < 10; ++phase) {
    for (std::uint64_t iter = 0; iter < 10; ++iter) {
      for (const auto purpose : {seed_purpose::kProxy, seed_purpose::kRank,
                                 seed_purpose::kSketch, seed_purpose::kSampling}) {
        seen.insert(a.seed(phase, iter, purpose));
      }
    }
  }
  EXPECT_EQ(seen.size(), 400u);  // all distinct
}

}  // namespace
}  // namespace kmm
