#pragma once
// Counting-allocator hook for bench binaries.
//
// Replaces the global operator new/delete with malloc/free wrappers that
// bump an atomic counter, so benches can report allocations per superstep
// and the scaling JSON can distinguish "faster because parallel" from
// "faster because fewer mallocs". Replacement operators must be defined in
// exactly one translation unit per program and must not be inline
// ([replacement.functions]); every bench is a single-TU binary and pulls
// this in through bench_common.hpp, so that holds by construction. The
// library itself never includes this header — test and example binaries
// keep the default allocator.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace kmmbench {

namespace detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};
}

/// Number of operator-new calls since program start (monotonic; sample
/// before/after a region and subtract).
inline std::uint64_t alloc_count() noexcept {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace kmmbench

// GCC's new/delete pairing heuristic can't see that the replacement new
// below is malloc-backed, so free() in the replacement delete is exactly
// matched — silence the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  kmmbench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  kmmbench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  if (void* p = std::aligned_alloc(al, rounded != 0 ? rounded : al)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
