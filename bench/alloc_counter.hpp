#pragma once
// Counting-allocator hook for bench binaries.
//
// Replaces the global operator new/delete with malloc/free wrappers that
// bump an atomic counter, so benches can report allocations per superstep
// and the scaling JSON can distinguish "faster because parallel" from
// "faster because fewer mallocs". The wrappers also track live and peak
// heap bytes (malloc_usable_size on glibc), which is how bench_ingest
// measures the streamed-vs-materialized peak-memory gap without an OS RSS
// probe. Replacement operators must be defined in exactly one translation
// unit per program and must not be inline ([replacement.functions]); every
// bench is a single-TU binary and pulls this in through bench_common.hpp,
// so that holds by construction. The library itself never includes this
// header — test and example binaries keep the default allocator.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_usable_size
#endif

namespace kmmbench {

namespace detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};
inline std::atomic<std::uint64_t> g_heap_bytes{0};       // live heap bytes
inline std::atomic<std::uint64_t> g_peak_heap_bytes{0};  // high-water mark

inline std::uint64_t usable_size(void* p) noexcept {
#if defined(__GLIBC__)
  return static_cast<std::uint64_t>(malloc_usable_size(p));
#else
  (void)p;
  return 0;  // byte columns degrade to 0; alloc counts still work
#endif
}

inline void note_alloc(void* p) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t sz = usable_size(p);
  const std::uint64_t live = g_heap_bytes.fetch_add(sz, std::memory_order_relaxed) + sz;
  std::uint64_t peak = g_peak_heap_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_heap_bytes.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

inline void note_free(void* p) noexcept {
  if (p != nullptr) g_heap_bytes.fetch_sub(usable_size(p), std::memory_order_relaxed);
}
}  // namespace detail

/// Number of operator-new calls since program start (monotonic; sample
/// before/after a region and subtract).
inline std::uint64_t alloc_count() noexcept {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

/// Live heap bytes right now (usable sizes, so slightly above requested).
inline std::uint64_t heap_bytes() noexcept {
  return detail::g_heap_bytes.load(std::memory_order_relaxed);
}

/// High-water mark of heap_bytes() since start or the last reset.
inline std::uint64_t peak_heap_bytes() noexcept {
  return detail::g_peak_heap_bytes.load(std::memory_order_relaxed);
}

/// Restart the high-water mark at the current live size, so a region's peak
/// can be measured as reset_peak_heap(); work(); peak_heap_bytes().
inline void reset_peak_heap() noexcept {
  detail::g_peak_heap_bytes.store(heap_bytes(), std::memory_order_relaxed);
}

}  // namespace kmmbench

// GCC's new/delete pairing heuristic can't see that the replacement new
// below is malloc-backed, so free() in the replacement delete is exactly
// matched — silence the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size != 0 ? size : 1)) {
    kmmbench::detail::note_alloc(p);
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  const auto al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  if (void* p = std::aligned_alloc(al, rounded != 0 ? rounded : al)) {
    kmmbench::detail::note_alloc(p);
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete[](void* p) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete(void* p, std::size_t) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { kmmbench::detail::note_free(p); std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { kmmbench::detail::note_free(p); std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
