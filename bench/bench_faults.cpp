// Fault-plane overhead: what does attaching the recovery machinery cost
// when nothing ever fails?
//
// Two claims pinned here:
//   * a FaultPlane with checkpointing off (empty schedule, no
//     always_checkpoint) adds ZERO steady-state allocations to the superstep
//     loop — the plane rides the runtime's always-sharded path, whose
//     buffers are all warm after the first few steps (asserted; the bench
//     exits nonzero on violation);
//   * checkpoint cadence C trades wall-clock overhead against replay depth:
//     C=1 snapshots every superstep (max overhead, zero replay), C=64
//     amortizes to near-baseline. The measured wall/allocs/words columns at
//     C in {1, 8, 64} are the trade-off table ROADMAP's fault plane cites;
//   * the durable tee (src/durable/) prices process-death insurance: the
//     same cadences with every checkpoint ALSO committed to disk as a
//     checksummed resume frame, fsync on (crash-consistent) and off (page
//     cache only) — the fsync column is the real cost of durability.
//
// Columns land in BENCH_faults.json via bench_common's BenchJson.

#include <unistd.h>

#include <span>

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

/// Checkpointable k-machine ring: every machine folds its inbox into a
/// running value and forwards a token each superstep. Cross-step state is
/// (value, steps) per machine; the snapshot is deliberately small so the
/// measured cadence overhead is the plane's bookkeeping, not serialization
/// bandwidth.
class RingProgram final : public kmm::MachineProgram {
 public:
  explicit RingProgram(kmm::MachineId k) : k_(k), value_(k, 0), steps_(k, 0) {}

  void on_superstep(kmm::MachineId self, std::span<const kmm::Message> inbox,
                    kmm::Outbox& out) override {
    for (const kmm::Message& m : inbox) value_[self] = split(value_[self], m.payload()[0]);
    out.send((self + 1) % k_, 1, {split(value_[self] + steps_[self], self)}, 64);
    ++steps_[self];
  }
  [[nodiscard]] bool checkpointable() const override { return true; }
  void snapshot(kmm::MachineId m, kmm::WordWriter& w) override {
    w.u64(value_[m]).u64(steps_[m]);
  }
  void restore(kmm::MachineId m, kmm::WordReader& r) override {
    value_[m] = r.u64();
    steps_[m] = r.u64();
  }

 private:
  kmm::MachineId k_;
  std::vector<std::uint64_t> value_;
  std::vector<std::uint64_t> steps_;
};

struct FaultBenchRun {
  double wall_ms = 0.0;
  std::uint64_t steady_allocs = 0;  // operator-new calls after warmup
  kmm::FaultStats fault;
  kmm::DurableStore::Stats durable;
};

constexpr kmm::MachineId kMachines = 16;
constexpr std::size_t kWarmupSteps = 128;
constexpr std::size_t kSteadySteps = 512;

/// Drive the ring for warmup + steady supersteps; allocations are counted
/// over the steady window only (warm buffers are the contract, cold-start
/// allocation is not).
FaultBenchRun drive(kmm::FaultPlane* plane) {
  kmm::Cluster cluster(kmm::ClusterConfig{kMachines, 64});
  RingProgram program(kMachines);
  kmm::RuntimeConfig rcfg;
  rcfg.threads = 1;
  rcfg.fault = plane;
  kmm::Runtime rt(cluster, rcfg);

  for (std::size_t s = 0; s < kWarmupSteps; ++s) (void)rt.step(program);
  const std::uint64_t a0 = alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < kSteadySteps; ++s) (void)rt.step(program);
  const auto t1 = std::chrono::steady_clock::now();

  FaultBenchRun run;
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  run.steady_allocs = alloc_count() - a0;
  if (plane != nullptr) {
    run.fault = plane->stats();
    if (plane->durable_store() != nullptr) run.durable = plane->durable_store()->stats();
  }
  return run;
}

void report(BenchJson& json, const char* mode, unsigned cadence, const FaultBenchRun& r,
            double baseline_ms) {
  const double per_step_us = r.wall_ms * 1e3 / static_cast<double>(kSteadySteps);
  std::printf("%-14s cadence=%-3u %9.2f ms %8.2f us/step %7.2fx vs off %8llu allocs "
              "%8llu ckpts %10llu words\n",
              mode, cadence, r.wall_ms, per_step_us,
              baseline_ms > 0.0 ? r.wall_ms / baseline_ms : 0.0,
              static_cast<unsigned long long>(r.steady_allocs),
              static_cast<unsigned long long>(r.fault.checkpoints),
              static_cast<unsigned long long>(r.fault.checkpoint_words));
  char rec[320];
  std::snprintf(rec, sizeof(rec),
                "{\"mode\": \"%s\", \"cadence\": %u, \"k\": %u, \"steady_steps\": %zu, "
                "\"wall_ms\": %.3f, \"steady_allocs\": %llu, \"checkpoints\": %llu, "
                "\"checkpoint_words\": %llu}",
                mode, cadence, kMachines, kSteadySteps, r.wall_ms,
                static_cast<unsigned long long>(r.steady_allocs),
                static_cast<unsigned long long>(r.fault.checkpoints),
                static_cast<unsigned long long>(r.fault.checkpoint_words));
  json.record_raw(rec);
}

}  // namespace

int main() {
  banner("fault plane: checkpoint cadence overhead",
         "an attached-but-silent fault plane must cost nothing at steady "
         "state (0 allocs/step); checkpoint cadence C trades per-step "
         "overhead against replay depth");

  BenchJson json("faults");
  const kmm::FaultSchedule empty(1);  // no profile, no events

  const FaultBenchRun detached = drive(nullptr);
  report(json, "detached", 0, detached, 0.0);

  kmm::FaultPlane off_plane(empty);
  const FaultBenchRun off = drive(&off_plane);
  report(json, "ckpt-off", 0, off, detached.wall_ms);

  for (const unsigned cadence : {1u, 8u, 64u}) {
    kmm::FaultPlaneConfig pcfg;
    pcfg.checkpoint_every = cadence;
    pcfg.always_checkpoint = true;
    kmm::FaultPlane plane(empty, pcfg);
    const FaultBenchRun run = drive(&plane);
    report(json, "ckpt-on", cadence, run, detached.wall_ms);
  }

  // Durable tee: every cadence checkpoint also lands on disk as a resume
  // frame. Each cell gets its own fresh directory so commit counts and
  // pruning are independent.
  for (const bool fsync : {false, true}) {
    for (const unsigned cadence : {1u, 8u, 64u}) {
      char dir[128];
      std::snprintf(dir, sizeof(dir), "bench_durable_%s_c%u_%d",
                    fsync ? "fsync" : "nofsync", cadence, static_cast<int>(::getpid()));
      kmm::DurableStore store({dir, fsync, /*keep_generations=*/3, 0});
      kmm::FaultPlaneConfig pcfg;
      pcfg.checkpoint_every = cadence;
      kmm::FaultPlane plane(empty, pcfg);
      plane.set_durable_store(&store);
      const FaultBenchRun run = drive(&plane);
      report(json, fsync ? "durable-fsync" : "durable", cadence, run, detached.wall_ms);
      std::printf("  %s cadence=%u: %llu commits, %llu bytes, %llu pruned\n",
                  fsync ? "durable-fsync" : "durable", cadence,
                  static_cast<unsigned long long>(run.durable.commits),
                  static_cast<unsigned long long>(run.durable.bytes_written),
                  static_cast<unsigned long long>(run.durable.pruned));
      char extra[200];
      std::snprintf(extra, sizeof(extra),
                    "{\"mode\": \"%s-io\", \"cadence\": %u, \"fsync\": %s, "
                    "\"durable_commits\": %llu, \"durable_bytes\": %llu, \"pruned\": %llu}",
                    fsync ? "durable-fsync" : "durable", cadence, fsync ? "true" : "false",
                    static_cast<unsigned long long>(run.durable.commits),
                    static_cast<unsigned long long>(run.durable.bytes_written),
                    static_cast<unsigned long long>(run.durable.pruned));
      json.record_raw(extra);
    }
  }

  if (off.steady_allocs != 0) {
    std::printf("FAIL: silent fault plane allocated %llu times in the steady window "
                "(contract: 0)\n",
                static_cast<unsigned long long>(off.steady_allocs));
    return 1;
  }
  std::printf("silent fault plane steady-state allocations: 0 (ok)\n");
  return 0;
}
