// E3 (Theorem 2a): MST in O~(n/k^2) rounds under the relaxed output
// criterion, paying an extra O(log n) factor for the MWOE elimination loop.
//
// Prints rounds(n, k), the elimination-iteration counts (the Section 3.1
// log factor), verification against Kruskal, and slopes in k, plus the
// src/runtime/ thread scaling of the simulation wall-clock. Every run is
// appended to BENCH_mst_scaling.json.

#include "bench_common.hpp"

using namespace kmmbench;

int main() {
  banner("E3: MST scaling (Theorem 2a)",
         "O~(n/k^2) rounds; each edge output by >= 1 machine; exact MST");
  BenchJson json("mst_scaling");

  const std::vector<std::size_t> ns{4096, 16384};
  const std::vector<MachineId> ks{4, 8, 16, 32};

  std::printf("%6s %4s %10s %12s %10s %10s %6s %9s\n", "n", "k", "rounds", "rk2/n",
              "elim-avg", "elim-max", "exact", "wall_ms");
  for (const std::size_t n : ns) {
    Rng rng(split(21, n));
    const Graph g = weighted_unique(gen::connected_gnm(n, 3 * n, rng), split(22, n));
    const Weight expected = ref::msf_weight(g);
    const std::uint64_t lg = bits_for(n);
    std::vector<double> kd, rounds, kd_regime, rounds_regime;
    for (const MachineId k : ks) {
      const auto timed = run_mst_timed(g, k, split(23, n * 100 + k));
      const auto& res = timed.result;
      Accumulator elim;
      for (const auto& phase : res.phases) elim.add(phase.elimination_iterations);
      Weight got = 0;
      for (const auto& e : res.mst_edges()) got += e.w;
      std::printf("%6zu %4u %10llu %12.1f %10.1f %10.0f %6s %9.1f\n", n, k,
                  static_cast<unsigned long long>(res.stats.rounds),
                  static_cast<double>(res.stats.rounds) * k * k / n, elim.mean(),
                  elim.max(), got == expected ? "yes" : "NO", timed.wall_ms);
      json.record("connected_gnm(3n)", n, g.num_edges(), k, 1, res, timed.wall_ms);
      kd.push_back(k);
      rounds.push_back(static_cast<double>(res.stats.rounds));
      if (n / (static_cast<std::size_t>(k) * k) >= lg) {
        kd_regime.push_back(k);
        rounds_regime.push_back(static_cast<double>(res.stats.rounds));
      }
    }
    std::printf("  n=%zu:", n);
    print_slope("MST rounds vs k, all points", kd, rounds);
    if (kd_regime.size() >= 2) {
      std::printf("  n=%zu:", n);
      print_slope("MST rounds vs k, n/k^2 >= log2(n)", kd_regime, rounds_regime);
    }
  }

  // MST vs plain connectivity: the elimination loop costs ~log n extra.
  std::printf("\nMST / connectivity round ratio at n=16384 (the Section 3.1 log factor):\n");
  Rng rng(31);
  const Graph g = weighted_unique(gen::connected_gnm(16384, 3 * 16384, rng), 33);
  for (const MachineId k : {MachineId{8}, MachineId{16}}) {
    const auto mst = run_mst(g, k, split(35, k));
    const auto conn = run_connectivity(g, k, split(37, k));
    std::printf("  k=%2u: mst=%llu conn=%llu ratio=%.2f (log2 n = %u)\n", k,
                static_cast<unsigned long long>(mst.stats.rounds),
                static_cast<unsigned long long>(conn.stats.rounds),
                static_cast<double>(mst.stats.rounds) / static_cast<double>(conn.stats.rounds),
                static_cast<unsigned>(bits_for(16384)));
  }

  // Runtime thread scaling (ledger is thread-invariant; wall-clock is not).
  std::printf("\nruntime thread scaling, connected_gnm(3n) n=65536, k=16:\n");
  {
    const std::size_t n = 65536;
    Rng grng(split(41, n));
    const Graph wg = weighted_unique(gen::connected_gnm(n, 3 * n, grng), split(42, n));
    if (!run_thread_scaling("connected_gnm(3n)-threads", n, wg.num_edges(), 16, json,
                            [&](unsigned threads) {
                              return run_mst_timed(wg, 16, split(43, n), threads);
                            })) {
      return 1;
    }
  }
  return 0;
}
