// Ingest-plane comparison: materialize the global graph and then shard it
// (the classic input pipeline) vs stream the generator chunks shard-direct
// (stream_ingest — the global edge list and Graph are never built).
//
// The claim this bench pins: the streamed build's peak heap is a large
// constant factor (>= 2x at n = 10^7) below the materialized build's,
// because the materialized path must hold the full edge list + global CSR +
// per-machine shards at once while the streamed path holds only a per-vertex
// counter array and the shards themselves. That factor is what opens the
// n >= 10^8 tier on one box (see ISSUE/ROADMAP: the k-machine model's whole
// premise is that no single machine can hold the graph).
//
// Columns: build wall ms, generated edges/s, and the build's peak heap
// delta (alloc_counter high-water minus the live bytes at build start).
// The pre-change pipeline's numbers are frozen in
// bench/baselines/BENCH_ingest.pre-stream.json.

#include <cstring>

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

struct BuildMeasurement {
  double wall_ms = 0.0;
  std::uint64_t peak_bytes = 0;  // heap high-water delta during the build
  std::size_t edges = 0;         // undirected edges in the built shards
};

template <typename Fn>
BuildMeasurement measure_build(const Fn& fn) {
  BuildMeasurement out;
  const std::uint64_t live0 = heap_bytes();
  reset_peak_heap();
  const auto t0 = std::chrono::steady_clock::now();
  out.edges = fn();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  out.peak_bytes = peak_heap_bytes() - live0;
  return out;
}

void report(BenchJson& json, const char* family, const char* mode, std::size_t n,
            std::size_t m, MachineId k, const BuildMeasurement& b) {
  const double edges_per_s = b.wall_ms > 0.0
                                 ? static_cast<double>(b.edges) / (b.wall_ms * 1e-3)
                                 : 0.0;
  std::printf("%6s %-12s n=%-9zu edges=%-9zu %10.1f ms %12.0f edges/s %10.1f MB peak\n",
              family, mode, n, b.edges, b.wall_ms, edges_per_s,
              static_cast<double>(b.peak_bytes) / (1024.0 * 1024.0));
  char rec[256];
  std::snprintf(rec, sizeof(rec),
                "{\"family\": \"%s\", \"mode\": \"%s\", \"n\": %zu, \"m\": %zu, "
                "\"edges\": %zu, \"k\": %u, \"build_ms\": %.3f, "
                "\"edges_per_s\": %.0f, \"peak_heap_bytes\": %llu}",
                family, mode, n, m, b.edges, k, b.wall_ms, edges_per_s,
                static_cast<unsigned long long>(b.peak_bytes));
  json.record_raw(rec);
}

/// One streamed-vs-materialized pair; returns peak ratio (materialized /
/// streamed, 0 when degenerate).
double compare(BenchJson& json, const char* family, std::size_t n, MachineId k) {
  const std::size_t m = 3 * n;
  gen::ParGenConfig cfg;
  cfg.seed = 4242;
  cfg.threads = 1;
  const bool rmat = std::strcmp(family, "rmat") == 0;
  const VertexPartition part = VertexPartition::random(n, k, split(cfg.seed, 0x9a97));

  const auto materialized = measure_build([&] {
    const Graph g = rmat ? gen::rmat_par(n, m, cfg) : gen::gnm_par(n, m, cfg);
    const DistributedGraph dg(g, part);
    return dg.num_edges();
  });
  report(json, family, "materialized", n, m, k, materialized);

  const auto streamed = measure_build([&] {
    StreamIngestOptions iopts;
    iopts.threads = cfg.threads;
    const DistributedGraph dg =
        stream_ingest(n, part,
                      rmat ? gen::rmat_stream_source(n, m, cfg)
                           : gen::gnm_stream_source(n, m, cfg),
                      iopts)
            .value();
    return dg.num_edges();
  });
  report(json, family, "streamed", n, m, k, streamed);

  if (streamed.peak_bytes == 0) return 0.0;
  const double ratio = static_cast<double>(materialized.peak_bytes) /
                       static_cast<double>(streamed.peak_bytes);
  std::printf("       -> peak memory ratio materialized/streamed: %.2fx\n\n", ratio);
  return ratio;
}

}  // namespace

int main() {
  banner("ingest: shard-direct streaming vs materialize-then-shard",
         "the k-machine model assumes no machine holds the whole graph; "
         "streamed ingest keeps the simulator honest about it (>= 2x lower "
         "peak heap at n = 10^7)");

  BenchJson json("ingest");
  const MachineId k = 32;

  compare(json, "gnm", 1'000'000, k);
  compare(json, "rmat", 1'000'000, k);
  const double big_ratio = compare(json, "gnm", 10'000'000, k);

  if (big_ratio < 2.0) {
    std::printf("FAIL: streamed ingest peak not >= 2x below materialized at n=10^7 "
                "(got %.2fx)\n", big_ratio);
    return 1;
  }
  std::printf("streamed ingest peak is %.2fx below materialized at n=10^7 (>= 2x: ok)\n",
              big_ratio);
  return 0;
}
