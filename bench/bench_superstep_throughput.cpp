// Superstep message-plane throughput: how many messages and payload words
// per second the simulator's send -> merge -> deliver pipeline moves, and
// how many heap allocations one superstep costs, across payload sizes and
// thread counts.
//
// This is the microbench behind the allocation-free message plane: the
// k-machine cost model makes local computation free, so the simulator's
// wall-clock is dominated by exactly this path. Every record reports
// msgs/s, words/s, and allocations/superstep (via the counting-allocator
// hook in alloc_counter.hpp), measured in steady state after a warmup so
// capacity-retaining buffers are warm.

#include <array>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kmm;
using namespace kmmbench;

constexpr MachineId kMachines = 16;
constexpr std::size_t kFanout = 48;       // messages per machine per superstep
constexpr std::size_t kWarmupSteps = 16;  // let buffers reach steady-state capacity
constexpr std::size_t kMeasureSteps = 192;

struct ThroughputRow {
  std::size_t payload_words;
  unsigned threads;
  double wall_ms;
  double msgs_per_sec;
  double words_per_sec;
  double allocs_per_superstep;
};

/// One synthetic superstep: every machine reads its inbox (summing payload
/// words so delivery isn't dead code) and sends kFanout messages of
/// `payload_words` words to a rotating set of destinations.
ThroughputRow run_config(std::size_t payload_words, unsigned threads) {
  Cluster cluster(ClusterConfig{.k = kMachines, .bandwidth_bits = 1 << 16});
  Runtime rt(cluster, RuntimeConfig{.threads = threads});

  std::vector<std::uint64_t> sink(kMachines, 0);
  // Per-machine scratch payload buffers (machine-indexed so the handler is
  // race-free under threads > 1); send() copies, so one buffer per machine
  // serves every message.
  std::vector<std::array<std::uint64_t, 16>> scratch(kMachines);
  std::size_t step_index = 0;

  const auto handler = [&](MachineId self, std::span<const Message> inbox, Outbox& out) {
    std::uint64_t acc = 0;
    for (const auto& msg : inbox) {
      for (const std::uint64_t w : msg.payload()) acc += w;
    }
    sink[self] += acc;
    auto& payload = scratch[self];
    for (std::size_t j = 0; j < kFanout; ++j) {
      const auto dst = static_cast<MachineId>((self + 1 + (step_index + j) % (kMachines - 1)) %
                                              kMachines);
      for (std::size_t w = 0; w < payload_words; ++w) {
        payload[w] = static_cast<std::uint64_t>(self) * 1315423911u + j * 2654435761u + w;
      }
      out.send(dst, /*tag=*/1, std::span<const std::uint64_t>(payload.data(), payload_words),
               /*bits=*/0);
    }
  };

  for (std::size_t s = 0; s < kWarmupSteps; ++s, ++step_index) rt.step(handler);

  const auto a0 = alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < kMeasureSteps; ++s, ++step_index) rt.step(handler);
  const auto t1 = std::chrono::steady_clock::now();
  const auto allocs = alloc_count() - a0;

  // One drain step so the last deliveries are consumed (outside the timer).
  rt.step([&](MachineId self, std::span<const Message> inbox, Outbox&) {
    for (const auto& msg : inbox) sink[self] += msg.payload().size();
  });

  const double wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double msgs = static_cast<double>(kMachines * kFanout * kMeasureSteps);
  return ThroughputRow{payload_words, threads, wall_ms, msgs / (wall_ms / 1000.0),
                       msgs * static_cast<double>(payload_words) / (wall_ms / 1000.0),
                       static_cast<double>(allocs) / static_cast<double>(kMeasureSteps)};
}

}  // namespace

int main() {
  banner("superstep message-plane throughput",
         "local computation is free (Section 1.1) — so delivery must be too: "
         "messages/s, words/s, and allocations/superstep of the send->deliver path");

  BenchJson json("superstep_throughput");
  std::printf("k=%u, %zu msgs/machine/superstep, %zu measured supersteps\n\n",
              kMachines, kFanout, kMeasureSteps);
  std::printf("%14s %8s %9s %14s %14s %14s\n", "payload_words", "threads", "wall_ms",
              "msgs/s", "words/s", "allocs/sstep");

  for (const std::size_t payload_words : {1u, 2u, 4u, 16u}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const auto row = run_config(payload_words, threads);
      std::printf("%14zu %8u %9.1f %14.0f %14.0f %14.1f\n", row.payload_words,
                  row.threads, row.wall_ms, row.msgs_per_sec, row.words_per_sec,
                  row.allocs_per_superstep);
      char buf[384];
      std::snprintf(buf, sizeof(buf),
                    "{\"payload_words\": %zu, \"threads\": %u, \"k\": %u, "
                    "\"supersteps\": %zu, \"messages_per_superstep\": %zu, "
                    "\"wall_ms\": %.3f, \"msgs_per_sec\": %.0f, "
                    "\"words_per_sec\": %.0f, \"allocs_per_superstep\": %.1f}",
                    row.payload_words, row.threads, kMachines, kMeasureSteps,
                    static_cast<std::size_t>(kMachines) * kFanout, row.wall_ms,
                    row.msgs_per_sec, row.words_per_sec, row.allocs_per_superstep);
      json.record_raw(buf);
    }
  }
  return 0;
}
