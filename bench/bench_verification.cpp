// E6 (Theorem 4): all eight verification problems run in O~(n/k^2) rounds.
//
// For each problem: a yes-instance and a no-instance at n=1024, k in
// {8, 16, 32}; prints verdicts and normalized rounds.

#include <functional>

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

struct Problem {
  const char* name;
  bool expected_yes;
  std::function<VerifyResult(Cluster&, const DistributedGraph&)> run;
};

}  // namespace

int main() {
  banner("E6: verification problems (Theorem 4)",
         "SCS, cut, s-t connectivity, edge-on-all-paths, s-t cut, cycle, "
         "e-cycle, bipartiteness — all O~(n/k^2) rounds");

  BenchJson json("verification");
  const std::size_t n = 1024;
  Rng rng(71);
  const Graph connected = gen::connected_gnm(n, 3 * n, rng);
  const Graph pathy = gen::path(n);
  const Graph evenc = gen::cycle(n);
  const Graph oddc = gen::cycle(n + 1);
  const Graph two = gen::multi_component(n, 2 * n, 2, rng);

  std::vector<std::pair<Vertex, Vertex>> tree_edges;
  for (const auto& e : ref::minimum_spanning_forest(connected)) {
    tree_edges.emplace_back(e.u, e.v);
  }
  auto tree_minus_one = tree_edges;
  tree_minus_one.pop_back();

  const BoruvkaConfig cfg{.seed = 73};
  const std::vector<std::pair<const Graph*, Problem>> problems = {
      {&connected, {"scs yes (spanning tree)", true,
                    [&](Cluster& c, const DistributedGraph& d) {
                      return verify_spanning_connected_subgraph(c, d, tree_edges, cfg);
                    }}},
      {&connected, {"scs no (tree minus edge)", false,
                    [&](Cluster& c, const DistributedGraph& d) {
                      return verify_spanning_connected_subgraph(c, d, tree_minus_one, cfg);
                    }}},
      {&pathy, {"cut yes (middle edge)", true,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_cut(c, d, {{n / 2, n / 2 + 1}}, cfg);
                }}},
      {&evenc, {"cut no (one cycle edge)", false,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_cut(c, d, {{0, 1}}, cfg);
                }}},
      {&connected, {"st-conn yes", true,
                    [&](Cluster& c, const DistributedGraph& d) {
                      return verify_st_connectivity(c, d, 1, n - 2, cfg);
                    }}},
      {&two, {"st-conn no (components)", false,
              [&](Cluster& c, const DistributedGraph& d) {
                return verify_st_connectivity(c, d, 0, n - 1, cfg);
              }}},
      {&pathy, {"edge-on-all-paths yes", true,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_edge_on_all_paths(c, d, 0, n - 1, n / 2, n / 2 + 1, cfg);
                }}},
      {&evenc, {"edge-on-all-paths no", false,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_edge_on_all_paths(c, d, 0, n / 2, 5, 6, cfg);
                }}},
      {&pathy, {"st-cut yes", true,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_st_cut(c, d, 0, n - 1, {{n / 3, n / 3 + 1}}, cfg);
                }}},
      {&evenc, {"st-cut no (half a cut)", false,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_st_cut(c, d, 0, n / 2, {{0, 1}}, cfg);
                }}},
      {&evenc, {"cycle yes (cycle graph)", true,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_cycle_containment(c, d, cfg);
                }}},
      {&pathy, {"cycle no (path graph)", false,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_cycle_containment(c, d, cfg);
                }}},
      {&evenc, {"e-cycle yes", true,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_e_cycle_containment(c, d, 7, 8, cfg);
                }}},
      {&pathy, {"e-cycle no (bridge)", false,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_e_cycle_containment(c, d, 7, 8, cfg);
                }}},
      {&evenc, {"bipartite yes (even cycle)", true,
                [&](Cluster& c, const DistributedGraph& d) {
                  return verify_bipartiteness(c, d, cfg);
                }}},
      {&oddc, {"bipartite no (odd cycle)", false,
               [&](Cluster& c, const DistributedGraph& d) {
                 return verify_bipartiteness(c, d, cfg);
               }}},
  };

  std::printf("%-28s %4s %8s %10s %10s\n", "problem", "k", "verdict", "rounds", "rk2/n");
  bool all_ok = true;
  for (const MachineId k : {MachineId{8}, MachineId{16}, MachineId{32}}) {
    for (const auto& [graph, problem] : problems) {
      Cluster cluster(ClusterConfig::for_graph(graph->num_vertices(), k));
      const DistributedGraph dg(
          *graph, VertexPartition::random(graph->num_vertices(), k, split(79, k)));
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = problem.run(cluster, dg);
      const auto t1 = std::chrono::steady_clock::now();
      const bool ok = res.ok == problem.expected_yes;
      all_ok &= ok;
      std::printf("%-28s %4u %8s %10llu %10.1f%s\n", problem.name, k,
                  res.ok ? "yes" : "no", static_cast<unsigned long long>(res.stats.rounds),
                  static_cast<double>(res.stats.rounds) * k * k /
                      static_cast<double>(graph->num_vertices()),
                  ok ? "" : "   <-- WRONG VERDICT");
      json.record(problem.name, graph->num_vertices(), graph->num_edges(), k, 1, res.stats,
                  0, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  std::printf("\nall verdicts correct: %s\n", all_ok ? "yes" : "NO");

  // Runtime thread scaling: every verifier reduces to connectivity runs on
  // the parallel runtime (BoruvkaConfig::threads). Bipartiteness is the
  // heaviest reduction (two full connectivity runs, one on the 2n-vertex
  // double cover), so it is the scaling probe. The ledger must stay
  // thread-invariant; only wall-clock may change.
  std::printf("\nruntime thread scaling, bipartiteness on gnm(8192, 3n), k=16:\n");
  {
    const std::size_t big_n = 8192;
    Rng srng(83);
    const Graph g = gen::connected_gnm(big_n, 3 * big_n, srng);
    if (!run_thread_scaling_stats(
            "bipartite-threads", big_n, g.num_edges(), 16, json, [&](unsigned threads) {
              Cluster cluster(ClusterConfig::for_graph(big_n, 16));
              const DistributedGraph dg(g, VertexPartition::random(big_n, 16, 85));
              BoruvkaConfig vcfg{.seed = 87};
              vcfg.threads = threads;
              return time_stats([&] { return verify_bipartiteness(cluster, dg, vcfg); });
            })) {
      return 1;
    }
  }
  return all_ok ? 0 : 1;
}
