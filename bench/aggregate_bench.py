#!/usr/bin/env python3
"""Merge every BENCH_*.json in a directory into one trajectory file.

Each bench binary writes BENCH_<name>.json ({"bench": <name>,
"hardware_concurrency": <cores>, "records": [...]}); this tool folds them
into a single BENCH_trajectory.json keyed by bench name, so CI can upload
one artifact per commit and the perf dashboard can diff trajectories across
commits without scraping per-bench files. Each trajectory entry is
{"hardware_concurrency": ..., "records": [...]} — the core count (and the
per-record handler_ms / deliver_ms / reduce_ms phase columns and the
peak_heap_bytes memory column, carried verbatim inside records) is what
lets the dashboard tell a 1-core runner's expected ~1x speedups apart from
real regressions, and track the ingest plane's memory footprint (see
bench_ingest: streamed vs materialized build) across commits.

Usage:
    python3 bench/aggregate_bench.py [--dir BUILD_DIR] [--out OUT.json]

Two input shapes are accepted:
  * BenchJson output: {"bench": <name>, "records": [...]}
  * google-benchmark --benchmark_out JSON: {"context": ..., "benchmarks":
    [...]} (e.g. bench_sketch); folded in as records under the file's
    BENCH_<name> stem with the microbench fields kept as-is.

Stdlib only; tolerant of missing benches (aggregates whatever is present)
but fails loudly on malformed JSON so CI can't silently upload a truncated
trajectory.
"""

import argparse
import glob
import json
import os
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    parser.add_argument("--out", default=None,
                        help="output path (default: <dir>/BENCH_trajectory.json)")
    args = parser.parse_args()

    out_path = args.out or os.path.join(args.dir, "BENCH_trajectory.json")
    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.abspath(p) != os.path.abspath(out_path)]
    if not paths:
        print(f"aggregate_bench: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 1

    benches = {}
    total_records = 0
    for path in paths:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        if "benchmarks" in data and "records" not in data:
            # google-benchmark output: keep each benchmark row as a record;
            # the core count lives in its context block.
            stem = os.path.basename(path)
            stem = stem.removeprefix("BENCH_").removesuffix(".json")
            name = data.get("bench", stem)
            records = data["benchmarks"]
            cores = data.get("context", {}).get("num_cpus")
        else:
            name = data.get("bench", os.path.basename(path))
            records = data.get("records", [])
            cores = data.get("hardware_concurrency")
        benches[name] = {"hardware_concurrency": cores, "records": records}
        total_records += len(records)
        print(f"  {os.path.basename(path)}: {len(records)} records")

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"benches": benches}, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(benches)} benches, {total_records} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
