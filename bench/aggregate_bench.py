#!/usr/bin/env python3
"""Merge every BENCH_*.json in a directory into one trajectory file.

Each bench binary writes BENCH_<name>.json ({"bench": <name>,
"hardware_concurrency": <cores>, "records": [...]}); this tool folds them
into a single BENCH_trajectory.json keyed by bench name, so CI can upload
one artifact per commit and the perf dashboard can diff trajectories across
commits without scraping per-bench files. Each trajectory entry is
{"hardware_concurrency": ..., "records": [...]} — the core count (and the
per-record handler_ms / deliver_ms / reduce_ms phase columns and the
peak_heap_bytes memory column, carried verbatim inside records) is what
lets the dashboard tell a 1-core runner's expected ~1x speedups apart from
real regressions, and track the ingest plane's memory footprint (see
bench_ingest: streamed vs materialized build) across commits.

Usage:
    python3 bench/aggregate_bench.py [--dir BUILD_DIR] [--out OUT.json]

Two input shapes are accepted:
  * BenchJson output: {"bench": <name>, "records": [...]}
  * google-benchmark --benchmark_out JSON: {"context": ..., "benchmarks":
    [...]} (e.g. bench_sketch); folded in as records under the file's
    BENCH_<name> stem with the microbench fields kept as-is.

Stdlib only; tolerant of missing benches (aggregates whatever is present)
but fails loudly on malformed JSON so CI can't silently upload a truncated
trajectory.

Serving gate: when the serving bench is present, its cancellation latency
must respect the cooperative-cancellation contract — a client cancel lands
at the next superstep boundary, so cancel p95 may not exceed one worst-case
superstep's wall time (plus a scheduler-noise floor for loaded CI runners).
A violation fails the aggregation (exit 1).
"""

import argparse
import glob
import json
import os
import sys

# Scheduler/sleep noise allowance on top of one worst-case superstep: the
# cancelled executor still has to wake, unwind, and resolve the ticket, and
# loaded CI runners add preemption jitter that has nothing to do with the
# cancellation design.
CANCEL_GATE_FLOOR_US = 5000.0


def check_serving_gate(benches: dict) -> bool:
    """Cancellation latency <= 1 worst-case superstep (p95) — see module doc."""
    serving = benches.get("serving")
    if serving is None:
        return True
    ok = True
    for record in serving.get("records", []):
        if record.get("family") != "serving_cancel":
            continue
        cancel_p95 = float(record.get("cancel_p95_us", 0.0))
        superstep_max = float(record.get("superstep_max_us", 0.0))
        bound = superstep_max + CANCEL_GATE_FLOOR_US
        verdict = "ok" if cancel_p95 <= bound else "VIOLATION"
        print(f"  serving cancel gate: cancel_p95={cancel_p95:.0f}us <= "
              f"superstep_max={superstep_max:.0f}us + floor={CANCEL_GATE_FLOOR_US:.0f}us"
              f" -> {verdict}")
        if cancel_p95 > bound:
            ok = False
    if not ok:
        print("aggregate_bench: serving cancellation-latency gate failed — a "
              "cancel took more than one worst-case superstep to land",
              file=sys.stderr)
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    parser.add_argument("--out", default=None,
                        help="output path (default: <dir>/BENCH_trajectory.json)")
    args = parser.parse_args()

    out_path = args.out or os.path.join(args.dir, "BENCH_trajectory.json")
    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    paths = [p for p in paths if os.path.abspath(p) != os.path.abspath(out_path)]
    if not paths:
        print(f"aggregate_bench: no BENCH_*.json under {args.dir}", file=sys.stderr)
        return 1

    benches = {}
    total_records = 0
    for path in paths:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        if "benchmarks" in data and "records" not in data:
            # google-benchmark output: keep each benchmark row as a record;
            # the core count lives in its context block.
            stem = os.path.basename(path)
            stem = stem.removeprefix("BENCH_").removesuffix(".json")
            name = data.get("bench", stem)
            records = data["benchmarks"]
            cores = data.get("context", {}).get("num_cpus")
        else:
            name = data.get("bench", os.path.basename(path))
            records = data.get("records", [])
            cores = data.get("hardware_concurrency")
        benches[name] = {"hardware_concurrency": cores, "records": records}
        total_records += len(records)
        print(f"  {os.path.basename(path)}: {len(records)} records")

    gate_ok = check_serving_gate(benches)

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"benches": benches}, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} ({len(benches)} benches, {total_records} records)")
    return 0 if gate_ok else 1


if __name__ == "__main__":
    sys.exit(main())
