// E11 (Lemma 2, Section 2.3): l0-sampler microbenchmarks — update, combine,
// query, power-table construction — plus size/success-rate counters, via
// google-benchmark.

#include <benchmark/benchmark.h>

#include "kmm.hpp"

namespace {

using namespace kmm;

constexpr std::uint64_t kUniverse = 1ULL << 24;  // n = 4096 edge space

void BM_L0Update(benchmark::State& state) {
  L0Sampler s(kUniverse, L0Params::for_universe(kUniverse), 1);
  Rng rng(2);
  std::uint64_t i = 0;
  for (auto _ : state) {
    s.update(rng.next_below(kUniverse), (i++ & 1) ? 1 : -1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_L0Update);

void BM_L0UpdateWithPowerTables(benchmark::State& state) {
  // The production path: GraphSketchBuilder precomputes r^(x*n+y).
  const std::size_t n = 4096;
  Rng rng(3);
  const Graph g = gen::gnm(n, 3 * n, rng);
  const DistributedGraph dg(g, VertexPartition::random(n, 4, 5));
  const GraphSketchBuilder builder(n, 7);
  std::vector<Vertex> part;
  for (Vertex v = 0; v < 64; ++v) part.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.sketch_part(dg, part));
  }
  std::size_t edges = 0;
  for (const Vertex v : part) edges += g.degree(v);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * edges));
  state.counters["edges_per_part"] = static_cast<double>(edges);
}
BENCHMARK(BM_L0UpdateWithPowerTables);

void BM_L0Combine(benchmark::State& state) {
  const auto params = L0Params::for_universe(kUniverse);
  L0Sampler a(kUniverse, params, 11), b(kUniverse, params, 11);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    a.update(rng.next_below(kUniverse), 1);
    b.update(rng.next_below(kUniverse), 1);
  }
  for (auto _ : state) {
    a.add(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_L0Combine);

void BM_L0Sample(benchmark::State& state) {
  const auto params = L0Params::for_universe(kUniverse);
  Rng rng(17);
  L0Sampler s(kUniverse, params, 19);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    s.update(rng.next_below(kUniverse), 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.sample());
  }
  state.counters["support"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_L0Sample)->Arg(1)->Arg(64)->Arg(4096);

void BM_BuilderPowerTables(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphSketchBuilder(n, ++seed));
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_BuilderPowerTables)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_SerializeRoundtrip(benchmark::State& state) {
  const auto params = L0Params::for_universe(kUniverse);
  Rng rng(23);
  L0Sampler s(kUniverse, params, 29);
  for (int i = 0; i < 500; ++i) s.update(rng.next_below(kUniverse), 1);
  for (auto _ : state) {
    WordWriter w;
    s.serialize(w);
    auto words = std::move(w).take();
    WordReader r(words);
    benchmark::DoNotOptimize(L0Sampler::deserialize(kUniverse, params, 29, r));
  }
  state.counters["wire_bits"] = static_cast<double>(s.wire_bits());
}
BENCHMARK(BM_SerializeRoundtrip);

// The two proxy-side merge paths, head to head: materialize-then-add (the
// pre-registry representation) vs wire-level add_serialized into a pooled
// accumulator (the engine's current path).
void BM_MergeDeserializeAdd(benchmark::State& state) {
  const auto params = L0Params::for_universe(kUniverse);
  Rng rng(37);
  L0Sampler src(kUniverse, params, 41);
  for (int i = 0; i < 500; ++i) src.update(rng.next_below(kUniverse), 1);
  WordWriter w;
  src.serialize(w);
  const auto words = std::move(w).take();
  L0Sampler acc(kUniverse, params, 41);
  for (auto _ : state) {
    WordReader r(words);
    acc.add(L0Sampler::deserialize(kUniverse, params, 41, r));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * words.size()));
}
BENCHMARK(BM_MergeDeserializeAdd);

void BM_MergeAddSerialized(benchmark::State& state) {
  const auto params = L0Params::for_universe(kUniverse);
  Rng rng(37);
  L0Sampler src(kUniverse, params, 41);
  for (int i = 0; i < 500; ++i) src.update(rng.next_below(kUniverse), 1);
  WordWriter w;
  src.serialize(w);
  const auto words = std::move(w).take();
  L0Sampler acc(kUniverse, params, 41);
  for (auto _ : state) {
    WordReader r(words);
    acc.add_serialized(r);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * words.size()));
}
BENCHMARK(BM_MergeAddSerialized);

// Success-rate + size report printed once after the timed benchmarks.
void BM_ReportQuality(benchmark::State& state) {
  int failures = 0;
  constexpr int kTrials = 2000;
  Rng rng(31);
  for (int trial = 0; trial < kTrials; ++trial) {
    L0Sampler s(kUniverse, L0Params::for_universe(kUniverse), split(37, trial));
    const int size = 1 + static_cast<int>(rng.next_below(2000));
    for (int i = 0; i < size; ++i) s.update(rng.next_below(kUniverse), 1);
    if (!s.sample().has_value()) ++failures;
  }
  for (auto _ : state) benchmark::DoNotOptimize(failures);
  state.counters["query_failure_rate"] =
      static_cast<double>(failures) / static_cast<double>(kTrials);
  state.counters["sketch_bits"] =
      static_cast<double>(L0Sampler(kUniverse, L0Params::for_universe(kUniverse), 1)
                              .wire_bits());
}
BENCHMARK(BM_ReportQuality)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
