// Borůvka compute-plane hotpath: the per-iteration sketch work the
// bandwidth model treats as free but wall-clock does not.
//
// Two sections:
//
//  1. sketch-merge plane — a synthetic proxy inbox: L component labels, each
//     receiving one serialized part-sketch from each of `kParts` machines per
//     iteration. The merge loop is exactly the engine's proxy-side summation
//     (label lookup -> accumulator -> cell-wise add of the serialized words);
//     reported as merge words/s and allocations/iteration, measured after a
//     warmup so capacity-retaining structures are warm.
//
//  2. full engine — connectivity and MST runs with allocations/superstep,
//     the end-to-end number the registry/pool rework moves.
//
// Compare against bench/baselines/BENCH_boruvka_hotpath.pre-registry.json
// (captured from the std::map + per-message-deserialize representation).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace kmm;
using namespace kmmbench;

constexpr std::size_t kSketchN = 2048;   // vertex count -> universe n^2
constexpr std::size_t kLabels = 64;      // distinct component labels per iteration
constexpr std::size_t kParts = 8;        // part-sketches per label (machines)
constexpr std::size_t kWarmupIters = 4;
constexpr std::size_t kMeasureIters = 64;

struct MergeRow {
  double wall_ms = 0.0;
  double words_per_sec = 0.0;
  double allocs_per_iteration = 0.0;
  std::uint64_t checksum = 0;  // keeps the merged sums observable
};

/// Build the synthetic serialized inbox once: kLabels * kParts messages of
/// [label, cells...] words, from real part sketches of a gnm graph.
std::vector<std::vector<std::uint64_t>> build_inbox(const GraphSketchBuilder& builder,
                                                    const DistributedGraph& dg) {
  std::vector<std::vector<std::uint64_t>> inbox;
  std::vector<Vertex> part;
  for (std::size_t label = 0; label < kLabels; ++label) {
    for (std::size_t p = 0; p < kParts; ++p) {
      part.clear();
      // Disjoint vertex slices so per-label sums model one component's parts.
      const std::size_t base = (label * kParts + p) * (kSketchN / (kLabels * kParts));
      for (std::size_t j = 0; j < kSketchN / (kLabels * kParts); ++j) {
        part.push_back(static_cast<Vertex>(base + j));
      }
      const L0Sampler sketch = builder.sketch_part(dg, part);
      WordWriter w;
      w.u64(label);
      sketch.serialize(w);
      inbox.push_back(std::move(w).take());
    }
  }
  return inbox;
}

/// One proxy-side merge pass over the inbox — the registry representation:
/// pooled accumulators behind a flat LabelRegistry, each incoming sketch's
/// cells added wire-level via add_serialized (no per-message deserialize).
MergeRow run_merge(const GraphSketchBuilder& builder,
                   const std::vector<std::vector<std::uint64_t>>& inbox) {
  MergeRow row;
  std::size_t total_words = 0;
  for (const auto& msg : inbox) total_words += msg.size() - 1;

  LabelRegistry<std::uint32_t> sums;
  sums.reset_universe(kLabels);
  SketchPool pool;

  const auto iteration = [&]() {
    sums.clear();
    pool.release_all();
    for (const auto& msg : inbox) {
      WordReader r(msg);
      const Label label = r.u64();
      bool created = false;
      std::uint32_t& idx = sums.get_or_create(label, created);
      if (created) {
        idx = pool.acquire_index(builder.universe(), builder.params(), builder.seed());
      }
      pool.at(idx).add_serialized(r);
    }
    sums.for_each_sorted([&](Label label, std::uint32_t idx) {
      row.checksum += pool.at(idx).is_zero() ? 0 : 1 + label;
    });
  };

  for (std::size_t i = 0; i < kWarmupIters; ++i) iteration();
  const auto a0 = alloc_count();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kMeasureIters; ++i) iteration();
  const auto t1 = std::chrono::steady_clock::now();
  row.allocs_per_iteration =
      static_cast<double>(alloc_count() - a0) / static_cast<double>(kMeasureIters);
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.words_per_sec = static_cast<double>(total_words * kMeasureIters) /
                      (row.wall_ms / 1000.0);
  return row;
}

}  // namespace

int main() {
  banner("Boruvka compute-plane hotpath",
         "the k-machine model charges only the wire (Section 1.1); the proxy-side "
         "sketch summation must therefore be allocation-free and memory-bound");

  BenchJson json("boruvka_hotpath");

  // Section 1: sketch-merge plane.
  Rng rng(5);
  const Graph g = gen::gnm(kSketchN, 3 * kSketchN, rng);
  const DistributedGraph dg(g, VertexPartition::random(kSketchN, kParts, 7));
  const GraphSketchBuilder builder(kSketchN, /*seed=*/11);
  const auto inbox = build_inbox(builder, dg);
  std::size_t words_per_msg = inbox.front().size() - 1;

  const auto merge = run_merge(builder, inbox);
  std::printf("\nsketch-merge plane: %zu labels x %zu parts, %zu words/sketch\n", kLabels,
              kParts, words_per_msg);
  std::printf("%12s %16s %18s %10s\n", "wall_ms", "merge_words/s", "allocs/iteration",
              "checksum");
  std::printf("%12.2f %16.0f %18.1f %10llu\n", merge.wall_ms, merge.words_per_sec,
              merge.allocs_per_iteration,
              static_cast<unsigned long long>(merge.checksum));
  {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\": \"sketch_merge\", \"labels\": %zu, \"parts\": %zu, "
                  "\"words_per_sketch\": %zu, \"iterations\": %zu, \"wall_ms\": %.3f, "
                  "\"merge_words_per_sec\": %.0f, \"allocs_per_iteration\": %.1f}",
                  kLabels, kParts, words_per_msg, kMeasureIters, merge.wall_ms,
                  merge.words_per_sec, merge.allocs_per_iteration);
    json.record_raw(buf);
  }

  // Section 2: full engine, allocations per superstep.
  std::printf("\nfull engine (k=8, threads=1)\n");
  std::printf("%14s %6s %8s %10s %9s %14s\n", "algo", "n", "rounds", "supersteps",
              "wall_ms", "allocs/sstep");
  struct EngineCase {
    const char* algo;
    std::size_t n, m;
  };
  for (const EngineCase ec : {EngineCase{"connectivity", 1200, 3600},
                              EngineCase{"mst", 1200, 3600}}) {
    Rng grng(17);
    Graph eg = gen::gnm(ec.n, ec.m, grng);
    if (ec.algo[0] == 'm') eg = weighted_unique(std::move(eg), 23);
    const auto timed = ec.algo[0] == 'm' ? run_mst_timed(eg, 8, 29)
                                         : run_connectivity_timed(eg, 8, 29);
    const double aps = allocs_per_superstep(timed, timed.result.stats.supersteps);
    std::printf("%14s %6zu %8llu %10llu %9.1f %14.1f\n", ec.algo, ec.n,
                static_cast<unsigned long long>(timed.result.stats.rounds),
                static_cast<unsigned long long>(timed.result.stats.supersteps),
                timed.wall_ms, aps);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\": \"engine\", \"algo\": \"%s\", \"n\": %zu, \"m\": %zu, "
                  "\"k\": 8, \"threads\": 1, \"rounds\": %llu, \"supersteps\": %llu, "
                  "\"wall_ms\": %.3f, \"allocs_per_superstep\": %.1f, "
                  "\"allocs_total\": %llu}",
                  ec.algo, ec.n, ec.m,
                  static_cast<unsigned long long>(timed.result.stats.rounds),
                  static_cast<unsigned long long>(timed.result.stats.supersteps),
                  timed.wall_ms, aps, static_cast<unsigned long long>(timed.allocs));
    json.record_raw(buf);
  }
  return 0;
}
