// E8 (Lemma 6 / Figure 2): DRR tree depth is O(log n) w.h.p.
//
// Builds DRR forests over random component graphs (each component selects
// one random neighbor) across sizes and seeds; prints mean/max depth vs
// the log(n+1) expectation and the 6*log2(n+1) w.h.p. bound, plus the
// root fraction (~1/2, the Lemma 7 decay driver).

#include <cmath>

#include "bench_common.hpp"
#include "core/drr.hpp"

using namespace kmmbench;

int main() {
  banner("E8: DRR tree depth (Lemma 6)",
         "depth <= 6 log(n+1) w.h.p.; E[depth] <= log(n+1); ~half the "
         "components become roots");

  constexpr int kTrials = 60;
  std::printf("%8s %10s %10s %12s %14s %12s\n", "c", "mean", "max", "log2(c+1)",
              "6*log2(c+1)", "root-frac");
  std::vector<double> sizes, maxima;
  for (const std::size_t c : {256u, 1024u, 4096u, 16384u, 65536u}) {
    Rng rng(split(91, c));
    Accumulator depth, roots;
    double worst = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<std::uint32_t> target(c);
      for (std::uint32_t i = 0; i < c; ++i) {
        auto t = static_cast<std::uint32_t>(rng.next_below(c));
        target[i] = t == i ? (i + 1) % static_cast<std::uint32_t>(c) : t;
      }
      const auto f = DrrForest::build(target, split3(93, c, trial));
      depth.add(f.max_depth);
      roots.add(static_cast<double>(f.roots) / static_cast<double>(c));
      worst = std::max(worst, static_cast<double>(f.max_depth));
    }
    const double lg = std::log2(static_cast<double>(c) + 1);
    std::printf("%8zu %10.2f %10.0f %12.2f %14.2f %12.3f\n", c, depth.mean(), worst, lg,
                6 * lg, roots.mean());
    sizes.push_back(static_cast<double>(c));
    maxima.push_back(worst);
  }
  // Depth should grow like log c: the log-log slope against c is well
  // below any polynomial (prints ~0.1-0.2).
  print_slope("max depth vs c (log growth => near 0)", sizes, maxima);

  // Path-shaped component graphs (the worst case DRR was designed for).
  std::printf("\npath-shaped selections (chains):\n");
  for (const std::size_t c : {1024u, 16384u}) {
    std::vector<std::uint32_t> target(c);
    for (std::uint32_t i = 0; i < c; ++i) {
      target[i] = std::min<std::uint32_t>(i + 1, static_cast<std::uint32_t>(c) - 1);
    }
    double worst = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      worst = std::max(worst,
                       static_cast<double>(DrrForest::build(target, split3(95, c, trial))
                                               .max_depth));
    }
    std::printf("  c=%6zu: max depth %4.0f vs naive chain depth %zu\n", c, worst, c - 1);
  }
  return 0;
}
