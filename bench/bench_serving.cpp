// E-serving: latency and degradation profile of the resilient serving layer.
//
// The serving layer's claims are operational, not asymptotic: (1) a loaded
// service answers a mixed concurrent workload with per-query latency close
// to the solo-query cost, (2) a client cancel lands within roughly one
// superstep of wall time (cancellation is cooperative, checked at every
// superstep boundary), and (3) chaos-injected lethal crashes degrade
// throughput by the retry overhead — they never change any answer.
//
// Sections:
//   1. throughput + query latency percentiles (p50/p95/p99), workers sweep
//   2. cancellation latency: token fired mid-flight → ticket resolved,
//      compared against the per-superstep wall-time distribution (the
//      aggregate gate asserts cancel_p95 ≲ superstep p95)
//   3. chaos degradation: kill_prob sweep, throughput + retries + answer
//      parity against the calm service
//
// Output: BENCH_serving.json (family "serving_*" records).

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace kmm;
using kmmbench::BenchJson;

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct LatencySummary {
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
};

LatencySummary summarize(std::vector<double> us) {
  LatencySummary s;
  s.p50_us = quantile(us, 0.50);
  s.p95_us = quantile(us, 0.95);
  s.p99_us = quantile(us, 0.99);
  return s;
}

QueryRequest mixed_request(std::uint64_t q) {
  static constexpr QueryKind kCycle[] = {
      QueryKind::kConnectivity, QueryKind::kFlooding, QueryKind::kMst,
      QueryKind::kConnectivity, QueryKind::kLeaderElection,
  };
  QueryRequest req;
  req.kind = kCycle[q % std::size(kCycle)];
  req.seed = split(0xbe9c, q);
  return req;
}

}  // namespace

int main() {
  kmmbench::banner("E-serving: resilient query-serving layer",
                   "concurrent queries at near-solo latency; cooperative cancel "
                   "within ~1 superstep; chaos degrades throughput, never answers");

  const std::size_t n = 4096, m = 3 * n;
  Rng rng(17);
  const Graph g = gen::connected_gnm(n, m, rng);
  const MachineId k = 8;
  const DistributedGraph dg(g, VertexPartition::random(n, k, 7));
  BenchJson json("serving");

  // ---- 1. Throughput + latency percentiles, workers sweep ------------------
  std::printf("\n[1] mixed workload (%zu queries), workers sweep, n=%zu k=%u\n",
              std::size_t{32}, n, k);
  std::printf("%8s %10s %10s %10s %10s %12s\n", "workers", "p50_us", "p95_us", "p99_us",
              "qps", "wall_ms");
  for (const unsigned workers : {1u, 2u, 4u}) {
    ServiceConfig cfg;
    cfg.k = k;
    cfg.workers = workers;
    ClusterService service(dg, cfg);
    const std::size_t queries = 32;
    std::vector<std::shared_ptr<QueryTicket>> tickets;
    std::vector<double> submit_us;
    const double t0 = now_us();
    for (std::uint64_t q = 0; q < queries; ++q) {
      submit_us.push_back(now_us());
      tickets.push_back(service.submit(mixed_request(q)));
    }
    std::vector<double> latency_us;
    for (std::size_t q = 0; q < queries; ++q) {
      const QueryOutcome& outcome = tickets[q]->wait();
      if (!outcome.ok()) {
        std::printf("  UNEXPECTED error %s\n", query_error_name(outcome.error().code));
        return 1;
      }
      latency_us.push_back(now_us() - submit_us[q]);
    }
    const double wall_ms = (now_us() - t0) * 1e-3;
    const LatencySummary lat = summarize(latency_us);
    const double qps = static_cast<double>(queries) / (wall_ms * 1e-3);
    std::printf("%8u %10.0f %10.0f %10.0f %10.1f %12.1f\n", workers, lat.p50_us,
                lat.p95_us, lat.p99_us, qps, wall_ms);
    char rec[512];
    std::snprintf(rec, sizeof(rec),
                  "{\"family\": \"serving_latency\", \"n\": %zu, \"m\": %zu, \"k\": %u, "
                  "\"workers\": %u, \"queries\": %zu, \"latency_p50_us\": %.0f, "
                  "\"latency_p95_us\": %.0f, \"latency_p99_us\": %.0f, "
                  "\"queries_per_s\": %.1f, \"wall_ms\": %.1f}",
                  n, m, k, workers, queries, lat.p50_us, lat.p95_us, lat.p99_us, qps,
                  wall_ms);
    json.record_raw(rec);
  }

  // ---- 2. Cancellation latency vs superstep wall time ----------------------
  // Reference distribution: one undisturbed min-cut's per-superstep wall
  // times (min-cut is the longest-running kind — the worst case a cancel
  // has to wait out).
  kmmbench::SuperstepWallSummary sstep;
  {
    ServiceConfig cfg;
    cfg.k = k;
    cfg.record_timelines = true;
    ClusterService service(dg, cfg);
    QueryRequest req;
    req.kind = QueryKind::kMinCut;
    const auto ticket = service.submit(std::move(req));
    if (!ticket->wait().ok()) {
      std::printf("reference mincut failed\n");
      return 1;
    }
    const MetricsTimeline* tl = service.timeline(ticket->id());
    if (tl == nullptr || tl->size() == 0) {
      std::printf("reference mincut recorded no timeline\n");
      return 1;
    }
    sstep = kmmbench::summarize_superstep_wall(*tl);
  }

  std::printf("\n[2] cancellation latency (cancel fired mid-flight, min-cut)\n");
  std::vector<double> cancel_us;
  {
    ServiceConfig cfg;
    cfg.k = k;
    ClusterService service(dg, cfg);
    const int trials = 12;
    for (int t = 0; t < trials; ++t) {
      QueryRequest req;
      req.kind = QueryKind::kMinCut;
      req.seed = split(0xca9ce1, static_cast<std::uint64_t>(t));
      const auto ticket = service.submit(std::move(req));
      // Let the query get properly into flight before pulling the plug.
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      const double t0 = now_us();
      ticket->cancel();
      (void)ticket->wait();
      cancel_us.push_back(now_us() - t0);
    }
  }
  const LatencySummary cancel = summarize(cancel_us);
  std::printf("  cancel latency  p50=%.0fus p95=%.0fus p99=%.0fus\n", cancel.p50_us,
              cancel.p95_us, cancel.p99_us);
  std::printf("  superstep wall  p50=%.0fus p95=%.0fus max=%.0fus (mincut reference)\n",
              sstep.p50_us, sstep.p95_us, sstep.max_us);
  {
    char rec[512];
    std::snprintf(rec, sizeof(rec),
                  "{\"family\": \"serving_cancel\", \"n\": %zu, \"m\": %zu, \"k\": %u, "
                  "\"cancel_p50_us\": %.0f, \"cancel_p95_us\": %.0f, "
                  "\"cancel_p99_us\": %.0f, \"superstep_p50_us\": %.2f, "
                  "\"superstep_p95_us\": %.2f, \"superstep_max_us\": %.2f}",
                  n, m, k, cancel.p50_us, cancel.p95_us, cancel.p99_us, sstep.p50_us,
                  sstep.p95_us, sstep.max_us);
    json.record_raw(rec);
  }

  // ---- 3. Chaos degradation ------------------------------------------------
  std::printf("\n[3] chaos degradation (lethal kills + deterministic retry)\n");
  std::printf("%10s %10s %8s %8s %10s %10s %8s\n", "kill_prob", "qps", "kills",
              "retries", "exhausted", "wall_ms", "parity");
  std::uint64_t calm_value = 0, calm_bits = 0;
  for (const double kill_prob : {0.0, 0.3, 0.6}) {
    ServiceConfig cfg;
    cfg.k = k;
    cfg.workers = 2;
    cfg.chaos.kill_prob = kill_prob;
    cfg.chaos.seed = 29;
    cfg.retry.base_backoff_us = 100;  // keep the sweep fast
    cfg.retry.max_backoff_us = 2'000;
    cfg.retry.max_attempts = 6;
    ClusterService service(dg, cfg);
    const std::size_t queries = 16;
    std::vector<std::shared_ptr<QueryTicket>> tickets;
    const double t0 = now_us();
    for (std::uint64_t q = 0; q < queries; ++q) {
      QueryRequest req;
      req.kind = QueryKind::kConnectivity;
      req.seed = 42;  // identical queries, so answer parity is well-defined
      (void)q;
      tickets.push_back(service.submit(std::move(req)));
    }
    // Parity is over the queries that DID answer: a query whose every
    // attempt was killed returns structured kCrashed (no answer to be wrong
    // about) and is counted separately as `exhausted`.
    bool parity = true;
    std::size_t exhausted = 0;
    for (const auto& ticket : tickets) {
      const QueryOutcome& outcome = ticket->wait();
      if (!outcome.ok()) {
        ++exhausted;
        continue;
      }
      if (kill_prob == 0.0) {
        calm_value = outcome.value().value;
        calm_bits = outcome.value().ledger.total_bits;
      } else {
        parity &= outcome.value().value == calm_value &&
                  outcome.value().ledger.total_bits == calm_bits;
      }
    }
    const double wall_ms = (now_us() - t0) * 1e-3;
    const ServiceStats s = service.stats();
    const double qps = static_cast<double>(queries) / (wall_ms * 1e-3);
    std::printf("%10.1f %10.1f %8llu %8llu %10zu %10.1f %8s\n", kill_prob, qps,
                static_cast<unsigned long long>(s.kills),
                static_cast<unsigned long long>(s.retries), exhausted, wall_ms,
                parity ? "ok" : "MISMATCH");
    char rec[512];
    std::snprintf(rec, sizeof(rec),
                  "{\"family\": \"serving_chaos\", \"n\": %zu, \"m\": %zu, \"k\": %u, "
                  "\"kill_prob\": %.1f, \"queries_per_s\": %.1f, \"kills\": %llu, "
                  "\"retries\": %llu, \"exhausted\": %zu, \"wall_ms\": %.1f, "
                  "\"answer_parity\": %s}",
                  n, m, k, kill_prob, qps, static_cast<unsigned long long>(s.kills),
                  static_cast<unsigned long long>(s.retries), exhausted, wall_ms,
                  parity ? "true" : "false");
    json.record_raw(rec);
  }

  std::printf("\nA cancel lands in about one superstep because that is exactly when\n"
              "the runtime looks at the token; chaos costs retries, never answers.\n");
  return 0;
}
