// E9 (Lemma 7): the algorithm finishes within 12 log n phases w.h.p., with
// the number of participating components decaying by a constant factor per
// phase.
//
// Prints per-phase component counts across graph families and the
// phases-used / 12 log2 n budget fraction.

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

void trace_family(const char* name, const Graph& g, MachineId k, std::uint64_t seed) {
  const auto res = run_connectivity(g, k, seed);
  const auto budget = 12 * bits_for(g.num_vertices());
  std::printf("\n%s (n=%zu, m=%zu, k=%u): %zu phases / budget %llu\n", name,
              g.num_vertices(), g.num_edges(), k, res.phases.size(),
              static_cast<unsigned long long>(budget));
  std::printf("  %-6s %12s %12s %8s %10s\n", "phase", "comps-in", "comps-out", "decay",
              "rounds");
  for (const auto& ph : res.phases) {
    std::printf("  %-6u %12llu %12llu %8.2f %10llu\n", ph.phase,
                static_cast<unsigned long long>(ph.components_before),
                static_cast<unsigned long long>(ph.components_after),
                ph.components_before
                    ? static_cast<double>(ph.components_after) /
                          static_cast<double>(ph.components_before)
                    : 0.0,
                static_cast<unsigned long long>(ph.rounds));
  }
}

}  // namespace

int main() {
  banner("E9: phase count (Lemma 7)",
         "<= 12 log n phases w.h.p.; participating components decay by a "
         "constant factor (<= 3/4 per successful phase)");

  Rng rng(101);
  trace_family("sparse gnm(4096, 1.2n)", gen::gnm(4096, 4915, rng), 16, 103);
  trace_family("dense gnm(4096, 8n)", gen::gnm(4096, 8 * 4096, rng), 16, 105);
  trace_family("path(4096)", gen::path(4096), 16, 107);
  trace_family("grid(64x64)", gen::grid(64, 64), 16, 109);
  trace_family("communities(4096, 16 blocks)",
               gen::planted_communities(4096, 16, 0.02, 32, rng), 16, 111);

  // Aggregate decay statistics over many random graphs.
  std::printf("\naggregate over 20 random graphs (n=2048, m=3n):\n");
  Accumulator phases_used, decay;
  for (int trial = 0; trial < 20; ++trial) {
    Rng grng(split(113, trial));
    const Graph g = gen::gnm(2048, 3 * 2048, grng);
    const auto res = run_connectivity(g, 16, split(115, trial));
    phases_used.add(static_cast<double>(res.phases.size()));
    for (const auto& ph : res.phases) {
      if (ph.components_before > ph.components_after && ph.components_before > 1) {
        decay.add(static_cast<double>(ph.components_after) /
                  static_cast<double>(ph.components_before));
      }
    }
  }
  std::printf("  phases used: mean %.1f, max %.0f (budget %llu)\n", phases_used.mean(),
              phases_used.max(), static_cast<unsigned long long>(12 * bits_for(2048)));
  std::printf("  per-phase decay factor: mean %.3f (Lemma 7 successful-phase "
              "threshold: 0.75)\n",
              decay.mean());
  return 0;
}
