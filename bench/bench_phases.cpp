// E9 (Lemma 7): the algorithm finishes within 12 log n phases w.h.p., with
// the number of participating components decaying by a constant factor per
// phase.
//
// Prints per-phase component counts across graph families and the
// phases-used / 12 log2 n budget fraction. Each family's run records a
// per-superstep metrics timeline (src/obs/), and BENCH_phases.json carries
// the superstep wall-time distribution (p50/p95/max) alongside the ledger —
// the columns that expose a straggler superstep hiding in a flat phase
// table.

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

void trace_family(const char* name, const Graph& g, MachineId k, std::uint64_t seed,
                  BenchJson& json) {
  MetricsTimeline timeline;
  const ObsSink sink{&timeline, nullptr};
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = run_connectivity(g, k, seed, /*threads=*/1, &sink);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  const auto budget = 12 * bits_for(g.num_vertices());
  std::printf("\n%s (n=%zu, m=%zu, k=%u): %zu phases / budget %llu\n", name,
              g.num_vertices(), g.num_edges(), k, res.phases.size(),
              static_cast<unsigned long long>(budget));
  std::printf("  %-6s %12s %12s %8s %10s\n", "phase", "comps-in", "comps-out", "decay",
              "rounds");
  for (const auto& ph : res.phases) {
    std::printf("  %-6u %12llu %12llu %8.2f %10llu\n", ph.phase,
                static_cast<unsigned long long>(ph.components_before),
                static_cast<unsigned long long>(ph.components_after),
                ph.components_before
                    ? static_cast<double>(ph.components_after) /
                          static_cast<double>(ph.components_before)
                    : 0.0,
                static_cast<unsigned long long>(ph.rounds));
  }

  const auto wall = summarize_superstep_wall(timeline);
  std::printf("  superstep wall time over %zu supersteps: p50 %.1fus, p95 %.1fus, "
              "max %.1fus\n",
              wall.supersteps, wall.p50_us, wall.p95_us, wall.max_us);

  char rec[512];
  std::snprintf(rec, sizeof(rec),
                "{\"family\": \"%s\", \"n\": %zu, \"m\": %zu, \"k\": %u, "
                "\"rounds\": %llu, \"supersteps\": %llu, \"phases\": %zu, "
                "\"phase_budget\": %llu, \"wall_ms\": %.3f, %s}",
                name, g.num_vertices(), g.num_edges(), k,
                static_cast<unsigned long long>(res.stats.rounds),
                static_cast<unsigned long long>(res.stats.supersteps), res.phases.size(),
                static_cast<unsigned long long>(budget), wall_ms,
                superstep_wall_json(wall).c_str());
  json.record_raw(rec);
}

}  // namespace

int main() {
  banner("E9: phase count (Lemma 7)",
         "<= 12 log n phases w.h.p.; participating components decay by a "
         "constant factor (<= 3/4 per successful phase)");

  BenchJson json("phases");
  Rng rng(101);
  trace_family("sparse gnm(4096, 1.2n)", gen::gnm(4096, 4915, rng), 16, 103, json);
  trace_family("dense gnm(4096, 8n)", gen::gnm(4096, 8 * 4096, rng), 16, 105, json);
  trace_family("path(4096)", gen::path(4096), 16, 107, json);
  trace_family("grid(64x64)", gen::grid(64, 64), 16, 109, json);
  trace_family("communities(4096, 16 blocks)",
               gen::planted_communities(4096, 16, 0.02, 32, rng), 16, 111, json);

  // Aggregate decay statistics over many random graphs.
  std::printf("\naggregate over 20 random graphs (n=2048, m=3n):\n");
  Accumulator phases_used, decay;
  for (int trial = 0; trial < 20; ++trial) {
    Rng grng(split(113, trial));
    const Graph g = gen::gnm(2048, 3 * 2048, grng);
    const auto res = run_connectivity(g, 16, split(115, trial));
    phases_used.add(static_cast<double>(res.phases.size()));
    for (const auto& ph : res.phases) {
      if (ph.components_before > ph.components_after && ph.components_before > 1) {
        decay.add(static_cast<double>(ph.components_after) /
                  static_cast<double>(ph.components_before));
      }
    }
  }
  std::printf("  phases used: mean %.1f, max %.0f (budget %llu)\n", phases_used.mean(),
              phases_used.max(), static_cast<unsigned long long>(12 * bits_for(2048)));
  std::printf("  per-phase decay factor: mean %.3f (Lemma 7 successful-phase "
              "threshold: 0.75)\n",
              decay.mean());
  return 0;
}
