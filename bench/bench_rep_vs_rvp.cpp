// E4 (Section 1.3): under the random edge partition (REP), Θ~(n/k) is
// tight for MST; under RVP the paper's algorithm achieves Θ~(n/k^2).
//
// Runs the footnote-5 REP pipeline (local filter -> reroute -> RVP solve)
// against the plain RVP algorithm on the same weighted graphs, printing
// the reroute bottleneck separately.

#include "bench_common.hpp"

using namespace kmmbench;

int main() {
  banner("E4: REP vs RVP partition models (Section 1.3)",
         "REP MST is Θ~(n/k) (reroute-bound); RVP MST is Θ~(n/k^2)");

  const std::vector<std::size_t> ns{1024, 2048};
  const std::vector<MachineId> ks{4, 8, 16, 32};

  std::printf("%6s %4s %12s %12s %12s %10s %8s\n", "n", "k", "rep-total", "rep-reroute",
              "rvp-total", "rep/rvp", "exact");
  for (const std::size_t n : ns) {
    Rng rng(split(41, n));
    const Graph g = weighted_unique(gen::connected_gnm(n, 4 * n, rng), split(43, n));
    const Weight expected = ref::msf_weight(g);
    std::vector<double> kd, rep_rounds, rvp_rounds;
    for (const MachineId k : ks) {
      Cluster rep_cluster(ClusterConfig::for_graph(n, k));
      const auto ep = EdgePartition::random(g.num_edges(), k, split(45, k));
      const auto rep = rep_model_mst(rep_cluster, g, ep, split(47, n * 100 + k));
      const auto rvp = run_mst(g, k, split(49, n * 100 + k));
      Weight got = 0;
      for (const auto& e : rep.mst_edges) got += e.w;
      std::printf("%6zu %4u %12llu %12llu %12llu %10.2f %8s\n", n, k,
                  static_cast<unsigned long long>(rep.stats.rounds),
                  static_cast<unsigned long long>(rep.reroute_stats.rounds),
                  static_cast<unsigned long long>(rvp.stats.rounds),
                  static_cast<double>(rep.stats.rounds) /
                      static_cast<double>(rvp.stats.rounds),
                  got == expected ? "yes" : "NO");
      kd.push_back(k);
      rep_rounds.push_back(static_cast<double>(rep.reroute_stats.rounds));
      rvp_rounds.push_back(static_cast<double>(rvp.stats.rounds));
    }
    std::printf("  n=%zu:", n);
    print_slope("RVP rounds vs k (~ -2)", kd, rvp_rounds);
    (void)rep_rounds;
  }

  // The Θ~(n/k) reroute bottleneck appears for *dense* inputs: with
  // m = Ω(nk) edges, every machine's local cycle-property filter still
  // retains a near-spanning forest of ~n-1 edges, and shipping ~n edge
  // records over k-1 links costs Θ~(n/k) rounds per machine. Construct
  // that worst-case filtered state directly (one spanning tree per
  // machine) and measure the reroute superstep alone.
  std::printf("\nreroute-stage scaling, worst-case filtered state "
              "(every machine holds a spanning tree):\n");
  std::printf("%8s %4s %12s %16s\n", "n", "k", "reroute-rds", "n*lg/(k*B) pred");
  for (const std::size_t n : {std::size_t{16384}, std::size_t{65536}}) {
    std::vector<double> kd, reroute;
    for (const MachineId k : {MachineId{4}, MachineId{8}, MachineId{16}, MachineId{32}}) {
      Cluster cluster(ClusterConfig::for_graph(n, k));
      const VertexPartition rvp = VertexPartition::random(n, k, split(147, k));
      const std::uint64_t label_bits = bits_for(n);
      const std::uint64_t edge_bits = 2 * label_bits + 64;
      const StatsScope scope(cluster);
      for (MachineId i = 0; i < k; ++i) {
        Rng tree_rng(split3(149, i, n));
        const Graph tree = gen::random_tree(n, tree_rng);
        for (const auto& edge : tree.edges()) {
          for (const MachineId dst : {rvp.home(edge.u), rvp.home(edge.v)}) {
            cluster.send(i, dst, 1, {}, edge_bits);
          }
        }
      }
      cluster.superstep();
      const auto rounds = scope.snapshot().rounds;
      const double predicted = 2.0 * static_cast<double>(n) * edge_bits /
                               (static_cast<double>(k) *
                                static_cast<double>(cluster.bandwidth_bits()));
      std::printf("%8zu %4u %12llu %16.0f\n", n, k,
                  static_cast<unsigned long long>(rounds), predicted);
      kd.push_back(k);
      reroute.push_back(static_cast<double>(rounds));
    }
    std::printf("  n=%zu:", n);
    print_slope("reroute rounds vs k (~ -1)", kd, reroute);
  }
  std::printf(
      "\nreading: the reroute stage scales ~1/k (each machine pushes its ~n\n"
      "surviving edges over k-1 links), while the RVP algorithm scales ~1/k^2\n"
      "(E1/E3) — reproducing the Section 1.3 separation: REP Θ~(n/k) vs RVP "
      "Θ~(n/k^2).\n");
  return 0;
}
