// E5 (Theorem 3): O(log n)-approximate min-cut in O~(n/k^2) rounds.
//
// Planted cuts (dumbbell graphs): estimate vs exact lambda, the
// approximation ratio, and the round cost of the sampling sweep.

#include <cmath>

#include "bench_common.hpp"

using namespace kmmbench;

int main() {
  banner("E5: approximate min-cut (Theorem 3)",
         "O(log n)-approximation, O~(n/k^2) rounds");
  BenchJson json("mincut");

  const std::size_t n = 512;
  const std::vector<std::size_t> lambdas{1, 2, 4, 8, 16, 32};

  std::printf("%6s %8s %10s %10s %8s %10s %8s\n", "n", "lambda", "estimate", "ratio",
              "level", "rounds", "k");
  for (const MachineId k : {MachineId{8}, MachineId{16}}) {
    for (const std::size_t lambda : lambdas) {
      Rng rng(split(51, lambda));
      const Graph g = gen::dumbbell(n, lambda, rng);
      Cluster cluster(ClusterConfig::for_graph(n, k));
      const DistributedGraph dg(g, VertexPartition::random(n, k, split(53, lambda)));
      MinCutConfig cfg;
      cfg.seed = split(55, lambda * 100 + k);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = approximate_min_cut(cluster, dg, cfg);
      const auto t1 = std::chrono::steady_clock::now();
      std::printf("%6zu %8zu %10llu %10.2f %8d %10llu %8u\n", n, lambda,
                  static_cast<unsigned long long>(res.estimate),
                  static_cast<double>(res.estimate) / static_cast<double>(lambda),
                  res.disconnect_level, static_cast<unsigned long long>(res.stats.rounds),
                  k);
      json.record("dumbbell", n, g.num_edges(), k, 1, res.stats, res.levels.size(),
                  std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
  }
  std::printf("\nO(log n) band: ratios must stay within [1/(8 log2 n), 8 log2 n] = "
              "[%.3f, %.1f] at n=%zu\n",
              1.0 / (8 * std::log2(static_cast<double>(n))),
              8 * std::log2(static_cast<double>(n)), n);

  // Round scaling of the whole sweep in k.
  std::printf("\nround scaling at lambda=8:\n");
  std::vector<double> kd, rounds;
  for (const MachineId k : {MachineId{4}, MachineId{8}, MachineId{16}, MachineId{32}}) {
    Rng rng(57);
    const Graph g = gen::dumbbell(n, 8, rng);
    Cluster cluster(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, VertexPartition::random(n, k, 59));
    MinCutConfig cfg;
    cfg.seed = split(61, k);
    const auto res = approximate_min_cut(cluster, dg, cfg);
    std::printf("  k=%2u: rounds=%llu\n", k,
                static_cast<unsigned long long>(res.stats.rounds));
    kd.push_back(k);
    rounds.push_back(static_cast<double>(res.stats.rounds));
  }
  print_slope("min-cut rounds vs k (~ -2)", kd, rounds);

  // Runtime thread scaling: the whole sampling sweep runs its inner
  // connectivity instances on the parallel runtime (MinCutConfig::threads).
  // The simulated ledger is thread-invariant; only the wall-clock of the
  // simulation changes (requires actual cores to show > 1x).
  std::printf("\nruntime thread scaling, dumbbell(n=4096, lambda=8), k=16:\n");
  {
    const std::size_t big_n = 4096;
    Rng rng(63);
    const Graph g = gen::dumbbell(big_n, 8, rng);
    if (!run_thread_scaling_stats(
            "dumbbell-threads", big_n, g.num_edges(), 16, json, [&](unsigned threads) {
              Cluster cluster(ClusterConfig::for_graph(big_n, 16));
              const DistributedGraph dg(g, VertexPartition::random(big_n, 16, 65));
              MinCutConfig cfg;
              cfg.seed = 67;
              cfg.threads = threads;
              return time_stats([&] { return approximate_min_cut(cluster, dg, cfg); },
                                [](const auto& r) { return r.levels.size(); });
            })) {
      return 1;
    }
  }
  return 0;
}
