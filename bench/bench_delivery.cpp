// Delivery-plane throughput: wall time of one superstep split into its
// phases — handler (parallel local computation), deliver (moving messages
// into inboxes), reduce (folding ledger partials) — across payload sizes
// and thread counts.
//
// The k-machine cost model makes local computation free, so after PRs 3-4
// made the handler side parallel and allocation-free, the serial half of
// every superstep is delivery itself: this bench measures exactly that
// half. Compare against bench/baselines/BENCH_delivery.pre-parallel.json
// (captured with the sequential count-then-bucket delivery) to see the
// direct shard->inbox delivery plane's speedup; the acceptance bar is
// deliver-phase speedup > 1.5x at threads=8 on a multi-core host and >= 1x
// at threads=1 (no single-thread regression), with 0 steady-state
// allocations preserved.
//
// A second section exercises the parallel input pipeline at the large-graph
// tier (n >= 10^6): chunked deterministic generation, parallel CSR build,
// parallel hosted-list build, and a flooding run whose per-superstep
// message volume makes delivery the dominant phase.

#include <array>
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kmm;
using namespace kmmbench;

constexpr MachineId kMachines = 16;
constexpr std::size_t kFanout = 64;       // messages per machine per superstep
constexpr std::size_t kWarmupSteps = 16;  // let buffers reach steady-state capacity
constexpr std::size_t kMeasureSteps = 160;

struct DeliveryRow {
  std::size_t payload_words;
  unsigned threads;
  double wall_ms = 0.0;
  double msgs_per_sec = 0.0;
  double handler_ms = 0.0;  // totals over the measured steps
  double deliver_ms = 0.0;
  double reduce_ms = 0.0;
  double allocs_per_superstep = 0.0;
  SuperstepWallSummary wall;  // per-superstep distribution over the window
};

/// One synthetic superstep tuned so delivery dominates: the handler only
/// sums inbox payload words (so delivery isn't dead code) before fanning
/// out `kFanout` messages of `payload_words` words each.
DeliveryRow run_config(std::size_t payload_words, unsigned threads) {
  Cluster cluster(ClusterConfig{.k = kMachines, .bandwidth_bits = 1 << 16});
  // Timeline with summarized traffic: the percentile columns need only the
  // per-row phase ns, and summarized rows keep recording allocation-free.
  MetricsTimeline timeline(MetricsTimelineConfig{.full_traffic_steps = 0});
  timeline.reserve(kWarmupSteps + kMeasureSteps + 2, kMachines);
  const ObsSink obs{&timeline, nullptr};
  Runtime rt(cluster, RuntimeConfig{.threads = threads, .obs = &obs});

  std::vector<std::uint64_t> sink(kMachines, 0);
  std::vector<std::array<std::uint64_t, 16>> scratch(kMachines);
  std::size_t step_index = 0;

  const auto handler = [&](MachineId self, std::span<const Message> inbox, Outbox& out) {
    std::uint64_t acc = 0;
    for (const auto& msg : inbox) {
      for (const std::uint64_t w : msg.payload()) acc += w;
    }
    sink[self] += acc;
    auto& payload = scratch[self];
    for (std::size_t w = 0; w < payload_words; ++w) {
      payload[w] = static_cast<std::uint64_t>(self) * 1315423911u + w;
    }
    for (std::size_t j = 0; j < kFanout; ++j) {
      const auto dst = static_cast<MachineId>((self + 1 + (step_index + j) % (kMachines - 1)) %
                                              kMachines);
      out.send(dst, /*tag=*/1, std::span<const std::uint64_t>(payload.data(), payload_words),
               /*bits=*/0);
    }
  };

  for (std::size_t s = 0; s < kWarmupSteps; ++s, ++step_index) rt.step(handler);
  const std::size_t warm_rows = timeline.size();

  const auto a0 = alloc_count();
  const auto p0 = runtime_phase_totals();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < kMeasureSteps; ++s, ++step_index) rt.step(handler);
  const auto t1 = std::chrono::steady_clock::now();
  const auto p1 = runtime_phase_totals();
  const auto allocs = alloc_count() - a0;
  const SuperstepWallSummary wall = summarize_superstep_wall(timeline, warm_rows);

  // One drain step so the last deliveries are consumed (outside the timer).
  rt.step([&](MachineId self, std::span<const Message> inbox, Outbox&) {
    for (const auto& msg : inbox) sink[self] += msg.payload().size();
  });

  DeliveryRow row;
  row.payload_words = payload_words;
  row.threads = threads;
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double msgs = static_cast<double>(kMachines * kFanout * kMeasureSteps);
  row.msgs_per_sec = msgs / (row.wall_ms / 1000.0);
  const PhaseMs phase = PhaseMs::between(p0, p1);
  row.handler_ms = phase.handler_ms;
  row.deliver_ms = phase.deliver_ms;
  row.reduce_ms = phase.reduce_ms;
  row.allocs_per_superstep = static_cast<double>(allocs) / static_cast<double>(kMeasureSteps);
  row.wall = wall;
  return row;
}

void run_microbench(BenchJson& json) {
  std::printf("k=%u, %zu msgs/machine/superstep, %zu measured supersteps\n\n", kMachines,
              kFanout, kMeasureSteps);
  std::printf("%14s %8s %9s %14s %11s %11s %10s %13s %9s %9s\n", "payload_words",
              "threads", "wall_ms", "msgs/s", "handler_ms", "deliver_ms", "reduce_ms",
              "allocs/sstep", "p50_us", "p95_us");

  for (const std::size_t payload_words : {1u, 4u, 16u}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      const auto row = run_config(payload_words, threads);
      std::printf("%14zu %8u %9.1f %14.0f %11.1f %11.1f %10.1f %13.1f %9.1f %9.1f\n",
                  row.payload_words, row.threads, row.wall_ms, row.msgs_per_sec,
                  row.handler_ms, row.deliver_ms, row.reduce_ms, row.allocs_per_superstep,
                  row.wall.p50_us, row.wall.p95_us);
      char buf[576];
      std::snprintf(buf, sizeof(buf),
                    "{\"section\": \"microbench\", \"payload_words\": %zu, \"threads\": %u, "
                    "\"k\": %u, \"supersteps\": %zu, \"messages_per_superstep\": %zu, "
                    "\"wall_ms\": %.3f, \"msgs_per_sec\": %.0f, \"handler_ms\": %.3f, "
                    "\"deliver_ms\": %.3f, \"reduce_ms\": %.3f, "
                    "\"allocs_per_superstep\": %.1f, %s}",
                    row.payload_words, row.threads, kMachines, kMeasureSteps,
                    static_cast<std::size_t>(kMachines) * kFanout, row.wall_ms,
                    row.msgs_per_sec, row.handler_ms, row.deliver_ms, row.reduce_ms,
                    row.allocs_per_superstep, superstep_wall_json(row.wall).c_str());
      json.record_raw(buf);
    }
  }
}

/// The large-graph scenario tier the parallel input pipeline opens: with
/// sequential generation + CSR + hosted-list builds, setting up an n=10^6
/// input dominated any measurement; chunked generation and the parallel
/// builds make it a bench-sized fixture. Flooding is the workload because
/// its per-superstep message volume (every changed boundary vertex) makes
/// delivery the dominant phase — exactly what this PR parallelizes.
bool run_large_tier(BenchJson& json) {
  constexpr std::size_t kN = 1'000'000;
  constexpr std::size_t kM = 2'000'000;
  constexpr MachineId kK = 16;
  std::printf("\nlarge-graph tier: gnm_par n=%zu m=%zu, flooding on k=%u\n", kN, kM, kK);
  std::printf("%8s %9s %9s %10s %9s %11s %11s %10s\n", "threads", "gen_ms", "build_ms",
              "rounds", "wall_ms", "handler_ms", "deliver_ms", "reduce_ms");

  std::uint64_t base_fp = 0;
  std::uint64_t base_rounds = 0;
  bool ok = true;
  for (const unsigned threads : {1u, 2u, 8u}) {
    gen::ParGenConfig cfg;
    cfg.seed = 1234;
    ThreadPool pool(threads);
    const auto g0 = std::chrono::steady_clock::now();
    const Graph g = gen::gnm_par(kN, kM, cfg, &pool);
    const auto g1 = std::chrono::steady_clock::now();
    const double gen_ms = std::chrono::duration<double, std::milli>(g1 - g0).count();
    const std::uint64_t fp = edge_list_fingerprint(g.edges());
    if (threads == 1) {
      base_fp = fp;
    } else if (fp != base_fp) {
      std::printf("  GENERATOR MISMATCH at threads=%u — pipeline determinism violated\n",
                  threads);
      ok = false;
    }

    const auto b0 = std::chrono::steady_clock::now();
    const DistributedGraph dg(g, VertexPartition::random(kN, kK, 5), &pool);
    const auto b1 = std::chrono::steady_clock::now();
    const double build_ms = std::chrono::duration<double, std::milli>(b1 - b0).count();

    Cluster cluster(ClusterConfig::for_graph(kN, kK));
    MetricsTimeline timeline(MetricsTimelineConfig{.full_traffic_steps = 0});
    const ObsSink sink{&timeline, nullptr};
    FloodingConfig fcfg;
    fcfg.threads = threads;
    fcfg.obs = &sink;
    const auto p0 = runtime_phase_totals();
    const auto t0 = std::chrono::steady_clock::now();
    const auto res = flooding_connectivity(cluster, dg, fcfg);
    const auto t1 = std::chrono::steady_clock::now();
    const PhaseMs phase = PhaseMs::between(p0, runtime_phase_totals());
    const double wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double handler_ms = phase.handler_ms;
    const double deliver_ms = phase.deliver_ms;
    const double reduce_ms = phase.reduce_ms;
    const std::uint64_t rounds = cluster.stats().rounds;
    if (threads == 1) {
      base_rounds = rounds;
    } else if (rounds != base_rounds) {
      std::printf("  LEDGER MISMATCH at threads=%u — runtime invariant violated\n", threads);
      ok = false;
    }
    const SuperstepWallSummary wall = summarize_superstep_wall(timeline);
    std::printf("%8u %9.0f %9.0f %10llu %9.0f %11.0f %11.0f %10.1f  (superstep p95 "
                "%.0fus, max %.0fus)\n",
                threads, gen_ms, build_ms, static_cast<unsigned long long>(rounds), wall_ms,
                handler_ms, deliver_ms, reduce_ms, wall.p95_us, wall.max_us);
    char buf[576];
    std::snprintf(buf, sizeof(buf),
                  "{\"section\": \"large_tier\", \"family\": \"gnm_par\", \"n\": %zu, "
                  "\"m\": %zu, \"k\": %u, \"threads\": %u, \"gen_ms\": %.1f, "
                  "\"build_ms\": %.1f, \"rounds\": %llu, \"supersteps\": %llu, "
                  "\"wall_ms\": %.1f, \"handler_ms\": %.1f, \"deliver_ms\": %.1f, "
                  "\"reduce_ms\": %.1f, \"components\": %llu, %s}",
                  kN, g.num_edges(), kK, threads, gen_ms, build_ms,
                  static_cast<unsigned long long>(rounds),
                  static_cast<unsigned long long>(cluster.stats().supersteps), wall_ms,
                  handler_ms, deliver_ms, reduce_ms,
                  static_cast<unsigned long long>(res.num_components),
                  superstep_wall_json(wall).c_str());
    json.record_raw(buf);
  }
  return ok;
}

}  // namespace

int main() {
  banner("delivery-plane throughput (per-phase superstep breakdown)",
         "delivery was the Amdahl serial half of every superstep: msgs/s and "
         "handler/deliver/reduce wall time across threads and payload sizes");

  BenchJson json("delivery");
  run_microbench(json);
  const bool ok = run_large_tier(json);
  return ok ? 0 : 1;
}
