// E7 (Theorem 5, Lemma 8, Figure 1): the two-party simulation.
//
// Lemma 8 lower-bounds the Alice/Bob communication of any SCS verifier on
// the Figure-1 family by Ω(b). Our k-machine SCS verifier, simulated with
// machines split between Alice and Bob, should therefore exchange Θ~(b)
// bits across the boundary — matching up to the sketch polylog. The table
// prints cut_bits / b as b grows (flat-ish modulo polylog ⇒ matching).

#include "bench_common.hpp"

using namespace kmmbench;

int main() {
  banner("E7: two-party lower-bound simulation (Theorem 5 / Lemma 8 / Fig. 1)",
         "SCS on the Figure-1 family moves Omega(b) bits between Alice and "
         "Bob; Omega~(n/k^2) rounds follow by the k^2-link argument");

  const std::vector<std::size_t> bs{64, 128, 256, 512, 1024, 2048};
  const MachineId k = 8;

  std::printf("%6s %6s %12s %12s %12s %10s %9s %9s\n", "b", "n", "cut_bits", "total_bits",
              "cutbits/b", "rounds", "verdict", "truth");
  std::vector<double> bd, cut;
  bool all_correct = true;
  for (const std::size_t b : bs) {
    Rng rng(split(81, b));
    for (const bool disjoint : {true, false}) {
      const auto inst = disjoint ? DisjointnessInstance::random_disjoint(b, 0.3, rng)
                                 : DisjointnessInstance::random_intersecting(b, 0.3, rng);
      const auto res = simulate_scs_two_party(inst, k, split(83, b * 2 + disjoint));
      all_correct &= res.verdict == res.expected;
      std::printf("%6zu %6zu %12llu %12llu %12.1f %10llu %9s %9s\n", b, 2 * b + 2,
                  static_cast<unsigned long long>(res.cut_bits),
                  static_cast<unsigned long long>(res.total_bits),
                  static_cast<double>(res.cut_bits) / static_cast<double>(b),
                  static_cast<unsigned long long>(res.rounds),
                  res.verdict ? "SCS" : "notSCS", res.expected ? "SCS" : "notSCS");
      if (disjoint) {
        bd.push_back(static_cast<double>(b));
        cut.push_back(static_cast<double>(res.cut_bits));
      }
    }
  }
  print_slope("cut_bits vs b (expect ~ +1: Theta~(b))", bd, cut);
  std::printf("all verdicts correct: %s\n", all_correct ? "yes" : "NO");
  std::printf(
      "\nreading: cut_bits >= b everywhere (consistent with the Omega(b) bound),\n"
      "and cut_bits = O(b polylog) (our verifier is near-optimal on this family).\n");
  return all_correct ? 0 : 1;
}
