// E2 (Section 1.2 warm-ups): the baselines are stuck at ~n/k-type scaling
// while the sketch algorithm scales ~n/k^2.
//
//   referee   — collect all edges at one machine: Θ(m/k) rounds
//   flooding  — Θ(n/k + D) via the Conversion Theorem
//
// Prints rounds side by side and per-algorithm log-log slopes in k.

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

struct Row {
  std::uint64_t conn, flood, referee;
};

Row run_all(const Graph& g, MachineId k, std::uint64_t seed, BenchJson& json) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  const VertexPartition part = VertexPartition::random(n, k, split(seed, 1));
  Row row{};
  {
    Cluster c(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, part);
    BoruvkaConfig cfg;
    cfg.seed = split(seed, 2);
    const auto timed = time_stats([&] { return connected_components(c, dg, cfg); },
                                  [](const auto& r) { return r.phases.size(); });
    row.conn = timed.stats.rounds;
    json.record("sketch-conn", n, m, k, 1, timed.stats, timed.phases, timed.wall_ms);
  }
  {
    Cluster c(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, part);
    const auto timed = time_stats([&] { return flooding_connectivity(c, dg); });
    row.flood = timed.stats.rounds;
    json.record("flooding", n, m, k, 1, timed.stats, 0, timed.wall_ms);
  }
  {
    Cluster c(ClusterConfig::for_graph(n, k));
    const DistributedGraph dg(g, part);
    const auto timed = time_stats(
        [&] { return referee_connectivity(c, dg, /*broadcast_labels=*/false); });
    row.referee = timed.stats.rounds;
    json.record("referee", n, m, k, 1, timed.stats, 0, timed.wall_ms);
  }
  return row;
}

void family(const char* name, const Graph& g, const std::vector<MachineId>& ks,
            BenchJson& json) {
  std::printf("\n%s (n=%zu, m=%zu, D>=%zu):\n", name, g.num_vertices(), g.num_edges(),
              ref::diameter_lower_bound(g));
  std::printf("%4s %12s %12s %12s %14s\n", "k", "sketch-conn", "flooding", "referee",
              "conn*k2/flood*k");
  std::vector<double> kd, conn, flood, referee;
  for (const MachineId k : ks) {
    const Row row = run_all(g, k, split(11, k), json);
    std::printf("%4u %12llu %12llu %12llu\n", k,
                static_cast<unsigned long long>(row.conn),
                static_cast<unsigned long long>(row.flood),
                static_cast<unsigned long long>(row.referee));
    kd.push_back(k);
    conn.push_back(static_cast<double>(row.conn));
    flood.push_back(static_cast<double>(row.flood));
    referee.push_back(static_cast<double>(row.referee));
  }
  print_slope("sketch-conn rounds vs k (~ -2)", kd, conn);
  print_slope("flooding rounds vs k", kd, flood);
  print_slope("referee rounds vs k (~ -1)", kd, referee);
}

}  // namespace

int main() {
  banner("E2: baselines vs the sketch algorithm",
         "flooding ~ n/k + D and referee ~ m/k scale linearly in k; "
         "the sketch algorithm scales ~ n/k^2");

  BenchJson json("baselines");
  const std::vector<MachineId> ks{4, 8, 16, 32};
  {
    // Large sparse graph: n/k^2 >= log2(n) for every k in the sweep, so
    // the Theorem 1 regime (not the additive polylog floor) is measured.
    Rng rng(1);
    family("sparse gnm(32768, 3n)", gen::gnm(32768, 3 * 32768, rng), ks, json);
  }
  {
    Rng rng(2);
    // Dense: referee pays ~m/k with m = 16n while sketches only see n.
    family("dense gnm(8192, 16n)", gen::gnm(8192, 16 * 8192, rng), ks, json);
  }
  {
    // High diameter + hub degrees: flooding's worst shape.
    family("clique_chain(1024 x 16)", gen::clique_chain(1024, 16), ks, json);
  }
  std::printf(
      "\nNote: absolute crossovers depend on the sketch-size constant "
      "(a sketch is ~2 orders of magnitude larger than one edge record); "
      "the paper's claim is about the k-scaling shape, which the slopes "
      "above measure directly.\n");

  // Runtime thread scaling of the ported baselines. The clique chain is
  // flooding's heaviest local-computation shape (dense local fixpoints),
  // and the referee's per-machine edge enumeration parallelizes the same
  // way. Ledger thread-invariance is enforced by the harness.
  {
    const Graph g = gen::clique_chain(2048, 16);
    const std::size_t n = g.num_vertices();
    std::printf("\nruntime thread scaling, flooding on clique_chain(2048 x 16), k=16:\n");
    if (!run_thread_scaling_stats(
            "flooding-threads", n, g.num_edges(), 16, json, [&](unsigned threads) {
              Cluster c(ClusterConfig::for_graph(n, 16));
              const DistributedGraph dg(g, VertexPartition::random(n, 16, 91));
              FloodingConfig fcfg;
              fcfg.threads = threads;
              return time_stats([&] { return flooding_connectivity(c, dg, fcfg); });
            })) {
      return 1;
    }
    std::printf("\nruntime thread scaling, referee on clique_chain(2048 x 16), k=16:\n");
    if (!run_thread_scaling_stats(
            "referee-threads", n, g.num_edges(), 16, json, [&](unsigned threads) {
              Cluster c(ClusterConfig::for_graph(n, 16));
              const DistributedGraph dg(g, VertexPartition::random(n, 16, 93));
              RefereeConfig rcfg;
              rcfg.broadcast_labels = false;
              rcfg.threads = threads;
              return time_stats([&] { return referee_connectivity(c, dg, rcfg); });
            })) {
      return 1;
    }
  }
  return 0;
}
