#pragma once
// Shared helpers for the experiment harnesses (E1..E13 in DESIGN.md).
//
// Each bench binary regenerates one of the paper's quantitative claims and
// prints a self-contained table: the claim, the measured series, and the
// derived columns that make the comparison (normalized rounds, log-log
// slopes). EXPERIMENTS.md records paper-vs-measured from these outputs.

#include <cstdio>
#include <string>
#include <vector>

#include "kmm.hpp"

namespace kmmbench {

using namespace kmm;

inline void banner(const char* experiment, const char* claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==================================================================\n");
}

/// One standard connectivity run; returns the full result (stats included).
inline BoruvkaResult run_connectivity(const Graph& g, MachineId k, std::uint64_t seed) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  return connected_components(cluster, dg, cfg);
}

inline BoruvkaResult run_mst(const Graph& g, MachineId k, std::uint64_t seed) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  return minimum_spanning_forest(cluster, dg, cfg);
}

/// Weighted graph with distinct weights for MST experiments.
inline Graph weighted_unique(Graph g, std::uint64_t seed, Weight limit = 1'000'000) {
  Rng rng(seed);
  return with_unique_weights(with_random_weights(g, rng, limit));
}

/// log-log slope of rounds against k (the paper predicts ~ -2 for the
/// sketch algorithms, ~ -1 for the n/k baselines).
inline double slope_vs_k(const std::vector<double>& ks, const std::vector<double>& rounds) {
  return loglog_slope(ks, rounds);
}

inline void print_slope(const char* label, const std::vector<double>& ks,
                        const std::vector<double>& rounds) {
  std::printf("  fitted log-log slope of %-28s : %+.2f\n", label,
              slope_vs_k(ks, rounds));
}

}  // namespace kmmbench
