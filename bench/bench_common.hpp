#pragma once
// Shared helpers for the experiment harnesses (E1..E13 in DESIGN.md).
//
// Each bench binary regenerates one of the paper's quantitative claims and
// prints a self-contained table: the claim, the measured series, and the
// derived columns that make the comparison (normalized rounds, log-log
// slopes). EXPERIMENTS.md records paper-vs-measured from these outputs.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "alloc_counter.hpp"
#include "kmm.hpp"

namespace kmmbench {

using namespace kmm;

inline void banner(const char* experiment, const char* claim) {
  std::printf("==================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("==================================================================\n");
}

/// Wall time of the three superstep phases during a run (deltas of the
/// runtime_phase_totals() process counters): handler = parallel local
/// computation, deliver = moving messages into inboxes, reduce = folding
/// the per-destination ledger partials. The columns that show where a
/// thread-scaling section's wall-clock actually goes.
struct PhaseMs {
  double handler_ms = 0.0;
  double deliver_ms = 0.0;
  double reduce_ms = 0.0;

  static PhaseMs between(const RuntimePhaseTotals& before, const RuntimePhaseTotals& after) {
    // Saturating subtraction: a torn read of the relaxed process-wide
    // counters (or swapped arguments) degrades to a 0 column, never to a
    // ~2^64 ns garbage row in the JSON trajectory.
    const RuntimePhaseTotals d = after - before;
    return PhaseMs{static_cast<double>(d.handler_ns) * 1e-6,
                   static_cast<double>(d.deliver_ns) * 1e-6,
                   static_cast<double>(d.reduce_ns) * 1e-6};
  }
};

/// A run plus its wall-clock time (the simulator's real execution time —
/// what the runtime's --threads knob improves; the simulated round count is
/// thread-invariant by construction).
struct TimedResult {
  BoruvkaResult result;
  double wall_ms = 0.0;
  std::uint64_t allocs = 0;           // operator-new calls during the run
  std::uint64_t peak_heap_bytes = 0;  // heap high-water mark during the run
  PhaseMs phase;
};

/// Algorithm-agnostic flavor of TimedResult for the non-Borůvka entry
/// points (flooding, referee, min-cut, verification, REP baselines): just
/// the RunStats ledger delta plus wall-clock, with an optional phase count
/// for algorithms that have one.
struct TimedStats {
  RunStats stats;
  std::size_t phases = 0;
  double wall_ms = 0.0;
  std::uint64_t allocs = 0;           // operator-new calls during the run
  std::uint64_t peak_heap_bytes = 0;  // heap high-water mark during the run
  PhaseMs phase;
};

/// Allocations per superstep for a timed run (0 when the run had no
/// supersteps); the column that separates "faster because parallel" from
/// "faster because fewer mallocs" in the scaling JSON.
template <typename Timed>
double allocs_per_superstep(const Timed& timed, std::uint64_t supersteps) {
  if (supersteps == 0) return 0.0;
  return static_cast<double>(timed.allocs) / static_cast<double>(supersteps);
}

/// Time `fn()` (which must return something carrying .stats) into a
/// TimedStats record; `phases_of` extracts the phase count from the result
/// (BoruvkaResult::phases, MinCutResult::levels, ...).
template <typename Fn, typename PhasesOf>
TimedStats time_stats(const Fn& fn, const PhasesOf& phases_of) {
  const auto a0 = alloc_count();
  reset_peak_heap();
  const auto p0 = runtime_phase_totals();
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = fn();
  const auto t1 = std::chrono::steady_clock::now();
  return TimedStats{result.stats, phases_of(result),
                    std::chrono::duration<double, std::milli>(t1 - t0).count(),
                    alloc_count() - a0, peak_heap_bytes(),
                    PhaseMs::between(p0, runtime_phase_totals())};
}

/// Same, for algorithms with no phase notion (phases = 0).
template <typename Fn>
TimedStats time_stats(const Fn& fn) {
  return time_stats(fn, [](const auto&) { return std::size_t{0}; });
}

/// One standard connectivity run; returns the full result (stats included).
/// Pass `obs` to record the run's superstep timeline / trace (the sink is
/// forwarded through BoruvkaConfig; nullptr keeps the run unobserved).
inline BoruvkaResult run_connectivity(const Graph& g, MachineId k, std::uint64_t seed,
                                      unsigned threads = 1,
                                      const ObsSink* obs = nullptr) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  cfg.threads = threads;
  cfg.obs = obs;
  return connected_components(cluster, dg, cfg);
}

/// Per-superstep wall-time distribution of a recorded timeline: the bench
/// columns that expose stragglers (one slow superstep hiding in a flat
/// mean). Times are the handler+deliver+reduce sum per charged superstep,
/// with the free-superstep carry already folded in by the timeline.
struct SuperstepWallSummary {
  std::size_t supersteps = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double max_us = 0.0;
};

/// `first_row` skips a warmup prefix (benches that warm buffers before the
/// timed window pass the row count at the end of warmup).
inline SuperstepWallSummary summarize_superstep_wall(const MetricsTimeline& tl,
                                                     std::size_t first_row = 0) {
  SuperstepWallSummary s;
  if (first_row >= tl.size()) return s;
  s.supersteps = tl.size() - first_row;
  std::vector<double> us;
  us.reserve(s.supersteps);
  for (std::size_t i = first_row; i < tl.size(); ++i) {
    const auto& r = tl.row(i);
    us.push_back(static_cast<double>(r.handler_ns + r.deliver_ns + r.reduce_ns) * 1e-3);
  }
  s.p50_us = quantile(us, 0.50);
  s.p95_us = quantile(us, 0.95);
  s.max_us = quantile(us, 1.0);
  return s;
}

/// The JSON tail for a record carrying a superstep wall-time distribution;
/// splice into a record_raw() object.
inline std::string superstep_wall_json(const SuperstepWallSummary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"superstep_p50_us\": %.2f, \"superstep_p95_us\": %.2f, "
                "\"superstep_max_us\": %.2f",
                s.p50_us, s.p95_us, s.max_us);
  return buf;
}

inline BoruvkaResult run_mst(const Graph& g, MachineId k, std::uint64_t seed,
                             unsigned threads = 1) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, VertexPartition::random(g.num_vertices(), k, split(seed, 1)));
  BoruvkaConfig cfg;
  cfg.seed = split(seed, 2);
  cfg.threads = threads;
  return minimum_spanning_forest(cluster, dg, cfg);
}

inline TimedResult run_connectivity_timed(const Graph& g, MachineId k, std::uint64_t seed,
                                          unsigned threads = 1) {
  const auto a0 = alloc_count();
  reset_peak_heap();
  const auto p0 = runtime_phase_totals();
  const auto t0 = std::chrono::steady_clock::now();
  auto result = run_connectivity(g, k, seed, threads);
  const auto t1 = std::chrono::steady_clock::now();
  return TimedResult{std::move(result),
                     std::chrono::duration<double, std::milli>(t1 - t0).count(),
                     alloc_count() - a0, peak_heap_bytes(),
                     PhaseMs::between(p0, runtime_phase_totals())};
}

inline TimedResult run_mst_timed(const Graph& g, MachineId k, std::uint64_t seed,
                                 unsigned threads = 1) {
  const auto a0 = alloc_count();
  reset_peak_heap();
  const auto p0 = runtime_phase_totals();
  const auto t0 = std::chrono::steady_clock::now();
  auto result = run_mst(g, k, seed, threads);
  const auto t1 = std::chrono::steady_clock::now();
  return TimedResult{std::move(result),
                     std::chrono::duration<double, std::milli>(t1 - t0).count(),
                     alloc_count() - a0, peak_heap_bytes(),
                     PhaseMs::between(p0, runtime_phase_totals())};
}

/// Machine-readable perf trajectory: every record() appends a JSON object;
/// the destructor writes BENCH_<name>.json into the working directory so CI
/// and the EXPERIMENTS.md tooling can track rounds and wall-clock across
/// commits without scraping the human-readable tables.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Schema shared by every bench: one flat object per run. Non-Borůvka
  /// algorithms record through the RunStats overload (phases = 0 when the
  /// algorithm has no phase notion). Thread-scaling sections pass the
  /// per-phase wall split (handler/deliver/reduce, from PhaseMs) so the
  /// trajectory separates "faster because parallel handlers" from "faster
  /// because parallel delivery"; pass phase_ms = nullptr to omit. A nonzero
  /// peak_heap_bytes (the run's heap high-water mark from alloc_counter)
  /// adds the memory-footprint column; 0 omits it.
  void record(const char* family, std::size_t n, std::size_t m, MachineId k,
              unsigned threads, const RunStats& stats, std::size_t phases,
              double wall_ms, double allocs_per_superstep = -1.0,
              const PhaseMs* phase_ms = nullptr, std::uint64_t peak_heap_bytes = 0) {
    char buf[640];
    int len = std::snprintf(buf, sizeof(buf),
                            "    {\"family\": \"%s\", \"n\": %zu, \"m\": %zu, \"k\": %u, "
                            "\"threads\": %u, \"rounds\": %llu, \"messages\": %llu, "
                            "\"bits\": %llu, \"supersteps\": %llu, \"phases\": %zu, "
                            "\"wall_ms\": %.3f",
                            family, n, m, k, threads,
                            static_cast<unsigned long long>(stats.rounds),
                            static_cast<unsigned long long>(stats.messages),
                            static_cast<unsigned long long>(stats.bits),
                            static_cast<unsigned long long>(stats.supersteps), phases,
                            wall_ms);
    // snprintf returns the would-be length; clamp so a truncated record
    // can't push the follow-up writes out of bounds.
    len = std::min(len, static_cast<int>(sizeof(buf)) - 1);
    if (allocs_per_superstep >= 0.0) {
      len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len),
                           ", \"allocs_per_superstep\": %.1f", allocs_per_superstep);
      len = std::min(len, static_cast<int>(sizeof(buf)) - 1);
    }
    if (phase_ms != nullptr) {
      len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len),
                           ", \"handler_ms\": %.3f, \"deliver_ms\": %.3f, "
                           "\"reduce_ms\": %.3f",
                           phase_ms->handler_ms, phase_ms->deliver_ms, phase_ms->reduce_ms);
      len = std::min(len, static_cast<int>(sizeof(buf)) - 1);
    }
    if (peak_heap_bytes != 0) {
      len += std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len),
                           ", \"peak_heap_bytes\": %llu",
                           static_cast<unsigned long long>(peak_heap_bytes));
      len = std::min(len, static_cast<int>(sizeof(buf)) - 1);
    }
    std::snprintf(buf + len, sizeof(buf) - static_cast<std::size_t>(len), "}");
    records_.emplace_back(buf);
  }

  /// Escape hatch for benches whose schema doesn't fit the flat record
  /// above (e.g. the superstep-throughput microbench): `json` must be one
  /// complete object, no trailing comma.
  void record_raw(std::string json) { records_.push_back("    " + std::move(json)); }

  void record(const char* family, std::size_t n, std::size_t m, MachineId k,
              unsigned threads, const BoruvkaResult& res, double wall_ms) {
    record(family, n, m, k, threads, res.stats, res.phases.size(), wall_ms);
  }

  ~BenchJson() {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return;
    // hardware_concurrency contextualizes every thread-scaling section: a
    // 1-core CI runner's ~1x speedups are expected, not regressions.
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"hardware_concurrency\": %u,\n  \"records\": [\n",
                 name_.c_str(), std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  std::vector<std::string> records_;
};

/// Weighted graph with distinct weights for MST experiments.
inline Graph weighted_unique(Graph g, std::uint64_t seed, Weight limit = 1'000'000) {
  Rng rng(seed);
  return with_unique_weights(with_random_weights(g, rng, limit));
}

/// Shared runtime thread-scaling harness: run `runner(threads)` over
/// threads ∈ {1, 2, 4, 8}, print wall-clock and speedup vs threads=1,
/// record every run into `json`, and enforce the runtime's ledger
/// invariant (the simulated round count must not depend on the thread
/// count). Returns false — after printing a LEDGER MISMATCH line — if the
/// invariant is violated, so benches can exit nonzero.
inline bool run_thread_scaling_stats(const char* family, std::size_t n, std::size_t m,
                                     MachineId k, BenchJson& json,
                                     const std::function<TimedStats(unsigned)>& runner) {
  std::printf("%8s %10s %9s %9s %14s %11s %11s %10s %9s\n", "threads", "rounds", "wall_ms",
              "speedup", "allocs/sstep", "handler_ms", "deliver_ms", "reduce_ms", "peak_MB");
  double base_ms = 0.0;
  std::uint64_t base_rounds = 0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const auto timed = runner(threads);
    if (threads == 1) {
      base_ms = timed.wall_ms;
      base_rounds = timed.stats.rounds;
    }
    const double aps = allocs_per_superstep(timed, timed.stats.supersteps);
    std::printf("%8u %10llu %9.1f %8.2fx %14.1f %11.1f %11.1f %10.1f %9.1f\n", threads,
                static_cast<unsigned long long>(timed.stats.rounds), timed.wall_ms,
                base_ms / timed.wall_ms, aps, timed.phase.handler_ms, timed.phase.deliver_ms,
                timed.phase.reduce_ms,
                static_cast<double>(timed.peak_heap_bytes) / (1024.0 * 1024.0));
    if (timed.stats.rounds != base_rounds) {
      std::printf("  LEDGER MISMATCH at threads=%u — runtime invariant violated\n", threads);
      return false;
    }
    json.record(family, n, m, k, threads, timed.stats, timed.phases, timed.wall_ms, aps,
                &timed.phase, timed.peak_heap_bytes);
  }
  return true;
}

inline bool run_thread_scaling(const char* family, std::size_t n, std::size_t m, MachineId k,
                               BenchJson& json,
                               const std::function<TimedResult(unsigned)>& runner) {
  return run_thread_scaling_stats(
      family, n, m, k, json, [&](unsigned threads) {
        const auto timed = runner(threads);
        return TimedStats{timed.result.stats, timed.result.phases.size(), timed.wall_ms,
                          timed.allocs, timed.peak_heap_bytes, timed.phase};
      });
}

/// log-log slope of rounds against k (the paper predicts ~ -2 for the
/// sketch algorithms, ~ -1 for the n/k baselines).
inline double slope_vs_k(const std::vector<double>& ks, const std::vector<double>& rounds) {
  return loglog_slope(ks, rounds);
}

inline void print_slope(const char* label, const std::vector<double>& ks,
                        const std::vector<double>& rounds) {
  std::printf("  fitted log-log slope of %-28s : %+.2f\n", label,
              slope_vs_k(ks, rounds));
}

}  // namespace kmmbench
