// E14 (ablations): the design choices the paper argues for, measured.
//
//  A. Random proxies vs a single coordinator — Section 1.2's "trivial
//     strategy" congests one machine: rounds degrade from ~n/k^2 to ~n/k.
//  B. DRR vs footnote 9's coin-flip merge rule — both O(log n) phases;
//     coin-flip needs ~2x the phases (merge probability 1/4 vs 1/2) but
//     its merge trees have depth 1.
//  C. Theorem 2(a) vs 2(b) output criteria — announcing each MST edge to
//     both home machines costs ~n/k extra on high-degree (star) graphs.
//  D. Sketch repetition count — failure rate vs wire size.
//  E. Bandwidth sensitivity — rounds scale ~1/B, shape in k unchanged.

#include <cmath>

#include "bench_common.hpp"

using namespace kmmbench;

int main() {
  banner("E14: design-choice ablations",
         "proxies beat a coordinator (~n/k^2 vs ~n/k); DRR vs coin-flip "
         "merging; output criterion (a) vs (b); sketch copies; bandwidth");

  // --- A: proxies vs coordinator -----------------------------------------
  std::printf("A. random proxies vs single coordinator (gnm n=8192, m=3n):\n");
  std::printf("%4s %14s %14s %8s\n", "k", "proxies", "coordinator", "ratio");
  {
    Rng rng(1);
    const Graph g = gen::gnm(8192, 3 * 8192, rng);
    std::vector<double> kd, prox, coord;
    for (const MachineId k : {MachineId{4}, MachineId{8}, MachineId{16}, MachineId{32}}) {
      Cluster c1(ClusterConfig::for_graph(8192, k));
      Cluster c2(ClusterConfig::for_graph(8192, k));
      const VertexPartition part = VertexPartition::random(8192, k, split(3, k));
      const DistributedGraph d1(g, part), d2(g, part);
      // The randomness relay charges the same in both modes; disable it so
      // the table isolates the routing effect the paper argues about.
      BoruvkaConfig pc{.seed = split(5, k), .charge_randomness = false};
      BoruvkaConfig cc = pc;
      cc.single_coordinator = true;
      const auto rp = connected_components(c1, d1, pc).stats.rounds;
      const auto rc = connected_components(c2, d2, cc).stats.rounds;
      std::printf("%4u %14llu %14llu %8.2f\n", k, static_cast<unsigned long long>(rp),
                  static_cast<unsigned long long>(rc),
                  static_cast<double>(rc) / static_cast<double>(rp));
      kd.push_back(k);
      prox.push_back(static_cast<double>(rp));
      coord.push_back(static_cast<double>(rc));
    }
    print_slope("proxies rounds vs k (~ -2)", kd, prox);
    print_slope("coordinator rounds vs k (~ -1)", kd, coord);
  }

  // --- B: merge rules -----------------------------------------------------
  std::printf("\nB. DRR vs coin-flip merging (footnote 9), gnm n=4096 m=3n, k=16:\n");
  std::printf("%-10s %8s %10s %12s %14s\n", "rule", "phases", "rounds", "merge-iters",
              "correct");
  {
    Rng rng(7);
    const Graph g = gen::gnm(4096, 3 * 4096, rng);
    const auto expected = ref::component_count(g);
    for (const MergeRule rule : {MergeRule::kDrr, MergeRule::kCoinFlip}) {
      Accumulator phases, rounds, iters;
      bool correct = true;
      for (int trial = 0; trial < 5; ++trial) {
        Cluster c(ClusterConfig::for_graph(4096, 16));
        const DistributedGraph d(g, VertexPartition::random(4096, 16, split(9, trial)));
        BoruvkaConfig cfg{.seed = split(11, trial)};
        cfg.merge_rule = rule;
        const auto res = connected_components(c, d, cfg);
        phases.add(static_cast<double>(res.phases.size()));
        rounds.add(static_cast<double>(res.stats.rounds));
        iters.add(res.max_merge_iterations);
        correct &= res.num_components == expected;
      }
      std::printf("%-10s %8.1f %10.0f %12.0f %14s\n",
                  rule == MergeRule::kDrr ? "drr" : "coin-flip", phases.mean(),
                  rounds.mean(), iters.max(), correct ? "yes" : "NO");
    }
  }

  // --- C: output criteria (Theorem 2a vs 2b) ------------------------------
  std::printf("\nC. MST output criterion (a) vs (b) on star-heavy graphs:\n");
  std::printf("%6s %4s %12s %14s %10s\n", "n", "k", "mst(a) rds", "announce(b) rds",
              "(b) slope target ~ -1");
  for (const std::size_t n : {std::size_t{2048}, std::size_t{8192}}) {
    std::vector<double> kd, announce;
    for (const MachineId k : {MachineId{4}, MachineId{8}, MachineId{16}, MachineId{32}}) {
      // A star's MST is all n-1 edges; the center's home machine must learn
      // every one of them under criterion (b).
      const Graph g = weighted_unique(gen::star(n), split(13, n));
      Cluster c(ClusterConfig::for_graph(n, k));
      const DistributedGraph d(g, VertexPartition::random(n, k, split(15, k)));
      BoruvkaConfig cfg{.seed = split(17, k)};
      const auto mst = minimum_spanning_forest(c, d, cfg);
      const auto strict = announce_mst_to_home_machines(c, d, mst);
      std::printf("%6zu %4u %12llu %14llu\n", n, k,
                  static_cast<unsigned long long>(mst.stats.rounds),
                  static_cast<unsigned long long>(strict.stats.rounds));
      kd.push_back(k);
      announce.push_back(static_cast<double>(strict.stats.rounds));
    }
    std::printf("  n=%zu:", n);
    print_slope("announce rounds vs k (~ -1)", kd, announce);
  }

  // --- D: sketch copies ----------------------------------------------------
  std::printf("\nD. sketch repetitions: failure rate vs size (universe 2^24):\n");
  std::printf("%8s %14s %14s\n", "copies", "fail-rate", "wire-bits");
  for (const int copies : {1, 2, 3, 5}) {
    constexpr std::uint64_t kU = 1ULL << 24;
    const auto params = L0Params::for_universe(kU, copies);
    Rng rng(19);
    int failures = 0;
    constexpr int kTrials = 1500;
    for (int trial = 0; trial < kTrials; ++trial) {
      L0Sampler s(kU, params, split(21, trial));
      const int size = 1 + static_cast<int>(rng.next_below(2000));
      for (int i = 0; i < size; ++i) s.update(rng.next_below(kU), 1);
      if (!s.sample().has_value()) ++failures;
    }
    std::printf("%8d %14.4f %14llu\n", copies,
                static_cast<double>(failures) / kTrials,
                static_cast<unsigned long long>(L0Sampler(kU, params, 1).wire_bits()));
  }

  // --- F: 2-edge-connectivity extension (Section 5 future work) -----------
  std::printf("\nF. 2-edge-connectivity via sparse certificates (extension):\n");
  std::printf("%6s %4s %10s %14s %14s %8s\n", "n", "k", "total", "forests(n/k2)",
              "collect(n/k)", "verdict");
  {
    for (const std::size_t n : {std::size_t{1024}, std::size_t{4096}}) {
      Rng rng(split(31, n));
      const Graph g = gen::connected_gnm(n, 3 * n, rng);
      const bool expected = ref::is_two_edge_connected(g);
      for (const MachineId k : {MachineId{8}, MachineId{32}}) {
        Cluster c(ClusterConfig::for_graph(n, k));
        const DistributedGraph d(g, VertexPartition::random(n, k, split(33, k)));
        BoruvkaConfig cfg{.seed = split(35, k)};
        const auto res = two_edge_connectivity(c, d, cfg);
        std::printf("%6zu %4u %10llu %14llu %14llu %8s\n", n, k,
                    static_cast<unsigned long long>(res.stats.rounds),
                    static_cast<unsigned long long>(res.forest_stats.rounds),
                    static_cast<unsigned long long>(res.collect_stats.rounds),
                    res.two_edge_connected == expected ? "correct" : "WRONG");
      }
    }
    std::printf("  (the o(n/k) complexity of 2-edge-connectivity is the paper's open "
                "problem;\n   the certificate collection is the ~n/k term here)\n");
  }

  // --- E: bandwidth sensitivity --------------------------------------------
  std::printf("\nE. bandwidth sensitivity (gnm n=2048 m=3n, k=16):\n");
  std::printf("%12s %10s %18s\n", "B (bits)", "rounds", "rounds*B (flat=ok)");
  {
    Rng rng(23);
    const Graph g = gen::gnm(2048, 3 * 2048, rng);
    for (const std::uint64_t b : {1024ULL, 4096ULL, 16384ULL, 65536ULL}) {
      ClusterConfig cc;
      cc.k = 16;
      cc.bandwidth_bits = b;
      Cluster c(cc);
      const DistributedGraph d(g, VertexPartition::random(2048, 16, 25));
      BoruvkaConfig cfg{.seed = 27};
      const auto res = connected_components(c, d, cfg);
      std::printf("%12llu %10llu %18.2e\n", static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(res.stats.rounds),
                  static_cast<double>(res.stats.rounds) * static_cast<double>(b));
    }
  }
  return 0;
}
