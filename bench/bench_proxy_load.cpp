// E10 (Lemma 1): randomized proxy routing balances load — every superstep
// delivers with per-link loads of O~(n/k^2) message-bits w.h.p.
//
// Runs connectivity and reports the distribution of per-superstep maximum
// link loads from the cluster ledger, against the n/k^2 prediction, and
// contrasts RVP with an adversarially skewed partition.

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

void profile(const char* name, const Graph& g, const VertexPartition& part, MachineId k,
             std::uint64_t seed) {
  Cluster cluster(ClusterConfig::for_graph(g.num_vertices(), k));
  const DistributedGraph dg(g, part);
  BoruvkaConfig cfg;
  cfg.seed = seed;
  const auto res = connected_components(cluster, dg, cfg);
  const auto& acc = cluster.stats().superstep_link_max;
  const double n = static_cast<double>(g.num_vertices());
  // A phase-1 sketch superstep moves ~n sketches of wire size s over k^2
  // links: per-link ~ n*s/k^2 bits.
  const GraphSketchBuilder probe(g.num_vertices(), 1);
  const double sketch_bits = static_cast<double>(probe.empty_sketch().wire_bits());
  const double predicted = n * sketch_bits / (static_cast<double>(k) * k);
  std::printf("%-22s k=%2u  link-max bits: mean %10.0f  p100 %10.0f  "
              "n*s/k^2 %10.0f  ratio %5.2f  rounds %8llu\n",
              name, k, acc.mean(), acc.max(), predicted, acc.max() / predicted,
              static_cast<unsigned long long>(res.stats.rounds));
}

}  // namespace

int main() {
  banner("E10: proxy load balancing (Lemma 1)",
         "all proxy-bound messages delivered with per-link load O~(n/k^2) "
         "whp — no machine hot-spots under RVP");

  const std::size_t n = 4096;
  Rng rng(121);
  const Graph g = gen::gnm(n, 3 * n, rng);

  for (const MachineId k : {MachineId{8}, MachineId{16}, MachineId{32}}) {
    profile("rvp/random", g, VertexPartition::random(n, k, split(123, k)), k,
            split(125, k));
  }
  std::printf("\nadversarial vertex placement (60%% of vertices on machine 0):\n");
  for (const MachineId k : {MachineId{8}, MachineId{16}}) {
    profile("skewed(0.6)", g, VertexPartition::skewed(n, k, 0.6), k, split(127, k));
  }
  std::printf(
      "\nreading: under RVP the observed per-link maxima track n*s/k^2 within a\n"
      "small constant; the skewed partition concentrates parts on machine 0's\n"
      "links, inflating the ratio — exactly the congestion Lemma 1's proxy\n"
      "randomization is designed to avoid (proxies stay random, but the\n"
      "*senders* are now concentrated).\n");
  return 0;
}
