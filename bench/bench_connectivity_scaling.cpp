// E1/E12 (Theorem 1): connectivity in O~(n/k^2) rounds; superlinear
// speedup in k; component counting folded in at O~(n/k^2).
//
// Prints rounds(n, k) for G(n, 3n) and a multi-component family, the
// normalization rounds*k^2/n (flat in k if the claim holds), and the
// fitted log-log slope of rounds vs k (should be ~ -2). A final section
// measures the src/runtime/ thread scaling: same ledger, shrinking
// wall-clock. Every run is appended to BENCH_connectivity_scaling.json.

#include "bench_common.hpp"

using namespace kmmbench;

int main() {
  banner("E1: connectivity scaling (Theorem 1)",
         "O~(n/k^2) rounds; speedup quadratic in k; counting adds O~(n/k^2)");
  BenchJson json("connectivity_scaling");

  const std::vector<std::size_t> ns{2048, 8192, 32768};
  const std::vector<MachineId> ks{4, 8, 16, 32};

  std::printf("%-18s %6s %4s %10s %10s %12s %12s %8s %7s %9s\n", "family", "n", "k",
              "rounds", "msgs", "bits", "rk2/n", "phases", "cc", "wall_ms");
  for (const std::size_t n : ns) {
    Rng rng(split(1, n));
    const Graph g = gen::gnm(n, 3 * n, rng);
    std::vector<double> kd, rounds, kd_regime, rounds_regime;
    const std::uint64_t lg = bits_for(n);
    for (const MachineId k : ks) {
      const auto timed = run_connectivity_timed(g, k, split(2, n * 100 + k));
      const auto& res = timed.result;
      const double norm = static_cast<double>(res.stats.rounds) * k * k / n;
      std::printf("%-18s %6zu %4u %10llu %10llu %12llu %12.1f %8zu %7llu %9.1f\n",
                  "gnm(3n)", n, k, static_cast<unsigned long long>(res.stats.rounds),
                  static_cast<unsigned long long>(res.stats.messages),
                  static_cast<unsigned long long>(res.stats.bits), norm, res.phases.size(),
                  static_cast<unsigned long long>(res.num_components), timed.wall_ms);
      json.record("gnm(3n)", n, g.num_edges(), k, 1, res, timed.wall_ms);
      kd.push_back(k);
      rounds.push_back(static_cast<double>(res.stats.rounds));
      // The Theorem 1 bound is n/k^2 *plus additive polylog*; the quadratic
      // shape is the claim only while n/k^2 dominates the hidden log
      // factors. Fit a second slope restricted to that regime.
      if (n / (static_cast<std::size_t>(k) * k) >= lg) {
        kd_regime.push_back(k);
        rounds_regime.push_back(static_cast<double>(res.stats.rounds));
      }
    }
    std::printf("  n=%zu:", n);
    print_slope("rounds vs k, all points", kd, rounds);
    if (kd_regime.size() >= 2) {
      std::printf("  n=%zu:", n);
      print_slope("rounds vs k, n/k^2 >= log2(n) regime", kd_regime, rounds_regime);
    }
  }

  // Disconnected inputs: counting the components costs only the final
  // O~(n/k^2) protocol on top (Section 2, closing remark).
  std::printf("\nmulti-component family (8 components):\n");
  for (const MachineId k : ks) {
    Rng rng(7);
    const Graph g = gen::multi_component(4096, 10000, 8, rng);
    const auto timed = run_connectivity_timed(g, k, split(3, k));
    const auto& res = timed.result;
    std::printf("%-18s %6u %4u %10llu %10llu %12llu %12.1f %8zu %7llu %9.1f\n", "multi(8)",
                4096u, k, static_cast<unsigned long long>(res.stats.rounds),
                static_cast<unsigned long long>(res.stats.messages),
                static_cast<unsigned long long>(res.stats.bits),
                static_cast<double>(res.stats.rounds) * k * k / 4096, res.phases.size(),
                static_cast<unsigned long long>(res.num_components), timed.wall_ms);
    json.record("multi(8)", 4096, g.num_edges(), k, 1, res, timed.wall_ms);
  }

  // Runtime thread scaling: the simulated ledger is identical across thread
  // counts (tests/test_runtime.cpp proves bit-identity); what changes is the
  // wall-clock of the simulation itself, dominated by per-machine sketch
  // construction. Speedup here requires actual cores — on a single-core
  // host the column stays ~1x.
  std::printf("\nruntime thread scaling, gnm(3n) n=120000, k=16:\n");
  {
    const std::size_t n = 120000;
    Rng rng(split(5, n));
    const Graph g = gen::gnm(n, 3 * n, rng);
    if (!run_thread_scaling("gnm(3n)-threads", n, g.num_edges(), 16, json,
                            [&](unsigned threads) {
                              return run_connectivity_timed(g, 16, split(6, n), threads);
                            })) {
      return 1;
    }
  }
  return 0;
}
