// E13 ([22] Theorem 4.1, Sections 1.2 & 2): the Conversion Theorem cost
// model, and why converted congested-clique algorithms are stuck at
// Ω~(n/k) — their Δ' (per-node per-round messages) scales with degree.
//
// Compares: measured flooding rounds, the conversion-theorem prediction
// O~(M/k^2 + Δ'T/k) for flooding's profile, and the direct sketch
// algorithm.

#include "bench_common.hpp"

using namespace kmmbench;

namespace {

void family(const char* name, const Graph& g) {
  const std::size_t n = g.num_vertices();
  const std::size_t diameter = ref::diameter_lower_bound(g);
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < n; ++v) max_deg = std::max(max_deg, g.degree(v));
  const auto profile = flooding_profile(n, g.num_edges(), diameter, max_deg);

  std::printf("\n%s (n=%zu, m=%zu, D>=%zu, maxdeg=%zu):\n", name, n, g.num_edges(),
              diameter, max_deg);
  std::printf("%4s %16s %16s %14s\n", "k", "flooding-meas", "conversion-pred",
              "sketch-conn");
  for (const MachineId k : {MachineId{4}, MachineId{8}, MachineId{16}, MachineId{32}}) {
    const VertexPartition part = VertexPartition::random(n, k, split(131, k));
    std::uint64_t flood_rounds;
    {
      Cluster c(ClusterConfig::for_graph(n, k));
      const DistributedGraph dg(g, part);
      flood_rounds = flooding_connectivity(c, dg).stats.rounds;
    }
    std::uint64_t conn_rounds;
    {
      Cluster c(ClusterConfig::for_graph(n, k));
      const DistributedGraph dg(g, part);
      BoruvkaConfig cfg;
      cfg.seed = split(133, k);
      conn_rounds = connected_components(c, dg, cfg).stats.rounds;
    }
    std::printf("%4u %16llu %16llu %14llu\n", k,
                static_cast<unsigned long long>(flood_rounds),
                static_cast<unsigned long long>(conversion_rounds(profile, k)),
                static_cast<unsigned long long>(conn_rounds));
  }
  std::printf("  conversion bound decomposition at k=16: M/k^2 = %llu, "
              "Δ'T/k = %llu (Δ' term keeps it at ~n/k)\n",
              static_cast<unsigned long long>(profile.message_complexity / (16 * 16)),
              static_cast<unsigned long long>(
                  profile.max_node_degree_msgs * profile.round_complexity / 16));
}

}  // namespace

int main() {
  banner("E13: Conversion Theorem cost model ([22] Thm 4.1)",
         "simulating a congested-clique algorithm costs O~(M/k^2 + Δ'T/k); "
         "degree-bound Δ' pins converted algorithms at Ω~(n/k)");

  Rng rng(135);
  family("gnm(2048, 3n)", gen::gnm(2048, 3 * 2048, rng));
  family("clique_chain(128 x 16)", gen::clique_chain(128, 16));
  family("star(2048)", gen::star(2048));
  return 0;
}
