#include "fault/fault_plane.hpp"

#include <algorithm>
#include <cstdio>

#include "durable/durable_store.hpp"
#include "util/assert.hpp"

namespace kmm {

namespace {

constexpr char kRule8Msg[] =
    "fault plane: crash injected into a program that is not checkpointable, "
    "has no registered state hooks, and does not support reset() — see "
    "porting recipe rule 8 in runtime.hpp";

inline std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return a == 0 ? 0 : (a + b - 1) / b;
}

}  // namespace

void FaultPlane::ensure_k(MachineId k) {
  if (k_ == k) return;
  KMM_CHECK_MSG(k_ == 0, "one FaultPlane cannot span clusters of different k");
  k_ = k;
  per_src_bits_.assign(k, 0);
  overhead_bits_.assign(static_cast<std::size_t>(k) * k, 0);
  link_seq_.assign(static_cast<std::size_t>(k) * k, 0);
  store_.ensure(k);
  hook_store_.ensure(k);
  replay_shard_.resize(k);
  ring_.resize(config_.checkpoint_every);
  for (RingSlot& slot : ring_) slot.inbox.resize(k);
}

void FaultPlane::checkpoint_all(Cluster& cluster, MachineProgram& program,
                                CheckpointStore& store, bool via_hooks) {
  const MachineId k = cluster.k();
  for (MachineId m = 0; m < k; ++m) {
    WordWriter& w = store.writer(m);
    if (via_hooks) {
      snapshot_(m, w);
    } else {
      program.snapshot(m, w);
    }
    stats_.checkpoint_words += w.size();
  }
  store.set_step(ordinal_);
  ++stats_.checkpoints;
}

std::size_t FaultPlane::begin_step(Cluster& cluster, MachineProgram& program) {
  const MachineId k = cluster.k();
  ensure_k(k);
  if (pending_resume_ != nullptr) apply_resume(cluster, program);
  crash_scratch_.clear();
  schedule_->crashes_at(ordinal_, k, crash_scratch_);
  if (!crash_scratch_.empty() &&
      std::find(consumed_restarts_.begin(), consumed_restarts_.end(), ordinal_) !=
          consumed_restarts_.end()) {
    crash_scratch_.clear();  // this ordinal's crashes restarted the phase already
  }
  if (config_.lethal_crashes) {
    // Serving-layer kill model: no checkpoints, no logs, no recovery. A
    // crash-free schedule makes this branch a pure no-op (the silent-plane
    // neutrality the retry determinism tests rely on); a scheduled crash
    // kills the whole attempt for the service to retry on a fresh cluster.
    if (crash_scratch_.empty()) return 0;
    stats_.crashes += crash_scratch_.size();
    step_events_ += crash_scratch_.size();
    throw QueryKilled{ordinal_, crash_scratch_.front().machine};
  }
  const bool checkpointable = program.checkpointable();
  const bool ckpt_active = config_.always_checkpoint || schedule_->has_crashes();
  // An attached durable store activates cadence checkpointing on its own:
  // the whole point of durability is surviving a kill the schedule never
  // planned, so a crash-free schedule must still produce generations.
  const bool durable_active = durable_ != nullptr && checkpointable;

  if ((ckpt_active || durable_active) && checkpointable &&
      ordinal_ % config_.checkpoint_every == 0) {
    checkpoint_all(cluster, program, store_, /*via_hooks=*/false);
    if (durable_active) durable_commit(cluster, program);
  }
  if (!crash_scratch_.empty() && !checkpointable && restore_ != nullptr) {
    // Hook mode has no replay log (the per-step lambdas are gone once a
    // step retires), so the "checkpoint" is taken at the crash instant and
    // the victim is rebuilt purely from the serialized words — a round-trip
    // that fails loudly whenever the hooks miss a piece of state.
    checkpoint_all(cluster, program, hook_store_, /*via_hooks=*/true);
  }

  if (!crash_scratch_.empty()) {
    if (checkpointable) {
      recover_checkpointable(cluster, program);
    } else if (restore_ != nullptr) {
      for (const FaultSchedule::Crash& c : crash_scratch_) {
        WordReader r(hook_store_.words(c.machine));
        restore_(c.machine, r);
        KMM_CHECK_MSG(r.done(), "fault plane: state hook restore left unread words");
        ++stats_.restores;
      }
    } else {
      KMM_CHECK_MSG(false, kRule8Msg);
    }
    unsigned stall = 0;
    for (const FaultSchedule::Crash& c : crash_scratch_) {
      rebuild_inbox(cluster, c.machine);
      stall = std::max(stall, c.stall);  // concurrent crashes overlap their stalls
      ++stats_.crashes;
      if (c.hang) ++stats_.watchdog_trips;
    }
    cluster.charge_rounds(stall);
    stats_.stall_rounds += stall;
    step_events_ += crash_scratch_.size();
  }

  if (ckpt_active && checkpointable) log_inboxes(cluster);
  return crash_scratch_.size();
}

void FaultPlane::recover_checkpointable(Cluster& cluster, MachineProgram& program) {
  const std::uint64_t c0 = store_.step();
  KMM_DCHECK(c0 <= ordinal_ && ordinal_ - c0 < config_.checkpoint_every);
  for (const FaultSchedule::Crash& c : crash_scratch_) {
    WordReader r(store_.words(c.machine));
    program.restore(c.machine, r);
    KMM_CHECK_MSG(r.done(), "fault plane: MachineProgram::restore left unread words");
    ++stats_.restores;
    // Replay the victim forward through its logged inboxes. Its sends are
    // discarded: the receivers processed the originals in the live run, and
    // the per-link sequence numbers mark the replays as duplicates.
    for (std::uint64_t t = c0; t < ordinal_; ++t) {
      RingSlot& slot = ring_[t % config_.checkpoint_every];
      KMM_CHECK_MSG(slot.step == t, "fault plane: replay log slot was overwritten");
      replay_shard_.clear();
      Outbox out(replay_shard_, c.machine, cluster.k());
      program.on_superstep(c.machine, slot.inbox[c.machine], out);
      ++stats_.replayed_steps;
    }
  }
  replay_shard_.clear();
}

void FaultPlane::rebuild_inbox(Cluster& cluster, MachineId victim) {
  // The crash loses the victim's current inbox; senders retransmit from
  // their outbox logs. In simulation the content is recoverable in place
  // (copy out, drop, re-inject), and the protocol cost is charged exactly
  // like a delivery: max over inbound links of ceil(bits / bandwidth).
  inbox_scratch_.clear();
  scratch_arena_.reset();
  std::fill(per_src_bits_.begin(), per_src_bits_.end(), 0);
  for (const Message& m : cluster.inbox(victim)) {
    Message copy = m;
    copy.reintern(scratch_arena_);
    inbox_scratch_.push_back(copy);
    if (copy.src != victim) per_src_bits_[copy.src] += copy.wire_bits();
  }
  cluster.clear_inbox(victim);
  std::uint64_t retrans = 0;
  for (MachineId s = 0; s < k_; ++s) {
    if (per_src_bits_[s] == 0) continue;
    stats_.retransmit_bits += per_src_bits_[s];
    retrans = std::max(retrans, ceil_div(per_src_bits_[s], cluster.bandwidth_bits()));
  }
  if (retrans > 0) {
    cluster.charge_rounds(retrans);
    stats_.overhead_rounds += retrans;
  }
  for (const Message& m : inbox_scratch_) cluster.inject_inbox(victim, m);
}

void FaultPlane::log_inboxes(Cluster& cluster) {
  RingSlot& slot = ring_[ordinal_ % config_.checkpoint_every];
  slot.step = ordinal_;
  slot.arena.reset();
  for (MachineId m = 0; m < k_; ++m) {
    auto& log = slot.inbox[m];
    const auto inbox = cluster.inbox(m);
    log.assign(inbox.begin(), inbox.end());
    for (Message& msg : log) msg.reintern(slot.arena);
  }
}

void FaultPlane::durable_commit(Cluster& cluster, MachineProgram& program) {
  // The in-RAM generation (store_) was just taken at this ordinal; the frame
  // marries it to the ledger-so-far and the inbox this superstep's handlers
  // are about to read — everything a restarted process needs to re-enter the
  // computation at exactly this instant.
  frame_scratch_.clear(k_);
  frame_scratch_.state_version = program.state_version();
  frame_scratch_.ordinal = ordinal_;
  frame_scratch_.ledger = cluster.stats();
  for (MachineId m = 0; m < k_; ++m) {
    const auto words = store_.words(m);
    frame_scratch_.machine_words[m].assign(words.begin(), words.end());
    for (const Message& msg : cluster.inbox(m)) {
      DurableFrame::FrameMessage fm;
      fm.src = msg.src;
      fm.dst = msg.dst;
      fm.tag = msg.tag;
      fm.bits = msg.bits;
      const auto payload = msg.payload();
      fm.payload.assign(payload.begin(), payload.end());
      frame_scratch_.inbox[m].push_back(std::move(fm));
    }
  }
  auto committed = durable_->commit(frame_scratch_);
  if (!committed.ok()) {
    // A durability plane that silently stops persisting is worse than one
    // that stops the run: fail loudly with the structured diagnostic.
    std::fprintf(stderr, "kmm: durable checkpoint commit failed [%s]: %s (%s)\n",
                 durable_error_name(committed.error().code),
                 committed.error().message.c_str(), committed.error().path.c_str());
    KMM_CHECK_MSG(false, "durable checkpoint commit failed — refusing to run undurably");
  }
  ++stats_.durable_commits;
}

void FaultPlane::apply_resume(Cluster& cluster, MachineProgram& program) {
  const DurableFrame& frame = *pending_resume_;
  pending_resume_ = nullptr;
  KMM_CHECK_MSG(frame.k == k_, "durable resume: frame cluster width mismatch");
  KMM_CHECK_MSG(program.checkpointable(),
                "durable resume requires a checkpointable program — see porting "
                "recipe rule 10 in runtime.hpp");
  for (MachineId m = 0; m < k_; ++m) {
    WordReader r(frame.machine_words[m]);
    program.restore(m, r);
    KMM_CHECK_MSG(r.done(), "durable resume: restore left unread words");
  }
  // Re-inject the frame's inbox window (ledger-free — the bits were charged
  // before the frame was taken) and restore the ledger itself, then rewind
  // the plane to the frame's ordinal. From here deterministic re-execution
  // reproduces the uninterrupted run bit-for-bit.
  scratch_arena_.reset();
  for (MachineId m = 0; m < k_; ++m) {
    cluster.clear_inbox(m);
    for (const DurableFrame::FrameMessage& fm : frame.inbox[m]) {
      cluster.inject_inbox(
          m, Message::make(fm.src, fm.dst, fm.tag, fm.payload, fm.bits, scratch_arena_));
    }
  }
  cluster.restore_stats(frame.ledger);
  ordinal_ = frame.ordinal;
  ++stats_.resumes;
}

void FaultPlane::apply_link_faults(Cluster& cluster, std::span<OutboxShard> shards) {
  if (!schedule_->has_link_faults()) return;
  const MachineId k = cluster.k();
  ensure_k(k);
  bool any_overhead = false;
  for (MachineId src = 0; src < k; ++src) {
    for (MachineId dst = 0; dst < k; ++dst) {
      if (src == dst) continue;  // local messages never touch a wire
      auto& bucket = shards[src].buckets[dst];
      if (bucket.empty()) continue;
      std::uint64_t& link_overhead = overhead_bits_[static_cast<std::size_t>(src) * k + dst];
      std::uint64_t& next_seq = link_seq_[static_cast<std::size_t>(src) * k + dst];
      const bool shuffled = schedule_->reordered(ordinal_, src, dst);

      // Transmit side: sequence-number every message, then emulate the
      // per-message faults. Drops model bounded retransmission (each failed
      // attempt burns the wire bits); a duplicate inserts an in-transit
      // copy under the same sequence number.
      transit_scratch_.clear();
      for (std::uint64_t idx = 0; idx < bucket.size(); ++idx) {
        Message msg = bucket[idx];
        const unsigned fails = schedule_->drop_attempts(ordinal_, src, dst, idx);
        if (fails > 0) {
          link_overhead += std::uint64_t{fails} * msg.wire_bits();
          stats_.drops += fails;
          step_events_ += fails;
        }
        std::uint64_t mask = 0;
        if (msg.payload_words() > 0 &&
            schedule_->corrupted(ordinal_, src, dst, idx, &mask)) {
          // Same word count and declared bits: the ledger is structurally
          // blind to the tamper — only the verification layer can see it.
          auto payload = msg.payload();
          corrupt_words_.assign(payload.begin(), payload.end());
          corrupt_words_.back() ^= mask;
          msg = Message::make(msg.src, msg.dst, msg.tag, corrupt_words_, msg.bits,
                              shards[src].arena);
          ++stats_.corruptions;
          ++step_events_;
        }
        const std::uint64_t seq = next_seq + idx;
        const std::uint64_t rank =
            shuffled ? schedule_->shuffle_rank(ordinal_, src, dst, seq) : seq;
        transit_scratch_.push_back({seq, rank, msg});
        if (schedule_->duplicated(ordinal_, src, dst, idx)) {
          link_overhead += msg.wire_bits();
          ++stats_.duplicates;
          ++step_events_;
          transit_scratch_.push_back({seq, rank + 1, msg});
        }
      }
      next_seq += bucket.size();

      if (shuffled) {
        std::sort(transit_scratch_.begin(), transit_scratch_.end(),
                  [](const TransitMsg& a, const TransitMsg& b) {
                    return a.rank != b.rank ? a.rank < b.rank : a.seq < b.seq;
                  });
        ++stats_.reorders;
        ++step_events_;
      }

      // Receive side: a stable sort by sequence number restores send order
      // whatever transit did, and adjacent equal sequences are duplicate
      // transmissions — suppressed. The bucket handed to delivery is thus
      // exactly the fault-free sequence again.
      std::stable_sort(transit_scratch_.begin(), transit_scratch_.end(),
                       [](const TransitMsg& a, const TransitMsg& b) { return a.seq < b.seq; });
      bucket.clear();
      std::uint64_t last_seq = ~std::uint64_t{0};
      for (const TransitMsg& t : transit_scratch_) {
        if (t.seq == last_seq) continue;
        last_seq = t.seq;
        bucket.push_back(t.msg);
      }
      if (link_overhead > 0) any_overhead = true;
    }
  }
  if (any_overhead) {
    // The overhead charge follows the delivery rule: the most-loaded link's
    // extra bits, rounded up to rounds. Per-link accumulators are reset for
    // the next step (capacity retained, no allocation).
    std::uint64_t extra = 0;
    for (std::uint64_t& bits : overhead_bits_) {
      extra = std::max(extra, ceil_div(bits, cluster.bandwidth_bits()));
      bits = 0;
    }
    cluster.charge_rounds(extra);
    stats_.overhead_rounds += extra;
  }
}

std::uint64_t FaultPlane::maybe_restart(Cluster& cluster, MachineProgram& program) {
  if (program.checkpointable() || restore_ != nullptr) return 0;  // begin_step recovers
  const MachineId k = cluster.k();
  ensure_k(k);
  crash_scratch_.clear();
  schedule_->crashes_at(ordinal_, k, crash_scratch_);
  if (crash_scratch_.empty()) return 0;
  KMM_CHECK_MSG(program.reset(), kRule8Msg);
  consumed_restarts_.push_back(ordinal_);
  unsigned stall = 0;
  for (const FaultSchedule::Crash& c : crash_scratch_) {
    stall = std::max(stall, c.stall);
    ++stats_.crashes;
    if (c.hang) ++stats_.watchdog_trips;
  }
  ++stats_.restarts;
  step_events_ += crash_scratch_.size();
  // The phase restarts from scratch: every machine's in-flight input is
  // part of the lost state.
  for (MachineId m = 0; m < k; ++m) cluster.clear_inbox(m);
  cluster.charge_rounds(stall);
  stats_.stall_rounds += stall;
  return stall;
}

}  // namespace kmm
