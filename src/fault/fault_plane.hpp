#pragma once
// Fault-injection & recovery plane for the superstep runtime.
//
// Rides the same seam as ObsSink: a nullable FaultPlane* in RuntimeConfig.
// Detached (the default), the runtime's behaviour and ledger are
// bit-identical to a build without the plane; attached, the plane executes
// a deterministic FaultSchedule and the recovery machinery that keeps
// algorithms *correct* through it:
//
//  * Machine crashes. At the scheduled superstep the victim loses its
//    in-memory state and current inbox. Recovery depends on the program:
//      - checkpointable MachinePrograms (snapshot/restore overrides) are
//        checkpointed every C supersteps into a CheckpointStore; the victim
//        is rolled back to the last checkpoint and its logged inboxes are
//        replayed (sends during replay are discarded — receivers already
//        processed them; the per-link sequence numbers of the transit
//        protocol below are exactly the duplicate-suppression a real
//        retransmit needs);
//      - lambda-driven engines (flooding, Borůvka) register state hooks
//        (StateHookScope): the plane snapshots every machine at the crash
//        instant and rebuilds the victim purely from the serialized words —
//        an honest restore-from-words round-trip validating that the hooks
//        capture the complete state;
//      - programs with neither must support MachineProgram::reset(): the
//        Runtime::run loop restarts the phase from superstep 0 (rule 8 in
//        runtime.hpp). Anything else aborts with a pointer to that rule.
//    The victim's lost inbox is rebuilt by retransmission from the senders'
//    outbox logs: rounds are charged for the stall (R) plus the per-link
//    retransmit cost, ceil(bits/bandwidth) maxed over inbound links — the
//    same accounting rule as the delivery ledger, hence thread-invariant.
//
//  * Lossy links. After the handler barrier and before delivery, the plane
//    emulates transit on every cross-machine bucket: messages carry
//    per-link sequence numbers; drops burn wire bits per failed attempt
//    (bounded retry), duplicates burn a copy's bits, reorders permute the
//    transit order — and the receiver side restores delivery order by
//    sequence number and discards duplicate sequences. The delivered inbox
//    is therefore *exactly* the fault-free one; the faults' entire ledger
//    effect is deterministic extra rounds (most-loaded link's overhead),
//    so lossy runs stay answer- and thread-invariant.
//
//  * Corruption. A corrupt draw XORs a nonzero mask into the payload's
//    last word, preserving size and declared bits (the ledger cannot see
//    it). Corruption is NOT recovered — it exists to be *caught* by the
//    verification/referee layer downstream, turning the schedule into an
//    end-to-end audit of the certificate checking.
//
//  * Watchdog. Scheduled hangs (add_hang) become deterministic crashes,
//    counted separately; an optional wall-clock handler deadline only bumps
//    a diagnostic counter (wall time must never influence the ledger).
//
// All plane entry points run on the driver thread between handler barriers
// (deadline overrun notes excepted — those are atomic). The plane keeps a
// global step ordinal across sequential Runtimes sharing it, mirroring how
// one MetricsTimeline spans a whole algorithm run.

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "durable/durable_format.hpp"
#include "fault/checkpoint_store.hpp"
#include "fault/fault_schedule.hpp"
#include "runtime/machine_program.hpp"

namespace kmm {

class DurableStore;

struct FaultPlaneConfig {
  /// Checkpoint cadence C for checkpointable MachinePrograms: snapshots are
  /// taken at every superstep ordinal divisible by C, and a crash replays
  /// at most C-1 logged supersteps.
  unsigned checkpoint_every = 8;
  /// Checkpoint/log even when the schedule cannot crash anyone — the knob
  /// bench_faults uses to measure pure checkpoint overhead.
  bool always_checkpoint = false;
  /// Wall-clock budget per handler phase; 0 disables. Diagnostic only:
  /// overruns are counted (FaultStats::deadline_overruns), never charged —
  /// deterministic simulated hangs come from FaultSchedule::add_hang.
  std::uint64_t handler_deadline_ns = 0;
  /// Lethal mode (the serving layer's process-kill model): a scheduled
  /// crash is not recovered — begin_step throws QueryKilled instead, and
  /// ALL checkpoint/log/replay machinery is skipped, so a schedule with no
  /// crashes is a true no-op plane (link faults still emulate normally).
  /// The service catches QueryKilled, discards the attempt's cluster, and
  /// re-runs under its retry policy.
  bool lethal_crashes = false;
};

/// Thrown by FaultPlane::begin_step in lethal mode when a scheduled crash
/// fires: the whole attempt dies (a machine loss without recovery), to be
/// retried by the serving layer on a fresh cluster. Deliberately not a
/// std::exception subclass — nothing below the service should catch it.
struct QueryKilled {
  std::uint64_t superstep = 0;  // plane ordinal at which the attempt died
  MachineId machine = 0;        // first scheduled victim
};

struct FaultStats {
  std::uint64_t crashes = 0;          // machines crashed (watchdog trips included)
  std::uint64_t watchdog_trips = 0;   // crashes that were scheduled hangs
  std::uint64_t restores = 0;         // checkpoint/hook restores performed
  std::uint64_t restarts = 0;         // phase restarts (non-checkpointable fallback)
  std::uint64_t replayed_steps = 0;   // logged supersteps replayed after rollback
  std::uint64_t checkpoints = 0;      // checkpoint generations taken
  std::uint64_t checkpoint_words = 0; // total words serialized into checkpoints
  std::uint64_t stall_rounds = 0;     // rounds charged for crash stalls
  std::uint64_t retransmit_bits = 0;  // wire bits retransmitted into rebuilt inboxes
  std::uint64_t drops = 0;            // failed transmission attempts
  std::uint64_t duplicates = 0;       // in-transit duplicates (receiver-suppressed)
  std::uint64_t reorders = 0;         // buckets reordered in transit
  std::uint64_t corruptions = 0;      // payloads tampered in transit
  std::uint64_t overhead_rounds = 0;  // rounds charged for retransmit/lossy overhead
  std::uint64_t deadline_overruns = 0;  // wall-clock watchdog notes (diagnostic)
  std::uint64_t durable_commits = 0;  // frames committed to the durable store
  std::uint64_t resumes = 0;          // durable resume frames applied
};

class FaultPlane {
 public:
  explicit FaultPlane(const FaultSchedule& schedule, FaultPlaneConfig config = {})
      : schedule_(&schedule), config_(config) {
    KMM_CHECK_MSG(config_.checkpoint_every >= 1, "checkpoint cadence must be >= 1");
  }

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Per-machine algorithm-state serialization hooks for lambda-driven
  /// engines (no persistent MachineProgram). snapshot(m, w) must write and
  /// restore(m, r) fully consume machine m's complete state.
  using SnapshotFn = std::function<void(MachineId, WordWriter&)>;
  using RestoreFn = std::function<void(MachineId, WordReader&)>;

  void set_state_hooks(SnapshotFn snapshot, RestoreFn restore) {
    snapshot_ = std::move(snapshot);
    restore_ = std::move(restore);
  }
  void clear_state_hooks() {
    snapshot_ = nullptr;
    restore_ = nullptr;
  }
  [[nodiscard]] bool has_state_hooks() const noexcept { return restore_ != nullptr; }

  // ------------------------------------------------ Durable tee & resume
  // (src/durable/): with a store attached, every cadence checkpoint of a
  // checkpointable program is ALSO committed to disk as a full resume frame
  // — per-machine state words, the superstep ordinal, the complete
  // ClusterStats ledger, and the inbox-replay window (the exact input the
  // checkpointed superstep's handlers are about to read). Attaching a store
  // activates cadence checkpointing even for a crash-free schedule.

  /// Borrowed; nullable. The store's fingerprint is stamped into frames.
  void set_durable_store(DurableStore* store) noexcept { durable_ = store; }
  [[nodiscard]] DurableStore* durable_store() const noexcept { return durable_; }

  /// Arm a recovered frame (RecoveryManager::recover): the NEXT begin_step
  /// restores every machine's state, re-injects the frame's inboxes,
  /// restores the cluster ledger, and rewinds the plane's ordinal to the
  /// frame's — after which deterministic re-execution reproduces the
  /// uninterrupted run bit-for-bit. The frame is borrowed and must outlive
  /// that first step. Requires a checkpointable program (rule 10).
  void arm_resume(const DurableFrame* frame) noexcept { pending_resume_ = frame; }

  // ------------------------------------------------ Runtime integration
  // (driver thread only; called by Runtime::step / Runtime::run)

  /// Start-of-step processing: periodic checkpoint, crash recovery (restore
  /// + replay + inbox retransmission + stall charging), inbox logging.
  /// Returns the number of crash victims this step (for the recovery span).
  std::size_t begin_step(Cluster& cluster, MachineProgram& program);

  /// Transit emulation over the sharded outboxes, between the handler
  /// barrier and delivery. Post-condition: every bucket holds exactly the
  /// fault-free message sequence (payload corruption aside); the overhead
  /// rounds of drops/duplicates are charged analytically.
  void apply_link_faults(Cluster& cluster, std::span<OutboxShard> shards);

  /// Advance the plane's global superstep ordinal (end of Runtime::step).
  void end_step() noexcept { ++ordinal_; }

  /// Fault events (crashes, drops, duplicates, reorders, corruptions)
  /// accumulated since the last call — the MetricsTimeline column feed.
  [[nodiscard]] std::uint64_t take_step_events() noexcept {
    const std::uint64_t e = step_events_;
    step_events_ = 0;
    return e;
  }

  /// Restart fallback, called by Runtime::run *before* each step: when a
  /// crash is scheduled at the current ordinal and the program is neither
  /// checkpointable nor hook-covered, reset() the program, drop every
  /// inbox, and charge the stall. Returns the rounds charged (0 = no
  /// restart). The consumed events will not fire again in begin_step.
  std::uint64_t maybe_restart(Cluster& cluster, MachineProgram& program);

  void note_deadline_overrun() noexcept {
    deadline_overruns_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t handler_deadline_ns() const noexcept {
    return config_.handler_deadline_ns;
  }

  [[nodiscard]] FaultStats stats() const {
    FaultStats s = stats_;
    s.deadline_overruns = deadline_overruns_.load(std::memory_order_relaxed);
    return s;
  }
  [[nodiscard]] std::uint64_t step_ordinal() const noexcept { return ordinal_; }
  [[nodiscard]] const FaultSchedule& schedule() const noexcept { return *schedule_; }
  [[nodiscard]] const FaultPlaneConfig& config() const noexcept { return config_; }

 private:
  void ensure_k(MachineId k);
  void checkpoint_all(Cluster& cluster, MachineProgram& program, CheckpointStore& store,
                      bool via_hooks);
  void recover_checkpointable(Cluster& cluster, MachineProgram& program);
  void rebuild_inbox(Cluster& cluster, MachineId victim);
  void log_inboxes(Cluster& cluster);
  void durable_commit(Cluster& cluster, MachineProgram& program);
  void apply_resume(Cluster& cluster, MachineProgram& program);

  struct RingSlot {
    std::uint64_t step = ~std::uint64_t{0};
    std::vector<std::vector<Message>> inbox;  // [machine] -> that step's input
    PayloadArena arena;
  };
  struct TransitMsg {
    std::uint64_t seq;   // per-link sequence number (send order)
    std::uint64_t rank;  // PRF shuffle key when the bucket reorders
    Message msg;
  };

  const FaultSchedule* schedule_;
  FaultPlaneConfig config_;
  FaultStats stats_;
  std::atomic<std::uint64_t> deadline_overruns_{0};
  std::uint64_t ordinal_ = 0;      // global superstep ordinal across Runtimes
  std::uint64_t step_events_ = 0;  // timeline column accumulator
  MachineId k_ = 0;

  SnapshotFn snapshot_;
  RestoreFn restore_;

  CheckpointStore store_;       // checkpointable-program generations (cadence C)
  CheckpointStore hook_store_;  // hook-mode crash-instant snapshots
  DurableStore* durable_ = nullptr;            // borrowed on-disk tee; nullable
  const DurableFrame* pending_resume_ = nullptr;  // applied at the next begin_step
  DurableFrame frame_scratch_;                 // commit staging, capacity retained
  std::vector<RingSlot> ring_;  // C slots of logged inboxes for replay
  OutboxShard replay_shard_;    // sink for replayed sends (discarded)

  std::vector<FaultSchedule::Crash> crash_scratch_;
  std::vector<Message> inbox_scratch_;      // victim inbox copy during rebuild
  PayloadArena scratch_arena_;              // backs inbox_scratch_ payloads
  std::vector<std::uint64_t> per_src_bits_; // k entries: retransmit accounting
  std::vector<std::uint64_t> overhead_bits_;   // k*k per-link transit overhead
  std::vector<TransitMsg> transit_scratch_;    // per-bucket transit emulation
  std::vector<std::uint64_t> corrupt_words_;   // payload rewrite scratch
  std::vector<std::uint64_t> link_seq_;        // k*k cumulative sequence numbers
  std::vector<std::uint64_t> consumed_restarts_;  // ordinals handled by restart
};

/// RAII registration of hook-mode state serializers on a plane (the pattern
/// flooding_connectivity and the Borůvka engine use): hooks are cleared on
/// scope exit so a plane outliving the run cannot call into dead state.
class StateHookScope {
 public:
  StateHookScope(FaultPlane* plane, FaultPlane::SnapshotFn snapshot,
                 FaultPlane::RestoreFn restore)
      : plane_(plane) {
    if (plane_ != nullptr) plane_->set_state_hooks(std::move(snapshot), std::move(restore));
  }
  ~StateHookScope() {
    if (plane_ != nullptr) plane_->clear_state_hooks();
  }
  StateHookScope(const StateHookScope&) = delete;
  StateHookScope& operator=(const StateHookScope&) = delete;

 private:
  FaultPlane* plane_;
};

}  // namespace kmm
