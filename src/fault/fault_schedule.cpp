#include "fault/fault_schedule.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace kmm {

namespace {

struct NamedProfile {
  std::string_view name;
  FaultProfile profile;
};

constexpr FaultProfile make_profile(double crash, double drop, double dup, double reorder,
                                    double corrupt) {
  FaultProfile p;
  p.crash_prob = crash;
  p.drop_prob = drop;
  p.dup_prob = dup;
  p.reorder_prob = reorder;
  p.corrupt_prob = corrupt;
  return p;
}

// Rates chosen so a few-hundred-superstep run sees a handful of each fault
// class without degenerating into noise; `chaos` excludes corruption (see
// FaultProfile::find's doc comment).
constexpr NamedProfile kProfiles[] = {
    {"none", make_profile(0.0, 0.0, 0.0, 0.0, 0.0)},
    {"crashes", make_profile(0.05, 0.0, 0.0, 0.0, 0.0)},
    {"lossy", make_profile(0.0, 0.05, 0.03, 0.05, 0.0)},
    {"corrupt", make_profile(0.0, 0.0, 0.0, 0.0, 0.05)},
    {"chaos", make_profile(0.03, 0.04, 0.02, 0.04, 0.0)},
};

}  // namespace

const FaultProfile* FaultProfile::find(std::string_view name) {
  for (const auto& entry : kProfiles) {
    if (entry.name == name) return &entry.profile;
  }
  return nullptr;
}

FaultProfile FaultProfile::named(std::string_view name) {
  const FaultProfile* p = find(name);
  KMM_CHECK_MSG(p != nullptr, "unknown fault profile name");
  return *p;
}

void FaultSchedule::crashes_at(std::uint64_t step, MachineId k, std::vector<Crash>& out) const {
  out.clear();
  for (MachineId m = 0; m < k; ++m) {
    if (passes(split3(seed_ ^ kSaltCrash, step, m), profile_.crash_prob)) {
      out.push_back({m, profile_.crash_stall, false});
    }
  }
  for (const ExplicitCrash& c : crashes_) {
    if (c.step != step) continue;
    const unsigned stall = c.stall != 0 ? c.stall : profile_.crash_stall;
    auto it = std::find_if(out.begin(), out.end(),
                           [&](const Crash& e) { return e.machine == c.machine; });
    if (it == out.end()) {
      out.push_back({c.machine, stall, c.hang});
    } else {
      it->stall = std::max(it->stall, stall);
      it->hang = it->hang || c.hang;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Crash& a, const Crash& b) { return a.machine < b.machine; });
}

bool FaultSchedule::explicit_link(std::uint64_t step, MachineId src, MachineId dst,
                                  std::uint64_t msg_index, LinkFaultKind kind) const {
  for (const ExplicitLink& f : links_) {
    if (f.step != step || f.src != src || f.dst != dst || f.kind != kind) continue;
    if (kind == LinkFaultKind::kReorder || f.msg_index == msg_index) return true;
  }
  return false;
}

unsigned FaultSchedule::drop_attempts(std::uint64_t step, MachineId src, MachineId dst,
                                      std::uint64_t msg_index) const {
  const std::uint64_t hm = split(link_key(kSaltDrop, step, src, dst), msg_index);
  unsigned attempts = 0;
  while (attempts < profile_.max_drop_attempts &&
         passes(split(hm, 100 + attempts), profile_.drop_prob)) {
    ++attempts;
  }
  if (attempts == 0 && explicit_link(step, src, dst, msg_index, LinkFaultKind::kDrop)) {
    attempts = 1;
  }
  return attempts;
}

bool FaultSchedule::duplicated(std::uint64_t step, MachineId src, MachineId dst,
                               std::uint64_t msg_index) const {
  const std::uint64_t hm = split(link_key(kSaltDup, step, src, dst), msg_index);
  return passes(split(hm, 200), profile_.dup_prob) ||
         explicit_link(step, src, dst, msg_index, LinkFaultKind::kDuplicate);
}

bool FaultSchedule::corrupted(std::uint64_t step, MachineId src, MachineId dst,
                              std::uint64_t msg_index, std::uint64_t* mask) const {
  const std::uint64_t hm = split(link_key(kSaltCorrupt, step, src, dst), msg_index);
  if (!passes(split(hm, 300), profile_.corrupt_prob) &&
      !explicit_link(step, src, dst, msg_index, LinkFaultKind::kCorrupt)) {
    return false;
  }
  // A small nonzero low-bit flip: large enough to change any value, small
  // enough that an in-range label usually stays in range, exercising the
  // verification layer (not the bounds asserts) as the detector.
  *mask = 1 + (split(hm, 301) % 7);
  return true;
}

bool FaultSchedule::reordered(std::uint64_t step, MachineId src, MachineId dst) const {
  return passes(split(link_key(kSaltReorder, step, src, dst), 400), profile_.reorder_prob) ||
         explicit_link(step, src, dst, 0, LinkFaultKind::kReorder);
}

FaultSchedule service_attempt_schedule(std::uint64_t seed, std::uint64_t query_id,
                                       std::uint64_t attempt, double kill_prob,
                                       std::uint64_t horizon, MachineId k,
                                       FaultProfile profile) {
  KMM_CHECK_MSG(k >= 1, "service_attempt_schedule needs at least one machine");
  KMM_CHECK_MSG(horizon >= 1, "kill horizon must be >= 1 superstep");
  // Every crash must come from the single kill draw below (see the header
  // doc): zero the profile's own crash stream before seeding the schedule.
  profile.crash_prob = 0.0;
  FaultSchedule schedule(split3(seed, query_id, attempt), profile);
  constexpr std::uint64_t kSaltKill = 0x6b696c6cull;  // "kill"
  const std::uint64_t draw = split3(seed ^ kSaltKill, query_id, attempt);
  bool kill = false;
  if (kill_prob >= 1.0) {
    kill = true;
  } else if (kill_prob > 0.0) {
    kill = (draw >> 11) < static_cast<std::uint64_t>(kill_prob * 9007199254740992.0);
  }
  if (kill) {
    const std::uint64_t step = split(draw, 1) % horizon;
    const MachineId machine = static_cast<MachineId>(split(draw, 2) % k);
    schedule.add_crash(step, machine);
  }
  return schedule;
}

bool FaultSchedule::ingest_alloc_fails(MachineId machine) const {
  if (std::find(ingest_fails_.begin(), ingest_fails_.end(), machine) != ingest_fails_.end()) {
    return true;
  }
  return passes(split3(seed_ ^ kSaltAlloc, 0, machine), profile_.alloc_fail_prob);
}

}  // namespace kmm
