#pragma once
// Capacity-retaining storage for one generation of per-machine checkpoints.
//
// The fault plane snapshots every machine's algorithm state as a flat word
// vector (WordWriter), tagged with the superstep ordinal it was taken at.
// Overwriting a generation reuses each machine's buffer (WordWriter::clear
// keeps capacity), so periodic checkpointing allocates only until the
// largest snapshot has been seen — after warmup a checkpoint is pure
// memcpy-speed serialization, which is what bench_faults measures.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

class CheckpointStore {
 public:
  /// Make room for k machines (idempotent; existing buffers retained).
  /// MachineId is a 32-bit unsigned index, so widening it to the vector's
  /// std::size_t is value-preserving — made explicit here so the mixed
  /// comparison below cannot silently change meaning if MachineId ever
  /// grows a different width or signedness.
  void ensure(MachineId k) {
    const auto want = static_cast<std::size_t>(k);
    if (writers_.size() < want) writers_.resize(want);
  }

  /// Begin machine m's snapshot for the current generation: returns a
  /// cleared writer the serializer appends to. Indexing a store that was
  /// never ensure()d for machine m is a caller bug; fail loudly in debug
  /// builds instead of handing out an out-of-bounds reference.
  [[nodiscard]] WordWriter& writer(MachineId m) {
    KMM_DCHECK(static_cast<std::size_t>(m) < writers_.size());
    WordWriter& w = writers_[static_cast<std::size_t>(m)];
    w.clear();
    return w;
  }

  [[nodiscard]] std::span<const std::uint64_t> words(MachineId m) const {
    KMM_DCHECK(static_cast<std::size_t>(m) < writers_.size());
    return writers_[static_cast<std::size_t>(m)].words();
  }

  void set_step(std::uint64_t step) noexcept { step_ = step; }
  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }

  [[nodiscard]] std::size_t total_words() const noexcept {
    std::size_t total = 0;
    for (const WordWriter& w : writers_) total += w.size();
    return total;
  }

 private:
  std::vector<WordWriter> writers_;  // one buffer per machine, reused
  std::uint64_t step_ = 0;           // superstep this generation was taken at
};

}  // namespace kmm
