#pragma once
// Capacity-retaining storage for one generation of per-machine checkpoints.
//
// The fault plane snapshots every machine's algorithm state as a flat word
// vector (WordWriter), tagged with the superstep ordinal it was taken at.
// Overwriting a generation reuses each machine's buffer (WordWriter::clear
// keeps capacity), so periodic checkpointing allocates only until the
// largest snapshot has been seen — after warmup a checkpoint is pure
// memcpy-speed serialization, which is what bench_faults measures.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/partition.hpp"
#include "util/codec.hpp"

namespace kmm {

class CheckpointStore {
 public:
  /// Make room for k machines (idempotent; existing buffers retained).
  void ensure(MachineId k) {
    if (writers_.size() < k) writers_.resize(k);
  }

  /// Begin machine m's snapshot for the current generation: returns a
  /// cleared writer the serializer appends to.
  [[nodiscard]] WordWriter& writer(MachineId m) {
    WordWriter& w = writers_[m];
    w.clear();
    return w;
  }

  [[nodiscard]] std::span<const std::uint64_t> words(MachineId m) const {
    return writers_[m].words();
  }

  void set_step(std::uint64_t step) noexcept { step_ = step; }
  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }

  [[nodiscard]] std::size_t total_words() const noexcept {
    std::size_t total = 0;
    for (const WordWriter& w : writers_) total += w.size();
    return total;
  }

 private:
  std::vector<WordWriter> writers_;  // one buffer per machine, reused
  std::uint64_t step_ = 0;           // superstep this generation was taken at
};

}  // namespace kmm
