#pragma once
// Deterministic fault schedule for the k-machine simulator.
//
// Every injected fault is a pure function of the schedule seed and a
// structural key — (superstep, machine) for crashes, (superstep, src, dst,
// msg_index) for per-message link faults — evaluated through the same
// splitmix64 PRF the generators use. Wall-clock never enters a decision, so
// a schedule replays bit-identically across runs and thread counts: the
// fault plane (fault_plane.hpp) can promise that a recovered run's ledger
// is a deterministic function of (algorithm, graph, schedule) alone, which
// is what makes fault injection a regression test rather than a fuzzer.
//
// Probabilistic draws (FaultProfile) and explicit events (add_crash /
// add_link_fault / ...) compose: tests pin single events, smoke runs turn a
// named profile loose over every key.

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/partition.hpp"
#include "util/random.hpp"

namespace kmm {

/// Fault rates, all keyed per structural event (never per wall-second).
/// Rates are evaluated independently, so one message can be dropped (and
/// retransmitted) *and* duplicated in the same transit.
struct FaultProfile {
  double crash_prob = 0.0;    // per (superstep, machine)
  unsigned crash_stall = 2;   // R: rounds a crashed machine stalls the run
  double drop_prob = 0.0;     // per transmission attempt of a message
  double dup_prob = 0.0;      // per message: one in-transit duplicate
  double reorder_prob = 0.0;  // per (superstep, directed link)
  double corrupt_prob = 0.0;  // per message: payload bit-flip in transit
  unsigned max_drop_attempts = 4;  // retransmit bound per message
  double alloc_fail_prob = 0.0;    // per machine, at stream-ingest layout

  /// Named presets for CLIs and CI smoke runs. `corrupt` is the only preset
  /// that tampers with payloads — corruption is meant to be *detected* by
  /// the verification layer, not recovered from, so `chaos` (crashes +
  /// lossy links at once) deliberately excludes it.
  [[nodiscard]] static const FaultProfile* find(std::string_view name);
  /// As find(), but aborts on an unknown name (library-internal callers).
  [[nodiscard]] static FaultProfile named(std::string_view name);
};

/// Kinds of explicit per-link fault events (add_link_fault). For kReorder
/// the msg_index key is ignored — reordering is a per-bucket event.
enum class LinkFaultKind : std::uint8_t { kDrop, kDuplicate, kCorrupt, kReorder };

class FaultSchedule {
 public:
  explicit FaultSchedule(std::uint64_t seed, FaultProfile profile = {})
      : seed_(seed), profile_(profile) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const FaultProfile& profile() const noexcept { return profile_; }

  // ----------------------------------------------------------- explicit events

  /// Crash `machine` at plane superstep `step`; it recovers within the step
  /// (checkpoint restore + replay) at a cost of `stall` rounds (0 = the
  /// profile's crash_stall).
  void add_crash(std::uint64_t step, MachineId machine, unsigned stall = 0) {
    crashes_.push_back({step, machine, stall, false});
  }
  /// A handler hang at (step, machine): the deadline watchdog converts it
  /// into a deterministic simulated crash (FaultStats counts it separately).
  void add_hang(std::uint64_t step, MachineId machine) {
    crashes_.push_back({step, machine, 0, true});
  }
  void add_link_fault(std::uint64_t step, MachineId src, MachineId dst,
                      std::uint64_t msg_index, LinkFaultKind kind) {
    links_.push_back({step, msg_index, src, dst, kind});
  }
  void add_ingest_alloc_failure(MachineId machine) { ingest_fails_.push_back(machine); }

  // ------------------------------------------------------------------- crashes

  struct Crash {
    MachineId machine = 0;
    unsigned stall = 0;
    bool hang = false;
  };

  /// All crash/hang events at `step` over machines [0, k): PRF draws plus
  /// explicit events, ascending machine, one entry per machine (stall is
  /// maxed, hang is OR-ed when draws collide).
  void crashes_at(std::uint64_t step, MachineId k, std::vector<Crash>& out) const;

  /// True when any crash is possible (probabilistic or explicit) — gates
  /// the plane's checkpointing so crash-free schedules stay allocation-free.
  [[nodiscard]] bool has_crashes() const noexcept {
    return profile_.crash_prob > 0.0 || !crashes_.empty();
  }
  [[nodiscard]] bool has_link_faults() const noexcept {
    return profile_.drop_prob > 0.0 || profile_.dup_prob > 0.0 ||
           profile_.reorder_prob > 0.0 || profile_.corrupt_prob > 0.0 || !links_.empty();
  }

  // ---------------------------------------------------------- per-message draws

  /// Consecutive failed transmission attempts of message `msg_index` on
  /// (src -> dst) at `step`, bounded by max_drop_attempts. Each failed
  /// attempt burns the message's wire bits; attempt a+1 is an independent
  /// PRF draw, so the retry protocol's cost distribution is geometric.
  [[nodiscard]] unsigned drop_attempts(std::uint64_t step, MachineId src, MachineId dst,
                                       std::uint64_t msg_index) const;
  [[nodiscard]] bool duplicated(std::uint64_t step, MachineId src, MachineId dst,
                                std::uint64_t msg_index) const;
  /// When true, *mask is a nonzero XOR to apply to the payload's last word.
  [[nodiscard]] bool corrupted(std::uint64_t step, MachineId src, MachineId dst,
                               std::uint64_t msg_index, std::uint64_t* mask) const;
  [[nodiscard]] bool reordered(std::uint64_t step, MachineId src, MachineId dst) const;
  /// Deterministic in-transit shuffle key for the seq-th message of a
  /// reordered bucket (ties broken by seq at the sort site).
  [[nodiscard]] std::uint64_t shuffle_rank(std::uint64_t step, MachineId src, MachineId dst,
                                           std::uint64_t seq) const {
    return split(link_key(kSaltReorder, step, src, dst), seq);
  }

  /// Whether machine `machine` should fail its shard allocation at
  /// stream-ingest layout time (explicit event or alloc_fail_prob draw).
  [[nodiscard]] bool ingest_alloc_fails(MachineId machine) const;

 private:
  // Salts keep the per-fault-class PRF streams independent.
  static constexpr std::uint64_t kSaltCrash = 0x6372617368ull;    // "crash"
  static constexpr std::uint64_t kSaltDrop = 0x64726f70ull;       // "drop"
  static constexpr std::uint64_t kSaltDup = 0x647570ull;          // "dup"
  static constexpr std::uint64_t kSaltCorrupt = 0x636f7272ull;    // "corr"
  static constexpr std::uint64_t kSaltReorder = 0x72656f72ull;    // "reor"
  static constexpr std::uint64_t kSaltAlloc = 0x616c6c6f63ull;    // "alloc"

  /// Uniform [0, 2^53) draw vs. probability threshold.
  [[nodiscard]] static bool passes(std::uint64_t draw, double prob) noexcept {
    if (prob <= 0.0) return false;
    if (prob >= 1.0) return true;
    return (draw >> 11) < static_cast<std::uint64_t>(prob * 9007199254740992.0);
  }

  [[nodiscard]] std::uint64_t link_key(std::uint64_t salt, std::uint64_t step, MachineId src,
                                       MachineId dst) const noexcept {
    return split3(seed_ ^ salt, step,
                  (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst));
  }

  [[nodiscard]] bool explicit_link(std::uint64_t step, MachineId src, MachineId dst,
                                   std::uint64_t msg_index, LinkFaultKind kind) const;

  struct ExplicitCrash {
    std::uint64_t step;
    MachineId machine;
    unsigned stall;
    bool hang;
  };
  struct ExplicitLink {
    std::uint64_t step;
    std::uint64_t msg_index;
    MachineId src;
    MachineId dst;
    LinkFaultKind kind;
  };

  std::uint64_t seed_;
  FaultProfile profile_;
  std::vector<ExplicitCrash> crashes_;  // linear scans: schedules are tiny
  std::vector<ExplicitLink> links_;
  std::vector<MachineId> ingest_fails_;
};

/// The serving layer's chaos schedule for one query attempt: ONE PRF kill
/// draw per (query, attempt) decides whether — and deterministically where
/// and when — this attempt dies (an explicit crash for the lethal plane to
/// convert into QueryKilled). One draw per attempt, not per (step, machine),
/// so retries converge geometrically: P(attempt survives) = 1 - kill_prob
/// regardless of query length or k. The link-fault rates of `profile` ride
/// along unchanged, but its crash_prob is zeroed — in chaos mode every
/// crash must come from the kill draw, so a surviving attempt carries an
/// empty crash schedule and (by the plane's silent-crash neutrality) a
/// ledger bit-identical to an undisturbed run.
[[nodiscard]] FaultSchedule service_attempt_schedule(std::uint64_t seed,
                                                     std::uint64_t query_id,
                                                     std::uint64_t attempt, double kill_prob,
                                                     std::uint64_t horizon, MachineId k,
                                                     FaultProfile profile = {});

}  // namespace kmm
