#pragma once
// The Figure 1 graph family: spanning-connected-subgraph instances encoding
// set disjointness (Theorem 5's reduction).
//
// G has vertices s, t, u_1..u_b, v_1..v_b (n = 2b + 2) and edges
//   (s,t), (u_i,v_i), (s,u_i), (v_i,t)   for 1 <= i <= b.
// The candidate subgraph H keeps all (u_i, v_i) rungs and (s, t), plus
//   (s,u_i)  iff X[i] = 0     and     (v_i,t)  iff Y[i] = 0.
// H spans G and is connected iff X and Y are disjoint: an intersecting
// index i strands the rung {u_i, v_i} from both sides. G has diameter 2,
// matching the paper's remark that the bound holds even at diameter 2.

#include <vector>

#include "graph/graph.hpp"
#include "lowerbound/disjointness.hpp"

namespace kmm {

struct ScsInstance {
  Graph g;
  std::vector<std::pair<Vertex, Vertex>> h_edges;
  Vertex s = 0, t = 1;
  std::size_t b = 0;

  /// Vertex ids: s = 0, t = 1, u_i = 2 + i, v_i = 2 + b + i.
  [[nodiscard]] Vertex u(std::size_t i) const { return static_cast<Vertex>(2 + i); }
  [[nodiscard]] Vertex v(std::size_t i) const { return static_cast<Vertex>(2 + b + i); }

  static ScsInstance build(const DisjointnessInstance& inst);
};

}  // namespace kmm
