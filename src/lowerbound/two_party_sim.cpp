#include "lowerbound/two_party_sim.hpp"

#include "cluster/distributed_graph.hpp"
#include "core/verification.hpp"
#include "util/assert.hpp"

namespace kmm {

TwoPartyResult simulate_scs_two_party(const DisjointnessInstance& inst, MachineId k,
                                      std::uint64_t seed, const BoruvkaConfig& config) {
  KMM_CHECK_MSG(k >= 2 && k % 2 == 0, "two-party simulation needs an even k >= 2");
  const ScsInstance scs = ScsInstance::build(inst);
  const std::size_t n = scs.g.num_vertices();
  const MachineId half = k / 2;

  Rng rng(split(seed, 0xa11ceb0bULL));
  auto alice_machine = [&] { return static_cast<MachineId>(rng.next_below(half)); };
  auto bob_machine = [&] { return static_cast<MachineId>(half + rng.next_below(half)); };

  // Vertex placement per the reduction (random *within* each side).
  std::vector<MachineId> table(n);
  table[scs.t] = alice_machine();  // Alice hosts t
  table[scs.s] = bob_machine();    // Bob hosts s
  for (std::size_t i = 0; i < scs.b; ++i) {
    // Alice received X[i] iff Bob did NOT see it revealed; the reduction
    // only needs "the holder of the bit hosts the vertex".
    table[scs.u(i)] = inst.x_seen_by_bob[i] ? bob_machine() : alice_machine();
    table[scs.v(i)] = inst.y_seen_by_alice[i] ? alice_machine() : bob_machine();
  }

  Cluster cluster(ClusterConfig::for_graph(n, k));
  std::vector<std::uint8_t> side(k, 0);
  for (MachineId i = half; i < k; ++i) side[i] = 1;
  cluster.track_cut(std::move(side));

  const DistributedGraph dg(scs.g, VertexPartition::from_table(std::move(table), k));
  BoruvkaConfig cfg = config;
  cfg.seed = split(seed, 0x5c5);
  const auto verdict = verify_spanning_connected_subgraph(cluster, dg, scs.h_edges, cfg);

  TwoPartyResult out;
  out.verdict = verdict.ok;
  out.expected = inst.disjoint();
  out.cut_bits = cluster.stats().cut_bits;
  out.total_bits = cluster.stats().total_bits;
  out.rounds = cluster.stats().rounds;
  out.b = inst.b();
  return out;
}

}  // namespace kmm
