#pragma once
// Two-party simulation of a k-machine protocol (Theorem 5).
//
// Machines are split between Alice (M_A = machines 0..k/2-1) and Bob
// (M_B = k/2..k-1). Vertices are placed following the reduction: u_i lands
// on Alice's side iff Alice received X[i] under the random input partition
// (likewise v_i with Bob/Y); t on a random Alice machine, s on a random
// Bob machine. Running the SCS verifier then measures, via the cluster's
// cut ledger, exactly the bits Alice and Bob would exchange — the quantity
// Lemma 8 lower-bounds by Ω(b).

#include <cstdint>

#include "core/boruvka.hpp"
#include "lowerbound/scs_instance.hpp"

namespace kmm {

struct TwoPartyResult {
  bool verdict = false;        // protocol's SCS answer
  bool expected = false;       // ground truth (X, Y disjoint)
  std::uint64_t cut_bits = 0;  // bits crossing the Alice/Bob boundary
  std::uint64_t total_bits = 0;
  std::uint64_t rounds = 0;
  std::size_t b = 0;
};

[[nodiscard]] TwoPartyResult simulate_scs_two_party(const DisjointnessInstance& inst,
                                                    MachineId k, std::uint64_t seed,
                                                    const BoruvkaConfig& config = {});

}  // namespace kmm
