#include "lowerbound/disjointness.hpp"

#include "util/assert.hpp"

namespace kmm {

bool DisjointnessInstance::disjoint() const noexcept {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] && y[i]) return false;
  }
  return true;
}

DisjointnessInstance DisjointnessInstance::random(std::size_t b, double density, Rng& rng) {
  KMM_CHECK(b >= 1);
  DisjointnessInstance inst;
  inst.x.resize(b);
  inst.y.resize(b);
  inst.x_seen_by_bob.resize(b);
  inst.y_seen_by_alice.resize(b);
  for (std::size_t i = 0; i < b; ++i) {
    inst.x[i] = rng.next_bool(density) ? 1 : 0;
    inst.y[i] = rng.next_bool(density) ? 1 : 0;
    inst.x_seen_by_bob[i] = rng.next_bool(0.5) ? 1 : 0;
    inst.y_seen_by_alice[i] = rng.next_bool(0.5) ? 1 : 0;
  }
  return inst;
}

DisjointnessInstance DisjointnessInstance::random_disjoint(std::size_t b, double density,
                                                           Rng& rng) {
  DisjointnessInstance inst = random(b, density, rng);
  for (std::size_t i = 0; i < b; ++i) {
    if (inst.x[i] && inst.y[i]) inst.y[i] = 0;
  }
  KMM_CHECK(inst.disjoint());
  return inst;
}

DisjointnessInstance DisjointnessInstance::random_intersecting(std::size_t b, double density,
                                                               Rng& rng) {
  DisjointnessInstance inst = random(b, density, rng);
  const auto hit = static_cast<std::size_t>(rng.next_below(b));
  inst.x[hit] = 1;
  inst.y[hit] = 1;
  KMM_CHECK(!inst.disjoint());
  return inst;
}

}  // namespace kmm
