#include "lowerbound/scs_instance.hpp"

#include "util/assert.hpp"

namespace kmm {

ScsInstance ScsInstance::build(const DisjointnessInstance& inst) {
  ScsInstance out;
  out.b = inst.b();
  const std::size_t n = 2 * out.b + 2;
  std::vector<WeightedEdge> edges;
  edges.reserve(3 * out.b + 1);

  edges.push_back(WeightedEdge{out.s, out.t, 1});
  out.h_edges.emplace_back(out.s, out.t);
  for (std::size_t i = 0; i < out.b; ++i) {
    const Vertex ui = out.u(i);
    const Vertex vi = out.v(i);
    edges.push_back(WeightedEdge{ui, vi, 1});
    out.h_edges.emplace_back(ui, vi);
    edges.push_back(WeightedEdge{out.s, ui, 1});
    if (inst.x[i] == 0) out.h_edges.emplace_back(out.s, ui);
    edges.push_back(WeightedEdge{vi, out.t, 1});
    if (inst.y[i] == 0) out.h_edges.emplace_back(vi, out.t);
  }
  out.g = Graph(n, std::move(edges));
  return out;
}

}  // namespace kmm
