#pragma once
// Set disjointness in the *random input partition* model of 2-party
// communication complexity (Section 4, Lemma 8, following [22] Lemma 3.2).
//
// Alice holds X ∈ {0,1}^b and Bob holds Y ∈ {0,1}^b; additionally each bit
// of the other player's vector is revealed with probability 1/2. DISJ = 1
// iff no index i has X[i] = Y[i] = 1. Lemma 8: any protocol with error
// below a fixed constant needs Ω(b) bits even with the random reveals.

#include <cstdint>
#include <vector>

#include "util/random.hpp"

namespace kmm {

struct DisjointnessInstance {
  std::vector<std::uint8_t> x, y;             // the input vectors
  std::vector<std::uint8_t> x_seen_by_bob;    // random-partition reveals
  std::vector<std::uint8_t> y_seen_by_alice;

  [[nodiscard]] std::size_t b() const noexcept { return x.size(); }
  [[nodiscard]] bool disjoint() const noexcept;

  /// Random instance: each bit is 1 with probability `density`. With
  /// `force_disjoint`, intersecting indices are cleared on Y afterwards;
  /// with `force_intersecting`, one uniformly chosen index is set in both.
  static DisjointnessInstance random(std::size_t b, double density, Rng& rng);
  static DisjointnessInstance random_disjoint(std::size_t b, double density, Rng& rng);
  static DisjointnessInstance random_intersecting(std::size_t b, double density, Rng& rng);
};

}  // namespace kmm
