#include "core/rep_mst.hpp"

#include <algorithm>

#include "core/connectivity.hpp"
#include "core/mst.hpp"
#include "graph/algorithms.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"
#include "util/union_find.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagEdge = 1;
}

RepMstResult rep_model_mst(Cluster& cluster, const Graph& graph, const EdgePartition& edges,
                           std::uint64_t seed, const BoruvkaConfig& config) {
  const StatsScope total_scope(cluster);
  const std::size_t n = graph.num_vertices();
  const MachineId k = cluster.k();
  const std::uint64_t label_bits = bits_for(std::max<std::uint64_t>(n, 2));
  KMM_CHECK_MSG(graph.has_unique_weights(),
                "REP MST exactness requires distinct edge weights");
  Runtime rt(cluster,
             RuntimeConfig{config.threads, config.obs, nullptr, config.cancel, config.pool});

  // Stage 1 — local filter. Each machine runs Kruskal over its own edges
  // (free local computation, one silent parallel superstep); non-forest
  // edges are safely discarded by the cycle property of MSTs. Handlers only
  // touch their machine's owned/kept slots.
  const auto& all_edges = graph.edges();
  std::vector<std::vector<std::size_t>> owned(k);
  for (std::size_t e = 0; e < all_edges.size(); ++e) owned[edges.home(e)].push_back(e);

  RepMstResult result;
  std::vector<std::vector<WeightedEdge>> kept(k);
  rt.step([&](MachineId i, std::span<const Message>, Outbox&) {
    auto& mine = owned[i];
    std::sort(mine.begin(), mine.end(), [&](std::size_t a, std::size_t b) {
      return all_edges[a].w < all_edges[b].w;
    });
    UnionFind uf(n);
    for (const std::size_t e : mine) {
      if (uf.unite(all_edges[e].u, all_edges[e].v)) kept[i].push_back(all_edges[e]);
    }
  });
  for (MachineId i = 0; i < k; ++i) result.filtered_edges += kept[i].size();

  // Stage 2 — reroute survivors to an RVP. Both endpoints' new home
  // machines need the edge in their adjacency.
  const StatsScope reroute_scope(cluster);
  const VertexPartition rvp =
      VertexPartition::random(n, k, split(seed, 0x9e2fc1));
  rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    for (const auto& e : kept[i]) {
      for (const MachineId dst : {rvp.home(e.u), rvp.home(e.v)}) {
        out.send(dst, kTagEdge, {e.u, e.v, e.w}, 2 * label_bits + 64);
      }
    }
  });
  result.reroute_stats = reroute_scope.snapshot();

  // Stage 3 — solve under RVP on the filtered union graph (each original
  // edge lives on exactly one machine, so survivors are unique).
  std::vector<WeightedEdge> union_edges;
  for (MachineId i = 0; i < k; ++i) {
    union_edges.insert(union_edges.end(), kept[i].begin(), kept[i].end());
  }
  std::sort(union_edges.begin(), union_edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return std::pair{a.u, a.v} < std::pair{b.u, b.v};
            });
  const Graph filtered(n, std::move(union_edges));
  const DistributedGraph dg(filtered, rvp);
  result.rvp_result = minimum_spanning_forest(cluster, dg, config);
  result.mst_edges = result.rvp_result.mst_edges();
  result.stats = total_scope.snapshot();
  return result;
}

RepConnectivityResult rep_model_connectivity(Cluster& cluster, const Graph& graph,
                                             const EdgePartition& edges,
                                             std::uint64_t seed,
                                             const BoruvkaConfig& config) {
  const StatsScope total_scope(cluster);
  const std::size_t n = graph.num_vertices();
  const MachineId k = cluster.k();
  const std::uint64_t label_bits = bits_for(std::max<std::uint64_t>(n, 2));
  Runtime rt(cluster,
             RuntimeConfig{config.threads, config.obs, nullptr, config.cancel, config.pool});

  // Stage 1 — each machine keeps a spanning forest of its own edges
  // (original edge order preserved per machine), in one silent parallel
  // superstep.
  const auto& all_edges = graph.edges();
  std::vector<std::vector<std::size_t>> owned(k);
  for (std::size_t e = 0; e < all_edges.size(); ++e) owned[edges.home(e)].push_back(e);

  RepConnectivityResult result;
  std::vector<std::vector<WeightedEdge>> kept(k);
  rt.step([&](MachineId i, std::span<const Message>, Outbox&) {
    UnionFind uf(n);
    for (const std::size_t e : owned[i]) {
      if (uf.unite(all_edges[e].u, all_edges[e].v)) kept[i].push_back(all_edges[e]);
    }
  });
  for (MachineId i = 0; i < k; ++i) result.filtered_edges += kept[i].size();

  // Stage 2 — reroute the survivors to an RVP.
  const StatsScope reroute_scope(cluster);
  const VertexPartition rvp = VertexPartition::random(n, k, split(seed, 0x5e9fc2));
  rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    for (const auto& e : kept[i]) {
      for (const MachineId dst : {rvp.home(e.u), rvp.home(e.v)}) {
        out.send(dst, kTagEdge, {e.u, e.v}, 2 * label_bits);
      }
    }
  });
  result.reroute_stats = reroute_scope.snapshot();

  // Stage 3 — RVP connectivity on the union of the local forests (the same
  // edge may survive on only one machine, so no duplicates).
  std::vector<WeightedEdge> union_edges;
  for (MachineId i = 0; i < k; ++i) {
    union_edges.insert(union_edges.end(), kept[i].begin(), kept[i].end());
  }
  std::sort(union_edges.begin(), union_edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return std::pair{a.u, a.v} < std::pair{b.u, b.v};
            });
  const Graph filtered(n, std::move(union_edges));
  const DistributedGraph dg(filtered, rvp);
  auto inner = connected_components(cluster, dg, config);
  result.labels = std::move(inner.labels);
  result.num_components = inner.num_components;
  result.stats = total_scope.snapshot();
  return result;
}

}  // namespace kmm
