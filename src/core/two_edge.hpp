#pragma once
// 2-edge-connectivity — the Section 5 "higher-order connectivity" extension.
//
// The paper leaves the round complexity of 2-edge/vertex connectivity in
// the k-machine model as future work. We implement the natural sparse-
// certificate algorithm (Thurimella [42] / Nagamochi–Ibaraki), built
// entirely from this library's primitives:
//
//   1. F1 := spanning forest of G          (connectivity run, O~(n/k^2))
//   2. announce F1 to home machines        (O~(n/k) worst case)
//   3. F2 := spanning forest of G \ F1     (local construction + run)
//   4. ship H = F1 ∪ F2 (≤ 2(n-1) edges) to a referee       (O~(n/k))
//   5. referee checks H for bridges locally; G is 2-edge-connected iff
//      H is (sparse-certificate property), verdict broadcast.
//
// Total O~(n/k): the certificate collection dominates. Whether o(n/k) —
// let alone O~(n/k^2) — is achievable is exactly the paper's open question.

#include "core/boruvka.hpp"

namespace kmm {

struct TwoEdgeResult {
  bool two_edge_connected = false;
  bool connected = false;
  std::size_t certificate_edges = 0;  // |F1 ∪ F2|
  RunStats stats;                     // total
  RunStats forest_stats;              // the two connectivity runs
  RunStats collect_stats;             // announce + referee collection
};

[[nodiscard]] TwoEdgeResult two_edge_connectivity(Cluster& cluster,
                                                  const DistributedGraph& dg,
                                                  const BoruvkaConfig& config = {});

}  // namespace kmm
