#include "core/flooding.hpp"

#include <deque>
#include <map>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagFlood = 1;
constexpr std::uint32_t kTagCtrl = 2;

/// Push the labels of `dirty` vertices through the machine-local subgraph
/// to fixpoint; returns the set of vertices whose label changed (including
/// the dirty seeds themselves so boundary sends cover them).
void local_propagate(const DistributedGraph& dg, MachineId machine,
                     std::vector<Label>& labels, std::vector<char>& changed,
                     std::deque<Vertex>& queue) {
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (const auto& he : dg.neighbors(v)) {
      if (dg.home(he.to) != machine) continue;
      if (labels[v] < labels[he.to]) {
        labels[he.to] = labels[v];
        changed[he.to] = 1;
        queue.push_back(he.to);
      }
    }
  }
}

}  // namespace

FloodingResult flooding_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                     std::uint64_t max_supersteps) {
  const StatsScope scope(*&cluster);
  const std::size_t n = dg.num_vertices();
  const MachineId k = cluster.k();
  const std::uint64_t label_bits = bits_for(std::max<std::uint64_t>(n, 2));
  if (max_supersteps == 0) max_supersteps = n + 1;

  FloodingResult result;
  result.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) result.labels[v] = v;

  // Initially every vertex is "changed" so the first superstep floods all
  // boundaries; machine-local fixpoints run before any send.
  std::vector<char> changed(n, 1);
  for (MachineId i = 0; i < k; ++i) {
    std::deque<Vertex> queue(dg.vertices_of(i).begin(), dg.vertices_of(i).end());
    local_propagate(dg, i, result.labels, changed, queue);
  }

  for (std::uint64_t step = 0;; ++step) {
    KMM_CHECK_MSG(step <= max_supersteps, "flooding failed to converge");
    // Boundary exchange: per (machine, remote target vertex) send the best
    // candidate label among changed local neighbors.
    std::vector<char> bit(k, 0);  // bit[i] = machine i sent this step
    for (MachineId i = 0; i < k; ++i) {
      std::map<Vertex, Label> best;  // remote vertex -> candidate label
      for (const Vertex v : dg.vertices_of(i)) {
        if (!changed[v]) continue;
        for (const auto& he : dg.neighbors(v)) {
          if (dg.home(he.to) == i) continue;
          const auto [it, fresh] = best.emplace(he.to, result.labels[v]);
          if (!fresh && result.labels[v] < it->second) it->second = result.labels[v];
        }
      }
      for (const Vertex v : dg.vertices_of(i)) changed[v] = 0;
      for (const auto& [target, label] : best) {
        cluster.send(i, dg.home(target), kTagFlood, {target, label}, 2 * label_bits);
        bit[i] = 1;
      }
    }
    cluster.superstep();
    for (MachineId i = 0; i < k; ++i) {
      std::deque<Vertex> queue;
      for (const auto& msg : cluster.inbox(i)) {
        if (msg.tag != kTagFlood) continue;
        const auto v = static_cast<Vertex>(msg.payload.at(0));
        const Label label = msg.payload.at(1);
        if (label < result.labels[v]) {
          result.labels[v] = label;
          changed[v] = 1;
          queue.push_back(v);
        }
      }
      local_propagate(dg, i, result.labels, changed, queue);
    }
    result.supersteps = step + 1;
    if (!or_reduce_broadcast(cluster, bit, kTagCtrl)) {
      result.converged = true;
      break;
    }
  }

  // Component count for convenience (instrumentation over final labels).
  std::vector<char> seen(n, 0);
  for (const Label label : result.labels) {
    if (!seen[label]) {
      seen[label] = 1;
      ++result.num_components;
    }
  }
  result.stats = scope.snapshot();
  return result;
}

}  // namespace kmm
