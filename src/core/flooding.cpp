#include "core/flooding.hpp"

#include <algorithm>
#include <deque>

#include "fault/fault_plane.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagFlood = 1;
constexpr std::uint32_t kTagCtrl = 2;

/// Push the labels of `dirty` vertices through the machine-local subgraph
/// to fixpoint. Only vertices homed on `machine` are read from the queue
/// and only labels/changed cells of such vertices are written, so the
/// per-machine handlers below may run concurrently on the shared vectors.
void local_propagate(const DistributedGraph& dg, MachineId machine,
                     std::vector<Label>& labels, std::vector<char>& changed,
                     std::deque<Vertex>& queue) {
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (const auto& he : dg.neighbors(v)) {
      if (dg.home(he.to) != machine) continue;
      if (labels[v] < labels[he.to]) {
        labels[he.to] = labels[v];
        changed[he.to] = 1;
        queue.push_back(he.to);
      }
    }
  }
}

}  // namespace

FloodingResult flooding_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                     const FloodingConfig& config) {
  const StatsScope scope(cluster);
  const std::size_t n = dg.num_vertices();
  const MachineId k = cluster.k();
  const std::uint64_t label_bits = bits_for(std::max<std::uint64_t>(n, 2));
  const std::uint64_t max_supersteps =
      config.max_supersteps != 0 ? config.max_supersteps : n + 1;
  Runtime rt(cluster, RuntimeConfig{config.threads, config.obs, config.fault, config.cancel,
                                    config.pool});

  FloodingResult result;
  result.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) result.labels[v] = v;

  // Shared state, machine-indexed by construction: labels[v] and changed[v]
  // are only touched by the handler of dg.home(v); queue[i], boundary[i]
  // and bit[i] only by handler i. That partition is what makes the
  // handlers race-free without locks (and is asserted on the receive path).
  std::vector<char> changed(n, 1);
  std::vector<std::deque<Vertex>> queue(k);
  // Reusable boundary-candidate buffers (one per machine): (remote target,
  // candidate label) pairs, sorted + deduplicated to the minimum label per
  // target each iteration. Replaces a per-superstep std::map — no per-node
  // allocation on the hot path, and the deterministic ascending-target send
  // order is explicit in the sort.
  std::vector<std::vector<std::pair<Vertex, Label>>> boundary(k);
  std::vector<char> bit(k, 0);  // bit[i] = machine i sent this iteration

  // Fault-plane state hooks (porting recipe rule 8b): machine m's complete
  // cross-step state is its sent-bit plus the label/changed cells of its
  // hosted vertices — queue[m] and boundary[m] are drained/cleared at step
  // boundaries and need no serialization.
  const StateHookScope fault_scope(
      config.fault,
      [&](MachineId m, WordWriter& w) {
        w.u64(static_cast<std::uint64_t>(bit[m]));
        for (const Vertex v : dg.vertices_of(m)) {
          w.u64(result.labels[v]);
          w.u64(static_cast<std::uint64_t>(changed[v]));
        }
      },
      [&](MachineId m, WordReader& r) {
        bit[m] = static_cast<char>(r.u64());
        for (const Vertex v : dg.vertices_of(m)) {
          result.labels[v] = r.u64();
          changed[v] = static_cast<char>(r.u64());
        }
        queue[m].clear();
        boundary[m].clear();
      });

  // Initial machine-local fixpoint before any exchange. No handler sends,
  // so this superstep is free — pure parallel local computation.
  rt.step([&](MachineId i, std::span<const Message>, Outbox&) {
    queue[i].assign(dg.vertices_of(i).begin(), dg.vertices_of(i).end());
    local_propagate(dg, i, result.labels, changed, queue[i]);
  });

  for (std::uint64_t step = 0;; ++step) {
    KMM_CHECK_MSG(step <= max_supersteps, "flooding failed to converge");
    // Boundary exchange: per machine, send the best candidate label per
    // remote target vertex among changed local vertices.
    rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
      auto& cand = boundary[i];
      cand.clear();
      for (const Vertex v : dg.vertices_of(i)) {
        if (!changed[v]) continue;
        for (const auto& he : dg.neighbors(v)) {
          if (dg.home(he.to) == i) continue;
          cand.emplace_back(he.to, result.labels[v]);
        }
      }
      for (const Vertex v : dg.vertices_of(i)) changed[v] = 0;
      // Ascending (target, label): first entry per target is its minimum
      // candidate, and the send order below is deterministic.
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end(),
                             [](const auto& a, const auto& b) {
                               return a.first == b.first;
                             }),
                 cand.end());
      bit[i] = cand.empty() ? 0 : 1;
      for (const auto& [target, label] : cand) {
        out.send(dg.home(target), kTagFlood, {target, label}, 2 * label_bits);
      }
    });
    // Apply the labels that just arrived and re-run the local fixpoint.
    // Nothing is sent, so this superstep is free — it must run before the
    // or-reduce below, whose own supersteps clear every inbox.
    rt.step([&](MachineId i, std::span<const Message> inbox, Outbox&) {
      auto& q = queue[i];
      for (const auto& msg : inbox) {
        if (msg.tag != kTagFlood) continue;
        KMM_DCHECK(msg.payload_words() >= 2);
        const auto v = static_cast<Vertex>(msg.payload()[0]);
        KMM_CHECK_MSG(dg.home(v) == i, "flood label for a vertex homed elsewhere");
        const Label label = msg.payload()[1];
        if (label < result.labels[v]) {
          result.labels[v] = label;
          changed[v] = 1;
          q.push_back(v);
        }
      }
      local_propagate(dg, i, result.labels, changed, q);
    });
    result.supersteps = step + 1;
    if (!or_reduce_broadcast(rt, bit, kTagCtrl)) {
      result.converged = true;
      break;
    }
  }

  // Component count for convenience (instrumentation over final labels).
  std::vector<char> seen(n, 0);
  for (const Label label : result.labels) {
    if (!seen[label]) {
      seen[label] = 1;
      ++result.num_components;
    }
  }
  result.stats = scope.snapshot();
  return result;
}

FloodingResult flooding_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                     std::uint64_t max_supersteps) {
  FloodingConfig config;
  config.max_supersteps = max_supersteps;
  return flooding_connectivity(cluster, dg, config);
}

}  // namespace kmm
