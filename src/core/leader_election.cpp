#include "core/leader_election.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/random.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagTicket = 71;
}

LeaderResult elect_leader(Cluster& cluster, const LeaderElectionConfig& config) {
  const StatsScope scope(cluster);
  const MachineId k = cluster.k();
  Runtime rt(cluster,
             RuntimeConfig{config.threads, config.obs, nullptr, config.cancel, config.pool});

  // Machine i's private ticket; modeled as split(seed, i) so the run is
  // reproducible, exactly like the machines' private tapes elsewhere.
  std::vector<std::uint64_t> ticket(k);
  for (MachineId i = 0; i < k; ++i) ticket[i] = split(config.seed, i);

  rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    for (MachineId j = 0; j < k; ++j) {
      if (j != i) out.send(j, kTagTicket, {ticket[i]}, 64);
    }
  });

  // Every machine computes the same minimum into its own slot (free
  // superstep — nothing is sent); the driving thread verifies agreement.
  std::vector<std::pair<std::uint64_t, MachineId>> best(k);
  rt.step([&](MachineId i, std::span<const Message> inbox, Outbox&) {
    best[i] = {ticket[i], i};
    for (const auto& msg : inbox) {
      if (msg.tag != kTagTicket) continue;
      best[i] = std::min(best[i], {msg.payload()[0], msg.src});
    }
  });

  LeaderResult result;
  result.leader = best[0].second;
  for (MachineId i = 1; i < k; ++i) {
    KMM_CHECK_MSG(best[i].second == result.leader, "machines disagree on the leader");
  }
  result.stats = scope.snapshot();
  return result;
}

LeaderResult elect_leader(Cluster& cluster, std::uint64_t seed) {
  LeaderElectionConfig config;
  config.seed = seed;
  return elect_leader(cluster, config);
}

}  // namespace kmm
