#include "core/leader_election.hpp"

#include "util/assert.hpp"
#include "util/random.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagTicket = 71;
}

LeaderResult elect_leader(Cluster& cluster, std::uint64_t seed) {
  const StatsScope scope(cluster);
  const MachineId k = cluster.k();

  // Machine i's private ticket; modeled as split(seed, i) so the run is
  // reproducible, exactly like the machines' private tapes elsewhere.
  std::vector<std::uint64_t> ticket(k);
  for (MachineId i = 0; i < k; ++i) {
    ticket[i] = split(seed, i);
    for (MachineId j = 0; j < k; ++j) {
      if (j != i) cluster.send(i, j, kTagTicket, {ticket[i]}, 64);
    }
  }
  cluster.superstep();

  // Every machine computes the same minimum; verify the views agree.
  LeaderResult result;
  bool first = true;
  for (MachineId i = 0; i < k; ++i) {
    std::pair<std::uint64_t, MachineId> best{ticket[i], i};
    for (const auto& msg : cluster.inbox(i)) {
      if (msg.tag != kTagTicket) continue;
      best = std::min(best, {msg.payload.at(0), msg.src});
    }
    if (first) {
      result.leader = best.second;
      first = false;
    } else {
      KMM_CHECK_MSG(best.second == result.leader, "machines disagree on the leader");
    }
  }
  result.stats = scope.snapshot();
  return result;
}

}  // namespace kmm
