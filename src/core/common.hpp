#pragma once
// Shared types and small protocols used by the Section 2/3 algorithms.

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/distributed_graph.hpp"
#include "runtime/runtime.hpp"

namespace kmm {

/// Component labels are vertex ids promoted to 64 bits (the paper labels
/// components by node ids from [n]).
using Label = std::uint64_t;

/// Round/traffic snapshot of one algorithm run, derived from the cluster
/// ledger (difference between start and end of run()).
struct RunStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t supersteps = 0;
};

class StatsScope {
 public:
  explicit StatsScope(const Cluster& cluster) noexcept
      : cluster_(&cluster),
        rounds0_(cluster.stats().rounds),
        msgs0_(cluster.stats().messages),
        bits0_(cluster.stats().total_bits),
        steps0_(cluster.stats().supersteps) {}

  [[nodiscard]] RunStats snapshot() const noexcept {
    const auto& s = cluster_->stats();
    return RunStats{s.rounds - rounds0_, s.messages - msgs0_, s.total_bits - bits0_,
                    s.supersteps - steps0_};
  }

 private:
  const Cluster* cluster_;
  std::uint64_t rounds0_, msgs0_, bits0_, steps0_;
};

/// Distributed boolean OR + broadcast of the result ("does anyone still
/// have work?"). Machines with a set bit report to M1 (machine 0), which
/// broadcasts the OR back; costs 2 supersteps with at most k-1 one-bit
/// messages each — the paper's standard O(1)-round control primitive.
/// Runs as two StepMode::kInline control-plane supersteps on `rt`.
[[nodiscard]] bool or_reduce_broadcast(Runtime& rt, const std::vector<char>& machine_bit,
                                       std::uint32_t tag);

/// Distributed sum of per-machine counters at M1, broadcast back.
/// Same two-superstep pattern with counter payloads.
[[nodiscard]] std::uint64_t sum_reduce_broadcast(Runtime& rt,
                                                 const std::vector<std::uint64_t>& machine_value,
                                                 std::uint32_t tag);

}  // namespace kmm
