#pragma once
// MST in the k-machine model (Theorem 2(a)): O~(n/k^2) rounds under the
// relaxed output criterion that every MST edge is output by at least one
// machine (the proxy that confirmed it as a minimum-weight outgoing edge).
//
// The algorithm mirrors the connectivity driver but repeats the Section 3.1
// sketch-restriction loop per component until the restricted sketch is
// *verifiably empty*, so the reported edge is the exact MWOE (not merely
// w.h.p. — the is_zero test turns the sampling loop into a Las Vegas
// confirmation; see DESIGN.md §4).

#include "core/boruvka.hpp"

namespace kmm {

/// Runs the Section 3.1 MST algorithm. With pairwise distinct edge weights
/// the union of per-machine outputs is exactly the minimum spanning forest;
/// with ties the output is a minimum-weight spanning subgraph that may
/// contain per-phase duplicate-weight extras, so callers wanting exactness
/// should pre-process with with_unique_weights(). `require_unique_weights`
/// makes that contract explicit (checked).
[[nodiscard]] BoruvkaResult minimum_spanning_forest(Cluster& cluster,
                                                    const DistributedGraph& dg,
                                                    const BoruvkaConfig& config = {},
                                                    bool require_unique_weights = true);

/// Theorem 2(b)'s strict output criterion: every MST edge must be known by
/// *both* endpoints' home machines (the classic distributed output
/// convention). This post-pass ships each recorded edge from its proxy to
/// the two home machines. The paper proves Ω~(n/k) rounds are unavoidable
/// for this criterion — the cost concentrates on machines hosting
/// high-degree vertices (e.g. a star center's home must receive ~n edge
/// records over its k-1 links), which bench_ablations measures.
struct StrictMstOutput {
  /// edges_by_home[i] = MST edges incident to a vertex hosted by machine i
  /// (deduplicated, sorted); union over machines = the MST, and every edge
  /// appears at both endpoints' home machines.
  std::vector<std::vector<WeightedEdge>> edges_by_home;
  RunStats stats;  // cost of the announcement pass alone
};

/// `threads` parallelizes the per-machine announce/collect handlers
/// (same semantics as BoruvkaConfig::threads; ledger is thread-invariant).
/// `obs` optionally records the pass into the caller's observability sinks
/// (same contract as BoruvkaConfig::obs); `cancel`/`pool` ride along with
/// the BoruvkaConfig seam semantics (rule 9 / shared-pool multiplexing).
[[nodiscard]] StrictMstOutput announce_mst_to_home_machines(Cluster& cluster,
                                                            const DistributedGraph& dg,
                                                            const BoruvkaResult& mst,
                                                            unsigned threads = 1,
                                                            const ObsSink* obs = nullptr,
                                                            CancelPoint* cancel = nullptr,
                                                            ThreadPool* pool = nullptr);

}  // namespace kmm
