#pragma once
// Min-label flooding connectivity as a *checkpointable MachineProgram* —
// the durably resumable counterpart of flooding_connectivity (rule 8a +
// rule 10 in runtime.hpp's porting recipe, vs. the lambda-driven rule-8b
// original).
//
// The lambda engine's driver loop (initial fixpoint, then boundary-
// exchange / apply / or-reduce steps) keeps its control position in
// process-local code, so it cannot be resumed after a process death. This
// program folds the whole iteration into ONE uniform superstep handler —
// apply inbound labels, local fixpoint, send boundary candidates, and
// broadcast a 1-bit activity flag to every other machine for convergence
// detection — so the complete computation state is (per-machine words +
// inbox), exactly what a durable frame captures. A process killed between
// any two supersteps restarts from the last generation and continues
// bit-identically.
//
// Convergence: machine i's flag sent at step t says "i emitted flood
// messages at t". At t+1 every machine sees the OR of all flags from t;
// when it is 0 no flood message was generated at t, every changed bit was
// already cleared, and the system is at a global fixpoint — all machines
// mark done in the same superstep and send nothing (a free superstep).
// The extra k(k-1) one-bit control messages per superstep are this
// engine's ledger signature; it is costed like the or-reduce it replaces,
// just flattened into the data supersteps.

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "cluster/distributed_graph.hpp"
#include "core/common.hpp"
#include "obs/obs_sink.hpp"
#include "runtime/machine_program.hpp"

namespace kmm {

class FaultPlane;

class FloodProgram final : public MachineProgram {
 public:
  /// Bumped on any change to the snapshot word layout (rule 10).
  static constexpr std::uint64_t kStateVersion = 1;

  FloodProgram(const DistributedGraph& dg, MachineId k);

  void on_superstep(MachineId self, std::span<const Message> inbox, Outbox& out) override;
  [[nodiscard]] bool done() const override;
  [[nodiscard]] bool checkpointable() const override { return true; }
  void snapshot(MachineId m, WordWriter& out) override;
  void restore(MachineId m, WordReader& in) override;
  [[nodiscard]] std::uint64_t state_version() const override { return kStateVersion; }

  [[nodiscard]] const std::vector<Label>& labels() const noexcept { return labels_; }
  /// Supersteps executed, counted across process lifetimes (restored from
  /// frames), so a resumed run reports the same total as an uninterrupted
  /// one.
  [[nodiscard]] std::uint64_t supersteps() const noexcept { return steps_.empty() ? 0 : steps_[0]; }

 private:
  const DistributedGraph* dg_;
  MachineId k_;
  std::uint64_t label_bits_;

  // Machine-partitioned shared state (rule 2): labels_[v]/changed_[v] are
  // touched only by the handler of dg.home(v); the per-machine vectors only
  // by handler m at index m. Serialized state is everything a handler reads
  // across steps; queue_/boundary_ are drained within one step (scratch).
  std::vector<Label> labels_;
  std::vector<char> changed_;
  std::vector<char> sent_;              // [m] flag broadcast last superstep
  std::vector<char> done_;              // [m] fixpoint observed
  std::vector<std::uint64_t> steps_;    // [m] supersteps executed (lockstep)
  std::vector<std::deque<Vertex>> queue_;                       // scratch
  std::vector<std::vector<std::pair<Vertex, Label>>> boundary_; // scratch
};

/// Driver config/result mirroring FloodingConfig/FloodingResult; `fault`
/// carries the durable plane (DurableStore tee and/or an armed resume
/// frame) when durability is wanted.
struct ResumableFloodConfig {
  std::uint64_t max_supersteps = 0;  // 0 = n + 8 safety cap
  unsigned threads = 1;
  const ObsSink* obs = nullptr;
  FaultPlane* fault = nullptr;
  CancelPoint* cancel = nullptr;
  ThreadPool* pool = nullptr;
};

struct ResumableFloodResult {
  std::vector<Label> labels;
  std::uint64_t num_components = 0;
  std::uint64_t supersteps = 0;  // across process lifetimes when resumed
  bool converged = false;
  RunStats stats;
};

ResumableFloodResult resumable_flood_connectivity(Cluster& cluster,
                                                  const DistributedGraph& dg,
                                                  const ResumableFloodConfig& config = {});

}  // namespace kmm
