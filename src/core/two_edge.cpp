#include "core/two_edge.hpp"

#include <algorithm>

#include "core/connectivity.hpp"
#include "graph/algorithms.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagAnnounceForest = 81;
constexpr std::uint32_t kTagCertificate = 82;
constexpr std::uint32_t kTagVerdict = 83;
}  // namespace

TwoEdgeResult two_edge_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                    const BoruvkaConfig& config) {
  const StatsScope total(cluster);
  TwoEdgeResult out;
  const std::size_t n = dg.num_vertices();
  const MachineId k = cluster.k();
  if (n < 2) {
    out.stats = total.snapshot();
    return out;  // degenerate: not 2-edge-connected by convention
  }
  const std::uint64_t label_bits = bits_for(n);

  // 1. First spanning forest.
  const StatsScope forests(cluster);
  BoruvkaConfig c1 = config;
  c1.seed = split(config.seed, 0x2ec1);
  const auto run1 = connected_components(cluster, dg, c1);
  out.connected = run1.num_components == 1;
  if (!out.connected) {
    out.stats = total.snapshot();
    return out;  // disconnected graphs are not 2-edge-connected
  }
  const RunStats forest1 = forests.snapshot();

  // The forest runs spin up their own engine runtime; this one drives the
  // certificate shipping steps with the same thread budget. Constructed
  // here, after run1, so its pool doesn't sit idle through the forest runs.
  Runtime rt(cluster,
             RuntimeConfig{config.threads, config.obs, nullptr, config.cancel, config.pool});

  // 2. Announce F1 edges to both endpoints' home machines so G \ F1 is
  //    constructible locally.
  const StatsScope collect(cluster);
  rt.step([&](MachineId i, std::span<const Message>, Outbox& outbox) {
    for (const auto& [u, v] : run1.forest_by_machine[i]) {
      for (const MachineId home : {dg.home(u), dg.home(v)}) {
        outbox.send(home, kTagAnnounceForest, {u, v}, 2 * label_bits);
      }
    }
  });
  // Free collection superstep: each handler reads only its own inbox into
  // its own slot; the slots are concatenated in machine order below.
  std::vector<std::vector<std::pair<Vertex, Vertex>>> f1_by_machine(k);
  rt.step([&](MachineId i, std::span<const Message> inbox, Outbox&) {
    for (const auto& msg : inbox) {
      if (msg.tag == kTagAnnounceForest) {
        KMM_DCHECK(msg.payload_words() >= 2);
        f1_by_machine[i].emplace_back(static_cast<Vertex>(msg.payload()[0]),
                                      static_cast<Vertex>(msg.payload()[1]));
      }
    }
  });
  std::vector<std::pair<Vertex, Vertex>> f1;
  for (MachineId i = 0; i < k; ++i) {
    f1.insert(f1.end(), f1_by_machine[i].begin(), f1_by_machine[i].end());
  }
  std::sort(f1.begin(), f1.end());
  f1.erase(std::unique(f1.begin(), f1.end()), f1.end());
  const RunStats announce = collect.snapshot();

  // 3-4. Second forest on G \ F1 (home machines strip their announced
  //      forest edges — a purely local construction).
  const Graph residual = dg.graph().without_edges(f1);
  const DistributedGraph residual_dg(residual, dg.partition());
  const StatsScope forests2(cluster);
  BoruvkaConfig c2 = config;
  c2.seed = split(config.seed, 0x2ec2);
  const auto run2 = connected_components(cluster, residual_dg, c2);
  const RunStats forest2 = forests2.snapshot();
  out.forest_stats.rounds = forest1.rounds + forest2.rounds;
  out.forest_stats.messages = forest1.messages + forest2.messages;
  out.forest_stats.bits = forest1.bits + forest2.bits;

  // 5. Ship the certificate H = F1 ∪ F2 to the referee (machine 0) and
  //    decide locally: G is 2-edge-connected iff H is (Thurimella's sparse
  //    certificate for 2-edge-connectivity).
  const StatsScope ship(cluster);
  rt.step([&](MachineId i, std::span<const Message>, Outbox& outbox) {
    for (const auto& [u, v] : run1.forest_by_machine[i]) {
      outbox.send(0, kTagCertificate, {u, v}, 2 * label_bits);
    }
    for (const auto& [u, v] : run2.forest_by_machine[i]) {
      outbox.send(0, kTagCertificate, {u, v}, 2 * label_bits);
    }
  });
  // Referee step: only machine 0 computes, so run inline; the verdict
  // broadcast is delivered by this step's superstep.
  rt.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox& outbox) {
        if (i != 0) return;
        std::vector<WeightedEdge> cert;
        for (const auto& msg : inbox) {
          if (msg.tag != kTagCertificate) continue;
          KMM_DCHECK(msg.payload_words() >= 2);
          const auto u = static_cast<Vertex>(msg.payload()[0]);
          const auto v = static_cast<Vertex>(msg.payload()[1]);
          cert.push_back(WeightedEdge{std::min(u, v), std::max(u, v), 1});
        }
        std::sort(cert.begin(), cert.end(),
                  [](const WeightedEdge& a, const WeightedEdge& b) {
                    return std::pair{a.u, a.v} < std::pair{b.u, b.v};
                  });
        cert.erase(std::unique(cert.begin(), cert.end()), cert.end());
        out.certificate_edges = cert.size();
        KMM_CHECK_MSG(out.certificate_edges <= 2 * (n - 1), "certificate too large");

        const Graph h(n, std::move(cert));
        out.two_edge_connected = ref::is_two_edge_connected(h);
        for (MachineId j = 1; j < k; ++j) {
          outbox.send(j, kTagVerdict, {out.two_edge_connected ? 1ULL : 0ULL}, 1);
        }
      },
      StepMode::kInline);
  const RunStats shipped = ship.snapshot();
  out.collect_stats.rounds = announce.rounds + shipped.rounds;
  out.collect_stats.messages = announce.messages + shipped.messages;
  out.collect_stats.bits = announce.bits + shipped.bits;

  out.stats = total.snapshot();
  return out;
}

}  // namespace kmm
