#include "core/boruvka.hpp"

#include <algorithm>
#include <cmath>

#include "core/drr.hpp"
#include "fault/fault_plane.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace kmm {

namespace {

// Message tags of the engine's wire protocol.
constexpr std::uint32_t kTagSketch = 1;
constexpr std::uint32_t kTagLabelQuery = 2;
constexpr std::uint32_t kTagLabelReply = 3;
constexpr std::uint32_t kTagWeightQuery = 4;
constexpr std::uint32_t kTagWeightReply = 5;
constexpr std::uint32_t kTagDirective = 6;  // [label, kind, thr] kind: 0=continue 1=finished
constexpr std::uint32_t kTagHandoff = 7;
constexpr std::uint32_t kTagChildReg = 8;   // [child, parent]
constexpr std::uint32_t kTagRelabel = 9;    // [from, to]
constexpr std::uint32_t kTagChildDone = 10; // [parent, srcs...]
constexpr std::uint32_t kTagCtrlElim = 11;
constexpr std::uint32_t kTagCtrlMerge = 12;
constexpr std::uint32_t kTagCtrlActive = 13;
constexpr std::uint32_t kTagCountProxy = 14;
constexpr std::uint32_t kTagCountRoot = 15;
constexpr std::uint32_t kTagCountBcast = 16;

constexpr std::uint64_t kDirectiveContinue = 0;
constexpr std::uint64_t kDirectiveFinished = 1;

}  // namespace

std::vector<std::pair<Vertex, Vertex>> BoruvkaResult::forest_edges() const {
  std::vector<std::pair<Vertex, Vertex>> all;
  for (const auto& per_machine : forest_by_machine) {
    all.insert(all.end(), per_machine.begin(), per_machine.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

std::vector<WeightedEdge> BoruvkaResult::mst_edges() const {
  std::vector<WeightedEdge> all;
  for (const auto& per_machine : mst_by_machine) {
    all.insert(all.end(), per_machine.begin(), per_machine.end());
  }
  std::sort(all.begin(), all.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return std::tuple{a.u, a.v, a.w} < std::tuple{b.u, b.v, b.w};
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

BoruvkaEngine::BoruvkaEngine(Cluster& cluster, const DistributedGraph& dg,
                             BoruvkaConfig config, BoruvkaMode mode)
    : cluster_(&cluster),
      dg_(&dg),
      config_(config),
      mode_(mode),
      shared_(config.seed),
      n_(dg.num_vertices()),
      label_bits_(bits_for(std::max<std::uint64_t>(n_, 2))),
      runtime_(cluster, RuntimeConfig{config.threads, config.obs, config.fault, config.cancel,
                                      config.pool}) {
  KMM_CHECK_MSG(n_ >= 2, "the engine needs at least two vertices");
  const MachineId k = cluster_->k();
  machine_parts_.resize(k);
  resend_.resize(k);
  proxy_records_.resize(k);
  sum_slots_.resize(k);
  sketch_pool_.resize(k);
  for (MachineId i = 0; i < k; ++i) {
    machine_parts_[i].reset_universe(n_);
    resend_[i].reset_universe(n_);
    proxy_records_[i].reset_universe(n_);
    sum_slots_[i].reset_universe(n_);
  }
  writer_.resize(k);
  mask_scratch_.assign(k, std::vector<std::uint64_t>(mask_words()));
  power_scratch_.resize(k);
  label_scratch_.resize(k);
  bit_scratch_.assign(k, 0);
  seen_scratch_.assign(n_, 0);
  sampler_retries_by_machine_.assign(k, 0);
  labels_.resize(n_);
  finished_ = std::make_unique<std::atomic<std::uint8_t>[]>(n_);
  for (Vertex v = 0; v < n_; ++v) {
    labels_[v] = v;
    bool created = false;
    auto& part = machine_parts_[dg.home(v)].get_or_create(v, created);
    part.clear();
    part.push_back(v);
  }
  result_.forest_by_machine.resize(k);
  result_.mst_by_machine.resize(k);
}

const GraphSketchBuilder& BoruvkaEngine::bind_builder(std::uint64_t sketch_seed) {
  if (builder_.has_value()) {
    builder_->rebind(sketch_seed);
  } else {
    builder_.emplace(n_, sketch_seed, config_.sketch_copies);
  }
  return *builder_;
}

ProxyMap BoruvkaEngine::elimination_proxies(std::uint32_t phase, std::uint32_t t) const {
  if (config_.single_coordinator) return ProxyMap::fixed(0, cluster_->k());
  return ProxyMap(shared_.seed(phase, t, seed_purpose::kProxy), cluster_->k());
}

ProxyMap BoruvkaEngine::merge_proxies(std::uint32_t phase, std::uint32_t rho) const {
  if (config_.single_coordinator) return ProxyMap::fixed(0, cluster_->k());
  // Offset keeps merge-iteration hashes disjoint from elimination ones.
  return ProxyMap(shared_.seed(phase, 100000 + rho, seed_purpose::kProxy), cluster_->k());
}

void BoruvkaEngine::charge_phase_randomness() {
  if (!config_.charge_randomness) return;
  // Section 2.2: d = Θ~(n/k) bits make the per-iteration hash functions
  // d-wise independent; plus Θ(log^2 n) bits for the sketch seeds ([10]).
  const std::uint64_t lg = bits_for(std::max<std::uint64_t>(n_, 2));
  const std::uint64_t d_bits = (n_ / cluster_->k() + 1) * lg + 4 * lg * lg;
  shared_.charge_distribution(*cluster_, d_bits);
}

bool BoruvkaEngine::any_active_parts() {
  const MachineId k = cluster_->k();
  bit_scratch_.assign(k, 0);
  for (MachineId i = 0; i < k; ++i) {
    bit_scratch_[i] =
        machine_parts_[i].any_of([&](Label label, const std::vector<Vertex>& verts) {
          return !verts.empty() && !finished_[label].load(std::memory_order_relaxed);
        })
            ? 1
            : 0;
  }
  return or_reduce_broadcast(runtime_, bit_scratch_, kTagCtrlActive);
}

void BoruvkaEngine::send_handoffs(LabelRegistry<Record>& from, Outbox& out,
                                  const ProxyMap& to, WordWriter& w) {
  const std::uint64_t rec_bits = 4 * label_bits_ + 140 + cluster_->k();
  from.for_each_sorted([&](Label label, const Record& rec) {
    w.clear();
    w.u64(label)
        .u64(rec.state)
        .u64(rec.parent)
        .u64(rec.children_left)
        .u64(rec.thr)
        .u64(rec.has_candidate ? 1 : 0)
        .u64(rec.cand_in)
        .u64(rec.cand_out)
        .u64(rec.cand_w)
        .u64(rec.target);
    for (const auto word : rec.srcs) w.u64(word);
    out.send(to.proxy_of(label), kTagHandoff, w.words(), rec_bits);
  });
}

void BoruvkaEngine::apply_handoff(WordReader& reader, LabelRegistry<Record>& into) {
  const Label label = reader.u64();
  bool created = false;
  Record& rec = into.get_or_create(label, created);
  KMM_CHECK_MSG(created, "duplicate record in handoff");
  rec.reset(mask_words());
  rec.state = static_cast<State>(reader.u64());
  rec.parent = reader.u64();
  rec.children_left = static_cast<std::uint32_t>(reader.u64());
  rec.thr = reader.u64();
  rec.has_candidate = reader.u64() != 0;
  rec.cand_in = static_cast<Vertex>(reader.u64());
  rec.cand_out = static_cast<Vertex>(reader.u64());
  rec.cand_w = reader.u64();
  rec.target = reader.u64();
  for (auto& word : rec.srcs) word = reader.u64();
}

std::uint32_t BoruvkaEngine::run_elimination_loop(std::uint32_t phase) {
  const MachineId k = cluster_->k();
  for (MachineId i = 0; i < k; ++i) {
    resend_[i].clear();
    proxy_records_[i].clear();
    machine_parts_[i].for_each([&](Label label, const std::vector<Vertex>& verts) {
      if (!verts.empty() && !finished_[label].load(std::memory_order_relaxed)) {
        bool created = false;
        resend_[i].get_or_create(label, created) = kNoWeightLimit;
      }
    });
  }

  for (std::uint32_t t = 0;; ++t) {
    KMM_CHECK_MSG(static_cast<int>(t) < config_.max_elimination_iterations,
                  "outgoing-edge selection failed to converge");
    const ProxyMap prox = elimination_proxies(phase, t);
    const GraphSketchBuilder& builder =
        bind_builder(shared_.seed(phase, t, seed_purpose::kSketch));

    // SS1: each machine sketches its active parts (restricted by the local
    // threshold in MST mode) and, from the second iteration on, hands its
    // proxy records off to the fresh proxy generation. Sketch construction
    // is the engine's dominant local computation — the handlers below are
    // where threads > 1 pays. One pooled sampler per machine absorbs every
    // part sketch of the iteration.
    runtime_.step([&](MachineId i, std::span<const Message>, Outbox& out) {
      resend_[i].for_each_sorted([&](Label label, Weight thr) {
        auto* part = machine_parts_[i].find(label);
        KMM_CHECK(part != nullptr);
        auto& pool = sketch_pool_[i];
        pool.release_all();
        L0Sampler& sketch =
            pool.acquire(builder.universe(), builder.params(), builder.seed());
        builder.accumulate_part(*dg_, *part, thr, sketch, power_scratch_[i]);
        auto& w = writer_[i];
        w.clear();
        w.u64(label);
        sketch.serialize(w);
        out.send(prox.proxy_of(label), kTagSketch, w.words(),
                 label_bits_ + sketch.wire_bits());
      });
      resend_[i].clear();
      if (t >= 1) {
        send_handoffs(proxy_records_[i], out, prox, writer_[i]);
        proxy_records_[i].clear();
      }
    });

    // Proxy side: apply handoffs first so records exist before this
    // iteration's sketches are merged, then sum per-label sketches and run
    // the state transitions on the combined result. Incoming sketches are
    // merged wire-level: serialized cells add straight off the payload into
    // a pooled accumulator (add_serialized) — no per-message deserialize.
    runtime_.step([&](MachineId i, std::span<const Message> inbox, Outbox& out) {
      for (const auto& msg : inbox) {
        if (msg.tag == kTagHandoff) {
          WordReader r(msg.payload());
          apply_handoff(r, proxy_records_[i]);
        }
      }
      auto& sums = sum_slots_[i];
      auto& pool = sketch_pool_[i];
      sums.clear();
      pool.release_all();
      for (const auto& msg : inbox) {
        if (msg.tag != kTagSketch) continue;
        WordReader r(msg.payload());
        const Label label = r.u64();
        bool created = false;
        Record& rec = proxy_records_[i].get_or_create(label, created);
        if (created) {
          rec.reset(mask_words());
          rec.parent = label;
        }
        mask_set(rec.srcs, msg.src);
        bool sum_created = false;
        std::uint32_t& sum_idx = sums.get_or_create(label, sum_created);
        if (sum_created) {
          sum_idx = pool.acquire_index(builder.universe(), builder.params(), builder.seed());
        }
        pool.at(sum_idx).add_serialized(r);
      }

      // State transitions for components whose combined sketch arrived, in
      // ascending label order (the wire order the ledger pins).
      sums.for_each_sorted([&](Label label, std::uint32_t sum_idx) {
        L0Sampler& sum = pool.at(sum_idx);
        Record& rec = proxy_records_[i].at(label);
        KMM_CHECK(rec.state == kSearching);
        if (sum.is_zero()) {
          if (rec.has_candidate) {
            // No outgoing edge lighter than the candidate: MWOE confirmed.
            rec.state = kAwaitLabel;
            out.send(dg_->home(rec.cand_out), kTagLabelQuery, {label, rec.cand_out},
                     2 * label_bits_);
          } else {
            rec.state = kFinishedState;
            mask_for_each(rec.srcs, [&](MachineId m) {
              out.send(m, kTagDirective, {label, kDirectiveFinished, 0}, label_bits_ + 2);
            });
          }
          return;
        }
        const auto sampled = sum.sample();
        if (!sampled) {
          // Nonzero vector but recovery failed: retry with fresh seeds.
          ++sampler_retries_by_machine_[i];
          mask_for_each(rec.srcs, [&](MachineId m) {
            out.send(m, kTagDirective, {label, kDirectiveContinue, rec.thr},
                     label_bits_ + 66);
          });
          return;
        }
        const auto [x, y] = builder.decode(sampled->index);
        rec.cand_in = sampled->value > 0 ? x : y;
        rec.cand_out = sampled->value > 0 ? y : x;
        rec.has_candidate = true;
        if (mode_ == BoruvkaMode::kConnectivity) {
          rec.state = kAwaitLabel;
          out.send(dg_->home(rec.cand_out), kTagLabelQuery, {label, rec.cand_out},
                   2 * label_bits_);
        } else {
          rec.state = kAwaitWeight;
          out.send(dg_->home(rec.cand_in), kTagWeightQuery,
                   {label, rec.cand_in, rec.cand_out}, 3 * label_bits_);
        }
      });
    });

    // SS2: home machines answer queries; part machines apply directives
    // issued by the sampling step.
    runtime_.step([&](MachineId i, std::span<const Message> inbox, Outbox& out) {
      for (const auto& msg : inbox) {
        switch (msg.tag) {
          case kTagLabelQuery: {
            const Label label = msg.payload()[0];
            const auto v = static_cast<Vertex>(msg.payload()[1]);
            KMM_CHECK_MSG(dg_->home(v) == i, "label query reached a non-home machine");
            out.send(msg.src, kTagLabelReply, {label, labels_[v]}, 2 * label_bits_);
            break;
          }
          case kTagWeightQuery: {
            const Label label = msg.payload()[0];
            const auto in = static_cast<Vertex>(msg.payload()[1]);
            const auto out_v = static_cast<Vertex>(msg.payload()[2]);
            KMM_CHECK_MSG(dg_->home(in) == i, "weight query reached a non-home machine");
            Weight w = 0;
            bool found = false;
            for (const auto& he : dg_->neighbors(in)) {
              if (he.to == out_v) {
                w = he.weight;
                found = true;
                break;
              }
            }
            KMM_CHECK_MSG(found, "sampled edge does not exist at the home machine");
            out.send(msg.src, kTagWeightReply, {label, w}, label_bits_ + 64);
            break;
          }
          case kTagDirective: {
            const Label label = msg.payload()[0];
            if (msg.payload()[1] == kDirectiveFinished) {
              finished_[label].store(1, std::memory_order_relaxed);
            } else {
              bool created = false;
              resend_[i].get_or_create(label, created) = msg.payload()[2];
            }
            break;
          }
          default:
            break;
        }
      }
    });

    // SS3: replies complete the pending transitions.
    runtime_.step([&](MachineId i, std::span<const Message> inbox, Outbox& out) {
      for (const auto& msg : inbox) {
        if (msg.tag == kTagLabelReply) {
          const Label label = msg.payload()[0];
          const Label target = msg.payload()[1];
          Record& rec = proxy_records_[i].at(label);
          KMM_CHECK(rec.state == kAwaitLabel);
          KMM_CHECK_MSG(target != label, "sampled edge is intra-component");
          rec.target = target;
          rec.state = kDone;
        } else if (msg.tag == kTagWeightReply) {
          const Label label = msg.payload()[0];
          const Weight w = msg.payload()[1];
          Record& rec = proxy_records_[i].at(label);
          KMM_CHECK(rec.state == kAwaitWeight);
          KMM_CHECK_MSG(w >= 1, "edge weights must be positive");
          rec.cand_w = w;
          rec.thr = w - 1;  // next sketches keep strictly lighter edges only
          rec.state = kSearching;
          mask_for_each(rec.srcs, [&](MachineId m) {
            out.send(m, kTagDirective, {label, kDirectiveContinue, rec.thr},
                     label_bits_ + 66);
          });
        }
      }
    });

    // SS4: threshold directives issued after weight replies. Pure control
    // application (and no sends, so the trailing superstep is free) — run
    // inline, the barrier would cost more than the work.
    runtime_.step(
        [&](MachineId i, std::span<const Message> inbox, Outbox&) {
          for (const auto& msg : inbox) {
            if (msg.tag != kTagDirective) continue;
            const Label label = msg.payload()[0];
            if (msg.payload()[1] == kDirectiveFinished) {
              finished_[label].store(1, std::memory_order_relaxed);
            } else {
              bool created = false;
              resend_[i].get_or_create(label, created) = msg.payload()[2];
            }
          }
        },
        StepMode::kInline);

    bit_scratch_.assign(k, 0);
    for (MachineId i = 0; i < k; ++i) {
      bit_scratch_[i] = proxy_records_[i].any_of([](Label, const Record& rec) {
        return rec.state == kSearching || rec.state == kAwaitWeight ||
               rec.state == kAwaitLabel;
      })
                            ? 1
                            : 0;
    }
    if (!or_reduce_broadcast(runtime_, bit_scratch_, kTagCtrlElim)) return t;
  }
}

void BoruvkaEngine::run_drr_step(std::uint32_t phase, std::uint32_t proxy_gen) {
  const ProxyMap prox = elimination_proxies(phase, proxy_gen);
  const std::uint64_t rank_seed = shared_.seed(phase, 0, seed_purpose::kRank);

  runtime_.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    auto& finished_records = label_scratch_[i];
    finished_records.clear();
    proxy_records_[i].for_each_sorted([&](Label label, Record& rec) {
      if (rec.state == kFinishedState) {
        finished_records.push_back(label);
        return;
      }
      KMM_CHECK(rec.state == kDone);
      if (mode_ == BoruvkaMode::kMst) {
        // Every confirmed MWOE belongs to the MST (cut property); the proxy
        // machine is the "at least one machine" of Theorem 2(a).
        const Vertex u = std::min(rec.cand_in, rec.cand_out);
        const Vertex v = std::max(rec.cand_in, rec.cand_out);
        result_.mst_by_machine[i].push_back(WeightedEdge{u, v, rec.cand_w});
      }
      bool attach;
      if (config_.merge_rule == MergeRule::kDrr) {
        attach = drr_attaches(rank_seed, label, rec.target);
      } else {
        // Footnote 9: merge only 0-coin -> 1-coin; resulting trees have
        // depth 1 (a 0-component never receives children).
        attach = split(rank_seed, label) % 2 == 0 && split(rank_seed, rec.target) % 2 == 1;
      }
      if (attach) {
        rec.parent = rec.target;
        out.send(prox.proxy_of(rec.target), kTagChildReg, {label, rec.target},
                 2 * label_bits_);
      } else {
        rec.parent = label;  // root of its merge tree
      }
    });
    for (const Label label : finished_records) proxy_records_[i].erase(label);
  });

  // Counter bumps only — not worth a pool dispatch.
  runtime_.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox&) {
        for (const auto& msg : inbox) {
          if (msg.tag != kTagChildReg) continue;
          const Label parent = msg.payload()[1];
          Record* rec = proxy_records_[i].find(parent);
          KMM_CHECK_MSG(rec != nullptr,
                        "child registered with an unknown parent component");
          ++rec->children_left;
        }
      },
      StepMode::kInline);
}

std::uint32_t BoruvkaEngine::run_merge_loop(std::uint32_t phase, std::uint32_t last_gen) {
  (void)last_gen;
  const MachineId k = cluster_->k();
  std::uint32_t rho = 0;
  while (true) {
    bit_scratch_.assign(k, 0);
    for (MachineId i = 0; i < k; ++i) {
      bit_scratch_[i] = proxy_records_[i].any_of(
                            [](Label label, const Record& rec) { return rec.parent != label; })
                            ? 1
                            : 0;
    }
    if (!or_reduce_broadcast(runtime_, bit_scratch_, kTagCtrlMerge)) break;
    ++rho;
    KMM_CHECK_MSG(static_cast<int>(rho) < config_.max_merge_iterations,
                  "merge loop failed to converge");

    // Fresh proxies each merge iteration (Lemma 5) + record handoff.
    const ProxyMap prox = merge_proxies(phase, rho);
    runtime_.step([&](MachineId i, std::span<const Message>, Outbox& out) {
      send_handoffs(proxy_records_[i], out, prox, writer_[i]);
      proxy_records_[i].clear();
    });

    // Apply handoffs, then merge leaves (no remaining children) into their
    // parents; both touch only this machine's record map.
    runtime_.step([&](MachineId i, std::span<const Message> inbox, Outbox& out) {
      for (const auto& msg : inbox) {
        if (msg.tag == kTagHandoff) {
          WordReader r(msg.payload());
          apply_handoff(r, proxy_records_[i]);
        }
      }
      auto& merged = label_scratch_[i];
      merged.clear();
      proxy_records_[i].for_each_sorted([&](Label label, const Record& rec) {
        if (rec.parent == label || rec.children_left != 0) return;
        if (mode_ == BoruvkaMode::kConnectivity) {
          const Vertex u = std::min(rec.cand_in, rec.cand_out);
          const Vertex v = std::max(rec.cand_in, rec.cand_out);
          result_.forest_by_machine[i].emplace_back(u, v);
        }
        mask_for_each(rec.srcs, [&](MachineId m) {
          out.send(m, kTagRelabel, {label, rec.parent}, 2 * label_bits_);
        });
        auto& w = writer_[i];
        w.clear();
        w.u64(rec.parent);
        for (const auto word : rec.srcs) w.u64(word);
        out.send(prox.proxy_of(rec.parent), kTagChildDone, w.words(),
                 label_bits_ + cluster_->k() + 16);
        merged.push_back(label);
      });
      for (const Label label : merged) proxy_records_[i].erase(label);
    });

    runtime_.step([&](MachineId i, std::span<const Message> inbox, Outbox&) {
      for (const auto& msg : inbox) {
        if (msg.tag == kTagRelabel) {
          relabel_part(i, msg.payload()[0], msg.payload()[1]);
        } else if (msg.tag == kTagChildDone) {
          const Label parent = msg.payload()[0];
          Record* rec = proxy_records_[i].find(parent);
          KMM_CHECK_MSG(rec != nullptr, "child-done for unknown parent");
          KMM_CHECK(rec->children_left > 0);
          --rec->children_left;
          auto& child_srcs = mask_scratch_[i];
          KMM_DCHECK(msg.payload_words() >= 1 + child_srcs.size());
          for (std::size_t wi = 0; wi < child_srcs.size(); ++wi) {
            child_srcs[wi] = msg.payload()[1 + wi];
          }
          mask_or(rec->srcs, child_srcs);
        }
      }
    });
  }
  result_.max_merge_iterations = std::max(result_.max_merge_iterations, rho);
  return rho;
}

void BoruvkaEngine::relabel_part(MachineId machine, Label from, Label to) {
  KMM_DCHECK(from != to);
  auto& parts = machine_parts_[machine];
  KMM_CHECK_MSG(parts.contains(from), "relabel for a part this machine does not hold");
  bool created = false;
  auto& dst = parts.get_or_create(to, created);
  if (created) dst.clear();
  // Re-find after get_or_create: slot storage may have grown.
  const auto& src = *parts.find(from);
  for (const Vertex v : src) labels_[v] = to;
  dst.insert(dst.end(), src.begin(), src.end());
  parts.erase(from);
}

void BoruvkaEngine::snapshot_machine(MachineId m, WordWriter& w) {
  w.u64(static_cast<std::uint64_t>(bit_scratch_[m]));
  w.u64(sampler_retries_by_machine_[m]);
  for (const Vertex v : dg_->vertices_of(m)) w.u64(labels_[v]);

  std::uint64_t count = 0;
  machine_parts_[m].for_each([&](Label, const std::vector<Vertex>&) { ++count; });
  w.u64(count);
  machine_parts_[m].for_each_sorted([&](Label label, const std::vector<Vertex>& verts) {
    w.u64(label).u64(verts.size());
    for (const Vertex v : verts) w.u64(v);
  });

  count = 0;
  resend_[m].for_each([&](Label, const Weight&) { ++count; });
  w.u64(count);
  resend_[m].for_each_sorted([&](Label label, const Weight& thr) { w.u64(label).u64(thr); });

  count = 0;
  proxy_records_[m].for_each([&](Label, const Record&) { ++count; });
  w.u64(count);
  proxy_records_[m].for_each_sorted([&](Label label, const Record& rec) {
    w.u64(label)
        .u64(rec.state)
        .u64(rec.parent)
        .u64(rec.children_left)
        .u64(rec.thr)
        .u64(rec.has_candidate ? 1 : 0)
        .u64(rec.cand_in)
        .u64(rec.cand_out)
        .u64(rec.cand_w)
        .u64(rec.target);
    for (const auto word : rec.srcs) w.u64(word);
  });

  const auto& forest = result_.forest_by_machine[m];
  w.u64(forest.size());
  for (const auto& [u, v] : forest) w.u64(u).u64(v);
  const auto& mst = result_.mst_by_machine[m];
  w.u64(mst.size());
  for (const auto& e : mst) w.u64(e.u).u64(e.v).u64(e.w);
}

void BoruvkaEngine::restore_machine(MachineId m, WordReader& r) {
  bit_scratch_[m] = static_cast<char>(r.u64());
  sampler_retries_by_machine_[m] = r.u64();
  for (const Vertex v : dg_->vertices_of(m)) labels_[v] = r.u64();

  machine_parts_[m].clear();
  std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Label label = r.u64();
    const std::uint64_t size = r.u64();
    bool created = false;
    auto& part = machine_parts_[m].get_or_create(label, created);
    part.clear();
    for (std::uint64_t j = 0; j < size; ++j) {
      part.push_back(static_cast<Vertex>(r.u64()));
    }
  }

  resend_[m].clear();
  count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Label label = r.u64();
    bool created = false;
    resend_[m].get_or_create(label, created) = r.u64();
  }

  proxy_records_[m].clear();
  count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const Label label = r.u64();
    bool created = false;
    Record& rec = proxy_records_[m].get_or_create(label, created);
    rec.reset(mask_words());
    rec.state = static_cast<State>(r.u64());
    rec.parent = r.u64();
    rec.children_left = static_cast<std::uint32_t>(r.u64());
    rec.thr = r.u64();
    rec.has_candidate = r.u64() != 0;
    rec.cand_in = static_cast<Vertex>(r.u64());
    rec.cand_out = static_cast<Vertex>(r.u64());
    rec.cand_w = r.u64();
    rec.target = r.u64();
    for (auto& word : rec.srcs) word = r.u64();
  }

  auto& forest = result_.forest_by_machine[m];
  forest.clear();
  count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto u = static_cast<Vertex>(r.u64());
    const auto v = static_cast<Vertex>(r.u64());
    forest.emplace_back(u, v);
  }
  auto& mst = result_.mst_by_machine[m];
  mst.clear();
  count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto u = static_cast<Vertex>(r.u64());
    const auto v = static_cast<Vertex>(r.u64());
    const Weight weight = r.u64();
    mst.push_back(WeightedEdge{u, v, weight});
  }
}

std::uint64_t BoruvkaEngine::count_distinct_labels() {
  seen_scratch_.assign(n_, 0);
  std::uint64_t count = 0;
  for (const Label label : labels_) {
    if (!seen_scratch_[label]) {
      seen_scratch_[label] = 1;
      ++count;
    }
  }
  return count;
}

void BoruvkaEngine::run_component_count() {
  const MachineId k = cluster_->k();
  const ProxyMap prox(shared_.seed(0xC017, 0, seed_purpose::kProxy), k);
  runtime_.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    machine_parts_[i].for_each_sorted([&](Label label, const std::vector<Vertex>& verts) {
      if (!verts.empty()) out.send(prox.proxy_of(label), kTagCountProxy, {label}, label_bits_);
    });
  });
  runtime_.step([&](MachineId i, std::span<const Message> inbox, Outbox& out) {
    // sort + unique reproduces the ordered-set iteration the wire expects.
    auto& distinct = label_scratch_[i];
    distinct.clear();
    for (const auto& msg : inbox) {
      if (msg.tag == kTagCountProxy) distinct.push_back(msg.payload()[0]);
    }
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
    for (const Label label : distinct) {
      out.send(0, kTagCountRoot, {label}, label_bits_);
    }
  });
  // Only machine 0 acts here; there is no parallelism to harvest.
  std::uint64_t count = 0;
  runtime_.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox& out) {
        if (i != 0) return;
        auto& all = label_scratch_[0];
        all.clear();
        for (const auto& msg : inbox) {
          if (msg.tag == kTagCountRoot) all.push_back(msg.payload()[0]);
        }
        std::sort(all.begin(), all.end());
        all.erase(std::unique(all.begin(), all.end()), all.end());
        count = all.size();
        for (MachineId j = 1; j < out.machines(); ++j) {
          out.send(j, kTagCountBcast, {count}, 64);
        }
      },
      StepMode::kInline);
  result_.num_components = count;
}

BoruvkaResult BoruvkaEngine::run() {
  const StatsScope scope(*cluster_);
  // Fault-plane state hooks for the whole run (porting recipe rule 8b);
  // cleared on exit so a plane outliving the engine cannot call into it.
  const StateHookScope fault_scope(
      config_.fault, [this](MachineId m, WordWriter& w) { snapshot_machine(m, w); },
      [this](MachineId m, WordReader& r) { restore_machine(m, r); });
  const std::uint64_t lg = bits_for(std::max<std::uint64_t>(n_, 2));
  const int max_phases =
      config_.max_phases > 0 ? config_.max_phases : static_cast<int>(12 * lg) + 1;

  for (int phase = 0; phase < max_phases; ++phase) {
    if (!any_active_parts()) {
      result_.converged = true;
      break;
    }
    PhaseTrace trace;
    trace.phase = static_cast<std::uint32_t>(phase);
    trace.components_before = count_distinct_labels();
    const std::uint64_t rounds_before = cluster_->stats().rounds;

    charge_phase_randomness();
    const std::uint32_t gen = run_elimination_loop(static_cast<std::uint32_t>(phase));
    run_drr_step(static_cast<std::uint32_t>(phase), gen);
    trace.merge_iterations = run_merge_loop(static_cast<std::uint32_t>(phase), gen);
    trace.elimination_iterations = gen + 1;
    trace.components_after = count_distinct_labels();
    trace.rounds = cluster_->stats().rounds - rounds_before;
    result_.phases.push_back(trace);
    KMM_LOG_DEBUG("phase %d: %llu -> %llu components, %llu rounds", phase,
                  static_cast<unsigned long long>(trace.components_before),
                  static_cast<unsigned long long>(trace.components_after),
                  static_cast<unsigned long long>(trace.rounds));
  }
  if (!result_.converged) {
    // The Lemma 7 phase budget is exhausted; correct w.h.p. regardless —
    // record whether anything was actually left.
    result_.converged = !any_active_parts();
  }

  if (config_.count_components) {
    run_component_count();
    KMM_CHECK_MSG(result_.num_components == count_distinct_labels(),
                  "counting protocol disagrees with the label state");
  } else {
    result_.num_components = count_distinct_labels();
  }
  for (const auto retries : sampler_retries_by_machine_) result_.sampler_retries += retries;
  result_.labels = labels_;
  result_.stats = scope.snapshot();
  return result_;
}

}  // namespace kmm
