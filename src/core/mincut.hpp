#pragma once
// O(log n)-approximate min-cut (Theorem 3, Section 3.2).
//
// Karger-style sampling ([18], applied as in Ghaffari–Kuhn [15]): edges are
// kept with probability p = 2^-i using a *shared* hash of the edge index —
// both endpoints' home machines agree on every coin with zero
// communication. While p·λ ≳ log n the sampled graph stays connected
// w.h.p.; the first level i* whose samples disconnect therefore satisfies
// 2^{i*} ≈ λ / Θ(log n), giving the O(log n)-factor estimate
//     λ̂ = 2^{i*-1} · ln n.
// Each level runs `trials` independent samples and disconnection is decided
// by majority, the whole sweep costing O~(n/k^2) · O(log m) rounds.

#include <vector>

#include "core/boruvka.hpp"

namespace kmm {

struct MinCutConfig {
  std::uint64_t seed = 7;
  int trials_per_level = 3;
  int max_levels = 0;  // 0 => ceil(log2 m) + 2
  BoruvkaConfig connectivity;  // settings for the inner connectivity runs
  /// Worker threads for every inner connectivity run (overrides
  /// connectivity.threads; 1 = sequential, 0 = hardware concurrency,
  /// clamped to k). Results and the ledger are thread-invariant.
  unsigned threads = 1;
  /// Optional observability sinks, forwarded into every inner connectivity
  /// run (overrides connectivity.obs). One timeline attached here sees the
  /// whole level sweep as consecutive rows on one cluster ledger.
  const ObsSink* obs = nullptr;
  /// Optional cooperative cancellation point, forwarded into every inner
  /// connectivity run (overrides connectivity.cancel); one budget covers
  /// the whole level sweep. Null never cancels.
  CancelPoint* cancel = nullptr;
  /// Optional shared worker pool, forwarded into every inner connectivity
  /// run (overrides connectivity.pool); null = private pools.
  ThreadPool* pool = nullptr;
};

struct MinCutLevelTrace {
  int level = 0;                 // sampling probability 2^-level
  int trials = 0;
  int disconnected_trials = 0;
};

struct MinCutResult {
  bool graph_connected = false;
  std::uint64_t estimate = 0;       // λ̂; 0 iff the input is disconnected
  int disconnect_level = -1;        // first majority-disconnected level
  std::vector<MinCutLevelTrace> levels;
  RunStats stats;
};

[[nodiscard]] MinCutResult approximate_min_cut(Cluster& cluster, const DistributedGraph& dg,
                                               const MinCutConfig& config = {});

}  // namespace kmm
