#include "core/verification.hpp"

#include <algorithm>

#include "core/connectivity.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

namespace {

constexpr std::uint32_t kTagLabelShip = 41;
constexpr std::uint32_t kTagVerdict = 42;
constexpr std::uint32_t kTagEdgeCount = 43;

/// Distributed equality test of two vertex labels: home(s) ships label(s)
/// to home(t), which compares and broadcasts the verdict. O(1) rounds.
/// Two one-message control-plane supersteps — always StepMode::kInline, so
/// a single-thread runtime is built here (no pool to spin up and join).
bool labels_equal(Cluster& cluster, const DistributedGraph& dg, const BoruvkaResult& res,
                  Vertex s, Vertex t) {
  Runtime rt(cluster, RuntimeConfig{1});
  const std::uint64_t label_bits =
      bits_for(std::max<std::uint64_t>(dg.num_vertices(), 2));
  const MachineId ms = dg.home(s);
  const MachineId mt = dg.home(t);
  rt.step(
      [&](MachineId i, std::span<const Message>, Outbox& out) {
        if (i == ms) out.send(mt, kTagLabelShip, {res.labels[s]}, label_bits);
      },
      StepMode::kInline);
  bool equal = false;
  rt.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox& out) {
        if (i != mt) return;
        Label shipped = 0;
        bool got = false;
        for (const auto& msg : inbox) {
          if (msg.tag == kTagLabelShip) {
            shipped = msg.payload()[0];
            got = true;
          }
        }
        KMM_CHECK(got);
        equal = shipped == res.labels[t];
        for (MachineId j = 0; j < rt.k(); ++j) {
          if (j != mt) out.send(j, kTagVerdict, {equal ? 1ULL : 0ULL}, 1);
        }
      },
      StepMode::kInline);
  return equal;
}

/// Global (undirected) edge count: each home machine counts edges whose
/// lower endpoint it hosts (a free parallel superstep — nothing is sent);
/// sum-reduce at M1.
std::uint64_t count_edges(Runtime& rt, const DistributedGraph& dg) {
  std::vector<std::uint64_t> local(rt.k(), 0);
  rt.step([&](MachineId i, std::span<const Message>, Outbox&) {
    for (const Vertex v : dg.vertices_of(i)) {
      for (const auto& he : dg.neighbors(v)) {
        if (v < he.to) ++local[i];
      }
    }
  });
  return sum_reduce_broadcast(rt, local, kTagEdgeCount);
}

Graph restricted_to(const Graph& g, const std::vector<std::pair<Vertex, Vertex>>& edges) {
  std::vector<WeightedEdge> list;
  list.reserve(edges.size());
  for (auto [u, v] : edges) {
    KMM_CHECK_MSG(g.has_edge(u, v), "subgraph edge not present in G");
    list.push_back(WeightedEdge{std::min(u, v), std::max(u, v), 1});
  }
  std::sort(list.begin(), list.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    return std::pair{a.u, a.v} < std::pair{b.u, b.v};
  });
  list.erase(std::unique(list.begin(), list.end()), list.end());
  return Graph(g.num_vertices(), std::move(list));
}

}  // namespace

VerifyResult verify_spanning_connected_subgraph(
    Cluster& cluster, const DistributedGraph& dg,
    const std::vector<std::pair<Vertex, Vertex>>& subgraph_edges, const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  const Graph h = restricted_to(dg.graph(), subgraph_edges);
  const DistributedGraph hd(h, dg.partition());
  const auto res = connected_components(cluster, hd, config);
  VerifyResult out;
  out.components = res.num_components;
  out.ok = res.num_components == 1;  // H spans all of V(G) by construction
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_cut(Cluster& cluster, const DistributedGraph& dg,
                        const std::vector<std::pair<Vertex, Vertex>>& cut_edges,
                        const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  // cc before and after the removal; the candidate is a cut iff cc grows.
  const auto before = connected_components(cluster, dg, config);
  const Graph reduced = dg.graph().without_edges(cut_edges);
  const DistributedGraph rd(reduced, dg.partition());
  BoruvkaConfig after_cfg = config;
  after_cfg.seed = split(config.seed, 0xc07);
  const auto after = connected_components(cluster, rd, after_cfg);
  VerifyResult out;
  out.components = after.num_components;
  out.ok = after.num_components > before.num_components;
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_st_connectivity(Cluster& cluster, const DistributedGraph& dg, Vertex s,
                                    Vertex t, const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  const auto res = connected_components(cluster, dg, config);
  VerifyResult out;
  out.components = res.num_components;
  out.ok = labels_equal(cluster, dg, res, s, t);
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_edge_on_all_paths(Cluster& cluster, const DistributedGraph& dg, Vertex u,
                                      Vertex v, Vertex x, Vertex y,
                                      const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  KMM_CHECK_MSG(dg.graph().has_edge(x, y), "edge-on-all-paths: edge not in G");
  const Graph reduced = dg.graph().without_edges({{x, y}});
  const DistributedGraph rd(reduced, dg.partition());
  const auto res = connected_components(cluster, rd, config);
  VerifyResult out;
  out.components = res.num_components;
  out.ok = !labels_equal(cluster, rd, res, u, v);  // e on all u-v paths
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_st_cut(Cluster& cluster, const DistributedGraph& dg, Vertex s, Vertex t,
                           const std::vector<std::pair<Vertex, Vertex>>& cut_edges,
                           const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  const Graph reduced = dg.graph().without_edges(cut_edges);
  const DistributedGraph rd(reduced, dg.partition());
  const auto res = connected_components(cluster, rd, config);
  VerifyResult out;
  out.components = res.num_components;
  out.ok = !labels_equal(cluster, rd, res, s, t);
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_cycle_containment(Cluster& cluster, const DistributedGraph& dg,
                                      const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  std::uint64_t m = 0;
  {
    Runtime rt(cluster, RuntimeConfig{config.threads, config.obs, nullptr, config.cancel,
                                      config.pool});
    m = count_edges(rt, dg);
  }
  const auto res = connected_components(cluster, dg, config);
  VerifyResult out;
  out.components = res.num_components;
  out.ok = m > dg.num_vertices() - res.num_components;
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_e_cycle_containment(Cluster& cluster, const DistributedGraph& dg, Vertex x,
                                        Vertex y, const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  KMM_CHECK_MSG(dg.graph().has_edge(x, y), "e-cycle containment: edge not in G");
  const Graph reduced = dg.graph().without_edges({{x, y}});
  const DistributedGraph rd(reduced, dg.partition());
  const auto res = connected_components(cluster, rd, config);
  VerifyResult out;
  out.components = res.num_components;
  out.ok = labels_equal(cluster, rd, res, x, y);  // still connected => cycle
  out.stats = scope.snapshot();
  return out;
}

VerifyResult verify_bipartiteness(Cluster& cluster, const DistributedGraph& dg,
                                  const BoruvkaConfig& config) {
  const StatsScope scope(cluster);
  const std::size_t n = dg.num_vertices();

  // cc(G).
  const auto base = connected_components(cluster, dg, config);

  // Bipartite double cover G': vertex v splits into 2v ("even side") and
  // 2v+1 ("odd side"); edge (u,v) becomes (2u, 2v+1) and (2u+1, 2v). Each
  // component of G lifts to two components iff it is bipartite, else one.
  std::vector<WeightedEdge> lifted;
  lifted.reserve(2 * dg.graph().num_edges());
  for (const auto& e : dg.graph().edges()) {
    lifted.push_back(WeightedEdge{static_cast<Vertex>(2 * e.u),
                                  static_cast<Vertex>(2 * e.v + 1), 1});
    lifted.push_back(WeightedEdge{static_cast<Vertex>(2 * e.u + 1),
                                  static_cast<Vertex>(2 * e.v), 1});
  }
  const Graph cover(2 * n, std::move(lifted));
  std::vector<MachineId> homes(2 * n);
  for (Vertex v = 0; v < n; ++v) {
    homes[2 * v] = dg.home(v);      // both lifts live with v's home machine,
    homes[2 * v + 1] = dg.home(v);  // so construction is communication-free
  }
  const DistributedGraph cover_dg(
      cover, VertexPartition::from_table(std::move(homes), dg.machines()));
  BoruvkaConfig cover_cfg = config;
  cover_cfg.seed = split(config.seed, 0xb1);
  const auto lifted_res = connected_components(cluster, cover_dg, cover_cfg);

  VerifyResult out;
  out.components = lifted_res.num_components;
  out.ok = lifted_res.num_components == 2 * base.num_components;
  out.stats = scope.snapshot();
  return out;
}

}  // namespace kmm
