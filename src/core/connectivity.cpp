#include "core/connectivity.hpp"

#include <algorithm>
#include <limits>

namespace kmm {

BoruvkaResult connected_components(Cluster& cluster, const DistributedGraph& dg,
                                   const BoruvkaConfig& config) {
  if (dg.num_vertices() < 2) {
    BoruvkaResult trivial;
    trivial.labels.assign(dg.num_vertices(), 0);
    trivial.num_components = dg.num_vertices();
    trivial.converged = true;
    trivial.forest_by_machine.resize(cluster.k());
    trivial.mst_by_machine.resize(cluster.k());
    return trivial;
  }
  BoruvkaEngine engine(cluster, dg, config, BoruvkaMode::kConnectivity);
  return engine.run();
}

std::vector<Vertex> canonical_labels(const std::vector<Label>& labels) {
  // Map every raw label to the smallest vertex id carrying it.
  const std::size_t n = labels.size();
  constexpr Vertex kUnset = std::numeric_limits<Vertex>::max();
  std::vector<Vertex> smallest(n, kUnset);
  for (std::size_t v = 0; v < n; ++v) {
    auto& slot = smallest[labels[v]];
    slot = std::min(slot, static_cast<Vertex>(v));
  }
  std::vector<Vertex> out(n);
  for (std::size_t v = 0; v < n; ++v) out[v] = smallest[labels[v]];
  return out;
}

}  // namespace kmm
