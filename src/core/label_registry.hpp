#pragma once
// Flat, capacity-retaining label -> value registry for the Borůvka engine's
// per-machine component state.
//
// The engine keys everything by component label (a vertex id in [0, n)):
// which parts a machine holds, which labels to re-sketch, proxy-side
// component records, per-superstep sketch accumulators. Tree-based maps put
// every one of those on the allocator and scatter them across the heap;
// this registry is the flat replacement, mirroring the message plane's
// count-then-bucket/touched-list design (PR 3):
//
//  * a dense slot table `slot_of_[label]` (one u32 per label in the
//    universe, kNoSlot when absent) makes find/insert/erase O(1) with no
//    hashing and no per-node allocation;
//  * slots are recycled through a free list, and clear() recycles the whole
//    population without releasing storage — a slot's payload keeps its heap
//    capacity (a part's vertex vector, a record's machine mask) across
//    occupants, so steady-state churn allocates nothing;
//  * `touched_` lists the labels currently present; for_each_sorted() sorts
//    it ascending and walks payloads in label order — the exact iteration
//    order the old ordered maps gave, which the wire protocol depends on
//    (the golden ledger pins message order per superstep).
//
// Contract:
//  * reset_universe() must be called before use; labels must be < universe.
//  * get_or_create() with created == true hands back a *stale* payload from
//    a previous occupant — the caller must reset it, preferably with a
//    capacity-retaining reset (vector::clear, assign of equal size).
//  * erase()/get_or_create() must not be called while iterating; collect
//    labels and mutate after (the engine's finished/merged-list pattern).
//  * The registry is not thread-safe; the engine shards one registry per
//    machine so superstep handlers never share one.
//
// Memory: the dense slot table costs 4 bytes per universe label per
// registry. The engine keeps 4 registries x k machines over a universe of n
// labels — 16*n*k bytes total, the price of O(1) slot lookup without
// hashing; revisit with a paged table if simulated n ever outgrows it.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/common.hpp"
#include "util/assert.hpp"

namespace kmm {

template <typename T>
class LabelRegistry {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Size the dense slot table for labels in [0, universe) and empty the
  /// registry. Existing slot storage is kept for recycling.
  void reset_universe(std::size_t universe) {
    slot_of_.assign(universe, kNoSlot);
    touched_.clear();
    free_.clear();
    free_.reserve(slots_.size());
    for (std::uint32_t s = 0; s < slots_.size(); ++s) free_.push_back(s);
  }

  [[nodiscard]] bool contains(Label label) const noexcept {
    KMM_DCHECK(label < slot_of_.size());
    return slot_of_[label] != kNoSlot;
  }

  [[nodiscard]] T* find(Label label) noexcept {
    KMM_DCHECK(label < slot_of_.size());
    const std::uint32_t s = slot_of_[label];
    return s == kNoSlot ? nullptr : &slots_[s].value;
  }
  [[nodiscard]] const T* find(Label label) const noexcept {
    KMM_DCHECK(label < slot_of_.size());
    const std::uint32_t s = slot_of_[label];
    return s == kNoSlot ? nullptr : &slots_[s].value;
  }

  [[nodiscard]] T& at(Label label) {
    T* v = find(label);
    KMM_CHECK_MSG(v != nullptr, "label not present in registry");
    return *v;
  }

  /// Find or insert. On insert, `created` is set and the returned payload is
  /// stale (recycled slot) — the caller must reset it. References are
  /// invalidated by later get_or_create calls (slot storage may grow).
  [[nodiscard]] T& get_or_create(Label label, bool& created) {
    KMM_DCHECK(label < slot_of_.size());
    std::uint32_t s = slot_of_[label];
    if (s != kNoSlot) {
      created = false;
      return slots_[s].value;
    }
    created = true;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slot_of_[label] = s;
    slots_[s].label = label;
    slots_[s].pos = static_cast<std::uint32_t>(touched_.size());
    touched_.push_back(label);
    return slots_[s].value;
  }

  /// Remove `label`, recycling its slot (payload storage retained for the
  /// next occupant). O(1) via swap-with-last in the touched list.
  void erase(Label label) {
    KMM_DCHECK(label < slot_of_.size());
    const std::uint32_t s = slot_of_[label];
    KMM_CHECK_MSG(s != kNoSlot, "erase of a label not present in registry");
    const std::uint32_t pos = slots_[s].pos;
    const Label last = touched_.back();
    touched_[pos] = last;
    slots_[slot_of_[last]].pos = pos;
    touched_.pop_back();
    slot_of_[label] = kNoSlot;
    free_.push_back(s);
  }

  /// Empty the registry; all slots (and their payload capacities) are
  /// recycled, so a warm registry refills without allocating.
  void clear() noexcept {
    for (const Label label : touched_) {
      free_.push_back(slot_of_[label]);
      slot_of_[label] = kNoSlot;
    }
    touched_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return touched_.size(); }
  [[nodiscard]] bool empty() const noexcept { return touched_.empty(); }

  /// Visit every (label, payload) in unspecified order — for scans whose
  /// result is order-independent (activity bits, counts).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (const Label label : touched_) fn(label, slots_[slot_of_[label]].value);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Label label : touched_) fn(label, slots_[slot_of_[label]].value);
  }

  /// True iff any (label, payload) satisfies `pred`; stops at the first hit
  /// (the activity scans' early break).
  template <typename Pred>
  [[nodiscard]] bool any_of(Pred&& pred) const {
    for (const Label label : touched_) {
      if (pred(label, slots_[slot_of_[label]].value)) return true;
    }
    return false;
  }

  /// Visit every (label, payload) in ascending label order — the iteration
  /// the wire protocol uses wherever messages are emitted, so the ledger
  /// matches the ordered-map representation bit for bit. Sorts the touched
  /// list in place (in-place introsort, no allocation).
  template <typename Fn>
  void for_each_sorted(Fn&& fn) {
    sort_touched();
    for (const Label label : touched_) fn(label, slots_[slot_of_[label]].value);
  }

 private:
  void sort_touched() noexcept {
    std::sort(touched_.begin(), touched_.end());
    for (std::uint32_t p = 0; p < touched_.size(); ++p) {
      slots_[slot_of_[touched_[p]]].pos = p;
    }
  }

  struct Slot {
    Label label = 0;
    std::uint32_t pos = 0;  // index in touched_ while occupied
    T value{};
  };

  std::vector<std::uint32_t> slot_of_;  // label -> slot, kNoSlot when absent
  std::vector<Slot> slots_;             // never shrinks; free slots recycled
  std::vector<std::uint32_t> free_;
  std::vector<Label> touched_;          // labels currently present
};

}  // namespace kmm
