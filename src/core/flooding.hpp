#pragma once
// Flooding baseline (Section 1.2 warm-up): every vertex floods the smallest
// label it has seen; Θ(n/k + D) rounds in the k-machine model via the
// Conversion Theorem. Implemented directly so the measured per-link loads
// show *why* it is stuck at ~n/k: high-degree boundary vertices congest the
// links of their home machine.
//
// The k-machine locality advantage is honored: label propagation among
// vertices hosted on the same machine happens in-place (free local
// computation); only labels crossing machine boundaries cost bandwidth,
// and per (target vertex, round) the sender aggregates to the minimum
// candidate label (legal local preprocessing).
//
// Execution: each boundary-exchange iteration is one Runtime superstep
// handler — with config.threads > 1 the k machines' local fixpoints and
// boundary aggregation run concurrently. The shared labels/changed vectors
// are only ever written at machine-owned indices (asserted), so the
// handlers are race-free; the cluster ledger is bit-identical for every
// thread count.

#include <vector>

#include "core/common.hpp"
#include "obs/obs_sink.hpp"

namespace kmm {

class FaultPlane;

struct FloodingConfig {
  /// Caps the boundary-exchange iteration count (0 = n+1, always
  /// sufficient: the smallest label needs at most one superstep per
  /// boundary hop).
  std::uint64_t max_supersteps = 0;
  /// Worker threads for per-machine local computation (1 = sequential,
  /// 0 = hardware concurrency; clamped to k). Results and the cluster
  /// ledger are identical for every value.
  unsigned threads = 1;
  /// Optional observability sinks (see src/obs/obs_sink.hpp); null records
  /// nothing and leaves the ledger untouched either way.
  const ObsSink* obs = nullptr;
  /// Optional fault-injection & recovery plane (src/fault/). Flooding
  /// registers per-machine state hooks (labels/changed/sent-bit of the
  /// hosted vertex partition), so scheduled crashes roll back and replay
  /// instead of aborting; null leaves behaviour bit-identical.
  FaultPlane* fault = nullptr;
  /// Optional cooperative cancellation point (src/serve/cancel.hpp),
  /// checked once per superstep; null never cancels.
  CancelPoint* cancel = nullptr;
  /// Optional shared worker pool (RuntimeConfig::pool); null = private pool.
  ThreadPool* pool = nullptr;
};

struct FloodingResult {
  std::vector<Label> labels;       // smallest vertex id in the component
  std::uint64_t num_components = 0;
  std::uint64_t supersteps = 0;    // boundary-exchange iterations
  bool converged = false;
  RunStats stats;
};

[[nodiscard]] FloodingResult flooding_connectivity(Cluster& cluster,
                                                   const DistributedGraph& dg,
                                                   const FloodingConfig& config = {});

/// Back-compat shim for callers that only cap the iteration count.
[[nodiscard]] FloodingResult flooding_connectivity(Cluster& cluster,
                                                   const DistributedGraph& dg,
                                                   std::uint64_t max_supersteps);

}  // namespace kmm
