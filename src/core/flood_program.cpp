#include "core/flood_program.hpp"

#include <algorithm>

#include "fault/fault_plane.hpp"
#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagFlood = 1;
constexpr std::uint32_t kTagCtrl = 2;

/// Same machine-local fixpoint as the lambda engine: push labels of dirty
/// vertices through the hosted subgraph; only machine-owned cells are
/// written, so concurrent per-machine handlers stay race-free.
void local_propagate(const DistributedGraph& dg, MachineId machine,
                     std::vector<Label>& labels, std::vector<char>& changed,
                     std::deque<Vertex>& queue) {
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    for (const auto& he : dg.neighbors(v)) {
      if (dg.home(he.to) != machine) continue;
      if (labels[v] < labels[he.to]) {
        labels[he.to] = labels[v];
        changed[he.to] = 1;
        queue.push_back(he.to);
      }
    }
  }
}

}  // namespace

FloodProgram::FloodProgram(const DistributedGraph& dg, MachineId k)
    : dg_(&dg),
      k_(k),
      label_bits_(bits_for(std::max<std::uint64_t>(dg.num_vertices(), 2))) {
  const std::size_t n = dg.num_vertices();
  labels_.resize(n);
  for (Vertex v = 0; v < n; ++v) labels_[v] = v;
  changed_.assign(n, 1);
  sent_.assign(k, 0);
  done_.assign(k, 0);
  steps_.assign(k, 0);
  queue_.resize(k);
  boundary_.resize(k);
}

bool FloodProgram::done() const {
  return std::all_of(done_.begin(), done_.end(), [](char d) { return d != 0; });
}

void FloodProgram::on_superstep(MachineId self, std::span<const Message> inbox,
                                Outbox& out) {
  auto& q = queue_[self];
  bool active_prev = sent_[self] != 0;
  if (steps_[self] == 0) {
    // First superstep: seed the local fixpoint from every hosted vertex
    // (all changed bits start set). Nothing arrived yet and termination is
    // impossible before at least one exchange.
    q.assign(dg_->vertices_of(self).begin(), dg_->vertices_of(self).end());
    local_propagate(*dg_, self, labels_, changed_, q);
    active_prev = true;
  } else {
    for (const Message& msg : inbox) {
      if (msg.tag == kTagCtrl) {
        active_prev = active_prev || msg.payload()[0] != 0;
        continue;
      }
      KMM_DCHECK(msg.tag == kTagFlood && msg.payload_words() >= 2);
      const auto v = static_cast<Vertex>(msg.payload()[0]);
      KMM_CHECK_MSG(dg_->home(v) == self, "flood label for a vertex homed elsewhere");
      const Label label = msg.payload()[1];
      if (label < labels_[v]) {
        labels_[v] = label;
        changed_[v] = 1;
        q.push_back(v);
      }
    }
    local_propagate(*dg_, self, labels_, changed_, q);
  }

  if (!active_prev) {
    // No machine emitted flood messages last superstep, so nothing arrived,
    // no changed bit is set anywhere, and every machine observes the same
    // all-zero OR this superstep: global fixpoint. Send nothing (free step).
    done_[self] = 1;
    ++steps_[self];
    return;
  }

  // Boundary exchange: minimum candidate label per remote target among the
  // hosted vertices that changed, in deterministic ascending order.
  auto& cand = boundary_[self];
  cand.clear();
  for (const Vertex v : dg_->vertices_of(self)) {
    if (!changed_[v]) continue;
    for (const auto& he : dg_->neighbors(v)) {
      if (dg_->home(he.to) == self) continue;
      cand.emplace_back(he.to, labels_[v]);
    }
  }
  for (const Vertex v : dg_->vertices_of(self)) changed_[v] = 0;
  std::sort(cand.begin(), cand.end());
  cand.erase(std::unique(cand.begin(), cand.end(),
                         [](const auto& a, const auto& b) { return a.first == b.first; }),
             cand.end());
  sent_[self] = cand.empty() ? 0 : 1;
  for (const auto& [target, label] : cand) {
    out.send(dg_->home(target), kTagFlood, {target, label}, 2 * label_bits_);
  }
  // Convergence plane: broadcast this superstep's activity flag. Replaces
  // the lambda engine's or-reduce steps — flattened into the data superstep
  // so the program stays uniform (and therefore resumable).
  const auto flag = static_cast<std::uint64_t>(sent_[self]);
  for (MachineId j = 0; j < k_; ++j) {
    if (j != self) out.send(j, kTagCtrl, {flag}, 1);
  }
  ++steps_[self];
}

void FloodProgram::snapshot(MachineId m, WordWriter& out) {
  out.u64(steps_[m]);
  out.u64(static_cast<std::uint64_t>(sent_[m]));
  out.u64(static_cast<std::uint64_t>(done_[m]));
  for (const Vertex v : dg_->vertices_of(m)) {
    out.u64(labels_[v]);
    out.u64(static_cast<std::uint64_t>(changed_[v]));
  }
}

void FloodProgram::restore(MachineId m, WordReader& in) {
  steps_[m] = in.u64();
  sent_[m] = static_cast<char>(in.u64());
  done_[m] = static_cast<char>(in.u64());
  for (const Vertex v : dg_->vertices_of(m)) {
    labels_[v] = in.u64();
    changed_[v] = static_cast<char>(in.u64());
  }
  queue_[m].clear();
  boundary_[m].clear();
}

ResumableFloodResult resumable_flood_connectivity(Cluster& cluster,
                                                  const DistributedGraph& dg,
                                                  const ResumableFloodConfig& config) {
  const StatsScope scope(cluster);
  const std::size_t n = dg.num_vertices();
  const std::uint64_t cap =
      config.max_supersteps != 0 ? config.max_supersteps : static_cast<std::uint64_t>(n) + 8;
  FloodProgram program(dg, cluster.k());
  Runtime rt(cluster, RuntimeConfig{config.threads, config.obs, config.fault, config.cancel,
                                    config.pool});
  // Driven step-by-step rather than via Runtime::run so exhausting the cap
  // reports converged=false instead of aborting — a durable first lifetime
  // is "killed" exactly this way, with its state living on in the store.
  for (std::uint64_t s = 0; s < cap && !program.done(); ++s) {
    (void)rt.step(program);
  }

  ResumableFloodResult result;
  result.converged = program.done();
  result.supersteps = program.supersteps();
  result.labels = program.labels();
  std::vector<char> seen(n, 0);
  for (const Label label : result.labels) {
    if (!seen[label]) {
      seen[label] = 1;
      ++result.num_components;
    }
  }
  result.stats = scope.snapshot();
  return result;
}

}  // namespace kmm
