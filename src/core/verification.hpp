#pragma once
// Graph verification problems in O~(n/k^2) rounds (Theorem 4, Section 3.3).
//
// All eight problems reduce to the connectivity algorithm, following the
// reductions of Das Sarma et al. [11] and Ahn–Guha–McGregor [2] §3.3:
//
//   spanning connected subgraph  cc(H) == 1 over the full vertex set
//   cut                          removing the edges raises cc
//   s-t connectivity             equal labels
//   edge on all paths            u,v disconnected in G \ {e}
//   s-t cut                      s,t disconnected after removal
//   cycle containment            m > n - cc(G)
//   e-cycle containment          endpoints connected in G \ {e}
//   bipartiteness                bipartite double cover has 2·cc(G) pieces
//
// Derived graphs (edge removals, subgraph restrictions, the double cover)
// are constructible machine-locally — every transformation only touches
// adjacency the home machine already has — so the construction costs no
// communication; only the connectivity runs and O(1)-round label/count
// exchanges are charged.

#include <vector>

#include "core/boruvka.hpp"

namespace kmm {

struct VerifyResult {
  bool ok = false;
  RunStats stats;
  std::uint64_t components = 0;  // cc of the (final) derived graph
};

/// Is H (given by its edge set; must be a subgraph of G) a connected
/// spanning subgraph of G?
[[nodiscard]] VerifyResult verify_spanning_connected_subgraph(
    Cluster& cluster, const DistributedGraph& dg,
    const std::vector<std::pair<Vertex, Vertex>>& subgraph_edges,
    const BoruvkaConfig& config = {});

/// Does removing `cut_edges` disconnect (strictly increase cc of) G?
[[nodiscard]] VerifyResult verify_cut(Cluster& cluster, const DistributedGraph& dg,
                                      const std::vector<std::pair<Vertex, Vertex>>& cut_edges,
                                      const BoruvkaConfig& config = {});

/// Are s and t in the same connected component?
[[nodiscard]] VerifyResult verify_st_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                                  Vertex s, Vertex t,
                                                  const BoruvkaConfig& config = {});

/// Does edge e = (x, y) lie on every path between u and v?
[[nodiscard]] VerifyResult verify_edge_on_all_paths(Cluster& cluster,
                                                    const DistributedGraph& dg, Vertex u,
                                                    Vertex v, Vertex x, Vertex y,
                                                    const BoruvkaConfig& config = {});

/// Does removing `cut_edges` disconnect s from t?
[[nodiscard]] VerifyResult verify_st_cut(Cluster& cluster, const DistributedGraph& dg,
                                         Vertex s, Vertex t,
                                         const std::vector<std::pair<Vertex, Vertex>>& cut_edges,
                                         const BoruvkaConfig& config = {});

/// Does G contain any cycle?
[[nodiscard]] VerifyResult verify_cycle_containment(Cluster& cluster,
                                                    const DistributedGraph& dg,
                                                    const BoruvkaConfig& config = {});

/// Does edge e = (x, y) lie on some cycle?
[[nodiscard]] VerifyResult verify_e_cycle_containment(Cluster& cluster,
                                                      const DistributedGraph& dg, Vertex x,
                                                      Vertex y,
                                                      const BoruvkaConfig& config = {});

/// Is G bipartite? (AGM double-cover reduction.)
[[nodiscard]] VerifyResult verify_bipartiteness(Cluster& cluster, const DistributedGraph& dg,
                                                const BoruvkaConfig& config = {});

}  // namespace kmm
