#include "core/drr.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace kmm {

DrrRank drr_rank(std::uint64_t rank_seed, Label label) noexcept {
  return DrrRank{split(rank_seed, label), label};
}

bool drr_attaches(std::uint64_t rank_seed, Label child, Label parent) noexcept {
  return drr_rank(rank_seed, child) < drr_rank(rank_seed, parent);
}

DrrForest DrrForest::build(const std::vector<std::uint32_t>& target, std::uint64_t rank_seed) {
  const auto c = static_cast<std::uint32_t>(target.size());
  DrrForest f;
  f.parent.resize(c);
  for (std::uint32_t i = 0; i < c; ++i) {
    const std::uint32_t t = target[i];
    KMM_CHECK(t < c);
    const bool attach = t != i && drr_attaches(rank_seed, i, t);
    f.parent[i] = attach ? t : i;
  }
  // Depths: follow parent pointers; the rank order guarantees acyclicity,
  // so path lengths are bounded by c (checked).
  f.depth.assign(c, 0);
  std::vector<char> resolved(c, 0);
  for (std::uint32_t i = 0; i < c; ++i) {
    // Walk up collecting the path, then assign depths top-down.
    std::vector<std::uint32_t> path;
    std::uint32_t v = i;
    while (!resolved[v] && f.parent[v] != v) {
      path.push_back(v);
      v = f.parent[v];
      KMM_CHECK_MSG(path.size() <= c, "cycle in DRR forest");
    }
    std::uint32_t d = resolved[v] ? f.depth[v] : 0;
    resolved[v] = 1;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      f.depth[*it] = ++d;
      resolved[*it] = 1;
    }
  }
  for (std::uint32_t i = 0; i < c; ++i) {
    f.max_depth = std::max(f.max_depth, f.depth[i]);
    if (f.parent[i] == i) ++f.roots;
  }
  return f;
}

}  // namespace kmm
