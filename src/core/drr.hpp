#pragma once
// Distributed random ranking (Section 2.5; Chen–Pandurangan [8]).
//
// Components pick pseudo-random ranks; a component becomes the child of the
// component across its selected outgoing edge iff that component has a
// strictly higher rank, producing a forest of rooted trees of depth
// O(log n) w.h.p. (Lemma 6, re-proved in the paper's appendix).
//
// The connectivity/MST drivers apply the rank rule inline at the proxies;
// this module exposes the same rule as pure functions plus a sequential
// forest builder used by the Lemma 6 experiments (bench_drr_depth) and the
// DRR unit/property tests.

#include <cstdint>
#include <vector>

#include "core/common.hpp"
#include "util/random.hpp"

namespace kmm {

/// Rank of a component label under the shared phase seed. Total order:
/// (hash, label) lexicographic, so ranks are always distinct — the
/// "Θ(log n) bits break ties w.h.p." footnote made exact.
struct DrrRank {
  std::uint64_t hash;
  Label label;

  friend bool operator<(const DrrRank& a, const DrrRank& b) noexcept {
    return a.hash != b.hash ? a.hash < b.hash : a.label < b.label;
  }
  friend bool operator==(const DrrRank&, const DrrRank&) = default;
};

[[nodiscard]] DrrRank drr_rank(std::uint64_t rank_seed, Label label) noexcept;

/// True iff `child` must attach below `parent` (parent has higher rank).
[[nodiscard]] bool drr_attaches(std::uint64_t rank_seed, Label child, Label parent) noexcept;

/// Sequentially built DRR forest over `c` components where component i has
/// selected component `target[i]` via its outgoing edge (target[i] == i
/// means no outgoing edge / no selection).
struct DrrForest {
  std::vector<std::uint32_t> parent;  // parent[i] == i for roots
  std::vector<std::uint32_t> depth;   // root depth 0
  std::uint32_t max_depth = 0;
  std::uint32_t roots = 0;

  static DrrForest build(const std::vector<std::uint32_t>& target, std::uint64_t rank_seed);
};

}  // namespace kmm
