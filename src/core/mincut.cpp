#include "core/mincut.hpp"

#include <cmath>

#include "core/connectivity.hpp"
#include "util/assert.hpp"

namespace kmm {

MinCutResult approximate_min_cut(Cluster& cluster, const DistributedGraph& dg,
                                 const MinCutConfig& config) {
  const StatsScope scope(cluster);
  MinCutResult result;
  const std::size_t n = dg.num_vertices();
  const std::size_t m = dg.graph().num_edges();

  // Level 0 (p = 1) is plain connectivity of the input.
  {
    BoruvkaConfig conn = config.connectivity;
    conn.seed = split(config.seed, 0);
    conn.threads = config.threads;
    conn.obs = config.obs;
    conn.cancel = config.cancel;
    conn.pool = config.pool;
    const auto base = connected_components(cluster, dg, conn);
    result.graph_connected = base.num_components <= 1;
  }
  if (!result.graph_connected || m == 0) {
    result.estimate = 0;
    result.stats = scope.snapshot();
    return result;
  }

  int max_levels = config.max_levels;
  if (max_levels == 0) {
    max_levels = 2;
    while ((1ULL << max_levels) < m && max_levels < 62) ++max_levels;
    max_levels += 2;
  }

  for (int level = 1; level <= max_levels; ++level) {
    MinCutLevelTrace trace;
    trace.level = level;
    trace.trials = config.trials_per_level;
    // keep(e) iff the shared hash of the edge index falls below 2^(64-level)
    // — an exact Bernoulli(2^-level) coin both endpoints can evaluate.
    const std::uint64_t threshold = 1ULL << (64 - level);
    for (int trial = 0; trial < config.trials_per_level; ++trial) {
      const std::uint64_t trial_seed =
          split3(config.seed, static_cast<std::uint64_t>(level),
                 static_cast<std::uint64_t>(trial));
      const Graph sampled = dg.graph().filtered([&](Vertex u, Vertex v, Weight) {
        return split(trial_seed, edge_index(u, v, n)) < threshold;
      });
      const DistributedGraph sampled_dg(sampled, dg.partition());
      BoruvkaConfig conn = config.connectivity;
      conn.seed = split3(config.seed, 0x515, trial_seed);
      conn.threads = config.threads;
      conn.obs = config.obs;
      conn.cancel = config.cancel;
      conn.pool = config.pool;
      const auto res = connected_components(cluster, sampled_dg, conn);
      if (res.num_components > 1) ++trace.disconnected_trials;
    }
    result.levels.push_back(trace);
    if (2 * trace.disconnected_trials > trace.trials) {
      result.disconnect_level = level;
      break;
    }
  }
  KMM_CHECK_MSG(result.disconnect_level >= 1,
                "sampling sweep never disconnected a connected graph");

  // λ̂ = 2^{i*-1} · ln n: the sampling rate that still preserved
  // connectivity, scaled by the Karger threshold.
  const double ln_n = std::log(static_cast<double>(std::max<std::size_t>(n, 3)));
  result.estimate = static_cast<std::uint64_t>(std::max(
      1.0, std::ldexp(ln_n, result.disconnect_level - 1)));
  result.stats = scope.snapshot();
  return result;
}

}  // namespace kmm
