#pragma once
// The Borůvka-style engine behind both the O~(n/k^2) connectivity algorithm
// (Section 2) and the MST algorithm (Section 3.1).
//
// One *phase* executes, in order:
//
//   1. shared-randomness charge        (Section 2.2 relay cost)
//   2. outgoing-edge selection loop    (Sections 2.3-2.4; for MST the
//      Section 3.1 weight-threshold elimination until the MWOE is
//      *confirmed* by an empty restricted sketch)
//   3. DRR ranking + child registration (Section 2.5)
//   4. level-wise tree merging with per-iteration fresh proxies and
//      proxy-to-proxy record handoffs   (Section 2.5, Lemma 5)
//   5. termination check                (O(1)-round OR-reduce)
//
// All inter-machine coordination happens through Cluster messages, so the
// round/bit ledger reflects the full protocol, including label/weight
// lookups at home machines and all control traffic.
//
// Execution: every per-machine protocol segment (sketch construction,
// proxy-side merges and state transitions, query answering, relabeling) is
// a superstep handler run on the src/runtime/ engine, so with
// config.threads > 1 the k machines' local computation proceeds in
// parallel. Handlers only touch machine-indexed state (machine_parts_[i],
// proxy_records_[i], ...); the two cross-machine cells — the finished-label
// flags, set concurrently by several part machines, and nothing else — are
// atomics. The cluster ledger is identical for every thread count (see
// runtime/runtime.hpp for why, and tests/test_runtime.cpp for proof).
//
// Registry contract (the allocation-free sketch plane, mirroring the
// message plane of PR 3): all per-machine and proxy-side component state
// lives in LabelRegistry instances — flat label -> slot tables with
// free-list slot recycling and a sorted touched-list for iteration — never
// in tree maps. The rules that keep the ledger bit-identical and the steady
// state allocation-free:
//
//  * every loop that *emits messages* iterates via for_each_sorted(), which
//    reproduces the ordered-map ascending-label order exactly (the golden
//    ledger in tests/test_golden_stats.cpp pins this); order-independent
//    scans use the cheaper for_each();
//  * registries, sketch pools (SketchPool), WordWriters, and all scratch
//    vectors are machine-indexed members — a handler touches only slot i,
//    which is what makes the handlers race-free without locks;
//  * cleared containers retain capacity (registry clear() recycles slots
//    with their payload storage; Record::reset re-assigns the machine mask
//    in place), so iteration t+1 reuses iteration t's memory: after warmup
//    an elimination iteration performs zero heap allocations
//    (tests/test_alloc_steady_state.cpp and bench_boruvka_hotpath measure
//    this);
//  * incoming sketches are merged wire-level — L0Sampler::add_serialized
//    adds 3-word cells straight off the message payload into a pooled
//    accumulator; no per-message sketch is ever materialized.
//
// Modes:
//  * kConnectivity — samples any outgoing edge; merge edges form a spanning
//    forest (each edge recorded by the proxy machine that performed the
//    merge, i.e. the relaxed "some machine knows each edge" criterion of
//    Theorem 2(a) applied to spanning trees).
//  * kMst — iterates the elimination loop per component until the minimum
//    weight outgoing edge is confirmed; every confirmed MWOE is output
//    (cut property), so with distinct weights the union over machines is
//    exactly the MST.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/distributed_graph.hpp"
#include "cluster/proxy.hpp"
#include "cluster/shared_randomness.hpp"
#include "core/common.hpp"
#include "core/label_registry.hpp"
#include "runtime/runtime.hpp"
#include "sketch/graph_sketch.hpp"
#include "sketch/sketch_pool.hpp"

namespace kmm {

enum class BoruvkaMode { kConnectivity, kMst };

/// How sampled inter-component edges turn into merges (Section 2.5).
enum class MergeRule {
  /// Distributed random ranking: attach to the selected neighbor iff its
  /// rank is higher; trees of depth O(log n) (the paper's default).
  kDrr,
  /// Footnote 9's simpler alternative: components flip a shared coin and a
  /// merge happens only along edges from a 0-component to a 1-component;
  /// trees have depth 1 but only ~1/4 of selections merge per phase.
  kCoinFlip,
};

struct BoruvkaConfig {
  std::uint64_t seed = 1;        // master seed for the shared random tape
  int sketch_copies = 3;         // l0-sampler repetitions
  int max_phases = 0;            // 0 => the Lemma 7 bound 12*ceil(log2 n)
  bool charge_randomness = true; // charge the Section 2.2 relay each phase
  bool count_components = true;  // run the final counting protocol
  int max_elimination_iterations = 200;  // safety cap (expected O(log n))
  int max_merge_iterations = 200;        // safety cap (expected O(log n))
  MergeRule merge_rule = MergeRule::kDrr;
  /// Ablation only: route every component through one coordinator machine
  /// instead of random proxies — the congested "trivial strategy" of
  /// Section 1.2. Correctness is unaffected; rounds degrade to O~(n/k).
  bool single_coordinator = false;
  /// Worker threads for per-machine local computation (1 = sequential,
  /// 0 = hardware concurrency; clamped to k). Results and the cluster
  /// ledger are identical for every value — only wall-clock time changes.
  unsigned threads = 1;
  /// Optional observability sinks, forwarded to every Runtime this config
  /// builds (engine + the BoruvkaConfig-driven passes: rep_mst, two_edge,
  /// verification). Null records nothing; the ledger is identical either
  /// way. See src/obs/obs_sink.hpp.
  const ObsSink* obs = nullptr;
  /// Optional fault-injection & recovery plane (src/fault/). The engine
  /// registers per-machine state hooks covering parts, labels, pending
  /// resends, proxy records and recorded output edges, so scheduled crashes
  /// roll the victim back instead of aborting; null is bit-identical.
  FaultPlane* fault = nullptr;
  /// Optional cooperative cancellation point (src/serve/cancel.hpp),
  /// forwarded to every Runtime this config builds exactly like `obs`:
  /// deadlines/budgets/client cancellation unwind the run at the next
  /// superstep boundary by throwing QueryCancelled (porting recipe rule 9).
  /// Null never cancels.
  CancelPoint* cancel = nullptr;
  /// Optional shared worker pool (RuntimeConfig::pool): the serving layer
  /// multiplexes many queries' Runtimes onto one pool. Null = each Runtime
  /// owns a private pool when threads > 1, as before.
  ThreadPool* pool = nullptr;
};

struct PhaseTrace {
  std::uint32_t phase = 0;
  std::uint64_t components_before = 0;  // distinct labels entering the phase
  std::uint64_t components_after = 0;
  std::uint32_t elimination_iterations = 0;
  std::uint32_t merge_iterations = 0;   // DRR tree depth processed
  std::uint64_t rounds = 0;             // rounds charged during the phase
};

struct BoruvkaResult {
  std::vector<Label> labels;  // final component label per vertex
  std::uint64_t num_components = 0;
  bool converged = false;     // all components finished before max_phases

  /// Spanning-forest merge edges, per recording machine (kConnectivity).
  std::vector<std::vector<std::pair<Vertex, Vertex>>> forest_by_machine;
  /// Confirmed MWOEs, per recording machine (kMst).
  std::vector<std::vector<WeightedEdge>> mst_by_machine;

  std::vector<PhaseTrace> phases;
  std::uint32_t max_merge_iterations = 0;   // max DRR merge depth over phases
  std::uint64_t sampler_retries = 0;        // sample() failures on nonzero sketches
  RunStats stats;

  /// All forest/MST edges flattened (deduplicated, sorted).
  [[nodiscard]] std::vector<std::pair<Vertex, Vertex>> forest_edges() const;
  [[nodiscard]] std::vector<WeightedEdge> mst_edges() const;
};

class BoruvkaEngine {
 public:
  BoruvkaEngine(Cluster& cluster, const DistributedGraph& dg, BoruvkaConfig config,
                BoruvkaMode mode);

  BoruvkaResult run();

 private:
  enum State : std::uint8_t {
    kSearching = 0,
    kAwaitWeight = 1,
    kAwaitLabel = 2,
    kDone = 3,
    kFinishedState = 4,
  };

  /// Proxy-side component record; travels between proxy generations in
  /// handoff messages. Lives in a LabelRegistry slot, so a recycled record
  /// must be reset() before use — the srcs mask is re-assigned in place
  /// (equal size), keeping slot reuse allocation-free.
  struct Record {
    State state = kSearching;
    Label parent = 0;              // == label for roots
    std::uint32_t children_left = 0;
    Weight thr = kNoWeightLimit;   // MST elimination threshold
    bool has_candidate = false;
    Vertex cand_in = 0, cand_out = 0;  // candidate edge, in ∈ C
    Weight cand_w = 0;
    Label target = 0;              // label on the other side of the edge
    std::vector<std::uint64_t> srcs;  // k-bit mask of machines holding parts

    void reset(std::size_t mask_words) {
      state = kSearching;
      parent = 0;
      children_left = 0;
      thr = kNoWeightLimit;
      has_candidate = false;
      cand_in = cand_out = 0;
      cand_w = 0;
      target = 0;
      srcs.assign(mask_words, 0);
    }
  };

  // -- phase steps ---------------------------------------------------------
  void charge_phase_randomness();
  bool any_active_parts();
  std::uint32_t run_elimination_loop(std::uint32_t phase);
  void run_drr_step(std::uint32_t phase, std::uint32_t proxy_gen);
  std::uint32_t run_merge_loop(std::uint32_t phase, std::uint32_t last_gen);
  void run_component_count();

  // -- helpers -------------------------------------------------------------
  [[nodiscard]] ProxyMap elimination_proxies(std::uint32_t phase, std::uint32_t t) const;
  [[nodiscard]] ProxyMap merge_proxies(std::uint32_t phase, std::uint32_t rho) const;
  /// Bind (or rebind) the long-lived sketch builder to this iteration's
  /// shared seed; allocation-free after the first call.
  const GraphSketchBuilder& bind_builder(std::uint64_t sketch_seed);
  void send_handoffs(LabelRegistry<Record>& from, Outbox& out, const ProxyMap& to,
                     WordWriter& w);
  void apply_handoff(WordReader& reader, LabelRegistry<Record>& into);
  void relabel_part(MachineId machine, Label from, Label to);
  [[nodiscard]] std::uint64_t count_distinct_labels();  // instrumentation only

  // -- fault-plane state hooks (porting recipe rule 8b) --------------------
  // Serialize / rebuild machine m's complete cross-step state. Deliberately
  // excluded: finished_ (monotone one-way flags = replicated stable
  // storage) and all within-step scratch (sum_slots_, sketch_pool_,
  // writer_, *_scratch_ except the OR-reduce bits), which is re-cleared
  // before every use.
  void snapshot_machine(MachineId m, WordWriter& w);
  void restore_machine(MachineId m, WordReader& r);

  [[nodiscard]] std::size_t mask_words() const { return (cluster_->k() + 63) / 64; }
  static void mask_set(std::vector<std::uint64_t>& mask, MachineId m) {
    mask[m / 64] |= 1ULL << (m % 64);
  }
  static void mask_or(std::vector<std::uint64_t>& mask,
                      const std::vector<std::uint64_t>& other) {
    for (std::size_t i = 0; i < mask.size(); ++i) mask[i] |= other[i];
  }
  template <typename Fn>
  void mask_for_each(const std::vector<std::uint64_t>& mask, Fn fn) const {
    for (std::size_t w = 0; w < mask.size(); ++w) {
      std::uint64_t bits = mask[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<MachineId>(w * 64 + static_cast<std::size_t>(b)));
        bits &= bits - 1;
      }
    }
  }

  Cluster* cluster_;
  const DistributedGraph* dg_;
  BoruvkaConfig config_;
  BoruvkaMode mode_;
  SharedRandomness shared_;
  std::size_t n_;
  std::uint64_t label_bits_;  // wire bits of one label / vertex id
  Runtime runtime_;           // parallel superstep executor over cluster_

  // Home-machine state. All containers below are indexed by machine and
  // each superstep handler touches only its own slot — the property that
  // makes the per-machine handlers race-free without locks. Registries are
  // flat and capacity-retaining (see the registry contract above).
  std::vector<LabelRegistry<std::vector<Vertex>>> machine_parts_;
  // Labels to re-sketch next iteration; the payload is the current MST
  // elimination threshold (kNoWeightLimit in connectivity mode / on entry).
  std::vector<LabelRegistry<Weight>> resend_;
  std::vector<Label> labels_;    // labels_[v], authoritative at home(v)
  // finished_[label]: set (0 -> 1 only) concurrently by every part machine
  // receiving the finish directive; atomic because several machines may
  // hold parts of the same component. Read between supersteps.
  std::unique_ptr<std::atomic<std::uint8_t>[]> finished_;
  std::vector<std::uint64_t> sampler_retries_by_machine_;

  // Proxy-side records for the current proxy generation.
  std::vector<LabelRegistry<Record>> proxy_records_;
  // Per-superstep proxy accumulators: label -> pooled sketch index; lives
  // only within the proxy handler of one elimination iteration.
  std::vector<LabelRegistry<std::uint32_t>> sum_slots_;
  // Recycled L0Sampler storage: SS1 part sketches and proxy-side sums both
  // draw zeroed accumulators from here instead of constructing sketches.
  std::vector<SketchPool> sketch_pool_;
  // One builder for the whole run, rebound per iteration (power tables
  // recomputed in place); read-only inside handlers.
  std::optional<GraphSketchBuilder> builder_;

  // Per-machine scratch (machine-indexed like the state above, so handlers
  // stay race-free); cleared between uses with capacity retained, so the
  // steady state allocates nothing.
  std::vector<WordWriter> writer_;
  std::vector<std::vector<std::uint64_t>> mask_scratch_;   // child-src masks
  std::vector<std::vector<std::uint64_t>> power_scratch_;  // fingerprint powers
  std::vector<std::vector<Label>> label_scratch_;  // finished/merged/count lists
  std::vector<char> bit_scratch_;   // per-machine flags for the OR-reduces
  std::vector<char> seen_scratch_;  // per-vertex marks for label counting

  BoruvkaResult result_;
};

}  // namespace kmm
