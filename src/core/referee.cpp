#include "core/referee.hpp"

#include <limits>

#include "util/assert.hpp"
#include "util/codec.hpp"
#include "util/union_find.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagEdge = 1;
constexpr std::uint32_t kTagLabel = 2;
}  // namespace

RefereeResult referee_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                   bool broadcast_labels) {
  const StatsScope scope(cluster);
  const std::size_t n = dg.num_vertices();
  const MachineId k = cluster.k();
  const std::uint64_t label_bits = bits_for(std::max<std::uint64_t>(n, 2));

  // Every machine ships each hosted edge (counted once, from the lower
  // endpoint's home) to the referee, machine 0.
  for (MachineId i = 0; i < k; ++i) {
    for (const Vertex v : dg.vertices_of(i)) {
      for (const auto& he : dg.neighbors(v)) {
        if (v < he.to) {
          cluster.send(i, 0, kTagEdge, {v, he.to}, 2 * label_bits);
        }
      }
    }
  }
  cluster.superstep();

  UnionFind uf(n);
  for (const auto& msg : cluster.inbox(0)) {
    if (msg.tag == kTagEdge) {
      uf.unite(static_cast<Vertex>(msg.payload.at(0)),
               static_cast<Vertex>(msg.payload.at(1)));
    }
  }

  RefereeResult result;
  result.num_components = uf.component_count();
  result.labels.resize(n);
  std::vector<Vertex> smallest(n, std::numeric_limits<Vertex>::max());
  for (Vertex v = 0; v < n; ++v) {
    const Vertex root = uf.find(v);
    smallest[root] = std::min(smallest[root], v);
  }
  for (Vertex v = 0; v < n; ++v) result.labels[v] = smallest[uf.find(v)];

  if (broadcast_labels) {
    for (Vertex v = 0; v < n; ++v) {
      const MachineId home = dg.home(v);
      if (home != 0) cluster.send(0, home, kTagLabel, {v, result.labels[v]}, 2 * label_bits);
    }
    cluster.superstep();
  }
  result.stats = scope.snapshot();
  return result;
}

}  // namespace kmm
