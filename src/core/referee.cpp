#include "core/referee.hpp"

#include <limits>

#include "util/assert.hpp"
#include "util/codec.hpp"
#include "util/union_find.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagEdge = 1;
constexpr std::uint32_t kTagLabel = 2;
}  // namespace

RefereeResult referee_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                   const RefereeConfig& config) {
  const StatsScope scope(cluster);
  const std::size_t n = dg.num_vertices();
  const std::uint64_t label_bits = bits_for(std::max<std::uint64_t>(n, 2));
  Runtime rt(cluster,
             RuntimeConfig{config.threads, config.obs, nullptr, config.cancel, config.pool});

  // Every machine ships each hosted edge (counted once, from the lower
  // endpoint's home) to the referee, machine 0. Handlers only read the
  // immutable distributed graph, so the shipment parallelizes freely.
  rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    for (const Vertex v : dg.vertices_of(i)) {
      for (const auto& he : dg.neighbors(v)) {
        if (v < he.to) {
          out.send(0, kTagEdge, {v, he.to}, 2 * label_bits);
        }
      }
    }
  });

  // Referee-side solve: only machine 0 computes, so there is no
  // parallelism to harvest — run inline. Without the broadcast this
  // superstep sends nothing and is free.
  RefereeResult result;
  result.labels.resize(n);
  rt.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox& out) {
        if (i != 0) return;
        UnionFind uf(n);
        for (const auto& msg : inbox) {
          if (msg.tag == kTagEdge) {
            KMM_DCHECK(msg.payload_words() >= 2);
            uf.unite(static_cast<Vertex>(msg.payload()[0]),
                     static_cast<Vertex>(msg.payload()[1]));
          }
        }
        result.num_components = uf.component_count();
        std::vector<Vertex> smallest(n, std::numeric_limits<Vertex>::max());
        for (Vertex v = 0; v < n; ++v) {
          const Vertex root = uf.find(v);
          smallest[root] = std::min(smallest[root], v);
        }
        for (Vertex v = 0; v < n; ++v) result.labels[v] = smallest[uf.find(v)];
        if (config.broadcast_labels) {
          for (Vertex v = 0; v < n; ++v) {
            const MachineId home = dg.home(v);
            if (home != 0) out.send(home, kTagLabel, {v, result.labels[v]}, 2 * label_bits);
          }
        }
      },
      StepMode::kInline);

  result.stats = scope.snapshot();
  return result;
}

RefereeResult referee_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                   bool broadcast_labels) {
  RefereeConfig config;
  config.broadcast_labels = broadcast_labels;
  return referee_connectivity(cluster, dg, config);
}

}  // namespace kmm
