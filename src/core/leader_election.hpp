#pragma once
// Referee / leader election among the k machines (Section 2 warm-up; the
// paper cites Kutten et al. [24] for O(1)-round randomized election).
//
// Protocol: every machine draws a random ticket from its private tape and
// broadcasts it; the (ticket, machine-id) minimum wins. One superstep,
// k(k-1) messages of O(log n) bits, O(1) rounds — all machines agree on the
// winner deterministically given the seed. Both the broadcast and the
// per-machine minimum computation are Runtime superstep handlers, so the
// (tiny) local work parallelizes with config.threads > 1.

#include "core/common.hpp"
#include "obs/obs_sink.hpp"

namespace kmm {

struct LeaderElectionConfig {
  std::uint64_t seed = 1;  // seeds every machine's private ticket tape
  /// Worker threads for per-machine local computation (1 = sequential,
  /// 0 = hardware concurrency; clamped to k).
  unsigned threads = 1;
  /// Optional observability sinks (see src/obs/obs_sink.hpp); null records
  /// nothing and leaves the ledger untouched either way.
  const ObsSink* obs = nullptr;
  /// Optional cooperative cancellation point (src/serve/cancel.hpp),
  /// checked once per superstep; null never cancels.
  CancelPoint* cancel = nullptr;
  /// Optional shared worker pool (RuntimeConfig::pool); null = private pool.
  ThreadPool* pool = nullptr;
};

struct LeaderResult {
  MachineId leader = 0;
  RunStats stats;
};

[[nodiscard]] LeaderResult elect_leader(Cluster& cluster, const LeaderElectionConfig& config);

/// Back-compat shim: election with the default single-threaded runtime.
[[nodiscard]] LeaderResult elect_leader(Cluster& cluster, std::uint64_t seed);

}  // namespace kmm
