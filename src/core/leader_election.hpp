#pragma once
// Referee / leader election among the k machines (Section 2 warm-up; the
// paper cites Kutten et al. [24] for O(1)-round randomized election).
//
// Protocol: every machine draws a random ticket from its private tape and
// broadcasts it; the (ticket, machine-id) minimum wins. One superstep,
// k(k-1) messages of O(log n) bits, O(1) rounds — all machines agree on the
// winner deterministically given the seed.

#include "core/common.hpp"

namespace kmm {

struct LeaderResult {
  MachineId leader = 0;
  RunStats stats;
};

[[nodiscard]] LeaderResult elect_leader(Cluster& cluster, std::uint64_t seed);

}  // namespace kmm
