#pragma once
// Referee baseline (Section 2 warm-up): "the easiest way to solve any
// problem in our model" — ship the whole graph to one machine and solve
// locally. Needs Ω(m/k) rounds because the referee's k-1 incident links
// must carry all Θ(m log n) bits of the edge list.

#include <vector>

#include "core/common.hpp"

namespace kmm {

struct RefereeResult {
  std::vector<Label> labels;  // smallest vertex id per component
  std::uint64_t num_components = 0;
  RunStats stats;
};

/// Collect every edge at machine 0, solve connectivity locally, optionally
/// broadcast the labeling back to the home machines (the paper's referee
/// argument only counts the collection; broadcasting adds ~n/k more).
[[nodiscard]] RefereeResult referee_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                                 bool broadcast_labels = true);

}  // namespace kmm
