#pragma once
// Referee baseline (Section 2 warm-up): "the easiest way to solve any
// problem in our model" — ship the whole graph to one machine and solve
// locally. Needs Ω(m/k) rounds because the referee's k-1 incident links
// must carry all Θ(m log n) bits of the edge list.
//
// Execution: the edge shipment is one Runtime superstep (per-machine edge
// enumeration parallelizes with config.threads > 1); the referee's local
// solve + optional label broadcast is a machine-0-only StepMode::kInline
// step. The ledger is bit-identical for every thread count.

#include <vector>

#include "core/common.hpp"
#include "obs/obs_sink.hpp"

namespace kmm {

struct RefereeConfig {
  /// Ship the labeling back to the home machines (the paper's referee
  /// argument only counts the collection; broadcasting adds ~n/k more).
  bool broadcast_labels = true;
  /// Worker threads for per-machine local computation (1 = sequential,
  /// 0 = hardware concurrency; clamped to k).
  unsigned threads = 1;
  /// Optional observability sinks (see src/obs/obs_sink.hpp); null records
  /// nothing and leaves the ledger untouched either way.
  const ObsSink* obs = nullptr;
  /// Optional cooperative cancellation point (src/serve/cancel.hpp),
  /// checked once per superstep; null never cancels.
  CancelPoint* cancel = nullptr;
  /// Optional shared worker pool (RuntimeConfig::pool); null = private pool.
  ThreadPool* pool = nullptr;
};

struct RefereeResult {
  std::vector<Label> labels;  // smallest vertex id per component
  std::uint64_t num_components = 0;
  RunStats stats;
};

/// Collect every edge at machine 0, solve connectivity locally, optionally
/// broadcast the labeling back to the home machines.
[[nodiscard]] RefereeResult referee_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                                 const RefereeConfig& config = {});

/// Back-compat shim for callers that only toggle the broadcast.
[[nodiscard]] RefereeResult referee_connectivity(Cluster& cluster, const DistributedGraph& dg,
                                                 bool broadcast_labels);

}  // namespace kmm
