#include "core/common.hpp"

#include "util/assert.hpp"

namespace kmm {

bool or_reduce_broadcast(Cluster& cluster, const std::vector<char>& machine_bit,
                         std::uint32_t tag) {
  const MachineId k = cluster.k();
  KMM_CHECK(machine_bit.size() == k);
  for (MachineId i = 0; i < k; ++i) {
    if (machine_bit[i]) cluster.send(i, 0, tag, {}, 1);
  }
  cluster.superstep();
  const bool any = !cluster.inbox(0).empty() || machine_bit[0];
  for (MachineId i = 1; i < k; ++i) {
    cluster.send(0, i, tag, {any ? 1ULL : 0ULL}, 1);
  }
  cluster.superstep();
  return any;
}

std::uint64_t sum_reduce_broadcast(Cluster& cluster,
                                   const std::vector<std::uint64_t>& machine_value,
                                   std::uint32_t tag) {
  const MachineId k = cluster.k();
  KMM_CHECK(machine_value.size() == k);
  for (MachineId i = 1; i < k; ++i) {
    cluster.send(i, 0, tag, {machine_value[i]}, 64);
  }
  cluster.superstep();
  std::uint64_t total = machine_value[0];
  for (const auto& msg : cluster.inbox(0)) {
    if (msg.tag == tag) total += msg.payload.at(0);
  }
  for (MachineId i = 1; i < k; ++i) {
    cluster.send(0, i, tag, {total}, 64);
  }
  cluster.superstep();
  return total;
}

}  // namespace kmm
