#include "core/common.hpp"

#include "util/assert.hpp"

namespace kmm {

// Both reducers are one-word control-plane exchanges: the handler work is a
// few comparisons, far below the pool's barrier cost, so they always run
// StepMode::kInline. The message sequence (including machine 0's free
// self-report in the OR) is exactly the classic sequential loop's, so the
// ledger is unchanged by the port.

bool or_reduce_broadcast(Runtime& rt, const std::vector<char>& machine_bit,
                         std::uint32_t tag) {
  const MachineId k = rt.k();
  KMM_CHECK(machine_bit.size() == k);
  rt.step(
      [&](MachineId i, std::span<const Message>, Outbox& out) {
        if (machine_bit[i]) out.send(0, tag, {}, 1);
      },
      StepMode::kInline);
  bool any = false;
  rt.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox& out) {
        if (i != 0) return;
        any = !inbox.empty() || machine_bit[0];
        for (MachineId j = 1; j < k; ++j) {
          out.send(j, tag, {any ? 1ULL : 0ULL}, 1);
        }
      },
      StepMode::kInline);
  return any;
}

std::uint64_t sum_reduce_broadcast(Runtime& rt,
                                   const std::vector<std::uint64_t>& machine_value,
                                   std::uint32_t tag) {
  const MachineId k = rt.k();
  KMM_CHECK(machine_value.size() == k);
  rt.step(
      [&](MachineId i, std::span<const Message>, Outbox& out) {
        if (i != 0) out.send(0, tag, {machine_value[i]}, 64);
      },
      StepMode::kInline);
  std::uint64_t total = 0;
  rt.step(
      [&](MachineId i, std::span<const Message> inbox, Outbox& out) {
        if (i != 0) return;
        total = machine_value[0];
        for (const auto& msg : inbox) {
          if (msg.tag == tag) total += msg.payload()[0];
        }
        for (MachineId j = 1; j < k; ++j) {
          out.send(j, tag, {total}, 64);
        }
      },
      StepMode::kInline);
  return total;
}

}  // namespace kmm
