#pragma once
// Public entry point for the paper's main result (Theorem 1): connected
// components in O~(n/k^2) rounds in the k-machine model.
//
// Returns per-vertex component labels, the number of components (computed
// by the distributed counting protocol at the end of Section 2), and a
// spanning forest under the relaxed output criterion — every forest edge is
// known to at least one machine, namely the proxy that performed the merge.

#include "core/boruvka.hpp"

namespace kmm {

/// Runs the Section 2 algorithm. Handles the trivial n <= 1 cases without
/// engaging the engine.
[[nodiscard]] BoruvkaResult connected_components(Cluster& cluster, const DistributedGraph& dg,
                                                 const BoruvkaConfig& config = {});

/// Convenience: canonicalize labels so each component is labeled by its
/// smallest member vertex (comparable to ref::component_labels).
[[nodiscard]] std::vector<Vertex> canonical_labels(const std::vector<Label>& labels);

}  // namespace kmm
