#include "core/mst.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

namespace {
constexpr std::uint32_t kTagAnnounce = 61;
}

BoruvkaResult minimum_spanning_forest(Cluster& cluster, const DistributedGraph& dg,
                                      const BoruvkaConfig& config,
                                      bool require_unique_weights) {
  if (dg.num_vertices() < 2) {
    BoruvkaResult trivial;
    trivial.labels.assign(dg.num_vertices(), 0);
    trivial.num_components = dg.num_vertices();
    trivial.converged = true;
    trivial.forest_by_machine.resize(cluster.k());
    trivial.mst_by_machine.resize(cluster.k());
    return trivial;
  }
  // The global uniqueness scan needs the whole graph; shard-direct builds
  // never have one, so there the caller vouches for distinct weights (the
  // streaming generators draw them from a per-edge-index PRF).
  if (require_unique_weights && dg.materialized()) {
    KMM_CHECK_MSG(dg.graph().has_unique_weights(),
                  "MST exactness requires distinct edge weights "
                  "(see with_unique_weights)");
  }
  BoruvkaEngine engine(cluster, dg, config, BoruvkaMode::kMst);
  return engine.run();
}

StrictMstOutput announce_mst_to_home_machines(Cluster& cluster, const DistributedGraph& dg,
                                              const BoruvkaResult& mst, unsigned threads,
                                              const ObsSink* obs, CancelPoint* cancel,
                                              ThreadPool* pool) {
  const StatsScope scope(cluster);
  const MachineId k = cluster.k();
  KMM_CHECK(mst.mst_by_machine.size() == k);
  const std::uint64_t label_bits =
      bits_for(std::max<std::uint64_t>(dg.num_vertices(), 2));
  Runtime rt(cluster, RuntimeConfig{threads, obs, nullptr, cancel, pool});

  rt.step([&](MachineId i, std::span<const Message>, Outbox& out) {
    for (const auto& e : mst.mst_by_machine[i]) {
      for (const MachineId home : {dg.home(e.u), dg.home(e.v)}) {
        out.send(home, kTagAnnounce, {e.u, e.v, e.w}, 2 * label_bits + 64);
      }
    }
  });

  // Collect + sort per home machine; each handler touches only its own
  // edges_by_home slot, and nothing is sent, so this superstep is free.
  StrictMstOutput out;
  out.edges_by_home.resize(k);
  rt.step([&](MachineId i, std::span<const Message> inbox, Outbox&) {
    for (const auto& msg : inbox) {
      if (msg.tag != kTagAnnounce) continue;
      KMM_DCHECK(msg.payload_words() >= 3);
      out.edges_by_home[i].push_back(WeightedEdge{static_cast<Vertex>(msg.payload()[0]),
                                                  static_cast<Vertex>(msg.payload()[1]),
                                                  msg.payload()[2]});
    }
    auto& edges = out.edges_by_home[i];
    std::sort(edges.begin(), edges.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
      return std::tuple{a.u, a.v, a.w} < std::tuple{b.u, b.v, b.w};
    });
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  });
  out.stats = scope.snapshot();
  return out;
}

}  // namespace kmm
