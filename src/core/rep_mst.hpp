#pragma once
// MST under the random edge partition (REP) model — Section 1.3, footnote 5.
//
// Θ~(n/k) is *tight* in the REP model, versus Θ~(n/k^2) under RVP. The
// upper bound pipeline implemented here:
//   (1) filter: each machine keeps only a minimum spanning forest of its
//       own edge set (cycle property; ≤ n-1 edges survive per machine) —
//       free local computation;
//   (2) reroute: ship surviving edges to the home machines of a fresh
//       random vertex partition — the Θ~(n/k) bottleneck, since a machine
//       pushes up to ~n log n bits over its k-1 links;
//   (3) solve: run the RVP MST algorithm on the filtered union graph.

#include "core/boruvka.hpp"
#include "graph/partition.hpp"

namespace kmm {

struct RepMstResult {
  std::vector<WeightedEdge> mst_edges;
  std::uint64_t filtered_edges = 0;  // edges surviving the local filter
  RunStats reroute_stats;            // cost of stage (2) alone
  RunStats stats;                    // total
  BoruvkaResult rvp_result;          // stage (3) details
};

[[nodiscard]] RepMstResult rep_model_mst(Cluster& cluster, const Graph& graph,
                                         const EdgePartition& edges, std::uint64_t seed,
                                         const BoruvkaConfig& config = {});

/// Connectivity under the REP model (Section 1.3: Θ~(n/k) is tight there).
/// Same pipeline with a connectivity filter: each machine keeps only a
/// spanning forest of its own edges (any discarded edge closes a local
/// cycle, so component structure is preserved).
struct RepConnectivityResult {
  std::vector<Label> labels;
  std::uint64_t num_components = 0;
  std::uint64_t filtered_edges = 0;
  RunStats reroute_stats;
  RunStats stats;
};

[[nodiscard]] RepConnectivityResult rep_model_connectivity(Cluster& cluster,
                                                           const Graph& graph,
                                                           const EdgePartition& edges,
                                                           std::uint64_t seed,
                                                           const BoruvkaConfig& config = {});

}  // namespace kmm
