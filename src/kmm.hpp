#pragma once
// Umbrella header for the kmm library: distributed graph algorithms in the
// k-machine model, reproducing Pandurangan–Robinson–Scquizzato (SPAA 2016).
//
// Layers (each usable on its own):
//   util       — RNG, F_{2^61-1}, hashing, stats, codec
//   graph      — CSR graphs, generators (materialized and chunked-streaming
//                flavors), sequential reference algorithms
//   cluster    — the k-machine synchronous-round simulator, partitions, and
//                the shard-direct streaming ingest plane (budget-capped
//                per-machine shards built without a global graph)
//   runtime    — thread-parallel superstep execution: per-machine
//                MachineProgram handlers run on a worker pool with
//                per-source destination-bucketed outbox shards, a barrier,
//                and the cluster's direct per-destination delivery plane
//                (k concurrent shard→inbox tasks + a deterministic ledger
//                reduction). Invariant: the ClusterStats ledger is
//                independent of the thread count.
//   sketch     — linear l0-sampling graph sketches
//   core       — connectivity / MST / min-cut / verification + baselines
//                (the Borůvka engine executes on the runtime; set
//                BoruvkaConfig::threads to parallelize machine-local work)
//   obs        — opt-in observability: per-superstep MetricsTimeline rows
//                and Chrome-trace spans, attached through an ObsSink on any
//                core config (off by default; never perturbs the ledger)
//   fault      — opt-in fault injection & recovery: a seeded, bit-
//                reproducible FaultSchedule (machine crashes, lossy links,
//                payload corruption) plus the FaultPlane recovery machinery
//                (superstep checkpoint/replay, retransmit-from-outbox,
//                restart fallback), attached through RuntimeConfig::fault /
//                the core configs' fault field (off by default; detached is
//                bit-identical)
//   durable    — the durable checkpoint & restart plane: checksummed
//                on-disk frames (per-machine state + superstep ordinal +
//                the full ClusterStats ledger + the inbox replay window,
//                CRC-64 per frame, written via fsync + atomic rename), a
//                DurableStore the FaultPlane tees checkpoints into, and a
//                RecoveryManager that scans generations, rejects corrupt /
//                torn / stale frames with structured errors, and resumes a
//                checkpointable program mid-computation — answers AND
//                ledgers bit-identical to an uninterrupted run
//   serve      — the resilient query-serving layer: one long-lived
//                DistributedGraph serving concurrent queries with per-query
//                budgets (wall deadline, superstep cap, ledger-bit cap),
//                cooperative cancellation at superstep boundaries, seeded
//                retry/backoff over injected crashes, and an admission
//                controller that sheds load (kOverloaded) instead of
//                thrashing — every outcome structured, never an abort
//   lowerbound — Section 4 two-party simulation artifacts

#include "cluster/cluster.hpp"
#include "cluster/conversion.hpp"
#include "cluster/distributed_graph.hpp"
#include "cluster/proxy.hpp"
#include "cluster/shared_randomness.hpp"
#include "cluster/stream_ingest.hpp"
#include "core/boruvka.hpp"
#include "core/connectivity.hpp"
#include "core/drr.hpp"
#include "core/flood_program.hpp"
#include "core/flooding.hpp"
#include "core/label_registry.hpp"
#include "core/leader_election.hpp"
#include "core/mincut.hpp"
#include "core/mst.hpp"
#include "core/referee.hpp"
#include "core/rep_mst.hpp"
#include "core/two_edge.hpp"
#include "core/verification.hpp"
#include "durable/durable_format.hpp"
#include "durable/durable_store.hpp"
#include "durable/recovery_manager.hpp"
#include "fault/checkpoint_store.hpp"
#include "fault/fault_plane.hpp"
#include "fault/fault_schedule.hpp"
#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "lowerbound/disjointness.hpp"
#include "lowerbound/scs_instance.hpp"
#include "lowerbound/two_party_sim.hpp"
#include "obs/metrics_timeline.hpp"
#include "obs/obs_sink.hpp"
#include "obs/trace_recorder.hpp"
#include "runtime/machine_program.hpp"
#include "runtime/outbox.hpp"
#include "runtime/phase_timers.hpp"
#include "runtime/runtime.hpp"
#include "serve/cancel.hpp"
#include "serve/query_journal.hpp"
#include "serve/retry.hpp"
#include "serve/service.hpp"
#include "sketch/graph_sketch.hpp"
#include "sketch/l0_sampler.hpp"
#include "sketch/one_sparse.hpp"
#include "sketch/sketch_pool.hpp"
#include "util/atomic_file.hpp"
#include "util/crc64.hpp"
#include "util/expected.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
