#pragma once
// Per-machine send port handed to superstep handlers.
//
// A handler running as machine i may only emit messages with src == i; the
// Outbox enforces that and hides where the messages physically go:
//
//  * direct mode    — writes straight into the Cluster's pending outbox
//                     (the sequential path; handlers run one machine at a
//                     time in machine order, so the global send order is the
//                     classic "for each machine, send" order);
//  * sharded mode   — writes into a private per-source OutboxShard owned by
//                     the Runtime (message buffer + payload arena, both
//                     capacity-retaining); after the superstep barrier the
//                     Runtime merges shards in ascending machine order,
//                     reproducing exactly the direct-mode global order
//                     regardless of how handler execution interleaved
//                     across threads.
//
// Either way every message reaches Cluster::superstep(), the single
// delivery/accounting path, so the round/bit ledger cannot diverge between
// the two execution modes. Payloads are passed as spans and copied at send
// time (inline in the Message when <= kInlinePayloadWords, else into the
// owning arena), so callers may reuse their scratch buffers immediately.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/message.hpp"
#include "cluster/payload_arena.hpp"
#include "util/assert.hpp"

namespace kmm {

/// One machine's private send buffer in sharded mode: the messages plus the
/// arena backing their spilled payloads. clear() retains the capacity of
/// both, so a warm shard absorbs a whole superstep without allocating.
struct OutboxShard {
  std::vector<Message> messages;
  PayloadArena arena;

  void clear() noexcept {
    messages.clear();
    arena.reset();
  }
};

class Outbox {
 public:
  /// Direct mode: messages go straight to `cluster`.
  Outbox(Cluster& cluster, MachineId self) noexcept
      : cluster_(&cluster), shard_(nullptr), self_(self), k_(cluster.k()) {}

  /// Sharded mode: messages buffer in `shard` until the Runtime merges it.
  Outbox(OutboxShard& shard, MachineId self, MachineId k) noexcept
      : cluster_(nullptr), shard_(&shard), self_(self), k_(k) {}

  [[nodiscard]] MachineId self() const noexcept { return self_; }
  [[nodiscard]] MachineId machines() const noexcept { return k_; }

  /// Enqueue a message from this machine for the next delivery. Same
  /// semantics as Cluster::send with src pinned to self(); the payload is
  /// copied, so the caller's buffer may be reused right away.
  void send(MachineId dst, std::uint32_t tag, std::span<const std::uint64_t> payload,
            std::uint64_t bits = 0) {
    KMM_CHECK(dst < k_);
    if (cluster_ != nullptr) {
      cluster_->send(self_, dst, tag, payload, bits);
    } else {
      shard_->messages.push_back(Message::make(self_, dst, tag, payload, bits, shard_->arena));
    }
  }

  void send(MachineId dst, std::uint32_t tag, std::initializer_list<std::uint64_t> payload,
            std::uint64_t bits = 0) {
    send(dst, tag, std::span<const std::uint64_t>(payload.begin(), payload.size()), bits);
  }

 private:
  Cluster* cluster_;
  OutboxShard* shard_;
  MachineId self_;
  MachineId k_;
};

}  // namespace kmm
