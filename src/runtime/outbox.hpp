#pragma once
// Per-machine send port handed to superstep handlers.
//
// A handler running as machine i may only emit messages with src == i; the
// Outbox enforces that and hides where the messages physically go:
//
//  * direct mode    — writes straight into the Cluster's pending outbox
//                     (the sequential path; handlers run one machine at a
//                     time in machine order, so the global send order is the
//                     classic "for each machine, send" order);
//  * sharded mode   — writes into a private per-source buffer owned by the
//                     Runtime; after the superstep barrier the Runtime
//                     merges shards in ascending machine order, reproducing
//                     exactly the direct-mode global order regardless of how
//                     handler execution interleaved across threads.
//
// Either way every message reaches Cluster::superstep(), the single
// delivery/accounting path, so the round/bit ledger cannot diverge between
// the two execution modes.

#include <cstdint>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/message.hpp"
#include "util/assert.hpp"

namespace kmm {

class Outbox {
 public:
  /// Direct mode: messages go straight to `cluster`.
  Outbox(Cluster& cluster, MachineId self) noexcept
      : cluster_(&cluster), shard_(nullptr), self_(self), k_(cluster.k()) {}

  /// Sharded mode: messages buffer in `shard` until the Runtime merges it.
  Outbox(std::vector<Message>& shard, MachineId self, MachineId k) noexcept
      : cluster_(nullptr), shard_(&shard), self_(self), k_(k) {}

  [[nodiscard]] MachineId self() const noexcept { return self_; }
  [[nodiscard]] MachineId machines() const noexcept { return k_; }

  /// Enqueue a message from this machine for the next delivery. Same
  /// semantics as Cluster::send with src pinned to self().
  void send(MachineId dst, std::uint32_t tag, std::vector<std::uint64_t> payload,
            std::uint64_t bits = 0) {
    KMM_CHECK(dst < k_);
    if (cluster_ != nullptr) {
      cluster_->send(self_, dst, tag, std::move(payload), bits);
    } else {
      shard_->push_back(Message{self_, dst, tag, std::move(payload), bits});
    }
  }

  void send(Message msg) {
    KMM_CHECK_MSG(msg.src == self_, "a handler may only send as its own machine");
    send(msg.dst, msg.tag, std::move(msg.payload), msg.bits);
  }

 private:
  Cluster* cluster_;
  std::vector<Message>* shard_;
  MachineId self_;
  MachineId k_;
};

}  // namespace kmm
