#pragma once
// Per-machine send port handed to superstep handlers.
//
// A handler running as machine i may only emit messages with src == i; the
// Outbox enforces that and hides where the messages physically go:
//
//  * direct mode    — writes straight into the Cluster's pending outbox
//                     (the sequential path; handlers run one machine at a
//                     time in machine order, so the global send order is the
//                     classic "for each machine, send" order);
//  * sharded mode   — writes into a private per-source OutboxShard owned by
//                     the Runtime (per-destination message buckets + payload
//                     arena, all capacity-retaining; the type lives in
//                     cluster/cluster.hpp because the delivery plane
//                     consumes it directly); after the superstep barrier the
//                     Runtime delivers the shards through the Cluster's
//                     direct per-destination delivery plane, which
//                     reproduces exactly the direct-mode per-inbox order
//                     regardless of how handler execution interleaved
//                     across threads.
//
// Either way every message reaches the Cluster's delivery/accounting
// plane (superstep() or deliver_shards_*, which share the ledger rules by
// construction), so the round/bit ledger cannot diverge between the two
// execution modes. Payloads are passed as spans and copied at send time
// (inline in the Message when <= kInlinePayloadWords, else into the owning
// arena), so callers may reuse their scratch buffers immediately.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/message.hpp"
#include "cluster/payload_arena.hpp"
#include "util/assert.hpp"

namespace kmm {

class Outbox {
 public:
  /// Direct mode: messages go straight to `cluster`.
  Outbox(Cluster& cluster, MachineId self) noexcept
      : cluster_(&cluster), shard_(nullptr), self_(self), k_(cluster.k()) {}

  /// Sharded mode: messages buffer in `shard` until the Runtime merges it.
  Outbox(OutboxShard& shard, MachineId self, MachineId k) noexcept
      : cluster_(nullptr), shard_(&shard), self_(self), k_(k) {}

  [[nodiscard]] MachineId self() const noexcept { return self_; }
  [[nodiscard]] MachineId machines() const noexcept { return k_; }

  /// Enqueue a message from this machine for the next delivery. Same
  /// semantics as Cluster::send with src pinned to self(); the payload is
  /// copied, so the caller's buffer may be reused right away.
  void send(MachineId dst, std::uint32_t tag, std::span<const std::uint64_t> payload,
            std::uint64_t bits = 0) {
    KMM_CHECK(dst < k_);
    if (cluster_ != nullptr) {
      cluster_->send(self_, dst, tag, payload, bits);
    } else {
      shard_->buckets[dst].push_back(
          Message::make(self_, dst, tag, payload, bits, shard_->arena));
    }
  }

  void send(MachineId dst, std::uint32_t tag, std::initializer_list<std::uint64_t> payload,
            std::uint64_t bits = 0) {
    send(dst, tag, std::span<const std::uint64_t>(payload.begin(), payload.size()), bits);
  }

 private:
  Cluster* cluster_;
  OutboxShard* shard_;
  MachineId self_;
  MachineId k_;
};

}  // namespace kmm
