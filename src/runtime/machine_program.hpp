#pragma once
// The per-machine program interface of the parallel superstep runtime.
//
// A MachineProgram is the code one simulated machine runs: each superstep
// the runtime calls on_superstep(i, inbox, out) for every machine i with the
// messages delivered to i by the previous superstep. Handlers for different
// machines may run concurrently, so on_superstep must only touch state owned
// by machine `self` (plus read-only shared state) and must emit messages
// exclusively through `out`. Determinism contract: a handler's behavior may
// depend only on (self, inbox contents, program state) — never on thread
// identity, timing, or global mutable state — so that results and the
// cluster ledger are independent of the runtime's thread count.

#include <span>

#include "cluster/message.hpp"
#include "runtime/outbox.hpp"
#include "util/codec.hpp"

namespace kmm {

class MachineProgram {
 public:
  virtual ~MachineProgram() = default;

  /// One superstep of machine `self`: read the inbox, update machine-local
  /// state, enqueue next-superstep messages on `out`.
  virtual void on_superstep(MachineId self, std::span<const Message> inbox,
                            Outbox& out) = 0;

  /// Global termination predicate, evaluated between supersteps on the
  /// driving thread (never concurrently with handlers). Programs driven
  /// manually by an external loop can leave the default.
  [[nodiscard]] virtual bool done() const { return false; }

  // ----------------------------------------------------------------------
  // Fault-plane hooks (porting recipe rule 8 in runtime.hpp). A program
  // that overrides checkpointable() to true must implement snapshot() and
  // restore() such that restore(m, words written by snapshot(m)) rebuilds
  // machine m's state exactly — the fault plane checkpoints every C
  // supersteps and, on an injected crash, restores the victim and replays
  // its logged inboxes. Programs without snapshots may instead support
  // reset() (restart-from-phase-start fallback, Runtime::run only).

  /// True when snapshot()/restore() fully capture per-machine state.
  [[nodiscard]] virtual bool checkpointable() const { return false; }
  /// Serialize machine m's state; paired with restore(). Only called when
  /// checkpointable() is true.
  virtual void snapshot(MachineId /*m*/, WordWriter& /*out*/) {}
  /// Rebuild machine m's state from a snapshot; must consume every word.
  virtual void restore(MachineId /*m*/, WordReader& /*in*/) {}
  /// Restart fallback: return true after resetting the whole program to
  /// its phase start (all machines). Default: restart unsupported.
  [[nodiscard]] virtual bool reset() { return false; }

  /// Serialized-state version (porting recipe rule 10 in runtime.hpp): a
  /// resumable program bumps this whenever the word layout snapshot()
  /// writes changes meaning. The durable plane stamps it into every
  /// on-disk frame, and RecoveryManager refuses to restore a frame whose
  /// version differs from the resuming program's — a stale generation is
  /// a structured error, never a misdecoded resume.
  [[nodiscard]] virtual std::uint64_t state_version() const { return 1; }
};

}  // namespace kmm
