#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runtime/phase_timers.hpp"
#include "util/assert.hpp"

namespace kmm {

namespace {
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

unsigned resolve_threads(unsigned requested, MachineId k) {
  unsigned t = requested;
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  return std::min<unsigned>(t, k);
}

Runtime::Runtime(Cluster& cluster, RuntimeConfig config)
    : cluster_(&cluster), threads_(resolve_threads(config.threads, cluster.k())) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);
    shards_.resize(cluster_->k());
    for (auto& shard : shards_) shard.resize(cluster_->k());
  }
}

Runtime::~Runtime() = default;

std::uint64_t Runtime::step(MachineProgram& program, StepMode mode) {
  const MachineId k = cluster_->k();
  if (pool_ == nullptr || mode == StepMode::kInline) {
    // Sequential path: handlers write directly into the cluster outbox in
    // machine order — the legacy "for each machine, compute and send" loop.
    const std::uint64_t t0 = now_ns();
    for (MachineId i = 0; i < k; ++i) {
      Outbox out(*cluster_, i);
      program.on_superstep(i, cluster_->inbox(i), out);
    }
    const std::uint64_t t1 = now_ns();
    const std::uint64_t rounds = cluster_->superstep();
    add_phase_times(t1 - t0, now_ns() - t1, 0);
    return rounds;
  }
  // Parallel path: every handler owns shard i; inboxes are read-only until
  // the barrier, after which the k per-destination delivery tasks move the
  // buckets straight into their inboxes — one move per message, no staging
  // outbox — and the finish call reduces the ledger partials.
  const std::uint64_t t0 = now_ns();
  pool_->parallel_for(k, [&](std::size_t i) {
    const auto self = static_cast<MachineId>(i);
    shards_[i].clear();  // buckets and arena capacity retained from last step
    Outbox out(shards_[i], self, k);
    program.on_superstep(self, cluster_->inbox(self), out);
  });
  const std::uint64_t t1 = now_ns();
  if (cluster_->has_staged()) {
    // Rare fallback: direct Cluster::send() calls were staged between
    // steps. Merge the shards behind them in (source, destination) order —
    // per-inbox order equals the sequential path's — and deliver through
    // the legacy single-pass accounting.
    for (MachineId src = 0; src < k; ++src) {
      for (MachineId dst = 0; dst < k; ++dst) {
        cluster_->enqueue_batch(std::move(shards_[src].buckets[dst]));
      }
    }
    const std::uint64_t rounds = cluster_->superstep();
    add_phase_times(t1 - t0, now_ns() - t1, 0);
    return rounds;
  }
  cluster_->deliver_shards_begin(shards_);
  pool_->parallel_for(k, [&](std::size_t i) {
    cluster_->deliver_shard_to(static_cast<MachineId>(i));
  });
  const std::uint64_t t2 = now_ns();
  const std::uint64_t rounds = cluster_->deliver_shards_finish();
  add_phase_times(t1 - t0, t2 - t1, now_ns() - t2);
  return rounds;
}

std::uint64_t Runtime::run(MachineProgram& program, std::uint64_t max_supersteps) {
  std::uint64_t rounds = 0;
  for (std::uint64_t s = 0; s < max_supersteps; ++s) {
    if (program.done()) return rounds;
    rounds += step(program);
  }
  KMM_CHECK_MSG(program.done(), "program exhausted its superstep budget");
  return rounds;
}

}  // namespace kmm
