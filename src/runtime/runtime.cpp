#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "fault/fault_plane.hpp"
#include "obs/metrics_timeline.hpp"
#include "serve/cancel.hpp"
#include "obs/trace_recorder.hpp"
#include "runtime/phase_timers.hpp"
#include "util/assert.hpp"

namespace kmm {

namespace {
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

unsigned resolve_threads(unsigned requested, MachineId k) {
  unsigned t = requested;
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  return std::min<unsigned>(t, k);
}

Runtime::Runtime(Cluster& cluster, RuntimeConfig config)
    : cluster_(&cluster),
      threads_(resolve_threads(config.threads, cluster.k())),
      sink_(config.obs != nullptr ? *config.obs : ObsSink{}),
      fault_(config.fault),
      cancel_(config.cancel) {
  // Baseline the timeline before the first step so row 0's delta starts at
  // this Runtime's construction (idempotent across sequential Runtimes
  // reusing one sink on one cluster).
  if (sink_.timeline != nullptr) sink_.timeline->attach(*cluster_);
  if (threads_ > 1) {
    if (config.pool != nullptr) {
      // Borrowed shared pool (the serving layer's multiplexing seam): clamp
      // the reported concurrency to what the pool can actually provide.
      pool_ = config.pool;
      threads_ = std::min(threads_, pool_->size());
      if (threads_ <= 1) pool_ = nullptr;
    } else {
      owned_pool_ = std::make_unique<ThreadPool>(threads_);
      pool_ = owned_pool_.get();
    }
  }
  // Shards exist whenever any step can run sharded: multi-threaded steps,
  // or any step under an attached fault plane (transit emulation intercepts
  // the shard buckets between the handler barrier and delivery).
  if (threads_ > 1 || fault_ != nullptr) {
    shards_.resize(cluster_->k());
    for (auto& shard : shards_) shard.resize(cluster_->k());
  }
}

Runtime::~Runtime() = default;

std::uint64_t Runtime::finish_step(StepMode mode, std::uint64_t handler_ns,
                                   std::uint64_t deliver_ns, std::uint64_t reduce_ns,
                                   std::uint64_t span_begin_ns, std::uint64_t rounds) {
  add_phase_times(handler_ns, deliver_ns, reduce_ns);
  if (fault_ != nullptr && sink_.timeline != nullptr) {
    // Bank this step's injected-fault count before the row is cut so a
    // charged step's row carries its own fault events.
    sink_.timeline->note_fault_events(fault_->take_step_events());
  }
  if (sink_.timeline != nullptr) {
    sink_.timeline->on_superstep(*cluster_, handler_ns, deliver_ns, reduce_ns);
  }
  if (sink_.trace != nullptr) {
    // The step's top-level span, on the driving thread's lane.
    sink_.trace->record(0,
                        mode == StepMode::kInline ? SpanKind::kInline : SpanKind::kSuperstep,
                        step_ordinal_, 0, span_begin_ns, sink_.trace->now_ns());
  }
  if (fault_ != nullptr) fault_->end_step();
  ++step_ordinal_;
  return rounds;
}

std::uint64_t Runtime::step(MachineProgram& program, StepMode mode) {
  if (cancel_ != nullptr) {
    // The query's only cancellation point (porting recipe rule 9): on the
    // driver thread, before fault processing and before any handler runs.
    // check() throws QueryCancelled when a budget tripped or the client
    // cancelled; unwinding releases the engine's pooled state via RAII and
    // leaves no half-delivered superstep behind.
    cancel_->check(*cluster_);
  }
  const MachineId k = cluster_->k();
  TraceRecorder* const tr = sink_.trace;
  // Span timestamps must sit on the recorder's rebased clock; phase
  // durations are differences, so either clock serves them.
  const auto tick = [tr]() noexcept { return tr != nullptr ? tr->now_ns() : now_ns(); };
  if (fault_ != nullptr) {
    // Crash injection + rollback/replay happens before any handler runs, so
    // the step below executes against fully recovered machine state.
    const std::uint64_t rb = tick();
    const std::size_t victims = fault_->begin_step(*cluster_, program);
    if (victims > 0 && tr != nullptr) {
      tr->record(0, SpanKind::kRecovery, step_ordinal_,
                 static_cast<std::uint32_t>(victims), rb, tr->now_ns());
    }
  }
  const std::uint64_t t0 = tick();
  const bool parallel = pool_ != nullptr && mode != StepMode::kInline;
  if (fault_ == nullptr && !parallel) {
    // Sequential path: handlers write directly into the cluster outbox in
    // machine order — the legacy "for each machine, compute and send" loop.
    for (MachineId i = 0; i < k; ++i) {
      const std::uint64_t hb = tr != nullptr ? tr->now_ns() : 0;
      Outbox out(*cluster_, i);
      program.on_superstep(i, cluster_->inbox(i), out);
      if (tr != nullptr) {
        tr->record(ThreadPool::current_lane(), SpanKind::kHandler, step_ordinal_, i, hb,
                   tr->now_ns());
      }
    }
    const std::uint64_t t1 = tick();
    const std::uint64_t rounds = cluster_->superstep();
    const std::uint64_t t2 = tick();
    if (tr != nullptr) tr->record(0, SpanKind::kDeliver, step_ordinal_, 0, t1, t2);
    return finish_step(mode, elapsed_ns(t0, t1), elapsed_ns(t1, t2), 0, t0, rounds);
  }
  // Sharded path: every handler owns shard i; inboxes are read-only until
  // the barrier, after which the k per-destination delivery tasks move the
  // buckets straight into their inboxes — one move per message, no staging
  // outbox — and the finish call reduces the ledger partials. An attached
  // fault plane forces this path even for sequential/kInline steps (the
  // modes are observationally identical) so link-fault emulation can
  // intercept the buckets between the handler barrier and delivery.
  const std::uint64_t deadline_ns =
      fault_ != nullptr ? fault_->handler_deadline_ns() : 0;
  const auto run_handler = [&](std::size_t i) {
    const auto self = static_cast<MachineId>(i);
    const std::uint64_t hb = tr != nullptr ? tr->now_ns() : 0;
    shards_[i].clear();  // buckets and arena capacity retained from last step
    Outbox out(shards_[i], self, k);
    const std::uint64_t wb = deadline_ns != 0 ? now_ns() : 0;
    program.on_superstep(self, cluster_->inbox(self), out);
    if (deadline_ns != 0 && now_ns() - wb > deadline_ns) {
      // Wall-clock watchdog: diagnostic only — never touches the ledger
      // (simulated hangs are injected deterministically via
      // FaultSchedule::add_hang instead).
      fault_->note_deadline_overrun();
    }
    if (tr != nullptr) {
      tr->record(ThreadPool::current_lane(), SpanKind::kHandler, step_ordinal_, self, hb,
                 tr->now_ns());
    }
  };
  if (parallel) {
    pool_->parallel_for(k, run_handler);
  } else {
    for (MachineId i = 0; i < k; ++i) run_handler(i);
  }
  const std::uint64_t t1 = tick();
  if (cluster_->has_staged()) {
    // Rare fallback: direct Cluster::send() calls were staged between
    // steps. Merge the shards behind them in (source, destination) order —
    // per-inbox order equals the sequential path's — and deliver through
    // the legacy single-pass accounting. Link-fault emulation is skipped
    // here: staged sends bypass the shard plane, so fault schedules are
    // only honored on the direct delivery path (all src/core/ algorithms).
    for (MachineId src = 0; src < k; ++src) {
      for (MachineId dst = 0; dst < k; ++dst) {
        cluster_->enqueue_batch(std::move(shards_[src].buckets[dst]));
      }
    }
    const std::uint64_t rounds = cluster_->superstep();
    const std::uint64_t t2 = tick();
    if (tr != nullptr) tr->record(0, SpanKind::kDeliver, step_ordinal_, 0, t1, t2);
    return finish_step(mode, elapsed_ns(t0, t1), elapsed_ns(t1, t2), 0, t0, rounds);
  }
  if (fault_ != nullptr) {
    // Transit emulation: drops/duplicates burn bandwidth, reorders shuffle
    // within a link, corruptions flip payload bits — then the retransmit
    // protocol (per-link sequence numbers + dedup) restores the exact
    // fault-free inbox contents before delivery.
    fault_->apply_link_faults(*cluster_, shards_);
  }
  cluster_->deliver_shards_begin(shards_);
  const auto run_delivery = [&](std::size_t i) {
    const std::uint64_t db = tr != nullptr ? tr->now_ns() : 0;
    cluster_->deliver_shard_to(static_cast<MachineId>(i));
    if (tr != nullptr) {
      tr->record(ThreadPool::current_lane(), SpanKind::kDeliver, step_ordinal_,
                 static_cast<std::uint32_t>(i), db, tr->now_ns());
    }
  };
  if (parallel) {
    pool_->parallel_for(k, run_delivery);
  } else {
    for (MachineId i = 0; i < k; ++i) run_delivery(i);
  }
  const std::uint64_t t2 = tick();
  const std::uint64_t rounds = cluster_->deliver_shards_finish();
  const std::uint64_t t3 = tick();
  if (tr != nullptr) tr->record(0, SpanKind::kReduce, step_ordinal_, 0, t2, t3);
  return finish_step(mode, elapsed_ns(t0, t1), elapsed_ns(t1, t2), elapsed_ns(t2, t3), t0,
                     rounds);
}

std::uint64_t Runtime::run(MachineProgram& program, std::uint64_t max_supersteps) {
  std::uint64_t rounds = 0;
  for (std::uint64_t s = 0; s < max_supersteps; ++s) {
    if (program.done()) return rounds;
    if (fault_ != nullptr) {
      // Restart-fallback recovery for programs with neither checkpoints nor
      // state hooks: a crash resets the whole program to superstep 0
      // (porting recipe rule 8c). No-op for recoverable programs.
      rounds += fault_->maybe_restart(*cluster_, program);
    }
    rounds += step(program);
  }
  KMM_CHECK_MSG(program.done(), "program exhausted its superstep budget");
  return rounds;
}

}  // namespace kmm
