#include "runtime/runtime.hpp"

#include <algorithm>
#include <thread>

#include "util/assert.hpp"

namespace kmm {

unsigned resolve_threads(unsigned requested, MachineId k) {
  unsigned t = requested;
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  return std::min<unsigned>(t, k);
}

Runtime::Runtime(Cluster& cluster, RuntimeConfig config)
    : cluster_(&cluster), threads_(resolve_threads(config.threads, cluster.k())) {
  if (threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(threads_);
    shards_.resize(cluster_->k());
  }
}

Runtime::~Runtime() = default;

std::uint64_t Runtime::step(MachineProgram& program, StepMode mode) {
  const MachineId k = cluster_->k();
  if (pool_ == nullptr || mode == StepMode::kInline) {
    // Sequential path: handlers write directly into the cluster outbox in
    // machine order — the legacy "for each machine, compute and send" loop.
    for (MachineId i = 0; i < k; ++i) {
      Outbox out(*cluster_, i);
      program.on_superstep(i, cluster_->inbox(i), out);
    }
    return cluster_->superstep();
  }
  // Parallel path: every handler owns shard i; inboxes are read-only until
  // the barrier, and the merge below restores the sequential global order.
  pool_->parallel_for(k, [&](std::size_t i) {
    const auto self = static_cast<MachineId>(i);
    shards_[i].clear();  // buffer and arena capacity retained from last step
    Outbox out(shards_[i], self, k);
    program.on_superstep(self, cluster_->inbox(self), out);
  });
  for (MachineId i = 0; i < k; ++i) {
    // Re-homes spilled payloads into the cluster's pending arena, so the
    // shard (messages + arena) is free for reuse next step.
    cluster_->enqueue_batch(std::move(shards_[i].messages));
  }
  return cluster_->superstep();
}

std::uint64_t Runtime::run(MachineProgram& program, std::uint64_t max_supersteps) {
  std::uint64_t rounds = 0;
  for (std::uint64_t s = 0; s < max_supersteps; ++s) {
    if (program.done()) return rounds;
    rounds += step(program);
  }
  KMM_CHECK_MSG(program.done(), "program exhausted its superstep budget");
  return rounds;
}

}  // namespace kmm
