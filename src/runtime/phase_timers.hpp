#pragma once
// Process-wide accumulated wall time of the three superstep phases.
//
// Every Runtime::step() adds its phase durations here:
//   handler — per-machine local computation (the parallel_for, or the
//             sequential machine loop on the threads=1 path);
//   deliver — moving messages into inboxes (the parallel per-destination
//             shard scan, or Cluster::superstep() on the sequential path);
//   reduce  — folding the per-destination ledger partials into ClusterStats
//             (zero on the sequential path, whose delivery accounts inline).
//
// Global atomics rather than per-Runtime members because the interesting
// callers (bench thread-scaling sections) sit above algorithm entry points
// that construct their own Runtime internally — the same reason the
// counting-allocator hook is a process counter. Snapshot before/after a
// region and subtract, exactly like alloc_count().

#include <atomic>
#include <cstdint>

namespace kmm {

struct RuntimePhaseTotals {
  std::uint64_t handler_ns = 0;
  std::uint64_t deliver_ns = 0;
  std::uint64_t reduce_ns = 0;
};

namespace detail {
inline std::atomic<std::uint64_t> g_phase_handler_ns{0};
inline std::atomic<std::uint64_t> g_phase_deliver_ns{0};
inline std::atomic<std::uint64_t> g_phase_reduce_ns{0};
}  // namespace detail

/// Cumulative phase times since program start (monotonic).
[[nodiscard]] inline RuntimePhaseTotals runtime_phase_totals() noexcept {
  return RuntimePhaseTotals{
      detail::g_phase_handler_ns.load(std::memory_order_relaxed),
      detail::g_phase_deliver_ns.load(std::memory_order_relaxed),
      detail::g_phase_reduce_ns.load(std::memory_order_relaxed)};
}

inline void add_phase_times(std::uint64_t handler_ns, std::uint64_t deliver_ns,
                            std::uint64_t reduce_ns) noexcept {
  detail::g_phase_handler_ns.fetch_add(handler_ns, std::memory_order_relaxed);
  detail::g_phase_deliver_ns.fetch_add(deliver_ns, std::memory_order_relaxed);
  detail::g_phase_reduce_ns.fetch_add(reduce_ns, std::memory_order_relaxed);
}

}  // namespace kmm
