#pragma once
// Process-wide accumulated wall time of the three superstep phases.
//
// Every Runtime::step() adds its phase durations here:
//   handler — per-machine local computation (the parallel_for, or the
//             sequential machine loop on the threads=1 path);
//   deliver — moving messages into inboxes (the parallel per-destination
//             shard scan, or Cluster::superstep() on the sequential path);
//   reduce  — folding the per-destination ledger partials into ClusterStats
//             (zero on the sequential path, whose delivery accounts inline).
//
// This is the *compatibility shim* over the observability plane: the
// Runtime measures each phase exactly once per step and feeds the same
// three durations both here (process-lifetime aggregate, snapshot-and-
// subtract) and to any attached obs::MetricsTimeline (per-superstep rows —
// see src/obs/). Callers that only need run totals keep using
// runtime_phase_totals(); callers that need to know *which* superstep was
// slow attach a timeline through RuntimeConfig::obs.
//
// Global atomics rather than per-Runtime members because the interesting
// callers (bench thread-scaling sections) sit above algorithm entry points
// that construct their own Runtime internally — the same reason the
// counting-allocator hook is a process counter. Snapshot before/after a
// region and subtract with operator- below.

#include <atomic>
#include <cstdint>

namespace kmm {

struct RuntimePhaseTotals {
  std::uint64_t handler_ns = 0;
  std::uint64_t deliver_ns = 0;
  std::uint64_t reduce_ns = 0;

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    return handler_ns + deliver_ns + reduce_ns;
  }
};

/// Saturating duration between two monotonic timestamps. The steady clock
/// never runs backwards, but a caller mixing clocks (or subtracting
/// snapshots in the wrong order) must produce 0, not a ~2^64 ns phantom
/// phase — every add_phase_times() caller funnels through this.
[[nodiscard]] inline std::uint64_t elapsed_ns(std::uint64_t begin_ns,
                                              std::uint64_t end_ns) noexcept {
  return end_ns >= begin_ns ? end_ns - begin_ns : 0;
}

/// Snapshot difference, saturating per field: `after - before` of two
/// monotone counters reads 0 instead of wrapping when the operands are
/// accidentally swapped. Replaces the hand-rolled three-field diffs that
/// bench/ and tests used to carry.
[[nodiscard]] inline RuntimePhaseTotals operator-(const RuntimePhaseTotals& after,
                                                  const RuntimePhaseTotals& before) noexcept {
  return RuntimePhaseTotals{elapsed_ns(before.handler_ns, after.handler_ns),
                            elapsed_ns(before.deliver_ns, after.deliver_ns),
                            elapsed_ns(before.reduce_ns, after.reduce_ns)};
}

namespace detail {
inline std::atomic<std::uint64_t> g_phase_handler_ns{0};
inline std::atomic<std::uint64_t> g_phase_deliver_ns{0};
inline std::atomic<std::uint64_t> g_phase_reduce_ns{0};
}  // namespace detail

/// Cumulative phase times since program start (monotonic).
[[nodiscard]] inline RuntimePhaseTotals runtime_phase_totals() noexcept {
  return RuntimePhaseTotals{
      detail::g_phase_handler_ns.load(std::memory_order_relaxed),
      detail::g_phase_deliver_ns.load(std::memory_order_relaxed),
      detail::g_phase_reduce_ns.load(std::memory_order_relaxed)};
}

inline void add_phase_times(std::uint64_t handler_ns, std::uint64_t deliver_ns,
                            std::uint64_t reduce_ns) noexcept {
  detail::g_phase_handler_ns.fetch_add(handler_ns, std::memory_order_relaxed);
  detail::g_phase_deliver_ns.fetch_add(deliver_ns, std::memory_order_relaxed);
  detail::g_phase_reduce_ns.fetch_add(reduce_ns, std::memory_order_relaxed);
}

}  // namespace kmm
