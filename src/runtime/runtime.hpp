#pragma once
// Thread-parallel superstep driver for the k-machine simulator.
//
// The sequential Cluster charges rounds by the most-loaded link, but
// executing all k machines' local computation on one thread makes wall-clock
// time scale with *total* work. The Runtime closes that gap: it runs the k
// per-machine handlers of a superstep on a worker pool, each writing to a
// private per-source outbox shard, then — after a barrier — merges the
// shards in ascending machine order and delivers through the one shared
// accounting path, Cluster::superstep().
//
// Invariant (tested by tests/test_runtime.cpp): the ClusterStats ledger —
// rounds, supersteps, messages, bits, per-link maxima, per-machine traffic,
// cut bits — is bit-identical for every thread count, including the
// sequential threads=1 path, because
//   * shard merge order (machine 0, 1, ..., k-1; per-machine send order
//     preserved) equals the sequential global send order, and
//   * all delivery/accounting lives in Cluster::superstep(), which both
//     paths share.
//
// threads semantics: 1 = sequential in-line execution (no pool, handlers
// write directly into the cluster outbox); 0 = hardware concurrency; any
// value is clamped to k (more workers than machines cannot help).

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "runtime/machine_program.hpp"
#include "runtime/outbox.hpp"
#include "runtime/thread_pool.hpp"

namespace kmm {

struct RuntimeConfig {
  /// Worker threads for per-machine local computation. 1 = sequential,
  /// 0 = std::thread::hardware_concurrency(), clamped to the cluster's k.
  unsigned threads = 1;
};

/// Signature of an ad-hoc superstep handler (see Runtime::step overload).
using SuperstepFn = std::function<void(MachineId, std::span<const Message>, Outbox&)>;

/// Per-step execution choice. Because the sharded-merge order equals the
/// sequential order and all accounting is shared, the two modes are
/// observationally identical — a program may pick per step without
/// affecting results or the ledger. kInline skips the pool dispatch and is
/// the right call for control-plane steps (applying one-word directives,
/// counter updates) whose handler work is far below the barrier cost.
enum class StepMode {
  kParallel,  // use the worker pool when threads > 1
  kInline,    // always run handlers sequentially on the calling thread
};

class Runtime {
 public:
  explicit Runtime(Cluster& cluster, RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return *cluster_; }
  [[nodiscard]] MachineId k() const noexcept { return cluster_->k(); }
  /// Effective concurrency after resolving 0 and clamping to k.
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Execute one superstep of `program` across all machines (concurrently
  /// when threads > 1 and mode is kParallel), then deliver via
  /// Cluster::superstep(). Returns the rounds charged. A superstep in which
  /// no handler sends is free, exactly like an empty sequential superstep.
  std::uint64_t step(MachineProgram& program, StepMode mode = StepMode::kParallel);

  /// Same, with an ad-hoc handler — the porting seam for algorithms written
  /// as explicit superstep sequences rather than one monolithic state
  /// machine (the Borůvka engine drives one of these per protocol segment).
  std::uint64_t step(const SuperstepFn& fn, StepMode mode = StepMode::kParallel);

  /// Drive `program` until program.done() or `max_supersteps` steps.
  /// Returns total rounds charged.
  std::uint64_t run(MachineProgram& program, std::uint64_t max_supersteps = 1u << 20);

 private:
  Cluster* cluster_;
  unsigned threads_;
  std::unique_ptr<ThreadPool> pool_;          // null when threads_ == 1
  std::vector<std::vector<Message>> shards_;  // per-source buffers, reused
};

}  // namespace kmm
