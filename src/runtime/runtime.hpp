#pragma once
// Thread-parallel superstep driver for the k-machine simulator.
//
// The sequential Cluster charges rounds by the most-loaded link, but
// executing all k machines' local computation on one thread makes wall-clock
// time scale with *total* work. The Runtime closes that gap twice over: it
// runs the k per-machine handlers of a superstep on a worker pool, each
// writing to a private per-source outbox shard bucketed by destination, then
// — after a barrier — delivers the shards through the Cluster's direct
// per-destination delivery plane (deliver_shards_begin / deliver_shard_to /
// deliver_shards_finish): k independent delivery tasks, one per destination,
// each moving its buckets straight into its inbox, with the ledger reduced
// deterministically afterwards. Both halves of the superstep — compute and
// delivery — parallelize.
//
// Invariant (tested by tests/test_runtime.cpp and tests/test_delivery.cpp):
// the ClusterStats ledger — rounds, supersteps, messages, bits, per-link
// maxima, per-machine traffic, cut bits — is bit-identical for every thread
// count, including the sequential threads=1 path, because
//   * destination d's delivery task walks the shards' d-buckets in
//     ascending source order (per-machine send order preserved), which is
//     exactly the sequential global send order projected onto inbox d, and
//   * the ledger reduction tree-folds the sparse per-destination link
//     partials pairwise, and every reduced quantity is an unsigned sum or
//     maximum of the same per-link values the sequential pass accumulates
//     message-by-message — so the hierarchical fold order cannot change a
//     ledger bit (see cluster.hpp for the delivery contract).
//
// threads semantics: 1 = sequential in-line execution (no pool, handlers
// write directly into the cluster outbox); 0 = hardware concurrency; any
// value is clamped to k (more workers than machines cannot help).
//
// ---------------------------------------------------------------------------
// Porting recipe: Cluster loop -> SuperstepFn
//
// Every algorithm in src/core/ used to be written as the classic sequential
// pattern
//
//     for (MachineId i = 0; i < k; ++i) { ...compute for i...; cluster.send(i, ...); }
//     cluster.superstep();
//     for (MachineId i = 0; i < k; ++i) { ...read cluster.inbox(i)...; }
//
// The mechanical transformation (flooding_connectivity is the worked
// example) is:
//
//   1. Each "for each machine: compute + send" loop body becomes one
//      SuperstepFn handler: rt.step([&](MachineId i, inbox, out) {...}).
//      The handler sends through `out` (src is pinned to i) and the step's
//      trailing Cluster::superstep() replaces the explicit call.
//   2. The "read inboxes" loop moves into the NEXT step's handler — the
//      inbox span a handler receives is exactly what the previous step
//      delivered to machine i. A read-only step that sends nothing is a
//      free superstep (no ledger effect), so pure collection/local-compute
//      steps cost nothing.
//   3. Shared state must become machine-indexed: state[i] (or labels[v]
//      with home(v) == i) is written only by handler i. Flooding's shared
//      labels/changed vectors follow this partition and assert it on the
//      receive path; anything genuinely cross-machine must be atomic and
//      only read between steps (see finished_ in the Borůvka engine).
//   4. One-word control-plane steps (OR/sum reduces, verdict broadcasts,
//      single-machine referee solves) pass StepMode::kInline — the barrier
//      would cost more than the handler work, and the modes are
//      observationally identical anyway.
//   5. Give the public entry point a config with a `threads` field
//      (mirroring BoruvkaConfig::threads) and build one
//      Runtime(cluster, RuntimeConfig{config.threads}) per run.
//   6. Handlers must not assume inboxes are populated between shards:
//      delivery runs as k concurrent per-destination tasks after the
//      handler barrier, so during a step the only readable inbox state is
//      the span the handler was given (the *previous* step's delivery,
//      complete by construction). Never stash a Cluster::inbox() span or a
//      Message::payload() span across steps — both are recycled when the
//      next delivery begins — and never poke another machine's inbox from
//      a handler.
//   7. To stay observable, route every superstep through Runtime::step and
//      every delivery through the step's trailing superstep() — that is
//      where the obs plane (src/obs/) hangs its hooks, so a port that obeys
//      rules 1-6 gets per-superstep metrics rows and trace spans for free
//      through config.obs with no code of its own. What a port must NOT
//      do: call Cluster::superstep() directly between steps (the delivery
//      escapes both the timeline row and the phase timers), busy-loop
//      inside a handler waiting on cross-machine state (a handler span is
//      assumed to be pure local compute), or hold a pointer to the obs
//      sinks' output mid-run (rows and rings reallocate/wrap). Analytic
//      Cluster::charge_rounds() between steps is fine — the timeline folds
//      the charge into the next recorded row.
//   8. To survive the fault plane (RuntimeConfig::fault, src/fault/), a
//      program must be recoverable in one of three ways, preferred first:
//      (a) a persistent MachineProgram overrides checkpointable() -> true
//          plus snapshot(m, WordWriter&)/restore(m, WordReader&) such that
//          restore rebuilds machine m's state *exactly* from the words
//          snapshot wrote (and consumes all of them) — the plane then
//          checkpoints every C steps and replays crashed machines through
//          their logged inboxes; serialize everything a handler reads
//          across steps, and nothing that is rebuilt within one step
//          (scratch buffers, per-step accumulators);
//      (b) lambda-driven engines register FaultPlane state hooks for the
//          run (StateHookScope, see flooding_connectivity) with the same
//          snapshot/restore contract per machine;
//      (c) programs with neither implement reset() -> true (drop all state,
//          restart the phase from its first superstep) and are driven by
//          Runtime::run — the restart fallback; correct but pays the whole
//          phase again per crash.
//      A crash injected into a program that offers none of the three aborts
//      with a pointer to this rule. Monotone one-way shared flags (e.g. the
//      Borůvka engine's finished_ bits) may be treated as replicated stable
//      storage and left out of snapshots; anything a machine could observe
//      at two different values across a rollback must be serialized.
//   9. Cancellation points and state-release obligations. When a
//      CancelPoint rides RuntimeConfig::cancel (the serving layer's seam,
//      src/serve/cancel.hpp), Runtime::step calls check() on the driver
//      thread BEFORE fault processing and before any handler runs — the
//      only cancellation point there is. A tripped check throws
//      QueryCancelled through step() and out of the program's driving code,
//      so a MachineProgram must satisfy two obligations to be servable:
//      (a) every resource a run acquires must be released by unwinding —
//          keep engine state (registries, sketch pools, arenas, scratch) in
//          RAII members of a stack-local engine/driver and register
//          cross-object attachments through scopes (StateHookScope is the
//          model); never leak a raw registration that outlives the throw;
//      (b) handlers must NOT contain their own blocking or cancellation
//          logic — a handler span is pure local compute (rule 7) and is
//          never interrupted mid-step; cancellation granularity is exactly
//          one superstep, which also preserves the cluster invariant that
//          an unwound run leaves no half-delivered superstep behind.
//      Programs that obey rules 1-8 get rule 9 for free: all src/core/
//      engines are stack-constructed per run and release everything on
//      unwind. The cluster a cancelled query ran on still holds delivered
//      inboxes and its partial ledger; the serving layer isolates queries
//      by giving each attempt a fresh Cluster and discarding it on
//      cancellation rather than scrubbing state in place.
//  10. Resumable-state versioning (the durable plane, src/durable/). A
//      checkpointable program's snapshots may outlive the process: with a
//      DurableStore attached to the fault plane, every cadence checkpoint
//      is committed to disk as a resume frame, and a restarted process
//      restores it mid-computation. That makes the snapshot word layout an
//      on-disk FORMAT, so a resumable program must declare its layout
//      version by overriding MachineProgram::state_version() and bump it
//      on ANY change to what snapshot() writes or how restore() reads it
//      (field order, widths, meaning — not just size). The version is
//      stamped into every frame; RecoveryManager rejects mismatches as
//      structured kStateVersionMismatch errors instead of misdecoding a
//      stale generation. Only rule-8(a) programs are durably resumable:
//      hook-mode engines (8b) can survive in-process crashes but their
//      driver loop's control position dies with the process, and reset()
//      programs (8c) have nothing to resume. Durable resume additionally
//      relies on rules 1-6: the frame captures (state, inbox, ledger,
//      ordinal) at a superstep boundary, and bit-identical continuation
//      holds only because re-execution from that boundary is
//      deterministic in everything but thread count.
//
// Because the handler order in sequential mode and the shard-merge order in
// parallel mode are both ascending machine order, a ported algorithm's sends
// hit Cluster::superstep() in the exact order of the original loop: the
// ledger is unchanged by the port AND thread-invariant afterwards
// (enforced repo-wide by tests/test_runtime.cpp).
// ---------------------------------------------------------------------------

#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/obs_sink.hpp"
#include "runtime/machine_program.hpp"
#include "runtime/outbox.hpp"
#include "util/thread_pool.hpp"

namespace kmm {

class FaultPlane;
class CancelPoint;

struct RuntimeConfig {
  /// Worker threads for per-machine local computation. 1 = sequential,
  /// 0 = std::thread::hardware_concurrency(), clamped to the cluster's k.
  unsigned threads = 1;
  /// Optional observability sinks (metrics timeline / span trace recorder);
  /// null (the default) records nothing and costs one branch per step. The
  /// sinks are borrowed — the caller keeps them alive for the Runtime's
  /// lifetime. See src/obs/obs_sink.hpp for the contract.
  const ObsSink* obs = nullptr;
  /// Optional fault-injection & recovery plane (src/fault/fault_plane.hpp);
  /// null (the default) is bit-identical to a build without the plane.
  /// Borrowed like the obs sinks. When attached, every step runs through
  /// the sharded outboxes (even sequential/kInline ones) so transit faults
  /// can be emulated uniformly — observationally identical by the delivery
  /// plane's contract, so a detached-vs-attached ledger only differs by the
  /// schedule's injected faults.
  FaultPlane* fault = nullptr;
  /// Optional cooperative cancellation point (src/serve/cancel.hpp),
  /// borrowed like the obs sinks. When attached, every step() begins with
  /// CancelPoint::check() on the driver thread — deadline, superstep and
  /// ledger budgets, and client cancellation all unwind the run by throwing
  /// QueryCancelled at that boundary (porting recipe rule 9). Null never
  /// cancels and costs one branch per step.
  CancelPoint* cancel = nullptr;
  /// Optional shared worker pool. Null (the default): the Runtime owns a
  /// private pool when threads > 1, exactly as before. Non-null: the
  /// Runtime borrows this pool for its parallel steps instead — the
  /// serving layer's multiplexing seam, where many concurrent queries'
  /// Runtimes time-slice one pool at superstep granularity (ThreadPool
  /// serializes whole parallel_for invocations). The pool must outlive the
  /// Runtime; effective concurrency is clamped to min(threads, pool size,
  /// k). Ignored when the resolved thread count is 1.
  ThreadPool* pool = nullptr;
};

/// The thread-count resolution every Runtime applies: 0 expands to
/// hardware concurrency, then the result is clamped to [1, k]. Exposed so
/// CLIs and benches can report the effective concurrency of a run.
[[nodiscard]] unsigned resolve_threads(unsigned requested, MachineId k);

/// Signature of an ad-hoc superstep handler (see Runtime::step overload).
/// The templated step() accepts any callable with this shape directly — a
/// std::function is never materialized on the hot path.
using SuperstepFn = std::function<void(MachineId, std::span<const Message>, Outbox&)>;

namespace detail {

/// Borrows an ad-hoc handler as a MachineProgram for one step — a stack
/// adapter, so dispatching a lambda superstep allocates nothing.
template <typename Fn>
class FnProgram final : public MachineProgram {
 public:
  explicit FnProgram(Fn& fn) noexcept : fn_(&fn) {}
  void on_superstep(MachineId self, std::span<const Message> inbox, Outbox& out) override {
    (*fn_)(self, inbox, out);
  }

 private:
  Fn* fn_;
};

}  // namespace detail

/// Per-step execution choice. Because the sharded-merge order equals the
/// sequential order and all accounting is shared, the two modes are
/// observationally identical — a program may pick per step without
/// affecting results or the ledger. kInline skips the pool dispatch and is
/// the right call for control-plane steps (applying one-word directives,
/// counter updates) whose handler work is far below the barrier cost.
enum class StepMode {
  kParallel,  // use the worker pool when threads > 1
  kInline,    // always run handlers sequentially on the calling thread
};

class Runtime {
 public:
  explicit Runtime(Cluster& cluster, RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return *cluster_; }
  [[nodiscard]] MachineId k() const noexcept { return cluster_->k(); }
  /// Effective concurrency after resolving 0 and clamping to k.
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Execute one superstep of `program` across all machines (concurrently
  /// when threads > 1 and mode is kParallel), then deliver via
  /// Cluster::superstep(). Returns the rounds charged. A superstep in which
  /// no handler sends is free, exactly like an empty sequential superstep.
  std::uint64_t step(MachineProgram& program, StepMode mode = StepMode::kParallel);

  /// Same, with an ad-hoc handler — the porting seam for algorithms written
  /// as explicit superstep sequences rather than one monolithic state
  /// machine (the Borůvka engine drives one of these per protocol segment).
  /// The callable is borrowed for the duration of the call; no
  /// std::function is constructed, keeping the dispatch allocation-free.
  template <typename Fn>
    requires std::invocable<Fn&, MachineId, std::span<const Message>, Outbox&>
  std::uint64_t step(Fn&& fn, StepMode mode = StepMode::kParallel) {
    detail::FnProgram<std::remove_reference_t<Fn>> program(fn);
    return step(program, mode);
  }

  /// Drive `program` until program.done() or `max_supersteps` steps.
  /// Returns total rounds charged.
  std::uint64_t run(MachineProgram& program, std::uint64_t max_supersteps = 1u << 20);

 private:
  /// Feed one finished step's phase durations to every consumer: the
  /// process-wide phase totals (always) and the attached sinks (when any).
  std::uint64_t finish_step(StepMode mode, std::uint64_t handler_ns,
                            std::uint64_t deliver_ns, std::uint64_t reduce_ns,
                            std::uint64_t span_begin_ns, std::uint64_t rounds);

  Cluster* cluster_;
  unsigned threads_;
  ObsSink sink_;                      // copied from config; empty = record nothing
  FaultPlane* fault_;                 // borrowed; null = plane detached
  CancelPoint* cancel_;               // borrowed; null = never cancels
  std::uint64_t step_ordinal_ = 0;    // steps driven by this Runtime (incl. free)
  std::unique_ptr<ThreadPool> owned_pool_;  // private pool when none was borrowed
  ThreadPool* pool_ = nullptr;        // owned_pool_.get() or the borrowed pool
  std::vector<OutboxShard> shards_;   // per-source buffers + arenas, reused
};

}  // namespace kmm
