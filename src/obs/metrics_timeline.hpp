#pragma once
// Per-superstep metrics timeline — the run-resolution view of the cluster
// ledger.
//
// ClusterStats is a process-lifetime aggregate: it can say a run cost
// 40k rounds but not which superstep was slow, which destination straggled,
// or how per-machine traffic skews as phases progress. A MetricsTimeline
// attached through an ObsSink records, for every *ledger* superstep (a
// Runtime::step that actually delivered data), the ClusterStats delta since
// the previous recorded superstep:
//
//   rounds, messages, local_messages, bits, cut_bits   (unsigned deltas)
//   link_max_bits                                      (this superstep's
//                                                       most-loaded link)
//   handler_ns / deliver_ns / reduce_ns                (phase wall time,
//                                                       incl. preceding
//                                                       free supersteps)
//   allocs                                             (alloc-count delta;
//                                                       0 unless a counting
//                                                       allocator registered
//                                                       via obs_sink.hpp)
//   per-machine sent/received wire bits                (see below)
//
// Because rows are deltas between consecutive snapshots of the same
// monotone ledger, summing them reproduces the final ClusterStats exactly
// (tests/test_obs.cpp pins this across thread counts {1,2,8}); rounds
// charged analytically between supersteps (Cluster::charge_rounds, e.g.
// the Section 2.2 shared-randomness relay) fold into the next row.
//
// Traffic resolution: the first `full_traffic_steps` rows store the full
// per-machine sent/received delta vectors (2k words per row); rows beyond
// that store only the top `top_traffic` senders/receivers, keeping memory
// O(k + steps) instead of O(k * steps) on long runs while still exposing
// skew (the quantity the paper's proxy argument is about).
//
// Steady-state allocation behavior: every container grows geometrically
// and retains capacity; call reserve() (or just warm up) and recording is
// allocation-free. One timeline tracks one Cluster; sequential reuse
// across Runtimes on that cluster (min-cut's inner runs, Borůvka + the
// strict-MST announce pass) concatenates naturally.

#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/obs_sink.hpp"

namespace kmm {

struct MetricsTimelineConfig {
  /// Rows up to this index keep full per-machine traffic vectors; later
  /// rows keep only the top-N summary.
  std::size_t full_traffic_steps = 256;
  /// Entries per top-N summary (clamped to [1, min(k, 16)]).
  std::size_t top_traffic = 4;
};

class MetricsTimeline {
 public:
  struct Row {
    std::uint64_t superstep = 0;  // ledger ordinal (ClusterStats::supersteps)
    std::uint64_t rounds = 0;     // incl. charge_rounds since the last row
    std::uint64_t messages = 0;
    std::uint64_t local_messages = 0;
    std::uint64_t bits = 0;
    std::uint64_t cut_bits = 0;
    std::uint64_t link_max_bits = 0;  // most-loaded link of this superstep
    std::uint64_t handler_ns = 0;     // incl. preceding free supersteps
    std::uint64_t deliver_ns = 0;
    std::uint64_t reduce_ns = 0;
    std::uint64_t allocs = 0;
    std::uint64_t fault_events = 0;  // injected faults (fault plane; else 0)
  };

  /// One (machine, bits) entry of a top-N traffic summary row.
  struct TrafficTop {
    std::uint32_t machine = 0;
    std::uint64_t bits = 0;
  };

  explicit MetricsTimeline(MetricsTimelineConfig config = {});

  /// Bind to the cluster whose ledger is observed and snapshot the
  /// baseline. Called by the Runtime before the first handler runs;
  /// idempotent, and a second cluster is rejected (one timeline = one
  /// ledger).
  void attach(const Cluster& cluster);

  /// Record the delta since the previous call (or attach). Free supersteps
  /// (no data delivered) accumulate their phase time and allocations into
  /// the next charged row, so row count == ledger superstep count by
  /// construction. Called by Runtime::step after delivery.
  void on_superstep(const Cluster& cluster, std::uint64_t handler_ns,
                    std::uint64_t deliver_ns, std::uint64_t reduce_ns);

  /// Bank fault-plane events for the current step; like free-superstep
  /// phase time, they fold into the next *charged* row (a crash-only step
  /// that delivers nothing surfaces on the following ledger row), so rows
  /// still sum exactly to the final ledger with a fault schedule active.
  void note_fault_events(std::uint64_t events) noexcept { carry_fault_events_ += events; }

  /// Pre-size every container for `supersteps` rows on a k-machine
  /// cluster, making subsequent recording allocation-free from row 0.
  void reserve(std::size_t supersteps, MachineId k);

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] const Row& row(std::size_t i) const { return rows_[i]; }
  [[nodiscard]] MachineId k() const noexcept { return k_; }

  /// Per-machine traffic of row i; empty spans when the row is past the
  /// full-resolution threshold (use top_sent/top_received there).
  [[nodiscard]] std::span<const std::uint64_t> sent_bits(std::size_t i) const;
  [[nodiscard]] std::span<const std::uint64_t> received_bits(std::size_t i) const;
  [[nodiscard]] std::span<const TrafficTop> top_sent(std::size_t i) const;
  [[nodiscard]] std::span<const TrafficTop> top_received(std::size_t i) const;

  /// Summed rows (link_max_bits is the maximum, matching the ledger's
  /// running-max semantics); superstep is the last row's ordinal.
  [[nodiscard]] Row totals() const;

  /// Total wall nanoseconds of row i (handler + deliver + reduce).
  [[nodiscard]] std::uint64_t wall_ns(std::size_t i) const {
    const Row& r = rows_[i];
    return r.handler_ns + r.deliver_ns + r.reduce_ns;
  }

  /// Drop every row and detach; capacity is retained.
  void clear() noexcept;

  /// Emit the timeline as JSON in the shape bench/aggregate_bench.py
  /// ingests ({"bench": name, "records": [...]} plus "kind"/"k" context),
  /// one record per superstep.
  void write_json(std::FILE* out, const char* name) const;
  /// Same, to a file; returns false when the file cannot be opened.
  [[nodiscard]] bool write_json_file(const char* path, const char* name) const;

 private:
  [[nodiscard]] std::size_t top_n() const noexcept;

  MetricsTimelineConfig config_;
  const Cluster* cluster_ = nullptr;
  MachineId k_ = 0;

  // Previous snapshot of the monotone ledger fields (vectors assigned in
  // place, so a warm snapshot does not allocate).
  struct Snapshot {
    std::uint64_t rounds = 0, supersteps = 0, messages = 0, local_messages = 0;
    std::uint64_t total_bits = 0, cut_bits = 0;
    std::uint64_t prev_alloc = 0;
    std::vector<std::uint64_t> sent, received;
  } prev_;

  // Phase time / allocations of free supersteps (and banked fault events),
  // folded into the next charged row.
  std::uint64_t carry_handler_ns_ = 0;
  std::uint64_t carry_deliver_ns_ = 0;
  std::uint64_t carry_reduce_ns_ = 0;
  std::uint64_t carry_fault_events_ = 0;

  std::vector<Row> rows_;
  std::vector<std::uint64_t> traffic_;    // full rows: 2k words each (sent, recv)
  std::vector<TrafficTop> top_;           // summary rows: 2*top_n entries each
  std::size_t full_rows_ = 0;             // rows stored at full resolution
};

}  // namespace kmm
