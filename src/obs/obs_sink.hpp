#pragma once
// Observability seam between the superstep runtime and its (optional)
// recording sinks.
//
// The Runtime is the single place where every interesting boundary of a
// run is visible — superstep begin/end, per-machine handler execution,
// per-destination delivery tasks, the ledger reduction — but by default it
// must record nothing: the k-machine ledger experiments are timing-free
// and the hot path is allocation-free. An ObsSink is a nullable pair of
// pointers threaded from the algorithm configs (BoruvkaConfig::obs,
// FloodingConfig::obs, ...) through RuntimeConfig::obs into Runtime::step:
//
//   * timeline — a MetricsTimeline recording one row per *ledger*
//     superstep: the ClusterStats delta (messages, bits, per-link maximum,
//     cut bits, per-machine traffic), the handler/deliver/reduce phase
//     nanoseconds, and the alloc-count delta. The per-run analogue of the
//     process-wide runtime_phase_totals() aggregate (which is now a
//     compatibility shim over the same per-step record).
//   * trace    — a TraceRecorder capturing begin/end spans of handler
//     chunks, deliver_shard_to(d) tasks, the ledger reduction, and inline
//     control-plane steps into per-worker ring buffers, exportable as
//     Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// Either pointer may be null independently; a null ObsSink* costs one
// branch per superstep. Both sinks are owned by the caller (CLI, bench,
// test) and must outlive every Runtime they are handed to. A sink must not
// be shared by two Runtimes *running concurrently* — sequential reuse
// (e.g. min-cut's inner connectivity runs on one cluster) is the intended
// way to get a whole-run timeline.

#include <cstdint>

namespace kmm {

class MetricsTimeline;
class TraceRecorder;

struct ObsSink {
  MetricsTimeline* timeline = nullptr;
  TraceRecorder* trace = nullptr;

  [[nodiscard]] bool empty() const noexcept {
    return timeline == nullptr && trace == nullptr;
  }
};

namespace obs {

/// Source of the timeline's alloc-count column. The library itself cannot
/// count allocations (replacing global operator new belongs to exactly one
/// TU per program — see bench/alloc_counter.hpp), so binaries that do own
/// a counting allocator register it here and every MetricsTimeline row
/// picks up the delta; unregistered, the column reads 0.
using AllocCountFn = std::uint64_t (*)();

void set_alloc_count_source(AllocCountFn fn) noexcept;
[[nodiscard]] std::uint64_t alloc_count_now() noexcept;

}  // namespace obs

}  // namespace kmm
