#include "obs/metrics_timeline.hpp"

#include <algorithm>
#include <array>
#include <atomic>

#include "util/assert.hpp"

namespace kmm {

namespace obs {
namespace {
std::atomic<AllocCountFn> g_alloc_source{nullptr};
}  // namespace

void set_alloc_count_source(AllocCountFn fn) noexcept {
  g_alloc_source.store(fn, std::memory_order_relaxed);
}

std::uint64_t alloc_count_now() noexcept {
  const AllocCountFn fn = g_alloc_source.load(std::memory_order_relaxed);
  return fn != nullptr ? fn() : 0;
}

}  // namespace obs

MetricsTimeline::MetricsTimeline(MetricsTimelineConfig config) : config_(config) {}

std::size_t MetricsTimeline::top_n() const noexcept {
  const std::size_t cap = std::min<std::size_t>(k_ != 0 ? k_ : 1, 16);
  return std::clamp<std::size_t>(config_.top_traffic, 1, cap);
}

void MetricsTimeline::attach(const Cluster& cluster) {
  if (cluster_ == &cluster) return;
  KMM_CHECK_MSG(cluster_ == nullptr,
                "a MetricsTimeline tracks one Cluster; use a second timeline");
  cluster_ = &cluster;
  k_ = cluster.k();
  const ClusterStats& s = cluster.stats();
  prev_.rounds = s.rounds;
  prev_.supersteps = s.supersteps;
  prev_.messages = s.messages;
  prev_.local_messages = s.local_messages;
  prev_.total_bits = s.total_bits;
  prev_.cut_bits = s.cut_bits;
  prev_.prev_alloc = obs::alloc_count_now();
  prev_.sent.assign(s.sent_bits_by_machine.begin(), s.sent_bits_by_machine.end());
  prev_.received.assign(s.received_bits_by_machine.begin(),
                        s.received_bits_by_machine.end());
}

void MetricsTimeline::reserve(std::size_t supersteps, MachineId k) {
  rows_.reserve(supersteps);
  const std::size_t full = std::min(supersteps, config_.full_traffic_steps);
  traffic_.reserve(full * 2 * k);
  if (supersteps > full) {
    const std::size_t cap = std::min<std::size_t>(k != 0 ? k : 1, 16);
    const std::size_t top = std::clamp<std::size_t>(config_.top_traffic, 1, cap);
    top_.reserve((supersteps - full) * 2 * top);
  }
  prev_.sent.reserve(k);
  prev_.received.reserve(k);
}

void MetricsTimeline::on_superstep(const Cluster& cluster, std::uint64_t handler_ns,
                                   std::uint64_t deliver_ns, std::uint64_t reduce_ns) {
  KMM_DCHECK(cluster_ == &cluster);
  const ClusterStats& s = cluster.stats();
  if (s.supersteps == prev_.supersteps) {
    // Free superstep: nothing was delivered, so the ledger row will come
    // later — bank the phase time so no wall-clock is lost.
    carry_handler_ns_ += handler_ns;
    carry_deliver_ns_ += deliver_ns;
    carry_reduce_ns_ += reduce_ns;
    return;
  }

  Row row;
  row.superstep = s.supersteps;
  row.rounds = s.rounds - prev_.rounds;
  row.messages = s.messages - prev_.messages;
  row.local_messages = s.local_messages - prev_.local_messages;
  row.bits = s.total_bits - prev_.total_bits;
  row.cut_bits = s.cut_bits - prev_.cut_bits;
  row.link_max_bits = s.last_superstep_link_bits;
  row.handler_ns = handler_ns + carry_handler_ns_;
  row.deliver_ns = deliver_ns + carry_deliver_ns_;
  row.reduce_ns = reduce_ns + carry_reduce_ns_;
  row.fault_events = carry_fault_events_;
  carry_handler_ns_ = carry_deliver_ns_ = carry_reduce_ns_ = 0;
  carry_fault_events_ = 0;
  const std::uint64_t alloc_now = obs::alloc_count_now();
  row.allocs = alloc_now - prev_.prev_alloc;
  prev_.prev_alloc = alloc_now;

  if (rows_.size() < config_.full_traffic_steps) {
    for (MachineId m = 0; m < k_; ++m) {
      traffic_.push_back(s.sent_bits_by_machine[m] - prev_.sent[m]);
    }
    for (MachineId m = 0; m < k_; ++m) {
      traffic_.push_back(s.received_bits_by_machine[m] - prev_.received[m]);
    }
    ++full_rows_;
  } else {
    // Top-N selection over the per-machine deltas; N <= 16, so a straight
    // insertion into a stack array beats sorting k values.
    const std::size_t top = top_n();
    const auto summarize = [&](const std::vector<std::uint64_t>& now,
                               const std::vector<std::uint64_t>& before) {
      std::array<TrafficTop, 16> best{};
      std::size_t filled = 0;
      for (MachineId m = 0; m < k_; ++m) {
        const std::uint64_t delta = now[m] - before[m];
        if (filled == top && delta <= best[top - 1].bits) continue;
        std::size_t pos = filled < top ? filled : top - 1;
        best[pos] = TrafficTop{m, delta};
        while (pos > 0 && best[pos - 1].bits < best[pos].bits) {
          std::swap(best[pos - 1], best[pos]);
          --pos;
        }
        if (filled < top) ++filled;
      }
      for (std::size_t i = 0; i < top; ++i) {
        top_.push_back(i < filled ? best[i] : TrafficTop{});
      }
    };
    summarize(s.sent_bits_by_machine, prev_.sent);
    summarize(s.received_bits_by_machine, prev_.received);
  }

  prev_.rounds = s.rounds;
  prev_.supersteps = s.supersteps;
  prev_.messages = s.messages;
  prev_.local_messages = s.local_messages;
  prev_.total_bits = s.total_bits;
  prev_.cut_bits = s.cut_bits;
  prev_.sent.assign(s.sent_bits_by_machine.begin(), s.sent_bits_by_machine.end());
  prev_.received.assign(s.received_bits_by_machine.begin(),
                        s.received_bits_by_machine.end());
  rows_.push_back(row);
}

std::span<const std::uint64_t> MetricsTimeline::sent_bits(std::size_t i) const {
  if (i >= full_rows_) return {};
  return {traffic_.data() + i * 2 * k_, static_cast<std::size_t>(k_)};
}

std::span<const std::uint64_t> MetricsTimeline::received_bits(std::size_t i) const {
  if (i >= full_rows_) return {};
  return {traffic_.data() + i * 2 * k_ + k_, static_cast<std::size_t>(k_)};
}

std::span<const MetricsTimeline::TrafficTop> MetricsTimeline::top_sent(std::size_t i) const {
  if (i < full_rows_ || i >= rows_.size()) return {};
  const std::size_t top = top_n();
  return {top_.data() + (i - full_rows_) * 2 * top, top};
}

std::span<const MetricsTimeline::TrafficTop> MetricsTimeline::top_received(
    std::size_t i) const {
  if (i < full_rows_ || i >= rows_.size()) return {};
  const std::size_t top = top_n();
  return {top_.data() + (i - full_rows_) * 2 * top + top, top};
}

MetricsTimeline::Row MetricsTimeline::totals() const {
  Row total;
  for (const Row& r : rows_) {
    total.superstep = r.superstep;
    total.rounds += r.rounds;
    total.messages += r.messages;
    total.local_messages += r.local_messages;
    total.bits += r.bits;
    total.cut_bits += r.cut_bits;
    total.link_max_bits = std::max(total.link_max_bits, r.link_max_bits);
    total.handler_ns += r.handler_ns;
    total.deliver_ns += r.deliver_ns;
    total.reduce_ns += r.reduce_ns;
    total.allocs += r.allocs;
    total.fault_events += r.fault_events;
  }
  return total;
}

void MetricsTimeline::clear() noexcept {
  rows_.clear();
  traffic_.clear();
  top_.clear();
  full_rows_ = 0;
  carry_handler_ns_ = carry_deliver_ns_ = carry_reduce_ns_ = 0;
  carry_fault_events_ = 0;
  cluster_ = nullptr;
  k_ = 0;
}

void MetricsTimeline::write_json(std::FILE* out, const char* name) const {
  std::fprintf(out,
               "{\n  \"bench\": \"%s\",\n  \"kind\": \"kmm_metrics_timeline\",\n"
               "  \"k\": %u,\n  \"supersteps\": %zu,\n  \"records\": [\n",
               name, k_, rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    std::fprintf(out,
                 "    {\"superstep\": %llu, \"rounds\": %llu, \"messages\": %llu, "
                 "\"local_messages\": %llu, \"bits\": %llu, \"cut_bits\": %llu, "
                 "\"link_max_bits\": %llu, \"handler_ns\": %llu, \"deliver_ns\": %llu, "
                 "\"reduce_ns\": %llu, \"allocs\": %llu, \"fault_events\": %llu",
                 static_cast<unsigned long long>(r.superstep),
                 static_cast<unsigned long long>(r.rounds),
                 static_cast<unsigned long long>(r.messages),
                 static_cast<unsigned long long>(r.local_messages),
                 static_cast<unsigned long long>(r.bits),
                 static_cast<unsigned long long>(r.cut_bits),
                 static_cast<unsigned long long>(r.link_max_bits),
                 static_cast<unsigned long long>(r.handler_ns),
                 static_cast<unsigned long long>(r.deliver_ns),
                 static_cast<unsigned long long>(r.reduce_ns),
                 static_cast<unsigned long long>(r.allocs),
                 static_cast<unsigned long long>(r.fault_events));
    if (i < full_rows_) {
      const auto emit = [&](const char* key, std::span<const std::uint64_t> v) {
        std::fprintf(out, ", \"%s\": [", key);
        for (std::size_t m = 0; m < v.size(); ++m) {
          std::fprintf(out, "%s%llu", m != 0 ? ", " : "",
                       static_cast<unsigned long long>(v[m]));
        }
        std::fprintf(out, "]");
      };
      emit("sent_bits", sent_bits(i));
      emit("received_bits", received_bits(i));
    } else {
      const auto emit = [&](const char* key, std::span<const TrafficTop> v) {
        std::fprintf(out, ", \"%s\": [", key);
        for (std::size_t t = 0; t < v.size(); ++t) {
          std::fprintf(out, "%s[%u, %llu]", t != 0 ? ", " : "", v[t].machine,
                       static_cast<unsigned long long>(v[t].bits));
        }
        std::fprintf(out, "]");
      };
      emit("top_sent", top_sent(i));
      emit("top_received", top_received(i));
    }
    std::fprintf(out, "}%s\n", i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

bool MetricsTimeline::write_json_file(const char* path, const char* name) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  write_json(f, name);
  std::fclose(f);
  return true;
}

}  // namespace kmm
