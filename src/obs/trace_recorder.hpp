#pragma once
// Span trace recorder — where inside a superstep the wall-clock goes.
//
// The Runtime records begin/end spans for every unit of superstep work:
//
//   kSuperstep  one Runtime::step (parallel or sequential), lane 0
//   kInline     one StepMode::kInline control-plane step, lane 0
//   kHandler    one machine's on_superstep handler chunk, recorded on the
//               worker lane that executed it (arg = machine id)
//   kDeliver    one deliver_shard_to(d) task on the parallel path (arg =
//               destination), or the whole Cluster::superstep() delivery
//               on the sequential path
//   kReduce     deliver_shards_finish — the deterministic ledger reduction
//   kRecovery   the fault plane's crash-recovery work at the start of a
//               step (checkpoint restore, replay, inbox retransmission),
//               lane 0 (arg = number of crash victims)
//
// Spans land in per-lane ring buffers: lane 0 is the driving thread and
// lane w (w >= 1) is ThreadPool worker w, so concurrent recording is
// write-private per thread (no locks, no false sharing between handler
// tasks) and the pool's barrier orders every read that follows. Rings are
// fully reserved at construction; recording in steady state performs zero
// heap allocations, and when a ring fills the oldest spans are dropped
// (dropped() reports how many) — a long run degrades to a recent-window
// trace instead of growing without bound.
//
// Export is Chrome trace-event JSON ("traceEvents" of complete "ph":"X"
// events with microsecond timestamps, tid = lane): loadable directly in
// chrome://tracing or Perfetto. Spans on one lane nest by containment, so
// a superstep's deliver/reduce children sit under their kSuperstep span,
// and every event carries args.superstep for cross-lane correlation.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "obs/obs_sink.hpp"

namespace kmm {

enum class SpanKind : std::uint8_t {
  kSuperstep = 0,
  kInline,
  kHandler,
  kDeliver,
  kReduce,
  kRecovery,
};
inline constexpr std::size_t kSpanKinds = 6;

struct TraceRecorderConfig {
  /// Per-worker ring buffers; lane indices at or above this fold into the
  /// last lane (lane 0 = driving thread, lane w = pool worker w).
  unsigned lanes = 16;
  /// Spans retained per lane before the oldest are overwritten.
  std::size_t events_per_lane = 1 << 13;
};

class TraceRecorder {
 public:
  struct Span {
    std::uint64_t begin_ns = 0;  // rebased to recorder construction
    std::uint64_t end_ns = 0;
    std::uint64_t superstep = 0;  // runtime step ordinal
    std::uint32_t arg = 0;        // machine (handler) / destination (deliver)
    SpanKind kind = SpanKind::kSuperstep;
  };

  explicit TraceRecorder(TraceRecorderConfig config = {});

  /// Current time on the recorder's clock (steady, ns since construction).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Append one finished span to `lane`'s ring. Safe to call concurrently
  /// from different lanes; a lane must only be written by the thread that
  /// owns it (the Runtime passes ThreadPool::current_lane()).
  void record(unsigned lane, SpanKind kind, std::uint64_t superstep, std::uint32_t arg,
              std::uint64_t begin_ns, std::uint64_t end_ns) noexcept;

  /// Number of retained spans of `kind` across all lanes.
  [[nodiscard]] std::size_t spans(SpanKind kind) const noexcept;
  /// Total retained spans.
  [[nodiscard]] std::size_t total_spans() const noexcept;
  /// Spans lost to ring wrap-around across all lanes.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Drop every span; ring capacity is retained.
  void clear() noexcept;

  /// Emit Chrome trace-event JSON ({"traceEvents": [...]}); loadable in
  /// chrome://tracing and Perfetto.
  void write_chrome_json(std::FILE* out) const;
  /// Same, to a file; returns false when the file cannot be opened.
  [[nodiscard]] bool write_chrome_json_file(const char* path) const;

 private:
  struct Lane {
    std::vector<Span> ring;   // reserved to capacity up front
    std::size_t head = 0;     // overwrite cursor once the ring is full
    std::uint64_t dropped = 0;
  };

  /// Iterate a lane's retained spans in recording order.
  template <typename Fn>
  void for_each_span(const Lane& lane, Fn&& fn) const {
    const std::size_t n = lane.ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      fn(lane.ring[(lane.head + i) % n]);
    }
  }

  std::size_t capacity_per_lane_;
  std::uint64_t epoch_ns_;
  std::vector<Lane> lanes_;
};

}  // namespace kmm
