#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <chrono>

namespace kmm {

namespace {

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* span_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kSuperstep: return "superstep";
    case SpanKind::kInline: return "inline_step";
    case SpanKind::kHandler: return "handler";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kReduce: return "reduce";
    case SpanKind::kRecovery: return "recovery";
  }
  return "span";
}

const char* span_category(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kSuperstep:
    case SpanKind::kInline: return "step";
    case SpanKind::kHandler: return "handler";
    case SpanKind::kDeliver:
    case SpanKind::kReduce: return "delivery";
    case SpanKind::kRecovery: return "fault";
  }
  return "span";
}

const char* span_arg_key(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kHandler: return "machine";
    case SpanKind::kDeliver: return "dst";
    case SpanKind::kRecovery: return "victims";
    default: return nullptr;
  }
}

}  // namespace

TraceRecorder::TraceRecorder(TraceRecorderConfig config)
    : capacity_per_lane_(std::max<std::size_t>(config.events_per_lane, 1)),
      epoch_ns_(steady_now_ns()),
      lanes_(std::max(config.lanes, 1u)) {
  for (Lane& lane : lanes_) {
    lane.ring.reserve(capacity_per_lane_);
  }
}

std::uint64_t TraceRecorder::now_ns() const noexcept {
  return steady_now_ns() - epoch_ns_;
}

void TraceRecorder::record(unsigned lane_index, SpanKind kind, std::uint64_t superstep,
                           std::uint32_t arg, std::uint64_t begin_ns,
                           std::uint64_t end_ns) noexcept {
  Lane& lane = lanes_[std::min<std::size_t>(lane_index, lanes_.size() - 1)];
  const Span span{begin_ns, end_ns, superstep, arg, kind};
  if (lane.ring.size() < capacity_per_lane_) {
    lane.ring.push_back(span);  // within reserved capacity: no allocation
    return;
  }
  lane.ring[lane.head] = span;  // ring full: overwrite the oldest span
  lane.head = (lane.head + 1) % capacity_per_lane_;
  ++lane.dropped;
}

std::size_t TraceRecorder::spans(SpanKind kind) const noexcept {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) {
    for (const Span& s : lane.ring) {
      if (s.kind == kind) ++n;
    }
  }
  return n;
}

std::size_t TraceRecorder::total_spans() const noexcept {
  std::size_t n = 0;
  for (const Lane& lane : lanes_) n += lane.ring.size();
  return n;
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  std::uint64_t n = 0;
  for (const Lane& lane : lanes_) n += lane.dropped;
  return n;
}

void TraceRecorder::clear() noexcept {
  for (Lane& lane : lanes_) {
    lane.ring.clear();  // capacity retained
    lane.head = 0;
    lane.dropped = 0;
  }
}

void TraceRecorder::write_chrome_json(std::FILE* out) const {
  std::fprintf(out, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    if (lanes_[l].ring.empty()) continue;
    std::fprintf(out,
                 "%s  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                 "\"tid\": %zu, \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", l, l == 0 ? "driver" : "worker");
    first = false;
  }
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    for_each_span(lanes_[l], [&](const Span& s) {
      // Chrome trace timestamps are microseconds; keep sub-µs spans visible
      // by rounding duration up to 1 µs.
      const std::uint64_t ts_us = s.begin_ns / 1000;
      const std::uint64_t dur_us =
          std::max<std::uint64_t>((s.end_ns - s.begin_ns) / 1000, 1);
      std::fprintf(out,
                   "%s  {\"name\": \"%s/%llu\", \"cat\": \"%s\", \"ph\": \"X\", "
                   "\"ts\": %llu, \"dur\": %llu, \"pid\": 0, \"tid\": %zu, "
                   "\"args\": {\"superstep\": %llu",
                   first ? "" : ",\n", span_name(s.kind),
                   static_cast<unsigned long long>(s.superstep), span_category(s.kind),
                   static_cast<unsigned long long>(ts_us),
                   static_cast<unsigned long long>(dur_us), l,
                   static_cast<unsigned long long>(s.superstep));
      if (const char* key = span_arg_key(s.kind)) {
        std::fprintf(out, ", \"%s\": %u", key, s.arg);
      }
      std::fprintf(out, "}}");
      first = false;
    });
  }
  std::fprintf(out, "\n]}\n");
}

bool TraceRecorder::write_chrome_json_file(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  write_chrome_json(f);
  std::fclose(f);
  return true;
}

}  // namespace kmm
