#pragma once
// Multi-level l0-sampler over a universe [0, U) with values in {-1,0,+1}
// (Section 2.3; [10],[17],[32]).
//
// Structure: `copies` independent repetitions; each repetition holds
// `levels` one-sparse cells. Item i participates in levels 0..z(i) of copy
// c, where z(i) is the number of trailing zeros of h_c(i) — i.e. level l
// subsamples the universe at rate 2^-l. If the vector has support s, the
// level near log2(s) is 1-sparse with constant probability, so a query
// succeeds w.h.p. across copies and recovers a (near-)uniform support
// element.
//
// Linearity: samplers built from the same (universe, params, seed) add
// coordinate-wise; sketch(a) + sketch(b) = sketch(a+b) exactly.
//
// All randomness comes from `seed` — machines sharing a seed build
// combinable sketches, which is how the k-machine algorithm ships per-part
// sketches to proxies and sums them there.

#include <cstdint>
#include <optional>
#include <vector>

#include "sketch/one_sparse.hpp"
#include "util/codec.hpp"
#include "util/hashing.hpp"

namespace kmm {

struct L0Params {
  int levels = 16;
  int copies = 3;

  /// Levels to cover a universe of `universe` indices: log2(U) + 2 slack.
  [[nodiscard]] static L0Params for_universe(std::uint64_t universe, int copies = 3);

  [[nodiscard]] int cells() const noexcept { return levels * copies; }
};

class L0Sampler {
 public:
  L0Sampler(std::uint64_t universe, L0Params params, std::uint64_t seed);

  /// Add `value` (±1) at `index`. O(1) expected cell updates per copy.
  /// `r_pow_index` per copy must equal r_c^index; callers with many updates
  /// use precomputed power tables (GraphSketchBuilder), casual callers use
  /// the convenience overload below.
  void update(std::uint64_t index, int value, const std::uint64_t* r_pow_index_per_copy);

  /// Convenience overload computing the fingerprint powers directly
  /// (O(log U) field mults per copy).
  void update(std::uint64_t index, int value);

  /// Linear combination; other must share (universe, params, seed).
  void add(const L0Sampler& other);

  /// Linear combination with a sketch in wire form: adds the serialized
  /// cells straight off `reader` (3 words per cell, one bounds check),
  /// without materializing the sending sketch. Exactly equivalent to
  /// deserialize() + add(), minus the heap-allocated intermediate — the
  /// proxy-side merge path of the Borůvka engine.
  void add_serialized(WordReader& reader);

  /// Re-zero all cells and rebind to `seed`, retaining cell storage — the
  /// SketchPool recycling hook (universe/params stay fixed).
  void reset(std::uint64_t seed) noexcept;

  /// Recover some nonzero index, or nullopt if the vector appears empty /
  /// recovery failed everywhere (probability polynomially small for
  /// nonzero vectors).
  [[nodiscard]] std::optional<Recovered> sample() const;

  /// Whole-vector zero test via the level-0 fingerprints of every copy:
  /// exact for the zero vector; a nonzero vector passes with probability
  /// <= (U/p)^copies. Used for algorithm termination and the MST
  /// MWOE confirmation step.
  [[nodiscard]] bool is_zero() const;

  /// Fingerprint base of copy c (needed by power-table builders).
  [[nodiscard]] std::uint64_t fingerprint_base(int copy) const;
  /// Same derivation without an instance — power-table builders rebind to a
  /// new seed without constructing a probe sampler.
  [[nodiscard]] static std::uint64_t fingerprint_base_for(std::uint64_t seed, int copy);
  /// Level-hash seed of copy c.
  [[nodiscard]] std::uint64_t level_seed(int copy) const;
  /// Level (0..levels-1) that index participates up to, in copy c.
  [[nodiscard]] int level_of(std::uint64_t index, int copy) const;

  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }
  [[nodiscard]] const L0Params& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Logical wire size of the serialized sketch.
  [[nodiscard]] std::uint64_t wire_bits() const;

  /// Serialize all cells (3 words each) into a writer.
  void serialize(WordWriter& out) const;

  /// Rebuild a sketch from `reader` given matching construction parameters.
  static L0Sampler deserialize(std::uint64_t universe, L0Params params, std::uint64_t seed,
                               WordReader& reader);

 private:
  [[nodiscard]] OneSparseCell& cell(int copy, int level) {
    return cells_[static_cast<std::size_t>(copy) * static_cast<std::size_t>(params_.levels) +
                  static_cast<std::size_t>(level)];
  }
  [[nodiscard]] const OneSparseCell& cell(int copy, int level) const {
    return cells_[static_cast<std::size_t>(copy) * static_cast<std::size_t>(params_.levels) +
                  static_cast<std::size_t>(level)];
  }

  std::uint64_t universe_;
  L0Params params_;
  std::uint64_t seed_;
  std::vector<OneSparseCell> cells_;
};

}  // namespace kmm
