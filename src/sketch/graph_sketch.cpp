#include "sketch/graph_sketch.hpp"

#include "util/assert.hpp"
#include "util/prime_field.hpp"

namespace kmm {

GraphSketchBuilder::GraphSketchBuilder(std::size_t n, std::uint64_t seed, int copies)
    : n_(n),
      universe_(static_cast<std::uint64_t>(n) * n),
      params_(L0Params::for_universe(static_cast<std::uint64_t>(n) * n, copies)),
      seed_(seed) {
  KMM_CHECK(n >= 2);
  pow_low_.resize(static_cast<std::size_t>(params_.copies));
  pow_high_.resize(static_cast<std::size_t>(params_.copies));
  for (int c = 0; c < params_.copies; ++c) {
    pow_low_[static_cast<std::size_t>(c)].resize(n);
    pow_high_[static_cast<std::size_t>(c)].resize(n);
  }
  rebind(seed);
}

void GraphSketchBuilder::rebind(std::uint64_t seed) {
  seed_ = seed;
  for (int c = 0; c < params_.copies; ++c) {
    const std::uint64_t r = L0Sampler::fingerprint_base_for(seed_, c);
    auto& low = pow_low_[static_cast<std::size_t>(c)];
    auto& high = pow_high_[static_cast<std::size_t>(c)];
    low[0] = 1;
    for (std::size_t y = 1; y < n_; ++y) low[y] = fp::mul(low[y - 1], r);
    const std::uint64_t r_n = fp::mul(low[n_ - 1], r);  // r^n
    high[0] = 1;
    for (std::size_t x = 1; x < n_; ++x) high[x] = fp::mul(high[x - 1], r_n);
  }
}

L0Sampler GraphSketchBuilder::empty_sketch() const {
  return L0Sampler(universe_, params_, seed_);
}

void GraphSketchBuilder::accumulate(const DistributedGraph& dg, Vertex u, Weight max_weight,
                                    L0Sampler& sink, std::uint64_t* powers) const {
  for (const auto& he : dg.neighbors(u)) {
    if (he.weight > max_weight) continue;
    const Vertex x = u < he.to ? u : he.to;
    const Vertex y = u < he.to ? he.to : u;
    const std::uint64_t index = static_cast<std::uint64_t>(x) * n_ + y;
    const int value = u == x ? 1 : -1;
    for (int c = 0; c < params_.copies; ++c) {
      powers[c] = fp::mul(pow_high_[static_cast<std::size_t>(c)][x],
                          pow_low_[static_cast<std::size_t>(c)][y]);
    }
    sink.update(index, value, powers);
  }
}

void GraphSketchBuilder::accumulate_part(const DistributedGraph& dg,
                                         std::span<const Vertex> part, Weight max_weight,
                                         L0Sampler& sink,
                                         std::vector<std::uint64_t>& power_scratch) const {
  KMM_DCHECK(sink.universe() == universe_ && sink.seed() == seed_);
  power_scratch.resize(static_cast<std::size_t>(params_.copies));
  for (const Vertex u : part) accumulate(dg, u, max_weight, sink, power_scratch.data());
}

L0Sampler GraphSketchBuilder::sketch_vertex(const DistributedGraph& dg, Vertex u,
                                            Weight max_weight) const {
  L0Sampler s = empty_sketch();
  std::vector<std::uint64_t> powers(static_cast<std::size_t>(params_.copies));
  accumulate(dg, u, max_weight, s, powers.data());
  return s;
}

L0Sampler GraphSketchBuilder::sketch_part(const DistributedGraph& dg,
                                          std::span<const Vertex> part,
                                          Weight max_weight) const {
  L0Sampler s = empty_sketch();
  std::vector<std::uint64_t> powers(static_cast<std::size_t>(params_.copies));
  for (const Vertex u : part) accumulate(dg, u, max_weight, s, powers.data());
  return s;
}

std::pair<Vertex, Vertex> GraphSketchBuilder::decode(std::uint64_t index) const {
  KMM_CHECK(index < universe_);
  const auto x = static_cast<Vertex>(index / n_);
  const auto y = static_cast<Vertex>(index % n_);
  KMM_CHECK_MSG(x < y, "decoded edge index is not canonical");
  return {x, y};
}

}  // namespace kmm
