#include "sketch/one_sparse.hpp"

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

void OneSparseCell::update(std::uint64_t index, int value, std::uint64_t r_pow_index) noexcept {
  // value is ±1 by construction of incidence vectors.
  if (value > 0) {
    ++s0_;
    s1_ = fp::add(s1_, fp::reduce(index));
    s2_ = fp::add(s2_, r_pow_index);
  } else {
    --s0_;
    s1_ = fp::sub(s1_, fp::reduce(index));
    s2_ = fp::sub(s2_, r_pow_index);
  }
}

void OneSparseCell::add(const OneSparseCell& other) noexcept {
  s0_ += other.s0_;
  s1_ = fp::add(s1_, other.s1_);
  s2_ = fp::add(s2_, other.s2_);
}

std::optional<Recovered> OneSparseCell::recover(std::uint64_t r,
                                                std::uint64_t universe) const noexcept {
  if (s0_ != 1 && s0_ != -1) return std::nullopt;
  // Candidate index: s1 if value = +1, -s1 if value = -1.
  const std::uint64_t idx = s0_ == 1 ? s1_ : fp::neg(s1_);
  if (idx >= universe) return std::nullopt;
  // Fingerprint verification: s2 must equal s0 * r^idx.
  const std::uint64_t expect = fp::pow(r, idx);
  const std::uint64_t want = s0_ == 1 ? expect : fp::neg(expect);
  if (s2_ != want) return std::nullopt;
  return Recovered{idx, s0_ == 1 ? 1 : -1};
}

OneSparseCell OneSparseCell::from_raw(std::int64_t s0, std::uint64_t s1,
                                      std::uint64_t s2) noexcept {
  OneSparseCell c;
  c.s0_ = s0;
  c.s1_ = fp::reduce(s1);
  c.s2_ = fp::reduce(s2);
  return c;
}

std::uint64_t OneSparseCell::wire_bits(std::uint64_t universe) noexcept {
  // s1, s2: field elements (61 bits each); s0: signed counter bounded by
  // the universe size.
  return 61 + 61 + bits_for(2 * universe + 1) + 1;
}

}  // namespace kmm
