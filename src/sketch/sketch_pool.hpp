#pragma once
// Reusable L0Sampler scratch for the sketch plane's steady state.
//
// The Borůvka engine needs fresh sketch accumulators every elimination
// iteration — one per active part on the home side, one per component label
// on the proxy side — but always with the same shape (universe n^2, fixed
// copies/levels) and only a different per-iteration seed. A SketchPool keeps
// those samplers alive across iterations: release_all() returns every
// sampler to the pool without freeing cell storage, and acquire() re-zeroes
// a recycled sampler in place (L0Sampler::reset), so iteration t+1 runs on
// iteration t's capacity and the steady state allocates nothing.
//
// Pool entries live behind stable pointers, so references returned by
// acquire()/at() survive later growth within the same iteration. Each
// machine owns its own pool (machine-indexed, like all engine state), which
// keeps handlers race-free under the parallel runtime.

#include <cstdint>
#include <memory>
#include <vector>

#include "sketch/l0_sampler.hpp"
#include "util/assert.hpp"

namespace kmm {

class SketchPool {
 public:
  /// Hand out a zeroed sampler bound to (universe, params, seed). Recycles a
  /// released sampler when one is available (allocation-free when its shape
  /// matches, the steady-state path); grows the pool otherwise.
  [[nodiscard]] std::uint32_t acquire_index(std::uint64_t universe, const L0Params& params,
                                            std::uint64_t seed) {
    if (in_use_ == pool_.size()) {
      pool_.push_back(std::make_unique<L0Sampler>(universe, params, seed));
      return static_cast<std::uint32_t>(in_use_++);
    }
    L0Sampler& recycled = *pool_[in_use_];
    if (recycled.universe() == universe && recycled.params().levels == params.levels &&
        recycled.params().copies == params.copies) {
      recycled.reset(seed);
    } else {
      recycled = L0Sampler(universe, params, seed);
    }
    return static_cast<std::uint32_t>(in_use_++);
  }

  [[nodiscard]] L0Sampler& acquire(std::uint64_t universe, const L0Params& params,
                                   std::uint64_t seed) {
    return at(acquire_index(universe, params, seed));
  }

  [[nodiscard]] L0Sampler& at(std::uint32_t index) noexcept {
    KMM_DCHECK(index < in_use_);
    return *pool_[index];
  }

  /// Return every sampler to the pool; storage (and therefore capacity) is
  /// retained for the next round of acquires.
  void release_all() noexcept { in_use_ = 0; }

  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return pool_.size(); }

 private:
  std::vector<std::unique_ptr<L0Sampler>> pool_;
  std::size_t in_use_ = 0;
};

}  // namespace kmm
