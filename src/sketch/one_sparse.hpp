#pragma once
// One-sparse recovery cell — the primitive underneath l0-sampling
// ([17] Jowhari–Saglam–Tardos; [10] Cormode–Firmani; paper Section 2.3).
//
// A cell summarizes a vector a ∈ {-1,0,+1}^U with three counters:
//     s0 = Σ a_i          (plain integer)
//     s1 = Σ a_i · i      (mod p = 2^61-1)
//     s2 = Σ a_i · r^i    (mod p, fingerprint base r)
// Cells are linear: add() gives the cell of the summed vectors. If a is
// exactly 1-sparse with a_i = ±1, then s0 = ±1, i = ±s1, and the
// fingerprint verifies s2 = s0 · r^i; any non-1-sparse vector passes the
// verification with probability ≤ U/p (Schwartz–Zippel), which is < 2^-19
// even for U = n^2 at n = 2^21.

#include <cstdint>
#include <optional>
#include <type_traits>

#include "util/prime_field.hpp"

namespace kmm {

struct Recovered {
  std::uint64_t index;
  int value;  // +1 or -1
};

class OneSparseCell {
 public:
  /// Add `value` (±1) at `index`; `r_pow_index` must equal r^index mod p
  /// (callers precompute it — see GraphSketchBuilder's power tables).
  void update(std::uint64_t index, int value, std::uint64_t r_pow_index) noexcept;

  /// Linear combination with another cell over the same (U, r).
  void add(const OneSparseCell& other) noexcept;

  /// Linear combination with a cell in its 3-word wire form (s0, s1, s2) —
  /// the proxy-side merge path, which adds serialized cells straight off a
  /// message payload without materializing the sending sketch. s1/s2 are
  /// reduced on entry, so any 64-bit wire words are accepted; for words
  /// produced by serialize() the reduction is a no-op.
  void add_raw(std::int64_t s0, std::uint64_t s1, std::uint64_t s2) noexcept {
    s0_ += s0;
    s1_ = fp::add(s1_, fp::reduce(s1));
    s2_ = fp::add(s2_, fp::reduce(s2));
  }

  /// All counters zero (necessary for the zero vector; used with the
  /// fingerprint-only is_zero test at the sampler level).
  [[nodiscard]] bool all_zero() const noexcept { return s0_ == 0 && s1_ == 0 && s2_ == 0; }

  /// If the summarized vector is exactly 1-sparse, returns its single
  /// entry; otherwise (w.h.p.) nullopt. `r` is the fingerprint base and
  /// `universe` bounds valid indices.
  [[nodiscard]] std::optional<Recovered> recover(std::uint64_t r,
                                                 std::uint64_t universe) const noexcept;

  [[nodiscard]] std::int64_t s0() const noexcept { return s0_; }
  [[nodiscard]] std::uint64_t s1() const noexcept { return s1_; }
  [[nodiscard]] std::uint64_t s2() const noexcept { return s2_; }

  /// Deserialization counterpart of the 3-word wire format.
  static OneSparseCell from_raw(std::int64_t s0, std::uint64_t s1, std::uint64_t s2) noexcept;

  /// Logical bits on the wire: two field elements + a small signed counter.
  [[nodiscard]] static std::uint64_t wire_bits(std::uint64_t universe) noexcept;

 private:
  std::int64_t s0_ = 0;
  std::uint64_t s1_ = 0;  // in F_p
  std::uint64_t s2_ = 0;  // in F_p
};

// The sketch plane relies on cells being exactly their 3-word wire image:
// L0Sampler::add_serialized walks message payloads three words at a time and
// arrays of cells add with contiguous, autovectorizable loops.
static_assert(sizeof(OneSparseCell) == 3 * sizeof(std::uint64_t) &&
                  std::is_trivially_copyable_v<OneSparseCell>,
              "OneSparseCell must stay a contiguous 3-word POD");

}  // namespace kmm
