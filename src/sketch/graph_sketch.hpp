#pragma once
// Linear graph sketches over incidence vectors (Section 2.3).
//
// Vertex u's incidence vector a_u lives on the edge-index universe [0, n^2):
//   a_u[(x,y)] = +1 if u = x < y and (x,y) ∈ E,
//                -1 if x < y = u and (x,y) ∈ E.
// Summing a_u over a vertex set S cancels intra-S edges, leaving exactly
// the outgoing edges of S — the property the connectivity algorithm rides.
//
// GraphSketchBuilder fixes the shared per-phase randomness (seed) and
// precomputes, per sampler copy, fingerprint power tables
//   r^(x*n + y) = (r^n)^x * r^y
// so that building a sketch costs O(1) field mults per incident edge.
//
// The weight threshold (`max_weight`) implements the MST elimination step
// of Section 3.1: entries for edges heavier than the threshold are zeroed
// *at construction*, a purely local operation for the home machine.

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "cluster/distributed_graph.hpp"
#include "sketch/l0_sampler.hpp"

namespace kmm {

inline constexpr Weight kNoWeightLimit = std::numeric_limits<Weight>::max();

class GraphSketchBuilder {
 public:
  /// `seed` is the shared per-(phase, iteration) sketch seed; `copies`
  /// trades failure probability against sketch size.
  GraphSketchBuilder(std::size_t n, std::uint64_t seed, int copies = 3);

  /// Rebind to a new per-iteration seed: recomputes the fingerprint power
  /// tables in place (O(n * copies) field mults, zero allocations), so a
  /// long-lived builder costs no heap traffic per iteration. n and copies
  /// are fixed at construction.
  void rebind(std::uint64_t seed);

  /// Sketch of a single vertex's incidence vector, restricted to edges of
  /// weight <= max_weight.
  [[nodiscard]] L0Sampler sketch_vertex(const DistributedGraph& dg, Vertex u,
                                        Weight max_weight = kNoWeightLimit) const;

  /// Combined sketch of a component part (sum over the part's vertices),
  /// built directly without materializing per-vertex sketches.
  [[nodiscard]] L0Sampler sketch_part(const DistributedGraph& dg,
                                      std::span<const Vertex> part,
                                      Weight max_weight = kNoWeightLimit) const;

  /// Allocation-free flavor: accumulate the part into a caller-provided
  /// (typically pooled) sampler, using caller-owned scratch for the per-edge
  /// fingerprint powers. `sink` must be zeroed and bound to this builder's
  /// (universe, params, seed); `power_scratch` is resized to `copies` once
  /// and reused across calls. The engine's SS1 hot path.
  void accumulate_part(const DistributedGraph& dg, std::span<const Vertex> part,
                       Weight max_weight, L0Sampler& sink,
                       std::vector<std::uint64_t>& power_scratch) const;

  /// An empty sketch with this builder's construction parameters
  /// (accumulator for proxy-side summation / deserialization target).
  [[nodiscard]] L0Sampler empty_sketch() const;

  /// Decode a sampled edge index back to endpoints (x < y).
  [[nodiscard]] std::pair<Vertex, Vertex> decode(std::uint64_t index) const;

  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }
  [[nodiscard]] const L0Params& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  /// `powers` is caller scratch with one slot per sampler copy — hoisted out
  /// so a part's (or a whole iteration's) vertices share one buffer instead
  /// of re-allocating it per vertex.
  void accumulate(const DistributedGraph& dg, Vertex u, Weight max_weight, L0Sampler& sink,
                  std::uint64_t* powers) const;

  std::size_t n_;
  std::uint64_t universe_;
  L0Params params_;
  std::uint64_t seed_;
  // Per copy: r^y for y in [0, n) and (r^n)^x for x in [0, n).
  std::vector<std::vector<std::uint64_t>> pow_low_;
  std::vector<std::vector<std::uint64_t>> pow_high_;
};

}  // namespace kmm
