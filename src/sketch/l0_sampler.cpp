#include "sketch/l0_sampler.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/prime_field.hpp"

namespace kmm {

L0Params L0Params::for_universe(std::uint64_t universe, int copies) {
  L0Params p;
  p.copies = copies;
  p.levels = 2;
  while ((1ULL << p.levels) < universe && p.levels < 62) ++p.levels;
  p.levels += 2;  // slack so sparse tails still isolate single items
  return p;
}

L0Sampler::L0Sampler(std::uint64_t universe, L0Params params, std::uint64_t seed)
    : universe_(universe), params_(params), seed_(seed) {
  KMM_CHECK(universe >= 1 && params.levels >= 1 && params.copies >= 1);
  cells_.resize(static_cast<std::size_t>(params_.cells()));
}

std::uint64_t L0Sampler::fingerprint_base(int copy) const {
  return fingerprint_base_for(seed_, copy);
}

std::uint64_t L0Sampler::fingerprint_base_for(std::uint64_t seed, int copy) {
  // Nonzero field element derived from the shared seed.
  return 2 + split3(seed, 0xf1a9, static_cast<std::uint64_t>(copy)) % (kMersenne61 - 2);
}

std::uint64_t L0Sampler::level_seed(int copy) const {
  return split3(seed_, 0x1e7e, static_cast<std::uint64_t>(copy));
}

int L0Sampler::level_of(std::uint64_t index, int copy) const {
  const std::uint64_t h = split(level_seed(copy), index);
  return geometric_level(h, params_.levels - 1);
}

void L0Sampler::update(std::uint64_t index, int value,
                       const std::uint64_t* r_pow_index_per_copy) {
  KMM_CHECK_MSG(index < universe_, "l0 update outside universe");
  KMM_CHECK_MSG(value == 1 || value == -1, "l0 values must be +-1");
  for (int c = 0; c < params_.copies; ++c) {
    const int top = level_of(index, c);
    const std::uint64_t rp = r_pow_index_per_copy[c];
    for (int l = 0; l <= top; ++l) cell(c, l).update(index, value, rp);
  }
}

void L0Sampler::update(std::uint64_t index, int value) {
  std::vector<std::uint64_t> powers(static_cast<std::size_t>(params_.copies));
  for (int c = 0; c < params_.copies; ++c) {
    powers[static_cast<std::size_t>(c)] = fp::pow(fingerprint_base(c), index);
  }
  update(index, value, powers.data());
}

void L0Sampler::add(const L0Sampler& other) {
  KMM_CHECK_MSG(universe_ == other.universe_ && seed_ == other.seed_ &&
                    params_.levels == other.params_.levels &&
                    params_.copies == other.params_.copies,
                "cannot combine sketches with different construction");
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i].add(other.cells_[i]);
}

void L0Sampler::add_serialized(WordReader& reader) {
  const auto raw = reader.span(cells_.size() * 3);
  const std::uint64_t* words = raw.data();
  for (auto& cell : cells_) {
    cell.add_raw(static_cast<std::int64_t>(words[0]), words[1], words[2]);
    words += 3;
  }
}

void L0Sampler::reset(std::uint64_t seed) noexcept {
  seed_ = seed;
  std::fill(cells_.begin(), cells_.end(), OneSparseCell{});
}

std::optional<Recovered> L0Sampler::sample() const {
  // Scan levels from the full vector downward in sampling rate; the first
  // verified 1-sparse cell yields the sample. Copies give independence.
  for (int c = 0; c < params_.copies; ++c) {
    const std::uint64_t r = fingerprint_base(c);
    for (int l = 0; l < params_.levels; ++l) {
      if (auto rec = cell(c, l).recover(r, universe_)) return rec;
    }
  }
  return std::nullopt;
}

bool L0Sampler::is_zero() const {
  // Level 0 of each copy sees every index; its fingerprint s2 is a random
  // polynomial evaluation, nonzero w.h.p. for nonzero vectors.
  for (int c = 0; c < params_.copies; ++c) {
    if (cell(c, 0).s2() != 0 || cell(c, 0).s0() != 0) return false;
  }
  return true;
}

std::uint64_t L0Sampler::wire_bits() const {
  return static_cast<std::uint64_t>(params_.cells()) * OneSparseCell::wire_bits(universe_);
}

void L0Sampler::serialize(WordWriter& out) const {
  out.reserve(out.size() + cells_.size() * 3);
  for (const auto& cell : cells_) {
    out.u64(static_cast<std::uint64_t>(cell.s0()));
    out.u64(cell.s1());
    out.u64(cell.s2());
  }
}

L0Sampler L0Sampler::deserialize(std::uint64_t universe, L0Params params, std::uint64_t seed,
                                 WordReader& reader) {
  L0Sampler s(universe, params, seed);
  for (auto& cell : s.cells_) {
    const auto s0 = static_cast<std::int64_t>(reader.u64());
    const std::uint64_t s1 = reader.u64();
    const std::uint64_t s2 = reader.u64();
    cell = OneSparseCell::from_raw(s0, s1, s2);
  }
  return s;
}

}  // namespace kmm
