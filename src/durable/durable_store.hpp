#pragma once
// On-disk generation store the FaultPlane tees checkpoints into. Each
// commit writes one frame file `gen-<ordinal>.kmmframe` via write-to-temp
// + fsync + atomic-rename (util/atomic_file), so the directory only ever
// contains complete, checksummed generations plus at most one ignorable
// `.tmp` from an interrupted commit. Older generations beyond
// `keep_generations` are pruned after each successful commit — the window
// a RecoveryManager can fall back across when the newest frame is corrupt.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "durable/durable_format.hpp"
#include "util/expected.hpp"

namespace kmm {

struct DurableStoreConfig {
  std::string dir;
  bool fsync = true;                  // off: bench mode measuring pure write cost
  std::size_t keep_generations = 3;   // retained on disk after each commit
  std::uint64_t fingerprint = 0;      // stamped into every frame
};

class DurableStore {
 public:
  /// Creates the directory if needed and adopts any generations already in
  /// it (a resumed process keeps pruning correctly across restarts).
  explicit DurableStore(DurableStoreConfig config);

  [[nodiscard]] const DurableStoreConfig& config() const noexcept { return config_; }

  /// Serialize and atomically commit one generation. The frame's
  /// fingerprint is overridden with the store's. Returns the committed
  /// file's size in bytes. Re-committing an ordinal overwrites its file
  /// atomically (an identical frame, on the resume path).
  [[nodiscard]] Expected<std::uint64_t, DurableError> commit(DurableFrame& frame);

  struct Stats {
    std::uint64_t commits = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t pruned = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  [[nodiscard]] static std::string generation_path(const std::string& dir,
                                                   std::uint64_t ordinal);

  /// All committed generations in `dir`, ascending by ordinal. Files that
  /// do not match the generation naming scheme (including `.tmp` leftovers)
  /// are ignored.
  [[nodiscard]] static Expected<std::vector<std::pair<std::uint64_t, std::string>>,
                                DurableError>
  list_generations(const std::string& dir);

 private:
  void prune();

  DurableStoreConfig config_;
  WordWriter scratch_;                    // frame encoding buffer, capacity retained
  std::vector<std::uint64_t> on_disk_;    // committed ordinals, ascending
  Stats stats_;
};

}  // namespace kmm
