#include "durable/durable_store.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/assert.hpp"
#include "util/atomic_file.hpp"

namespace kmm {
namespace {

constexpr char kGenPrefix[] = "gen-";
constexpr char kGenSuffix[] = ".kmmframe";

/// Parse "gen-<20 digits>.kmmframe" -> ordinal. Anything else is not a
/// generation file.
bool parse_generation_name(const char* name, std::uint64_t& ordinal) {
  const std::size_t prefix_len = sizeof(kGenPrefix) - 1;
  const std::size_t suffix_len = sizeof(kGenSuffix) - 1;
  const std::size_t len = std::strlen(name);
  if (len != prefix_len + 20 + suffix_len) return false;
  if (std::strncmp(name, kGenPrefix, prefix_len) != 0) return false;
  if (std::strcmp(name + prefix_len + 20, kGenSuffix) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const char c = name[prefix_len + i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  ordinal = value;
  return true;
}

}  // namespace

std::string DurableStore::generation_path(const std::string& dir, std::uint64_t ordinal) {
  char name[48];
  std::snprintf(name, sizeof name, "%s%020llu%s", kGenPrefix,
                static_cast<unsigned long long>(ordinal), kGenSuffix);
  return dir + "/" + name;
}

Expected<std::vector<std::pair<std::uint64_t, std::string>>, DurableError>
DurableStore::list_generations(const std::string& dir) {
  using Result = Expected<std::vector<std::pair<std::uint64_t, std::string>>, DurableError>;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Result::err({DurableErrorCode::kIo,
                        "opendir failed: " + std::string(std::strerror(errno)), dir});
  }
  std::vector<std::pair<std::uint64_t, std::string>> found;
  while (const dirent* entry = ::readdir(d)) {
    std::uint64_t ordinal = 0;
    if (parse_generation_name(entry->d_name, ordinal)) {
      found.emplace_back(ordinal, dir + "/" + entry->d_name);
    }
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());
  return Result(std::move(found));
}

DurableStore::DurableStore(DurableStoreConfig config) : config_(std::move(config)) {
  std::string error;
  KMM_CHECK_MSG(ensure_directory(config_.dir, &error),
                "durable store directory could not be created");
  if (config_.keep_generations == 0) config_.keep_generations = 1;
  auto existing = list_generations(config_.dir);
  if (existing.ok()) {
    for (const auto& [ordinal, path] : existing.value()) on_disk_.push_back(ordinal);
  }
}

Expected<std::uint64_t, DurableError> DurableStore::commit(DurableFrame& frame) {
  using Result = Expected<std::uint64_t, DurableError>;
  frame.fingerprint = config_.fingerprint;
  scratch_.clear();
  encode_frame(frame, scratch_);
  const std::size_t bytes = scratch_.size() * sizeof(std::uint64_t);
  const std::string path = generation_path(config_.dir, frame.ordinal);
  std::string error;
  if (!atomic_write_file(path, scratch_.words().data(), bytes, config_.fsync, &error)) {
    return Result::err({DurableErrorCode::kIo, std::move(error), path});
  }
  if (!std::binary_search(on_disk_.begin(), on_disk_.end(), frame.ordinal)) {
    on_disk_.insert(std::upper_bound(on_disk_.begin(), on_disk_.end(), frame.ordinal),
                    frame.ordinal);
  }
  ++stats_.commits;
  stats_.bytes_written += bytes;
  prune();
  return Result(static_cast<std::uint64_t>(bytes));
}

void DurableStore::prune() {
  while (on_disk_.size() > config_.keep_generations) {
    const std::uint64_t victim = on_disk_.front();
    // Unlink failure is non-fatal (the file may already be gone); the
    // ordinal leaves the ledger either way so pruning cannot wedge.
    ::unlink(generation_path(config_.dir, victim).c_str());
    on_disk_.erase(on_disk_.begin());
    ++stats_.pruned;
  }
}

}  // namespace kmm
