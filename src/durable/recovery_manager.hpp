#pragma once
// Startup-time recovery: scan a durable checkpoint directory, validate
// generations newest-first, and hand back the most recent frame that is
// (a) complete and checksum-clean and (b) not stale for the resuming
// process — same serialized-state version (porting-recipe rule 10), same
// graph/config fingerprint, same cluster width. Corrupt, torn, or stale
// generations are rejected with structured DurableError diagnostics and
// the scan falls back to the next older one; NOTHING is ever silently
// restored, and nothing here aborts on bad data — a directory with no
// usable generation comes back as kNoGeneration with the per-file
// rejection list attached for the operator.

#include <cstdint>
#include <string>
#include <vector>

#include "durable/durable_format.hpp"
#include "util/expected.hpp"

namespace kmm {

class RecoveryManager {
 public:
  /// What the resuming process is willing to restore. Zero fingerprint
  /// means "don't check" (single-tenant directories); state_version must
  /// match the program's exactly.
  struct Expectation {
    std::uint64_t state_version = 1;
    std::uint64_t fingerprint = 0;
    MachineId k = 0;  // 0 = don't check
  };

  /// One generation the scan refused, with why.
  struct Rejection {
    std::uint64_t ordinal = 0;
    DurableError error;
  };

  struct RecoveredState {
    DurableFrame frame;
    std::string path;                  // file the frame was restored from
    std::vector<Rejection> rejected;   // newer generations that were skipped
  };

  /// Validate a single frame file against `expect`. Taxonomy: I/O ->
  /// kIo/kTruncated, codec errors as produced by decode_frame, then
  /// staleness (kStateVersionMismatch / kFingerprintMismatch /
  /// kClusterWidthMismatch).
  [[nodiscard]] static Expected<DurableFrame, DurableError> load_frame(
      const std::string& path, const Expectation& expect);

  /// Scan `dir` and return the newest restorable generation. Never aborts:
  /// every failure mode is a structured error.
  [[nodiscard]] static Expected<RecoveredState, DurableError> recover(
      const std::string& dir, const Expectation& expect);
};

}  // namespace kmm
