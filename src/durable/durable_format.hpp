#pragma once
// The durable checkpoint frame: everything a process needs to resume a
// checkpointable program mid-computation, serialized as a flat 64-bit word
// stream with a trailing CRC-64 over the whole body.
//
// A frame taken at plane ordinal c0 captures the instant at the TOP of
// superstep c0, before any handler runs:
//   * per-machine program state words (MachineProgram::snapshot),
//   * the superstep ordinal c0,
//   * the full ClusterStats ledger as of the end of superstep c0-1
//     (doubles bit_cast to words, so restored accumulators continue the
//     exact floating-point trajectory),
//   * the inbox-replay window: every machine's delivered inbox — the
//     input superstep c0's handlers are about to read.
// Restoring all four and re-driving the deterministic engine from c0
// reproduces the uninterrupted run bit-for-bit: same answer, same ledger.
//
// Word layout (all fields one word unless noted):
//   header  [0..6):  magic, format version, state version (rule 10),
//                    fingerprint, ordinal, k
//   ledger  [6..):   fixed scalars, accumulator (6 words), two length-
//                    prefixed per-machine vectors
//   state   [..):    per machine: word count, then the words
//   inbox   [..):    per machine: message count, then per message
//                    src, dst, tag, bits, payload word count, payload
//   crc     [last]:  CRC-64/XZ of every preceding word
//
// Decode validates in a fixed order that maps each on-disk failure mode to
// one structured error: magic -> kBadMagic, format version -> kBadVersion,
// short file -> kTruncated, any body flip (including the CRC word itself)
// -> kCrcMismatch, impossible-but-checksummed structure -> kMalformed.
// Staleness (state version / fingerprint / k against what the resuming
// process expects) is the RecoveryManager's layer, not the codec's.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "util/codec.hpp"
#include "util/expected.hpp"

namespace kmm {

inline constexpr std::uint64_t kFrameMagic = 0x6B6D6D6664757231ULL;  // "kmmfdur1"
inline constexpr std::uint64_t kFrameFormatVersion = 1;

enum class DurableErrorCode : std::uint8_t {
  kIo,                    // open/read/write/fsync failed (errno in message)
  kTruncated,             // file shorter than a decodable frame / torn tail
  kBadMagic,              // not a checkpoint frame
  kBadVersion,            // frame format this build does not speak
  kCrcMismatch,           // body checksum failed — corrupt at rest
  kMalformed,             // checksummed but structurally impossible
  kStateVersionMismatch,  // program's serialized-state version moved on (rule 10)
  kFingerprintMismatch,   // frame belongs to a different graph/config
  kClusterWidthMismatch,  // frame's k differs from the resuming cluster
  kNoGeneration,          // directory holds no restorable generation
};

[[nodiscard]] const char* durable_error_name(DurableErrorCode code) noexcept;

/// Structured diagnostic for anything the durable plane rejects. Never an
/// abort: a corrupt generation is an expected runtime condition and the
/// caller decides whether to fall back to an older one.
struct DurableError {
  DurableErrorCode code = DurableErrorCode::kIo;
  std::string message;
  std::string path;  // offending file, when one exists
};

struct DurableFrame {
  std::uint64_t state_version = 1;  // MachineProgram::state_version() (rule 10)
  std::uint64_t fingerprint = 0;    // caller's graph/config identity hash
  std::uint64_t ordinal = 0;        // superstep the frame resumes at
  MachineId k = 0;

  std::vector<std::vector<std::uint64_t>> machine_words;  // [k] snapshot words

  ClusterStats ledger;  // as of the end of superstep ordinal-1

  /// One delivered message of the inbox-replay window. Payload is copied
  /// out of the arena at capture time, so the frame owns its bytes.
  struct FrameMessage {
    MachineId src = 0;
    MachineId dst = 0;
    std::uint32_t tag = 0;
    std::uint64_t bits = 0;
    std::vector<std::uint64_t> payload;
  };
  std::vector<std::vector<FrameMessage>> inbox;  // [k] in delivered order

  void clear(MachineId new_k);
};

/// Word offsets of each region inside an encoded frame — the corruption
/// tests flip bytes per region, and tools can use it to explain a frame.
/// Parsed from the header + length fields only (no CRC pass), so it works
/// on corrupt frames as long as the skeleton is intact.
struct FrameSections {
  std::size_t total_words = 0;
  std::size_t header_begin = 0;  // always 0
  std::size_t ledger_begin = 0;
  std::size_t state_begin = 0;
  std::size_t inbox_begin = 0;
  std::size_t crc_word = 0;  // == total_words - 1
};

/// Append the complete frame (header, ledger, state, inbox, CRC) to `out`.
void encode_frame(const DurableFrame& frame, WordWriter& out);

/// Just the ledger section (no header/CRC) — shared by encode_frame and by
/// tests that compare two ledgers bit-for-bit including the accumulator's
/// internal floating-point state.
void encode_ledger(const ClusterStats& stats, WordWriter& out);

/// Decode and validate one frame. See the header comment for the
/// error-code taxonomy; on success the frame is structurally complete and
/// checksum-clean (staleness is checked by the RecoveryManager).
[[nodiscard]] Expected<DurableFrame, DurableError> decode_frame(
    std::span<const std::uint64_t> words);

[[nodiscard]] Expected<FrameSections, DurableError> frame_sections(
    std::span<const std::uint64_t> words);

}  // namespace kmm
