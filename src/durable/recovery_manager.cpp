#include "durable/recovery_manager.hpp"

#include <utility>

#include "durable/durable_store.hpp"
#include "util/atomic_file.hpp"

namespace kmm {

Expected<DurableFrame, DurableError> RecoveryManager::load_frame(
    const std::string& path, const Expectation& expect) {
  using Result = Expected<DurableFrame, DurableError>;
  std::vector<std::uint64_t> words;
  std::string io_error;
  bool truncated = false;
  if (!read_file_words(path, words, &io_error, &truncated)) {
    return Result::err({truncated ? DurableErrorCode::kTruncated : DurableErrorCode::kIo,
                        std::move(io_error), path});
  }
  auto decoded = decode_frame(words);
  if (!decoded.ok()) {
    DurableError error = decoded.error();
    error.path = path;
    return Result::err(std::move(error));
  }
  DurableFrame frame = std::move(decoded).value();
  if (frame.state_version != expect.state_version) {
    return Result::err({DurableErrorCode::kStateVersionMismatch,
                        "frame serialized-state version " +
                            std::to_string(frame.state_version) + ", program declares " +
                            std::to_string(expect.state_version) + " (rule 10)",
                        path});
  }
  if (expect.fingerprint != 0 && frame.fingerprint != expect.fingerprint) {
    return Result::err({DurableErrorCode::kFingerprintMismatch,
                        "frame belongs to a different graph/config (fingerprint mismatch)",
                        path});
  }
  if (expect.k != 0 && frame.k != expect.k) {
    return Result::err({DurableErrorCode::kClusterWidthMismatch,
                        "frame was taken on k=" + std::to_string(frame.k) +
                            " machines, resuming cluster has k=" + std::to_string(expect.k),
                        path});
  }
  return Result(std::move(frame));
}

Expected<RecoveryManager::RecoveredState, DurableError> RecoveryManager::recover(
    const std::string& dir, const Expectation& expect) {
  using Result = Expected<RecoveredState, DurableError>;
  auto listed = DurableStore::list_generations(dir);
  if (!listed.ok()) return Result::err(listed.error());
  const auto& generations = listed.value();
  if (generations.empty()) {
    return Result::err(
        {DurableErrorCode::kNoGeneration, "no committed generations in directory", dir});
  }
  RecoveredState state;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    auto loaded = load_frame(it->second, expect);
    if (loaded.ok()) {
      state.frame = std::move(loaded).value();
      state.path = it->second;
      return Result(std::move(state));
    }
    state.rejected.push_back({it->first, loaded.error()});
  }
  std::string summary = "all " + std::to_string(generations.size()) +
                        " generation(s) rejected:";
  for (const Rejection& r : state.rejected) {
    summary += " [gen " + std::to_string(r.ordinal) + ": " +
               durable_error_name(r.error.code) + "]";
  }
  return Result::err({DurableErrorCode::kNoGeneration, std::move(summary), dir});
}

}  // namespace kmm
