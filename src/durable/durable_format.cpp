#include "durable/durable_format.hpp"

#include <limits>

#include "util/crc64.hpp"

namespace kmm {
namespace {

using FrameResult = Expected<DurableFrame, DurableError>;
using SectionsResult = Expected<FrameSections, DurableError>;

constexpr std::size_t kHeaderWords = 6;
// A frame never describes more machines / words than this; the caps turn a
// checksummed-but-insane length field into kMalformed instead of a bad_alloc.
constexpr std::uint64_t kMaxK = 1u << 20;
constexpr std::uint64_t kMaxSectionWords = std::uint64_t{1} << 40;

DurableError make_error(DurableErrorCode code, std::string message) {
  return DurableError{code, std::move(message), std::string{}};
}

/// Bounds-checked cursor. The body already passed the CRC when this runs,
/// so failures mean a crafted or miswritten frame — surfaced as kMalformed
/// rather than tripping WordReader's abort.
class SafeReader {
 public:
  explicit SafeReader(std::span<const std::uint64_t> words) : words_(words) {}

  [[nodiscard]] bool u64(std::uint64_t& out) {
    if (pos_ >= words_.size()) return false;
    out = words_[pos_++];
    return true;
  }

  [[nodiscard]] bool span(std::size_t count, std::span<const std::uint64_t>& out) {
    if (count > words_.size() - pos_) return false;
    out = words_.subspan(pos_, count);
    pos_ += count;
    return true;
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == words_.size(); }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t pos_ = 0;
};

bool decode_ledger(SafeReader& r, MachineId k, ClusterStats& stats) {
  std::uint64_t acc_words = 0;
  if (!r.u64(stats.rounds) || !r.u64(stats.supersteps) || !r.u64(stats.messages) ||
      !r.u64(stats.local_messages) || !r.u64(stats.total_bits) ||
      !r.u64(stats.max_link_bits) || !r.u64(stats.cut_bits) ||
      !r.u64(stats.last_superstep_link_bits) || !r.u64(acc_words)) {
    return false;
  }
  if (acc_words != Accumulator::kSerializedWords) return false;
  std::span<const std::uint64_t> acc;
  if (!r.span(Accumulator::kSerializedWords, acc)) return false;
  stats.superstep_link_max.restore(acc);
  for (auto* vec : {&stats.sent_bits_by_machine, &stats.received_bits_by_machine}) {
    std::uint64_t len = 0;
    if (!r.u64(len) || len != k) return false;
    std::span<const std::uint64_t> body;
    if (!r.span(static_cast<std::size_t>(len), body)) return false;
    vec->assign(body.begin(), body.end());
  }
  return true;
}

/// Shared skeleton walk: validates the header and advances a SafeReader
/// over each region, recording the region offsets. Used by both
/// frame_sections (no CRC requirement) and decode_frame (after the CRC).
bool walk_sections(std::span<const std::uint64_t> words, FrameSections& sec,
                   MachineId& k_out) {
  if (words.size() < kHeaderWords + 2) return false;
  const std::uint64_t k64 = words[5];
  if (k64 < 2 || k64 > kMaxK) return false;
  const auto k = static_cast<MachineId>(k64);
  SafeReader r(words.subspan(0, words.size() - 1));  // body only, CRC excluded
  std::span<const std::uint64_t> skip;
  if (!r.span(kHeaderWords, skip)) return false;
  sec.header_begin = 0;
  sec.ledger_begin = r.pos();
  ClusterStats scratch;
  if (!decode_ledger(r, k, scratch)) return false;
  sec.state_begin = r.pos();
  for (MachineId m = 0; m < k; ++m) {
    std::uint64_t count = 0;
    if (!r.u64(count) || count > kMaxSectionWords) return false;
    if (!r.span(static_cast<std::size_t>(count), skip)) return false;
  }
  sec.inbox_begin = r.pos();
  for (MachineId m = 0; m < k; ++m) {
    std::uint64_t msgs = 0;
    if (!r.u64(msgs) || msgs > kMaxSectionWords) return false;
    for (std::uint64_t i = 0; i < msgs; ++i) {
      std::uint64_t src = 0, dst = 0, tag = 0, bits = 0, payload = 0;
      if (!r.u64(src) || !r.u64(dst) || !r.u64(tag) || !r.u64(bits) ||
          !r.u64(payload) || payload > kMaxSectionWords) {
        return false;
      }
      if (!r.span(static_cast<std::size_t>(payload), skip)) return false;
    }
  }
  if (!r.done()) return false;  // trailing garbage inside the checksummed body
  sec.total_words = words.size();
  sec.crc_word = words.size() - 1;
  k_out = k;
  return true;
}

}  // namespace

const char* durable_error_name(DurableErrorCode code) noexcept {
  switch (code) {
    case DurableErrorCode::kIo: return "io";
    case DurableErrorCode::kTruncated: return "truncated";
    case DurableErrorCode::kBadMagic: return "bad-magic";
    case DurableErrorCode::kBadVersion: return "bad-version";
    case DurableErrorCode::kCrcMismatch: return "crc-mismatch";
    case DurableErrorCode::kMalformed: return "malformed";
    case DurableErrorCode::kStateVersionMismatch: return "state-version-mismatch";
    case DurableErrorCode::kFingerprintMismatch: return "fingerprint-mismatch";
    case DurableErrorCode::kClusterWidthMismatch: return "cluster-width-mismatch";
    case DurableErrorCode::kNoGeneration: return "no-generation";
  }
  return "unknown";
}

void DurableFrame::clear(MachineId new_k) {
  state_version = 1;
  fingerprint = 0;
  ordinal = 0;
  k = new_k;
  machine_words.resize(new_k);
  for (auto& words : machine_words) words.clear();  // capacity retained
  ledger = ClusterStats{};
  inbox.resize(new_k);
  for (auto& msgs : inbox) msgs.clear();
}

void encode_ledger(const ClusterStats& stats, WordWriter& out) {
  out.u64(stats.rounds);
  out.u64(stats.supersteps);
  out.u64(stats.messages);
  out.u64(stats.local_messages);
  out.u64(stats.total_bits);
  out.u64(stats.max_link_bits);
  out.u64(stats.cut_bits);
  out.u64(stats.last_superstep_link_bits);
  out.u64(Accumulator::kSerializedWords);
  stats.superstep_link_max.serialize(out);
  for (const auto* vec : {&stats.sent_bits_by_machine, &stats.received_bits_by_machine}) {
    out.u64(vec->size());
    for (const std::uint64_t v : *vec) out.u64(v);
  }
}

void encode_frame(const DurableFrame& frame, WordWriter& out) {
  KMM_CHECK_MSG(frame.machine_words.size() == frame.k && frame.inbox.size() == frame.k,
                "frame sections must cover every machine");
  const std::size_t begin = out.size();
  out.u64(kFrameMagic);
  out.u64(kFrameFormatVersion);
  out.u64(frame.state_version);
  out.u64(frame.fingerprint);
  out.u64(frame.ordinal);
  out.u64(frame.k);
  encode_ledger(frame.ledger, out);
  for (const auto& words : frame.machine_words) {
    out.u64(words.size());
    for (const std::uint64_t w : words) out.u64(w);
  }
  for (const auto& msgs : frame.inbox) {
    out.u64(msgs.size());
    for (const DurableFrame::FrameMessage& msg : msgs) {
      out.u64(msg.src);
      out.u64(msg.dst);
      out.u64(msg.tag);
      out.u64(msg.bits);
      out.u64(msg.payload.size());
      for (const std::uint64_t w : msg.payload) out.u64(w);
    }
  }
  out.u64(crc64_words(out.words().subspan(begin)));
}

Expected<DurableFrame, DurableError> decode_frame(std::span<const std::uint64_t> words) {
  if (words.size() < kHeaderWords + 2) {
    return FrameResult::err(make_error(
        DurableErrorCode::kTruncated,
        "frame holds " + std::to_string(words.size()) + " words, below the minimum"));
  }
  if (words[0] != kFrameMagic) {
    return FrameResult::err(
        make_error(DurableErrorCode::kBadMagic, "frame magic mismatch — not a checkpoint frame"));
  }
  if (words[1] != kFrameFormatVersion) {
    return FrameResult::err(make_error(
        DurableErrorCode::kBadVersion,
        "frame format version " + std::to_string(words[1]) + " (this build speaks " +
            std::to_string(kFrameFormatVersion) + ")"));
  }
  const std::span<const std::uint64_t> body = words.subspan(0, words.size() - 1);
  const std::uint64_t want_crc = words[words.size() - 1];
  const std::uint64_t got_crc = crc64_words(body);
  if (want_crc != got_crc) {
    return FrameResult::err(make_error(DurableErrorCode::kCrcMismatch,
                                       "frame CRC-64 mismatch — corrupt at rest"));
  }
  FrameSections sec;
  MachineId k = 0;
  if (!walk_sections(words, sec, k)) {
    return FrameResult::err(make_error(DurableErrorCode::kMalformed,
                                       "checksummed frame is structurally impossible"));
  }
  // The skeleton is proven sound; re-walk with the same bounds-checked
  // cursor, this time materializing the sections.
  DurableFrame frame;
  frame.state_version = words[2];
  frame.fingerprint = words[3];
  frame.ordinal = words[4];
  frame.k = k;
  SafeReader r(body);
  std::span<const std::uint64_t> section;
  KMM_CHECK(r.span(kHeaderWords, section));
  KMM_CHECK(decode_ledger(r, k, frame.ledger));
  frame.machine_words.resize(k);
  for (MachineId m = 0; m < k; ++m) {
    std::uint64_t count = 0;
    KMM_CHECK(r.u64(count) && r.span(static_cast<std::size_t>(count), section));
    frame.machine_words[m].assign(section.begin(), section.end());
  }
  frame.inbox.resize(k);
  for (MachineId m = 0; m < k; ++m) {
    std::uint64_t msgs = 0;
    KMM_CHECK(r.u64(msgs));
    frame.inbox[m].reserve(static_cast<std::size_t>(msgs));
    for (std::uint64_t i = 0; i < msgs; ++i) {
      DurableFrame::FrameMessage msg;
      std::uint64_t src = 0, dst = 0, tag = 0, payload = 0;
      KMM_CHECK(r.u64(src) && r.u64(dst) && r.u64(tag) && r.u64(msg.bits) && r.u64(payload));
      if (src >= k || dst >= k || dst != m ||
          tag > std::numeric_limits<std::uint32_t>::max()) {
        return FrameResult::err(make_error(DurableErrorCode::kMalformed,
                                           "inbox message with impossible routing fields"));
      }
      msg.src = static_cast<MachineId>(src);
      msg.dst = static_cast<MachineId>(dst);
      msg.tag = static_cast<std::uint32_t>(tag);
      KMM_CHECK(r.span(static_cast<std::size_t>(payload), section));
      msg.payload.assign(section.begin(), section.end());
      frame.inbox[m].push_back(std::move(msg));
    }
  }
  return FrameResult(std::move(frame));
}

Expected<FrameSections, DurableError> frame_sections(std::span<const std::uint64_t> words) {
  FrameSections sec;
  MachineId k = 0;
  if (words.size() < kHeaderWords + 2) {
    return SectionsResult::err(make_error(DurableErrorCode::kTruncated, "frame too short"));
  }
  if (!walk_sections(words, sec, k)) {
    return SectionsResult::err(
        make_error(DurableErrorCode::kMalformed, "frame skeleton does not walk"));
  }
  return SectionsResult(sec);
}

}  // namespace kmm
