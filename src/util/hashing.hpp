#pragma once
// Hash families used throughout the k-machine simulation.
//
// The paper (Section 2.2) shares Θ~(n/k) random bits among machines and
// builds d-wise independent hash functions from them (Alon–Babai–Itai via
// [5, Thm 2.1]). We provide:
//
//  * PolynomialHash — an honest d-wise independent family: a random degree
//    (d-1) polynomial over F_{2^61-1}. Evaluation costs O(d), so it is used
//    directly in tests (which verify d-wise independence statistically) and
//    kept available for small d.
//  * PrfHash — a SplitMix64-based PRF standing in for the shared hash in the
//    algorithms themselves. Computationally indistinguishable from a random
//    function at simulation scales; the *communication* cost of sharing the
//    seed is still charged via cluster::SharedRandomness (see DESIGN.md §1).

#include <cstdint>
#include <vector>

#include "util/prime_field.hpp"
#include "util/random.hpp"

namespace kmm {

/// d-wise independent hash family: h(x) = sum_i c_i x^i mod p, random c_i.
/// For any d distinct inputs, the outputs are independent and uniform on F_p.
class PolynomialHash {
 public:
  /// Draws the d coefficients from `rng`. Requires d >= 1.
  PolynomialHash(int d, Rng& rng);

  /// Evaluate at x (reduced into the field). O(d) via Horner.
  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept;

  /// Evaluation reduced to a bucket in [0, buckets).
  [[nodiscard]] std::uint64_t bucket(std::uint64_t x, std::uint64_t buckets) const noexcept {
    return (*this)(x) % buckets;
  }

  [[nodiscard]] int degree_bound() const noexcept { return static_cast<int>(coeff_.size()); }

  /// Random bits consumed by this function: d coefficients of ~61 bits,
  /// matching the Θ(d log n) bound the paper cites.
  [[nodiscard]] std::uint64_t random_bits() const noexcept { return coeff_.size() * 61ULL; }

 private:
  std::vector<std::uint64_t> coeff_;
};

/// PRF-style shared hash: all machines with the same seed compute the same
/// function; different (phase, iteration) pairs give independent functions.
class PrfHash {
 public:
  explicit PrfHash(std::uint64_t seed) noexcept : seed_(seed) {}

  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept {
    return split(seed_, x);
  }
  [[nodiscard]] std::uint64_t bucket(std::uint64_t x, std::uint64_t buckets) const noexcept {
    return buckets == 0 ? 0 : (*this)(x) % buckets;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Number of trailing zeros of h, clamped to `max_level`; geometric level
/// assignment for the l0-sampler (P[level >= l] = 2^-l).
[[nodiscard]] int geometric_level(std::uint64_t hashed, int max_level) noexcept;

}  // namespace kmm
