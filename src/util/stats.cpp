#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"
#include "util/codec.hpp"

namespace kmm {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Accumulator::serialize(WordWriter& out) const {
  out.u64(n_);
  out.u64(std::bit_cast<std::uint64_t>(mean_));
  out.u64(std::bit_cast<std::uint64_t>(m2_));
  out.u64(std::bit_cast<std::uint64_t>(min_));
  out.u64(std::bit_cast<std::uint64_t>(max_));
  out.u64(std::bit_cast<std::uint64_t>(sum_));
}

void Accumulator::restore(std::span<const std::uint64_t> words) noexcept {
  KMM_CHECK(words.size() == kSerializedWords);
  n_ = words[0];
  mean_ = std::bit_cast<double>(words[1]);
  m2_ = std::bit_cast<double>(words[2]);
  min_ = std::bit_cast<double>(words[3]);
  max_ = std::bit_cast<double>(words[4]);
  sum_ = std::bit_cast<double>(words[5]);
}

Histogram::Histogram(double limit, int buckets) : limit_(limit) {
  KMM_CHECK(limit > 0 && buckets > 0);
  counts_.assign(static_cast<std::size_t>(buckets) + 1, 0);
}

void Histogram::add(double x) noexcept {
  const int nb = static_cast<int>(counts_.size()) - 1;
  int b = x < 0 ? 0 : static_cast<int>(x / limit_ * nb);
  if (b >= nb) b = nb;  // overflow bucket
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::uint64_t Histogram::bucket_count(int b) const {
  KMM_CHECK(b >= 0 && b < static_cast<int>(counts_.size()));
  return counts_[static_cast<std::size_t>(b)];
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  const int nb = static_cast<int>(counts_.size());
  char line[160];
  for (int b = 0; b < nb; ++b) {
    const double lo = limit_ * b / (nb - 1);
    const int bar = static_cast<int>(static_cast<double>(counts_[static_cast<std::size_t>(b)]) /
                                     static_cast<double>(peak) * width);
    std::snprintf(line, sizeof line, "%10.2f |%-*s| %llu\n", lo, width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(counts_[static_cast<std::size_t>(b)]));
    out += line;
  }
  return out;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  KMM_CHECK(x.size() == y.size() && x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;  // skip degenerate points
    const double lx = std::log(x[i]), ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++n;
  }
  KMM_CHECK(n >= 2);
  const double dn = static_cast<double>(n);
  return (dn * sxy - sx * sy) / (dn * sxx - sx * sx);
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  KMM_CHECK(x.size() == y.size() && !x.empty());
  Accumulator ax, ay;
  for (double v : x) ax.add(v);
  for (double v : y) ay.add(v);
  double cov = 0;
  for (std::size_t i = 0; i < x.size(); ++i) cov += (x[i] - ax.mean()) * (y[i] - ay.mean());
  cov /= static_cast<double>(x.size());
  const double denom = ax.stddev() * ay.stddev();
  return denom == 0 ? 0.0 : cov / denom;
}

double quantile(std::vector<double> values, double p) {
  KMM_CHECK(!values.empty() && p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace kmm
