#pragma once
// Disjoint-set union with path halving + union by size.
// Reference implementation used by sequential graph algorithms (Kruskal,
// component counting) that the distributed algorithms are validated against.

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/assert.hpp"

namespace kmm {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  [[nodiscard]] std::uint32_t find(std::uint32_t x) noexcept {
    KMM_CHECK(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if a merge happened (the two were in different sets).
  bool unite(std::uint32_t a, std::uint32_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --components_;
    return true;
  }

  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) noexcept {
    return find(a) == find(b);
  }
  [[nodiscard]] std::size_t component_count() const noexcept { return components_; }
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }
  [[nodiscard]] std::uint32_t set_size(std::uint32_t x) noexcept { return size_[find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

}  // namespace kmm
