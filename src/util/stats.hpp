#pragma once
// Small statistics toolkit used by the benchmark harness and by tests that
// assert distributional properties (load balance, DRR depth, sketch
// uniformity).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace kmm {

class WordWriter;

/// Streaming summary: count / mean / min / max / variance (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Bit-exact persistence for the durable checkpoint plane: the Welford
  /// running state (count + five doubles, bit_cast to words) round-trips
  /// exactly, so an accumulator restored from a frame continues the SAME
  /// floating-point trajectory as the uninterrupted run.
  static constexpr std::size_t kSerializedWords = 6;
  void serialize(WordWriter& out) const;
  void restore(std::span<const std::uint64_t> words) noexcept;  // exactly kSerializedWords

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0, sum_ = 0.0;
};

/// Fixed-bucket histogram over [0, limit) with overflow bucket.
class Histogram {
 public:
  Histogram(double limit, int buckets);
  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t bucket_count(int b) const;
  [[nodiscard]] int buckets() const noexcept { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::string render(int width = 40) const;

 private:
  double limit_;
  std::vector<std::uint64_t> counts_;  // last bucket = overflow
  std::uint64_t total_ = 0;
};

/// Least-squares slope of log(y) against log(x); used to fit empirical
/// round counts to the predicted n/k^2 (slope ≈ -2 in k) or log n shapes.
[[nodiscard]] double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation of (x, y).
[[nodiscard]] double correlation(const std::vector<double>& x, const std::vector<double>& y);

/// Exact p-quantile (by sorting a copy); p in [0, 1].
[[nodiscard]] double quantile(std::vector<double> values, double p);

}  // namespace kmm
