#pragma once
// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate algorithm progress.

#include <cstdarg>

namespace kmm {

enum class LogLevel { kOff = 0, kInfo = 1, kDebug = 2 };

void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace kmm

#define KMM_LOG_INFO(...) ::kmm::logf(::kmm::LogLevel::kInfo, __VA_ARGS__)
#define KMM_LOG_DEBUG(...) ::kmm::logf(::kmm::LogLevel::kDebug, __VA_ARGS__)
