#include "util/random.hpp"

#include "util/assert.hpp"

namespace kmm {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four lanes from successive SplitMix64 outputs, as recommended
  // by the xoshiro authors; guarantees a nonzero state.
  std::uint64_t sm = seed;
  for (auto& lane : s_) {
    sm += 0x9e3779b97f4a7c15ULL;
    lane = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  KMM_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  KMM_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept { return next_double() < p; }

}  // namespace kmm
