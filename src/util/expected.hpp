#pragma once
// Minimal Expected<T, E>: a structured success-or-error return for library
// paths that used to hard-abort (KMM_CHECK_MSG with a diagnostic string).
//
// Not a std::expected polyfill — only the shape the library needs: construct
// from a value or from err(E), query ok(), and move the value out. Accessing
// the wrong side is a programming error and still aborts via KMM_CHECK, so
// callers that ignore errors fail loudly instead of reading garbage; CLIs
// that want the old nonzero-exit behaviour print error().message themselves.

#include <string>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace kmm {

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}  // NOLINT

  [[nodiscard]] static Expected err(E error) {
    return Expected(std::in_place_index<1>, std::move(error));
  }

  [[nodiscard]] bool ok() const noexcept { return state_.index() == 0; }

  [[nodiscard]] T& value() & {
    KMM_CHECK_MSG(ok(), "Expected::value() called on an error");
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const& {
    KMM_CHECK_MSG(ok(), "Expected::value() called on an error");
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    KMM_CHECK_MSG(ok(), "Expected::value() called on an error");
    return std::get<0>(std::move(state_));
  }

  [[nodiscard]] const E& error() const {
    KMM_CHECK_MSG(!ok(), "Expected::error() called on a value");
    return std::get<1>(state_);
  }

 private:
  template <std::size_t I, typename V>
  Expected(std::in_place_index_t<I> tag, V&& v) : state_(tag, std::forward<V>(v)) {}

  std::variant<T, E> state_;
};

/// Error payload of the ingest pipeline (stream_ingest and the memory
/// budget): a human-readable diagnostic the CLI can print verbatim.
struct IngestError {
  std::string message;
};

/// Error payload of the structural `make()` factories (Graph::make,
/// Cluster::make, DistributedGraph::make, VertexPartition::make_from_table):
/// malformed *external input* — an out-of-range endpoint in a loaded edge
/// list, a self-loop, an undersized cluster — reported as data for the
/// caller to surface. The plain constructors keep their aborting KMM_CHECKs:
/// reaching them with bad data remains a programming error; the factories
/// are the path for anything parsed from files, flags, or the network.
struct BuildError {
  std::string message;
};

}  // namespace kmm
