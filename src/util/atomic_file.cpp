#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace kmm {
namespace {

void set_error(std::string* error, const std::string& what, const std::string& path) {
  if (error != nullptr) *error = what + " '" + path + "': " + std::strerror(errno);
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

bool write_all(int fd, const unsigned char* data, std::size_t bytes) {
  std::size_t off = 0;
  while (off < bytes) {
    const ssize_t w = ::write(fd, data + off, bytes - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, const void* data, std::size_t bytes,
                       bool do_fsync, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, "open", tmp);
    return false;
  }
  bool ok = write_all(fd, static_cast<const unsigned char*>(data), bytes);
  if (!ok) set_error(error, "write", tmp);
  if (ok && do_fsync && ::fsync(fd) != 0) {
    set_error(error, "fsync", tmp);
    ok = false;
  }
  if (::close(fd) != 0 && ok) {
    set_error(error, "close", tmp);
    ok = false;
  }
  if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename", tmp);
    ok = false;
  }
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (do_fsync) {
    // Make the rename itself durable: fsync the containing directory.
    const std::string dir = parent_dir(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd < 0) {
      set_error(error, "open dir", dir);
      return false;
    }
    const int rc = ::fsync(dfd);
    ::close(dfd);
    if (rc != 0) {
      set_error(error, "fsync dir", dir);
      return false;
    }
  }
  return true;
}

bool read_file_words(const std::string& path, std::vector<std::uint64_t>& words,
                     std::string* error, bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  words.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, "open", path);
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    set_error(error, "stat", path);
    ::close(fd);
    return false;
  }
  const auto bytes = static_cast<std::size_t>(st.st_size);
  if (bytes % sizeof(std::uint64_t) != 0) {
    if (error != nullptr) {
      *error = "file '" + path + "' is not 64-bit-word aligned (" +
               std::to_string(bytes) + " bytes) — torn write";
    }
    if (truncated != nullptr) *truncated = true;
    ::close(fd);
    return false;
  }
  words.resize(bytes / sizeof(std::uint64_t));
  std::size_t off = 0;
  auto* dst = reinterpret_cast<unsigned char*>(words.data());
  while (off < bytes) {
    const ssize_t r = ::read(fd, dst + off, bytes - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      set_error(error, "read", path);
      ::close(fd);
      return false;
    }
    if (r == 0) break;  // racing truncation; caught below
    off += static_cast<std::size_t>(r);
  }
  ::close(fd);
  if (off != bytes) {
    if (error != nullptr) *error = "short read of '" + path + "'";
    if (truncated != nullptr) *truncated = true;
    return false;
  }
  return true;
}

bool ensure_directory(const std::string& dir, std::string* error) {
  if (dir.empty()) {
    if (error != nullptr) *error = "empty directory path";
    return false;
  }
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      set_error(error, "mkdir", prefix);
      return false;
    }
  }
  return true;
}

}  // namespace kmm
