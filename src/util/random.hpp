#pragma once
// Deterministic, seedable random number generation.
//
// Every stochastic element of the simulator (graph generation, the random
// vertex partition, sketch seeds, component ranks) is derived from explicit
// 64-bit seeds so that any run is exactly reproducible from (seed, n, k).
//
// SplitMix64 doubles as a cheap PRF: split(seed, key) is used wherever the
// paper assumes a shared hash function evaluated on component labels or edge
// ids (see DESIGN.md §1 on the d-wise-independence substitution).

#include <cstdint>

namespace kmm {

/// One SplitMix64 mixing step; maps any 64-bit value to a well-mixed one.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// PRF-style combiner: a deterministic hash of (seed, key).
[[nodiscard]] inline std::uint64_t split(std::uint64_t seed, std::uint64_t key) noexcept {
  return splitmix64(seed ^ (0x9e3779b97f4a7c15ULL + key * 0xbf58476d1ce4e5b9ULL));
}

/// Three-way combiner, used for (seed, phase, entity) style derivations.
[[nodiscard]] inline std::uint64_t split3(std::uint64_t seed, std::uint64_t a,
                                          std::uint64_t b) noexcept {
  return split(split(seed, a), b);
}

/// xoshiro256++ generator (Blackman & Vigna), seeded via SplitMix64.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound); bound > 0. Uses Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform real in [0, 1).
  double next_double() noexcept;

  /// Bernoulli(p).
  bool next_bool(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace kmm
