#include "util/crc64.hpp"

#include <array>

namespace kmm {
namespace {

// Reflected form of the ECMA-182 polynomial 0x42F0E1EBA9EA3693.
constexpr std::uint64_t kPolyReflected = 0xC96C5795D7870F42ULL;

constexpr std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint64_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[b] = crc;
  }
  return table;
}

constexpr std::array<std::uint64_t, 256> kTable = make_table();

}  // namespace

std::uint64_t crc64(const void* data, std::size_t len, std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kmm
