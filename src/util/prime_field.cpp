#include "util/prime_field.hpp"

#include "util/assert.hpp"

namespace kmm::fp {

std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  // Split at 61 bits: prod = hi * 2^61 + lo, and 2^61 ≡ 1 (mod p).
  const auto lo = static_cast<std::uint64_t>(prod & kMersenne61);
  const auto hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce(lo + hi);
}

std::uint64_t pow(std::uint64_t a, std::uint64_t e) noexcept {
  std::uint64_t base = reduce(a);
  std::uint64_t acc = 1;
  while (e > 0) {
    if (e & 1) acc = mul(acc, base);
    base = mul(base, base);
    e >>= 1;
  }
  return acc;
}

std::uint64_t inv(std::uint64_t a) noexcept {
  KMM_CHECK_MSG(reduce(a) != 0, "division by zero in F_p");
  return pow(a, kMersenne61 - 2);
}

}  // namespace kmm::fp
