#pragma once
// Word-level payload codec for simulator messages.
//
// Algorithms serialize their message structs into vectors of 64-bit words;
// senders additionally declare the *logical* bit width of the payload so the
// bandwidth ledger charges what a real wire format would carry (e.g. a
// sketch cell is 61 bits, a vertex id is ceil(log2 n) bits).

#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace kmm {

class WordWriter {
 public:
  WordWriter& u64(std::uint64_t v) {
    words_.push_back(v);
    return *this;
  }
  WordWriter& u32(std::uint32_t v) { return u64(v); }

  /// Pre-size for a known batch of u64() calls (serializers that know their
  /// word count up front, e.g. a sketch's cells).
  void reserve(std::size_t total_words) { words_.reserve(total_words); }

  /// View of the serialized words — the form senders pass to Outbox::send,
  /// which copies, so the writer may be clear()ed and reused right after.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// Reset for reuse, retaining capacity: a per-machine WordWriter that is
  /// cleared between messages serializes allocation-free in steady state.
  void clear() noexcept { words_.clear(); }

  [[nodiscard]] std::vector<std::uint64_t> take() && { return std::move(words_); }
  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }

 private:
  std::vector<std::uint64_t> words_;
};

class WordReader {
 public:
  explicit WordReader(std::span<const std::uint64_t> words) noexcept : words_(words) {}

  [[nodiscard]] std::uint64_t u64() {
    KMM_CHECK_MSG(pos_ < words_.size(), "payload underrun");
    return words_[pos_++];
  }
  [[nodiscard]] std::uint32_t u32() { return static_cast<std::uint32_t>(u64()); }

  /// Consume `count` words as one contiguous view — a single bounds check
  /// for batch readers (wire-level sketch merging reads 3 words per cell).
  [[nodiscard]] std::span<const std::uint64_t> span(std::size_t count) {
    KMM_CHECK_MSG(count <= words_.size() - pos_, "payload underrun");
    const auto view = words_.subspan(pos_, count);
    pos_ += count;
    return view;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == words_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return words_.size() - pos_; }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t pos_ = 0;
};

/// Bits needed to address a universe of `universe` values (>= 1).
[[nodiscard]] constexpr std::uint64_t bits_for(std::uint64_t universe) noexcept {
  std::uint64_t bits = 1;
  while ((1ULL << bits) < universe && bits < 63) ++bits;
  return bits;
}

}  // namespace kmm
