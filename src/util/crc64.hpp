#pragma once
// CRC-64/XZ (ECMA-182 polynomial, reflected) — the integrity check behind
// every durable on-disk artifact (checkpoint frames, the query journal).
// Table-driven, one table shared process-wide; the byte-order of the input
// is the byte-order of the words as laid out in memory, so a checksum
// computed by the writing process verifies in the restarted one on the
// same architecture — which is the only restart the durable plane promises
// (a checkpoint directory is not a portable interchange format).

#include <cstddef>
#include <cstdint>
#include <span>

namespace kmm {

/// CRC-64/XZ over `len` bytes. `seed` chains partial computations:
/// crc64(ab) == crc64(b, len_b, crc64(a, len_a)).
[[nodiscard]] std::uint64_t crc64(const void* data, std::size_t len,
                                  std::uint64_t seed = 0) noexcept;

/// Checksum of a word span viewed as bytes (the durable frame layout).
[[nodiscard]] inline std::uint64_t crc64_words(
    std::span<const std::uint64_t> words, std::uint64_t seed = 0) noexcept {
  return crc64(words.data(), words.size() * sizeof(std::uint64_t), seed);
}

}  // namespace kmm
