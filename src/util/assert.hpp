#pragma once
// Checked assertions that stay on in release builds.
//
// The simulator is a measurement instrument: silently-corrupt state would
// invalidate every reported number, so invariant checks are always active.

#include <cstdio>
#include <cstdlib>

namespace kmm {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "kmm: check failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace kmm

#define KMM_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::kmm::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define KMM_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::kmm::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

// Debug-only flavor for hot-path revalidation of invariants that are
// already enforced at the point of origin (e.g. per-message bounds checks
// inside the batch-merge loop, whose Outbox producer checked them at send
// time). Compiles to nothing under -DNDEBUG; use KMM_CHECK wherever the
// check is the *only* line of defense.
#ifndef NDEBUG
#define KMM_DCHECK(cond) KMM_CHECK(cond)
#else
#define KMM_DCHECK(cond)        \
  do {                          \
    (void)sizeof((cond) ? 1 : 0); \
  } while (0)
#endif
