#pragma once
// Checked assertions that stay on in release builds.
//
// The simulator is a measurement instrument: silently-corrupt state would
// invalidate every reported number, so invariant checks are always active.

#include <cstdio>
#include <cstdlib>

namespace kmm {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "kmm: check failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace kmm

#define KMM_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) ::kmm::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define KMM_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) ::kmm::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)
