#include "util/hashing.hpp"

#include <bit>

#include "util/assert.hpp"

namespace kmm {

PolynomialHash::PolynomialHash(int d, Rng& rng) {
  KMM_CHECK(d >= 1);
  coeff_.resize(static_cast<std::size_t>(d));
  for (auto& c : coeff_) c = rng.next_below(kMersenne61);
}

std::uint64_t PolynomialHash::operator()(std::uint64_t x) const noexcept {
  const std::uint64_t xr = fp::reduce(x);
  std::uint64_t acc = 0;
  // Horner: acc = (((c_{d-1}) x + c_{d-2}) x + ...) + c_0
  for (auto it = coeff_.rbegin(); it != coeff_.rend(); ++it) {
    acc = fp::add(fp::mul(acc, xr), *it);
  }
  return acc;
}

int geometric_level(std::uint64_t hashed, int max_level) noexcept {
  if (hashed == 0) return max_level;
  const int tz = std::countr_zero(hashed);
  return tz < max_level ? tz : max_level;
}

}  // namespace kmm
