#pragma once
// Atomic file commit for the durable plane: write-to-temp + fsync +
// rename + directory fsync, so a crash at ANY instant leaves either the
// previous file or the complete new one — never a torn hybrid. A reader
// that finds the temp name knows it is looking at an uncommitted write.
//
// Errors are reported as strings (errno text + path), not aborts: disk
// problems are an expected runtime condition for a durability layer and
// the callers (DurableStore / RecoveryManager) convert them into
// structured kmm::Expected diagnostics.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kmm {

/// Atomically replace `path` with `bytes` of `data`: write `path`.tmp,
/// optionally fsync it, rename over `path`, and (when `do_fsync`) fsync
/// the parent directory so the rename itself is durable. Returns false
/// and fills *error (errno text) on any failure; the temp file is
/// unlinked on the error paths that leave one behind.
[[nodiscard]] bool atomic_write_file(const std::string& path, const void* data,
                                     std::size_t bytes, bool do_fsync,
                                     std::string* error);

/// Read a whole file into 64-bit words. A size that is not a multiple of
/// 8 bytes (a torn tail from a non-atomic writer) fails with *truncated
/// set to true; I/O errors fail with *truncated false. On failure *error
/// carries the errno/description text.
[[nodiscard]] bool read_file_words(const std::string& path,
                                   std::vector<std::uint64_t>& words,
                                   std::string* error, bool* truncated);

/// mkdir -p equivalent (single level is enough for checkpoint dirs, but
/// intermediate components are created too). Existing directory is OK.
[[nodiscard]] bool ensure_directory(const std::string& dir, std::string* error);

}  // namespace kmm
