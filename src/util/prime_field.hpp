#pragma once
// Arithmetic in F_p for the Mersenne prime p = 2^61 - 1.
//
// Used by the l0-sampler fingerprints (sketch/one_sparse.hpp) and by the
// k-wise-independent polynomial hash family (util/hashing.hpp). A Mersenne
// modulus admits branch-light reduction without division.

#include <cstdint>

namespace kmm {

inline constexpr std::uint64_t kMersenne61 = (1ULL << 61) - 1;

namespace fp {

// The canonicalizing steps below are written with mask arithmetic instead
// of conditionals so the sketch-plane inner loops (cell-wise add over
// contiguous 3-word cells) stay branch-free and autovectorizable.

/// Reduce any 64-bit value into [0, p).
[[nodiscard]] constexpr std::uint64_t reduce(std::uint64_t x) noexcept {
  x = (x & kMersenne61) + (x >> 61);
  return x - (kMersenne61 & -static_cast<std::uint64_t>(x >= kMersenne61));
}

[[nodiscard]] constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;  // a,b < 2^61 so no overflow in 64 bits
  return s - (kMersenne61 & -static_cast<std::uint64_t>(s >= kMersenne61));
}

[[nodiscard]] constexpr std::uint64_t sub(std::uint64_t a, std::uint64_t b) noexcept {
  return a - b + (kMersenne61 & -static_cast<std::uint64_t>(a < b));
}

[[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) noexcept;

/// a^e mod p by square-and-multiply.
[[nodiscard]] std::uint64_t pow(std::uint64_t a, std::uint64_t e) noexcept;

/// Multiplicative inverse via Fermat (a != 0).
[[nodiscard]] std::uint64_t inv(std::uint64_t a) noexcept;

/// Negation mod p.
[[nodiscard]] constexpr std::uint64_t neg(std::uint64_t a) noexcept {
  return a == 0 ? 0 : kMersenne61 - a;
}

}  // namespace fp
}  // namespace kmm
