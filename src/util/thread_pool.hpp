#pragma once
// Barrier-style worker pool — a leaf utility (no kmm dependencies) shared
// by the parallel superstep runtime and the parallel input pipeline
// (chunked generators, CSR construction, hosted-list builds).
//
// parallel_for(count, fn) invokes fn(i) for every i in [0, count) across the
// pool and returns only when all invocations have completed — the barrier
// the superstep model needs between "compute" and "deliver". The calling
// thread participates as one worker, so ThreadPool(t) spawns t-1 threads and
// ThreadPool(1) runs everything inline on the caller.
//
// Task indices are claimed under a mutex: the per-task work in this codebase
// (sketching a machine's vertex parts, merging proxy records) dwarfs a lock
// acquisition, and mutex claiming makes generation handover races — a stale
// worker claiming into the next parallel_for's index space — impossible by
// construction.
//
// The first exception thrown by any task is captured and rethrown on the
// calling thread after the barrier; remaining tasks still run.
//
// Concurrent callers: parallel_for may be invoked from SEVERAL threads at
// once — whole invocations are serialized by a submit mutex, so callers
// time-slice the pool one generation at a time. This is the serving layer's
// multiplexing model: many queries' Runtimes share one pool and interleave
// at superstep granularity, each superstep still owning every worker.
// parallel_for remains non-reentrant (a task must not call parallel_for on
// its own pool — that now deadlocks on the submit mutex instead of racing,
// so it is detected and aborted via a thread-local ownership check).

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace kmm {

/// Chunk-count policy for data-parallel passes over `items` elements: a few
/// chunks per worker to absorb skew, bounded below by a per-chunk `grain`
/// so tiny inputs don't drown in dispatch overhead. Scheduling only — a
/// pass's RESULT must never depend on this value (the chunked generators
/// size their streams independently, because there chunking IS identity).
[[nodiscard]] constexpr std::size_t parallel_chunks(std::size_t items, unsigned workers,
                                                    std::size_t grain = 4096) noexcept {
  const std::size_t by_worker = static_cast<std::size_t>(workers) * 4;
  const std::size_t by_grain = grain != 0 && items / grain > 0 ? items / grain : 1;
  const std::size_t chunks = by_worker < by_grain ? by_worker : by_grain;
  return chunks > 0 ? chunks : 1;
}

class ThreadPool {
 public:
  /// `total_threads` is the total concurrency including the calling thread
  /// (must be >= 1); the pool spawns total_threads - 1 workers.
  explicit ThreadPool(unsigned total_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + caller).
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Stable small id of the executing thread: 0 for any thread that is not
  /// a pool worker (in particular the caller driving parallel_for), w + 1
  /// for pool worker w. Thread-local, so tasks can index write-private
  /// per-lane state (the trace recorder's ring buffers) without touching
  /// the pool's mutex. A thread keeps its lane for the pool's lifetime.
  [[nodiscard]] static unsigned current_lane() noexcept;

  /// Run fn(0), ..., fn(count - 1) across the pool; blocks until every
  /// invocation finished. Safe to call from several threads concurrently
  /// (invocations serialize on a submit mutex), but NOT reentrant: fn must
  /// not call parallel_for on the same pool. The callable is borrowed by
  /// reference for the duration of the call (function_ref style) — no
  /// type-erasure allocation, so a superstep dispatch costs nothing on the
  /// heap.
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    parallel_for_impl(
        count, [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

 private:
  void parallel_for_impl(std::size_t count, void (*invoke)(void*, std::size_t), void* ctx);
  void worker_loop(unsigned lane);
  void run_tasks(std::uint64_t generation);

  std::vector<std::thread> workers_;

  /// Serializes whole parallel_for invocations from concurrent callers.
  /// Held by the submitting thread for the full generation (post + drain),
  /// so one generation's tasks never interleave with another's.
  std::mutex submit_mutex_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a new generation is ready
  std::condition_variable done_cv_;  // caller: all tasks of the generation done
  void (*job_invoke_)(void*, std::size_t) = nullptr;  // guarded by mutex_
  void* job_ctx_ = nullptr;                           // guarded by mutex_
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace kmm
