#include "util/logging.hpp"

#include <cstdio>

namespace kmm {

namespace {
LogLevel g_level = LogLevel::kOff;
}

void set_log_level(LogLevel level) noexcept { g_level = level; }
LogLevel log_level() noexcept { return g_level; }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace kmm
