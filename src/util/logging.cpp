#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace kmm {

namespace {
// Relaxed atomic: the level may be toggled while parallel handlers are
// logging (TSan flags the plain-global version), and level checks need no
// ordering with respect to anything else.
std::atomic<LogLevel> g_level{LogLevel::kOff};
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void logf(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  // Format into a stack buffer and emit line + '\n' as ONE write: separate
  // vfprintf/fputc calls interleave when handlers on several workers log
  // concurrently. Overlong lines are truncated (with a marker) rather than
  // split.
  char buf[1024];
  std::va_list args;
  va_start(args, fmt);
  int len = std::vsnprintf(buf, sizeof(buf) - 1, fmt, args);
  va_end(args);
  if (len < 0) return;
  if (static_cast<std::size_t>(len) >= sizeof(buf) - 1) {
    len = static_cast<int>(sizeof(buf) - 1);
    std::memcpy(buf + len - 4, "...", 3);  // truncation marker before '\n'
  }
  buf[len] = '\n';
  std::fwrite(buf, 1, static_cast<std::size_t>(len) + 1, stderr);
}

}  // namespace kmm
