#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace kmm {

namespace {
// Lane of the executing thread: 0 until a pool worker stamps its own id.
thread_local unsigned t_lane = 0;
// Pool whose tasks this thread is currently running (caller or worker).
// Detects reentrancy — a task calling parallel_for on its own pool — which
// would otherwise deadlock on the submit mutex.
thread_local const void* t_active_pool = nullptr;

class ActivePoolScope {
 public:
  explicit ActivePoolScope(const void* pool) noexcept : prev_(t_active_pool) {
    t_active_pool = pool;
  }
  ~ActivePoolScope() { t_active_pool = prev_; }
  ActivePoolScope(const ActivePoolScope&) = delete;
  ActivePoolScope& operator=(const ActivePoolScope&) = delete;

 private:
  const void* prev_;
};
}  // namespace

unsigned ThreadPool::current_lane() noexcept { return t_lane; }

ThreadPool::ThreadPool(unsigned total_threads) {
  KMM_CHECK_MSG(total_threads >= 1, "a pool needs at least the calling thread");
  workers_.reserve(total_threads - 1);
  for (unsigned i = 0; i + 1 < total_threads; ++i) {
    workers_.emplace_back([this, lane = i + 1] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(unsigned lane) {
  t_lane = lane;
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t generation;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      generation = generation_;
    }
    seen = generation;
    run_tasks(generation);
  }
}

void ThreadPool::run_tasks(std::uint64_t generation) {
  const ActivePoolScope active(this);
  for (;;) {
    std::size_t index;
    void (*invoke)(void*, std::size_t);
    void* ctx;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      // A stale worker (woken late, its generation already drained and
      // replaced) must not claim into the new index space.
      if (generation_ != generation || next_ >= count_) return;
      index = next_++;
      invoke = job_invoke_;
      ctx = job_ctx_;
    }
    try {
      invoke(ctx, index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_impl(std::size_t count, void (*invoke)(void*, std::size_t),
                                   void* ctx) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) invoke(ctx, i);
    return;
  }
  // Fail fast on reentrancy (a task dispatching on its own pool would
  // deadlock on submit_mutex_ below); then serialize whole invocations so
  // concurrent callers — the serving layer's per-query Runtimes — time-
  // slice the pool one generation at a time.
  KMM_CHECK_MSG(t_active_pool != this, "parallel_for is not reentrant");
  std::lock_guard<std::mutex> submit(submit_mutex_);
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    KMM_CHECK_MSG(remaining_ == 0, "parallel_for is not reentrant");
    job_invoke_ = invoke;
    job_ctx_ = ctx;
    count_ = count;
    next_ = 0;
    remaining_ = count;
    error_ = nullptr;
    generation = ++generation_;
  }
  work_cv_.notify_all();
  run_tasks(generation);
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace kmm
