#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/assert.hpp"

namespace kmm {

ClusterConfig ClusterConfig::for_graph(std::size_t n, MachineId k) {
  ClusterConfig cfg;
  cfg.k = k;
  // The canonical "O(polylog n) bits per link per round": B = ceil(log2 n)^2.
  const auto lg = static_cast<std::uint64_t>(std::ceil(std::log2(std::max<std::size_t>(n, 4))));
  cfg.bandwidth_bits = std::max<std::uint64_t>(64, lg * lg);
  return cfg;
}

Cluster::Cluster(ClusterConfig config) : config_(config) {
  KMM_CHECK_MSG(config_.k >= 2, "the k-machine model needs k >= 2");
  KMM_CHECK(config_.bandwidth_bits >= 1);
  inboxes_.resize(config_.k);
  stats_.sent_bits_by_machine.assign(config_.k, 0);
  stats_.received_bits_by_machine.assign(config_.k, 0);
}

void Cluster::send(Message msg) {
  KMM_CHECK(msg.src < config_.k && msg.dst < config_.k);
  outbox_.push_back(std::move(msg));
}

void Cluster::send(MachineId src, MachineId dst, std::uint32_t tag,
                   std::vector<std::uint64_t> payload, std::uint64_t bits) {
  send(Message{src, dst, tag, std::move(payload), bits});
}

void Cluster::enqueue_batch(std::vector<Message>&& batch) {
  for (const auto& msg : batch) {
    KMM_CHECK(msg.src < config_.k && msg.dst < config_.k);
  }
  outbox_.insert(outbox_.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  batch.clear();
}

std::uint64_t Cluster::superstep() {
  for (auto& inbox : inboxes_) inbox.clear();
  if (outbox_.empty()) return 0;
  return deliver_pending();
}

std::uint64_t Cluster::deliver_pending() {

  // Per-directed-link bit loads for this superstep.
  std::unordered_map<std::uint64_t, std::uint64_t> link_bits;
  link_bits.reserve(outbox_.size());

  for (auto& msg : outbox_) {
    if (msg.src == msg.dst) {
      ++stats_.local_messages;
      inboxes_[msg.dst].push_back(std::move(msg));
      continue;
    }
    const std::uint64_t bits = msg.wire_bits();
    const std::uint64_t link = static_cast<std::uint64_t>(msg.src) * config_.k + msg.dst;
    link_bits[link] += bits;
    if (!cut_side_.empty() && cut_side_[msg.src] != cut_side_[msg.dst]) {
      stats_.cut_bits += bits;
    }
    stats_.total_bits += bits;
    stats_.sent_bits_by_machine[msg.src] += bits;
    stats_.received_bits_by_machine[msg.dst] += bits;
    ++stats_.messages;
    inboxes_[msg.dst].push_back(std::move(msg));
  }
  outbox_.clear();

  std::uint64_t max_load = 0;
  for (const auto& [link, bits] : link_bits) max_load = std::max(max_load, bits);

  const std::uint64_t rounds =
      max_load == 0 ? 0 : (max_load + config_.bandwidth_bits - 1) / config_.bandwidth_bits;
  stats_.rounds += rounds;
  ++stats_.supersteps;
  stats_.max_link_bits = std::max(stats_.max_link_bits, max_load);
  if (max_load > 0) stats_.superstep_link_max.add(static_cast<double>(max_load));
  return rounds;
}

std::span<const Message> Cluster::inbox(MachineId m) const {
  KMM_CHECK(m < config_.k);
  return inboxes_[m];
}

void Cluster::charge_rounds(std::uint64_t rounds) { stats_.rounds += rounds; }

void Cluster::track_cut(std::vector<std::uint8_t> side) {
  KMM_CHECK_MSG(side.size() == config_.k, "cut side vector must cover all machines");
  cut_side_ = std::move(side);
}

}  // namespace kmm
