#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/assert.hpp"

namespace kmm {

ClusterConfig ClusterConfig::for_graph(std::size_t n, MachineId k) {
  ClusterConfig cfg;
  cfg.k = k;
  // The canonical "O(polylog n) bits per link per round": B = ceil(log2 n)^2.
  const auto lg = static_cast<std::uint64_t>(std::ceil(std::log2(std::max<std::size_t>(n, 4))));
  cfg.bandwidth_bits = std::max<std::uint64_t>(64, lg * lg);
  return cfg;
}

Expected<Cluster, BuildError> Cluster::make(ClusterConfig config) {
  if (config.k < 2) {
    return Expected<Cluster, BuildError>::err(
        {"the k-machine model needs k >= 2 (got k = " + std::to_string(config.k) + ")"});
  }
  if (config.bandwidth_bits < 1) {
    return Expected<Cluster, BuildError>::err({"per-link bandwidth must be >= 1 bit per round"});
  }
  return Cluster(config);
}

Cluster::Cluster(ClusterConfig config) : config_(config) {
  KMM_CHECK_MSG(config_.k >= 2, "the k-machine model needs k >= 2");
  KMM_CHECK(config_.bandwidth_bits >= 1);
  inboxes_.resize(config_.k);
  stats_.sent_bits_by_machine.assign(config_.k, 0);
  stats_.received_bits_by_machine.assign(config_.k, 0);
  // link_bits_ (dense k*k, sequential path only) is allocated lazily on the
  // first deliver_pending(); the direct plane's partials are sparse rows.
  inbox_counts_.assign(config_.k, 0);
  inbox_arenas_.resize(config_.k);
  delivery_partials_.resize(config_.k);
}

void Cluster::send(MachineId src, MachineId dst, std::uint32_t tag,
                   std::span<const std::uint64_t> payload, std::uint64_t bits) {
  KMM_CHECK(src < config_.k && dst < config_.k);
  outbox_.push_back(Message::make(src, dst, tag, payload, bits, pending_arena_));
}

void Cluster::enqueue_batch(std::vector<Message>&& batch) {
  // Geometric growth rather than an exact reserve: the runtime's fallback
  // path merges up to k*k buckets per superstep, and an exact reserve per
  // batch would reallocate-and-copy the accumulated outbox on each one.
  const std::size_t needed = outbox_.size() + batch.size();
  if (outbox_.capacity() < needed) {
    outbox_.reserve(std::max(needed, 2 * outbox_.capacity()));
  }
  for (auto& msg : batch) {
    // The Outbox already validated src/dst at send time; re-checking every
    // message here would put a full extra pass on the merge hot path, so
    // the revalidation is debug-only.
    KMM_DCHECK(msg.src < config_.k && msg.dst < config_.k);
    // Spilled payloads are copied (not chunk-spliced) out of the shard
    // arena: donating chunks would leave the shards re-allocating fresh
    // ones every superstep unless a cross-thread chunk pool cycled them
    // back. A bounded memcpy of the rare >4-word payloads keeps both sides
    // allocation-free in steady state, which is the property that matters.
    msg.reintern(pending_arena_);
    outbox_.push_back(msg);
  }
  batch.clear();
}

std::uint64_t Cluster::superstep() {
  for (auto& inbox : inboxes_) inbox.clear();  // capacity retained
  // Last superstep's payload generation is dead now that the inboxes are
  // cleared; recycle it and promote the pending generation (chunk memory is
  // stable, so spilled-payload pointers survive the swap). Inbox arenas may
  // hold the previous (direct) delivery's spilled payloads — equally dead.
  live_arena_.reset();
  std::swap(live_arena_, pending_arena_);
  for (auto& arena : inbox_arenas_) arena.reset();
  if (outbox_.empty()) return 0;
  return deliver_pending();
}

void Cluster::deliver_shards_begin(std::span<OutboxShard> shards) {
  KMM_CHECK_MSG(outbox_.empty(),
                "direct delivery requires no staged sequential sends (see has_staged)");
  KMM_CHECK(shards.size() == config_.k);
  // Same generation handover as superstep(): the last superstep's pending
  // payloads are dead once every inbox has been cleared by its delivery
  // task below (nothing was staged, so pending_arena_ is empty and the swap
  // only recycles the live generation).
  live_arena_.reset();
  std::swap(live_arena_, pending_arena_);
  delivery_shards_ = shards;
}

void Cluster::deliver_shard_to(MachineId dst) {
  const MachineId k = config_.k;
  KMM_DCHECK(dst < k && delivery_shards_.size() == k);
  auto& inbox = inboxes_[dst];
  inbox.clear();               // capacity retained
  inbox_arenas_[dst].reset();  // previous generation's spilled payloads are dead
  auto& partial = delivery_partials_[dst];
  partial.link_bits.clear();  // capacity retained
  partial.cross = 0;
  partial.local = 0;
  std::size_t count = 0;
  for (const auto& shard : delivery_shards_) count += shard.buckets[dst].size();
  if (count == 0) return;
  inbox.reserve(count);  // exact: a warm inbox never reallocates mid-delivery
  std::uint64_t cross = 0;
  std::uint64_t local = 0;
  for (MachineId src = 0; src < k; ++src) {
    auto& bucket = delivery_shards_[src].buckets[dst];
    // One sparse row entry per source that actually sent: buckets are
    // walked in ascending src order, so the row is ascending-src sorted by
    // construction — the invariant the finish tree-fold's merges rely on.
    std::uint64_t src_bits = 0;
    for (auto& msg : bucket) {
      KMM_DCHECK(msg.src == src && msg.dst == dst);
      // Re-home spilled payloads into this inbox's arena: payload lifetime
      // becomes inbox lifetime, and the shard arena is free for reuse as
      // soon as the step's delivery ends.
      msg.reintern(inbox_arenas_[dst]);
      if (src == dst) {
        ++local;
      } else {
        ++cross;
        src_bits += msg.wire_bits();
      }
      inbox.push_back(msg);
    }
    bucket.clear();
    if (src_bits > 0) partial.link_bits.emplace_back(src, src_bits);
  }
  partial.cross = cross;
  partial.local = local;
}

void Cluster::fold_merge(LedgerFold& into, LedgerFold& from) {
  into.total += from.total;
  into.max_link = std::max(into.max_link, from.max_link);
  into.cut += from.cut;
  into.cross += from.cross;
  into.local += from.local;
  // Merge the ascending per-source sent lists, summing equal sources.
  fold_merge_tmp_.clear();
  std::size_t a = 0, b = 0;
  while (a < into.sent.size() && b < from.sent.size()) {
    if (into.sent[a].first < from.sent[b].first) {
      fold_merge_tmp_.push_back(into.sent[a++]);
    } else if (from.sent[b].first < into.sent[a].first) {
      fold_merge_tmp_.push_back(from.sent[b++]);
    } else {
      fold_merge_tmp_.emplace_back(into.sent[a].first,
                                   into.sent[a].second + from.sent[b].second);
      ++a;
      ++b;
    }
  }
  for (; a < into.sent.size(); ++a) fold_merge_tmp_.push_back(into.sent[a]);
  for (; b < from.sent.size(); ++b) fold_merge_tmp_.push_back(from.sent[b]);
  into.sent.swap(fold_merge_tmp_);
  from.sent.clear();
}

std::uint64_t Cluster::deliver_shards_finish() {
  const MachineId k = config_.k;
  delivery_shards_ = {};
  std::uint64_t moved = 0;
  for (MachineId d = 0; d < k; ++d) {
    moved += delivery_partials_[d].cross + delivery_partials_[d].local;
  }
  if (moved == 0) return 0;  // nothing moved: a free superstep
  // Hierarchical ledger reduction: leaf d summarizes destination d's sparse
  // row (its per-source sent list is already ascending), then the k leaves
  // are folded pairwise into one root. Every folded quantity is an unsigned
  // sum or maximum of exactly the per-link values the sequential pass
  // accumulates message-by-message, so the tree order — like any fold order
  // — reproduces the sequential ledger bit-for-bit. Footprint is
  // O(touched links) for any k; the dense k*k table exists only on the
  // sequential path.
  fold_nodes_.resize(k);  // inner capacity retained across supersteps
  for (MachineId d = 0; d < k; ++d) {
    auto& leaf = fold_nodes_[d];
    auto& partial = delivery_partials_[d];
    leaf.total = 0;
    leaf.max_link = 0;
    leaf.cut = 0;
    leaf.cross = partial.cross;
    leaf.local = partial.local;
    leaf.sent.clear();
    for (const auto& [src, bits] : partial.link_bits) {
      leaf.total += bits;
      leaf.max_link = std::max(leaf.max_link, bits);
      if (!cut_side_.empty() && cut_side_[src] != cut_side_[d]) leaf.cut += bits;
      leaf.sent.emplace_back(src, bits);
    }
    stats_.received_bits_by_machine[d] += leaf.total;
    partial.link_bits.clear();
    partial.cross = 0;
    partial.local = 0;
  }
  for (std::size_t step = 1; step < k; step *= 2) {
    for (std::size_t i = 0; i + step < k; i += 2 * step) {
      fold_merge(fold_nodes_[i], fold_nodes_[i + step]);
    }
  }
  LedgerFold& root = fold_nodes_[0];
  stats_.total_bits += root.total;
  stats_.cut_bits += root.cut;
  for (const auto& [src, bits] : root.sent) stats_.sent_bits_by_machine[src] += bits;
  root.sent.clear();
  stats_.messages += root.cross;
  stats_.local_messages += root.local;
  const std::uint64_t max_load = root.max_link;
  const std::uint64_t rounds =
      max_load == 0 ? 0 : (max_load + config_.bandwidth_bits - 1) / config_.bandwidth_bits;
  stats_.rounds += rounds;
  ++stats_.supersteps;
  stats_.max_link_bits = std::max(stats_.max_link_bits, max_load);
  stats_.last_superstep_link_bits = max_load;
  if (max_load > 0) stats_.superstep_link_max.add(static_cast<double>(max_load));
  return rounds;
}

std::uint64_t Cluster::deliver_pending() {
  const MachineId k = config_.k;
  // First sequential delivery on this cluster: allocate the dense link
  // table now. Runtime-driven workloads that always use the direct plane
  // never reach this line, so they never hold k*k ledger state.
  if (link_bits_.empty()) {
    link_bits_.assign(static_cast<std::size_t>(k) * k, 0);
  }

  // Count-then-bucket: size every inbox exactly before routing, so inbox
  // growth never reallocates mid-delivery and a warm cluster delivers an
  // entire superstep without touching the allocator.
  std::fill(inbox_counts_.begin(), inbox_counts_.end(), 0);
  for (const auto& msg : outbox_) ++inbox_counts_[msg.dst];
  for (MachineId m = 0; m < k; ++m) {
    if (inbox_counts_[m] > 0) inboxes_[m].reserve(inbox_counts_[m]);
  }

  for (const auto& msg : outbox_) {
    if (msg.src == msg.dst) {
      ++stats_.local_messages;
      inboxes_[msg.dst].push_back(msg);
      continue;
    }
    const std::uint64_t bits = msg.wire_bits();
    const std::uint64_t link = static_cast<std::uint64_t>(msg.src) * k + msg.dst;
    if (link_bits_[link] == 0) touched_links_.push_back(link);  // bits >= header > 0
    link_bits_[link] += bits;
    if (!cut_side_.empty() && cut_side_[msg.src] != cut_side_[msg.dst]) {
      stats_.cut_bits += bits;
    }
    stats_.total_bits += bits;
    stats_.sent_bits_by_machine[msg.src] += bits;
    stats_.received_bits_by_machine[msg.dst] += bits;
    ++stats_.messages;
    inboxes_[msg.dst].push_back(msg);
  }
  outbox_.clear();

  std::uint64_t max_load = 0;
  for (const std::uint64_t link : touched_links_) {
    max_load = std::max(max_load, link_bits_[link]);
    link_bits_[link] = 0;  // restore the all-zero invariant for next delivery
  }
  touched_links_.clear();

  const std::uint64_t rounds =
      max_load == 0 ? 0 : (max_load + config_.bandwidth_bits - 1) / config_.bandwidth_bits;
  stats_.rounds += rounds;
  ++stats_.supersteps;
  stats_.max_link_bits = std::max(stats_.max_link_bits, max_load);
  stats_.last_superstep_link_bits = max_load;
  if (max_load > 0) stats_.superstep_link_max.add(static_cast<double>(max_load));
  return rounds;
}

std::span<const Message> Cluster::inbox(MachineId m) const {
  KMM_CHECK(m < config_.k);
  return inboxes_[m];
}

void Cluster::clear_inbox(MachineId m) {
  KMM_CHECK(m < config_.k);
  inboxes_[m].clear();  // capacity retained; payload arenas recycle next delivery
}

void Cluster::inject_inbox(MachineId m, const Message& msg) {
  KMM_CHECK(m < config_.k && msg.dst == m);
  Message copy = msg;
  // Inbox lifetime for the payload: inbox_arenas_[m] is reset by the next
  // delivery to m (direct plane) or the next superstep() — the same instant
  // inboxes_[m] is cleared, so the copy can never outlive its words.
  copy.reintern(inbox_arenas_[m]);
  inboxes_[m].push_back(copy);
}

void Cluster::charge_rounds(std::uint64_t rounds) { stats_.rounds += rounds; }

void Cluster::restore_stats(const ClusterStats& stats) {
  KMM_CHECK_MSG(stats.sent_bits_by_machine.size() == config_.k &&
                    stats.received_bits_by_machine.size() == config_.k,
                "restored ledger's per-machine vectors must match the cluster width");
  stats_ = stats;
}

void Cluster::track_cut(std::vector<std::uint8_t> side) {
  KMM_CHECK_MSG(side.size() == config_.k, "cut side vector must cover all machines");
  cut_side_ = std::move(side);
}

}  // namespace kmm
