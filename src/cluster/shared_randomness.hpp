#pragma once
// Shared randomness à la Section 2.2.
//
// In the paper, machine M1 generates Θ~(n/k) true random bits and pushes
// them to everyone with a two-round relay (M1 sends one bit per link, the
// receivers broadcast), i.e. k-1 fresh common bits per 2 rounds. From those
// bits all machines construct the same d-wise independent hash functions
// (proxy assignment h_{j,ρ}) and the Θ(log n)-wise independent bits backing
// the sketches ([10] Corollary 1 + [5] Theorem 2.1).
//
// The simulator separates the two concerns:
//  * cost     — charge_distribution() charges the exact round count of the
//               relay protocol: 2 * ceil(bits / (k-1)) rounds;
//  * function — seeds derived deterministically from the master seed stand
//               in for the shared bits (see DESIGN.md §1 for why a PRF is a
//               faithful substitute at simulation scale).

#include <cstdint>

#include "cluster/cluster.hpp"
#include "util/random.hpp"

namespace kmm {

class SharedRandomness {
 public:
  /// `master_seed` models M1's private random tape.
  explicit SharedRandomness(std::uint64_t master_seed) noexcept : master_(master_seed) {}

  /// Rounds the Section 2.2 relay needs to make `bits` bits common
  /// knowledge on k machines: per two rounds, M1 pushes one link-load to
  /// its k-1 neighbors and they broadcast it, i.e. (k-1)*bandwidth bits
  /// become common per 2 rounds. (The paper narrates the protocol at bit
  /// granularity; with B-bit links the B bits pipeline in the same step,
  /// which is what its O~(n/k^2) accounting uses.)
  [[nodiscard]] static std::uint64_t distribution_rounds(std::uint64_t bits, MachineId k,
                                                         std::uint64_t bandwidth_bits);

  /// Charge the relay's cost on the cluster ledger and record it. Returns
  /// the rounds charged.
  std::uint64_t charge_distribution(Cluster& cluster, std::uint64_t bits);

  /// Deterministic shared seed for (phase, iteration, purpose); every
  /// machine computes the same value, as if read off the common bit string.
  [[nodiscard]] std::uint64_t seed(std::uint64_t phase, std::uint64_t iteration,
                                   std::uint64_t purpose) const noexcept {
    return split3(master_, phase * 0x10001 + iteration, purpose);
  }

  [[nodiscard]] std::uint64_t master() const noexcept { return master_; }
  [[nodiscard]] std::uint64_t bits_distributed() const noexcept { return bits_distributed_; }

 private:
  std::uint64_t master_;
  std::uint64_t bits_distributed_ = 0;
};

/// Purposes (third seed coordinate) used across the algorithms.
namespace seed_purpose {
inline constexpr std::uint64_t kProxy = 1;    // h_{j,rho}: component label -> machine
inline constexpr std::uint64_t kRank = 2;     // DRR component ranks
inline constexpr std::uint64_t kSketch = 3;   // l0-sampler hash/fingerprint seeds
inline constexpr std::uint64_t kSampling = 4; // min-cut edge sampling
}  // namespace seed_purpose

}  // namespace kmm
