#pragma once
// Message envelope for the k-machine simulator.
//
// `bits` is the logical wire size charged against link bandwidth. Senders
// set it to what a real encoding would use (e.g. a vertex id costs
// ceil(log2 n) bits, a sketch cell 61 bits); when left 0 it defaults to
// 64 bits per payload word. Every message additionally pays a fixed header
// (tag + framing), mirroring the O(log k) addressing overhead the paper
// accounts for in the Theorem 5 simulation.
//
// Wire-bit accounting is independent of physical payload storage. A payload
// of up to kInlinePayloadWords words lives inline in the Message struct;
// anything larger is spilled to a PayloadArena owned by the delivering
// Cluster (or, transiently, by a Runtime outbox shard) and referenced by
// pointer. Either way wire_bits() sees only the declared `bits` and the
// logical word count, so the ledger — rounds, total_bits, per-link maxima,
// cut bits — is bit-identical whether a payload happens to be inline,
// arena-backed, or (historically) heap-allocated. Readers never observe the
// storage class: payload() exposes every payload as a
// std::span<const std::uint64_t> whose lifetime matches the inbox it was
// delivered to (one superstep).

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>

#include "cluster/payload_arena.hpp"
#include "graph/partition.hpp"

namespace kmm {

inline constexpr std::uint64_t kMessageHeaderBits = 16;

/// Payloads at most this many words are stored inline (no arena traffic);
/// nearly every control/data message in src/core/ is 1-3 words.
inline constexpr std::size_t kInlinePayloadWords = 4;

struct Message {
  MachineId src = 0;
  MachineId dst = 0;
  std::uint32_t tag = 0;

 private:
  std::uint32_t words_ = 0;  // keeps the struct at exactly one cache line

 public:
  std::uint64_t bits = 0;  // payload bits excluding header; 0 = 64*words

  /// Build a message, spilling payloads longer than kInlinePayloadWords
  /// into `arena` (whose generation must outlive the message's delivery).
  static Message make(MachineId src, MachineId dst, std::uint32_t tag,
                      std::span<const std::uint64_t> payload, std::uint64_t bits,
                      PayloadArena& arena) {
    Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.tag = tag;
    msg.bits = bits;
    msg.words_ = static_cast<std::uint32_t>(payload.size());
    if (payload.size() <= kInlinePayloadWords) {
      std::copy(payload.begin(), payload.end(), msg.inline_.begin());
    } else {
      msg.external_ = arena.intern(payload).data();
    }
    return msg;
  }

  /// The payload as a read-only span; valid for the lifetime of the inbox
  /// the message was delivered to (i.e. until the next superstep).
  [[nodiscard]] std::span<const std::uint64_t> payload() const noexcept {
    return {words_ <= kInlinePayloadWords ? inline_.data() : external_, words_};
  }

  [[nodiscard]] std::size_t payload_words() const noexcept { return words_; }

  [[nodiscard]] std::uint64_t wire_bits() const noexcept {
    const std::uint64_t body = bits != 0 ? bits : 64 * words_;
    return body + kMessageHeaderBits;
  }

  /// Re-home a spilled payload into `arena` (no-op for inline payloads).
  /// Used when a message migrates between arena generations — e.g. from a
  /// Runtime shard arena into the Cluster's pending arena at batch merge.
  void reintern(PayloadArena& arena) {
    if (words_ > kInlinePayloadWords) {
      external_ = arena.intern({external_, words_}).data();
    }
  }

 private:
  std::array<std::uint64_t, kInlinePayloadWords> inline_{};
  const std::uint64_t* external_ = nullptr;
};

static_assert(sizeof(Message) == 64, "Message should stay one cache line");

}  // namespace kmm
