#pragma once
// Message envelope for the k-machine simulator.
//
// `bits` is the logical wire size charged against link bandwidth. Senders
// set it to what a real encoding would use (e.g. a vertex id costs
// ceil(log2 n) bits, a sketch cell 61 bits); when left 0 it defaults to
// 64 bits per payload word. Every message additionally pays a fixed header
// (tag + framing), mirroring the O(log k) addressing overhead the paper
// accounts for in the Theorem 5 simulation.

#include <cstdint>
#include <vector>

#include "graph/partition.hpp"

namespace kmm {

inline constexpr std::uint64_t kMessageHeaderBits = 16;

struct Message {
  MachineId src = 0;
  MachineId dst = 0;
  std::uint32_t tag = 0;
  std::vector<std::uint64_t> payload;
  std::uint64_t bits = 0;  // payload bits excluding header; 0 = 64*words

  [[nodiscard]] std::uint64_t wire_bits() const noexcept {
    const std::uint64_t body = bits != 0 ? bits : 64 * payload.size();
    return body + kMessageHeaderBits;
  }
};

}  // namespace kmm
