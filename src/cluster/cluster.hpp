#pragma once
// The k-machine model (Section 1.1) as a deterministic synchronous-round
// simulator.
//
// k >= 2 machines are pairwise connected; each *directed* link carries
// `bandwidth_bits` per round (the paper's O(polylog n) per-link budget; a
// bidirectional link is two independent directions, a constant-factor
// convention). Local computation is free.
//
// Algorithms run as a sequence of *supersteps*: every machine reads its
// inbox, computes, and enqueues messages; `superstep()` then delivers
// everything and charges
//
//     rounds = max over directed links  ceil(bits_on_link / bandwidth_bits)
//
// which is exactly how the paper costs a message schedule (Lemmas 1, 3-5:
// "all messages are delivered within O~(n/k^2) rounds" = the most-loaded
// link needs that many rounds). Self-addressed messages are local and free.
//
// The engine keeps a full ledger (rounds, messages, bits, per-superstep
// per-link maxima, per-machine traffic) — the measurements every benchmark
// in EXPERIMENTS.md is built on.
//
// Execution paths: algorithms either send() directly (sequential) or run on
// the src/runtime/ parallel engine, which buffers sends in per-source shards
// and merges them here via enqueue_batch() in machine order. Both paths
// funnel into the same deliver_pending() accounting, so the ledger is by
// construction identical however the local computation was scheduled.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "cluster/message.hpp"
#include "cluster/payload_arena.hpp"
#include "util/codec.hpp"
#include "util/stats.hpp"

namespace kmm {

struct ClusterConfig {
  MachineId k = 2;
  std::uint64_t bandwidth_bits = 256;  // per directed link per round

  /// The default budget used throughout tests and benches:
  /// B = ceil(log2 n)^2 bits per link per round — the canonical concrete
  /// choice of the model's "O(polylog n) bits per link per round".
  static ClusterConfig for_graph(std::size_t n, MachineId k);
};

struct ClusterStats {
  std::uint64_t rounds = 0;           // total rounds charged
  std::uint64_t supersteps = 0;       // number of superstep() calls that sent data
  std::uint64_t messages = 0;         // cross-machine messages delivered
  std::uint64_t local_messages = 0;   // self-addressed (free) messages
  std::uint64_t total_bits = 0;       // cross-machine wire bits
  std::uint64_t max_link_bits = 0;    // largest per-link load seen in one superstep
  std::uint64_t cut_bits = 0;         // bits crossing the registered machine cut
  Accumulator superstep_link_max;     // distribution of per-superstep max link loads
  std::vector<std::uint64_t> sent_bits_by_machine;
  std::vector<std::uint64_t> received_bits_by_machine;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] MachineId k() const noexcept { return config_.k; }
  [[nodiscard]] std::uint64_t bandwidth_bits() const noexcept { return config_.bandwidth_bits; }

  /// Enqueue a message for the next superstep. The payload is copied —
  /// inline into the Message when it fits, into the pending arena otherwise
  /// — so the caller's buffer may be reused immediately.
  void send(MachineId src, MachineId dst, std::uint32_t tag,
            std::span<const std::uint64_t> payload, std::uint64_t bits = 0);
  void send(MachineId src, MachineId dst, std::uint32_t tag,
            std::initializer_list<std::uint64_t> payload, std::uint64_t bits = 0) {
    send(src, dst, tag, std::span<const std::uint64_t>(payload.begin(), payload.size()),
         bits);
  }

  /// Move a pre-ordered batch of messages into the pending outbox —
  /// equivalent to send() per message in batch order. Used by the parallel
  /// Runtime to merge per-source outbox shards after the superstep barrier;
  /// the batch is left empty (capacity retained for reuse). Spilled payloads
  /// are re-homed from the shard's arena into the cluster's pending arena,
  /// so the shard may be recycled as soon as the call returns.
  void enqueue_batch(std::vector<Message>&& batch);

  /// Deliver all enqueued messages; charge rounds; returns rounds charged.
  /// After the call, inbox(m) holds machine m's received messages (in
  /// deterministic send order) until the next superstep.
  std::uint64_t superstep();

  [[nodiscard]] std::span<const Message> inbox(MachineId m) const;

  /// Charge rounds for a protocol whose cost is accounted analytically
  /// (e.g. the Section 2.2 shared-randomness distribution).
  void charge_rounds(std::uint64_t rounds);

  /// Register a machine bipartition; from then on stats().cut_bits counts
  /// every wire bit crossing it. Used by the Section 4 two-party (Alice /
  /// Bob) simulation to measure the communication-complexity cost of a
  /// k-machine protocol. `side` must have one entry (0 or 1) per machine.
  void track_cut(std::vector<std::uint8_t> side);

  [[nodiscard]] const ClusterStats& stats() const noexcept { return stats_; }

  /// Number of directed links, k(k-1).
  [[nodiscard]] std::uint64_t directed_links() const noexcept {
    return static_cast<std::uint64_t>(config_.k) * (config_.k - 1);
  }

 private:
  /// The single delivery/accounting path: routes every pending message to
  /// its inbox and updates the full ledger. Both the sequential send() path
  /// and the runtime's enqueue_batch() path terminate here.
  std::uint64_t deliver_pending();

  ClusterConfig config_;
  std::vector<Message> outbox_;                 // pending, in send order
  std::vector<std::vector<Message>> inboxes_;   // per machine, current superstep
  std::vector<std::uint8_t> cut_side_;          // empty = no cut tracked
  ClusterStats stats_;

  // Double-buffered payload storage: sends spill into pending_arena_;
  // superstep() recycles live_arena_ (last superstep's inbox payloads) and
  // swaps, so delivered payloads stay valid exactly as long as the inbox
  // they sit in. Chunk memory is stable across the swap, so no Message
  // pointer is disturbed.
  PayloadArena pending_arena_;
  PayloadArena live_arena_;

  // Flat k*k per-directed-link load table plus first-touch list; entries
  // are zeroed again after every delivery, so the steady state allocates
  // nothing and max-load scanning is deterministic (first-touch order).
  std::vector<std::uint64_t> link_bits_;
  std::vector<std::uint64_t> touched_links_;
  std::vector<std::uint32_t> inbox_counts_;  // per-destination count scratch
};

}  // namespace kmm
