#pragma once
// The k-machine model (Section 1.1) as a deterministic synchronous-round
// simulator.
//
// k >= 2 machines are pairwise connected; each *directed* link carries
// `bandwidth_bits` per round (the paper's O(polylog n) per-link budget; a
// bidirectional link is two independent directions, a constant-factor
// convention). Local computation is free.
//
// Algorithms run as a sequence of *supersteps*: every machine reads its
// inbox, computes, and enqueues messages; `superstep()` then delivers
// everything and charges
//
//     rounds = max over directed links  ceil(bits_on_link / bandwidth_bits)
//
// which is exactly how the paper costs a message schedule (Lemmas 1, 3-5:
// "all messages are delivered within O~(n/k^2) rounds" = the most-loaded
// link needs that many rounds). Self-addressed messages are local and free.
//
// The engine keeps a full ledger (rounds, messages, bits, per-superstep
// per-link maxima, per-machine traffic) — the measurements every benchmark
// in EXPERIMENTS.md is built on.
//
// Execution paths: algorithms either send() directly (sequential; staged
// sends are delivered and accounted by deliver_pending() in one ordered
// pass) or run on the src/runtime/ parallel engine, whose per-source shards
// are delivered through the direct per-destination plane
// (deliver_shards_begin / deliver_shard_to / deliver_shards_finish): k
// concurrent tasks move each destination's buckets straight into its inbox
// and the ledger partials are reduced in ascending link order afterwards.
// The two paths share the same accounting rules over the same per-link
// quantities, so the ledger is by construction bit-identical however the
// local computation was scheduled — tests/test_golden_stats.cpp pins it.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "cluster/message.hpp"
#include "cluster/payload_arena.hpp"
#include "util/codec.hpp"
#include "util/expected.hpp"
#include "util/stats.hpp"

namespace kmm {

struct ClusterConfig {
  MachineId k = 2;
  std::uint64_t bandwidth_bits = 256;  // per directed link per round

  /// The default budget used throughout tests and benches:
  /// B = ceil(log2 n)^2 bits per link per round — the canonical concrete
  /// choice of the model's "O(polylog n) bits per link per round".
  static ClusterConfig for_graph(std::size_t n, MachineId k);
};

/// One machine's private send buffer in sharded (parallel runtime) mode:
/// per-destination message buckets plus the arena backing spilled payloads.
/// Bucketing by destination at send time is what lets the delivery plane
/// run as k independent per-destination tasks that move messages without
/// scanning: destination d's task walks buckets[d] of every shard in
/// ascending source order, which reproduces the sequential global send
/// order as seen by inbox d exactly. clear() retains the capacity of every
/// bucket and the arena, so a warm shard absorbs a whole superstep without
/// allocating.
struct OutboxShard {
  std::vector<std::vector<Message>> buckets;  // [dst] -> messages in send order
  PayloadArena arena;

  void resize(MachineId k) { buckets.resize(k); }

  void clear() noexcept {
    for (auto& bucket : buckets) bucket.clear();
    arena.reset();
  }
};

struct ClusterStats {
  std::uint64_t rounds = 0;           // total rounds charged
  std::uint64_t supersteps = 0;       // number of superstep() calls that sent data
  std::uint64_t messages = 0;         // cross-machine messages delivered
  std::uint64_t local_messages = 0;   // self-addressed (free) messages
  std::uint64_t total_bits = 0;       // cross-machine wire bits
  std::uint64_t max_link_bits = 0;    // largest per-link load seen in one superstep
  std::uint64_t cut_bits = 0;         // bits crossing the registered machine cut
  std::uint64_t last_superstep_link_bits = 0;  // most-loaded link of the latest superstep
  Accumulator superstep_link_max;     // distribution of per-superstep max link loads
  std::vector<std::uint64_t> sent_bits_by_machine;
  std::vector<std::uint64_t> received_bits_by_machine;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  /// Validating factory for configs of external origin (CLI flags, service
  /// requests): k < 2 or a zero bandwidth come back as a BuildError instead
  /// of aborting.
  [[nodiscard]] static Expected<Cluster, BuildError> make(ClusterConfig config);

  [[nodiscard]] MachineId k() const noexcept { return config_.k; }
  [[nodiscard]] std::uint64_t bandwidth_bits() const noexcept { return config_.bandwidth_bits; }

  /// Enqueue a message for the next superstep. The payload is copied —
  /// inline into the Message when it fits, into the pending arena otherwise
  /// — so the caller's buffer may be reused immediately.
  void send(MachineId src, MachineId dst, std::uint32_t tag,
            std::span<const std::uint64_t> payload, std::uint64_t bits = 0);
  void send(MachineId src, MachineId dst, std::uint32_t tag,
            std::initializer_list<std::uint64_t> payload, std::uint64_t bits = 0) {
    send(src, dst, tag, std::span<const std::uint64_t>(payload.begin(), payload.size()),
         bits);
  }

  /// Move a pre-ordered batch of messages into the pending outbox —
  /// equivalent to send() per message in batch order. Used by the parallel
  /// Runtime to merge per-source outbox shards after the superstep barrier;
  /// the batch is left empty (capacity retained for reuse). Spilled payloads
  /// are re-homed from the shard's arena into the cluster's pending arena,
  /// so the shard may be recycled as soon as the call returns.
  void enqueue_batch(std::vector<Message>&& batch);

  /// Deliver all enqueued messages; charge rounds; returns rounds charged.
  /// After the call, inbox(m) holds machine m's received messages (in
  /// deterministic send order) until the next superstep.
  std::uint64_t superstep();

  /// True when send() / enqueue_batch() messages are staged for the next
  /// superstep(). The direct delivery plane below requires an empty staging
  /// outbox; the Runtime falls back to the merge path when this holds.
  [[nodiscard]] bool has_staged() const noexcept { return !outbox_.empty(); }

  /// Direct shard->inbox delivery plane (the parallel path). Protocol:
  ///   deliver_shards_begin(shards)   caller thread, after the handler
  ///                                  barrier; shards[s] holds machine s's
  ///                                  sends bucketed by destination;
  ///   deliver_shard_to(d)            once per destination — safe to run
  ///                                  the k calls concurrently (each task
  ///                                  touches only destination-d state and
  ///                                  the k*k link table's column d);
  ///   deliver_shards_finish()        caller thread, after all per-
  ///                                  destination tasks completed; tree-
  ///                                  folds the per-destination ledger
  ///                                  partials pairwise and returns the
  ///                                  rounds charged.
  /// Observationally identical — inbox contents, inbox order, and the full
  /// ClusterStats ledger bit-for-bit — to enqueue_batch() per shard in
  /// ascending source order followed by superstep(): every reduced quantity
  /// is an unsigned sum or maximum of exactly the per-link values the
  /// sequential pass accumulates message-by-message, so the hierarchical
  /// fold order cannot change any ledger bit.
  void deliver_shards_begin(std::span<OutboxShard> shards);
  void deliver_shard_to(MachineId dst);
  std::uint64_t deliver_shards_finish();

  [[nodiscard]] std::span<const Message> inbox(MachineId m) const;

  /// Fault-plane recovery surface: drop machine m's current inbox (what a
  /// crash loses) and re-inject a retransmitted message into it. Injection
  /// is ledger-free — the bits were already charged when the message was
  /// delivered; the plane accounts the retransmission analytically via
  /// charge_rounds(). The payload is re-homed into the inbox's arena, so
  /// the injected message lives exactly as long as the inbox it sits in.
  void clear_inbox(MachineId m);
  void inject_inbox(MachineId m, const Message& msg);

  /// Charge rounds for a protocol whose cost is accounted analytically
  /// (e.g. the Section 2.2 shared-randomness distribution).
  void charge_rounds(std::uint64_t rounds);

  /// Register a machine bipartition; from then on stats().cut_bits counts
  /// every wire bit crossing it. Used by the Section 4 two-party (Alice /
  /// Bob) simulation to measure the communication-complexity cost of a
  /// k-machine protocol. `side` must have one entry (0 or 1) per machine.
  void track_cut(std::vector<std::uint8_t> side);

  [[nodiscard]] const ClusterStats& stats() const noexcept { return stats_; }

  /// Durable-restart seam: overwrite the ledger with a snapshot recovered
  /// from a checkpoint frame. Only the RecoveryManager path calls this — a
  /// resumed process continues accumulating on top of the restored values,
  /// which is what makes the final ledger bit-identical to an uninterrupted
  /// run. The per-machine vectors must match this cluster's width.
  void restore_stats(const ClusterStats& stats);

  /// Number of directed links, k(k-1).
  [[nodiscard]] std::uint64_t directed_links() const noexcept {
    return static_cast<std::uint64_t>(config_.k) * (config_.k - 1);
  }

 private:
  /// The sequential delivery/accounting pass: routes every staged message
  /// to its inbox and updates the full ledger in one ordered scan. The
  /// send() path and the runtime's enqueue_batch() fallback terminate here;
  /// the direct plane above implements the same rules destination-parallel.
  std::uint64_t deliver_pending();

  ClusterConfig config_;
  std::vector<Message> outbox_;                 // pending, in send order
  std::vector<std::vector<Message>> inboxes_;   // per machine, current superstep
  std::vector<std::uint8_t> cut_side_;          // empty = no cut tracked
  ClusterStats stats_;

  // Double-buffered payload storage: sends spill into pending_arena_;
  // superstep() recycles live_arena_ (last superstep's inbox payloads) and
  // swaps, so delivered payloads stay valid exactly as long as the inbox
  // they sit in. Chunk memory is stable across the swap, so no Message
  // pointer is disturbed.
  PayloadArena pending_arena_;
  PayloadArena live_arena_;

  // Flat k*k per-directed-link load table plus first-touch list, used only
  // by the sequential deliver_pending() path and allocated LAZILY on its
  // first use — runtime-driven workloads that always take the direct plane
  // never pay the dense table. Entries are zeroed again after every
  // delivery, so the steady state allocates nothing and max-load scanning
  // is deterministic (first-touch order).
  std::vector<std::uint64_t> link_bits_;
  std::vector<std::uint64_t> touched_links_;
  std::vector<std::uint32_t> inbox_counts_;  // per-destination count scratch

  // Direct delivery plane state. Each inbox owns an arena for the spilled
  // payloads delivered to it: destination d's task re-homes shard-arena
  // payloads into inbox_arenas_[d], so payload lifetime equals inbox
  // lifetime and the shards are reusable the moment delivery ends.
  //
  // Ledger partials are SPARSE per-destination rows rather than a dense
  // dst-major k*k table: destination d's task appends one (src, bits) pair
  // per source that actually sent to it (ascending src, since that is the
  // bucket walk order) plus its scalar message counts. Tasks write disjoint
  // rows, so the parallel phase stays contention-free, and the footprint is
  // O(touched links), not O(k^2) — the flat table is no longer the ceiling
  // at large k. finish() reduces the k rows by a pairwise TREE-FOLD
  // (fold_nodes_ holds the current level; merges combine scalar aggregates
  // and merge the ascending per-source sent lists): every folded quantity
  // is a commutative unsigned sum or maximum, so the tree order reproduces
  // the sequential ledger bit-for-bit. All buffers retain capacity — a warm
  // cluster finishes a superstep without allocating.
  struct DeliveryPartial {
    std::vector<std::pair<MachineId, std::uint64_t>> link_bits;  // ascending src
    std::uint64_t cross = 0;  // cross-machine messages into this destination
    std::uint64_t local = 0;  // self-addressed messages
  };
  struct LedgerFold {
    std::uint64_t total = 0;     // wire bits in this subtree
    std::uint64_t max_link = 0;  // most-loaded link in this subtree
    std::uint64_t cut = 0;       // bits crossing the tracked cut
    std::uint64_t cross = 0;
    std::uint64_t local = 0;
    std::vector<std::pair<MachineId, std::uint64_t>> sent;  // per-source bits, ascending
  };
  void fold_merge(LedgerFold& into, LedgerFold& from);

  std::span<OutboxShard> delivery_shards_;       // valid between begin/finish
  std::vector<PayloadArena> inbox_arenas_;       // one per destination
  std::vector<DeliveryPartial> delivery_partials_;  // one sparse row per destination
  std::vector<LedgerFold> fold_nodes_;           // tree-fold working set (k leaves)
  std::vector<std::pair<MachineId, std::uint64_t>> fold_merge_tmp_;
};

}  // namespace kmm
