#pragma once
// Randomized proxy computation (Section 2.2, Lemma 1).
//
// Each component label is mapped to a uniformly pseudo-random machine by a
// hash every machine can evaluate locally (the shared h_{j,rho}). A fresh
// ProxyMap per (phase, iteration) keeps proxy choices independent across
// iterations, as Lemma 5 requires.

#include <cstdint>

#include "graph/partition.hpp"
#include "util/random.hpp"

namespace kmm {

class ProxyMap {
 public:
  ProxyMap(std::uint64_t seed, MachineId k) noexcept : seed_(seed), k_(k) {}

  /// Degenerate map sending every component to one fixed machine — the
  /// "trivial strategy" of Section 1.2 (ship all sketches to a coordinator)
  /// that congests one node into O~(n/k) rounds. Exists for the ablation
  /// experiments; never used by the real algorithm. Out of line (proxy.cpp);
  /// cold construction path.
  static ProxyMap fixed(MachineId coordinator, MachineId k) noexcept;

  /// The proxy machine responsible for `label` this iteration. Stays
  /// header-inline: it runs once per routed message (sketches, handoffs,
  /// directives, relabels) and the build has no LTO to recover the call.
  [[nodiscard]] MachineId proxy_of(std::uint64_t label) const noexcept {
    if (fixed_) return coordinator_;
    return static_cast<MachineId>(split(seed_, label) % k_);
  }

  [[nodiscard]] MachineId machines() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] bool is_fixed() const noexcept { return fixed_; }

 private:
  std::uint64_t seed_;
  MachineId k_;
  bool fixed_ = false;
  MachineId coordinator_ = 0;
};

}  // namespace kmm
