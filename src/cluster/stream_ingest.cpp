#include "cluster/stream_ingest.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace kmm {

namespace {

unsigned resolve_ingest_threads(unsigned requested) {
  return requested != 0 ? requested : std::max(1u, std::thread::hardware_concurrency());
}

/// Projected resident bytes of machine i's shard state: its adjacency slots
/// plus the vstart/vdeg index entries of its hosted vertices — the per-
/// machine state the budget caps.
std::size_t projected_machine_bytes(std::uint64_t slots, std::size_t hosted,
                                    bool weighted) {
  const std::size_t per_slot = sizeof(Vertex) + (weighted ? sizeof(Weight) : 0);
  const std::size_t per_vertex = sizeof(std::uint64_t) + sizeof(std::uint32_t);
  return static_cast<std::size_t>(slots) * per_slot + hosted * per_vertex;
}

}  // namespace

Expected<DistributedGraph, IngestError> stream_ingest(std::size_t n,
                                                      VertexPartition partition,
                                                      const gen::EdgeStream& stream,
                                                      const StreamIngestOptions& opts) {
  KMM_CHECK_MSG(partition.num_vertices() == n, "stream_ingest: partition size must match n");
  const MachineId k = partition.machines();

  std::optional<ThreadPool> owned;
  ThreadPool* pool = opts.pool;
  if (pool == nullptr) pool = &owned.emplace(resolve_ingest_threads(opts.threads));

  // COUNT: replay the stream, tallying candidate degrees. cnt doubles as the
  // fill pass's per-vertex slot cursor afterwards, so the whole pipeline
  // carries one 4-byte atomic per vertex of transient state.
  std::vector<std::atomic<std::uint32_t>> cnt(n);
  std::atomic<bool> any_weighted{false};
  stream([&](std::size_t, std::span<const WeightedEdge> edges) {
    bool saw_weight = false;
    for (const auto& e : edges) {
      KMM_CHECK_MSG(e.u < n && e.v < n && e.u != e.v,
                    "stream_ingest: streamed edge out of range or self-loop");
      cnt[e.u].fetch_add(1, std::memory_order_relaxed);
      cnt[e.v].fetch_add(1, std::memory_order_relaxed);
      saw_weight |= e.w != 1;
    }
    if (saw_weight) any_weighted.store(true, std::memory_order_relaxed);
  });
  const bool weighted = any_weighted.load(std::memory_order_relaxed);

  // LAYOUT: per-machine slot layout over ascending vertex ids — the same
  // ascending hosted order the finalize pass walks, so a vertex's slots sit
  // after every lower-id hosted sibling's.
  ShardedAdjacency sharded;
  sharded.n = n;
  sharded.vstart.resize(n);
  sharded.vdeg.assign(n, 0);
  std::vector<std::uint64_t> machine_slots(k, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const MachineId mi = partition.home(static_cast<Vertex>(v));
    sharded.vstart[v] = machine_slots[mi];
    machine_slots[mi] += cnt[v].load(std::memory_order_relaxed);
  }

  // Budget check BEFORE allocating any shard: return a structured error
  // naming the overflowing machine instead of OOM-ing the host (the CLI
  // prints the message and exits nonzero; library callers can recover).
  if (opts.budget.bytes_per_machine != 0) {
    std::vector<std::size_t> loads;
    partition.loads(loads);
    for (MachineId i = 0; i < k; ++i) {
      const std::size_t need = projected_machine_bytes(machine_slots[i], loads[i], weighted);
      if (need > opts.budget.bytes_per_machine) {
        char msg[256];
        std::snprintf(msg, sizeof msg,
                      "stream_ingest: machine %u needs %zu bytes but the per-machine "
                      "memory budget is %zu bytes (n=%zu, k=%u) — raise --mem-budget or "
                      "add machines",
                      i, need, opts.budget.bytes_per_machine, n, k);
        return Expected<DistributedGraph, IngestError>::err(IngestError{msg});
      }
    }
  }

  // Scheduled ingest allocation failures (fault plane): deterministic
  // stand-in for a machine OOM-ing while materializing its shard.
  if (opts.fault != nullptr) {
    for (MachineId i = 0; i < k; ++i) {
      if (opts.fault->ingest_alloc_fails(i)) {
        char msg[192];
        std::snprintf(msg, sizeof msg,
                      "stream_ingest: simulated allocation failure at machine %u "
                      "(fault schedule)",
                      i);
        return Expected<DistributedGraph, IngestError>::err(IngestError{msg});
      }
    }
  }

  sharded.shards.resize(k);
  for (MachineId i = 0; i < k; ++i) {
    sharded.shards[i].to.resize(machine_slots[i]);
    if (weighted) sharded.shards[i].weight.resize(machine_slots[i]);
  }

  // FILL: replay the stream, claiming slots with per-vertex atomic cursors.
  // Slot order within a vertex is thread-dependent; FINALIZE's sort erases it.
  for (auto& c : cnt) c.store(0, std::memory_order_relaxed);
  const auto place = [&](Vertex src, Vertex dst, Weight w) {
    MachineShard& shard = sharded.shards[partition.home(src)];
    const std::uint64_t slot =
        sharded.vstart[src] + cnt[src].fetch_add(1, std::memory_order_relaxed);
    shard.to[slot] = dst;
    if (weighted) shard.weight[slot] = w;
  };
  stream([&](std::size_t, std::span<const WeightedEdge> edges) {
    for (const auto& e : edges) {
      place(e.u, e.v, e.w);
      place(e.v, e.u, e.w);
    }
  });

  // FINALIZE: per vertex, sort slots ascending by neighbor id, drop
  // adjacent duplicate candidates, compact the shard in place (the write
  // cursor never passes the read cursor: dedup only shrinks). One machine
  // per task; every vertex belongs to exactly one machine, so the passes
  // are race-free and the result is canonical for any schedule.
  std::vector<std::uint64_t> final_slots(k, 0);
  std::vector<std::vector<Vertex>> hosted_scratch(pool->size());
  std::vector<std::vector<HalfEdge>> edge_scratch(pool->size());
  pool->parallel_for(k, [&](std::size_t mi) {
    const unsigned lane = ThreadPool::current_lane();
    auto& hosted = hosted_scratch[lane];
    auto& tmp = edge_scratch[lane];
    partition.hosted_by(static_cast<MachineId>(mi), hosted);
    MachineShard& shard = sharded.shards[mi];
    std::uint64_t wc = 0;
    for (const Vertex v : hosted) {
      const std::uint64_t rs = sharded.vstart[v];
      const std::uint32_t rc = cnt[v].load(std::memory_order_relaxed);
      tmp.resize(rc);
      for (std::uint32_t j = 0; j < rc; ++j) {
        tmp[j] = HalfEdge{shard.to[rs + j], weighted ? shard.weight[rs + j] : Weight{1}};
      }
      std::sort(tmp.begin(), tmp.end(),
                [](const HalfEdge& a, const HalfEdge& b) { return a.to < b.to; });
      sharded.vstart[v] = wc;
      std::uint32_t deg = 0;
      for (std::uint32_t j = 0; j < rc; ++j) {
        if (j > 0 && tmp[j].to == tmp[j - 1].to) {
          // Stream contract rule 5: duplicate candidates carry identical
          // weights, so dropping either is the same edge set.
          KMM_DCHECK(tmp[j].weight == tmp[j - 1].weight);
          continue;
        }
        shard.to[wc] = tmp[j].to;
        if (weighted) shard.weight[wc] = tmp[j].weight;
        ++wc;
        ++deg;
      }
      sharded.vdeg[v] = deg;
    }
    shard.to.resize(wc);
    shard.to.shrink_to_fit();
    if (weighted) {
      shard.weight.resize(wc);
      shard.weight.shrink_to_fit();
    }
    final_slots[mi] = wc;
  });
  for (MachineId i = 0; i < k; ++i) sharded.num_half_edges += final_slots[i];
  KMM_CHECK_MSG(sharded.num_half_edges % 2 == 0,
                "stream_ingest: half-edge count must be even");

  return DistributedGraph(std::move(sharded), std::move(partition), pool);
}

}  // namespace kmm
