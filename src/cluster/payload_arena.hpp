#pragma once
// Bump arena for message payloads that don't fit inline in a Message.
//
// Chunked so allocation never moves existing data: alloc() hands out stable
// pointers valid until the next reset(), and reset() rewinds to the start
// while keeping every chunk's memory, so a warm arena allocates nothing in
// steady state. One generation of an arena backs one superstep's worth of
// spilled payloads; the Cluster keeps two (pending / live) and swaps them
// per superstep, the Runtime keeps one per outbox shard.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace kmm {

class PayloadArena {
 public:
  /// Reserve `words` contiguous uint64s. The returned pointer is stable
  /// until reset() — chunks are never reallocated, only appended.
  [[nodiscard]] std::uint64_t* alloc(std::size_t words) {
    while (active_ < chunks_.size() && used_ + words > chunks_[active_].capacity) {
      ++active_;
      used_ = 0;
    }
    if (active_ == chunks_.size()) {
      const std::size_t cap = std::max(words, kChunkWords);
      chunks_.push_back(Chunk{std::make_unique<std::uint64_t[]>(cap), cap});
      used_ = 0;
    }
    std::uint64_t* p = chunks_[active_].data.get() + used_;
    used_ += words;
    return p;
  }

  /// Copy `words` into the arena and return the stable copy.
  [[nodiscard]] std::span<const std::uint64_t> intern(std::span<const std::uint64_t> words) {
    std::uint64_t* p = alloc(words.size());
    std::copy(words.begin(), words.end(), p);
    return {p, words.size()};
  }

  /// Rewind to empty, retaining all chunk memory for reuse. Invalidates
  /// every pointer previously returned by alloc().
  void reset() noexcept {
    active_ = 0;
    used_ = 0;
  }

  /// Words of chunk capacity currently held (diagnostics only).
  [[nodiscard]] std::size_t capacity_words() const noexcept {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.capacity;
    return total;
  }

 private:
  static constexpr std::size_t kChunkWords = 1 << 12;  // 32 KiB chunks

  struct Chunk {
    std::unique_ptr<std::uint64_t[]> data;
    std::size_t capacity;
  };

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunk currently being filled
  std::size_t used_ = 0;    // words used in chunks_[active_]
};

}  // namespace kmm
