#include "cluster/proxy.hpp"

// ProxyMap is header-only; this translation unit exists to anchor the
// library target (and any future out-of-line helpers).
