#include "cluster/proxy.hpp"

namespace kmm {

// Construction paths live here; the per-message proxy_of() lookup stays
// inline in the header (see its comment).

ProxyMap ProxyMap::fixed(MachineId coordinator, MachineId k) noexcept {
  ProxyMap p(0, k);
  p.fixed_ = true;
  p.coordinator_ = coordinator;
  return p;
}

}  // namespace kmm
