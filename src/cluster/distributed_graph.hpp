#pragma once
// A graph distributed over k machines under a vertex partition.
//
// Mirrors the model's initial knowledge (Section 1.1): the home machine of v
// knows v's incident edges, their weights, and — because RVP is realized by
// hashing — the home machine of every neighbor. Algorithms must only touch
// adjacency through the hosting machine; the per-machine vertex lists below
// are the iteration order that discipline uses.
//
// Two backends share this interface:
//   * materialized — a non-owning view over a global `Graph` (the classic
//     small-tier path; graph() exposes the whole graph to the referee-style
//     verifiers).
//   * shard-direct — per-machine SoA adjacency shards built by the streaming
//     ingest plane (cluster/stream_ingest.hpp) without ever holding a global
//     edge list or Graph. graph() hard-fails here: no machine (and no
//     referee) ever saw the global graph, which is the point of the
//     n >= 10^8 tier. Weights are stored only when some edge weight differs
//     from 1, so the unweighted tier pays 4 bytes per half-edge.
// Both backends present neighbors(v) sorted ascending by neighbor id, so
// algorithm traffic — and therefore the ClusterStats ledger — is
// bit-identical whichever backend hosts the graph.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace kmm {

namespace detail {
/// Weight every unweighted half-edge reads through a stride-0 pointer.
inline constexpr Weight kUnitWeight = 1;
}  // namespace detail

/// Per-machine slice of a shard-direct adjacency: the `to` ids (and weights,
/// when the graph is weighted) of every half-edge whose source vertex the
/// machine hosts, grouped by source in ascending hosted-vertex order.
struct MachineShard {
  std::vector<Vertex> to;
  std::vector<Weight> weight;  // parallel to `to`; empty when all weights == 1

  [[nodiscard]] std::size_t bytes() const noexcept {
    return to.size() * sizeof(Vertex) + weight.size() * sizeof(Weight);
  }
};

/// Shard-direct adjacency storage: k machine shards plus the global
/// per-vertex index into them (vstart/vdeg live with the vertex's home
/// machine conceptually; they are stored flat for O(1) lookup).
struct ShardedAdjacency {
  std::size_t n = 0;
  std::size_t num_half_edges = 0;        // sum of degrees == 2m
  std::vector<std::uint64_t> vstart;     // n: offset of v's slots in its home shard
  std::vector<std::uint32_t> vdeg;       // n: degree of v
  std::vector<MachineShard> shards;      // one per machine
};

static_assert(sizeof(HalfEdge) == 16, "NeighborView strides assume padded AoS HalfEdge");

/// Adjacency range abstracting over the two storage layouts: AoS HalfEdge
/// (materialized Graph) and SoA to/weight shard arrays (stride 0 over a
/// static unit weight when unweighted). Iteration yields HalfEdge by value;
/// `for (const auto& he : dg.neighbors(v))` compiles unchanged against
/// either backend.
class NeighborView {
 public:
  class iterator {
   public:
    using value_type = HalfEdge;
    using difference_type = std::ptrdiff_t;

    [[nodiscard]] HalfEdge operator*() const noexcept { return HalfEdge{*to_, *w_}; }
    iterator& operator++() noexcept {
      to_ += to_step_;
      w_ += w_step_;
      return *this;
    }
    iterator operator++(int) noexcept {
      iterator old = *this;
      ++*this;
      return old;
    }
    [[nodiscard]] bool operator==(const iterator& o) const noexcept { return to_ == o.to_; }
    [[nodiscard]] bool operator!=(const iterator& o) const noexcept { return to_ != o.to_; }

   private:
    friend class NeighborView;
    iterator(const Vertex* to, const Weight* w, std::uint32_t to_step,
             std::uint32_t w_step) noexcept
        : to_(to), w_(w), to_step_(to_step), w_step_(w_step) {}
    const Vertex* to_;
    const Weight* w_;
    std::uint32_t to_step_, w_step_;
  };

  NeighborView(const Vertex* to, const Weight* w, std::uint32_t to_step,
               std::uint32_t w_step, std::size_t count) noexcept
      : to_(to), w_(w), to_step_(to_step), w_step_(w_step), count_(count) {}

  /// The materialized layout: a span of padded AoS HalfEdge records.
  [[nodiscard]] static NeighborView over(std::span<const HalfEdge> aos) noexcept {
    const auto* base = reinterpret_cast<const std::byte*>(aos.data());
    return NeighborView(reinterpret_cast<const Vertex*>(base + offsetof(HalfEdge, to)),
                        reinterpret_cast<const Weight*>(base + offsetof(HalfEdge, weight)),
                        sizeof(HalfEdge) / sizeof(Vertex), sizeof(HalfEdge) / sizeof(Weight),
                        aos.size());
  }

  [[nodiscard]] iterator begin() const noexcept { return {to_, w_, to_step_, w_step_}; }
  [[nodiscard]] iterator end() const noexcept {
    return {to_ + count_ * to_step_, w_, to_step_, w_step_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  const Vertex* to_;
  const Weight* w_;
  std::uint32_t to_step_, w_step_;
  std::size_t count_;
};

class DistributedGraph {
 public:
  /// Materialized backend: a non-owning view over `graph` (which must
  /// outlive this object). Builds the per-machine hosted-vertex lists
  /// (CSR-flattened: one offset table plus one flat vertex array, so
  /// construction allocates exactly twice however large k is). With a pool,
  /// the home() evaluation and the scatter run chunked in parallel —
  /// two-pass, per-chunk histograms, no atomics — producing the identical
  /// flat array for every thread count.
  explicit DistributedGraph(const Graph& graph, VertexPartition partition,
                            ThreadPool* pool = nullptr);

  /// Validating factory for externally assembled (graph, partition) pairs:
  /// a size mismatch comes back as a BuildError instead of aborting.
  [[nodiscard]] static Expected<DistributedGraph, BuildError> make(
      const Graph& graph, VertexPartition partition, ThreadPool* pool = nullptr);

  /// Shard-direct backend: takes ownership of adjacency shards built by the
  /// streaming ingest plane. Same hosted-list construction; graph() is
  /// unavailable.
  DistributedGraph(ShardedAdjacency sharded, VertexPartition partition,
                   ThreadPool* pool = nullptr);

  /// True when a global Graph backs this view. Referee-style verifiers and
  /// global-recourse algorithms (mincut sampling, 2-ECC residual builds)
  /// require it; model-faithful algorithms must not.
  [[nodiscard]] bool materialized() const noexcept { return graph_ != nullptr; }

  /// The global graph — materialized backend only (checked).
  [[nodiscard]] const Graph& graph() const {
    KMM_CHECK_MSG(graph_ != nullptr,
                  "DistributedGraph::graph(): shard-direct ingest never materializes the "
                  "global graph; use a materialized build for verifiers/global algorithms");
    return *graph_;
  }
  [[nodiscard]] const VertexPartition& partition() const noexcept { return partition_; }

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return graph_ != nullptr ? graph_->num_vertices() : sharded_.n;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return graph_ != nullptr ? graph_->num_edges() : sharded_.num_half_edges / 2;
  }
  [[nodiscard]] MachineId machines() const noexcept { return partition_.machines(); }
  [[nodiscard]] MachineId home(Vertex v) const { return partition_.home(v); }

  /// Vertices hosted by machine i (ascending ids; deterministic).
  [[nodiscard]] std::span<const Vertex> vertices_of(MachineId i) const;

  /// Local adjacency view for a hosted vertex — ascending by neighbor id on
  /// both backends.
  [[nodiscard]] NeighborView neighbors(Vertex v) const {
    if (graph_ != nullptr) return NeighborView::over(graph_->neighbors(v));
    KMM_CHECK(v < sharded_.n);
    const MachineShard& shard = sharded_.shards[partition_.home(v)];
    const std::uint64_t start = sharded_.vstart[v];
    const std::uint32_t deg = sharded_.vdeg[v];
    if (shard.weight.empty()) {
      return NeighborView(shard.to.data() + start, &detail::kUnitWeight, 1, 0, deg);
    }
    return NeighborView(shard.to.data() + start, shard.weight.data() + start, 1, 1, deg);
  }

  [[nodiscard]] std::size_t degree(Vertex v) const {
    if (graph_ != nullptr) return graph_->degree(v);
    KMM_CHECK(v < sharded_.n);
    return sharded_.vdeg[v];
  }

  /// max_i |vertices_of(i)| — the Θ~(n/k) balance the RVP guarantees.
  [[nodiscard]] std::size_t max_machine_load() const;

  /// Adjacency bytes held by machine i's shard (0 on the materialized
  /// backend, which holds no shards).
  [[nodiscard]] std::size_t shard_bytes(MachineId i) const {
    if (graph_ != nullptr) return 0;
    KMM_CHECK(i < sharded_.shards.size());
    return sharded_.shards[i].bytes();
  }
  [[nodiscard]] std::size_t max_shard_bytes() const;

 private:
  void build_hosted(std::size_t n, ThreadPool* pool);

  const Graph* graph_ = nullptr;  // non-owning; outlives this view (or null)
  ShardedAdjacency sharded_;      // owned; empty on the materialized backend
  VertexPartition partition_;
  // CSR layout: machine i hosts hosted_[hosted_offsets_[i] ..
  // hosted_offsets_[i+1]), ascending vertex ids.
  std::vector<std::size_t> hosted_offsets_;  // machines()+1 entries
  std::vector<Vertex> hosted_;               // flat, grouped by machine
};

}  // namespace kmm
