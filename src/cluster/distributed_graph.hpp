#pragma once
// A graph distributed over k machines under a vertex partition.
//
// Mirrors the model's initial knowledge (Section 1.1): the home machine of v
// knows v's incident edges, their weights, and — because RVP is realized by
// hashing — the home machine of every neighbor. Algorithms must only touch
// adjacency through the hosting machine; the per-machine vertex lists below
// are the iteration order that discipline uses.

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace kmm {

class DistributedGraph {
 public:
  /// Builds the per-machine hosted-vertex lists (CSR-flattened: one offset
  /// table plus one flat vertex array, so construction allocates exactly
  /// twice however large k is). With a pool, the home() evaluation and the
  /// scatter run chunked in parallel — two-pass, per-chunk histograms, no
  /// atomics — producing the identical flat array for every thread count.
  explicit DistributedGraph(const Graph& graph, VertexPartition partition,
                            ThreadPool* pool = nullptr);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] const VertexPartition& partition() const noexcept { return partition_; }

  [[nodiscard]] std::size_t num_vertices() const noexcept { return graph_->num_vertices(); }
  [[nodiscard]] MachineId machines() const noexcept { return partition_.machines(); }
  [[nodiscard]] MachineId home(Vertex v) const { return partition_.home(v); }

  /// Vertices hosted by machine i (ascending ids; deterministic).
  [[nodiscard]] std::span<const Vertex> vertices_of(MachineId i) const;

  /// Local adjacency view for a hosted vertex.
  [[nodiscard]] std::span<const HalfEdge> neighbors(Vertex v) const {
    return graph_->neighbors(v);
  }

  /// max_i |vertices_of(i)| — the Θ~(n/k) balance the RVP guarantees.
  [[nodiscard]] std::size_t max_machine_load() const;

 private:
  const Graph* graph_;  // non-owning; outlives this view
  VertexPartition partition_;
  // CSR layout: machine i hosts hosted_[hosted_offsets_[i] ..
  // hosted_offsets_[i+1]), ascending vertex ids.
  std::vector<std::size_t> hosted_offsets_;  // machines()+1 entries
  std::vector<Vertex> hosted_;               // flat, grouped by machine
};

}  // namespace kmm
