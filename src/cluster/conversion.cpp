#include "cluster/conversion.hpp"

#include "util/assert.hpp"

namespace kmm {

std::uint64_t conversion_rounds(const CongestedCliqueProfile& profile, std::uint32_t k,
                                std::uint64_t polylog_factor) {
  KMM_CHECK(k >= 2);
  const std::uint64_t k2 = static_cast<std::uint64_t>(k) * k;
  const std::uint64_t term_msgs = (profile.message_complexity + k2 - 1) / k2;
  const std::uint64_t term_cong =
      (profile.max_node_degree_msgs * profile.round_complexity + k - 1) / k;
  return polylog_factor * (term_msgs + term_cong);
}

CongestedCliqueProfile flooding_profile(std::uint64_t n, std::uint64_t m,
                                        std::uint64_t diameter, std::uint64_t max_degree) {
  CongestedCliqueProfile p;
  p.round_complexity = diameter + 1;
  p.message_complexity = 2 * m * (diameter + 1);  // every edge both ways per round, worst case
  p.max_node_degree_msgs = max_degree;
  (void)n;
  return p;
}

}  // namespace kmm
