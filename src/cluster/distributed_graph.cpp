#include "cluster/distributed_graph.hpp"

#include <algorithm>
#include <string>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace kmm {

namespace {
// Below this the chunked build's histogram pass costs more than it saves.
constexpr std::size_t kParallelVertexCutoff = 1 << 15;
}  // namespace

Expected<DistributedGraph, BuildError> DistributedGraph::make(const Graph& graph,
                                                              VertexPartition partition,
                                                              ThreadPool* pool) {
  if (partition.num_vertices() != graph.num_vertices()) {
    return Expected<DistributedGraph, BuildError>::err(
        {"partition size must match the graph: partition covers " +
         std::to_string(partition.num_vertices()) + " vertices, graph has " +
         std::to_string(graph.num_vertices())});
  }
  return DistributedGraph(graph, std::move(partition), pool);
}

DistributedGraph::DistributedGraph(const Graph& graph, VertexPartition partition,
                                   ThreadPool* pool)
    : graph_(&graph), partition_(std::move(partition)) {
  KMM_CHECK_MSG(partition_.num_vertices() == graph.num_vertices(),
                "partition size must match the graph");
  build_hosted(graph.num_vertices(), pool);
}

DistributedGraph::DistributedGraph(ShardedAdjacency sharded, VertexPartition partition,
                                   ThreadPool* pool)
    : sharded_(std::move(sharded)), partition_(std::move(partition)) {
  KMM_CHECK_MSG(partition_.num_vertices() == sharded_.n,
                "partition size must match the sharded adjacency");
  KMM_CHECK_MSG(sharded_.shards.size() == partition_.machines(),
                "one shard per machine required");
  KMM_CHECK(sharded_.vstart.size() == sharded_.n && sharded_.vdeg.size() == sharded_.n);
  build_hosted(sharded_.n, pool);
}

void DistributedGraph::build_hosted(std::size_t n, ThreadPool* pool) {
  const MachineId k = partition_.machines();
  hosted_offsets_.assign(static_cast<std::size_t>(k) + 1, 0);
  hosted_.resize(n);

  if (pool == nullptr || pool->size() <= 1 || n < kParallelVertexCutoff) {
    std::vector<std::size_t> loads;
    partition_.loads(loads);
    for (MachineId i = 0; i < k; ++i) hosted_offsets_[i + 1] = hosted_offsets_[i] + loads[i];
    std::vector<std::size_t> cursor(hosted_offsets_.begin(), hosted_offsets_.end() - 1);
    for (Vertex v = 0; v < n; ++v) hosted_[cursor[partition_.home(v)]++] = v;
    return;
  }

  // Two-pass chunked build: per-chunk machine histograms, an exclusive
  // prefix over (machine, chunk) that turns each histogram row into that
  // chunk's write cursors, then a race-free scatter. Chunks cover ascending
  // vertex ranges and scan them in ascending order, so machine i's slice is
  // ascending — identical to the serial fill — for every thread count.
  const std::size_t chunks = parallel_chunks(n, pool->size());
  const auto vchunk = [&](std::size_t c) {
    return std::pair{n * c / chunks, n * (c + 1) / chunks};
  };
  std::vector<std::size_t> hist(chunks * k, 0);
  pool->parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = vchunk(c);
    std::size_t* row = hist.data() + c * k;
    for (std::size_t v = lo; v < hi; ++v) ++row[partition_.home(static_cast<Vertex>(v))];
  });
  for (MachineId i = 0; i < k; ++i) {
    std::size_t running = hosted_offsets_[i];
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t count = hist[c * k + i];
      hist[c * k + i] = running;
      running += count;
    }
    hosted_offsets_[i + 1] = running;
  }
  pool->parallel_for(chunks, [&](std::size_t c) {
    const auto [lo, hi] = vchunk(c);
    std::size_t* cursor = hist.data() + c * k;
    for (std::size_t v = lo; v < hi; ++v) {
      hosted_[cursor[partition_.home(static_cast<Vertex>(v))]++] = static_cast<Vertex>(v);
    }
  });
}

std::span<const Vertex> DistributedGraph::vertices_of(MachineId i) const {
  KMM_CHECK(i + 1 < hosted_offsets_.size());
  return {hosted_.data() + hosted_offsets_[i], hosted_.data() + hosted_offsets_[i + 1]};
}

std::size_t DistributedGraph::max_machine_load() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i + 1 < hosted_offsets_.size(); ++i) {
    best = std::max(best, hosted_offsets_[i + 1] - hosted_offsets_[i]);
  }
  return best;
}

std::size_t DistributedGraph::max_shard_bytes() const {
  std::size_t best = 0;
  for (const auto& shard : sharded_.shards) best = std::max(best, shard.bytes());
  return best;
}

}  // namespace kmm
