#include "cluster/distributed_graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace kmm {

DistributedGraph::DistributedGraph(const Graph& graph, VertexPartition partition)
    : graph_(&graph), partition_(std::move(partition)) {
  KMM_CHECK_MSG(partition_.num_vertices() == graph.num_vertices(),
                "partition size must match the graph");
  hosted_.resize(partition_.machines());
  for (Vertex v = 0; v < graph.num_vertices(); ++v) {
    hosted_[partition_.home(v)].push_back(v);
  }
}

std::span<const Vertex> DistributedGraph::vertices_of(MachineId i) const {
  KMM_CHECK(i < hosted_.size());
  return hosted_[i];
}

std::size_t DistributedGraph::max_machine_load() const {
  std::size_t best = 0;
  for (const auto& h : hosted_) best = std::max(best, h.size());
  return best;
}

}  // namespace kmm
