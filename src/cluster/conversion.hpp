#pragma once
// The Conversion Theorem cost model ([22], Theorem 4.1; discussed in
// Sections 1.2 and 2 of the paper).
//
// A congested-clique algorithm with message complexity M, round complexity
// T, and per-node per-round message bound Δ' can be simulated in the
// k-machine model in O~(M/k^2 + Δ'T/k) rounds. The paper uses this to
// explain why classic algorithms (GHS, flooding) are stuck at Ω~(n/k):
// their Δ' scales with the maximum degree.
//
// We expose the bound as an explicit cost model so benches can print the
// "converted" cost of a baseline next to the directly measured cost of the
// paper's algorithm (experiment E13).

#include <cstdint>

namespace kmm {

struct CongestedCliqueProfile {
  std::uint64_t message_complexity = 0;  // M: total messages
  std::uint64_t round_complexity = 0;    // T: rounds
  std::uint64_t max_node_degree_msgs = 0;  // Δ': per-node per-round messages
};

/// Rounds predicted by the Conversion Theorem for simulating the profiled
/// congested-clique algorithm on k machines. `polylog_factor` models the
/// hidden polylog; 1 gives the bare bound.
[[nodiscard]] std::uint64_t conversion_rounds(const CongestedCliqueProfile& profile,
                                              std::uint32_t k,
                                              std::uint64_t polylog_factor = 1);

/// Profile of flooding on an n-vertex, m-edge graph of diameter D: every
/// edge may carry a label per round for up to D rounds, and Δ' is the max
/// degree. Used by bench_conversion.
[[nodiscard]] CongestedCliqueProfile flooding_profile(std::uint64_t n, std::uint64_t m,
                                                      std::uint64_t diameter,
                                                      std::uint64_t max_degree);

}  // namespace kmm
