#pragma once
// Shard-direct streaming ingest: build a DistributedGraph straight from a
// chunked edge stream, never materializing the global edge list or Graph.
//
// This is the k-machine model's input story taken seriously (Section 1.1 via
// KaGen's communication-free generators): each machine receives exactly its
// hosted vertices' incident edges, routed at generation time by evaluating
// the RVP hash on each endpoint. Peak footprint is the shards themselves
// plus O(n) index state — not the O(m) global edge list plus a second O(m)
// CSR the materialized path pays — which is what opens the n >= 10^8 tier.
//
// Mechanics (two replays of a re-runnable stream, KaGen-style):
//   1. COUNT  — replay the stream, atomically counting each endpoint's
//      candidate degree (rmat streams may contain duplicate candidates;
//      they are counted here and removed in FINALIZE).
//   2. LAYOUT — per-machine slot layout over ascending hosted vertex ids,
//      then the MachineMemoryBudget check: every machine's projected bytes
//      (adjacency slots + per-vertex index entries) must fit the cap, else
//      hard-fail with a diagnostic naming the machine and the shortfall —
//      the honest alternative to silently OOM-ing the host.
//   3. FILL   — replay the stream again, claiming slots with per-vertex
//      atomic cursors (arrival order is thread-dependent; harmless, see 4).
//   4. FINALIZE — per vertex: sort slots ascending by neighbor id, drop
//      adjacent duplicates (stream contract: duplicates carry identical
//      weights), compact the shard in place. The sort erases every trace of
//      arrival order, so shard contents are bit-identical in (stream
//      parameters, seed, partition) for every thread count and ingest
//      batching — the same canonical ascending-neighbor order the
//      materialized Graph CSR produces.
//
// The weight array of a shard is allocated only if some streamed edge has
// weight != 1, so the unweighted tier stores 4 bytes per half-edge.

#include <cstddef>

#include "cluster/distributed_graph.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "util/expected.hpp"

namespace kmm {

class FaultSchedule;

/// Per-machine byte cap for shard state (0 = unlimited). Models the
/// k-machine assumption that no machine can hold the whole graph: ingest
/// hard-fails with a diagnostic when any machine's shard (adjacency slots
/// plus its hosted vertices' index entries) would exceed the cap.
struct MachineMemoryBudget {
  std::size_t bytes_per_machine = 0;
};

struct StreamIngestOptions {
  MachineMemoryBudget budget;
  /// Worker threads for the layout/finalize passes; 0 = hardware
  /// concurrency. Ignored when `pool` is set. Does NOT affect the result.
  unsigned threads = 1;
  /// Reuse the caller's workers (also handed to the hosted-list build).
  ThreadPool* pool = nullptr;
  /// Optional fault schedule (src/fault/): machines whose shard allocation
  /// is scheduled to fail (add_ingest_alloc_failure / alloc_fail_prob) turn
  /// into a structured IngestError instead of allocating — the deterministic
  /// stand-in for an ingest-time OOM.
  const FaultSchedule* fault = nullptr;
};

/// Build a shard-direct DistributedGraph from a re-runnable edge stream
/// (see the streaming ingest contract in graph/generators.hpp). The stream
/// is replayed twice; edges must satisfy u, v < n and u != v, and duplicate
/// (u, v) occurrences must carry identical weights.
///
/// Resource exhaustion — a machine whose projected shard bytes exceed the
/// MachineMemoryBudget, or a scheduled ingest allocation failure — returns
/// an IngestError naming the machine and shortfall instead of aborting;
/// contract violations in the stream itself (out-of-range edges,
/// self-loops) still abort, as malformed input is a caller bug.
[[nodiscard]] Expected<DistributedGraph, IngestError> stream_ingest(
    std::size_t n, VertexPartition partition, const gen::EdgeStream& stream,
    const StreamIngestOptions& opts = {});

}  // namespace kmm
