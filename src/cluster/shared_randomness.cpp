#include "cluster/shared_randomness.hpp"

#include "util/assert.hpp"

namespace kmm {

std::uint64_t SharedRandomness::distribution_rounds(std::uint64_t bits, MachineId k,
                                                    std::uint64_t bandwidth_bits) {
  KMM_CHECK(k >= 2 && bandwidth_bits >= 1);
  const std::uint64_t per_step =
      static_cast<std::uint64_t>(k - 1) * bandwidth_bits;  // common bits per 2 rounds
  return 2 * ((bits + per_step - 1) / per_step);
}

std::uint64_t SharedRandomness::charge_distribution(Cluster& cluster, std::uint64_t bits) {
  const std::uint64_t rounds =
      distribution_rounds(bits, cluster.k(), cluster.bandwidth_bits());
  cluster.charge_rounds(rounds);
  bits_distributed_ += bits;
  return rounds;
}

}  // namespace kmm
