#pragma once
// Incremental edge-list builder with de-duplication, plus weight utilities.

#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace kmm {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t n) : n_(n) {}

  /// Adds the undirected edge {u, v}; duplicates and self-loops are ignored.
  /// Returns true if the edge was newly added.
  bool add_edge(Vertex u, Vertex v, Weight w = 1);

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }

  /// Finalizes into a CSR graph; the builder is left empty.
  [[nodiscard]] Graph build();

  /// Same, routing the CSR construction through the parallel Graph ctor
  /// (identical result; see graph.hpp). Null pool = serial.
  [[nodiscard]] Graph build(ThreadPool* pool);

 private:
  std::size_t n_;
  std::vector<WeightedEdge> edges_;
  std::unordered_set<EdgeIndex> seen_;  // O(1) duplicate detection
};

/// Returns a copy of `g` whose edge weights are distinct: each weight becomes
/// `w * (m+1) + rank(edge)`, preserving the original weight order and making
/// MSTs unique. Useful because the paper's MST output criterion is stated for
/// a unique MST.
[[nodiscard]] Graph with_unique_weights(const Graph& g);

/// Returns a copy of `g` with fresh uniformly random weights in [1, limit].
[[nodiscard]] Graph with_random_weights(const Graph& g, Rng& rng, Weight limit = 1'000'000);

}  // namespace kmm
